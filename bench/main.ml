(* Benchmark & reproduction harness.

   For every table and figure of the paper this file (a) prints the
   regenerated content next to the paper's numbers and (b) registers a
   Bechamel micro-benchmark timing the computation that regenerates it.
   Ablations from DESIGN.md follow at the end.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_atpg
open Olfu_manip
open Olfu_soc
module B = Netlist.Builder

let section title =
  Format.printf "@.==== %s ====@." title

(* recorded in every BENCH_*.json: the process's GC high-water mark at
   write time, in bytes *)
let peak_heap_bytes () =
  (Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8)

(* Shared inputs, generated once. *)
let t32 = lazy (Soc.generate Soc.tcore32)
let t16 = lazy (Soc.generate Soc.tcore16)
let mission32 = lazy (Olfu.Mission.of_soc Soc.tcore32 (Lazy.force t32))
let mission16 = lazy (Olfu.Mission.of_soc Soc.tcore16 (Lazy.force t16))

(* Every flow run here goes through the one Run_config record. *)
let rc = Olfu.Run_config.default

(* ---------------------------------------------------------------- *)
(* Table I                                                          *)
(* ---------------------------------------------------------------- *)

let print_table1 () =
  section "Table I — on-line functionally untestable faults (tcore32)";
  let report = Olfu.Flow.run rc (Lazy.force t32) (Lazy.force mission32) in
  Format.printf "%a@." (Olfu.Flow.pp_table1 ~paper:true) report

let bench_table1 =
  Test.make ~name:"table1/flow_tcore32"
    (Staged.stage (fun () ->
         Olfu.Flow.run rc (Lazy.force t32) (Lazy.force mission32)))

(* ---------------------------------------------------------------- *)
(* Fig. 1 — fault-category lattice                                  *)
(* ---------------------------------------------------------------- *)

let print_fig1 () =
  section "Fig. 1 — fault-category lattice (tcore16)";
  let s = Olfu.Categories.compute (Lazy.force t16) (Lazy.force mission16) in
  Format.printf "%a@." Olfu.Categories.pp s

let bench_fig1 =
  Test.make ~name:"fig1/categories_tcore16"
    (Staged.stage (fun () ->
         Olfu.Categories.compute (Lazy.force t16) (Lazy.force mission16)))

(* ---------------------------------------------------------------- *)
(* Fig. 2 / 4 / 5 / 6 — cell-level scenarios                        *)
(* ---------------------------------------------------------------- *)

let scan_cell () =
  let b = B.create () in
  let fi = B.input b "FI" in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "SI" in
  let se = B.tie b Logic4.L0 in
  let ff = B.sdff b ~name:"ff" ~d:fi ~si ~se in
  let _ = B.output b "FO" ff in
  (B.freeze_exn b, ff)

let debug_cell () =
  let b = B.create () in
  let fi = B.input b "FI" in
  let di = B.input b "DI" in
  let de = B.tie b Logic4.L0 in
  let m = B.mux2 b ~name:"dbg_mux" ~sel:de ~a:fi ~b:di in
  let ff = B.dff b ~name:"ff" ~d:m in
  let _ = B.output b "FO" ff in
  (B.freeze_exn b, m)

let const_dffr () =
  let b = B.create () in
  let d = B.tie b Logic4.L0 in
  let rstn = B.tie b Logic4.L1 in
  let ff = B.dffr b ~name:"areg" ~d ~rstn in
  let _ = B.output b "AOUT" ff in
  (B.freeze_exn b, ff)

let fig6_circuit () =
  let b = B.create () in
  let d = B.tie b Logic4.L0 in
  let rstn = B.tie b Logic4.L1 in
  let areg = B.dffr b ~name:"areg" ~d ~rstn in
  let x = B.input b "x" in
  let g1 = B.and2 b ~name:"g1" areg x in
  let g2 = B.or2 b ~name:"g2" g1 x in
  let _ = B.output b "y" g2 in
  B.freeze_exn b

let cell_verdicts nl =
  let t = Untestable.analyze nl in
  let fl = Flist.full nl in
  let n = Untestable.classify t fl in
  (fl, n)

let print_cell name expect nl =
  let fl, n = cell_verdicts nl in
  Format.printf "%s: %d of %d faults untestable (%s)@." name n (Flist.size fl)
    expect;
  Flist.iteri
    (fun _ f st ->
      if Status.is_undetectable st then
        Format.printf "   %-22s %a@." (Fault.to_string nl f) Status.pp st)
    fl

let print_fig2456 () =
  section "Fig. 2 — mux-scan cell in mission mode";
  print_cell "scan cell" "paper: SI s@0/s@1, SE s@0; only SE s@1 kept"
    (fst (scan_cell ()));
  section "Fig. 4 — debug cell with DE tied";
  print_cell "debug cell" "paper: DE s@0 and both DI faults untestable"
    (fst (debug_cell ()));
  section "Fig. 5 — DFF with constant 0";
  print_cell "constant DFFR" "paper: only D s@1 and Q s@1 remain testable"
    (fst (const_dffr ()));
  section "Fig. 6 — constant register propagating into address logic";
  print_cell "fig6 cone" "paper: downstream gate faults become untestable"
    (fig6_circuit ())

let bench_fig2 =
  Test.make ~name:"fig2/scan_cell"
    (Staged.stage (fun () -> cell_verdicts (fst (scan_cell ()))))

let bench_fig4 =
  Test.make ~name:"fig4/debug_cell"
    (Staged.stage (fun () -> cell_verdicts (fst (debug_cell ()))))

let bench_fig5 =
  Test.make ~name:"fig5/const_dffr"
    (Staged.stage (fun () -> cell_verdicts (fst (const_dffr ()))))

let bench_fig6 =
  Test.make ~name:"fig6/propagation"
    (Staged.stage (fun () -> cell_verdicts (fig6_circuit ())))

(* ---------------------------------------------------------------- *)
(* Fig. 3 — SoC debug architecture                                  *)
(* ---------------------------------------------------------------- *)

let print_fig3 () =
  section "Fig. 3 — debug components of the SoC (tcore32)";
  let nl = Lazy.force t32 in
  let cfg = Soc.tcore32 in
  Format.printf "CPU: %a@." Netlist.pp_summary nl;
  Format.printf "debug control inputs (%d): %s@."
    (List.length (Soc.debug_control_inputs cfg))
    (String.concat ", " (Soc.debug_control_inputs cfg));
  let obs = Soc.debug_observe_outputs cfg nl in
  Format.printf "debug observation outputs: %d (two %d-bit buses)@."
    (List.length obs) cfg.Soc.xlen

let bench_fig3 =
  Test.make ~name:"fig3/generate_tcore32"
    (Staged.stage (fun () -> Soc.generate Soc.tcore32))

(* ---------------------------------------------------------------- *)
(* Sec. 4 — activity screening of debug inputs                      *)
(* ---------------------------------------------------------------- *)

let screening_results = lazy (
  let cfg = Soc.tcore16 in
  let nl = Lazy.force t16 in
  let tog = Olfu_sim.Toggle.create nl in
  let program = Olfu_sbst.Programs.assemble (Olfu_sbst.Programs.register_march cfg) in
  let run = Olfu_sbst.Testbench.record cfg nl ~program in
  let sim = Olfu_sim.Seq_sim.create ~init:Logic4.X nl in
  Array.iter
    (fun step ->
      List.iter
        (fun (i, v) -> Olfu_sim.Seq_sim.set_input sim i v)
        step.Olfu_fsim.Seq_fsim.assign;
      Olfu_sim.Seq_sim.settle sim;
      Olfu_sim.Toggle.record tog sim;
      Olfu_sim.Seq_sim.step sim)
    run.Olfu_sbst.Testbench.stimulus;
  (nl, tog))

let print_screening () =
  section "Sec. 4 — toggle screening for suspect (mission-unused) inputs";
  let nl, tog = Lazy.force screening_results in
  let suspects = Olfu_sim.Toggle.suspects tog in
  let dbg =
    List.filter
      (fun i -> Netlist.has_role nl i Netlist.Debug_control)
      suspects
  in
  Format.printf
    "suspect inputs (no activity over the workload): %d, of which debug \
     controls: %d (paper: 17 signals selected)@."
    (List.length suspects) (List.length dbg)

let bench_screening =
  Test.make ~name:"sec4/toggle_screening"
    (Staged.stage (fun () ->
         let nl, tog = Lazy.force screening_results in
         (Olfu_sim.Toggle.suspects tog, Netlist.length nl)))

(* ---------------------------------------------------------------- *)
(* Sec. 4 — memory map                                              *)
(* ---------------------------------------------------------------- *)

let print_memmap () =
  section "Sec. 4 — memory-map analysis (paper's ranges)";
  Format.printf "%a@." (Memmap.pp_report ~width:32) (Memmap.paper_case_study ());
  Format.printf
    "(paper text: 18 LSBs + bit 30; exact computation also frees bit 18)@."

let bench_memmap =
  Test.make ~name:"sec4/memmap_paper"
    (Staged.stage (fun () ->
         Memmap.free_bits ~width:32 (Memmap.paper_case_study ())))

(* ---------------------------------------------------------------- *)
(* Sec. 4 — SBST coverage before/after pruning                      *)
(* ---------------------------------------------------------------- *)

let print_coverage sample_size =
  section
    (Printf.sprintf
       "Sec. 4 — SBST coverage delta (tcore16, %d-fault sample)" sample_size);
  let cfg = Soc.tcore16 in
  let nl = Lazy.force t16 in
  let report = Olfu.Flow.run rc nl (Lazy.force mission16) in
  let fl = report.Olfu.Flow.flist in
  let rng = Random.State.make [| 7 |] in
  let n = Flist.size fl in
  let chosen = Hashtbl.create sample_size in
  while Hashtbl.length chosen < min sample_size n do
    Hashtbl.replace chosen (Random.State.int rng n) ()
  done;
  let idx = List.sort compare (Hashtbl.fold (fun i () a -> i :: a) chosen []) in
  let sub = Flist.create nl (Array.of_list (List.map (Flist.fault fl) idx)) in
  List.iteri (fun k i -> Flist.set_status sub k (Flist.status fl i)) idx;
  let t0 = Unix.gettimeofday () in
  let summary =
    Olfu_sbst.Coverage.grade cfg nl sub (Olfu_sbst.Programs.suite cfg)
  in
  Format.printf "%a@." Olfu_sbst.Coverage.pp_summary summary;
  Format.printf "grading wall time: %.1f s@." (Unix.gettimeofday () -. t0);
  Format.printf
    "pruning gain: %+.1f points (paper: ~13 points on its mature suite)@."
    (100.
    *. (summary.Olfu_sbst.Coverage.pruned_coverage
       -. summary.Olfu_sbst.Coverage.raw_coverage))

(* a bechamel-sized unit: one short program over one 63-fault batch *)
let coverage_unit = lazy (
  let cfg = Soc.tcore16 in
  let nl = Lazy.force t16 in
  let program = Olfu_sbst.Programs.assemble (Olfu_sbst.Programs.alu_patterns cfg) in
  let run = Olfu_sbst.Testbench.record cfg nl ~program in
  (nl, run))

let bench_coverage_unit =
  Test.make ~name:"sec4/seq_fsim_63faults"
    (Staged.stage (fun () ->
         let nl, run = Lazy.force coverage_unit in
         let u = Fault.universe nl in
         let fl = Flist.create nl (Array.sub u 0 63) in
         Olfu_fsim.Seq_fsim.run ~init:Logic4.X
           ~observe:(Olfu_sbst.Testbench.observed_outputs nl) nl fl
           run.Olfu_sbst.Testbench.stimulus))

(* ---------------------------------------------------------------- *)
(* Extension — transition-delay fault model (paper's conclusion)    *)
(* ---------------------------------------------------------------- *)

let print_tdf () =
  section "Extension — transition-delay faults (paper: future work)";
  let r = Olfu.Tdf_flow.run rc (Lazy.force t32) (Lazy.force mission32) in
  Format.printf "%a@." Olfu.Tdf_flow.pp r

let bench_tdf =
  Test.make ~name:"ext/tdf_flow_tcore16"
    (Staged.stage (fun () ->
         Olfu.Tdf_flow.run rc (Lazy.force t16) (Lazy.force mission16)))

let print_full_dft () =
  section "Extension — full DfT population (BIST + boundary scan, Sec. 3)";
  let cfg = Soc.tcore32_dft in
  let nl = Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  let r = Olfu.Flow.run rc nl mission in
  Format.printf "%a@." (Olfu.Flow.pp_table1 ~paper:false) r

(* ---------------------------------------------------------------- *)
(* Extension — ATPG effort reduction (the paper's motivation)        *)
(* ---------------------------------------------------------------- *)

let print_atpg_effort () =
  section
    "Extension — functional test-generation effort with vs without OLFU \
     pruning (tcore16, BMC, 30-fault sample)";
  let nl = Lazy.force t16 in
  let mission = Lazy.force mission16 in
  let report = Olfu.Flow.run rc nl mission in
  let mnl =
    Script.apply report.Olfu.Flow.mission_netlist
      [
        Script.Tie_input ("scan_en", Logic4.L0);
        Script.Tie_input ("scan_in0", Logic4.L0);
      ]
  in
  let observable = Olfu.Mission.observed_in_field mission mnl in
  (* one shared sample of target faults *)
  let fl = report.Olfu.Flow.flist in
  let rng = Random.State.make [| 23 |] in
  let sample = ref [] in
  while List.length !sample < 30 do
    let i = Random.State.int rng (Flist.size fl) in
    let f = Flist.fault fl i in
    if
      f.Fault.site.Fault.pin <> Cell.Pin.Clk
      && not (List.exists (fun (j, _) -> j = i) !sample)
    then sample := (i, f) :: !sample
  done;
  let run_side ~pruned =
    let t0 = Unix.gettimeofday () in
    let attempts = ref 0 and tests = ref 0 and dead = ref 0 and unk = ref 0 in
    List.iter
      (fun (i, f) ->
        let skip = pruned && Status.is_undetectable (Flist.status fl i) in
        if not skip then begin
          incr attempts;
          match
            Bmc.run ~cycles:3 ~observable_output:observable
              ~conflict_limit:15_000 mnl f
          with
          | Bmc.Test _ -> incr tests
          | Bmc.No_test_within _ -> incr dead
          | Bmc.Unknown -> incr unk
        end)
      !sample;
    (!attempts, !tests, !dead, !unk, Unix.gettimeofday () -. t0)
  in
  let a, t, d, u, secs = run_side ~pruned:false in
  Format.printf
    "  without pruning: %d BMC runs (%d tests, %d exhausted, %d timeouts), \
     %.1f s@."
    a t d u secs;
  let a, t, d, u, secs = run_side ~pruned:true in
  Format.printf
    "  with pruning:    %d BMC runs (%d tests, %d exhausted, %d timeouts), \
     %.1f s@."
    a t d u secs;
  Format.printf
    "  (every pruned fault skips a bounded functional search that can only \
     end in exhaustion — the paper's effort-reduction claim)@."

(* ---------------------------------------------------------------- *)
(* Extension — bounded sequential refutation of the flow's verdicts  *)
(* ---------------------------------------------------------------- *)

(* ---------------------------------------------------------------- *)
(* Extension — path-delay faults (the authors' MTV'08 companion)     *)
(* ---------------------------------------------------------------- *)

let print_pathdelay () =
  section "Extension — functionally untestable path-delay faults (ref [9])";
  let nl = Lazy.force t16 in
  let raw = Untestable.analyze nl in
  let c_raw = Pathdelay.classify ~max_paths:20_000 raw nl in
  let mission_nl =
    (Olfu.Flow.run rc nl (Lazy.force mission16)).Olfu.Flow.mission_netlist
  in
  let mission = Untestable.analyze mission_nl in
  let c_mis = Pathdelay.classify ~max_paths:20_000 mission mission_nl in
  Format.printf "  raw netlist:     %a@." Pathdelay.pp_census c_raw;
  Format.printf "  mission config:  %a@." Pathdelay.pp_census c_mis

let print_bmc_check () =
  section
    "Extension — BMC refutation attempts on flow verdicts (tcore16, 3 \
     cycles)";
  let cfg = Soc.tcore16 in
  let nl = Lazy.force t16 in
  let mission = Lazy.force mission16 in
  let report = Olfu.Flow.run rc nl mission in
  let mnl =
    Script.apply report.Olfu.Flow.mission_netlist
      [
        Script.Tie_input ("scan_en", Logic4.L0);
        Script.Tie_input ("scan_in0", Logic4.L0);
      ]
  in
  ignore cfg;
  let observable = Olfu.Mission.observed_in_field mission mnl in
  let tried = ref 0 and refuted = ref 0 and unknown = ref 0 in
  Flist.iteri
    (fun i f st ->
      if
        !tried < 24 && i mod 401 = 0
        && Status.is_undetectable st
        && f.Fault.site.Fault.pin <> Cell.Pin.Clk
      then begin
        incr tried;
        match
          Bmc.run ~cycles:3 ~observable_output:observable
            ~conflict_limit:15_000 mnl f
        with
        | Bmc.Test stim ->
          if Bmc.confirm_test ~observable_output:observable mnl f stim then
            incr refuted
        | Bmc.Unknown -> incr unknown
        | Bmc.No_test_within _ -> ()
      end)
    report.Olfu.Flow.flist;
  Format.printf
    "  %d sampled untestable verdicts, %d refuted by 3-cycle functional \
     search, %d search timeouts@."
    !tried !refuted !unknown;
  Format.printf
    "  (a refutation would be a real functional test for a fault the flow \
     pruned — zero expected)@."

(* ---------------------------------------------------------------- *)
(* Static analysis — the lint registry over the biggest core        *)
(* ---------------------------------------------------------------- *)

let print_lint () =
  section "Static analysis — olfu_lint registry over tcore32";
  let outcome = Olfu_lint.Lint.run (Lazy.force t32) in
  Format.printf "%a@." Olfu_lint.Render.summary outcome

let bench_lint =
  Test.make ~name:"lint/lint_tcore32"
    (Staged.stage (fun () -> Olfu_lint.Lint.run (Lazy.force t32)))

(* ---------------------------------------------------------------- *)
(* Static analysis — abstract interpretation of the SBST suite      *)
(* ---------------------------------------------------------------- *)

let absint_suite cfg =
  List.map
    (fun p -> Olfu_absint.Absint.of_program cfg p)
    (Olfu_sbst.Programs.suite cfg)

let print_absint () =
  section "Static analysis — absint over the SBST suite (tcore32)";
  let cfg = Soc.tcore32 in
  let summaries = absint_suite cfg in
  let consts = Olfu_absint.Absint.constant_addr_bits ~width:cfg.Soc.xlen summaries in
  let check =
    Olfu_absint.Absint.cross_check ~width:cfg.Soc.xlen summaries
      (Memmap.paper_case_study ())
  in
  Format.printf
    "  %d programs analysed, %d constant address bits, map cross-check: %s@."
    (List.length summaries) (List.length consts)
    (if check.Olfu_absint.Absint.ok then "OK" else "VIOLATION")

let bench_absint =
  Test.make ~name:"absint_suite/tcore32"
    (Staged.stage (fun () -> absint_suite Soc.tcore32))

(* ---------------------------------------------------------------- *)
(* Ablations (DESIGN.md section 5)                                  *)
(* ---------------------------------------------------------------- *)

let print_ablation_sweep () =
  section "Ablation — dead-logic sweep of the mission netlist";
  let r = Olfu.Flow.run rc (Lazy.force t16) (Lazy.force mission16) in
  let swept, removed = Sweep.sweep r.Olfu.Flow.mission_netlist in
  Format.printf
    "  mission netlist: %d nodes; a synthesis-style sweep would remove %d      (%.1f%%), the rest of the untestable faults sit in logic that stays@."
    (Netlist.length r.Olfu.Flow.mission_netlist)
    removed
    (100. *. float_of_int removed
    /. float_of_int (Netlist.length r.Olfu.Flow.mission_netlist));
  ignore swept

let print_ablation_ff_mode () =
  section "Ablation — sequential constant propagation mode";
  List.iter
    (fun (name, mode) ->
      let r =
        Olfu.Flow.run
          { rc with Olfu.Run_config.ff_mode = mode }
          (Lazy.force t16) (Lazy.force mission16)
      in
      Format.printf "  %-12s total OLFU %6d (%.1f%%), paper rows %6d@." name
        r.Olfu.Flow.total_olfu
        (100. *. r.Olfu.Flow.fraction)
        (Olfu.Flow.paper_total r))
    [
      ("steady", Ternary.Steady_state); ("reset-join", Ternary.Reset_join);
      ("cut", Ternary.Cut);
    ]

let print_ablation_collapse () =
  section "Ablation — collapsed vs uncollapsed fault counting";
  let nl = Lazy.force t16 in
  let fl = Flist.full nl in
  let c = Collapse.compute fl in
  Format.printf "  uncollapsed: %d   collapsed (prime): %d   ratio %.2f@."
    (Flist.size fl) (Collapse.num_classes c)
    (float_of_int (Flist.size fl) /. float_of_int (Collapse.num_classes c))

let print_ablation_scan_bufs () =
  section "Ablation — scan-path buffering density vs scan share";
  List.iter
    (fun bufs ->
      let cfg = { Soc.tcore16 with Soc.scan_link_buffers = bufs } in
      let nl = Soc.generate cfg in
      let mission = Olfu.Mission.of_soc cfg nl in
      let r = Olfu.Flow.run rc nl mission in
      let scan = Olfu.Flow.step_count r Olfu.Flow.Scan in
      Format.printf "  %d buffers/link: scan %6d of %6d = %.1f%%@." bufs scan
        r.Olfu.Flow.universe
        (100. *. float_of_int scan /. float_of_int r.Olfu.Flow.universe))
    [ 0; 1; 2; 3 ]

let print_ablation_podem_confirm () =
  section "Ablation — implication-only vs PODEM confirmation (sampled)";
  let nl, ff = scan_cell () in
  ignore ff;
  let t = Untestable.analyze nl in
  let u = Fault.universe nl in
  let confirmed = ref 0 and total = ref 0 in
  Array.iter
    (fun f ->
      if f.Fault.site.Fault.pin <> Cell.Pin.Clk then
        match Untestable.fault_verdict t f with
        | Some _ ->
          incr total;
          (match Podem.run nl f with
          | Podem.Proved_untestable -> incr confirmed
          | _ -> ())
        | None -> ())
    u;
  Format.printf
    "  scan cell: %d/%d implication verdicts confirmed by exhaustive PODEM@."
    !confirmed !total;
  (* and on a slice of the SoC-scale list the engine is merely sound *)
  let nl16 = Lazy.force t16 in
  let t16a = Untestable.analyze nl16 in
  let u16 = Fault.universe nl16 in
  let proved = ref 0 and tested = ref 0 and aborted = ref 0 and total = ref 0 in
  Array.iteri
    (fun i f ->
      if i mod 29 = 0 && f.Fault.site.Fault.pin <> Cell.Pin.Clk then
        match Untestable.fault_verdict t16a f with
        | Some _ -> (
          incr total;
          match Podem.run ~backtrack_limit:200 nl16 f with
          | Podem.Proved_untestable -> incr proved
          | Podem.Test _ -> incr tested
          | Podem.Aborted -> incr aborted)
        | None -> ())
    u16;
  Format.printf
    "  tcore16 sample: %d verdicts -> PODEM proved %d, aborted %d, refuted \
     %d (refutations indicate full-access vs mission observability gap)@."
    !total !proved !aborted !tested

(* ---------------------------------------------------------------- *)
(* Bechamel driver                                                  *)
(* ---------------------------------------------------------------- *)

let micro_benchmarks =
  [
    bench_table1; bench_fig1; bench_fig2; bench_fig3; bench_fig4; bench_fig5;
    bench_fig6; bench_screening; bench_memmap; bench_coverage_unit;
    bench_tdf; bench_lint; bench_absint;
  ]

let run_benchmarks () =
  section "Bechamel micro-benchmarks (one per table/figure)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"olfu" micro_benchmarks)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> t
        | _ -> nan
      in
      Format.printf "  %-32s %12.1f us/run@." name (est /. 1_000.))
    (List.sort compare rows)

(* ---------------------------------------------------------------- *)
(* fsim mode: fault-simulation throughput (BENCH_fsim.json)          *)
(* ---------------------------------------------------------------- *)

(* Measures the cone-limited PPSFP engine against the full-settle
   baseline on tcore32 (evenly spaced fault sample, 128 patterns) and
   cross-checks that both engines — and parallel runs — produce
   bit-identical fault statuses.  Run with: dune exec bench/main.exe -- fsim *)
let fsim_bench () =
  let module CF = Olfu_fsim.Comb_fsim in
  section "fsim throughput — cone engine vs full-settle baseline (tcore32)";
  let nl = Lazy.force t32 in
  let universe = Fault.universe nl in
  let total = Array.length universe in
  let sample_n = min 1000 total in
  let stride = max 1 (total / sample_n) in
  let faults =
    Array.init sample_n (fun k -> universe.(min (k * stride) (total - 1)))
  in
  let npat = 128 in
  let patterns = CF.random_patterns ~seed:7 nl npat in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let run_cfg ~engine ~jobs =
    let fl = Flist.create nl faults in
    let r, secs = time (fun () -> CF.run ~engine ~jobs nl fl patterns) in
    (fl, r, secs)
  in
  (* min-of-N per configuration: single timings on a shared host swing by
     several percent of scheduler noise, which is exactly the scale the
     monotone gate resolves *)
  let run_cfg_min ?(reps = 5) ~engine ~jobs () =
    let best = ref None in
    for _ = 1 to reps do
      let fl, r, secs = run_cfg ~engine ~jobs in
      match !best with
      | Some (_, _, s) when s <= secs -> ()
      | _ -> best := Some (fl, r, secs)
    done;
    Option.get !best
  in
  (* per-worker utilization of the last pool dispatch, off the pool
     gauges of a separately traced (untimed) run *)
  let utilization ~jobs =
    let module Trace = Olfu_obs.Trace in
    let trace = Trace.create () in
    let fl = Flist.create nl faults in
    ignore (CF.run ~engine:CF.Cone ~jobs ~trace nl fl patterns : CF.report);
    Option.value ~default:1.0
      (List.assoc_opt "pool.last_utilization" (Trace.gauges trace))
  in
  let statuses fl = Array.init (Flist.size fl) (Flist.status fl) in
  let evals secs = float_of_int (sample_n * npat) /. secs in
  (* warm the per-netlist cone memo so steady-state throughput is measured *)
  ignore (run_cfg ~engine:CF.Cone ~jobs:1);
  let flb, rb, base_secs = run_cfg_min ~reps:3 ~engine:CF.Full_settle ~jobs:1 () in
  Format.printf "  full-settle jobs=1: %.3f s  (%.0f fault-pat evals/s)@."
    base_secs (evals base_secs);
  (* round-robin the cone configurations within each rep (major
     collection before each timed run) so slow load drift and heap
     growth hit every jobs value equally instead of biasing the later
     configurations — the monotone gate compares them against each
     other.  The order rotates per rep: periodic background load on a
     shared host can alias onto one slot of a fixed rotation, which
     min-of-N cannot filter out *)
  let best : (int, Flist.t * CF.report * float) Hashtbl.t =
    Hashtbl.create 3
  in
  let cone_jobs = [| 1; 2; 4 |] in
  let nc = Array.length cone_jobs in
  for rep = 0 to (2 * nc) - 1 do
    for k = 0 to nc - 1 do
      let jobs = cone_jobs.((rep + k) mod nc) in
      Gc.full_major ();
      let fl, r, secs = run_cfg ~engine:CF.Cone ~jobs in
      match Hashtbl.find_opt best jobs with
      | Some (_, _, s) when s <= secs -> ()
      | _ -> Hashtbl.replace best jobs (fl, r, secs)
    done
  done;
  let cone =
    List.map
      (fun jobs ->
        let fl, r, secs = Hashtbl.find best jobs in
        let util = utilization ~jobs in
        Format.printf
          "  cone        jobs=%d: %.3f s  (%.0f fault-pat evals/s, \
           utilization %.2f)@."
          jobs secs (evals secs) util;
        (jobs, fl, r, secs, util))
      [ 1; 2; 4 ]
  in
  let _, fl2, _, _, _ = List.nth cone 1 in
  let ok =
    statuses flb = statuses fl2
    && List.for_all (fun (_, fl, _, _, _) -> statuses fl = statuses flb) cone
  in
  let _, _, r4, secs4, _ =
    List.find (fun (j, _, _, _, _) -> j = 4) cone
  in
  ignore (r4 : CF.report);
  let speedup = base_secs /. secs4 in
  (* non-increasing seconds across jobs 1 -> 2 -> 4, within tolerance:
     on a single-core host the clamped configurations must at least stay
     flat; on a multi-core host they must speed up *)
  (* 1.10: the regression this guards against is a 1.7x-4.8x inversion;
     run-to-run noise on a busy shared host reaches ~9% even on min-of-N *)
  let monotone_tolerance = 1.10 in
  let speedup_monotone =
    let rec chk = function
      | (_, _, _, a, _) :: ((_, _, _, b, _) :: _ as tl) ->
        b <= (a *. monotone_tolerance) && chk tl
      | _ -> true
    in
    chk cone
  in
  Format.printf "  statuses identical across engines/jobs: %b@." ok;
  Format.printf "  speedup cone/jobs=4 vs full-settle/jobs=1: %.2fx@." speedup;
  Format.printf "  seconds monotone non-increasing over jobs: %b@."
    speedup_monotone;
  (* observability overhead: the engine is permanently instrumented, so
     compare the default no-op sink against an actively recording one
     (the no-op branch does strictly less work per call site than the
     recording branch, so this bounds the sink dispatch cost).
     Min-of-N to shed scheduler noise. *)
  let module Trace = Olfu_obs.Trace in
  (* Scheduler noise here swings individual timings by several percent,
     far above the probe cost, so no single comparison can resolve a
     <2% difference.  Measure paired regions of 4 back-to-back runs,
     alternating which side goes first (cancels drift and cache-warming
     bias), and gate on the MEDIAN of the per-pair deltas — the robust
     center that the spiked pairs cannot move. *)
  let runs_per_region = 8 in
  let region trace =
    snd
      (time (fun () ->
           for _ = 1 to runs_per_region do
             let fl = Flist.create nl faults in
             ignore (CF.run ~engine:CF.Cone ~jobs:1 ~trace nl fl patterns)
           done))
  in
  let pairs = 15 in
  let deltas = Array.make pairs 0. in
  let null_s = ref infinity and rec_s = ref infinity in
  for i = 0 to pairs - 1 do
    let n, r =
      if i mod 2 = 0 then
        let n = region Trace.null in
        (n, region (Trace.create ()))
      else
        let r = region (Trace.create ()) in
        (region Trace.null, r)
    in
    null_s := min !null_s (n /. float_of_int runs_per_region);
    rec_s := min !rec_s (r /. float_of_int runs_per_region);
    deltas.(i) <- 100. *. (r -. n) /. n
  done;
  Array.sort compare deltas;
  let overhead_pct = deltas.(pairs / 2) in
  let null_s = !null_s and rec_s = !rec_s in
  (* second, burst-immune estimator: a load burst can inflate a region
     but never deflate one, so the delta of the per-side MIN region
     times stays clean through a burst long enough to move the median.
     A real systematic sink cost shows up in both. *)
  let min_pct = 100. *. (rec_s -. null_s) /. null_s in
  Format.printf
    "  sink overhead: null %.3f s, recording %.3f s  (median delta \
     %+.2f%%, min delta %+.2f%%, gate <2%%)@."
    null_s rec_s overhead_pct min_pct;
  let obs_ok = overhead_pct < 2.0 || min_pct < 2.0 in
  let oc = open_out "BENCH_fsim.json" in
  let pc oc (jobs, _, (r : CF.report), secs, util) =
    Printf.fprintf oc
      "    { \"jobs\": %d, \"seconds\": %.6f, \"evals_per_sec\": %.0f, \
       \"detected\": %d, \"possibly\": %d, \"utilization\": %.3f }"
      jobs secs (evals secs) r.CF.detected r.CF.possibly util
  in
  Printf.fprintf oc
    "{\n  \"netlist\": \"tcore32\",\n  \"faults_sampled\": %d,\n\
    \  \"patterns\": %d,\n\
    \  \"baseline_full_settle_jobs1\": { \"seconds\": %.6f, \
     \"evals_per_sec\": %.0f, \"detected\": %d, \"possibly\": %d },\n\
    \  \"cone\": [\n"
    sample_n npat base_secs (evals base_secs) rb.CF.detected rb.CF.possibly;
  List.iteri
    (fun k c ->
      pc oc c;
      output_string oc (if k < List.length cone - 1 then ",\n" else "\n"))
    cone;
  Printf.fprintf oc
    "  ],\n  \"speedup_4j_vs_baseline\": %.3f,\n\
    \  \"statuses_identical\": %b,\n\
    \  \"speedup_monotone\": %b,\n\
    \  \"monotone_tolerance\": %.2f,\n\
    \  \"obs\": { \"null_sink_seconds\": %.6f, \"recording_sink_seconds\": \
     %.6f, \"overhead_pct\": %.3f, \"min_overhead_pct\": %.3f, \
     \"gate_pct\": 2.0, \"ok\": %b },\n\
    \  \"peak_heap_bytes\": %d\n}\n"
    speedup ok speedup_monotone monotone_tolerance null_s rec_s overhead_pct
    min_pct obs_ok (peak_heap_bytes ());
  close_out oc;
  Format.printf "  wrote BENCH_fsim.json@.";
  if not ok then begin
    prerr_endline
      "fsim: cone-engine statuses diverge from the full-settle baseline";
    exit 1
  end;
  if not speedup_monotone then begin
    prerr_endline "fsim: seconds not monotone non-increasing over jobs 1/2/4";
    exit 1
  end;
  if not obs_ok then begin
    prerr_endline "fsim: recording-sink overhead exceeds the 2% gate";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* implic mode: conflict-engine gain and cost (BENCH_implic.json)    *)
(* ---------------------------------------------------------------- *)

(* Runs the full mission flow on tcore32 with the static implication
   engine off and on (jobs 1 and 4), reports classification wall-time,
   conflict-proof counts and the residue left for search, cross-checks
   jobs-invariance and the structural invariants, and spot-checks a
   sample of UC verdicts against the bounded model checker on the
   mission machine.  Run with: dune exec bench/main.exe -- implic *)
let implic_bench () =
  section "implic — conflict-engine gain on the mission flow (tcore32)";
  let nl = Lazy.force t32 in
  let mission = Lazy.force mission32 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let statuses fl = Array.init (Flist.size fl) (Flist.status fl) in
  let conflicts (r : Olfu.Flow.report) =
    Flist.count_status r.Olfu.Flow.flist
      (Status.Undetectable Status.Conflict)
  in
  let residue (r : Olfu.Flow.report) =
    Flist.size r.Olfu.Flow.flist - r.Olfu.Flow.total_olfu
  in
  let run_with ~implic ~jobs =
    Olfu.Flow.run { rc with Olfu.Run_config.implic; jobs } nl mission
  in
  (* The monotone gate compares per-jobs seconds at noise scale, so two
     biases must be controlled: scheduler outliers (min over rounds) and
     heap growth across the bench — a fixed config order would bill the
     later configurations for the garbage of the earlier ones, so the
     configs are interleaved round-robin with a full major collection
     before every timed run. *)
  let all_configs =
    [| (false, 1); (true, 1); (false, 2); (true, 2); (false, 4); (true, 4) |]
  in
  let best = Hashtbl.create 7 in
  ignore (run_with ~implic:true ~jobs:1 : Olfu.Flow.report) (* warm-up *);
  (* the order rotates per rep: periodic background load can alias onto
     one slot of a fixed rotation, which min-of-N cannot filter out *)
  let nc = Array.length all_configs in
  for rep = 0 to 4 do
    for k = 0 to nc - 1 do
      let ((implic, jobs) as cfg) = all_configs.((rep + k) mod nc) in
      Gc.full_major ();
      let r, s = time (fun () -> run_with ~implic ~jobs) in
      match Hashtbl.find_opt best cfg with
      | Some (_, s0) when s0 <= s -> ()
      | _ -> Hashtbl.replace best cfg (r, s)
    done
  done;
  let run_min ~implic ~jobs = Hashtbl.find best (implic, jobs) in
  (* per-worker utilization of the classify pool, off the pool gauges of
     a separately traced run *)
  let utilization ~jobs =
    let module Trace = Olfu_obs.Trace in
    let trace = Trace.create () in
    ignore
      (Olfu.Flow.run
         { rc with Olfu.Run_config.implic = true; jobs; trace }
         nl mission
        : Olfu.Flow.report);
    Option.value ~default:1.0
      (List.assoc_opt "pool.last_utilization" (Trace.gauges trace))
  in
  let off1, off1_s = run_min ~implic:false ~jobs:1 in
  let on1, on1_s = run_min ~implic:true ~jobs:1 in
  let off2, off2_s = run_min ~implic:false ~jobs:2 in
  let on2, on2_s = run_min ~implic:true ~jobs:2 in
  let off4, off4_s = run_min ~implic:false ~jobs:4 in
  let on4, on4_s = run_min ~implic:true ~jobs:4 in
  let util1 = utilization ~jobs:1 in
  let util2 = utilization ~jobs:2 in
  let util4 = utilization ~jobs:4 in
  let row name secs (r : Olfu.Flow.report) =
    Format.printf "  %-14s %7.3f s   classified %6d   UC %5d   residue %6d@."
      name secs r.Olfu.Flow.total_olfu (conflicts r) (residue r)
  in
  row "off jobs=1" off1_s off1;
  row "on  jobs=1" on1_s on1;
  row "off jobs=2" off2_s off2;
  row "on  jobs=2" on2_s on2;
  row "off jobs=4" off4_s off4;
  row "on  jobs=4" on4_s on4;
  let gain = on1.Olfu.Flow.total_olfu - off1.Olfu.Flow.total_olfu in
  Format.printf "  gain over UT+UB: %d faults (%d conflict proofs)@." gain
    (conflicts on1);
  let jobs_ok =
    statuses on1.Olfu.Flow.flist = statuses on2.Olfu.Flow.flist
    && statuses on1.Olfu.Flow.flist = statuses on4.Olfu.Flow.flist
    && statuses off1.Olfu.Flow.flist = statuses off2.Olfu.Flow.flist
    && statuses off1.Olfu.Flow.flist = statuses off4.Olfu.Flow.flist
  in
  (* non-increasing seconds across jobs 1 -> 2 -> 4 within tolerance, for
     both the implic-off and implic-on series *)
  (* 1.10: the regression this guards against is a 1.7x-4.8x inversion;
     run-to-run noise on a busy shared host reaches ~9% even on min-of-N *)
  let monotone_tolerance = 1.10 in
  let non_increasing series =
    let rec chk = function
      | a :: (b :: _ as tl) -> b <= (a *. monotone_tolerance) && chk tl
      | _ -> true
    in
    chk series
  in
  let speedup_monotone =
    non_increasing [ off1_s; off2_s; off4_s ]
    && non_increasing [ on1_s; on2_s; on4_s ]
  in
  (* the engine only adds verdicts: anything UT+UB classifies stays
     classified with the engine on *)
  let monotone =
    let son = statuses on1.Olfu.Flow.flist
    and soff = statuses off1.Olfu.Flow.flist in
    let ok = ref (Array.length son = Array.length soff) in
    Array.iteri
      (fun i st ->
        if Status.is_undetectable st && not (Status.is_undetectable son.(i))
        then ok := false)
      soff;
    !ok
  in
  (* spot-check conflict proofs against the bounded model checker on the
     full mission machine (scan pins held functional) *)
  let mnl =
    Olfu_manip.Script.apply on1.Olfu.Flow.mission_netlist
      [
        Olfu_manip.Script.Tie_input ("scan_en", Logic4.L0);
        Olfu_manip.Script.Tie_input ("scan_in0", Logic4.L0);
      ]
  in
  let observable = Olfu.Mission.observed_in_field mission mnl in
  let oracle_ok = ref true in
  let oracle_checked = ref 0 in
  Flist.iteri
    (fun _ f st ->
      if
        !oracle_checked < 6
        && st = Status.Undetectable Status.Conflict
        && f.Fault.site.Fault.pin <> Cell.Pin.Clk
      then begin
        incr oracle_checked;
        match
          Bmc.run ~cycles:3 ~observable_output:observable
            ~conflict_limit:20_000 mnl f
        with
        | Bmc.Test stim ->
          if Bmc.confirm_test ~observable_output:observable mnl f stim then begin
            Format.printf "  ORACLE REFUTED: %s@." (Fault.to_string mnl f);
            oracle_ok := false
          end
        | Bmc.No_test_within _ | Bmc.Unknown -> ()
      end)
    on1.Olfu.Flow.flist;
  Format.printf
    "  jobs invariant: %b   monotone over UT+UB: %b   oracle sample: %d \
     checked, ok %b@."
    jobs_ok monotone !oracle_checked !oracle_ok;
  Format.printf
    "  seconds monotone non-increasing over jobs: %b   utilization \
     j1/j2/j4: %.2f/%.2f/%.2f@."
    speedup_monotone util1 util2 util4;
  let oc = open_out "BENCH_implic.json" in
  let pr name secs (r : Olfu.Flow.report) last =
    Printf.fprintf oc
      "    { \"config\": %S, \"seconds\": %.6f, \"classified\": %d, \
       \"conflict\": %d, \"residue\": %d }%s\n"
      name secs r.Olfu.Flow.total_olfu (conflicts r) (residue r)
      (if last then "" else ",")
  in
  Printf.fprintf oc "{\n  \"netlist\": \"tcore32\",\n  \"runs\": [\n";
  pr "implic_off_jobs1" off1_s off1 false;
  pr "implic_off_jobs2" off2_s off2 false;
  pr "implic_off_jobs4" off4_s off4 false;
  pr "implic_on_jobs1" on1_s on1 false;
  pr "implic_on_jobs2" on2_s on2 false;
  pr "implic_on_jobs4" on4_s on4 true;
  Printf.fprintf oc
    "  ],\n  \"gain\": %d,\n  \"jobs_invariant\": %b,\n\
    \  \"monotone\": %b,\n  \"speedup_monotone\": %b,\n\
    \  \"monotone_tolerance\": %.2f,\n\
    \  \"utilization\": { \"jobs1\": %.3f, \"jobs2\": %.3f, \"jobs4\": \
     %.3f },\n\
    \  \"oracle_checked\": %d,\n  \"oracle_ok\": %b,\n\
    \  \"peak_heap_bytes\": %d\n}\n"
    gain jobs_ok monotone speedup_monotone monotone_tolerance util1 util2
    util4 !oracle_checked !oracle_ok (peak_heap_bytes ());
  close_out oc;
  Format.printf "  wrote BENCH_implic.json@.";
  if not (jobs_ok && monotone && !oracle_ok && gain > 0) then begin
    prerr_endline "implic: gate violated (gain/invariance/oracle)";
    exit 1
  end;
  if not speedup_monotone then begin
    prerr_endline
      "implic: seconds not monotone non-increasing over jobs 1/2/4";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* obs mode: observability-layer gates (BENCH_obs.json)              *)
(* ---------------------------------------------------------------- *)

(* Gates for the olfu_obs layer on the mission flow (tcore16):
   (a) counter totals are invariant under jobs ∈ {1,2,4};
   (b) the run manifest and Chrome trace survive a strict JSON
       round-trip, and the manifest's per-engine and per-step seconds
       each sum to within 5% of the flow's wall time;
   (c) the cost of a recording sink vs the default no-op sink is
       reported (the hard <2% gate lives in the fsim mode, where
       min-of-N runs shed the noise).
   Extra argv entries name a manifest and optionally a trace file
   written by the CLI (tools/check.sh passes what
   `olfu analyze --manifest --trace` wrote); both are re-parsed and
   schema-checked here.  Run with:
   dune exec bench/main.exe -- obs [MANIFEST [TRACE]] *)
let obs_bench files =
  let module J = Olfu_obs.Json in
  let module Trace = Olfu_obs.Trace in
  let module Manifest = Olfu_obs.Manifest in
  let module Export = Olfu_obs.Export in
  section "obs — observability gates on the mission flow (tcore16)";
  let nl = Lazy.force t16 and mission = Lazy.force mission16 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let run_rec jobs =
    let sink = Trace.create () in
    let report, wall =
      time (fun () ->
          Olfu.Flow.run
            { rc with Olfu.Run_config.jobs; trace = sink }
            nl mission)
    in
    (sink, report, wall)
  in
  let s1, r1, w1 = run_rec 1 in
  let s2, _, _ = run_rec 2 in
  let s4, _, _ = run_rec 4 in
  let counters_ok =
    Trace.counters s1 = Trace.counters s2
    && Trace.counters s1 = Trace.counters s4
  in
  Format.printf "  counters invariant under jobs {1,2,4}: %b  (%d counters)@."
    counters_ok
    (List.length (Trace.counters s1));
  (* strict schema check shared between the in-process manifest and any
     CLI-written one *)
  let check_manifest name j =
    let fail msg =
      Format.printf "  manifest %s: FAIL — %s@." name msg;
      false
    in
    let fget k = Option.bind (J.member k j) J.to_float_opt in
    match
      ( fget "wall_seconds", fget "engine_seconds_total",
        fget "step_seconds_total", J.member "engines" j, J.member "steps" j,
        J.member "counters" j,
        Option.bind (J.member "schema" j) J.to_int_opt,
        Option.bind (J.member "git" j) J.to_string_opt )
    with
    | ( Some wall, Some eng, Some stp, Some (J.Obj engines),
        Some (J.List steps), Some (J.Obj _), Some 1, Some _ ) ->
      let within what total =
        if abs_float (total -. wall) <= 0.05 *. wall then true
        else
          fail
            (Printf.sprintf "%s seconds %.3f vs wall %.3f beyond 5%%" what
               total wall)
      in
      if wall <= 0. || eng <= 0. || stp <= 0. || engines = [] || steps = []
      then fail "zero or missing seconds"
      else if within "engine" eng && within "step" stp then begin
        Format.printf
          "  manifest %s: engines %.3f s, steps %.3f s, wall %.3f s — \
           within 5%%@."
          name eng stp wall;
        true
      end
      else false
    | _ -> fail "schema fields missing"
  in
  let check_trace name j =
    match J.member "traceEvents" j with
    | Some (J.List evs) ->
      let xs =
        List.filter
          (fun e ->
            Option.bind (J.member "ph" e) J.to_string_opt = Some "X"
            && J.member "name" e <> None
            && Option.bind (J.member "ts" e) J.to_float_opt <> None
            && Option.bind (J.member "dur" e) J.to_float_opt <> None)
          evs
      in
      if xs = [] then begin
        Format.printf "  trace %s: FAIL — no complete (ph=X) events@." name;
        false
      end
      else begin
        Format.printf "  trace %s: %d events, %d spans@." name
          (List.length evs) (List.length xs);
        true
      end
    | _ ->
      Format.printf "  trace %s: FAIL — no traceEvents array@." name;
      false
  in
  let roundtrip name j =
    match J.parse (J.to_string ~indent:true j) with
    | Ok j' -> Some j'
    | Error e ->
      Format.printf "  %s: FAIL — emitted JSON does not reparse: %s@." name e;
      None
  in
  let steps =
    List.map
      (fun (s : Olfu.Flow.step_report) ->
        {
          Manifest.name = Olfu.Flow.source_name s.Olfu.Flow.source;
          seconds = s.Olfu.Flow.seconds;
          classified = s.Olfu.Flow.classified;
          verdicts =
            List.map
              (fun (u, n) ->
                (Status.code (Status.Undetectable u), n))
              s.Olfu.Flow.by_verdict;
        })
      r1.Olfu.Flow.steps
  in
  let manifest =
    Manifest.make ~steps ~prep:r1.Olfu.Flow.prep ~wall_seconds:w1 s1
  in
  let manifest_ok =
    match roundtrip "manifest" manifest with
    | Some j -> check_manifest "in-process" j
    | None -> false
  in
  let trace_ok =
    match roundtrip "trace" (Export.chrome_json s1) with
    | Some j -> check_trace "in-process" j
    | None -> false
  in
  (* CLI-written files, if any were passed on the command line *)
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let check_file kind path =
    match J.parse (read_file path) with
    | Error e ->
      Format.printf "  %s %s: FAIL — %s@." kind path e;
      false
    | Ok j ->
      if kind = "manifest" then check_manifest path j else check_trace path j
  in
  let files_ok =
    match files with
    | [] -> true
    | [ m ] -> check_file "manifest" m
    | m :: t :: _ -> check_file "manifest" m && check_file "trace" t
  in
  (* sink cost on the full flow, informational (gated in fsim mode) *)
  let _, null_s =
    time (fun () -> Olfu.Flow.run { rc with Olfu.Run_config.jobs = 1 } nl mission)
  in
  let overhead_pct = 100. *. (w1 -. null_s) /. null_s in
  Format.printf
    "  flow wall: no-op sink %.3f s, recording sink %.3f s  (%+.2f%%)@."
    null_s w1 overhead_pct;
  J.to_file ~indent:true "BENCH_obs.json"
    (J.Obj
       [
         ("netlist", J.Str "tcore16");
         ("counters_jobs_invariant", J.Bool counters_ok);
         ( "counters",
           J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Trace.counters s1))
         );
         ("manifest_ok", J.Bool manifest_ok);
         ("trace_ok", J.Bool trace_ok);
         ("external_files_ok", J.Bool files_ok);
         ("noop_sink_seconds", J.Float null_s);
         ("recording_sink_seconds", J.Float w1);
         ("recording_overhead_pct", J.Float overhead_pct);
         ("peak_heap_bytes", J.Int (peak_heap_bytes ()));
       ]);
  Format.printf "  wrote BENCH_obs.json@.";
  if not (counters_ok && manifest_ok && trace_ok && files_ok) then begin
    prerr_endline "obs: gate violated (invariance/manifest/trace)";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* safety mode: safe-fault taxonomy gates (BENCH_safety.json)        *)
(* ---------------------------------------------------------------- *)

(* Gates for the olfu_safety classifier:
   (a) the taxonomy is consistent on every core (partition, untouched
       structural/conflict populations, no detected fault rewritten);
   (b) the software pass proves >= 1 new safe fault on tcore32 and the
       SEU axis finds >= 1 unmasked flop there;
   (c) classes and SEU verdicts are identical for jobs 1 vs 4 (tcore16);
   (d) BMC oracle: sampled software-safe faults stay untestable when the
       software facts are tied into the bounded model checker's netlist;
   (e) replay oracle: flops the BMC calls masked show no concrete
       divergence when the bit-flip is injected in Seq_fsim over random
       windows of the same length.
   Run with: dune exec bench/main.exe -- safety *)
let safety_bench () =
  let module A = Olfu_absint.Absint in
  let module P = Olfu_sbst.Programs in
  let module Sc = Olfu_safety.Classify in
  let module T = Olfu_safety.Taxonomy in
  let module Seu = Olfu_safety.Seu in
  section "safety — safe-fault taxonomy gates";
  let window = 3 in
  let classify cfg nl mission ~jobs ~seu_limit =
    let named =
      List.map (fun p -> (p.P.pname, A.of_program cfg p)) (P.suite cfg)
    in
    let facts =
      A.activation_facts ~label:(cfg.Soc.name ^ "-suite") cfg named
    in
    ( Sc.run
        ~config:
          {
            Sc.rc = { rc with Olfu.Run_config.jobs };
            window;
            seu_limit;
            conflict_limit = 50_000;
            (* the invariant pass has its own bench mode (invar) with a
               dedicated UC-delta gate; keep this mode's gates pinned to
               the software/SEU axes *)
            invariants = false;
          }
        ~facts nl mission,
      List.map snd named )
  in
  let cnt r c = List.assoc c r.Sc.counts in
  let row name (r : Sc.report) =
    Format.printf
      "  %-12s universe %6d  structural %5d  conflict %3d  software %4d  \
       SEU m/p/v/u %d/%d/%d/%d  %6.2f s  consistent %b@."
      name r.Sc.universe
      (cnt r T.Structural_uc)
      (cnt r T.Conflict_uc)
      (cnt r T.Software_safe)
      r.Sc.seu.Seu.masked r.Sc.seu.Seu.protected_ r.Sc.seu.Seu.vulnerable
      r.Sc.seu.Seu.unknown r.Sc.seconds (Sc.consistent r)
  in
  let r16, _ =
    classify Soc.tcore16 (Lazy.force t16) (Lazy.force mission16) ~jobs:1
      ~seu_limit:16
  in
  let r16j4, _ =
    classify Soc.tcore16 (Lazy.force t16) (Lazy.force mission16) ~jobs:4
      ~seu_limit:16
  in
  let r32, ts32 =
    classify Soc.tcore32 (Lazy.force t32) (Lazy.force mission32) ~jobs:4
      ~seu_limit:16
  in
  let dft = Soc.generate Soc.tcore32_dft in
  let rdft, _ =
    classify Soc.tcore32_dft dft
      (Olfu.Mission.of_soc Soc.tcore32_dft dft)
      ~jobs:4 ~seu_limit:16
  in
  row "tcore16" r16;
  row "tcore32" r32;
  row "tcore32_dft" rdft;
  let seu_cls (r : Sc.report) =
    Array.map (fun x -> (x.Seu.ff, x.Seu.cls)) r.Sc.seu.Seu.results
  in
  let jobs_ok = r16.Sc.classes = r16j4.Sc.classes && seu_cls r16 = seu_cls r16j4 in
  let consistent_all =
    Sc.consistent r16 && Sc.consistent r32 && Sc.consistent rdft
  in
  (* (d) BMC oracle: a software-safe verdict means the activation
     condition contradicts the software facts — tie those facts into the
     BMC machine and the fault must stay untestable there *)
  let swnl =
    Script.apply r32.Sc.bmc_netlist
      (A.assume_script ~width:Soc.tcore32.Soc.xlen ts32 r32.Sc.bmc_netlist)
  in
  let oracle_ok = ref true in
  let oracle_checked = ref 0 in
  Flist.iteri
    (fun _ f st ->
      if
        !oracle_checked < 4
        && st = Status.Undetectable Status.Software
        && f.Fault.site.Fault.pin <> Cell.Pin.Clk
      then begin
        incr oracle_checked;
        match
          Bmc.run ~cycles:3 ~observable_output:r32.Sc.observable
            ~conflict_limit:20_000 swnl f
        with
        | Bmc.Test stim ->
          if Bmc.confirm_test ~observable_output:r32.Sc.observable swnl f stim
          then begin
            Format.printf "  ORACLE REFUTED: %s@." (Fault.to_string swnl f);
            oracle_ok := false
          end
        | Bmc.No_test_within _ | Bmc.Unknown -> ()
      end)
    r32.Sc.flow.Olfu.Flow.flist;
  (* (e) replay oracle: BMC-masked flops must not diverge concretely *)
  let bnl = r16.Sc.bmc_netlist in
  let masked =
    Array.of_list
      (List.filter_map
         (fun (x : Seu.ff_result) ->
           if x.Seu.cls = T.Seu_masked then Some x.Seu.ff else None)
         (Array.to_list r16.Sc.seu.Seu.results))
  in
  let replay_ok = ref true in
  let replay_checked = Array.length masked in
  if replay_checked > 0 then begin
    Random.init 42;
    let inputs = Array.to_list (Netlist.inputs bnl) in
    for _trial = 1 to 5 do
      let stim =
        Array.init window (fun _ ->
            {
              Olfu_fsim.Seq_fsim.assign =
                List.map
                  (fun i ->
                    ( i,
                      if Netlist.has_role bnl i Netlist.Reset then Logic4.L1
                      else if Random.bool () then Logic4.L1
                      else Logic4.L0 ))
                  inputs;
              strobe = true;
            })
      in
      let obs =
        Olfu_fsim.Seq_fsim.run_seu ~init:Logic4.L0
          ~observe:r16.Sc.observable
          ~alarm:(Seu.default_alarm bnl) bnl ~ffs:masked stim
      in
      Array.iter
        (fun (o : Olfu_fsim.Seq_fsim.seu_obs) ->
          if o.Olfu_fsim.Seq_fsim.seu_diverged then begin
            Format.printf "  REPLAY REFUTED: masked flop %d diverged@."
              o.Olfu_fsim.Seq_fsim.seu_ff;
            replay_ok := false
          end)
        obs
    done
  end;
  let sw_gain = cnt r32 T.Software_safe in
  let unmasked32 = r32.Sc.seu.Seu.protected_ + r32.Sc.seu.Seu.vulnerable in
  Format.printf
    "  jobs invariant: %b   consistent: %b   software gain (t32): %d   \
     unmasked flops (t32): %d@."
    jobs_ok consistent_all sw_gain unmasked32;
  Format.printf "  oracle: %d checked, ok %b   replay: %d flops x5, ok %b@."
    !oracle_checked !oracle_ok replay_checked !replay_ok;
  let oc = open_out "BENCH_safety.json" in
  let core name (r : Sc.report) last =
    Printf.fprintf oc
      "    { \"config\": %S, \"universe\": %d, \"structural_uc\": %d, \
       \"conflict_uc\": %d, \"software_safe\": %d, \"unclassified\": %d, \
       \"seu_checked\": %d, \"seu_masked\": %d, \"seu_protected\": %d, \
       \"seu_vulnerable\": %d, \"seu_unknown\": %d, \"consistent\": %b, \
       \"seconds\": %.6f }%s\n"
      name r.Sc.universe
      (cnt r T.Structural_uc)
      (cnt r T.Conflict_uc)
      (cnt r T.Software_safe)
      (cnt r T.Unclassified)
      (Array.length r.Sc.seu.Seu.results)
      r.Sc.seu.Seu.masked r.Sc.seu.Seu.protected_ r.Sc.seu.Seu.vulnerable
      r.Sc.seu.Seu.unknown (Sc.consistent r) r.Sc.seconds
      (if last then "" else ",")
  in
  Printf.fprintf oc "{\n  \"window\": %d,\n  \"cores\": [\n" window;
  core "tcore16" r16 false;
  core "tcore32" r32 false;
  core "tcore32_dft" rdft true;
  Printf.fprintf oc
    "  ],\n  \"jobs_invariant\": %b,\n  \"software_gain\": %d,\n\
    \  \"unmasked_flops\": %d,\n  \"oracle_checked\": %d,\n\
    \  \"oracle_ok\": %b,\n  \"replay_checked\": %d,\n  \"replay_ok\": %b,\n\
    \  \"peak_heap_bytes\": %d\n}\n"
    jobs_ok sw_gain unmasked32 !oracle_checked !oracle_ok replay_checked
    !replay_ok (peak_heap_bytes ());
  close_out oc;
  Format.printf "  wrote BENCH_safety.json@.";
  if
    not
      (jobs_ok && consistent_all && sw_gain > 0 && unmasked32 > 0
     && !oracle_ok && !replay_ok)
  then begin
    prerr_endline
      "safety: gate violated (consistency/invariance/gain/oracle/replay)";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* invar mode: invariant-engine gates (BENCH_invar.json)             *)
(* ---------------------------------------------------------------- *)

(* Gates for the olfu_invar mine/filter/prove pipeline:
   (a) every core yields proved invariants, with >= 1 non-constant class
       (mutex / at-most-one / range) proved on tcore32;
   (b) the proved set is identical for jobs 1 vs 4 (tcore16) — the
       greatest inductive subset is unique;
   (c) BMC oracle: 4 sampled proved invariants (non-constant classes
       first) are re-checked by a bounded reachability query from reset
       that shares none of the induction structure;
   (d) UC-delta: the invariant-strengthened implication database closes
       conflict faults on tcore32 that the plain mission analysis leaves
       open (recorded and gated >= 1).
   Run with: dune exec bench/main.exe -- invar *)
let invar_bench () =
  let module Inv = Olfu_invar.Invar in
  let module Sc = Olfu_safety.Classify in
  let module U = Untestable in
  section "invar — sequential invariant engine gates";
  let machine nl mission =
    let flow = Olfu.Flow.run { rc with Olfu.Run_config.jobs = 4 } nl mission in
    (Sc.bmc_machine flow.Olfu.Flow.mission_netlist, flow)
  in
  let m16, _ = machine (Lazy.force t16) (Lazy.force mission16) in
  let m32, flow32 = machine (Lazy.force t32) (Lazy.force mission32) in
  let dft = Soc.generate Soc.tcore32_dft in
  let mdft, _ = machine dft (Olfu.Mission.of_soc Soc.tcore32_dft dft) in
  let r16 = Inv.run ~jobs:1 m16 in
  let r16j4 = Inv.run ~jobs:4 m16 in
  let r32 = Inv.run ~jobs:4 m32 in
  let rdft = Inv.run ~jobs:4 mdft in
  let nonconst r =
    List.length
      (List.filter (fun (i : Inv.invariant) -> not (Inv.is_const i.Inv.form))
         r.Inv.proved)
  in
  let row name (r : Inv.report) =
    Format.printf
      "  %-12s flops %4d  mined %4d  killed %3d  unproved %3d  proved %4d \
       (non-const %d)  %6.2f s@."
      name r.Inv.total_ffs
      (List.length r.Inv.mined)
      (List.length r.Inv.killed)
      (List.length r.Inv.unproved)
      (List.length r.Inv.proved)
      (nonconst r) r.Inv.seconds
  in
  row "tcore16" r16;
  row "tcore32" r32;
  row "tcore32_dft" rdft;
  let jobs_ok = r16.Inv.proved = r16j4.Inv.proved in
  (* (c) bounded oracle on 4 proved invariants, non-constant first *)
  let sample =
    let nc, c =
      List.partition
        (fun (i : Inv.invariant) -> not (Inv.is_const i.Inv.form))
        r32.Inv.proved
    in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    take 4 (nc @ c)
  in
  let oracle_ok =
    List.for_all
      (fun (i : Inv.invariant) ->
        let ok = Inv.bounded_check ~cycles:6 m32 i.Inv.form in
        if not ok then
          Format.printf "  ORACLE REFUTED: %a@." (Inv.pp_candidate m32)
            i.Inv.form;
        ok)
      sample
  in
  (* (d) UC-delta on tcore32: what only the strengthened database closes *)
  let observable =
    Olfu.Mission.observed_in_field
      (Lazy.force mission32)
      flow32.Olfu.Flow.mission_netlist
  in
  let base = U.analyze ~observable_output:observable m32 in
  let strengthened =
    U.analyze ~observable_output:observable
      ~consts:(Ternary.run ~assume:(Inv.assume_facts r32) m32)
      ~extra_edges:(Inv.edges r32) m32
  in
  let breakdown = U.untestable_breakdown ~invariant:strengthened base m32 in
  let uc_delta = List.assoc Status.Invariant breakdown in
  Format.printf
    "  jobs invariant: %b   oracle: %d checked, ok %b   UC-delta (t32): \
     %d@."
    jobs_ok (List.length sample) oracle_ok uc_delta;
  let oc = open_out "BENCH_invar.json" in
  let core name (r : Inv.report) last =
    Printf.fprintf oc
      "    { \"config\": %S, \"flops\": %d, \"mined\": %d, \
       \"killed\": %d, \"unproved\": %d, \"proved\": %d, \
       \"nonconst_proved\": %d, \"k\": %d, \"seconds\": %.6f }%s\n"
      name r.Inv.total_ffs
      (List.length r.Inv.mined)
      (List.length r.Inv.killed)
      (List.length r.Inv.unproved)
      (List.length r.Inv.proved)
      (nonconst r) r.Inv.k r.Inv.seconds
      (if last then "" else ",")
  in
  Printf.fprintf oc "{\n  \"cores\": [\n";
  core "tcore16" r16 false;
  core "tcore32" r32 false;
  core "tcore32_dft" rdft true;
  Printf.fprintf oc
    "  ],\n  \"jobs_invariant\": %b,\n  \"oracle_checked\": %d,\n\
    \  \"oracle_ok\": %b,\n  \"uc_delta\": %d,\n\
    \  \"peak_heap_bytes\": %d\n}\n"
    jobs_ok (List.length sample) oracle_ok uc_delta (peak_heap_bytes ());
  close_out oc;
  Format.printf "  wrote BENCH_invar.json@.";
  if
    not
      (jobs_ok && oracle_ok && uc_delta >= 1
      && nonconst r32 >= 1
      && List.length r16.Inv.proved > 0
      && List.length rdft.Inv.proved > 0)
  then begin
    prerr_endline "invar: gate violated (invariance/oracle/uc-delta/counts)";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* slice mode: cone-of-influence slicing gates (BENCH_slice.json)    *)
(* ---------------------------------------------------------------- *)

(* Gates for the olfu_slice engine:
   (a) per core: the severed (hard/mission) backward slice-size
       distribution must improve on the structural cone (mean no
       larger), plus edge counts and the mission SCC condensation;
   (b) bit-identity on tcore16 — the whole point of the hard-constant
       discipline: SEU classes, the invariant proved set (with
       certificates) and sampled BMC oracle verdicts are identical
       sliced vs unsliced;
   (c) the sliced engine carries a full --seu-limit 0 sweep of tcore32
       (every flop, no sampling), timed.
   Run with: dune exec bench/main.exe -- slice *)
let slice_bench () =
  let module Sl = Olfu_slice.Slice in
  let module Sc = Olfu_safety.Classify in
  let module Seu = Olfu_safety.Seu in
  let module Inv = Olfu_invar.Invar in
  section "slice — constant-severed cone-of-influence gates";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let machine nl mission =
    let flow = Olfu.Flow.run { rc with Olfu.Run_config.jobs = 4 } nl mission in
    Sc.bmc_machine flow.Olfu.Flow.mission_netlist
  in
  let m16 = machine (Lazy.force t16) (Lazy.force mission16) in
  let m32 = machine (Lazy.force t32) (Lazy.force mission32) in
  let dft = Soc.generate Soc.tcore32_dft in
  let mdft = machine dft (Olfu.Mission.of_soc Soc.tcore32_dft dft) in
  let edge_count (e : Sl.edges) =
    Array.fold_left (fun a s -> a + Array.length s) 0 e.Sl.supports
  in
  let core_stats name m =
    let g, secs = time (fun () -> Sl.get m) in
    let d e = Sl.dist_of (Sl.backward_sizes g e) in
    let ds = d g.Sl.structural
    and dh = d g.Sl.hard_edges
    and dm = d g.Sl.mission_edges in
    let sc = Sl.scc g.Sl.mission_edges (Array.length g.Sl.flops) in
    Format.printf
      "  %-12s flops %4d  edges s/h/m %d/%d/%d  slice mean s/h/m \
       %.1f/%.1f/%.1f  sccs %d  %5.2f s@."
      name (Array.length g.Sl.flops)
      (edge_count g.Sl.structural)
      (edge_count g.Sl.hard_edges)
      (edge_count g.Sl.mission_edges)
      ds.Sl.mean dh.Sl.mean dm.Sl.mean
      (Array.length sc.Sl.comps) secs;
    (name, g, ds, dh, dm, sc, secs)
  in
  let stats =
    [ core_stats "tcore16" m16; core_stats "tcore32" m32;
      core_stats "tcore32_dft" mdft ]
  in
  let severing_ok =
    List.for_all
      (fun (_, _, ds, dh, dm, _, _) ->
        dh.Sl.mean <= ds.Sl.mean +. 1e-9 && dm.Sl.mean <= dh.Sl.mean +. 1e-9)
      stats
  in
  (* (b1) SEU classes, every flop of tcore16, sliced vs unsliced *)
  let seu_window = 3 in
  let seu_s, seu_s_t =
    time (fun () -> Seu.run ~window:seu_window ~jobs:4 ~limit:0 ~sliced:true m16)
  in
  let seu_f, seu_f_t =
    time (fun () ->
        Seu.run ~window:seu_window ~jobs:4 ~limit:0 ~sliced:false m16)
  in
  let verdicts (r : Seu.report) =
    Array.map
      (fun (x : Seu.ff_result) -> (x.Seu.ff, x.Seu.cls, x.Seu.structural))
      r.Seu.results
  in
  let seu_identical = verdicts seu_s = verdicts seu_f in
  Format.printf
    "  SEU cross-check (t16, %d flops): sliced %.2f s vs full %.2f s, \
     identical %b@."
    seu_s.Seu.total_ffs seu_s_t seu_f_t seu_identical;
  (* (b2) invariant proved set, certificates included *)
  let cands = Inv.mine m16 in
  let inv_s, inv_s_t =
    time (fun () -> Inv.prove ~jobs:4 ~sliced:true m16 cands)
  in
  let inv_f, inv_f_t =
    time (fun () -> Inv.prove ~jobs:4 ~sliced:false m16 cands)
  in
  let invar_identical = inv_s = inv_f in
  Format.printf
    "  invar cross-check (t16, %d candidates): sliced %.2f s vs full %.2f \
     s, identical %b@."
    (List.length cands) inv_s_t inv_f_t invar_identical;
  (* (b3) BMC oracle ctor-identity on a fault sample *)
  let g16 = Sl.get m16 in
  let u = Fault.universe m16 in
  let same_ctor a b =
    match (a, b) with
    | Bmc.Test _, Bmc.Test _ -> true
    | Bmc.No_test_within x, Bmc.No_test_within y -> x = y
    | Bmc.Unknown, Bmc.Unknown -> true
    | _ -> false
  in
  let oracle_checked = ref 0 in
  let oracle_identical = ref true in
  Array.iteri
    (fun i f ->
      if i mod 409 = 0 && f.Fault.site.Fault.pin <> Cell.Pin.Clk then begin
        incr oracle_checked;
        let full = Bmc.run ~cycles:4 m16 f in
        let sliced = Sl.oracle ~cycles:4 g16 f in
        if not (same_ctor full sliced) then begin
          Format.printf "  ORACLE MISMATCH: %s@." (Fault.to_string m16 f);
          oracle_identical := false
        end
      end)
    u;
  Format.printf "  BMC oracle cross-check (t16): %d faults, identical %b@."
    !oracle_checked !oracle_identical;
  (* (c) the flagship run: every tcore32 flop, sliced *)
  let full32, full32_t =
    time (fun () -> Seu.run ~window:seu_window ~jobs:4 ~limit:0 m32)
  in
  Format.printf
    "  full sweep (t32, %d flops, window %d): m/p/v/u %d/%d/%d/%d in %.2f \
     s@."
    full32.Seu.total_ffs seu_window full32.Seu.masked full32.Seu.protected_
    full32.Seu.vulnerable full32.Seu.unknown full32_t;
  let oc = open_out "BENCH_slice.json" in
  let dist_fields label (d : Sl.dist) =
    Printf.sprintf
      "\"%s\": { \"min\": %d, \"max\": %d, \"mean\": %.2f, \"median\": %d, \
       \"p90\": %d }"
      label d.Sl.min_ d.Sl.max_ d.Sl.mean d.Sl.median d.Sl.p90
  in
  Printf.fprintf oc "{\n  \"cores\": [\n";
  List.iteri
    (fun k (name, g, ds, dh, dm, sc, secs) ->
      Printf.fprintf oc
        "    { \"config\": %S, \"flops\": %d, \"edges_structural\": %d, \
         \"edges_hard\": %d, \"edges_mission\": %d, %s, %s, %s, \
         \"mission_sccs\": %d, \"seconds\": %.6f }%s\n"
        name
        (Array.length g.Sl.flops)
        (edge_count g.Sl.structural)
        (edge_count g.Sl.hard_edges)
        (edge_count g.Sl.mission_edges)
        (dist_fields "slice_structural" ds)
        (dist_fields "slice_hard" dh)
        (dist_fields "slice_mission" dm)
        (Array.length sc.Sl.comps)
        secs
        (if k < List.length stats - 1 then "," else ""))
    stats;
  Printf.fprintf oc
    "  ],\n  \"severing_ok\": %b,\n  \"seu_identical\": %b,\n\
    \  \"seu_flops\": %d,\n  \"seu_sliced_seconds\": %.6f,\n\
    \  \"seu_full_seconds\": %.6f,\n  \"invar_identical\": %b,\n\
    \  \"invar_candidates\": %d,\n  \"oracle_checked\": %d,\n\
    \  \"oracle_identical\": %b,\n  \"full32_flops\": %d,\n\
    \  \"full32_window\": %d,\n  \"full32_seconds\": %.6f,\n\
    \  \"full32_unknown\": %d,\n  \"peak_heap_bytes\": %d\n}\n"
    severing_ok seu_identical seu_s.Seu.total_ffs seu_s_t seu_f_t
    invar_identical (List.length cands) !oracle_checked !oracle_identical
    full32.Seu.total_ffs seu_window full32_t full32.Seu.unknown
    (peak_heap_bytes ());
  close_out oc;
  Format.printf "  wrote BENCH_slice.json@.";
  if
    not
      (severing_ok && seu_identical && invar_identical && !oracle_identical
     && !oracle_checked > 0)
  then begin
    prerr_endline
      "slice: gate violated (severing/seu/invar/oracle identity)";
    exit 1
  end

let main () =
  Format.printf
    "OLFU reproduction harness — every table and figure of the paper@.";
  print_table1 ();
  print_fig1 ();
  print_fig2456 ();
  print_fig3 ();
  print_screening ();
  print_memmap ();
  print_coverage 200;
  print_tdf ();
  print_full_dft ();
  print_atpg_effort ();
  print_bmc_check ();
  print_pathdelay ();
  print_lint ();
  print_absint ();
  print_ablation_sweep ();
  print_ablation_ff_mode ();
  print_ablation_collapse ();
  print_ablation_scan_bufs ();
  print_ablation_podem_confirm ();
  run_benchmarks ();
  Format.printf "@.done.@."

(* ---------------------------------------------------------------- *)
(* serve mode: resident daemon gates (BENCH_serve.json)              *)
(* ---------------------------------------------------------------- *)

(* Gates for the olfu serve daemon:
   (a) a warm analyze of tcore32 through the daemon is a cache hit and
       takes < 0.5x the cold request (the acceptance floor is 2x;
       in practice the hit is orders of magnitude faster);
   (b) the daemon's bytes are identical to a fresh local execute of the
       same request;
   (c) sustained throughput on warm requests at connection concurrency
       1 / 2 / 4, as a protocol + dispatch overhead measure.
   Run with: dune exec bench/main.exe -- serve *)
let serve_bench () =
  let module Sv = Olfu_service in
  section "serve — resident analysis daemon gates";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "olfu-b%d.sock" (Unix.getpid ()))
  in
  let server =
    Domain.spawn (fun () ->
        Sv.Server.serve { (Sv.Server.default ~socket) with workers = 4 })
  in
  let analyze32 id =
    Sv.Request.run ~id ~fmt:Sv.Request.Json ~jobs:4
      (Sv.Request.Config "tcore32")
      (Sv.Request.Analyze { paper = false })
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rpc_exn conn req =
    match Sv.Client.rpc conn req with
    | Ok r -> r
    | Error e -> failwith ("serve bench rpc: " ^ e)
  in
  let conn =
    match Sv.Client.connect ~wait_seconds:10. socket with
    | Ok c -> c
    | Error e -> failwith ("serve bench connect: " ^ e)
  in
  let cold, cold_t = time (fun () -> rpc_exn conn (analyze32 1)) in
  let warm, warm_t = time (fun () -> rpc_exn conn (analyze32 2)) in
  Sv.Client.close conn;
  let speedup = cold_t /. Float.max warm_t 1e-9 in
  Format.printf
    "  analyze t32: cold %.2f s, warm %.4f s (%.0fx), cache_hit %b@."
    cold_t warm_t speedup warm.Sv.Response.cache_hit;
  (* (b) byte-identity against a fresh one-shot execution *)
  let local, _ =
    Sv.Service.execute (Sv.Session.create ()) (analyze32 1)
  in
  let identity_ok =
    local.Sv.Response.output = cold.Sv.Response.output
    && cold.Sv.Response.output = warm.Sv.Response.output
  in
  Format.printf "  daemon vs one-shot bytes identical: %b@." identity_ok;
  (* (c) warm-request throughput per connection concurrency *)
  let reqs_per_client = 50 in
  let throughput conc =
    let clients () =
      List.init conc (fun c ->
          Domain.spawn (fun () ->
              match Sv.Client.connect socket with
              | Error e -> failwith ("serve bench client: " ^ e)
              | Ok conn ->
                Fun.protect
                  ~finally:(fun () -> Sv.Client.close conn)
                  (fun () ->
                    for i = 1 to reqs_per_client do
                      ignore (rpc_exn conn (analyze32 ((c * 1000) + i)))
                    done)))
    in
    let ds, wall = time (fun () -> List.iter Domain.join (clients ())) in
    ignore ds;
    let rps = float_of_int (conc * reqs_per_client) /. wall in
    Format.printf "  warm throughput, %d conn: %7.0f req/s@." conc rps;
    (conc, rps)
  in
  let rates = List.map throughput [ 1; 2; 4 ] in
  (match
     Sv.Client.request ~wait_seconds:1. ~socket
       { Sv.Request.id = 0; body = Sv.Request.Shutdown }
   with
  | Ok _ -> ()
  | Error e -> failwith ("serve bench shutdown: " ^ e));
  Domain.join server;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n  \"cold_seconds\": %.6f,\n  \"warm_seconds\": %.6f,\n\
    \  \"speedup\": %.1f,\n  \"warm_cache_hit\": %b,\n\
    \  \"identity_ok\": %b,\n  \"requests_per_client\": %d,\n\
    \  \"warm_rps\": { %s },\n  \"peak_heap_bytes\": %d\n}\n"
    cold_t warm_t speedup warm.Sv.Response.cache_hit identity_ok
    reqs_per_client
    (String.concat ", "
       (List.map (fun (c, r) -> Printf.sprintf "\"%d\": %.1f" c r) rates))
    (peak_heap_bytes ());
  close_out oc;
  Format.printf "  wrote BENCH_serve.json@.";
  if not (warm.Sv.Response.cache_hit && warm_t < 0.5 *. cold_t && identity_ok)
  then begin
    prerr_endline "serve: gate violated (cache hit / 2x warm speedup / identity)";
    exit 1
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "fsim" then fsim_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "implic" then
    implic_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "obs" then
    obs_bench
      (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)))
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "safety" then
    safety_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "invar" then
    invar_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "slice" then
    slice_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "serve" then
    serve_bench ()
  else main ()
