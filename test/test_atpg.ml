open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_atpg
module B = Netlist.Builder

let verdict_testable = function None -> true | Some _ -> false

let is_ut = function
  | Some (Status.Undetectable Status.Tied) -> true
  | _ -> false

let is_ub = function
  | Some (Status.Undetectable Status.Blocked) -> true
  | _ -> false

(* Fig. 2: mux-scan cell with SE tied low.  Expected: SI s@0/s@1 and
   SE s@0 untestable; SE s@1 is the only scan fault that must be kept. *)
let test_fig2_scan_cell () =
  let nl, ff = Test_support.scan_cell_mission () in
  let t = Untestable.analyze nl in
  let v f = Untestable.fault_verdict t f in
  Alcotest.(check bool) "SE branch s@0 tied" true
    (is_ut (v (Fault.sa0 ff (Cell.Pin.In 2))));
  Alcotest.(check bool) "SE branch s@1 kept" true
    (verdict_testable (v (Fault.sa1 ff (Cell.Pin.In 2))));
  Alcotest.(check bool) "SI pin s@0 blocked" true
    (is_ub (v (Fault.sa0 ff (Cell.Pin.In 1))));
  Alcotest.(check bool) "SI pin s@1 blocked" true
    (is_ub (v (Fault.sa1 ff (Cell.Pin.In 1))));
  let si = Netlist.find_exn nl "SI" in
  Alcotest.(check bool) "SI stem s@0 blocked" true
    (is_ub (v (Fault.sa0 si Cell.Pin.Out)));
  Alcotest.(check bool) "SI stem s@1 blocked" true
    (is_ub (v (Fault.sa1 si Cell.Pin.Out)));
  (* functional path stays testable *)
  Alcotest.(check bool) "D pin s@0 testable" true
    (verdict_testable (v (Fault.sa0 ff (Cell.Pin.In 0))));
  Alcotest.(check bool) "Q s@1 testable" true
    (verdict_testable (v (Fault.sa1 ff Cell.Pin.Out)))

(* Fig. 4: debug mux with DE tied low: DE s@0 and both DI faults
   untestable; DE s@1 kept. *)
let test_fig4_debug_cell () =
  let nl, mux, _ff = Test_support.debug_cell_mission () in
  let t = Untestable.analyze nl in
  let v f = Untestable.fault_verdict t f in
  Alcotest.(check bool) "DE s@0 tied" true
    (is_ut (v (Fault.sa0 mux (Cell.Pin.In 0))));
  Alcotest.(check bool) "DE s@1 kept" true
    (verdict_testable (v (Fault.sa1 mux (Cell.Pin.In 0))));
  let di = Netlist.find_exn nl "DI" in
  Alcotest.(check bool) "DI stem s@0 blocked" true
    (is_ub (v (Fault.sa0 di Cell.Pin.Out)));
  Alcotest.(check bool) "DI stem s@1 blocked" true
    (is_ub (v (Fault.sa1 di Cell.Pin.Out)));
  Alcotest.(check bool) "DI branch s@1 blocked" true
    (is_ub (v (Fault.sa1 mux (Cell.Pin.In 2))));
  Alcotest.(check bool) "FI path testable" true
    (verdict_testable (v (Fault.sa0 mux (Cell.Pin.In 1))))

(* Fig. 5: constant-0 DFFR: exactly two of the flop's eight faults remain
   testable (D s@1 and Q s@1). *)
let test_fig5_constant_dffr () =
  let nl, ff = Test_support.constant_dffr () in
  let t = Untestable.analyze nl in
  let v f = Untestable.fault_verdict t f in
  let testable =
    List.filter
      (fun f -> verdict_testable (v f))
      [
        Fault.sa0 ff Cell.Pin.Out; Fault.sa1 ff Cell.Pin.Out;
        Fault.sa0 ff Cell.Pin.Clk; Fault.sa1 ff Cell.Pin.Clk;
        Fault.sa0 ff (Cell.Pin.In 0); Fault.sa1 ff (Cell.Pin.In 0);
        Fault.sa0 ff (Cell.Pin.In 1); Fault.sa1 ff (Cell.Pin.In 1);
      ]
  in
  Alcotest.(check int) "2 testable faults" 2 (List.length testable);
  Alcotest.(check bool) "D s@1 kept" true
    (List.exists (Fault.equal (Fault.sa1 ff (Cell.Pin.In 0))) testable);
  Alcotest.(check bool) "Q s@1 kept" true
    (List.exists (Fault.equal (Fault.sa1 ff Cell.Pin.Out)) testable);
  (* class detail: Q s@0 is tied, reset-pin s@0 is blocked *)
  Alcotest.(check bool) "Q s@0 UT" true (is_ut (v (Fault.sa0 ff Cell.Pin.Out)));
  Alcotest.(check bool) "RSTN s@0 UB" true
    (is_ub (v (Fault.sa0 ff (Cell.Pin.In 1))));
  Alcotest.(check bool) "CK s@0 untestable" true
    (not (verdict_testable (v (Fault.sa0 ff Cell.Pin.Clk))))

(* Fig. 6: tying a constant register's output propagates untestability into
   the downstream cone. *)
let test_fig6_propagation () =
  let b = B.create () in
  let d = B.tie b Logic4.L0 in
  let rstn = B.tie b Logic4.L1 in
  let areg = B.dffr b ~name:"areg" ~d ~rstn in
  let x = B.input b "x" in
  let g1 = B.and2 b ~name:"g1" areg x in
  let g2 = B.or2 b ~name:"g2" g1 x in
  let _ = B.output b "y" g2 in
  let nl = B.freeze_exn b in
  let t = Untestable.analyze nl in
  let v f = Untestable.fault_verdict t f in
  (* g1 output is constant 0: its s@0 is tied; x's branch into g1 is
     blocked by the constant side input. *)
  Alcotest.(check bool) "g1 out s@0 tied" true
    (is_ut (v (Fault.sa0 (Netlist.find_exn nl "g1") Cell.Pin.Out)));
  Alcotest.(check bool) "x->g1 branch blocked" true
    (is_ub (v (Fault.sa1 (Netlist.find_exn nl "g1") (Cell.Pin.In 1))));
  (* the OR keeps working: its x input stays testable *)
  Alcotest.(check bool) "x->g2 branch testable" true
    (verdict_testable (v (Fault.sa1 (Netlist.find_exn nl "g2") (Cell.Pin.In 1))))

let test_ternary_modes () =
  (* Flop resets to 0 then loads a tied 1: steady-state calls it constant 1,
     the sound join mode calls it X (it held 0 for one cycle). *)
  let b = B.create () in
  let d = B.tie b Logic4.L1 in
  let rst = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let ff = B.dffr b ~name:"ff" ~d ~rstn:rst in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  let steady = Ternary.run ~ff_mode:Ternary.Steady_state nl in
  let join = Ternary.run ~ff_mode:Ternary.Reset_join nl in
  let cut = Ternary.run ~ff_mode:Ternary.Cut nl in
  Alcotest.(check bool) "steady: const 1" true
    (Logic4.equal (Ternary.const_of steady ff) Logic4.L1);
  Alcotest.(check bool) "join: X" true
    (Logic4.equal (Ternary.const_of join ff) Logic4.X);
  Alcotest.(check bool) "cut: X" true
    (Logic4.equal (Ternary.const_of cut ff) Logic4.X)

let test_ternary_oscillator () =
  (* q' = ~q free-runs: the trajectory never converges; the analysis must
     fall back to X rather than claim a constant. *)
  let b = B.create () in
  let rst = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let ff = B.dffr b ~name:"ff" ~d:0 ~rstn:rst in
  let inv = B.not_ b ff in
  B.set_fanin b ff [| inv; rst |];
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  let t = Ternary.run ~ff_mode:Ternary.Steady_state ~max_iters:16 nl in
  Alcotest.(check bool) "did not converge" false t.Ternary.converged;
  Alcotest.(check bool) "q is X" true
    (Logic4.equal (Ternary.const_of t (Netlist.find_exn nl "ff")) Logic4.X)

let test_ternary_counts () =
  let nl, _ = Test_support.constant_dffr () in
  let t = Ternary.run nl in
  (* d tie, rstn tie, ff, and the output marker echo are all constant *)
  Alcotest.(check int) "constants" 4 (Ternary.num_const t)

let test_ternary_seq_assume () =
  (* A flop fed by a free input is X on its own; assuming it constant
     pins the state slot through the whole fixed point and the fact
     propagates into the fanout — the software-derived tie of Sec. 3.3
     expressed without editing the netlist. *)
  let b = B.create () in
  let d = B.input b "d" in
  let rst = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let ff = B.dffr b ~name:"ff" ~d ~rstn:rst in
  let g = B.not_ b ~name:"g" ff in
  let _ = B.output b "q" g in
  let nl = B.freeze_exn b in
  let plain = Ternary.run nl in
  Alcotest.(check bool) "free flop is X" true
    (Logic4.equal (Ternary.const_of plain ff) Logic4.X);
  let t = Ternary.run ~assume:[ (ff, Logic4.L1) ] nl in
  Alcotest.(check bool) "assumed flop held" true
    (Logic4.equal (Ternary.const_of t ff) Logic4.L1);
  Alcotest.(check bool) "fanout constant" true
    (Logic4.equal (Ternary.const_of t (Netlist.find_exn nl "g")) Logic4.L0);
  (* input assumptions still work through the same knob *)
  let ti = Ternary.run ~assume:[ (d, Logic4.L0) ] nl in
  Alcotest.(check bool) "assumed input reaches the flop" true
    (Logic4.equal (Ternary.const_of ti ff) Logic4.L0)

let test_observe_floating_output () =
  (* disconnecting the only observation point makes the whole cone dead *)
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"g" x in
  let o = B.output b "DO" g in
  let nl = B.freeze_exn b in
  let consts = (Ternary.run nl).Ternary.values in
  let all = Observe.run nl ~consts in
  Alcotest.(check bool) "observable with output" true
    (Observe.net all (Netlist.find_exn nl "g"));
  let floated = Observe.run ~observable_output:(fun i -> i <> o) nl ~consts in
  Alcotest.(check bool) "dead when floated" false
    (Observe.net floated (Netlist.find_exn nl "g"));
  Alcotest.(check bool) "input dead too" false (Observe.net floated x)

let test_podem_adder_all_detectable () =
  let nl = Test_support.full_adder () in
  Array.iter
    (fun f ->
      match Podem.run nl f with
      | Podem.Test asg ->
        Alcotest.(check bool)
          (Printf.sprintf "test validates for %s" (Fault.to_string nl f))
          true
          (Podem.check_test nl f asg)
      | Podem.Proved_untestable ->
        Alcotest.failf "adder fault %s called untestable" (Fault.to_string nl f)
      | Podem.Aborted ->
        Alcotest.failf "adder fault %s aborted" (Fault.to_string nl f))
    (Fault.universe nl)

let test_podem_redundant () =
  let nl = Test_support.redundant_circuit () in
  let bnode = Netlist.find_exn nl "b" in
  (match Podem.run nl (Fault.sa0 bnode Cell.Pin.Out) with
  | Podem.Proved_untestable -> ()
  | Podem.Test _ -> Alcotest.fail "redundant b s@0 got a test"
  | Podem.Aborted -> Alcotest.fail "aborted");
  (match Podem.run nl (Fault.sa1 bnode Cell.Pin.Out) with
  | Podem.Proved_untestable -> ()
  | _ -> Alcotest.fail "redundant b s@1 not proved");
  (* implication engine alone cannot see it *)
  let t = Untestable.analyze nl in
  Alcotest.(check bool) "implication misses redundancy" true
    (verdict_testable (Untestable.fault_verdict t (Fault.sa0 bnode Cell.Pin.Out)))

let test_podem_scan_cell () =
  let nl, ff = Test_support.scan_cell_mission () in
  (match Podem.run nl (Fault.sa1 ff (Cell.Pin.In 1)) with
  | Podem.Proved_untestable -> ()
  | _ -> Alcotest.fail "SI s@1 should be proved untestable");
  match Podem.run nl (Fault.sa1 ff (Cell.Pin.In 2)) with
  | Podem.Test _ -> ()
  | _ -> Alcotest.fail "SE s@1 should be testable"

let test_classify_flist () =
  let nl, _ = Test_support.constant_dffr () in
  let fl = Flist.full nl in
  let t = Untestable.analyze nl in
  let n = Untestable.classify t fl in
  Alcotest.(check bool) "classified some" true (n > 0);
  (* testable faults: D s@1, Q s@1, marker s@1 *)
  Alcotest.(check int) "ud count" (Flist.size fl - 3) n

let test_scoap_adder () =
  let nl = Test_support.full_adder () in
  let s = Scoap.run nl in
  let a = Netlist.find_exn nl "a" in
  Alcotest.(check int) "input cc0" 1 (Scoap.cc0 s a);
  Alcotest.(check int) "input cc1" 1 (Scoap.cc1 s a);
  let sum = Netlist.find_exn nl "sum_net" in
  Alcotest.(check int) "sum co" 0 (Scoap.co s sum);
  Alcotest.(check bool) "finite measures" true
    (Scoap.cc1 s (Netlist.find_exn nl "cout_net") < Scoap.infinity)

let test_scoap_tie () =
  let b = B.create () in
  let t0 = B.tie b Logic4.L0 in
  let x = B.input b "x" in
  let g = B.and2 b t0 x in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  let s = Scoap.run nl in
  Alcotest.(check int) "tie0 cc1 infinite" Scoap.infinity (Scoap.cc1 s t0);
  Alcotest.(check int) "and cc1 infinite" Scoap.infinity (Scoap.cc1 s g)

(* Reset_join constants are sound: no post-reset simulation with random
   inputs ever contradicts a claimed constant. *)
let prop_reset_join_sound =
  QCheck2.Test.make ~count:15 ~name:"Reset_join constants never contradicted"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, stim_seed) ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_seq_netlist rng ~inputs:3 ~gates:14 ~flops:4 in
      let t = Ternary.run ~ff_mode:Ternary.Reset_join nl in
      let srng = Random.State.make [| stim_seed |] in
      let sim = Olfu_sim.Seq_sim.create ~init:Logic4.X nl in
      let rstn = Netlist.find_exn nl "rstn" in
      (* reset pulse *)
      Array.iter
        (fun i -> Olfu_sim.Seq_sim.set_input sim i Logic4.L0)
        (Netlist.inputs nl);
      Olfu_sim.Seq_sim.step sim;
      Olfu_sim.Seq_sim.set_input sim rstn Logic4.L1;
      let ok = ref true in
      for _cycle = 1 to 12 do
        Array.iter
          (fun i ->
            if i <> rstn then
              Olfu_sim.Seq_sim.set_input sim i
                (Logic4.of_bool (Random.State.bool srng)))
          (Netlist.inputs nl);
        Olfu_sim.Seq_sim.settle sim;
        Netlist.iter_nodes
          (fun i _ ->
            let c = Ternary.const_of t i in
            if Logic4.is_binary c then
              match Logic4.to_bool (Olfu_sim.Seq_sim.value sim i) with
              | Some v -> if v <> Option.get (Logic4.to_bool c) then ok := false
              | None -> ())
          nl;
        Olfu_sim.Seq_sim.step sim
      done;
      !ok)

(* Soundness: whatever the implication engine calls untestable, PODEM must
   not find a test for (on the same full-access combinational view). *)
let prop_untestable_sound =
  QCheck2.Test.make ~count:25 ~name:"implication untestable => no PODEM test"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:18 in
      let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
      let u = Fault.universe nl in
      let ok = ref true in
      Array.iter
        (fun f ->
          if f.Fault.site.Fault.pin <> Cell.Pin.Clk then
            match Untestable.fault_verdict t f with
            | Some _ -> (
              match Podem.run ~backtrack_limit:2_000 nl f with
              | Podem.Test asg ->
                if Podem.check_test nl f asg then ok := false
              | Podem.Proved_untestable | Podem.Aborted -> ())
            | None -> ())
        u;
      !ok)

(* Parallel classification is pure per fault: any jobs count yields the
   same statuses and the same changed-count. *)
let prop_classify_jobs_deterministic =
  QCheck2.Test.make ~count:15 ~name:"classify identical for any jobs"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl =
        if seed mod 2 = 0 then
          Test_support.random_comb_netlist rng ~inputs:4 ~gates:20
        else Test_support.random_seq_netlist rng ~inputs:3 ~gates:15 ~flops:3
      in
      let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
      let run jobs =
        let fl = Flist.full nl in
        let changed = Untestable.classify ~jobs t fl in
        (changed, Array.init (Flist.size fl) (Flist.status fl))
      in
      let reference = run 1 in
      List.for_all (fun jobs -> run jobs = reference) [ 2; 4 ])

(* Whenever PODEM claims a test, independent re-simulation confirms it. *)
let prop_podem_tests_valid =
  QCheck2.Test.make ~count:15 ~name:"PODEM tests re-validate"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:15 in
      let u = Fault.universe nl in
      let ok = ref true in
      Array.iteri
        (fun i f ->
          if i mod 3 = 0 && f.Fault.site.Fault.pin <> Cell.Pin.Clk then
            match Podem.run ~backtrack_limit:2_000 nl f with
            | Podem.Test asg -> if not (Podem.check_test nl f asg) then ok := false
            | Podem.Proved_untestable | Podem.Aborted -> ())
        u;
      !ok)

(* Regression for the reconvergence trap: with x constant through a tie,
   OR(x, x)'s side-input blocking must not hide that a stem fault changes
   both inputs together. *)
let test_reconvergent_stem_sound () =
  let b = B.create () in
  let t1 = B.tie b Logic4.L1 in
  let buf = B.buf b ~name:"x" t1 in
  (* x is constant 1; g = OR(x, x) is constant 1 *)
  let g = B.or2 b ~name:"g" buf buf in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  let t = Untestable.analyze nl in
  let x = Netlist.find_exn nl "x" in
  (* x s@0 flips both OR inputs: o flips; must NOT be called blocked *)
  (match Untestable.fault_verdict t (Fault.sa0 x Cell.Pin.Out) with
  | None -> ()
  | Some v ->
    Alcotest.failf "x s@0 wrongly classified %s" (Status.code v));
  (* the x s@1 fault is tied (x is constant 1) *)
  Alcotest.(check bool) "x s@1 tied" true
    (is_ut (Untestable.fault_verdict t (Fault.sa1 x Cell.Pin.Out)));
  (* each single branch fault alone IS blocked: the other input holds 1 *)
  Alcotest.(check bool) "branch g.I0 s@0 blocked" true
    (is_ub (Untestable.fault_verdict t (Fault.sa0 (Netlist.find_exn nl "g") (Cell.Pin.In 0))));
  (* and PODEM agrees on every verdict *)
  Array.iter
    (fun f ->
      if f.Fault.site.Fault.pin <> Cell.Pin.Clk then
        match Untestable.fault_verdict t f, Podem.run nl f with
        | Some _, Podem.Test asg when Podem.check_test nl f asg ->
          Alcotest.failf "unsound verdict on %s" (Fault.to_string nl f)
        | _ -> ())
    (Fault.universe nl)

(* --- transition-delay classification --- *)

let test_tdf_scan_cell_all_dead () =
  (* for transition faults even SE slow-to-rise is untestable: the tied SE
     net can never toggle *)
  let nl, ff = Test_support.scan_cell_mission () in
  let t = Untestable.analyze nl in
  let dead p pol =
    Tdf_classify.verdict t
      { Tdf.site = { Fault.node = ff; pin = p }; polarity = pol }
    <> None
  in
  Alcotest.(check bool) "SE STR dead" true (dead (Cell.Pin.In 2) Tdf.Slow_to_rise);
  Alcotest.(check bool) "SE STF dead" true (dead (Cell.Pin.In 2) Tdf.Slow_to_fall);
  Alcotest.(check bool) "SI STR dead" true (dead (Cell.Pin.In 1) Tdf.Slow_to_rise);
  (* the functional data path still carries transitions *)
  Alcotest.(check bool) "D STR alive" false (dead (Cell.Pin.In 0) Tdf.Slow_to_rise);
  let u, total = Tdf_classify.count t nl in
  Alcotest.(check bool) "counts sane" true (u > 0 && u < total)

let test_tdf_superset_of_stuck () =
  (* every pin with an untestable stuck-at has both its transition faults
     untestable, so the TDF fraction dominates *)
  let nl, _ = Test_support.constant_dffr () in
  let t = Untestable.analyze nl in
  let sa_untestable =
    Array.fold_left
      (fun acc f -> if Untestable.fault_verdict t f <> None then acc + 1 else acc)
      0 (Fault.universe nl)
  in
  let td_untestable, _ = Tdf_classify.count t nl in
  Alcotest.(check bool) "tdf >= sa" true (td_untestable >= sa_untestable)

let test_tdf_half_tied_pin () =
  (* a pin tied to 1: its stuck-at-0 stays testable, but no transition
     fault survives — the pin can never be launched to 0 *)
  let b = B.create () in
  let x = B.input b "x" in
  let t1 = B.tie b Logic4.L1 in
  let g = B.and2 b ~name:"g" x t1 in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  let t = Untestable.analyze nl in
  let gi = Netlist.find_exn nl "g" in
  Alcotest.(check bool) "sa0 testable" true
    (Untestable.fault_verdict t (Fault.sa0 gi (Cell.Pin.In 1)) = None);
  Alcotest.(check bool) "sa1 tied" true
    (is_ut (Untestable.fault_verdict t (Fault.sa1 gi (Cell.Pin.In 1))));
  let dead pol =
    Tdf_classify.verdict t
      { Tdf.site = { Fault.node = gi; pin = Cell.Pin.In 1 }; polarity = pol }
    <> None
  in
  Alcotest.(check bool) "STR dead" true (dead Tdf.Slow_to_rise);
  Alcotest.(check bool) "STF dead" true (dead Tdf.Slow_to_fall);
  (* the free pin keeps both transitions *)
  Alcotest.(check bool) "free pin alive" true
    (Tdf_classify.verdict t
       { Tdf.site = { Fault.node = gi; pin = Cell.Pin.In 0 };
         polarity = Tdf.Slow_to_rise }
    = None)

let test_tdf_count_jobs_invariant () =
  let nl, _ = Test_support.scan_cell_mission () in
  let t = Untestable.analyze nl in
  let n1, u1 = Tdf_classify.count ~jobs:1 t nl in
  let n3, u3 = Tdf_classify.count ~jobs:3 t nl in
  Alcotest.(check int) "universe stable" u1 u3;
  Alcotest.(check int) "count jobs-invariant" n1 n3;
  Alcotest.(check bool) "something classified" true (n1 > 0)

let test_scoap_branch_and_hardest () =
  let nl = Test_support.full_adder () in
  let s = Scoap.run nl in
  (* observability of a branch is never better than its net's stem *)
  Netlist.iter_nodes
    (fun i nd ->
      Array.iteri
        (fun pin drv ->
          ignore pin;
          Alcotest.(check bool) "co <= branch" true
            (Scoap.co s drv <= Scoap.co_branch s i pin))
        nd.Netlist.fanin)
    nl;
  let h = Scoap.hardest s ~n:3 in
  Alcotest.(check int) "three hardest" 3 (List.length h);
  (* scores descending *)
  (match h with
  | (_, a) :: (_, b) :: (_, c) :: _ ->
    Alcotest.(check bool) "sorted" true (a >= b && b >= c)
  | _ -> Alcotest.fail "expected 3")

(* --- complete ATPG flow --- *)

let test_atpg_flow_adder () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  let r = Atpg_flow.run { Atpg_flow.default with seed = 5 } nl fl in
  Alcotest.(check int) "everything detected" (Flist.size fl)
    r.Atpg_flow.detected;
  Alcotest.(check int) "nothing redundant" 0 r.Atpg_flow.proved_untestable;
  Alcotest.(check int) "nothing aborted" 0 r.Atpg_flow.aborted;
  Alcotest.(check bool) "has patterns" true (r.Atpg_flow.patterns <> [])

let test_atpg_flow_redundant () =
  let nl = Test_support.redundant_circuit () in
  let fl = Flist.full nl in
  let r = Atpg_flow.run { Atpg_flow.default with seed = 5 } nl fl in
  (* b stem faults are redundant; everything else gets a test *)
  Alcotest.(check bool) "found redundancies" true
    (r.Atpg_flow.proved_untestable >= 2);
  Alcotest.(check int) "no aborts" 0 r.Atpg_flow.aborted;
  Alcotest.(check int) "accounted"
    (Flist.size fl)
    (Flist.count_status fl Status.Detected
    + Flist.count fl ~f:Status.is_undetectable)

let prop_atpg_flow_patterns_replay =
  QCheck2.Test.make ~count:10 ~name:"ATPG patterns re-detect under fsim"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:15 in
      let fl = Flist.full nl in
      let r = Atpg_flow.run { Atpg_flow.default with seed } nl fl in
      (* replaying the produced pattern set on a fresh list reaches the
         same detected count *)
      let fl2 = Flist.full nl in
      ignore
        (Olfu_fsim.Comb_fsim.run nl fl2 (Array.of_list r.Atpg_flow.patterns)
          : Olfu_fsim.Comb_fsim.report);
      Flist.count_status fl2 Status.Detected = r.Atpg_flow.detected)

let test_atpg_compaction () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  let r = Atpg_flow.run { Atpg_flow.default with seed = 5 } nl fl in
  let compacted = Atpg_flow.compact nl r.Atpg_flow.patterns in
  Alcotest.(check bool) "smaller or equal" true
    (List.length compacted <= List.length r.Atpg_flow.patterns);
  (* same coverage when replayed *)
  let fl2 = Flist.full nl in
  ignore
    (Olfu_fsim.Comb_fsim.run nl fl2 (Array.of_list compacted)
      : Olfu_fsim.Comb_fsim.report);
  Alcotest.(check int) "coverage preserved" r.Atpg_flow.detected
    (Flist.count_status fl2 Status.Detected);
  (* the adder needs more than one pattern but far fewer than 64 *)
  Alcotest.(check bool) "meaningfully compacted" true
    (List.length compacted < 20 && List.length compacted >= 3)

(* --- path-delay identification --- *)

let test_pathdelay_adder () =
  let nl = Test_support.full_adder () in
  let t = Untestable.analyze nl in
  let c = Pathdelay.classify t nl in
  Alcotest.(check bool) "paths found" true (c.Pathdelay.enumerated > 5);
  Alcotest.(check int) "all sensitizable" 0 c.Pathdelay.untestable_paths

let test_pathdelay_blocked () =
  (* a path through a gate whose side input is tied to the controlling
     value is untestable *)
  let b = B.create () in
  let x = B.input b "x" in
  let t0 = B.tie b Logic4.L0 in
  let g = B.and2 b ~name:"g" x t0 in
  let h = B.or2 b ~name:"h" g x in
  let _ = B.output b "o" h in
  let nl = B.freeze_exn b in
  let t = Untestable.analyze nl in
  let paths = Pathdelay.enumerate nl in
  let via_g =
    List.filter (fun p -> List.exists (fun (s, _) -> Some "g" = Netlist.name nl s) p.Pathdelay.hops) paths
  in
  Alcotest.(check bool) "some paths via g" true (via_g <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "blocked path untestable" true
        (Pathdelay.untestable t p))
    via_g;
  (* the direct x->h path stays testable *)
  let direct =
    List.filter
      (fun p ->
        p.Pathdelay.launch = Netlist.find_exn nl "x"
        && List.length p.Pathdelay.hops = 2
        && not (List.exists (fun (s, _) -> Some "g" = Netlist.name nl s) p.Pathdelay.hops))
      paths
  in
  Alcotest.(check bool) "direct path exists" true (direct <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "direct path testable" false
        (Pathdelay.untestable t p))
    direct

let test_pathdelay_scan_paths_dead () =
  (* mission configuration kills every path through the scan mux *)
  let nl, _ff = Test_support.scan_cell_mission () in
  let t = Untestable.analyze nl in
  let si = Netlist.find_exn nl "SI" in
  let paths = Pathdelay.enumerate nl in
  let from_si = List.filter (fun p -> p.Pathdelay.launch = si) paths in
  Alcotest.(check bool) "si paths exist" true (from_si <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "scan path untestable" true
        (Pathdelay.untestable t p))
    from_si

let test_pathdelay_cap () =
  let nl = Lazy.force (lazy (Test_support.full_adder ())) in
  let c = Pathdelay.classify ~max_paths:3 (Untestable.analyze nl) nl in
  Alcotest.(check int) "capped" 3 c.Pathdelay.enumerated;
  Alcotest.(check bool) "flagged" true c.Pathdelay.truncated

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "atpg"
    [
      ( "soundness regressions",
        [
          Alcotest.test_case "reconvergent stem" `Quick
            test_reconvergent_stem_sound;
        ] );
      ( "paper figures",
        [
          Alcotest.test_case "fig2 scan cell" `Quick test_fig2_scan_cell;
          Alcotest.test_case "fig4 debug cell" `Quick test_fig4_debug_cell;
          Alcotest.test_case "fig5 constant dffr" `Quick test_fig5_constant_dffr;
          Alcotest.test_case "fig6 propagation" `Quick test_fig6_propagation;
        ] );
      ( "ternary",
        [
          Alcotest.test_case "ff modes" `Quick test_ternary_modes;
          Alcotest.test_case "oscillator" `Quick test_ternary_oscillator;
          Alcotest.test_case "counts" `Quick test_ternary_counts;
          Alcotest.test_case "seq assume" `Quick test_ternary_seq_assume;
        ] );
      ( "observe",
        [ Alcotest.test_case "floating output" `Quick test_observe_floating_output ] );
      ( "podem",
        [
          Alcotest.test_case "adder detectable" `Quick
            test_podem_adder_all_detectable;
          Alcotest.test_case "redundancy proved" `Quick test_podem_redundant;
          Alcotest.test_case "scan cell" `Quick test_podem_scan_cell;
        ] );
      ( "classify",
        [ Alcotest.test_case "flist integration" `Quick test_classify_flist ] );
      ( "scoap",
        [
          Alcotest.test_case "adder" `Quick test_scoap_adder;
          Alcotest.test_case "tie" `Quick test_scoap_tie;
        ] );
      ( "tdf",
        [
          Alcotest.test_case "scan cell all dead" `Quick
            test_tdf_scan_cell_all_dead;
          Alcotest.test_case "superset of stuck" `Quick
            test_tdf_superset_of_stuck;
          Alcotest.test_case "half-tied pin" `Quick test_tdf_half_tied_pin;
          Alcotest.test_case "count jobs invariant" `Quick
            test_tdf_count_jobs_invariant;
        ] );
      ( "scoap extras",
        [
          Alcotest.test_case "branch + hardest" `Quick
            test_scoap_branch_and_hardest;
        ] );
      ( "atpg flow",
        [
          Alcotest.test_case "adder complete" `Quick test_atpg_flow_adder;
          Alcotest.test_case "redundancies" `Quick test_atpg_flow_redundant;
          Alcotest.test_case "compaction" `Quick test_atpg_compaction;
          qt prop_atpg_flow_patterns_replay;
        ] );
      ( "path delay",
        [
          Alcotest.test_case "adder sensitizable" `Quick test_pathdelay_adder;
          Alcotest.test_case "blocked side input" `Quick test_pathdelay_blocked;
          Alcotest.test_case "scan paths dead" `Quick
            test_pathdelay_scan_paths_dead;
          Alcotest.test_case "cap" `Quick test_pathdelay_cap;
        ] );
      ( "properties",
        [
          qt prop_untestable_sound; qt prop_podem_tests_valid;
          qt prop_reset_join_sound; qt prop_classify_jobs_deterministic;
        ] );
    ]
