open Olfu_netlist
open Olfu_fault
open Olfu_soc
open Olfu

(* tcore16 keeps these tests fast; the full tcore32 flow is exercised by
   the benchmark harness and soc_audit example *)
let t16 = lazy (Soc.generate Soc.tcore16)
let mission16 = lazy (Mission.of_soc Soc.tcore16 (Lazy.force t16))
let report16 = lazy (Flow.run Run_config.default (Lazy.force t16) (Lazy.force mission16))

let test_flow_runs () =
  let r = Lazy.force report16 in
  Alcotest.(check bool) "has faults" true (r.Flow.universe > 10_000);
  Alcotest.(check bool) "finds olfu faults" true (r.Flow.total_olfu > 0);
  Alcotest.(check bool) "fraction sane" true
    (r.Flow.fraction > 0.05 && r.Flow.fraction < 0.5);
  (* flist classification is consistent with the step sum *)
  let ud = Flist.count r.Flow.flist ~f:Status.is_undetectable in
  Alcotest.(check int) "steps sum to list" r.Flow.total_olfu ud

let test_flow_source_ordering () =
  (* the paper's Table I ordering: scan is the largest source, memory the
     smallest of the three *)
  let r = Lazy.force report16 in
  let scan = Flow.step_count r Flow.Scan in
  let dbg =
    Flow.step_count r Flow.Debug_control + Flow.step_count r Flow.Debug_observe
  in
  let mem = Flow.step_count r Flow.Memory in
  Alcotest.(check bool) "scan largest" true (scan > dbg);
  Alcotest.(check bool) "memory smallest" true (mem < dbg);
  Alcotest.(check bool) "control > observation" true
    (Flow.step_count r Flow.Debug_control
    > Flow.step_count r Flow.Debug_observe);
  Alcotest.(check int) "paper total excludes baseline"
    (r.Flow.total_olfu - Flow.step_count r Flow.Baseline)
    (Flow.paper_total r)

let test_scan_rule_verifies () =
  (* the Tetramax cross-check of Sec. 4 on the generated SoC *)
  Alcotest.(check bool) "engine confirms the scan rule" true
    (Flow.verify_scan_rule (Lazy.force t16))

let test_flow_idempotent_attribution () =
  (* no fault is counted twice: re-running a step classifies nothing new *)
  let nl = Lazy.force t16 in
  let r = Lazy.force report16 in
  let again = Flow.scan_step nl r.Flow.flist in
  Alcotest.(check int) "scan step idempotent" 0 again

let test_soundness_sample_podem () =
  (* sampled cross-check: flow-classified untestable faults have no PODEM
     test on the mission netlist *)
  let r = Lazy.force report16 in
  let nl = r.Flow.mission_netlist in
  let mission = Lazy.force mission16 in
  let observable = Mission.observed_in_field mission nl in
  let checked = ref 0 in
  Flist.iteri
    (fun i f st ->
      if
        !checked < 40 && i mod 97 = 0
        && Status.is_undetectable st
        && f.Fault.site.Fault.pin <> Cell.Pin.Clk
      then begin
        incr checked;
        match
          Olfu_atpg.Podem.run ~backtrack_limit:300 ~observable_output:observable
            nl f
        with
        | Olfu_atpg.Podem.Test asg ->
          (* PODEM works on the full-access model; a test here must at
             least fail to validate, otherwise the flow was unsound *)
          Alcotest.(check bool)
            (Printf.sprintf "fault %d test validates" i)
            true
            (Olfu_atpg.Podem.check_test ~observable_output:observable nl f asg
             ||
             (* scan-rule faults are sequential-behaviour based; PODEM's
                combinational view cannot refute them *)
             Status.equal st (Status.Undetectable Status.Unused))
        | Olfu_atpg.Podem.Proved_untestable | Olfu_atpg.Podem.Aborted -> ()
      end)
    r.Flow.flist;
  Alcotest.(check bool) "sampled" true (!checked > 10)

let test_categories_fig1 () =
  let nl = Lazy.force t16 in
  let mission = Lazy.force mission16 in
  let s = Categories.compute nl mission in
  Alcotest.(check bool) "inclusions hold" true s.Categories.inclusions_hold;
  Alcotest.(check bool) "structural < functional" true
    (s.Categories.structural < s.Categories.functional);
  Alcotest.(check bool) "functional < online" true
    (s.Categories.functional < s.Categories.online);
  Alcotest.(check bool) "online < universe" true
    (s.Categories.online < s.Categories.universe)

let test_mission_of_soc () =
  let nl = Lazy.force t16 in
  let m = Lazy.force mission16 in
  Alcotest.(check int) "17 debug controls" 17
    (List.length m.Mission.debug_controls);
  Alcotest.(check int) "2 xlen observation buses" (2 * Soc.tcore16.Soc.xlen)
    (List.length m.Mission.debug_observes);
  (* field observation excludes the debug buses and scan outs *)
  let gpr0 = Netlist.find_exn nl "gpr_obs[0]" in
  Alcotest.(check bool) "gpr_obs not observed" false
    (Mission.observed_in_field m nl gpr0);
  let halted = Netlist.find_exn nl "halted" in
  Alcotest.(check bool) "halted observed" true
    (Mission.observed_in_field m nl halted)

let test_address_forcing () =
  let m = Lazy.force mission16 in
  let forced = Mission.address_forcing m in
  (* tcore16 map: rom [0,0xFF], ram [0x4000,0x40FF]: bits 0..7 free,
     bit 14 free, the rest forced 0 *)
  Alcotest.(check bool) "bit 0 free" true (forced 0 = None);
  Alcotest.(check bool) "bit 14 free" true (forced 14 = None);
  Alcotest.(check bool) "bit 12 forced 0" true
    (forced 12 = Some Olfu_logic.Logic4.L0);
  Alcotest.(check bool) "bit 15 forced 0" true
    (forced 15 = Some Olfu_logic.Logic4.L0)

let test_safety_assessment () =
  let r = Lazy.force report16 in
  let fl = r.Flow.flist in
  (* simulate a campaign detecting every fault not classified untestable:
     raw coverage misses the target, pruned coverage reaches 100% *)
  let fl2 = Flist.create (Flist.netlist fl) (Array.init (Flist.size fl) (Flist.fault fl)) in
  Flist.iteri
    (fun i _ st ->
      match st with
      | Status.Not_analyzed -> Flist.set_status fl2 i Status.Detected
      | s -> Flist.set_status fl2 i s)
    fl;
  let v = Safety.assess Safety.D fl2 in
  Alcotest.(check bool) "raw fails ASIL-D" false v.Safety.meets_raw;
  Alcotest.(check bool) "pruned passes ASIL-D" true v.Safety.meets_pruned;
  Alcotest.(check bool) "paper target 98%" true
    (Safety.paper_airbag_target = 0.98);
  let qm = Safety.assess Safety.QM fl2 in
  Alcotest.(check bool) "QM always passes" true qm.Safety.meets_raw

let test_safety_thresholds () =
  Alcotest.(check (option (float 0.001))) "B" (Some 0.90)
    (Safety.required_coverage Safety.B);
  Alcotest.(check (option (float 0.001))) "C" (Some 0.97)
    (Safety.required_coverage Safety.C);
  Alcotest.(check (option (float 0.001))) "D" (Some 0.99)
    (Safety.required_coverage Safety.D);
  Alcotest.(check bool) "QM none" true
    (Safety.required_coverage Safety.QM = None);
  let s =
    Format.asprintf "%a" Safety.pp_verdict
      (Safety.assess Safety.C (Lazy.force report16).Flow.flist)
  in
  Alcotest.(check bool) "verdict renders" true (String.length s > 30)

let test_flow_cut_mode_smaller () =
  (* ablation: per-combinational-block analysis (Cut) finds no more than
     the mission steady-state reading *)
  let nl = Lazy.force t16 in
  let mission = Lazy.force mission16 in
  let cut =
    Flow.run
      { Run_config.default with Run_config.ff_mode = Olfu_atpg.Ternary.Cut }
      nl mission
  in
  let steady = Lazy.force report16 in
  Alcotest.(check bool) "cut <= steady" true
    (cut.Flow.total_olfu <= steady.Flow.total_olfu)

let test_tdf_flow () =
  let nl = Lazy.force t16 in
  let mission = Lazy.force mission16 in
  let r = Olfu.Tdf_flow.run Run_config.default nl mission in
  let sa = Lazy.force report16 in
  (* the TDF universe matches the stuck-at universe size (2 per pin) *)
  Alcotest.(check int) "same universe size" sa.Flow.universe r.Tdf_flow.universe;
  (* same ordering: scan > debug > memory; and more transition faults die
     than stuck-ats on every source (constants kill both polarities) *)
  Alcotest.(check bool) "scan largest" true
    (r.Tdf_flow.scan > r.Tdf_flow.debug_control + r.Tdf_flow.debug_observe);
  Alcotest.(check bool) "memory smallest" true
    (r.Tdf_flow.memory < r.Tdf_flow.debug_control + r.Tdf_flow.debug_observe);
  Alcotest.(check bool) "tdf scan >= sa scan" true
    (r.Tdf_flow.scan >= Flow.step_count sa Flow.Scan);
  Alcotest.(check bool) "tdf total >= sa paper total" true
    (r.Tdf_flow.scan + r.Tdf_flow.debug_control + r.Tdf_flow.debug_observe
     + r.Tdf_flow.memory
    >= Flow.paper_total sa);
  (* printable *)
  let s = Format.asprintf "%a" Olfu.Tdf_flow.pp r in
  Alcotest.(check bool) "pp" true (String.length s > 100)

let test_flow_on_roles_mission_matches () =
  (* Mission.of_roles and Mission.of_soc describe the same mission for a
     generated SoC, so the flow lands on identical numbers *)
  let nl = Lazy.force t16 in
  let m2 =
    Mission.of_roles
      ~memmap:(Soc.memmap_regions Soc.tcore16)
      ~address_width:Soc.tcore16.Soc.xlen nl
  in
  let r1 = Lazy.force report16 in
  let r2 = Flow.run Run_config.default nl m2 in
  Alcotest.(check int) "same total" r1.Flow.total_olfu r2.Flow.total_olfu;
  List.iter
    (fun src ->
      Alcotest.(check int)
        (Flow.source_name src)
        (Flow.step_count r1 src) (Flow.step_count r2 src))
    [ Flow.Scan; Flow.Baseline; Flow.Debug_control; Flow.Debug_observe;
      Flow.Memory ]

let test_table1_renders () =
  let r = Lazy.force report16 in
  let s = Format.asprintf "%a" (Flow.pp_table1 ~paper:true) r in
  List.iter
    (fun needle ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (needle ^ " in table") true (contains s needle))
    [ "Scan"; "Debug"; "Memory"; "TOTAL"; "paper"; "13.8" ]

let () =
  Alcotest.run "core-flow"
    [
      ( "flow",
        [
          Alcotest.test_case "runs" `Quick test_flow_runs;
          Alcotest.test_case "source ordering" `Quick test_flow_source_ordering;
          Alcotest.test_case "scan rule verified" `Quick test_scan_rule_verifies;
          Alcotest.test_case "idempotent" `Quick test_flow_idempotent_attribution;
          Alcotest.test_case "podem soundness sample" `Slow
            test_soundness_sample_podem;
          Alcotest.test_case "cut mode ablation" `Quick test_flow_cut_mode_smaller;
          Alcotest.test_case "safety thresholds" `Quick test_safety_thresholds;
          Alcotest.test_case "tdf flow" `Quick test_tdf_flow;
          Alcotest.test_case "roles mission" `Quick
            test_flow_on_roles_mission_matches;
          Alcotest.test_case "table renders" `Quick test_table1_renders;
        ] );
      ( "categories",
        [ Alcotest.test_case "fig1 lattice" `Quick test_categories_fig1 ] );
      ( "mission",
        [
          Alcotest.test_case "of_soc" `Quick test_mission_of_soc;
          Alcotest.test_case "address forcing" `Quick test_address_forcing;
        ] );
      ( "safety",
        [ Alcotest.test_case "iso 26262" `Quick test_safety_assessment ] );
    ]
