open Olfu_logic
open Olfu_netlist
module B = Netlist.Builder

let test_build_adder () =
  let nl = Test_support.full_adder () in
  Alcotest.(check int) "inputs" 3 (Array.length (Netlist.inputs nl));
  Alcotest.(check int) "outputs" 2 (Array.length (Netlist.outputs nl));
  Alcotest.(check bool) "finds sum_net" true (Netlist.find nl "sum_net" <> None);
  let stats = Stats.of_netlist nl in
  Alcotest.(check int) "gates" 5 stats.Stats.gates;
  Alcotest.(check int) "flops" 0 stats.Stats.flops

let test_topo_order () =
  let nl = Test_support.full_adder () in
  let pos = Array.make (Netlist.length nl) (-1) in
  Array.iteri (fun k i -> pos.(i) <- k) (Netlist.topo nl);
  (* every combinational node appears after all its non-source fanins *)
  Netlist.iter_nodes
    (fun i nd ->
      if pos.(i) >= 0 then
        Array.iter
          (fun d ->
            if pos.(d) >= 0 then
              Alcotest.(check bool)
                (Printf.sprintf "node %d after fanin %d" i d)
                true
                (pos.(d) < pos.(i)))
          nd.Netlist.fanin)
    nl

let test_comb_loop_detected () =
  let b = B.create () in
  let i = B.input b "i" in
  let g1 = B.and2 b i i in
  let g2 = B.or2 b g1 i in
  (* close a combinational loop g1 <- g2 *)
  B.set_fanin b g1 [| i; g2 |];
  match B.freeze b with
  | Error [ Netlist.Combinational_loop _ ] -> ()
  | Error e ->
    Alcotest.failf "unexpected errors: %a"
      Format.(pp_print_list Netlist.pp_error)
      e
  | Ok _ -> Alcotest.fail "loop not detected"

let test_arity_error () =
  let nodes =
    [|
      { Netlist.kind = Cell.Input; fanin = [||]; name = Some "i" };
      { Netlist.kind = Cell.Mux2; fanin = [| 0; 0 |]; name = None };
    |]
  in
  match Netlist.create nodes with
  | Error (Netlist.Bad_arity { expected = 3; got = 2; _ } :: _) -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_dangling () =
  let nodes =
    [| { Netlist.kind = Cell.Buf; fanin = [| 5 |]; name = None } |]
  in
  match Netlist.create nodes with
  | Error (Netlist.Dangling_fanin _ :: _) -> ()
  | _ -> Alcotest.fail "expected dangling error"

let test_duplicate_name () =
  let nodes =
    [|
      { Netlist.kind = Cell.Input; fanin = [||]; name = Some "n" };
      { Netlist.kind = Cell.Input; fanin = [||]; name = Some "n" };
    |]
  in
  match Netlist.create nodes with
  | Error errs ->
    Alcotest.(check bool) "dup reported" true
      (List.exists (function Netlist.Duplicate_name _ -> true | _ -> false) errs)
  | Ok _ -> Alcotest.fail "expected duplicate error"

let test_fanout () =
  let b = B.create () in
  let i = B.input b "i" in
  let g1 = B.not_ b i in
  let g2 = B.and2 b i g1 in
  let _ = B.output b "o" g2 in
  let nl = B.freeze_exn b in
  let fo = Netlist.fanout nl i in
  Alcotest.(check int) "input drives 2 branches" 2 (Array.length fo)

let test_roles () =
  let b = B.create () in
  let i = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let _ = B.output b "o" i in
  let nl = B.freeze_exn b in
  Alcotest.(check bool) "role kept" true
    (Netlist.has_role nl (Netlist.find_exn nl "se") Netlist.Scan_enable);
  Alcotest.(check int) "role query" 1
    (Array.length (Netlist.nodes_with_role nl Netlist.Scan_enable))

let test_remove_compacts () =
  let b = B.create () in
  let i = B.input b "i" in
  let dead = B.not_ b i in
  let live = B.buf b ~name:"live" i in
  let _ = B.output b "o" live in
  B.remove_node b dead;
  let nl = B.freeze_exn b in
  Alcotest.(check int) "node count" 3 (Netlist.length nl);
  Alcotest.(check bool) "live survives" true (Netlist.find nl "live" <> None)

let test_remove_dangling_ref () =
  let b = B.create () in
  let i = B.input b "i" in
  let g = B.not_ b i in
  let _ = B.output b "o" g in
  B.remove_node b i;
  match B.freeze b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected dangling after removal"

let test_of_netlist_roundtrip () =
  let nl = Test_support.full_adder () in
  let nl2 = B.freeze_exn (B.of_netlist nl) in
  Alcotest.(check int) "same size" (Netlist.length nl) (Netlist.length nl2);
  Netlist.iter_nodes
    (fun i nd ->
      let nd2 = Netlist.node nl2 i in
      Alcotest.(check bool) "same kind" true
        (Cell.equal_kind nd.Netlist.kind nd2.Netlist.kind);
      Alcotest.(check (array int)) "same fanin" nd.Netlist.fanin
        nd2.Netlist.fanin)
    nl

let test_builder_tie () =
  let b = B.create () in
  let t0 = B.tie b Logic4.L0 in
  let t1 = B.tie b Logic4.L1 in
  let tx = B.tie b Logic4.X in
  let g = B.gate b Cell.And [ t0; t1; tx ] in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  Alcotest.(check bool) "tie0" true (Cell.equal_kind (Netlist.kind nl t0) Cell.Tie0);
  Alcotest.(check bool) "tie1" true (Cell.equal_kind (Netlist.kind nl t1) Cell.Tie1);
  Alcotest.(check bool) "tiex" true (Cell.equal_kind (Netlist.kind nl tx) Cell.Tiex)

let test_level () =
  let b = B.create () in
  let i = B.input b "i" in
  let g1 = B.not_ b i in
  let g2 = B.not_ b g1 in
  let g3 = B.not_ b g2 in
  let _ = B.output b "o" g3 in
  let nl = B.freeze_exn b in
  Alcotest.(check int) "level input" 0 (Netlist.level nl i);
  Alcotest.(check int) "level g3" 3 (Netlist.level nl g3)

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Vec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Vec.set v 42 7;
  Alcotest.(check int) "set" 7 (Vec.get v 42);
  Alcotest.(check int) "to_array" 100 (Array.length (Vec.to_array v));
  (try
     ignore (Vec.get v 100 : int);
     Alcotest.fail "expected bounds failure"
   with Invalid_argument _ -> ())

let test_cell_pins () =
  let pins = Cell.pins Cell.Sdff ~fanin_count:3 in
  Alcotest.(check int) "sdff pins" 5 (List.length pins);
  Alcotest.(check bool) "has clk" true
    (List.exists (Cell.Pin.equal Cell.Pin.Clk) pins);
  let pins = Cell.pins Cell.And ~fanin_count:4 in
  Alcotest.(check int) "and4 pins" 5 (List.length pins)

let test_cell_names () =
  Alcotest.(check string) "sdff si" "SI" (Cell.input_pin_name Cell.Sdff 1);
  Alcotest.(check string) "sdff se" "SE" (Cell.input_pin_name Cell.Sdff 2);
  Alcotest.(check string) "dffr rstn" "RSTN" (Cell.input_pin_name Cell.Dffr 1);
  (match Cell.kind_of_name "nand" with
  | Some Cell.Nand -> ()
  | _ -> Alcotest.fail "kind_of_name");
  Alcotest.(check bool) "unknown kind" true (Cell.kind_of_name "frob" = None)

let test_dot_export () =
  let nl = Test_support.full_adder () in
  let s = Dot.to_string ~highlight:[ 0 ] nl in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph netlist");
  Alcotest.(check bool) "edge labels" true (contains "fontsize=7");
  Alcotest.(check bool) "highlight" true (contains "fillcolor=red");
  Alcotest.(check bool) "sum node" true (contains "sum_net");
  (* neighbourhood is bounded and contains the center *)
  let nb = Dot.neighbourhood nl 3 ~radius:1 in
  Alcotest.(check bool) "center included" true (List.mem 3 nb);
  Alcotest.(check bool) "bounded" true
    (List.length nb < Netlist.length nl)

let prop_random_netlists_valid =
  QCheck2.Test.make ~count:50 ~name:"random netlists freeze cleanly"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:30 in
      Netlist.length nl > 0
      &&
      (* topo covers exactly the non-source nodes *)
      let src = ref 0 in
      Netlist.iter_nodes
        (fun _ nd ->
          match nd.Netlist.kind with
          | Cell.Input | Cell.Tie0 | Cell.Tie1 | Cell.Tiex -> incr src
          | k -> if Cell.is_seq k then incr src)
        nl;
      Array.length (Netlist.topo nl) = Netlist.length nl - !src)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "netlist"
    [
      ( "build",
        [
          Alcotest.test_case "full adder" `Quick test_build_adder;
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "roles" `Quick test_roles;
          Alcotest.test_case "ties" `Quick test_builder_tie;
          Alcotest.test_case "levels" `Quick test_level;
          qt prop_random_netlists_valid;
        ] );
      ( "validate",
        [
          Alcotest.test_case "comb loop" `Quick test_comb_loop_detected;
          Alcotest.test_case "arity" `Quick test_arity_error;
          Alcotest.test_case "dangling" `Quick test_dangling;
          Alcotest.test_case "duplicate name" `Quick test_duplicate_name;
        ] );
      ( "edit",
        [
          Alcotest.test_case "remove compacts" `Quick test_remove_compacts;
          Alcotest.test_case "remove dangling" `Quick test_remove_dangling_ref;
          Alcotest.test_case "of_netlist roundtrip" `Quick
            test_of_netlist_roundtrip;
        ] );
      ( "cells",
        [
          Alcotest.test_case "pins" `Quick test_cell_pins;
          Alcotest.test_case "names" `Quick test_cell_names;
        ] );
      ("vec", [ Alcotest.test_case "vec ops" `Quick test_vec ]);
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
    ]
