open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_safety
module B = Netlist.Builder
module Seq_fsim = Olfu_fsim.Seq_fsim
module U = Olfu_atpg.Untestable

(* --- taxonomy --- *)

let test_of_status () =
  let chk st c = Alcotest.(check bool) "class" true (Taxonomy.of_status st = c) in
  chk (Status.Undetectable Status.Tied) Taxonomy.Structural_uc;
  chk (Status.Undetectable Status.Blocked) Taxonomy.Structural_uc;
  chk (Status.Undetectable Status.Unused) Taxonomy.Structural_uc;
  chk (Status.Undetectable Status.Conflict) Taxonomy.Conflict_uc;
  chk (Status.Undetectable Status.Software) Taxonomy.Software_safe;
  chk Status.Detected Taxonomy.Unclassified;
  chk Status.Not_analyzed Taxonomy.Unclassified

(* --- SEU unit netlists --- *)

(* one flop straight to the only output: any upset is visible *)
let vulnerable_ff () =
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let _ = B.output b "FO" ff in
  let nl = B.freeze_exn b in
  (nl, ff)

(* the flop drives nothing: the prefilter alone proves masking *)
let dead_ff () =
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let _ = B.output b "FO" (B.buf b d) in
  let nl = B.freeze_exn b in
  (nl, ff)

(* the flop is ANDed with constant 0 on the way out: the prefilter sees
   a path (it ignores controlling values) but the encoding proves every
   difference dies at the gate *)
let gated_ff () =
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let zero = B.tie b Logic4.L0 in
  let g = B.and2 b ~name:"g" ff zero in
  let _ = B.output b "FO" g in
  let nl = B.freeze_exn b in
  (nl, ff)

(* duplicated flop with an XOR comparator on an alarm output: an upset
   in either copy is visible, but never silently *)
let protected_ff () =
  let b = B.create () in
  let d = B.input b "d" in
  let ff1 = B.dff b ~name:"ff1" ~d in
  let ff2 = B.dff b ~name:"ff2" ~d in
  let _ = B.output b "FO" ff1 in
  let cmp = B.xor2 b ~name:"cmp" ff1 ff2 in
  let _ = B.output b "alarm_flag" cmp in
  let nl = B.freeze_exn b in
  (nl, ff1)

let test_seu_vulnerable () =
  let nl, ff = vulnerable_ff () in
  let r = Seu.classify_ff ~window:2 nl ff in
  Alcotest.(check bool) "vulnerable" true (r.Seu.cls = Taxonomy.Seu_vulnerable)

let test_seu_masked_structural () =
  let nl, ff = dead_ff () in
  let r = Seu.classify_ff ~window:3 nl ff in
  Alcotest.(check bool) "masked" true (r.Seu.cls = Taxonomy.Seu_masked);
  Alcotest.(check bool) "by prefilter" true r.Seu.structural

let test_seu_masked_gated () =
  let nl, ff = gated_ff () in
  let r = Seu.classify_ff ~window:3 nl ff in
  Alcotest.(check bool) "masked" true (r.Seu.cls = Taxonomy.Seu_masked);
  Alcotest.(check bool) "by encoding, not prefilter" false r.Seu.structural

let test_seu_protected () =
  let nl, ff = protected_ff () in
  let r = Seu.classify_ff ~window:2 nl ff in
  Alcotest.(check bool) "protected" true (r.Seu.cls = Taxonomy.Seu_protected)

let test_seu_non_seq_rejected () =
  let nl, _ = vulnerable_ff () in
  let inp = (Netlist.inputs nl).(0) in
  Alcotest.check_raises "non-seq"
    (Invalid_argument "Seu.classify_ff: not a sequential node") (fun () ->
      ignore (Seu.classify_ff nl inp))

let test_run_counts () =
  let nl, _ = protected_ff () in
  let r = Seu.run ~window:2 nl in
  Alcotest.(check int) "total" 2 r.Seu.total_ffs;
  Alcotest.(check int) "checked" 2 (Array.length r.Seu.results);
  (* ff1 feeds the functional output: protected.  ff2 only feeds the
     comparator: its upset never corrupts FO, so it is masked (an
     alarm-only divergence is not a functional failure) *)
  Alcotest.(check int) "ff1 protected" 1 r.Seu.protected_;
  Alcotest.(check int) "ff2 masked" 1 r.Seu.masked;
  Alcotest.(check int) "sum" 2
    (r.Seu.masked + r.Seu.protected_ + r.Seu.vulnerable + r.Seu.unknown)

(* --- concrete replay --- *)

let stim_all window v =
  Array.init window (fun _ -> { Seq_fsim.assign = v; strobe = true })

let test_replay_vulnerable_diverges () =
  let nl, ff = vulnerable_ff () in
  let d = (Netlist.inputs nl).(0) in
  let obs =
    Seq_fsim.run_seu ~init:Logic4.L0 ~alarm:(Seu.default_alarm nl) nl
      ~ffs:[| ff |]
      (stim_all 2 [ (d, Logic4.L0) ])
  in
  Alcotest.(check bool) "diverged" true obs.(0).Seq_fsim.seu_diverged;
  Alcotest.(check bool) "no alarm" false obs.(0).Seq_fsim.seu_alarmed

let test_replay_protected_alarms () =
  let nl, ff = protected_ff () in
  let d = (Netlist.inputs nl).(0) in
  let obs =
    Seq_fsim.run_seu ~init:Logic4.L0 ~alarm:(Seu.default_alarm nl) nl
      ~ffs:[| ff |]
      (stim_all 2 [ (d, Logic4.L0) ])
  in
  Alcotest.(check bool) "diverged" true obs.(0).Seq_fsim.seu_diverged;
  Alcotest.(check bool) "alarmed" true obs.(0).Seq_fsim.seu_alarmed

(* --- software-safe mechanism --- *)

let test_software_breakdown () =
  let b = B.create () in
  let a = B.input b "a" in
  let g = B.input b "g" in
  let x = B.and2 b ~name:"x" a g in
  let _ = B.output b "FO" x in
  let nl = B.freeze_exn b in
  let gid = match Netlist.find nl "g" with Some i -> i | None -> assert false in
  let t = U.analyze nl in
  let base = U.untestable_breakdown t nl in
  Alcotest.(check int) "no software row without facts" 0
    (List.assoc Status.Software base);
  (* the software proves g is held at 0: x becomes constant and its
     s-a-0 faults turn untestable — attributed to the Software class *)
  let consts = Olfu_atpg.Ternary.run ~assume:[ (gid, Logic4.L0) ] nl in
  let tsw = U.analyze ~consts nl in
  let bd = U.untestable_breakdown ~software:tsw t nl in
  Alcotest.(check bool) "software proofs appear" true
    (List.assoc Status.Software bd > 0);
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Status.code (Status.Undetectable c) ^ " row unchanged")
        (List.assoc c base) (List.assoc c bd))
    [ Status.Tied; Status.Blocked; Status.Conflict ]

(* --- full classifier on the small core --- *)

let test_classify_tcore16 () =
  let module A = Olfu_absint.Absint in
  let module P = Olfu_sbst.Programs in
  let cfg = Olfu_soc.Soc.tcore16 in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  let named =
    List.map (fun p -> (p.P.pname, A.of_program cfg p)) (P.suite cfg)
  in
  let facts = A.activation_facts ~label:"tcore16-suite" cfg named in
  let config =
    {
      Classify.default with
      Classify.rc = { Olfu.Run_config.default with jobs = 2 };
      window = 2;
      seu_limit = 6;
    }
  in
  let r = Classify.run ~config ~facts nl mission in
  Alcotest.(check bool) "consistent" true (Classify.consistent r);
  Alcotest.(check int) "partition" r.Classify.universe
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Classify.counts);
  Alcotest.(check bool) "structural verdicts present" true
    (List.assoc Taxonomy.Structural_uc r.Classify.counts > 0);
  Alcotest.(check int) "seu sample" 6 (Array.length r.Classify.seu.Seu.results)

(* --- qcheck: BMC verdicts vs concrete replay --- *)

(* random feed-forward machines: three inputs, four flops fed by random
   two-input gates, two functional outputs and one "err_flag" alarm *)
let build_rand seed =
  let st = Random.State.make [| seed |] in
  let b = B.create () in
  let i1 = B.input b "i1" in
  let i2 = B.input b "i2" in
  let i3 = B.input b "i3" in
  let pool = ref [ i1; i2; i3 ] in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let gate () =
    let x = pick () and y = pick () in
    match Random.State.int st 5 with
    | 0 -> B.and2 b x y
    | 1 -> B.or2 b x y
    | 2 -> B.xor2 b x y
    | 3 -> B.nand2 b x y
    | _ -> B.not_ b x
  in
  let ffs =
    Array.init 4 (fun k ->
        let ff = B.dff b ~name:(Printf.sprintf "ff%d" k) ~d:(gate ()) in
        pool := ff :: !pool;
        ff)
  in
  let _ = B.output b "FO1" (gate ()) in
  let _ = B.output b "FO2" (gate ()) in
  let _ = B.output b "err_flag" (gate ()) in
  (B.freeze_exn b, ffs)

let prop_seu_sound_vs_replay =
  QCheck2.Test.make ~count:40 ~name:"SEU verdicts sound vs concrete replay"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let nl, ffs = build_rand seed in
      let window = 3 in
      let st = Random.State.make [| seed + 7 |] in
      let inputs = Array.to_list (Netlist.inputs nl) in
      let stim =
        Array.init window (fun _ ->
            {
              Seq_fsim.assign =
                List.map
                  (fun i ->
                    (i, if Random.State.bool st then Logic4.L1 else Logic4.L0))
                  inputs;
              strobe = true;
            })
      in
      let obs =
        Seq_fsim.run_seu ~init:Logic4.L0 ~alarm:(Seu.default_alarm nl) nl
          ~ffs stim
      in
      (* a replayed divergence is one concrete BMC witness: flops the
         model checker calls masked must not show it, and protected ones
         only with the alarm raised in the same window *)
      Array.for_all2
        (fun ff (o : Seq_fsim.seu_obs) ->
          let r = Seu.classify_ff ~window nl ff in
          match r.Seu.cls with
          | Taxonomy.Seu_masked -> not o.Seq_fsim.seu_diverged
          | Taxonomy.Seu_protected ->
            (not o.Seq_fsim.seu_diverged) || o.Seq_fsim.seu_alarmed
          | Taxonomy.Seu_vulnerable | Taxonomy.Seu_unknown -> true)
        ffs obs)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "safety"
    [
      ( "taxonomy",
        [ Alcotest.test_case "of_status" `Quick test_of_status ] );
      ( "seu",
        [
          Alcotest.test_case "vulnerable" `Quick test_seu_vulnerable;
          Alcotest.test_case "masked structural" `Quick
            test_seu_masked_structural;
          Alcotest.test_case "masked gated" `Quick test_seu_masked_gated;
          Alcotest.test_case "protected" `Quick test_seu_protected;
          Alcotest.test_case "non-seq rejected" `Quick
            test_seu_non_seq_rejected;
          Alcotest.test_case "run counts" `Quick test_run_counts;
          qt prop_seu_sound_vs_replay;
        ] );
      ( "replay",
        [
          Alcotest.test_case "vulnerable diverges" `Quick
            test_replay_vulnerable_diverges;
          Alcotest.test_case "protected alarms" `Quick
            test_replay_protected_alarms;
        ] );
      ( "software",
        [
          Alcotest.test_case "breakdown row" `Quick test_software_breakdown;
        ] );
      ( "classify",
        [ Alcotest.test_case "tcore16" `Slow test_classify_tcore16 ] );
    ]
