open Olfu_logic
open Olfu_netlist
module B = Netlist.Builder
module Invar = Olfu_invar.Invar
module Seq_sim = Olfu_sim.Seq_sim

(* --- per-class unit netlists ---

   Sequential feedback is built in two passes: flops are created on a
   placeholder driver, then [B.set_fanin] closes the loops (pin 0 is the
   d input of both [Dffr] layouts used here). *)

(* one-hot ring walker: from reset 000 the state goes 100 -> 010 -> 001
   -> 100 ...; reachable codes {0,1,2,4}, every flop pair is mutex *)
let one_hot_fsm () =
  let b = B.create () in
  let rstn = B.input ~roles:[ Netlist.Reset ] b "rstn" in
  let ph = B.tie b Logic4.L0 in
  let st = Array.init 3 (fun i ->
      B.dffr b ~name:(Printf.sprintf "st[%d]" i) ~d:ph ~rstn)
  in
  let idle = B.nor2 b (B.or2 b st.(0) st.(1)) st.(2) in
  B.set_fanin b st.(0) [| idle; rstn |];
  B.set_fanin b st.(1) [| st.(0); rstn |];
  B.set_fanin b st.(2) [| st.(1); rstn |];
  let _ = B.output b "FO" (B.or2 b st.(2) st.(0)) in
  (B.freeze_exn b, st)

(* 2-bit saturating counter: 0 -> 1 -> 2 -> 2 -> ...; code 3 unreachable *)
let saturating_counter () =
  let b = B.create () in
  let rstn = B.input ~roles:[ Netlist.Reset ] b "rstn" in
  let ph = B.tie b Logic4.L0 in
  let c0 = B.dffr b ~name:"cnt[0]" ~d:ph ~rstn in
  let c1 = B.dffr b ~name:"cnt[1]" ~d:ph ~rstn in
  B.set_fanin b c0 [| B.nor2 b c0 c1; rstn |];
  B.set_fanin b c1 [| B.or2 b c1 c0; rstn |];
  let _ = B.output b "FO" (B.xor2 b c0 c1) in
  (B.freeze_exn b, [| c0; c1 |])

(* grant pair: a' = d AND NOT b, b' = NOT d AND NOT a — never both 1,
   inductively (a' AND b' contains d AND NOT d), while each flop toggles *)
let mutex_pair () =
  let b = B.create () in
  let rstn = B.input ~roles:[ Netlist.Reset ] b "rstn" in
  let d = B.input b "d" in
  let ph = B.tie b Logic4.L0 in
  let a = B.dffr b ~name:"gnt_a" ~d:ph ~rstn in
  let bb = B.dffr b ~name:"gnt_b" ~d:ph ~rstn in
  B.set_fanin b a [| B.and2 b d (B.not_ b bb); rstn |];
  B.set_fanin b bb [| B.and2 b (B.not_ b d) (B.not_ b a); rstn |];
  let _ = B.output b "FO" (B.or2 b a bb) in
  (B.freeze_exn b, a, bb)

(* free-running 8-bit incrementer: bit 7 is 0 for the first 128 cycles —
   long enough to fool the 96-cycle miner, short enough for the
   256-cycle filter to catch *)
let counter8 () =
  let b = B.create () in
  let rstn = B.input ~roles:[ Netlist.Reset ] b "rstn" in
  let ph = B.tie b Logic4.L0 in
  let q = Array.init 8 (fun i ->
      B.dffr b ~name:(Printf.sprintf "q[%d]" i) ~d:ph ~rstn)
  in
  let carry = ref (B.tie b Logic4.L1) in
  Array.iter
    (fun qi ->
      B.set_fanin b qi [| B.xor2 b qi !carry; rstn |];
      carry := B.and2 b !carry qi)
    q;
  let _ = B.output b "FO" q.(7) in
  (B.freeze_exn b, q)

(* --- tests --- *)

let find_range proved group =
  List.find_opt
    (fun (inv : Invar.invariant) ->
      match inv.Invar.form with
      | Invar.Range { group = g; _ } -> g = group
      | _ -> false)
    proved

let has_mutex proved a b =
  List.exists
    (fun (inv : Invar.invariant) ->
      match inv.Invar.form with
      | Invar.Mutex (x, y) -> (x, y) = (a, b) || (x, y) = (b, a)
      | _ -> false)
    proved

let test_one_hot () =
  let nl, st = one_hot_fsm () in
  let r = Invar.run nl in
  (match find_range r.Invar.proved st with
  | Some { Invar.form = Invar.Range { reach; _ }; cert } ->
    Alcotest.(check (list int)) "reachable codes" [ 0; 1; 2; 4 ] reach;
    Alcotest.(check bool) "certificate k" true (cert.Invar.cert_k >= 1)
  | _ -> Alcotest.fail "no proved range on st");
  Alcotest.(check bool) "st0/st1 mutex" true
    (has_mutex r.Invar.proved st.(0) st.(1));
  Alcotest.(check bool) "st1/st2 mutex" true
    (has_mutex r.Invar.proved st.(1) st.(2));
  (* the at-most-one form of the same fact, fed to the prover directly *)
  let proved, failed = Invar.prove nl [ Invar.At_most_one st ] in
  Alcotest.(check int) "amo failed" 0 (List.length failed);
  Alcotest.(check int) "amo proved" 1 (List.length proved)

let test_saturating_counter () =
  let nl, c = saturating_counter () in
  let r = Invar.run nl in
  match find_range r.Invar.proved c with
  | Some { Invar.form = Invar.Range { reach; _ }; _ } ->
    Alcotest.(check (list int)) "reachable codes" [ 0; 1; 2 ] reach
  | _ -> Alcotest.fail "no proved range on cnt"

let test_mutex_pair () =
  let nl, a, b = mutex_pair () in
  let r = Invar.run nl in
  Alcotest.(check bool) "gnt mutex proved" true (has_mutex r.Invar.proved a b);
  (* neither grant flop is constant: the fact is genuinely sequential *)
  List.iter
    (fun (inv : Invar.invariant) ->
      match inv.Invar.form with
      | Invar.Const { ff; _ } ->
        if ff = a || ff = b then Alcotest.fail "grant flop proved constant"
      | _ -> ())
    r.Invar.proved

let test_sim_filter_kills_false_const () =
  let nl, q = counter8 () in
  let is_const_q7 c =
    match c with
    | Invar.Const { ff; value } -> ff = q.(7) && value = false
    | _ -> false
  in
  (* the 96-cycle mining trace never sees bit 7 rise ... *)
  let mined = Invar.mine nl in
  Alcotest.(check bool) "miner fooled" true (List.exists is_const_q7 mined);
  (* ... the 256-cycle filter kills the candidate before any proof *)
  let r = Invar.run nl in
  Alcotest.(check bool) "filter killed it" true
    (List.exists is_const_q7 r.Invar.killed);
  List.iter
    (fun (inv : Invar.invariant) ->
      if is_const_q7 inv.Invar.form then
        Alcotest.fail "false candidate reached the proved set")
    r.Invar.proved

let test_report_partition () =
  let nl, _ = one_hot_fsm () in
  let r = Invar.run nl in
  Alcotest.(check int) "mined = killed + unproved + proved"
    (List.length r.Invar.mined)
    (List.length r.Invar.killed
    + List.length r.Invar.unproved
    + List.length r.Invar.proved);
  let by = Invar.count_by_class r in
  let total = List.fold_left (fun acc (_, p, o) -> acc + p + o) 0 by in
  Alcotest.(check int) "class table covers every candidate"
    (List.length r.Invar.mined) total

(* --- qcheck: proved invariants hold on long random traces --- *)

let build_rand seed =
  let st = Random.State.make [| seed |] in
  let b = B.create () in
  let rstn = B.input ~roles:[ Netlist.Reset ] b "rstn" in
  let i1 = B.input b "i1" in
  let i2 = B.input b "i2" in
  let ph = B.tie b Logic4.L0 in
  let ffs =
    Array.init 4 (fun k ->
        B.dffr b ~name:(Printf.sprintf "r[%d]" k) ~d:ph ~rstn)
  in
  let pool = ref [ i1; i2; ffs.(0); ffs.(1); ffs.(2); ffs.(3) ] in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let gate () =
    let x = pick () and y = pick () in
    let g =
      match Random.State.int st 5 with
      | 0 -> B.and2 b x y
      | 1 -> B.or2 b x y
      | 2 -> B.xor2 b x y
      | 3 -> B.nand2 b x y
      | _ -> B.not_ b x
    in
    pool := g :: !pool;
    g
  in
  Array.iter (fun ff -> B.set_fanin b ff [| gate (); rstn |]) ffs;
  let _ = B.output b "FO" (gate ()) in
  (B.freeze_exn b, ffs)

let bit sim ff =
  match Seq_sim.value sim ff with
  | Logic4.L1 -> Some true
  | Logic4.L0 -> Some false
  | _ -> None

let holds sim (inv : Invar.invariant) =
  match inv.Invar.form with
  | Invar.Const { ff; value } -> (
    match bit sim ff with Some x -> x = value | None -> true)
  | Invar.Implies { a; av; b; bv } -> (
    match (bit sim a, bit sim b) with
    | Some x, Some y -> x <> av || y = bv
    | _ -> true)
  | Invar.Mutex (a, b) -> (
    match (bit sim a, bit sim b) with
    | Some x, Some y -> not (x && y)
    | _ -> true)
  | Invar.At_most_one g ->
    let ones =
      Array.fold_left
        (fun acc ff -> if bit sim ff = Some true then acc + 1 else acc)
        0 g
    in
    ones <= 1
  | Invar.Range { group; reach } ->
    let value = ref 0 and binary = ref true in
    Array.iteri
      (fun i ff ->
        match bit sim ff with
        | Some true -> value := !value lor (1 lsl i)
        | Some false -> ()
        | None -> binary := false)
      group;
    (not !binary) || List.mem !value reach

let prop_proved_hold_on_traces =
  QCheck2.Test.make ~count:25
    ~name:"proved invariants hold on long random traces"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let nl, _ = build_rand seed in
      let r = Invar.run nl in
      let st = Random.State.make [| seed + 13 |] in
      let sim = Seq_sim.create ~init:Logic4.L0 nl in
      let inputs = Netlist.inputs nl in
      let rstn =
        Array.to_list inputs
        |> List.find (fun i -> Netlist.has_role nl i Netlist.Reset)
      in
      let ok = ref true in
      for _cycle = 0 to 299 do
        Array.iter
          (fun i ->
            if i <> rstn then
              Seq_sim.set_input sim i
                (if Random.State.bool st then Logic4.L1 else Logic4.L0))
          inputs;
        Seq_sim.set_input sim rstn Logic4.L1;
        Seq_sim.settle sim;
        List.iter
          (fun inv -> if not (holds sim inv) then ok := false)
          r.Invar.proved;
        Seq_sim.step sim
      done;
      !ok)

let prop_sliced_prove_identical =
  QCheck2.Test.make ~count:15
    ~name:"sliced prove = unsliced prove (proved set, certs, failures)"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let nl, _ = build_rand seed in
      let cands = Invar.mine ~seed nl in
      let pf = Invar.prove ~jobs:1 ~sliced:false nl cands in
      let ps = Invar.prove ~jobs:1 ~sliced:true nl cands in
      pf = ps)

(* --- tcore16 integration regression --- *)

let test_tcore16_counts () =
  let cfg = Olfu_soc.Soc.tcore16 in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  let flow = Olfu.Flow.run Olfu.Run_config.default nl mission in
  let machine =
    Olfu_safety.Classify.bmc_machine flow.Olfu.Flow.mission_netlist
  in
  let r = Invar.run ~jobs:2 machine in
  let by = Invar.count_by_class r in
  let proved cls =
    match List.find_opt (fun (c, _, _) -> c = cls) by with
    | Some (_, p, _) -> p
    | None -> 0
  in
  (* pinned counts: the pipeline is deterministic (fixed seeds, greatest
     inductive subset), so any drift is a real behaviour change *)
  Alcotest.(check int) "proved" 66 (List.length r.Invar.proved);
  Alcotest.(check int) "const proved" 60 (proved "const");
  Alcotest.(check int) "mutex proved" 3 (proved "mutex");
  Alcotest.(check int) "range proved" 3 (proved "range");
  Alcotest.(check bool) "a non-constant class is proved" true
    (proved "mutex" + proved "at-most-one" + proved "range" >= 1)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "invar"
    [
      ( "classes",
        [
          Alcotest.test_case "one-hot ring" `Quick test_one_hot;
          Alcotest.test_case "saturating counter" `Quick
            test_saturating_counter;
          Alcotest.test_case "mutex pair" `Quick test_mutex_pair;
          Alcotest.test_case "sim filter kills false const" `Quick
            test_sim_filter_kills_false_const;
          Alcotest.test_case "report partition" `Quick test_report_partition;
        ] );
      ("soundness", [ qt prop_proved_hold_on_traces ]);
      ("slicing", [ qt prop_sliced_prove_identical ]);
      ("integration", [ Alcotest.test_case "tcore16 counts" `Quick test_tcore16_counts ]);
    ]
