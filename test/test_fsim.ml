open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_atpg
open Olfu_fsim
module B = Netlist.Builder

(* --- combinational PPSFP --- *)

let test_adder_high_coverage () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  let pats = Comb_fsim.random_patterns ~seed:7 nl 64 in
  let r = Comb_fsim.run nl fl pats in
  (* every adder fault is detectable and 64 random patterns cover the whole
     8-entry input space with overwhelming probability *)
  Alcotest.(check int) "all detected" (Flist.size fl) r.Comb_fsim.detected;
  Alcotest.(check (float 0.001)) "coverage 100%" 1.0 (Flist.fault_coverage fl)

let test_podem_tests_detect () =
  (* PODEM's patterns, replayed through the fault simulator, must detect. *)
  let nl = Test_support.full_adder () in
  let srcs = Array.append (Netlist.inputs nl) (Netlist.seq_nodes nl) in
  Array.iter
    (fun f ->
      match Podem.run nl f with
      | Podem.Test asg ->
        let pat =
          Array.map
            (fun s ->
              match List.assoc_opt s asg with
              | Some b -> Logic4.of_bool b
              | None -> Logic4.L0)
            srcs
        in
        Alcotest.(check bool)
          (Printf.sprintf "fsim confirms %s" (Fault.to_string nl f))
          true
          (Comb_fsim.detects nl f pat)
      | _ -> Alcotest.fail "adder fault not tested")
    (Fault.universe nl)

let test_redundant_never_detected () =
  let nl = Test_support.redundant_circuit () in
  let bnode = Netlist.find_exn nl "b" in
  let fl = Flist.create nl [| Fault.sa0 bnode Cell.Pin.Out |] in
  let r = Comb_fsim.run nl fl (Comb_fsim.random_patterns ~seed:3 nl 256) in
  Alcotest.(check int) "no detection" 0 r.Comb_fsim.detected

let prop_untestable_never_detected =
  QCheck2.Test.make ~count:20
    ~name:"implication-untestable faults never detected by fsim"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:20 in
      let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
      let fl = Flist.full nl in
      ignore
        (Comb_fsim.run nl fl (Comb_fsim.random_patterns ~seed nl 128)
          : Comb_fsim.report);
      let ok = ref true in
      Flist.iteri
        (fun _ f st ->
          if Status.equal st Status.Detected then
            match Untestable.fault_verdict t f with
            | Some _ -> ok := false  (* engine called a detected fault dead *)
            | None -> ())
        fl;
      !ok)

(* batching edge: more than 64 patterns, non-multiple of 64 *)
let test_batching () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  let r = Comb_fsim.run nl fl (Comb_fsim.random_patterns ~seed:1 nl 100) in
  Alcotest.(check int) "patterns counted" 100 r.Comb_fsim.patterns;
  Alcotest.(check bool) "detected all" true
    (Flist.count_status fl Status.Detected = Flist.size fl)

(* --- cone engine vs full-settle oracle, parallel determinism --- *)

let statuses fl = Array.init (Flist.size fl) (Flist.status fl)

let prop_cone_engine_matches_full =
  QCheck2.Test.make ~count:15
    ~name:"cone engine = full-settle baseline, statuses identical any jobs"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl =
        if seed mod 2 = 0 then
          Test_support.random_comb_netlist rng ~inputs:4 ~gates:25
        else Test_support.random_seq_netlist rng ~inputs:3 ~gates:18 ~flops:3
      in
      (* 100 patterns: two batches, the second partial *)
      let pats = Comb_fsim.random_patterns ~seed nl 100 in
      let run engine jobs =
        let fl = Flist.full nl in
        let r = Comb_fsim.run ~engine ~jobs nl fl pats in
        (statuses fl, r)
      in
      let reference = run Comb_fsim.Full_settle 1 in
      List.for_all
        (fun jobs -> run Comb_fsim.Cone jobs = reference)
        [ 1; 2; 4 ])

let prop_cone_matches_detects_oracle =
  QCheck2.Test.make ~count:25
    ~name:"cone run agrees with the single-fault detects oracle"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:20 in
      let universe = Fault.universe nl in
      let f = universe.(Random.State.int rng (Array.length universe)) in
      if f.Fault.site.Fault.pin = Cell.Pin.Clk then true
      else begin
        let pat = (Comb_fsim.random_patterns ~seed nl 1).(0) in
        let fl = Flist.create nl [| f |] in
        ignore
          (Comb_fsim.run ~engine:Comb_fsim.Cone ~jobs:1 nl fl [| pat |]
            : Comb_fsim.report);
        Bool.equal
          (Status.equal (Flist.status fl 0) Status.Detected)
          (Comb_fsim.detects nl f pat)
      end)

(* --- sequential, fault-parallel --- *)

let shift3 () =
  let b = B.create () in
  let d = B.input b "d" in
  let f1 = B.dff b ~name:"f1" ~d in
  let f2 = B.dff b ~name:"f2" ~d:f1 in
  let f3 = B.dff b ~name:"f3" ~d:f2 in
  let _ = B.output b "q" f3 in
  B.freeze_exn b

let drive nl name v = (Netlist.find_exn nl name, v)

let test_seq_shift_detection () =
  let nl = shift3 () in
  let fl = Flist.full nl in
  (* walk 1 then 0 through the register, strobing every cycle *)
  let stim =
    Array.init 10 (fun i ->
        {
          Seq_fsim.assign =
            [ drive nl "d" (Logic4.of_bool (i mod 4 < 2)) ];
          strobe = true;
        })
  in
  let r = Seq_fsim.run ~init:Logic4.L0 nl fl stim in
  Alcotest.(check int) "cycles" 10 r.Seq_fsim.cycles;
  (* every stuck-at on the d path shows at q *)
  let d = Netlist.find_exn nl "d" in
  let idx f = Option.get (Flist.find fl f) in
  Alcotest.(check bool) "d s@0 detected" true
    (Status.equal (Flist.status fl (idx (Fault.sa0 d Cell.Pin.Out))) Status.Detected);
  Alcotest.(check bool) "d s@1 detected" true
    (Status.equal (Flist.status fl (idx (Fault.sa1 d Cell.Pin.Out))) Status.Detected);
  let f2 = Netlist.find_exn nl "f2" in
  Alcotest.(check bool) "f2 out s@1 detected" true
    (Status.equal (Flist.status fl (idx (Fault.sa1 f2 Cell.Pin.Out))) Status.Detected)

let test_seq_clock_fault () =
  let nl = shift3 () in
  let f1 = Netlist.find_exn nl "f1" in
  let fl = Flist.create nl [| Fault.sa0 f1 Cell.Pin.Clk |] in
  (* with init 0 and a walking 1, a frozen f1 never passes the 1 along *)
  let stim =
    Array.init 8 (fun i ->
        {
          Seq_fsim.assign = [ drive nl "d" (Logic4.of_bool (i mod 2 = 0)) ];
          strobe = true;
        })
  in
  let r = Seq_fsim.run ~init:Logic4.L0 nl fl stim in
  Alcotest.(check int) "clock fault detected" 1 r.Seq_fsim.detected

let test_seq_unobserved_output () =
  let nl = shift3 () in
  let fl = Flist.full nl in
  let stim =
    Array.init 8 (fun i ->
        {
          Seq_fsim.assign = [ drive nl "d" (Logic4.of_bool (i mod 2 = 0)) ];
          strobe = true;
        })
  in
  (* observing nothing detects nothing *)
  let r = Seq_fsim.run ~init:Logic4.L0 ~observe:(fun _ -> false) nl fl stim in
  Alcotest.(check int) "no observation, no detection" 0 r.Seq_fsim.detected

let test_seq_scan_faults_undetected () =
  (* mission stimulus (se = 0) never detects SI faults: the empirical
     confirmation of the paper's scan rule *)
  let b = B.create () in
  let d = B.input b "d" in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let ff = B.sdff b ~name:"ff" ~d ~si ~se in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  let fl = Flist.full nl in
  let stim =
    Array.init 8 (fun i ->
        {
          Seq_fsim.assign =
            [
              drive nl "d" (Logic4.of_bool (i mod 2 = 0));
              drive nl "si" (Logic4.of_bool (i mod 3 = 0));
              drive nl "se" Logic4.L0;
            ];
          strobe = true;
        })
  in
  ignore (Seq_fsim.run ~init:Logic4.L0 nl fl stim : Seq_fsim.report);
  let idx f = Option.get (Flist.find fl f) in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "%s undetected" (Fault.to_string nl f))
        false
        (Status.equal (Flist.status fl (idx f)) Status.Detected))
    [
      Fault.sa0 ff (Cell.Pin.In 1); Fault.sa1 ff (Cell.Pin.In 1);
      Fault.sa0 ff (Cell.Pin.In 2);
    ];
  (* while SE s@1 IS detected: it swaps the captured value to si *)
  Alcotest.(check bool) "SE s@1 detected" true
    (Status.equal
       (Flist.status fl (idx (Fault.sa1 ff (Cell.Pin.In 2))))
       Status.Detected)

(* fault-parallel = serial scalar: spot-check against a scalar rerun *)
let prop_seq_matches_scalar =
  QCheck2.Test.make ~count:10 ~name:"fault-parallel = scalar sequential"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_seq_netlist rng ~inputs:3 ~gates:12 ~flops:3 in
      let fl = Flist.full nl in
      let ins = Netlist.inputs nl in
      let stim =
        Array.init 12 (fun _ ->
            {
              Seq_fsim.assign =
                Array.to_list ins
                |> List.map (fun i ->
                       (i, Logic4.of_bool (Random.State.bool rng)));
              strobe = true;
            })
      in
      ignore (Seq_fsim.run ~init:Logic4.L0 nl fl stim : Seq_fsim.report);
      (* re-run a few faults alone (their own batch) and compare verdicts *)
      let ok = ref true in
      let check_lone fi =
        let f = Flist.fault fl fi in
        let fl1 = Flist.create nl [| f |] in
        ignore (Seq_fsim.run ~init:Logic4.L0 nl fl1 stim : Seq_fsim.report);
        let lone = Status.equal (Flist.status fl1 0) Status.Detected in
        let batched = Status.equal (Flist.status fl fi) Status.Detected in
        if lone <> batched then ok := false
      in
      let n = Flist.size fl in
      check_lone 0;
      check_lone (n / 2);
      check_lone (n - 1);
      check_lone (n / 3);
      !ok)

let prop_seq_jobs_deterministic =
  QCheck2.Test.make ~count:10
    ~name:"seq fsim statuses identical for any jobs"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl =
        Test_support.random_seq_netlist rng ~inputs:3 ~gates:15 ~flops:4
      in
      let ins = Netlist.inputs nl in
      let stim =
        Array.init 10 (fun _ ->
            {
              Seq_fsim.assign =
                Array.to_list ins
                |> List.map (fun i ->
                       (i, Logic4.of_bool (Random.State.bool rng)));
              strobe = true;
            })
      in
      let run jobs =
        let fl = Flist.full nl in
        let r = Seq_fsim.run ~init:Logic4.L0 ~jobs nl fl stim in
        (statuses fl, r)
      in
      let reference = run 1 in
      List.for_all (fun jobs -> run jobs = reference) [ 2; 4 ])

(* --- diagnosis --- *)

let test_diagnosis_pinpoints_fault () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  let injected = Flist.fault fl 7 in
  let pats = Comb_fsim.random_patterns ~seed:9 nl 24 in
  let observations =
    Array.to_list (Array.map (fun p -> Diagnose.observe ~faulty:injected nl p) pats)
  in
  let ranked = Diagnose.candidates nl fl observations in
  (* the injected fault must fully explain every observation and rank in
     the top equivalence group *)
  let top = List.hd ranked in
  Alcotest.(check int) "top explains all" (List.length observations)
    top.Diagnose.explained;
  let perfect =
    List.filter
      (fun c ->
        c.Diagnose.explained = List.length observations
        && c.Diagnose.contradicted = 0)
      ranked
  in
  Alcotest.(check bool) "injected fault among perfect" true
    (List.exists (fun c -> c.Diagnose.fault = 7) perfect);
  (* the perfect set is small relative to the universe *)
  Alcotest.(check bool) "focused" true
    (List.length perfect * 4 < Flist.size fl)

let test_diagnosis_good_device () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  let pats = Comb_fsim.random_patterns ~seed:5 nl 16 in
  let observations =
    Array.to_list (Array.map (fun p -> Diagnose.observe nl p) pats)
  in
  let ranked = Diagnose.candidates nl fl observations in
  (* a fault-free device contradicts every detectable fault somewhere *)
  let perfect =
    List.filter
      (fun c -> c.Diagnose.contradicted = 0 && c.Diagnose.explained > 0)
      ranked
  in
  Alcotest.(check int) "no fault explains a good device" 0
    (List.length perfect)

let prop_diagnosis_contains_culprit =
  QCheck2.Test.make ~count:10 ~name:"diagnosis always contains the culprit"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:15 in
      let fl = Flist.full nl in
      let fi = Random.State.int rng (Flist.size fl) in
      let f = Flist.fault fl fi in
      if f.Fault.site.Fault.pin = Cell.Pin.Clk then true
      else begin
        let pats = Comb_fsim.random_patterns ~seed nl 16 in
        let observations =
          Array.to_list
            (Array.map (fun p -> Diagnose.observe ~faulty:f nl p) pats)
        in
        let ranked = Diagnose.candidates nl fl observations in
        let nobs = List.length observations in
        List.exists
          (fun c ->
            c.Diagnose.fault = fi
            && c.Diagnose.explained = nobs
            && c.Diagnose.contradicted = 0)
          ranked
      end)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fsim"
    [
      ( "comb",
        [
          Alcotest.test_case "adder coverage" `Quick test_adder_high_coverage;
          Alcotest.test_case "podem tests detect" `Quick test_podem_tests_detect;
          Alcotest.test_case "redundant undetected" `Quick
            test_redundant_never_detected;
          Alcotest.test_case "batching" `Quick test_batching;
          qt prop_untestable_never_detected;
          qt prop_cone_engine_matches_full;
          qt prop_cone_matches_detects_oracle;
        ] );
      ( "diagnose",
        [
          Alcotest.test_case "pinpoints fault" `Quick
            test_diagnosis_pinpoints_fault;
          Alcotest.test_case "good device" `Quick test_diagnosis_good_device;
          qt prop_diagnosis_contains_culprit;
        ] );
      ( "seq",
        [
          Alcotest.test_case "shift detection" `Quick test_seq_shift_detection;
          Alcotest.test_case "clock fault" `Quick test_seq_clock_fault;
          Alcotest.test_case "unobserved" `Quick test_seq_unobserved_output;
          Alcotest.test_case "scan faults" `Quick test_seq_scan_faults_undetected;
          qt prop_seq_matches_scalar;
          qt prop_seq_jobs_deterministic;
        ] );
    ]
