open Olfu_logic
open Olfu_netlist
open Olfu_soc
open Olfu_sbst
module B = Netlist.Builder

(* --- RTL kit --- *)

let eval_bus _nl env bus = Rtl.const_of_env env bus

let test_rtl_adder () =
  let b = B.create () in
  let x = Rtl.input_bus b "x" 8 in
  let y = Rtl.input_bus b "y" 8 in
  let s, cout = Rtl.adder b x y in
  Rtl.output_bus b "s" s;
  ignore (B.output b "cout" cout : int);
  let nl = B.freeze_exn b in
  let env = Olfu_sim.Comb_sim.init nl Logic4.X in
  List.iter
    (fun (a, bv) ->
      let assigns = ref [] in
      Rtl.drive_int assigns x a;
      Rtl.drive_int assigns y bv;
      List.iter (fun (n, v) -> env.(n) <- v) !assigns;
      Olfu_sim.Comb_sim.settle nl env;
      Alcotest.(check (option int))
        (Printf.sprintf "%d+%d" a bv)
        (Some ((a + bv) land 0xFF))
        (eval_bus nl env s))
    [ (0, 0); (1, 1); (255, 1); (170, 85); (200, 100) ]

let test_rtl_barrel () =
  let b = B.create () in
  let x = Rtl.input_bus b "x" 16 in
  let sh = Rtl.input_bus b "sh" 4 in
  let l = Rtl.barrel_shift b x ~shamt:sh `Left in
  let r = Rtl.barrel_shift b x ~shamt:sh `Right in
  Rtl.output_bus b "l" l;
  Rtl.output_bus b "r" r;
  let nl = B.freeze_exn b in
  let env = Olfu_sim.Comb_sim.init nl Logic4.X in
  List.iter
    (fun (v, k) ->
      let assigns = ref [] in
      Rtl.drive_int assigns x v;
      Rtl.drive_int assigns sh k;
      List.iter (fun (n, vv) -> env.(n) <- vv) !assigns;
      Olfu_sim.Comb_sim.settle nl env;
      Alcotest.(check (option int)) "left" (Some ((v lsl k) land 0xFFFF))
        (eval_bus nl env l);
      Alcotest.(check (option int)) "right" (Some (v lsr k)) (eval_bus nl env r))
    [ (0x0001, 3); (0x8001, 1); (0xFFFF, 15); (0x1234, 0); (0x00F0, 8) ]

let test_rtl_multiplier () =
  let b = B.create () in
  let x = Rtl.input_bus b "x" 8 in
  let y = Rtl.input_bus b "y" 8 in
  let p = Rtl.multiplier b x y in
  Rtl.output_bus b "p" p;
  let nl = B.freeze_exn b in
  Alcotest.(check int) "result width" 16 (Rtl.width p);
  let env = Olfu_sim.Comb_sim.init nl Logic4.X in
  List.iter
    (fun (a, bv) ->
      let assigns = ref [] in
      Rtl.drive_int assigns x a;
      Rtl.drive_int assigns y bv;
      List.iter (fun (n, v) -> env.(n) <- v) !assigns;
      Olfu_sim.Comb_sim.settle nl env;
      Alcotest.(check (option int))
        (Printf.sprintf "%d*%d" a bv)
        (Some (a * bv))
        (eval_bus nl env p))
    [ (0, 0); (1, 255); (255, 255); (170, 85); (13, 17); (255, 1) ]

let test_rtl_divider () =
  let b = B.create () in
  let x = Rtl.input_bus b "x" 8 in
  let y = Rtl.input_bus b "y" 8 in
  let q, r = Rtl.divider b ~dividend:x ~divisor:y in
  Rtl.output_bus b "q" q;
  Rtl.output_bus b "r" r;
  let nl = B.freeze_exn b in
  let env = Olfu_sim.Comb_sim.init nl Logic4.X in
  List.iter
    (fun (a, bv) ->
      let assigns = ref [] in
      Rtl.drive_int assigns x a;
      Rtl.drive_int assigns y bv;
      List.iter (fun (n, v) -> env.(n) <- v) !assigns;
      Olfu_sim.Comb_sim.settle nl env;
      if bv > 0 then begin
        Alcotest.(check (option int))
          (Printf.sprintf "%d/%d" a bv)
          (Some (a / bv))
          (eval_bus nl env q);
        Alcotest.(check (option int))
          (Printf.sprintf "%d mod %d" a bv)
          (Some (a mod bv))
          (eval_bus nl env r)
      end)
    [ (0, 1); (255, 1); (255, 255); (200, 7); (13, 17); (99, 10); (128, 2) ]

let test_rtl_mux_tree_decoder () =
  let b = B.create () in
  let sel = Rtl.input_bus b "sel" 2 in
  let ins = List.init 4 (fun k -> Rtl.const b ~width:4 (k + 3)) in
  let o = Rtl.mux_tree b ~sel ins in
  Rtl.output_bus b "o" o;
  let dec = Rtl.decoder b sel in
  Array.iteri (fun k n -> ignore (B.output b (Printf.sprintf "d%d" k) n : int)) dec;
  let nl = B.freeze_exn b in
  let env = Olfu_sim.Comb_sim.init nl Logic4.X in
  for k = 0 to 3 do
    let assigns = ref [] in
    Rtl.drive_int assigns sel k;
    List.iter (fun (n, v) -> env.(n) <- v) !assigns;
    Olfu_sim.Comb_sim.settle nl env;
    Alcotest.(check (option int)) "mux" (Some (k + 3)) (eval_bus nl env o);
    Array.iteri
      (fun j n ->
        Alcotest.(check bool)
          (Printf.sprintf "dec %d/%d" j k)
          (j = k)
          (Logic4.equal env.(n) Logic4.L1))
      dec
  done

let test_rtl_eq_and_extend () =
  let b = B.create () in
  let x = Rtl.input_bus b "x" 6 in
  let y = Rtl.input_bus b "y" 6 in
  let e = Rtl.eq b x y in
  let ec = Rtl.eq_const b x 0x2A in
  ignore (B.output b "e" e : int);
  ignore (B.output b "ec" ec : int);
  let sx = Rtl.sign_extend b (Rtl.slice x 0 4) 6 in
  Rtl.output_bus b "sx" sx;
  let nl = B.freeze_exn b in
  let env = Olfu_sim.Comb_sim.init nl Logic4.X in
  let assigns = ref [] in
  Rtl.drive_int assigns x 0x2A;
  Rtl.drive_int assigns y 0x2A;
  List.iter (fun (n, v) -> env.(n) <- v) !assigns;
  Olfu_sim.Comb_sim.settle nl env;
  Alcotest.(check (option int)) "eq true" (Some 1)
    (eval_bus nl env [| Netlist.find_exn nl "e" |]);
  Alcotest.(check (option int)) "eq_const true" (Some 1)
    (eval_bus nl env [| Netlist.find_exn nl "ec" |]);
  (* x low nibble = 0xA: sign bit set -> extends to 0x3A over 6 bits *)
  Alcotest.(check (option int)) "sign extend" (Some 0x3A) (eval_bus nl env sx);
  let assigns = ref [] in
  Rtl.drive_int assigns y 0x15;
  List.iter (fun (n, v) -> env.(n) <- v) !assigns;
  Olfu_sim.Comb_sim.settle nl env;
  Alcotest.(check (option int)) "eq false" (Some 0)
    (eval_bus nl env [| Netlist.find_exn nl "e" |])

let test_config_pp_and_regions () =
  let s = Format.asprintf "%a" Soc.pp_config Soc.tcore32 in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 10 && String.sub s 0 7 = "tcore32");
  Alcotest.(check int) "two regions" 2
    (List.length (Soc.memmap_regions Soc.tcore32));
  (* the dft variant only flips the dft knobs *)
  Alcotest.(check bool) "dft bist" true Soc.tcore32_dft.Soc.bist;
  Alcotest.(check bool) "base no bist" false Soc.tcore32.Soc.bist;
  Alcotest.(check int) "same xlen" Soc.tcore32.Soc.xlen
    Soc.tcore32_dft.Soc.xlen

(* --- ISA --- *)

let test_isa_roundtrip () =
  let all =
    [
      Isa.Nop; Isa.Li (3, 0xAB); Isa.Addi (2, 0x7F); Isa.Add (1, 2);
      Isa.Sub (4, 5); Isa.And_ (6, 7); Isa.Or_ (8, 9); Isa.Xor_ (10, 11);
      Isa.Sll (12, 13); Isa.Srl (14, 15); Isa.Lw (1, 2); Isa.Sw (3, 4);
      Isa.Beqz (5, 0x80); Isa.Bnez (6, 0x7F); Isa.Jr 7; Isa.Halt;
    ]
  in
  List.iter
    (fun i ->
      let w = Isa.encode i in
      Alcotest.(check bool)
        (Format.asprintf "%a" Isa.pp i)
        true
        (Isa.decode w = i))
    all

let test_asm_labels () =
  let prog =
    [
      Asm.I (Isa.Li (1, 3)); Asm.L "loop"; Asm.I (Isa.Addi (1, -1));
      Asm.Bnez (1, "loop"); Asm.I Isa.Halt;
    ]
  in
  let words = Asm.assemble prog in
  Alcotest.(check int) "4 words" 4 (Array.length words);
  (* backward branch offset: target 1, pc+1 = 3 -> off = -2 *)
  match Isa.decode words.(2) with
  | Isa.Bnez (1, off) -> Alcotest.(check int) "offset" 0xFE off
  | _ -> Alcotest.fail "expected bnez"

let test_asm_load_const () =
  List.iter
    (fun v ->
      let prog = Asm.load_const 5 v @ [ Asm.I Isa.Halt ] in
      let sim = Isa_sim.create ~xlen:32 in
      Isa_sim.load sim ~addr:0 (Asm.assemble prog);
      ignore (Isa_sim.run sim : Isa_sim.outcome);
      Alcotest.(check int) (Printf.sprintf "const %x" v) v (Isa_sim.reg sim 5))
    [ 0; 1; 0xFF; 0x4000_0000; 0xDEAD_BEEF; 0x7FFF_FFFF ]

let test_isa_sim_basics () =
  let prog =
    [
      Asm.I (Isa.Li (1, 10)); Asm.I (Isa.Li (2, 3)); Asm.I (Isa.Sub (1, 2));
      Asm.I (Isa.Li (15, 0x80)); Asm.I (Isa.Sw (1, 15)); Asm.I Isa.Halt;
    ]
  in
  let sim = Isa_sim.create ~xlen:16 in
  Isa_sim.load sim ~addr:0 (Asm.assemble prog);
  ignore (Isa_sim.run sim : Isa_sim.outcome);
  Alcotest.(check int) "r1" 7 (Isa_sim.reg sim 1);
  Alcotest.(check (list (pair int int))) "writes" [ (0x80, 7) ] (Isa_sim.writes sim)

(* --- generated SoC sanity --- *)

let t16 = lazy (Soc.generate Soc.tcore16)

let test_generate_tcore16 () =
  let nl = Lazy.force t16 in
  let s = Stats.of_netlist nl in
  Alcotest.(check bool) "has flops" true (s.Stats.flops > 100);
  Alcotest.(check int) "all flops scanned" s.Stats.flops s.Stats.scan_flops;
  Alcotest.(check bool) "sane size" true (s.Stats.nodes > 1000);
  (* ports present *)
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " present") true (Netlist.find nl p <> None))
    [ "rstn"; "bus_rd"; "bus_wr"; "halted"; "scan_en"; "scan_in0"; "dbg_de" ]

let test_scan_chains_traceable () =
  let nl = Lazy.force t16 in
  let chains = Olfu_manip.Scan_trace.trace nl in
  Alcotest.(check int) "chain count" Soc.tcore16.Soc.scan_chains
    (List.length chains);
  let total =
    List.fold_left (fun a c -> a + List.length c.Olfu_manip.Scan_trace.cells) 0 chains
  in
  let s = Stats.of_netlist nl in
  Alcotest.(check int) "all cells on chains" s.Stats.flops total;
  List.iter
    (fun c ->
      Alcotest.(check bool) "chain terminated" true
        (c.Olfu_manip.Scan_trace.scan_out <> None))
    chains

(* Gate-level core executes programs exactly like the ISA simulator. *)
let check_program_equivalence cfg nl prog_items =
  let program = Asm.assemble prog_items in
  let gold = Isa_sim.create ~xlen:cfg.Soc.xlen in
  Isa_sim.load gold ~addr:cfg.Soc.rom.Olfu_manip.Memmap.lo program;
  (* isa sim starts at pc 0; tcore fetches from pc 0 too, so programs must
     be linked at rom base = pc reset value *)
  ignore (Isa_sim.run gold : Isa_sim.outcome);
  let run = Testbench.record cfg nl ~program in
  Alcotest.(check bool) "gate-level run halted" true run.Testbench.halted;
  Alcotest.(check (list (pair int int)))
    "write traces equal" (Isa_sim.writes gold) run.Testbench.writes;
  Alcotest.(check bool) "replay reproduces" true
    (Testbench.replay_matches cfg nl run)

let test_core_executes_basic () =
  let nl = Lazy.force t16 in
  check_program_equivalence Soc.tcore16 nl
    [
      Asm.I (Isa.Li (1, 42)); Asm.I (Isa.Li (15, 0x12)); Asm.I (Isa.Sw (1, 15));
      Asm.I (Isa.Addi (1, 1)); Asm.I (Isa.Sw (1, 15)); Asm.I Isa.Halt;
    ]

let test_core_executes_suite () =
  let nl = Lazy.force t16 in
  List.iter
    (fun p -> check_program_equivalence Soc.tcore16 nl p.Programs.items)
    (Programs.suite Soc.tcore16)

let prop_core_matches_isa_sim =
  QCheck2.Test.make ~count:10 ~name:"gate-level core = ISA simulator"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let cfg = Soc.tcore16 in
      let nl = Lazy.force t16 in
      (* random straight-line program over safe registers, ending with
         stores and halt *)
      let ri n = Random.State.int rng n in
      let instrs =
        List.init 24 (fun _ ->
            match ri 13 with
            | 0 -> Isa.Li (ri 8, ri 256)
            | 1 -> Isa.Addi (ri 8, ri 256)
            | 2 -> Isa.Add (ri 8, ri 8)
            | 3 -> Isa.Sub (ri 8, ri 8)
            | 4 -> Isa.And_ (ri 8, ri 8)
            | 5 -> Isa.Or_ (ri 8, ri 8)
            | 6 -> Isa.Xor_ (ri 8, ri 8)
            | 7 -> Isa.Sll (ri 8, ri 16)
            | 8 -> Isa.Mul (ri 8, ri 8)
            | 9 -> Isa.Mulh (ri 8, ri 8)
            | 10 -> Isa.Div (ri 8, ri 8)
            | 11 -> Isa.Rem (ri 8, ri 8)
            | _ -> Isa.Srl (ri 8, ri 16))
      in
      let items =
        Asm.load_const_fixed 15 (cfg.Soc.ram.Olfu_manip.Memmap.lo + ri 16)
          ~nibbles:(cfg.Soc.xlen / 4)
        @ List.map (fun i -> Asm.I i) instrs
        @ List.concat_map
            (fun r -> [ Asm.I (Isa.Sw (r, 15)); Asm.I (Isa.Addi (15, 1)) ])
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        @ [ Asm.I Isa.Halt ]
      in
      let program = Asm.assemble items in
      let gold = Isa_sim.create ~xlen:cfg.Soc.xlen in
      Isa_sim.load gold ~addr:cfg.Soc.rom.Olfu_manip.Memmap.lo program;
      ignore (Isa_sim.run gold : Isa_sim.outcome);
      let run = Testbench.record cfg nl ~program in
      run.Testbench.halted && Isa_sim.writes gold = run.Testbench.writes)

(* The DfT additions (BIST controller, boundary scan) must be transparent
   in mission mode: a full-DfT core executes programs identically. *)
let test_dft_transparent () =
  let cfg =
    { Soc.tcore16 with Soc.name = "tcore16_dft"; bist = true;
      boundary_scan = true }
  in
  let nl = Soc.generate cfg in
  let s = Stats.of_netlist nl in
  Alcotest.(check bool) "bigger than base" true
    (s.Stats.flops > (Stats.of_netlist (Lazy.force t16)).Stats.flops);
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " present") true (Netlist.find nl p <> None))
    [ "bist_en"; "bist_start"; "bs_mode"; "bs_tdi"; "bist_pass"; "bs_tdo" ];
  let program =
    Asm.assemble
      [
        Asm.I (Isa.Li (1, 9)); Asm.I (Isa.Li (2, 4)); Asm.I (Isa.Mul (1, 2));
        Asm.I (Isa.Li (15, 0x42)); Asm.I (Isa.Sw (1, 15)); Asm.I Isa.Halt;
      ]
  in
  let gold = Isa_sim.create ~xlen:cfg.Soc.xlen in
  Isa_sim.load gold ~addr:0 program;
  ignore (Isa_sim.run gold : Isa_sim.outcome);
  let run = Testbench.record cfg nl ~program in
  Alcotest.(check bool) "halted" true run.Testbench.halted;
  Alcotest.(check (list (pair int int)))
    "writes equal" (Isa_sim.writes gold) run.Testbench.writes

(* The BIST controller actually works pre-mission: enabling it runs a
   campaign to completion. *)
let test_bist_runs_premission () =
  let cfg =
    { Soc.tcore16 with Soc.name = "tcore16_bist"; bist = true }
  in
  let nl = Soc.generate cfg in
  let sim = Olfu_sim.Seq_sim.create ~init:Logic4.X nl in
  let set name v = Olfu_sim.Seq_sim.set_input_name sim name v in
  List.iter (fun n -> set n Logic4.L0) (Soc.debug_control_inputs cfg);
  set "scan_en" Logic4.L0;
  set "scan_in0" Logic4.L0;
  Array.iter
    (fun i -> Olfu_sim.Seq_sim.set_input sim i Logic4.L0)
    (Netlist.inputs nl);
  set "rstn" Logic4.L0;
  Olfu_sim.Seq_sim.step sim;
  set "rstn" Logic4.L1;
  set "bist_en" Logic4.L1;
  set "bist_start" Logic4.L1;
  Olfu_sim.Seq_sim.run sim 300;
  Olfu_sim.Seq_sim.settle sim;
  Alcotest.check (Alcotest.testable Logic4.pp Logic4.equal) "bist done"
    Logic4.L1
    (Olfu_sim.Seq_sim.value_name sim "bist_done")

(* Debug unit actually works pre-mission: halting the core via DE+HALT *)
let test_debug_halt_works () =
  let cfg = Soc.tcore16 in
  let nl = Lazy.force t16 in
  let sim = Olfu_sim.Seq_sim.create ~init:Logic4.X nl in
  let set name v = Olfu_sim.Seq_sim.set_input_name sim name v in
  (* reset, everything quiet *)
  List.iter (fun n -> set n Logic4.L0) (Soc.debug_control_inputs cfg);
  set "scan_en" Logic4.L0;
  set "scan_in0" Logic4.L0;
  Array.iter
    (fun i ->
      match Netlist.name nl i with
      | Some s when String.length s > 4 && String.sub s 0 4 = "bus_" ->
        Olfu_sim.Seq_sim.set_input sim i Logic4.L0
      | _ -> ())
    (Netlist.inputs nl);
  set "rstn" Logic4.L0;
  Olfu_sim.Seq_sim.step sim;
  set "rstn" Logic4.L1;
  (* run two cycles, then assert debug halt: the state must freeze *)
  Olfu_sim.Seq_sim.step sim;
  Olfu_sim.Seq_sim.step sim;
  set "dbg_de" Logic4.L1;
  set "dbg_halt" Logic4.L1;
  Olfu_sim.Seq_sim.settle sim;
  let pc_nets =
    Array.init cfg.Soc.xlen (fun i ->
        Netlist.find_exn nl (Printf.sprintf "pc[%d]" i))
  in
  let pc_before =
    Array.map (fun n -> Olfu_sim.Seq_sim.value sim n) pc_nets
  in
  for _ = 1 to 4 do
    Olfu_sim.Seq_sim.step sim
  done;
  Olfu_sim.Seq_sim.settle sim;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "pc[%d] frozen" i)
        true
        (Logic4.equal pc_before.(i) (Olfu_sim.Seq_sim.value sim n)))
    pc_nets

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "soc"
    [
      ( "rtl",
        [
          Alcotest.test_case "adder" `Quick test_rtl_adder;
          Alcotest.test_case "barrel shifter" `Quick test_rtl_barrel;
          Alcotest.test_case "multiplier" `Quick test_rtl_multiplier;
          Alcotest.test_case "divider" `Quick test_rtl_divider;
          Alcotest.test_case "mux tree + decoder" `Quick
            test_rtl_mux_tree_decoder;
          Alcotest.test_case "eq + sign extend" `Quick test_rtl_eq_and_extend;
          Alcotest.test_case "config pp" `Quick test_config_pp_and_regions;
        ] );
      ( "isa",
        [
          Alcotest.test_case "encode/decode" `Quick test_isa_roundtrip;
          Alcotest.test_case "assembler labels" `Quick test_asm_labels;
          Alcotest.test_case "load_const" `Quick test_asm_load_const;
          Alcotest.test_case "isa sim" `Quick test_isa_sim_basics;
        ] );
      ( "generate",
        [
          Alcotest.test_case "tcore16" `Quick test_generate_tcore16;
          Alcotest.test_case "scan chains" `Quick test_scan_chains_traceable;
        ] );
      ( "execution",
        [
          Alcotest.test_case "basic program" `Quick test_core_executes_basic;
          Alcotest.test_case "sbst suite" `Slow test_core_executes_suite;
          qt prop_core_matches_isa_sim;
          Alcotest.test_case "debug halt" `Quick test_debug_halt_works;
          Alcotest.test_case "dft transparent" `Quick test_dft_transparent;
          Alcotest.test_case "bist campaign" `Quick test_bist_runs_premission;
        ] );
    ]
