open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_atpg
open Olfu_manip
module B = Netlist.Builder

let l4 = Alcotest.testable Logic4.pp Logic4.equal

let test_tie_input () =
  let nl = Test_support.full_adder () in
  let nl' = Tie.input_name nl "cin" Logic4.L0 in
  let t = Ternary.run nl' in
  Alcotest.check l4 "cin tied" Logic4.L0
    (Ternary.const_of t (Netlist.find_exn nl' "cin"));
  (* untied inputs stay free *)
  Alcotest.check l4 "a free" Logic4.X
    (Ternary.const_of t (Netlist.find_exn nl' "a"))

let test_tie_net_keeps_driver () =
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"g" x in
  let h = B.buf b ~name:"h" g in
  let _ = B.output b "o" h in
  let nl = B.freeze_exn b in
  let g = Netlist.find_exn nl "g" in
  let nl' = Tie.net nl g Logic4.L1 in
  let g' = Netlist.find_exn nl' "g" in
  (* driver still present but fanout now reads the tie *)
  Alcotest.(check bool) "driver kept" true
    (Cell.equal_kind (Netlist.kind nl' g') Cell.Not);
  Alcotest.(check int) "no fanout left" 0 (Array.length (Netlist.fanout nl' g'));
  let t = Ternary.run nl' in
  Alcotest.check l4 "h const" Logic4.L1
    (Ternary.const_of t (Netlist.find_exn nl' "h"))

let test_tie_pin () =
  let nl = Test_support.full_adder () in
  let cout = Netlist.find_exn nl "cout_net" in
  let nl' = Tie.pin nl ~node:cout ~pin:0 Logic4.L0 in
  (* cout = 0 | c2 = c2 now *)
  Alcotest.(check bool) "tie inserted" true
    (Cell.is_tie (Netlist.kind nl' (Netlist.fanin nl' cout).(0)))

let test_float_outputs () =
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"g" x in
  let _ = B.output b ~roles:[ Netlist.Debug_observe ] "DBG" g in
  let _ = B.output b "F" g in
  let nl = B.freeze_exn b in
  let nl' = Float_out.debug_observation nl in
  Alcotest.(check int) "one output left" 1 (Array.length (Netlist.outputs nl'));
  let nl'' = Float_out.outputs_by_name nl [ "F"; "DBG" ] in
  Alcotest.(check int) "all floated" 0 (Array.length (Netlist.outputs nl''));
  (try
     ignore (Float_out.outputs_by_name nl [ "x" ] : Netlist.t);
     Alcotest.fail "expected error"
   with Invalid_argument _ -> ())

(* Build a 3-cell scan chain with buffers between the cells. *)
let chain_netlist () =
  let b = B.create () in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let d0 = B.input b "d0" in
  let d1 = B.input b "d1" in
  let d2 = B.input b "d2" in
  let f0 = B.sdff b ~name:"f0" ~d:d0 ~si ~se in
  let b0 = B.buf b ~name:"sb0" f0 in
  let f1 = B.sdff b ~name:"f1" ~d:d1 ~si:b0 ~se in
  let b1 = B.not_ b ~name:"sb1" f1 in
  let f2 = B.sdff b ~name:"f2" ~d:d2 ~si:b1 ~se in
  let _ = B.output b "q0" f0 in
  let _ = B.output b "q1" f1 in
  let _ = B.output b "q2" f2 in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "so" f2 in
  B.freeze_exn b

let test_scan_trace () =
  let nl = chain_netlist () in
  match Scan_trace.trace nl with
  | [ c ] ->
    Alcotest.(check int) "3 cells" 3 (List.length c.Scan_trace.cells);
    Alcotest.(check bool) "found scan out" true (c.Scan_trace.scan_out <> None);
    let names =
      List.map (fun i -> Option.get (Netlist.name nl i)) c.Scan_trace.cells
    in
    Alcotest.(check (list string)) "order" [ "f0"; "f1"; "f2" ] names
  | l -> Alcotest.failf "expected 1 chain, got %d" (List.length l)

let test_scan_only_nodes () =
  let nl = chain_netlist () in
  let only = Scan_trace.scan_only_nodes nl in
  let names =
    List.filter_map (fun i -> Netlist.name nl i) only |> List.sort compare
  in
  (* scan-in port and the two path buffers; flop outputs also feed
     functional outputs so they are not scan-only *)
  Alcotest.(check (list string)) "dedicated path" [ "sb0"; "sb1"; "si" ] names

let test_scan_prune_counts () =
  let nl = chain_netlist () in
  let fl = Flist.full nl in
  let pruned = Scan_trace.prune nl fl in
  (* per flop: SI s@0, SI s@1, SE s@0 = 9; scan-out marker: 2;
     si port (1 pin), sb0 buf (2 pins), sb1 inv (2 pins): 10 *)
  Alcotest.(check int) "pruned faults" 21 pruned;
  (* pruning is idempotent *)
  Alcotest.(check int) "idempotent" 0 (Scan_trace.prune nl fl)

let test_scan_rule_agrees_with_engine () =
  (* Everything the scan rule prunes must be confirmed untestable by the
     structural engine once the mission configuration is applied: SE tied
     to 0 and the scan-out port disconnected. *)
  let nl = chain_netlist () in
  let nl' =
    Script.apply nl
      [ Script.Tie_input ("se", Logic4.L0); Script.Float_output "so" ]
  in
  let t = Untestable.analyze nl' in
  List.iter
    (fun f ->
      (* skip faults on the se input itself (now a tie, excluded) *)
      let { Fault.node; pin } = f.Fault.site in
      let on_se_branch =
        match pin with
        | Cell.Pin.In 2 -> Cell.equal_kind (Netlist.kind nl' node) Cell.Sdff
        | _ -> false
      in
      if not on_se_branch then
        match Untestable.fault_verdict t f with
        | Some _ -> ()
        | None ->
          Alcotest.failf "engine disagrees on %s" (Fault.to_string nl' f))
    (Scan_trace.untestable_faults nl');
  (* and SE s@1 must remain testable per the paper *)
  let f1 = Netlist.find_exn nl' "f1" in
  Alcotest.(check bool) "SE s@1 kept" true
    (Untestable.fault_verdict t (Fault.sa1 f1 (Cell.Pin.In 2)) = None)

let test_memmap_paper_case () =
  let regions = Memmap.paper_case_study () in
  let free = Memmap.free_bits ~width:32 regions in
  (* bits 0..17 are free via the RAM span and flash; bit 30 via the RAM
     base; bit 18 differs between flash (1) and RAM (0) so it is free too
     (the paper's own text says "18 LSBs + bit 30", see EXPERIMENTS.md) *)
  List.iter
    (fun b ->
      Alcotest.(check bool) (Printf.sprintf "bit %d free" b) true
        (List.mem b free))
    [ 0; 5; 14; 15; 16; 17; 18; 30 ];
  List.iter
    (fun b ->
      Alcotest.(check bool) (Printf.sprintf "bit %d constant" b) false
        (List.mem b free))
    [ 19; 20; 25; 29; 31 ];
  let consts = Memmap.constant_bits ~width:32 regions in
  Alcotest.(check bool) "bit 31 forced 0" true (List.mem (31, false) consts);
  Alcotest.(check bool) "bit 19 forced 0" true (List.mem (19, false) consts)

let test_memmap_brute_force () =
  (* compare against explicit enumeration on small ranges *)
  let regions =
    [ Memmap.region ~name:"r1" ~lo:5 ~hi:9 (); Memmap.region ~name:"r2" ~lo:64 ~hi:64 () ]
  in
  let width = 8 in
  let brute_can bit v =
    let addrs = [ 5; 6; 7; 8; 9; 64 ] in
    List.exists (fun a -> (a lsr bit) land 1 = Bool.to_int v) addrs
  in
  for bit = 0 to width - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "bit %d can be 1" bit)
      (brute_can bit true)
      (Memmap.bit_can_be regions ~bit ~value:true);
    Alcotest.(check bool)
      (Printf.sprintf "bit %d can be 0" bit)
      (brute_can bit false)
      (Memmap.bit_can_be regions ~bit ~value:false)
  done

let prop_memmap_matches_enumeration =
  QCheck2.Test.make ~count:100 ~name:"memmap = brute force"
    QCheck2.Gen.(
      triple (int_bound 255) (int_bound 255) (int_bound 7))
    (fun (a, b, bit) ->
      let lo = min a b and hi = max a b in
      let r = [ Memmap.region ~lo ~hi () ] in
      let brute v =
        let rec go x = x <= hi && (((x lsr bit) land 1 = Bool.to_int v) || go (x + 1)) in
        go lo
      in
      Memmap.bit_can_be r ~bit ~value:true = brute true
      && Memmap.bit_can_be r ~bit ~value:false = brute false)

let test_const_regs () =
  let nl, ff = Test_support.constant_dffr () in
  match Const_regs.constant_flops nl with
  | [ (i, v) ] ->
    Alcotest.(check int) "the flop" ff i;
    Alcotest.check l4 "constant 0" Logic4.L0 v
  | l -> Alcotest.failf "expected 1 constant flop, got %d" (List.length l)

let test_tie_address_registers () =
  let b = B.create () in
  let d0 = B.input b "d0" in
  let d1 = B.input b "d1" in
  let a0 = B.dff b ~name:"addr0" ~roles:[ Netlist.Address_reg 0 ] ~d:d0 in
  let a1 = B.dff b ~name:"addr1" ~roles:[ Netlist.Address_reg 1 ] ~d:d1 in
  let s = B.xor2 b ~name:"s" a0 a1 in
  let _ = B.output b "o" s in
  let nl = B.freeze_exn b in
  let forced bit = if bit = 1 then Some Logic4.L0 else None in
  let nl' = Const_regs.tie_address_registers nl ~forced in
  let t = Ternary.run nl' in
  (* addr1 output fanout reads 0; addr0 stays free *)
  Alcotest.check l4 "s follows addr0 when addr1 tied" Logic4.X
    (Ternary.const_of t (Netlist.find_exn nl' "s"));
  let a1' = Netlist.find_exn nl' "addr1" in
  Alcotest.(check int) "addr1 fanout rerouted" 0
    (Array.length (Netlist.fanout nl' a1'));
  (* D pin of addr1 is tied *)
  Alcotest.(check bool) "addr1 D tied" true
    (Cell.is_tie (Netlist.kind nl' (Netlist.fanin nl' a1').(0)))

let test_memmap_validation () =
  (try
     ignore (Memmap.region ~lo:5 ~hi:1 () : Memmap.region);
     Alcotest.fail "expected error"
   with Invalid_argument _ -> ());
  (try
     ignore (Memmap.free_bits ~width:8 [] : int list);
     Alcotest.fail "expected empty-region error"
   with Invalid_argument _ -> ())

let test_tie_input_not_input () =
  let nl = Test_support.full_adder () in
  let g = Netlist.find_exn nl "sum_net" in
  try
    ignore (Tie.input nl g Logic4.L0 : Netlist.t);
    Alcotest.fail "expected error"
  with Invalid_argument _ -> ()

let test_trace_no_chains () =
  let nl = Test_support.full_adder () in
  Alcotest.(check int) "no chains" 0 (List.length (Scan_trace.trace nl));
  Alcotest.(check int) "no scan-only" 0
    (List.length (Scan_trace.scan_only_nodes nl))

let test_script_unknown_name () =
  let nl = Test_support.full_adder () in
  try
    ignore (Script.apply nl [ Script.Tie_input ("nope", Logic4.L0) ] : Netlist.t);
    Alcotest.fail "expected error"
  with Invalid_argument _ -> ()

let test_sweep () =
  let b = B.create () in
  let x = B.input b "x" in
  let live = B.not_ b ~name:"live" x in
  let dead1 = B.and2 b ~name:"dead1" x live in
  let _dead2 = B.buf b ~name:"dead2" dead1 in
  let deadff = B.dff b ~name:"deadff" ~d:dead1 in
  ignore deadff;
  let _ = B.output b "o" live in
  let nl = B.freeze_exn b in
  let dead = Sweep.dead_nodes nl in
  Alcotest.(check int) "three dead" 3 (List.length dead);
  let swept, removed = Sweep.sweep nl in
  Alcotest.(check int) "removed" 3 removed;
  Alcotest.(check bool) "live kept" true (Netlist.find swept "live" <> None);
  Alcotest.(check bool) "dead gone" true (Netlist.find swept "dead1" = None);
  (* inputs survive even if dangling *)
  Alcotest.(check int) "input kept" 1 (Array.length (Netlist.inputs swept))

let test_sweep_keeps_everything_when_alive () =
  let nl = Test_support.full_adder () in
  let swept, removed = Sweep.sweep nl in
  Alcotest.(check int) "nothing dead" 0 removed;
  Alcotest.(check int) "same size" (Netlist.length nl) (Netlist.length swept)

(* These two cases exercised the deprecated [Dft_lint] shim; with the
   shim deleted they drive [Olfu_lint] directly, pinning the same
   historical codes and severities. *)
let test_dft_lint_clean_soc () =
  let nl = Olfu_soc.Soc.generate Olfu_soc.Soc.tcore16 in
  let findings = Olfu_lint.Lint.findings nl in
  (* the generated SoC is fully scanned with one SE and a reset: no errors *)
  Alcotest.(check int) "no errors" 0
    (List.length (Olfu_lint.Lint.errors findings));
  let has code =
    List.exists (fun (f : Olfu_lint.Rule.finding) -> f.Olfu_lint.Rule.code = code)
      findings
  in
  Alcotest.(check bool) "reports steady constants" true (has "NET-002");
  Alcotest.(check bool) "reports scoap hotspots" true (has "TEST-001");
  Alcotest.(check bool) "no unscanned flops" false (has "SCAN-001")

let test_dft_lint_findings () =
  let b = B.create () in
  let d = B.input b "d" in
  (* unscanned, unreset flop; a floating net; a dead cone *)
  let ff = B.dff b ~name:"ff" ~d in
  let z = B.tie b Logic4.X in
  let g = B.and2 b ~name:"g" ff z in
  let _dead = B.not_ b ~name:"deadgate" g in
  let _ = B.output b "o" g in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  ignore si;
  let nl = B.freeze_exn b in
  let outcome = Olfu_lint.Lint.run nl in
  let findings = outcome.Olfu_lint.Lint.findings in
  let codes =
    List.map (fun (f : Olfu_lint.Rule.finding) -> f.Olfu_lint.Rule.code)
      findings
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " reported") true (List.mem c codes))
    [ "SCAN-001"; "SCAN-002"; "RST-001"; "RST-002"; "NET-001"; "OBS-001" ];
  Alcotest.(check bool) "scan-002 is an error" true
    (List.length (Olfu_lint.Lint.errors findings) >= 1);
  (* report prints *)
  let s = Format.asprintf "%a" Olfu_lint.Render.text outcome in
  Alcotest.(check bool) "report text" true (String.length s > 50)

let test_script () =
  let nl = chain_netlist () in
  let script =
    [
      Script.Tie_input ("se", Logic4.L0);
      Script.Float_output "so";
      Script.Tie_flop ("f2", Logic4.L0);
    ]
  in
  let nl' = Script.apply nl script in
  Alcotest.(check int) "outputs reduced" 3 (Array.length (Netlist.outputs nl'));
  let t = Ternary.run nl' in
  Alcotest.check l4 "q2 reads tied flop" Logic4.L0
    (Ternary.const_of t
       (Netlist.fanin nl' (Netlist.find_exn nl' "q2")).(0));
  (* printable *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let s = Format.asprintf "%a" Script.pp script in
  Alcotest.(check bool) "pp mentions float" true (contains s "float-output so")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "manip"
    [
      ( "tie",
        [
          Alcotest.test_case "input" `Quick test_tie_input;
          Alcotest.test_case "net keeps driver" `Quick test_tie_net_keeps_driver;
          Alcotest.test_case "pin" `Quick test_tie_pin;
        ] );
      ( "float",
        [ Alcotest.test_case "outputs" `Quick test_float_outputs ] );
      ( "scan",
        [
          Alcotest.test_case "trace" `Quick test_scan_trace;
          Alcotest.test_case "scan-only nodes" `Quick test_scan_only_nodes;
          Alcotest.test_case "prune counts" `Quick test_scan_prune_counts;
          Alcotest.test_case "agrees with engine" `Quick
            test_scan_rule_agrees_with_engine;
        ] );
      ( "memmap",
        [
          Alcotest.test_case "paper case" `Quick test_memmap_paper_case;
          Alcotest.test_case "brute force" `Quick test_memmap_brute_force;
          qt prop_memmap_matches_enumeration;
        ] );
      ( "const regs",
        [
          Alcotest.test_case "detect" `Quick test_const_regs;
          Alcotest.test_case "tie address regs" `Quick test_tie_address_registers;
        ] );
      ( "validation",
        [
          Alcotest.test_case "memmap regions" `Quick test_memmap_validation;
          Alcotest.test_case "tie non-input" `Quick test_tie_input_not_input;
          Alcotest.test_case "no chains" `Quick test_trace_no_chains;
          Alcotest.test_case "script unknown name" `Quick
            test_script_unknown_name;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean soc" `Quick test_dft_lint_clean_soc;
          Alcotest.test_case "findings" `Quick test_dft_lint_findings;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "dead logic" `Quick test_sweep;
          Alcotest.test_case "alive untouched" `Quick
            test_sweep_keeps_everything_when_alive;
        ] );
      ("script", [ Alcotest.test_case "apply + pp" `Quick test_script ]);
    ]
