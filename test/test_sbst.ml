open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_soc
open Olfu_sbst

let cfg = Soc.tcore16
let t16 = lazy (Soc.generate cfg)

(* --- assembler --- *)

let test_asm_forward_branch () =
  let prog =
    [
      Asm.I (Isa.Li (1, 1)); Asm.Beqz (2, "end"); Asm.I (Isa.Li (1, 2));
      Asm.L "end"; Asm.I Isa.Halt;
    ]
  in
  let sim = Isa_sim.create ~xlen:16 in
  Isa_sim.load sim ~addr:0 (Asm.assemble prog);
  ignore (Isa_sim.run sim : Isa_sim.outcome);
  (* r2 = 0, so the branch is taken and li r1,2 is skipped *)
  Alcotest.(check int) "r1" 1 (Isa_sim.reg sim 1)

let test_asm_unknown_label () =
  try
    ignore (Asm.assemble [ Asm.Bnez (1, "nowhere"); Asm.I Isa.Halt ] : int array);
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let test_asm_duplicate_label () =
  try
    ignore (Asm.assemble [ Asm.L "a"; Asm.L "a"; Asm.I Isa.Halt ] : int array);
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let test_asm_branch_range () =
  let far = List.init 200 (fun _ -> Asm.I Isa.Nop) in
  try
    ignore
      (Asm.assemble ((Asm.Bnez (1, "end") :: far) @ [ Asm.L "end"; Asm.I Isa.Halt ])
        : int array);
    Alcotest.fail "expected range failure"
  with Invalid_argument _ -> ()

let test_load_const_fixed_stable_length () =
  let l1 = List.length (Asm.load_const_fixed 3 0 ~nibbles:4) in
  let l2 = List.length (Asm.load_const_fixed 3 0xFFFF ~nibbles:4) in
  Alcotest.(check int) "same length" l1 l2;
  (try
     ignore (Asm.load_const_fixed 3 0x1FFFF ~nibbles:4 : Asm.item list);
     Alcotest.fail "expected overflow failure"
   with Invalid_argument _ -> ())

let test_label_addresses () =
  let prog = [ Asm.I Isa.Nop; Asm.L "x"; Asm.I Isa.Halt; Asm.L "y" ] in
  Alcotest.(check (list (pair string int)))
    "addresses" [ ("x", 1); ("y", 2) ] (Asm.label_addresses prog)

let test_asm_parse_roundtrip () =
  let src =
    {|
; countdown demo
start:
    li   r1, 0x05
    li   r15, 0x40   # signature pointer
loop:
    sw   r1, [r15]
    addi r15, 1
    addi r1, -1
    bnez r1, loop
    beqz r1, done
    nop
done:
    mul  r2, r1
    div  r2, r1
    lw   r3, [r15]
    li   r4, 14      ; address of the final halt
    jr   r4
    nop              ; skipped by the jump
    halt
|}
  in
  let items = Asm.parse src in
  let words = Asm.assemble items in
  Alcotest.(check int) "15 instructions" 15 (Array.length words);
  (* the printer round-trips through the parser *)
  let printed = Format.asprintf "%a" Asm.pp_items items in
  let again = Asm.assemble (Asm.parse printed) in
  Alcotest.(check bool) "print/parse stable" true (words = again);
  (* and the program behaves: counts 5 signatures *)
  let sim = Isa_sim.create ~xlen:16 in
  Isa_sim.load sim ~addr:0 words;
  ignore (Isa_sim.run ~max_steps:500 sim : Isa_sim.outcome);
  Alcotest.(check int) "five stores + one load path" 5
    (List.length (Isa_sim.writes sim))

let test_asm_parse_errors () =
  let expect src =
    match Asm.parse src with
    | exception Asm.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for " ^ src)
  in
  expect "frob r1, r2";
  expect "li r99, 4";
  expect "add r1";
  expect "lw r1, r2";
  expect "li r1, banana"

(* --- ISA simulator semantics --- *)

let run_prog ?(xlen = 16) items =
  let sim = Isa_sim.create ~xlen in
  Isa_sim.load sim ~addr:0 (Asm.assemble items);
  ignore (Isa_sim.run sim : Isa_sim.outcome);
  sim

let test_isa_sim_wraparound () =
  let sim =
    run_prog
      [ Asm.I (Isa.Li (1, 0xFF)); Asm.I (Isa.Sll (1, 8)); Asm.I (Isa.Addi (1, 0x7F));
        Asm.I (Isa.Addi (1, 0x7F)); Asm.I (Isa.Addi (1, 2)); Asm.I Isa.Halt ]
  in
  (* 0xFF00 + 127 + 127 + 2 = 0x0000 (mod 2^16) *)
  Alcotest.(check int) "wraps" 0 (Isa_sim.reg sim 1)

let test_isa_sim_divmod_matches_ocaml () =
  List.iter
    (fun (a, b) ->
      let sim =
        run_prog
          [ Asm.I (Isa.Li (1, a)); Asm.I (Isa.Li (2, b)); Asm.I (Isa.Li (3, 0));
            Asm.I (Isa.Add (3, 1)); Asm.I (Isa.Div (3, 2)); Asm.I (Isa.Li (4, 0));
            Asm.I (Isa.Add (4, 1)); Asm.I (Isa.Rem (4, 2)); Asm.I Isa.Halt ]
      in
      Alcotest.(check int) (Printf.sprintf "%d/%d" a b) (a / b) (Isa_sim.reg sim 3);
      Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b)
        (Isa_sim.reg sim 4))
    [ (200, 7); (255, 255); (1, 2); (99, 10) ]

let test_isa_sim_mul_width () =
  let sim =
    run_prog
      [ Asm.I (Isa.Li (1, 0xFF)); Asm.I (Isa.Sll (1, 8)); Asm.I (Isa.Addi (1, 0x7F));
        (* r1 = 0xFF7F *)
        Asm.I (Isa.Li (2, 0xFF)); Asm.I (Isa.Li (3, 0)); Asm.I (Isa.Add (3, 1));
        Asm.I (Isa.Mul (3, 2)); Asm.I (Isa.Li (4, 0)); Asm.I (Isa.Add (4, 1));
        Asm.I (Isa.Mulh (4, 2)); Asm.I Isa.Halt ]
  in
  let p = 0xFF7F * 0xFF in
  Alcotest.(check int) "low" (p land 0xFFFF) (Isa_sim.reg sim 3);
  Alcotest.(check int) "high" (p lsr 16) (Isa_sim.reg sim 4)

(* --- programs --- *)

let test_programs_assemble_and_halt () =
  List.iter
    (fun p ->
      let words = Programs.assemble p in
      Alcotest.(check bool)
        (p.Programs.pname ^ " nonempty")
        true
        (Array.length words > 4);
      let sim = Isa_sim.create ~xlen:cfg.Soc.xlen in
      Isa_sim.load sim ~addr:cfg.Soc.rom.Olfu_manip.Memmap.lo words;
      let out = Isa_sim.run ~max_steps:50_000 sim in
      Alcotest.(check bool) (p.Programs.pname ^ " halts") true out.Isa_sim.halted;
      Alcotest.(check bool)
        (p.Programs.pname ^ " does work")
        true
        (out.Isa_sim.steps > 10);
      Alcotest.(check bool)
        (p.Programs.pname ^ " writes signatures")
        true
        (List.length (Isa_sim.writes sim) > 2);
      (* signatures land in RAM *)
      List.iter
        (fun (a, _) ->
          Alcotest.(check bool) "write in ram" true
            (a >= cfg.Soc.ram.Olfu_manip.Memmap.lo
            && a <= cfg.Soc.ram.Olfu_manip.Memmap.hi))
        (Isa_sim.writes sim))
    (Programs.suite cfg)

(* --- testbench --- *)

let test_testbench_records_and_replays () =
  let nl = Lazy.force t16 in
  let p = Programs.register_march cfg in
  let run = Testbench.record cfg nl ~program:(Programs.assemble p) in
  Alcotest.(check bool) "halted" true run.Testbench.halted;
  Alcotest.(check bool) "strobes exist" true
    (Array.exists (fun s -> s.Olfu_fsim.Seq_fsim.strobe) run.Testbench.stimulus);
  Alcotest.(check bool) "replay ok" true (Testbench.replay_matches cfg nl run)

let test_testbench_observed_set () =
  let nl = Lazy.force t16 in
  let by_name s = Netlist.find_exn nl s in
  Alcotest.(check bool) "bus_wr observed" true
    (Testbench.observed_outputs nl (by_name "bus_wr"));
  Alcotest.(check bool) "misr observed" true
    (Testbench.observed_outputs nl (by_name "misr_out[0]"));
  Alcotest.(check bool) "gpr_obs not observed" false
    (Testbench.observed_outputs nl (by_name "gpr_obs[0]"));
  Alcotest.(check bool) "scan_out not observed" false
    (Testbench.observed_outputs nl (by_name "scan_out0"))

let test_testbench_data_preload () =
  (* LW from a preloaded RAM location, store it back doubled *)
  let nl = Lazy.force t16 in
  let base = cfg.Soc.ram.Olfu_manip.Memmap.lo in
  let items =
    Asm.load_const_fixed 10 (base + 0x20) ~nibbles:4
    @ Asm.load_const_fixed 15 base ~nibbles:4
    @ [ Asm.I (Isa.Lw (1, 10)); Asm.I (Isa.Add (1, 1)); Asm.I (Isa.Sw (1, 15));
        Asm.I Isa.Halt ]
  in
  let run =
    Testbench.record cfg nl
      ~program:(Asm.assemble items)
      ~data:[ (base + 0x20, 21) ]
  in
  Alcotest.(check (list (pair int int))) "write doubles preload" [ (base, 42) ]
    run.Testbench.writes

(* --- coverage machinery --- *)

let test_coverage_detects_and_prunes () =
  let nl = Lazy.force t16 in
  (* tiny deterministic sample: first 150 faults *)
  let u = Fault.universe nl in
  let fl = Flist.create nl (Array.sub u 0 150) in
  (* classify scan faults first so pruning has an effect *)
  ignore (Olfu_manip.Scan_trace.prune nl fl : int);
  let summary =
    Coverage.grade cfg nl fl [ Programs.register_march cfg ]
  in
  Alcotest.(check bool) "detected some" true (summary.Coverage.detected > 0);
  Alcotest.(check bool) "pruned >= raw" true
    (summary.Coverage.pruned_coverage >= summary.Coverage.raw_coverage);
  Alcotest.(check int) "one program" 1 (List.length summary.Coverage.programs)

let test_detected_faults_stay_detected () =
  (* grading twice cannot lower the detected count *)
  let nl = Lazy.force t16 in
  let u = Fault.universe nl in
  let fl = Flist.create nl (Array.sub u 200 100) in
  let s1 = Coverage.grade cfg nl fl [ Programs.alu_patterns cfg ] in
  let d1 = Flist.count_status fl Status.Detected in
  let _s2 = Coverage.grade cfg nl fl [ Programs.alu_patterns cfg ] in
  let d2 = Flist.count_status fl Status.Detected in
  ignore s1;
  Alcotest.(check int) "stable" d1 d2

(* a gate-level/golden cross-check on the MISR: replaying the same
   stimulus twice gives identical signatures (determinism) *)
let test_misr_deterministic () =
  let nl = Lazy.force t16 in
  let p = Programs.alu_patterns cfg in
  let run = Testbench.record cfg nl ~program:(Programs.assemble p) in
  let misr_of () =
    let sim = Olfu_sim.Seq_sim.create ~init:Logic4.X nl in
    Array.iter
      (fun step ->
        List.iter
          (fun (i, v) -> Olfu_sim.Seq_sim.set_input sim i v)
          step.Olfu_fsim.Seq_fsim.assign;
        Olfu_sim.Seq_sim.step sim)
      run.Testbench.stimulus;
    Olfu_sim.Seq_sim.settle sim;
    Array.init cfg.Soc.xlen (fun i ->
        Olfu_sim.Seq_sim.value_name sim (Printf.sprintf "misr/r[%d]" i))
  in
  let a = misr_of () and b = misr_of () in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) (Printf.sprintf "misr bit %d" i) true
        (Logic4.equal v b.(i));
      Alcotest.(check bool) "binary" true (Logic4.is_binary v))
    a

let () =
  Alcotest.run "sbst"
    [
      ( "asm",
        [
          Alcotest.test_case "forward branch" `Quick test_asm_forward_branch;
          Alcotest.test_case "unknown label" `Quick test_asm_unknown_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "branch range" `Quick test_asm_branch_range;
          Alcotest.test_case "fixed-length const" `Quick
            test_load_const_fixed_stable_length;
          Alcotest.test_case "label addresses" `Quick test_label_addresses;
          Alcotest.test_case "parse roundtrip" `Quick test_asm_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_asm_parse_errors;
        ] );
      ( "isa-sim",
        [
          Alcotest.test_case "wraparound" `Quick test_isa_sim_wraparound;
          Alcotest.test_case "div/mod" `Quick test_isa_sim_divmod_matches_ocaml;
          Alcotest.test_case "mul width" `Quick test_isa_sim_mul_width;
        ] );
      ( "programs",
        [ Alcotest.test_case "assemble and halt" `Quick test_programs_assemble_and_halt ] );
      ( "testbench",
        [
          Alcotest.test_case "record/replay" `Quick test_testbench_records_and_replays;
          Alcotest.test_case "observed set" `Quick test_testbench_observed_set;
          Alcotest.test_case "data preload" `Quick test_testbench_data_preload;
          Alcotest.test_case "misr deterministic" `Quick test_misr_deterministic;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "detects and prunes" `Slow test_coverage_detects_and_prunes;
          Alcotest.test_case "grading idempotent" `Slow
            test_detected_faults_stay_detected;
        ] );
    ]
