open Olfu_logic

let l4 : Logic4.t Alcotest.testable =
  Alcotest.testable Logic4.pp Logic4.equal

let all4 = [ Logic4.L0; Logic4.L1; Logic4.X; Logic4.Z ]

let arb_l4 =
  QCheck2.Gen.oneofl all4

let test_char_roundtrip () =
  List.iter
    (fun v ->
      match Logic4.of_char (Logic4.to_char v) with
      | Some v' ->
        (* Z survives the round-trip; gate logic reads it as X. *)
        Alcotest.check l4 "roundtrip" v v'
      | None -> Alcotest.fail "of_char failed")
    all4

let test_basic_tables () =
  let open Logic4 in
  Alcotest.check l4 "0&1" L0 (and2 L0 L1);
  Alcotest.check l4 "0&x" L0 (and2 L0 X);
  Alcotest.check l4 "1&x" X (and2 L1 X);
  Alcotest.check l4 "1|x" L1 (or2 L1 X);
  Alcotest.check l4 "0|x" X (or2 L0 X);
  Alcotest.check l4 "~x" X (not_ X);
  Alcotest.check l4 "z&1" X (and2 Z L1);
  Alcotest.check l4 "x^1" X (xor2 X L1);
  Alcotest.check l4 "1^1" L0 (xor2 L1 L1)

let test_mux () =
  let open Logic4 in
  Alcotest.check l4 "sel0" L1 (mux ~sel:L0 ~a:L1 ~b:L0);
  Alcotest.check l4 "sel1" L0 (mux ~sel:L1 ~a:L1 ~b:L0);
  Alcotest.check l4 "selx same" L1 (mux ~sel:X ~a:L1 ~b:L1);
  Alcotest.check l4 "selx diff" X (mux ~sel:X ~a:L1 ~b:L0)

(* Pessimism: every operator must agree with Boolean logic on binary
   inputs, and never produce a binary value that some completion of the X
   inputs contradicts. *)
let completions = function
  | Logic4.X | Logic4.Z -> [ Logic4.L0; Logic4.L1 ]
  | v -> [ v ]

let prop_sound_binop name op bool_op =
  QCheck2.Test.make ~count:200
    ~name
    QCheck2.Gen.(pair arb_l4 arb_l4)
    (fun (a, b) ->
      let r = op a b in
      match Logic4.to_bool r with
      | None -> true
      | Some rb ->
        List.for_all
          (fun ca ->
            List.for_all
              (fun cb ->
                match Logic4.to_bool ca, Logic4.to_bool cb with
                | Some ba, Some bb -> Bool.equal (bool_op ba bb) rb
                | _ -> true)
              (completions b))
          (completions a))

let prop_demorgan =
  QCheck2.Test.make ~count:200 ~name:"demorgan"
    QCheck2.Gen.(pair arb_l4 arb_l4)
    (fun (a, b) ->
      Logic4.equal (Logic4.nand2 a b) (Logic4.or2 (Logic4.not_ a) (Logic4.not_ b)))

(* Logic5 componentwise consistency. *)
let all5 = [ Logic5.Zero; Logic5.One; Logic5.D; Logic5.Dbar; Logic5.X ]

(* The 5-valued calculus may widen a rail to X (e.g. D & X = X even though
   the faulty rail would be 0 componentwise), but it must never report a
   wrong binary rail, and must be exact when both operands are known. *)
let prop_logic5_consistent =
  let rail_ok got expect =
    (not (Logic4.is_binary got)) || Logic4.equal got expect
  in
  QCheck2.Test.make ~count:200 ~name:"logic5 good/faulty rails"
    QCheck2.Gen.(pair (oneofl all5) (oneofl all5))
    (fun (a, b) ->
      let r = Logic5.and2 a b in
      let eg = Logic4.and2 (Logic5.good a) (Logic5.good b)
      and ef = Logic4.and2 (Logic5.faulty a) (Logic5.faulty b) in
      rail_ok (Logic5.good r) eg
      && rail_ok (Logic5.faulty r) ef
      && ((Logic5.equal a Logic5.X || Logic5.equal b Logic5.X)
         || (Logic4.equal (Logic5.good r) eg
            && Logic4.equal (Logic5.faulty r) ef)))

let test_logic5_tables () =
  let open Logic5 in
  Alcotest.(check bool) "D & 1 = D" true (equal (and2 D One) D);
  Alcotest.(check bool) "D & 0 = 0" true (equal (and2 D Zero) Zero);
  Alcotest.(check bool) "D & D' = 0" true (equal (and2 D Dbar) Zero);
  Alcotest.(check bool) "D | D' = 1" true (equal (or2 D Dbar) One);
  Alcotest.(check bool) "~D = D'" true (equal (not_ D) Dbar);
  Alcotest.(check bool) "D ^ D = 0" true (equal (xor2 D D) Zero);
  Alcotest.(check bool) "D ^ D' = 1" true (equal (xor2 D Dbar) One)

(* Dualrail must agree lane-by-lane with the scalar algebra. *)
let arb_dr =
  QCheck2.Gen.(
    map2 (fun hi lo -> Dualrail.make ~hi ~lo)
      (map Int64.of_int int) (map Int64.of_int int))

let prop_dualrail_matches op_dr op_sc name =
  QCheck2.Test.make ~count:100 ~name
    QCheck2.Gen.(pair arb_dr arb_dr)
    (fun (a, b) ->
      let r = op_dr a b in
      let ok = ref true in
      for i = 0 to Dualrail.width - 1 do
        let expect = op_sc (Dualrail.get a i) (Dualrail.get b i) in
        (* Z never appears in dualrail; compare through the X reading. *)
        let expect = if Logic4.equal expect Logic4.Z then Logic4.X else expect in
        if not (Logic4.equal (Dualrail.get r i) expect) then ok := false
      done;
      !ok)

let prop_dualrail_mux =
  QCheck2.Test.make ~count:100 ~name:"dualrail mux lanes"
    QCheck2.Gen.(triple arb_dr arb_dr arb_dr)
    (fun (s, a, b) ->
      let r = Dualrail.mux ~sel:s ~a ~b in
      let ok = ref true in
      for i = 0 to Dualrail.width - 1 do
        let expect =
          Logic4.mux ~sel:(Dualrail.get s i) ~a:(Dualrail.get a i)
            ~b:(Dualrail.get b i)
        in
        if not (Logic4.equal (Dualrail.get r i) expect) then ok := false
      done;
      !ok)

let test_list_folds () =
  let open Logic4 in
  Alcotest.check l4 "and_list empty" L1 (and_list []);
  Alcotest.check l4 "or_list empty" L0 (or_list []);
  Alcotest.check l4 "xor_list odd" L1 (xor_list [ L1; L0; L1; L1 ]);
  Alcotest.check l4 "and_list dominates" L0 (and_list [ L1; X; L0 ]);
  Alcotest.check l4 "or_list dominates" L1 (or_list [ X; L1; Z ]);
  Alcotest.check l4 "xor_list x poisons" X (xor_list [ L1; X ])

let test_dualrail_setget () =
  let v = Dualrail.const Logic4.X in
  let v = Dualrail.set v 3 Logic4.L1 in
  let v = Dualrail.set v 7 Logic4.L0 in
  Alcotest.check l4 "lane3" Logic4.L1 (Dualrail.get v 3);
  Alcotest.check l4 "lane7" Logic4.L0 (Dualrail.get v 7);
  Alcotest.check l4 "lane0" Logic4.X (Dualrail.get v 0)

let test_diff_mask () =
  let a = Dualrail.of_lanes [| Logic4.L0; Logic4.L1; Logic4.X; Logic4.L1 |] in
  let b = Dualrail.of_lanes [| Logic4.L1; Logic4.L1; Logic4.L0; Logic4.X |] in
  Alcotest.(check int64) "diff lanes" 1L (Dualrail.diff_mask a b)

let test_merge_laws () =
  let open Logic4 in
  (* merge reads Z as X (no-information), then joins *)
  List.iter
    (fun v ->
      let stripped = if equal v Z then X else v in
      Alcotest.check l4 "merge X v" stripped (merge X v);
      Alcotest.check l4 "merge v v" stripped (merge v v))
    all4;
  Alcotest.check l4 "conflict" X (merge L0 L1)

let test_logic5_mux_table () =
  let open Logic5 in
  Alcotest.(check bool) "sel 0 picks a" true (equal (mux ~sel:Zero ~a:D ~b:One) D);
  Alcotest.(check bool) "sel 1 picks b" true (equal (mux ~sel:One ~a:D ~b:Dbar) Dbar);
  (* an erroneous select with differing data creates an error: the good
     circuit picks b = 1, the faulty one picks a = 0, i.e. D *)
  Alcotest.(check bool) "sel D, a=0 b=1 -> D" true
    (equal (mux ~sel:D ~a:Zero ~b:One) D);
  Alcotest.(check bool) "sel D, equal data passes" true
    (equal (mux ~sel:D ~a:One ~b:One) One)

let test_dualrail_masks () =
  let v = Dualrail.of_lanes [| Logic4.L0; Logic4.L1; Logic4.X; Logic4.L1 |] in
  (* force lane 0 to 1 and lane 1 to 0 *)
  let f = Dualrail.force_mask v ~m0:2L ~m1:1L in
  Alcotest.check l4 "forced lane0" Logic4.L1 (Dualrail.get f 0);
  Alcotest.check l4 "forced lane1" Logic4.L0 (Dualrail.get f 1);
  Alcotest.check l4 "lane2 untouched" Logic4.X (Dualrail.get f 2);
  let a = Dualrail.const Logic4.L0 and b = Dualrail.const Logic4.L1 in
  let s = Dualrail.select_mask a b 4L in
  Alcotest.check l4 "selected lane2" Logic4.L1 (Dualrail.get s 2);
  Alcotest.check l4 "lane0 from a" Logic4.L0 (Dualrail.get s 0)

let test_dualrail_binary_mask () =
  let v = Dualrail.of_lanes [| Logic4.L0; Logic4.X; Logic4.L1 |] in
  let m = Dualrail.binary_mask v in
  Alcotest.(check bool) "lane0 binary" true (Int64.logand m 1L <> 0L);
  Alcotest.(check bool) "lane1 not binary" true (Int64.logand m 2L = 0L);
  Alcotest.(check bool) "lane2 binary" true (Int64.logand m 4L <> 0L)

let prop_dualrail_lanes_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"of_lanes/to_lanes roundtrip"
    QCheck2.Gen.(list_size (int_bound 64) (oneofl [ Logic4.L0; Logic4.L1; Logic4.X ]))
    (fun lanes ->
      let a = Array.of_list lanes in
      let v = Dualrail.of_lanes a in
      let back = Dualrail.to_lanes ~n:(Array.length a) v in
      Array.for_all2 Logic4.equal a back)

let qt t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "logic"
    [
      ( "logic4",
        [
          Alcotest.test_case "char roundtrip" `Quick test_char_roundtrip;
          Alcotest.test_case "truth tables" `Quick test_basic_tables;
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "list folds" `Quick test_list_folds;
          qt (prop_sound_binop "and sound" Logic4.and2 ( && ));
          qt (prop_sound_binop "or sound" Logic4.or2 ( || ));
          qt (prop_sound_binop "xor sound" Logic4.xor2 (fun a b -> a <> b));
          qt (prop_sound_binop "nand sound" Logic4.nand2 (fun a b -> not (a && b)));
          qt prop_demorgan;
        ] );
      ( "logic5",
        [
          Alcotest.test_case "D tables" `Quick test_logic5_tables;
          qt prop_logic5_consistent;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "merge laws" `Quick test_merge_laws;
          Alcotest.test_case "logic5 mux" `Quick test_logic5_mux_table;
        ] );
      ( "dualrail",
        [
          Alcotest.test_case "set/get" `Quick test_dualrail_setget;
          Alcotest.test_case "diff mask" `Quick test_diff_mask;
          Alcotest.test_case "force/select masks" `Quick test_dualrail_masks;
          Alcotest.test_case "binary mask" `Quick test_dualrail_binary_mask;
          qt prop_dualrail_lanes_roundtrip;
          qt (prop_dualrail_matches Dualrail.and2 Logic4.and2 "dualrail and");
          qt (prop_dualrail_matches Dualrail.or2 Logic4.or2 "dualrail or");
          qt (prop_dualrail_matches Dualrail.xor2 Logic4.xor2 "dualrail xor");
          qt (prop_dualrail_matches Dualrail.nand2 Logic4.nand2 "dualrail nand");
          qt prop_dualrail_mux;
        ] );
    ]
