open Olfu_logic
open Olfu_netlist
open Olfu_sim
open Olfu_verilog

let l4 = Alcotest.testable Logic4.pp Logic4.equal

let simple_src =
  {|
// a tiny flat design
module top (a, b, y);
  input a, b;
  output y;
  wire w;
  AND2 g1 (.Y(w), .A(a), .B(b));
  INV g2 (.Y(y), .A(w));
endmodule
|}

let test_parse_simple () =
  let nl = Elaborate.netlist_of_string simple_src in
  Alcotest.(check int) "inputs" 2 (Array.length (Netlist.inputs nl));
  Alcotest.(check int) "outputs" 1 (Array.length (Netlist.outputs nl));
  let env = Comb_sim.init nl Logic4.X in
  env.(Netlist.find_exn nl "a") <- Logic4.L1;
  env.(Netlist.find_exn nl "b") <- Logic4.L1;
  Comb_sim.settle nl env;
  let o = (Netlist.outputs nl).(0) in
  Alcotest.check l4 "nand behavior" Logic4.L0 env.((Netlist.fanin nl o).(0))

let test_positional_and_literals () =
  let src =
    {|
module top (a, y);
  input a;
  output y;
  wire t;
  AND2 g1 (t, a, 1'b1);
  OR2 g2 (.Y(y), .A(t), .B(1'b0));
endmodule
|}
  in
  let nl = Elaborate.netlist_of_string src in
  let env = Comb_sim.init nl Logic4.X in
  env.(Netlist.find_exn nl "a") <- Logic4.L1;
  Comb_sim.settle nl env;
  Alcotest.check l4 "passes a" Logic4.L1 env.(Netlist.find_exn nl "t")

let test_vectors () =
  let src =
    {|
module top (a, y);
  input [1:0] a;
  output y;
  XOR2 g (.Y(y), .A(a[1]), .B(a[0]));
endmodule
|}
  in
  let nl = Elaborate.netlist_of_string src in
  Alcotest.(check int) "two input bits" 2 (Array.length (Netlist.inputs nl));
  Alcotest.(check bool) "bit names" true (Netlist.find nl "a[1]" <> None)

let test_hierarchy () =
  let src =
    {|
module half_adder (x, y, s, c);
  input x, y;
  output s, c;
  wire xb;
  BUF gb (.Y(xb), .A(x));
  XOR2 gs (.Y(s), .A(xb), .B(y));
  AND2 gc (.Y(c), .A(xb), .B(y));
endmodule

module top (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire s1, c1, c2;
  half_adder ha1 (.x(a), .y(b), .s(s1), .c(c1));
  half_adder ha2 (.x(s1), .y(cin), .s(sum), .c(c2));
  OR2 go (.Y(cout), .A(c1), .B(c2));
endmodule
|}
  in
  let nl = Elaborate.netlist_of_string src in
  (* hierarchical names of internal child nets survive flattening *)
  Alcotest.(check bool) "ha1/xb net" true (Netlist.find nl "ha1/xb" <> None);
  Alcotest.(check bool) "ha2/xb net" true (Netlist.find nl "ha2/xb" <> None);
  (* behaves like a full adder *)
  for v = 0 to 7 do
    let env = Comb_sim.init nl Logic4.X in
    let bit k = Logic4.of_bool ((v lsr k) land 1 = 1) in
    env.(Netlist.find_exn nl "a") <- bit 0;
    env.(Netlist.find_exn nl "b") <- bit 1;
    env.(Netlist.find_exn nl "cin") <- bit 2;
    Comb_sim.settle nl env;
    let total = (v land 1) + ((v lsr 1) land 1) + ((v lsr 2) land 1) in
    let sum_drv = (Netlist.fanin nl (Netlist.find_exn nl "sum$out")).(0) in
    Alcotest.check l4 "sum" (Logic4.of_bool (total land 1 = 1)) env.(sum_drv)
  done

let test_flops_and_unconnected () =
  let src =
    {|
module top (d, q);
  input d;
  output q;
  wire qi;
  DFFR f (.Q(qi), .D(d), .RSTN(), .CK(clk_ignored));
  BUF b (.Y(q), .A(qi));
endmodule
//@role qi scan-out
|}
  in
  (* unconnected RSTN elaborates to a floating (X) net *)
  match Parser.design_of_string src with
  | [ m ] ->
    Alcotest.(check string) "module name" "top" m.Ast.mname;
    let nl = Elaborate.to_netlist ~roles:(Elaborate.roles_of_source src) [ m ] in
    let f = Netlist.find_exn nl "qi" in
    Alcotest.(check bool) "is dffr" true
      (Cell.equal_kind (Netlist.kind nl f) Cell.Dffr);
    Alcotest.(check bool) "rstn floats" true
      (Cell.equal_kind (Netlist.kind nl (Netlist.fanin nl f).(1)) Cell.Tiex);
    Alcotest.(check bool) "role read" true
      (Netlist.has_role nl f Netlist.Scan_out)
  | _ -> Alcotest.fail "expected one module"

let test_errors () =
  let expect_error src =
    match Elaborate.netlist_of_string src with
    | exception (Elaborate.Error _ | Parser.Error _) -> ()
    | _ -> Alcotest.fail "expected failure"
  in
  expect_error "module top (a); input a; FROB g (.Y(a)); endmodule";
  expect_error
    "module top (y); output y; wire w; TIE0 a (.Y(w)); TIE1 b (.Y(w)); BUF \
     g(.Y(y), .A(w)); endmodule";
  expect_error "module top (a, y); input a; output y; AND2 g (.Y(y), .A(a), .B(undeclared)); endmodule";
  expect_error "module top (a; input a; endmodule"

let test_lexer_edges () =
  (* escaped identifiers, z literals, numeric corner cases *)
  let src =
    {|
module top (a, y);
  input a;
  output y;
  wire \weird.name$x ;
  BUF g1 (.Y(\weird.name$x ), .A(a));
  OR2 g2 (.Y(y), .A(\weird.name$x ), .B(1'bz));
endmodule
|}
  in
  let nl = Elaborate.netlist_of_string src in
  Alcotest.(check bool) "escaped name kept" true
    (Netlist.find nl "weird.name$x" <> None);
  (* 1'bz elaborates to a floating (X) operand *)
  let g2 = Netlist.find_exn nl "y$out" in
  ignore g2;
  let env = Comb_sim.init nl Logic4.X in
  env.(Netlist.find_exn nl "a") <- Logic4.L1;
  Comb_sim.settle nl env;
  Alcotest.check l4 "or with z is 1 when a=1" Logic4.L1
    env.((Netlist.fanin nl (Netlist.find_exn nl "y$out")).(0))

let test_parser_error_positions () =
  (match Parser.design_of_string "module top (a); input a; 123banana" with
  | exception Parser.Error { line; _ } ->
    Alcotest.(check bool) "line recorded" true (line >= 1)
  | _ -> Alcotest.fail "expected parse error");
  match Parser.design_of_string "module top (); wire w; AND2 g (.Y(w), .A(w), .B(w));" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected missing endmodule error"

let test_comments_and_attributes () =
  let src =
    {|
module top (a, y); /* block
comment */ (* synthesis keep *)
  input a;
  output y;
  BUF g (.Y(y), .A(a)); // line comment
endmodule
|}
  in
  let nl = Elaborate.netlist_of_string src in
  Alcotest.(check int) "one input" 1 (Array.length (Netlist.inputs nl))

(* Round-trip: emit then re-elaborate; must be simulation-equivalent on the
   named nets. *)
let roundtrip_equiv nl =
  let src = Emit.to_string nl in
  let nl2 = Elaborate.netlist_of_string src in
  let rng = Random.State.make [| 42 |] in
  let ok = ref true in
  for _trial = 0 to 7 do
    let env = Comb_sim.init nl Logic4.X in
    let env2 = Comb_sim.init nl2 Logic4.X in
    Array.iter
      (fun i ->
        let v = Logic4.of_bool (Random.State.bool rng) in
        env.(i) <- v;
        (* inputs are matched by name *)
        match Netlist.name nl i with
        | Some s -> (
          match Netlist.find nl2 s with
          | Some j -> env2.(j) <- v
          | None -> ok := false)
        | None -> ok := false)
      (Netlist.inputs nl);
    Comb_sim.settle nl env;
    Comb_sim.settle nl2 env2;
    (* compare all named nets *)
    Netlist.iter_nodes
      (fun i nd ->
        if not (Cell.equal_kind nd.Netlist.kind Cell.Output) then
          match nd.Netlist.name with
          | Some s -> (
            match Netlist.find nl2 s with
            | Some j -> if not (Logic4.equal env.(i) env2.(j)) then ok := false
            | None -> () (* sanitization may rename; skip *))
          | None -> ())
      nl
  done;
  !ok

let test_roundtrip_adder () =
  Alcotest.(check bool) "adder roundtrip" true
    (roundtrip_equiv (Test_support.full_adder ()))

let prop_roundtrip_random =
  QCheck2.Test.make ~count:20 ~name:"emit/parse roundtrip simulation-equivalent"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:20 in
      roundtrip_equiv nl)

let test_roundtrip_roles () =
  let nl, _ = Test_support.scan_cell_mission () in
  let nl2 = Elaborate.netlist_of_string (Emit.to_string nl) in
  let si = Netlist.find_exn nl2 "SI" in
  Alcotest.(check bool) "scan-in role preserved" true
    (Netlist.has_role nl2 si Netlist.Scan_in)

(* Full-scale roundtrip: the generated SoC survives emit+parse with its
   structure intact, and the identification flow lands on the same
   per-source counts. *)
let test_soc_roundtrip_flow () =
  let cfg = Olfu_soc.Soc.tcore16 in
  let nl = Olfu_soc.Soc.generate cfg in
  let nl2 = Elaborate.netlist_of_string (Emit.to_string nl) in
  let s1 = Stats.of_netlist nl and s2 = Stats.of_netlist nl2 in
  Alcotest.(check int) "same flops" s1.Stats.flops s2.Stats.flops;
  Alcotest.(check int) "same inputs (+clk)" (s1.Stats.inputs + 1) s2.Stats.inputs;
  Alcotest.(check int) "same outputs" s1.Stats.outputs s2.Stats.outputs;
  (* the reparsed netlist has sanitized port names, so derive the mission
     from the role annotations instead of the config's name list *)
  let mission nl =
    Olfu.Mission.of_roles
      ~memmap:(Olfu_soc.Soc.memmap_regions cfg)
      ~address_width:cfg.Olfu_soc.Soc.xlen nl
  in
  let r1 = Olfu.Flow.run Olfu.Run_config.default nl (mission nl) in
  let r2 = Olfu.Flow.run Olfu.Run_config.default nl2 (mission nl2) in
  (* the emitter inserts one BUF per output port; the one on each scan-out
     path is scan-only logic, adding exactly 4 faults per chain *)
  Alcotest.(check int) "scan count (+4/chain for port buffers)"
    (Olfu.Flow.step_count r1 Olfu.Flow.Scan
    + (4 * cfg.Olfu_soc.Soc.scan_chains))
    (Olfu.Flow.step_count r2 Olfu.Flow.Scan);
  (* likewise the port buffers on mission-constant address bits add two
     faults each to the memory row *)
  let const_bits =
    List.length
      (Olfu_manip.Memmap.constant_bits ~width:cfg.Olfu_soc.Soc.xlen
         (Olfu_soc.Soc.memmap_regions cfg))
  in
  Alcotest.(check int) "memory count (+2/constant address bit)"
    (Olfu.Flow.step_count r1 Olfu.Flow.Memory + (2 * const_bits))
    (Olfu.Flow.step_count r2 Olfu.Flow.Memory)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "verilog"
    [
      ( "parse",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "positional + literals" `Quick
            test_positional_and_literals;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "flops + unconnected" `Quick
            test_flops_and_unconnected;
          Alcotest.test_case "comments" `Quick test_comments_and_attributes;
          Alcotest.test_case "lexer edges" `Quick test_lexer_edges;
          Alcotest.test_case "error positions" `Quick
            test_parser_error_positions;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "adder" `Quick test_roundtrip_adder;
          Alcotest.test_case "roles" `Quick test_roundtrip_roles;
          Alcotest.test_case "soc flow equality" `Slow test_soc_roundtrip_flow;
          qt prop_roundtrip_random;
        ] );
    ]
