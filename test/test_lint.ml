(* Tests for the olfu_lint static-analysis framework: every built-in
   rule gets a firing and a non-firing case, the engine's config layer
   (disable/override/waive/baseline) is exercised end to end, the JSON
   renderer is checked against a small strict JSON parser, and the
   OBS-001 dead-cone analysis is cross-checked against the Observe
   X-path engine on random netlists. *)

open Olfu_logic
open Olfu_netlist
open Olfu_lint
module B = Netlist.Builder

let codes ?config nl =
  Lint.findings ?config nl
  |> List.map (fun (f : Rule.finding) -> f.Rule.code)
  |> List.sort_uniq compare

let has ?config nl code = List.mem code (codes ?config nl)

let find_finding ?config nl code =
  List.find_opt
    (fun (f : Rule.finding) -> f.Rule.code = code)
    (Lint.findings ?config nl)

let check_fires ?config nl code =
  Alcotest.(check bool) (code ^ " fires") true (has ?config nl code)

let check_silent ?config nl code =
  Alcotest.(check bool) (code ^ " silent") false (has ?config nl code)

(* ---------------------------------------------------------------- *)
(* Reference netlists                                               *)
(* ---------------------------------------------------------------- *)

(* A netlist that is clean for every rule except the always-informative
   SCOAP hotspot report: full mux-scan with one SE net, a single reset
   domain wired straight to a Reset-role input, a chain with scan-out,
   no buffers on the shift path, no floating nets, no dead logic. *)
let clean_netlist () =
  let b = B.create () in
  let rstn = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let d0 = B.input b "d0" in
  let d1 = B.input b "d1" in
  let f0 = B.sdffr b ~name:"f0" ~d:d0 ~si ~se ~rstn in
  let f1 = B.sdffr b ~name:"f1" ~d:d1 ~si:f0 ~se ~rstn in
  let g = B.xor2 b ~name:"g" f0 f1 in
  let f2 = B.sdffr b ~name:"f2" ~d:g ~si:f1 ~se ~rstn in
  let _ = B.output b "q0" f0 in
  let _ = B.output b "q1" f1 in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "so" f2 in
  B.freeze_exn b

(* The historical Dft_lint findings netlist: unscanned/unreset flop, a
   floating net, a dead cone, a chainless scan-in. *)
let messy_netlist () =
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let z = B.tie b Logic4.X in
  let g = B.and2 b ~name:"g" ff z in
  let _dead = B.not_ b ~name:"deadgate" g in
  let _ = B.output b "o" g in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  ignore si;
  B.freeze_exn b

let test_clean_exact () =
  let nl = clean_netlist () in
  (* NET-002 is inherent to any reset netlist: the ternary engine holds
     the Reset-role input at its inactive level, so the rstn net itself
     is steady-state constant.  TEST-001 always reports SCOAP hotspots,
     SEU-001 inventories the unhardened state any flop-with-output
     netlist has, and SLICE-002 correctly flags f2, whose only observer
     is the scan-out marker — invisible to the mission. *)
  Alcotest.(check (list string)) "only the four informative reports"
    [ "NET-002"; "SEU-001"; "SLICE-002"; "TEST-001" ] (codes nl);
  let o = Lint.run nl in
  Alcotest.(check bool) "max severity info" true
    (Lint.max_severity o = Some Rule.Info);
  Alcotest.(check bool) "passes --fail-on warning" false
    (Lint.fails ~fail_on:Rule.Warning o);
  Alcotest.(check bool) "trips --fail-on info" true
    (Lint.fails ~fail_on:Rule.Info o)

(* ---------------------------------------------------------------- *)
(* Per-rule firing cases                                            *)
(* ---------------------------------------------------------------- *)

let test_scan_001 () =
  let nl = messy_netlist () in
  check_fires nl "SCAN-001";
  check_silent (clean_netlist ()) "SCAN-001"

let test_scan_002 () =
  (* scan-in port reaching no SI pin *)
  let nl = messy_netlist () in
  check_fires nl "SCAN-002";
  check_silent (clean_netlist ()) "SCAN-002"

let test_scan_003 () =
  let b = B.create () in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let d = B.input b "d" in
  let f0 = B.sdff b ~name:"f0" ~d ~si ~se in
  let _ = B.output b "q" f0 in
  (* no scan-out port *)
  let nl = B.freeze_exn b in
  check_fires nl "SCAN-003";
  check_silent (clean_netlist ()) "SCAN-003"

let test_scan_004 () =
  let b = B.create () in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let se1 = B.input b ~roles:[ Netlist.Scan_enable ] "se1" in
  let se2 = B.input b "se2" in
  let d = B.input b "d" in
  let f0 = B.sdff b ~name:"f0" ~d ~si ~se:se1 in
  let f1 = B.sdff b ~name:"f1" ~d ~si:f0 ~se:se2 in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "so" f1 in
  let nl = B.freeze_exn b in
  check_fires nl "SCAN-004";
  check_silent (clean_netlist ()) "SCAN-004"

let test_scan_005 () =
  let b = B.create () in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let sen = B.not_ b ~name:"sen" se in
  let d = B.input b "d" in
  let f0 = B.sdff b ~name:"f0" ~d ~si ~se in
  let f1 = B.sdff b ~name:"f1" ~d ~si:f0 ~se:sen in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "so" f1 in
  let nl = B.freeze_exn b in
  check_fires nl "SCAN-005";
  (match find_finding nl "SCAN-005" with
  | Some f ->
    Alcotest.(check (option int)) "points at the inverted cell"
      (Some (Netlist.find_exn nl "f1"))
      f.Rule.node
  | None -> Alcotest.fail "SCAN-005 missing");
  check_silent (clean_netlist ()) "SCAN-005"

let test_scan_006 () =
  (* a buffer on the shift path *)
  let b = B.create () in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let d = B.input b "d" in
  let f0 = B.sdff b ~name:"f0" ~d ~si ~se in
  let sb = B.buf b ~name:"sb" f0 in
  let f1 = B.sdff b ~name:"f1" ~d ~si:sb ~se in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "so" f1 in
  let nl = B.freeze_exn b in
  check_fires nl "SCAN-006";
  (match find_finding nl "SCAN-006" with
  | Some f ->
    Alcotest.(check (list int)) "census path is the buffer"
      [ Netlist.find_exn nl "sb" ]
      f.Rule.path
  | None -> Alcotest.fail "SCAN-006 missing");
  check_silent (clean_netlist ()) "SCAN-006"

let test_scan_007 () =
  let b = B.create () in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let d = B.input b "d" in
  let sia = B.input b ~roles:[ Netlist.Scan_in ] "sia" in
  let fa = B.sdff b ~name:"fa" ~d ~si:sia ~se in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "soa" fa in
  let sib = B.input b ~roles:[ Netlist.Scan_in ] "sib" in
  let last =
    let prev = ref sib in
    for k = 0 to 9 do
      prev := B.sdff b ~name:(Printf.sprintf "fb%d" k) ~d ~si:!prev ~se
    done;
    !prev
  in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "sob" last in
  let nl = B.freeze_exn b in
  check_fires nl "SCAN-007";
  check_silent (clean_netlist ()) "SCAN-007"

let test_loop_001 () =
  let b = B.create () in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let d = B.input b "d" in
  let fa = B.sdff b ~name:"fa" ~d ~si:d ~se in
  let fb = B.sdff b ~name:"fb" ~d ~si:fa ~se in
  (* close the loop: fa shifts from fb *)
  let fanin = B.node_fanin b fa in
  fanin.(1) <- fb;
  B.set_fanin b fa fanin;
  let _ = B.output b "o" fa in
  let nl = B.freeze_exn b in
  check_fires nl "LOOP-001";
  (match find_finding nl "LOOP-001" with
  | Some f ->
    let cycle = List.sort compare f.Rule.path in
    Alcotest.(check (list int)) "cycle is exactly the two cells"
      (List.sort compare [ Netlist.find_exn nl "fa"; Netlist.find_exn nl "fb" ])
      cycle;
    Alcotest.(check bool) "loop is an error" true
      (f.Rule.severity = Rule.Error)
  | None -> Alcotest.fail "LOOP-001 missing");
  check_silent (clean_netlist ()) "LOOP-001"

let test_drv_001 () =
  let b = B.create () in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "si" in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "se" in
  let d = B.input b "d" in
  let f0 = B.sdff b ~name:"f0" ~d ~si ~se in
  let f1 = B.sdff b ~name:"f1" ~d ~si:f0 ~se in
  let f2 = B.sdff b ~name:"f2" ~d ~si:f0 ~se in
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "so" f1 in
  let _ = B.output b "q2" f2 in
  let nl = B.freeze_exn b in
  check_fires nl "DRV-001";
  check_silent (clean_netlist ()) "DRV-001"

let test_drv_002 () =
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"g" x in
  let _ = B.output b "o1" g in
  let _ = B.output b "o2" g in
  let nl = B.freeze_exn b in
  check_fires nl "DRV-002";
  check_silent (clean_netlist ()) "DRV-002"

let test_rst_001_002 () =
  let nl = messy_netlist () in
  check_fires nl "RST-001";
  check_fires nl "RST-002";
  let clean = clean_netlist () in
  check_silent clean "RST-001";
  check_silent clean "RST-002"

let test_rst_003 () =
  (* rstn pin fed by a plain input that does NOT carry the Reset role *)
  let b = B.create () in
  let r = B.input b "some_net" in
  let d = B.input b "d" in
  let ff = B.dffr b ~name:"ff" ~d ~rstn:r in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  check_fires nl "RST-003";
  check_silent nl "RST-006";
  check_silent (clean_netlist ()) "RST-003"

let test_rst_004 () =
  let b = B.create () in
  let r1 = B.input b ~roles:[ Netlist.Reset ] "r1" in
  let r2 = B.input b ~roles:[ Netlist.Reset ] "r2" in
  let d = B.input b "d" in
  let fa = B.dffr b ~name:"fa" ~d ~rstn:r1 in
  let fb = B.dffr b ~name:"fb" ~d ~rstn:r2 in
  let _ = B.output b "qa" fa in
  let _ = B.output b "qb" fb in
  let nl = B.freeze_exn b in
  check_fires nl "RST-004";
  check_silent (clean_netlist ()) "RST-004"

let test_rst_005 () =
  let b = B.create () in
  let r = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let rn = B.not_ b ~name:"rn" r in
  let d = B.input b "d" in
  let ff = B.dffr b ~name:"ff" ~d ~rstn:rn in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  check_fires nl "RST-005";
  check_silent (clean_netlist ()) "RST-005"

let test_rst_006 () =
  (* the TAP idiom: reset ANDed with a mission-tied debug pin keeps its
     root, so it is a gated reset (info), not an orphan or a domain *)
  let b = B.create () in
  let r = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let trstn = B.input b ~roles:[ Netlist.Debug_control ] "trstn" in
  let gated = B.and2 b ~name:"tap_rst" r trstn in
  let d = B.input b "d" in
  let fa = B.dffr b ~name:"fa" ~d ~rstn:r in
  let fb = B.dffr b ~name:"fb" ~d ~rstn:gated in
  let _ = B.output b "qa" fa in
  let _ = B.output b "qb" fb in
  let nl = B.freeze_exn b in
  check_fires nl "RST-006";
  check_silent nl "RST-003";
  check_silent nl "RST-004";
  check_silent (clean_netlist ()) "RST-006"

let test_clk_001 () =
  let b = B.create () in
  let clk = B.input b ~roles:[ Netlist.Clock ] "clk" in
  let clk2 = B.input b ~roles:[ Netlist.Clock ] "clk_unused" in
  ignore clk2;
  let g = B.buf b ~name:"g" clk in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  check_fires nl "CLK-001";
  let count =
    Lint.findings nl
    |> List.filter (fun (f : Rule.finding) -> f.Rule.code = "CLK-001")
    |> List.length
  in
  Alcotest.(check int) "only the used clock is flagged" 1 count;
  check_silent (clean_netlist ()) "CLK-001"

let test_net_001_002 () =
  let nl = messy_netlist () in
  check_fires nl "NET-001";
  let b = B.create () in
  let x = B.input b "x" in
  let t0 = B.tie b Logic4.L0 in
  let g = B.and2 b ~name:"g" x t0 in
  let _ = B.output b "o" g in
  let const_nl = B.freeze_exn b in
  check_fires const_nl "NET-002";
  check_silent (clean_netlist ()) "NET-001";
  (* nothing constant in a free-input combinational netlist *)
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"g" x in
  let _ = B.output b "o" g in
  check_silent (B.freeze_exn b) "NET-002"

let test_xprop_001 () =
  let nl = messy_netlist () in
  (* X from the Tiex reaches output o through the AND *)
  check_fires nl "XPROP-001";
  (* an absorbed X: and2(tiex, 0) is constant 0, nothing to report *)
  let b = B.create () in
  let z = B.tie b Logic4.X in
  let t0 = B.tie b Logic4.L0 in
  let g = B.and2 b ~name:"g" z t0 in
  let _ = B.output b "o" g in
  let absorbed = B.freeze_exn b in
  check_fires absorbed "NET-001";
  check_silent absorbed "XPROP-001"

let test_const_001 () =
  let b = B.create () in
  let di = B.input b ~roles:[ Netlist.Debug_control ] "di" in
  let x = B.input b "x" in
  let g = B.and2 b ~name:"g" di x in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  check_fires nl "CONST-001";
  (match find_finding nl "CONST-001" with
  | Some f ->
    Alcotest.(check bool) "g is in the newly-constant set" true
      (List.mem (Netlist.find_exn nl "g") f.Rule.path)
  | None -> Alcotest.fail "CONST-001 missing");
  (* no debug controls -> nothing to assume -> silent *)
  check_silent (clean_netlist ()) "CONST-001"

let test_obs_001 () =
  let nl = messy_netlist () in
  check_fires nl "OBS-001";
  (match find_finding nl "OBS-001" with
  | Some f ->
    Alcotest.(check (list int)) "cone is exactly the dead gate"
      [ Netlist.find_exn nl "deadgate" ]
      f.Rule.path
  | None -> Alcotest.fail "OBS-001 missing");
  check_silent (clean_netlist ()) "OBS-001"

let test_test_001 () =
  let nl = clean_netlist () in
  check_fires nl "TEST-001";
  (* scoap_top = 0 turns the report off *)
  let config =
    {
      Config.default with
      Config.thresholds =
        { Ctx.default_thresholds with Ctx.scoap_top = 0 };
    }
  in
  check_silent ~config nl "TEST-001"

let test_dbg_001 () =
  let b = B.create () in
  let di = B.input b ~roles:[ Netlist.Debug_control ] "di_free" in
  let t0 = B.tie b Logic4.L0 in
  B.add_role b t0 Netlist.Debug_control;
  let x = B.input b "x" in
  let m = B.mux2 b ~name:"m" ~sel:t0 ~a:x ~b:di in
  let _ = B.output b "o" m in
  let nl = B.freeze_exn b in
  check_fires nl "DBG-001";
  check_silent nl "DBG-002";
  check_silent (clean_netlist ()) "DBG-001"

let test_dbg_002 () =
  let b = B.create () in
  let t0 = B.tie b Logic4.L0 in
  B.add_role b t0 Netlist.Debug_control;
  let x = B.input b "x" in
  let m = B.mux2 b ~name:"m" ~sel:t0 ~a:x ~b:t0 in
  let _ = B.output b "o" m in
  let _ = B.output b ~roles:[ Netlist.Debug_observe ] "dbgo" m in
  let nl = B.freeze_exn b in
  check_fires nl "DBG-002";
  check_silent nl "DBG-001";
  check_silent (clean_netlist ()) "DBG-002"

let test_struct_001 () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g1 = B.and2 b ~name:"g1" x y in
  let g2 = B.or2 b ~name:"g2" x y in
  let g3 = B.xor2 b ~name:"g3" x y in
  let _ = B.output b "o1" g1 in
  let _ = B.output b "o2" g2 in
  let _ = B.output b "o3" g3 in
  let nl = B.freeze_exn b in
  let config =
    {
      Config.default with
      Config.thresholds = { Ctx.default_thresholds with Ctx.max_fanout = 2 };
    }
  in
  check_fires ~config nl "STRUCT-001";
  check_silent nl "STRUCT-001"

let test_struct_002 () =
  let b = B.create () in
  let x = B.input b "x" in
  let n1 = B.not_ b x in
  let n2 = B.not_ b n1 in
  let n3 = B.not_ b n2 in
  let _ = B.output b "o" n3 in
  let nl = B.freeze_exn b in
  let config =
    {
      Config.default with
      Config.thresholds = { Ctx.default_thresholds with Ctx.max_depth = 1 };
    }
  in
  check_fires ~config nl "STRUCT-002";
  check_silent nl "STRUCT-002"

let test_seu_001 () =
  (* a flop on a functional output with no alarm observer is exposed *)
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let _ = B.output b "o" ff in
  check_fires (B.freeze_exn b) "SEU-001";
  (* the same flop with a parity-style observer is not *)
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let ff2 = B.dff b ~name:"shadow" ~d in
  let _ = B.output b "o" ff in
  let _ = B.output b "alarm_flag" (B.xor2 b ff ff2) in
  check_silent (B.freeze_exn b) "SEU-001";
  (* a flop driving nothing functional is not exposed either *)
  let b = B.create () in
  let d = B.input b "d" in
  let _ff = B.dff b ~name:"ff" ~d in
  let _ = B.output b "o" (B.buf b d) in
  check_silent (B.freeze_exn b) "SEU-001"

let test_slice_001 () =
  (* mission ties the debug select to 0, so the mux reads only the
     flop's own feedback: no functional input can steer the state *)
  let b = B.create () in
  let dbg = B.input b ~roles:[ Netlist.Debug_control ] "dbg_sel" in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let m = B.mux2 b ~name:"m" ~sel:dbg ~a:ff ~b:d in
  B.set_fanin b ff [| m |];
  let _ = B.output b "o" ff in
  check_fires (B.freeze_exn b) "SLICE-001";
  (* the same mux on a functional select keeps both branches alive *)
  let b = B.create () in
  let sel = B.input b "sel" in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let m = B.mux2 b ~name:"m" ~sel ~a:ff ~b:d in
  B.set_fanin b ff [| m |];
  let _ = B.output b "o" ff in
  check_silent (B.freeze_exn b) "SLICE-001"

let test_slice_002 () =
  (* a toggling flop whose only observer is the scan-out marker *)
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  B.set_fanin b ff [| B.not_ b ff |];
  let _ = B.output b ~roles:[ Netlist.Scan_out ] "so" ff in
  let _ = B.output b "o" (B.buf b d) in
  check_fires (B.freeze_exn b) "SLICE-002";
  (* the same flop with a functional output is observed *)
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  B.set_fanin b ff [| B.not_ b ff |];
  let _ = B.output b "q" ff in
  let _ = B.output b "o" (B.buf b d) in
  check_silent (B.freeze_exn b) "SLICE-002"

(* ---------------------------------------------------------------- *)
(* SW rules: software-derived facts                                 *)
(* ---------------------------------------------------------------- *)

(* A mission address-register flop fed by free logic: plain ternary
   cannot call it constant, so a software-proven constant bit is a tie
   opportunity (SW-CONST).  The other SW rules fire straight off the
   facts record. *)
let sw_netlist () =
  let b = B.create () in
  let rstn = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let d = B.input b "d" in
  let ff =
    B.dffr b ~name:"pc[5]" ~roles:[ Netlist.Address_reg 5 ] ~d ~rstn
  in
  let _ = B.output b "q" ff in
  B.freeze_exn b

let sw_facts =
  {
    Ctx.sw_label = "synthetic-suite";
    sw_width = 16;
    sw_const_addr_bits = [ (5, false) ];
    sw_assume = [];
    sw_dead_code = [ ("routine_a", [ 0x12; 0x13 ]) ];
    sw_store_total = 0;
    sw_ram_stores = false;
    sw_unmapped = [ "routine_a: store at 0x7 to top" ];
  }

let sw_codes nl software =
  Lint.findings ?software nl
  |> List.map (fun (f : Rule.finding) -> f.Rule.code)
  |> List.sort_uniq compare

let test_sw_rules () =
  let nl = sw_netlist () in
  let with_facts = sw_codes nl (Some sw_facts) in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " fires") true (List.mem c with_facts))
    [ "SW-CONST"; "SW-DEAD"; "SW-OBS"; "SW-MAP" ];
  (* SW-OBS distinguishes no-store from no-RAM-store *)
  let facts_stores = { sw_facts with Ctx.sw_store_total = 4 } in
  (match
     List.find_opt
       (fun (f : Rule.finding) -> f.Rule.code = "SW-OBS")
       (Lint.findings ~software:facts_stores nl)
   with
  | Some f ->
    Alcotest.(check bool) "message names the store count" true
      (String.length f.Rule.message > 0
      && String.sub f.Rule.message 0 4 = "none")
  | None -> Alcotest.fail "SW-OBS should fire without RAM stores");
  (* a healthy record silences everything *)
  let healthy =
    {
      sw_facts with
      Ctx.sw_const_addr_bits = [];
      sw_dead_code = [];
      sw_store_total = 4;
      sw_ram_stores = true;
      sw_unmapped = [];
    }
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " silent when healthy") false
        (List.mem c (sw_codes nl (Some healthy))))
    [ "SW-CONST"; "SW-DEAD"; "SW-OBS"; "SW-MAP" ];
  (* and without any facts the rules never run *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " silent without facts") false
        (List.mem c (sw_codes nl None)))
    [ "SW-CONST"; "SW-DEAD"; "SW-OBS"; "SW-MAP" ]

let test_sw_assume_feeds_const_001 () =
  (* software assumptions join the mission tie script inside
     mission_ternary, so CONST-001 sees the flop as mission-constant *)
  let nl = sw_netlist () in
  let ff = Netlist.find_exn nl "pc[5]" in
  let facts =
    { sw_facts with Ctx.sw_assume = [ (ff, Logic4.L0) ] }
  in
  let ctx = Ctx.create ~software:facts nl in
  Alcotest.(check bool) "assumption recorded" true
    (List.mem_assoc ff (Ctx.assumptions ctx));
  let mt = Ctx.mission_ternary ctx in
  Alcotest.(check bool) "mission ternary holds the flop" true
    (Logic4.equal (Olfu_atpg.Ternary.const_of mt ff) Logic4.L0)

(* ---------------------------------------------------------------- *)
(* Registry invariants                                              *)
(* ---------------------------------------------------------------- *)

let test_registry () =
  let rules = Lint.registry in
  Alcotest.(check bool) "at least 18 rules" true (List.length rules >= 18);
  let codes = List.map (fun (r : Rule.t) -> r.Rule.code) rules in
  Alcotest.(check int) "codes unique"
    (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.(check bool)
        (r.Rule.code ^ " documented")
        true
        (String.length r.Rule.title > 0 && String.length r.Rule.doc > 0))
    rules;
  Alcotest.(check bool) "lookup hit" true (Lint.find_rule "SCAN-001" <> None);
  Alcotest.(check bool) "lookup miss" true (Lint.find_rule "NOPE-999" = None)

(* ---------------------------------------------------------------- *)
(* Config: disable, override, waive, baseline                       *)
(* ---------------------------------------------------------------- *)

let test_disable () =
  let nl = messy_netlist () in
  let config = { Config.default with Config.disabled = [ "SCAN-001" ] } in
  check_silent ~config nl "SCAN-001";
  check_fires ~config nl "SCAN-002";
  (* whole category *)
  let config = { Config.default with Config.disabled = [ "scan" ] } in
  check_silent ~config nl "SCAN-001";
  check_silent ~config nl "SCAN-002";
  check_fires ~config nl "RST-001"

let test_severity_override () =
  let nl = messy_netlist () in
  let config =
    {
      Config.default with
      Config.severity_overrides = [ ("SCAN-001", Rule.Error) ];
    }
  in
  match find_finding ~config nl "SCAN-001" with
  | Some f ->
    Alcotest.(check bool) "promoted to error" true
      (f.Rule.severity = Rule.Error)
  | None -> Alcotest.fail "SCAN-001 missing"

let test_waiver_parse () =
  let src =
    "# comment\n\
     SCAN-001 core.ff12   known unstitched prototype cell\n\
     NET-001  dbg_*       floated on purpose\n\
     OBS-001  *\n\
     \n"
  in
  (match Config.parse_waivers src with
  | Ok [ w1; w2; w3 ] ->
    Alcotest.(check string) "code" "SCAN-001" w1.Config.w_code;
    Alcotest.(check (option string)) "node" (Some "core.ff12") w1.Config.w_node;
    Alcotest.(check string) "reason" "known unstitched prototype cell"
      w1.Config.w_reason;
    Alcotest.(check (option string)) "prefix kept" (Some "dbg_*")
      w2.Config.w_node;
    Alcotest.(check (option string)) "star is any" None w3.Config.w_node
  | Ok l -> Alcotest.failf "expected 3 waivers, got %d" (List.length l)
  | Error e -> Alcotest.fail e);
  match Config.parse_waivers "JUST-A-CODE\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_waiver_matching () =
  let nl = messy_netlist () in
  let waiver node =
    { Config.w_code = "OBS-001"; Config.w_node = node; Config.w_reason = "t" }
  in
  let run w =
    let config = { Config.default with Config.waivers = [ w ] } in
    Lint.run ~config nl
  in
  (* exact node name *)
  let o = run (waiver (Some "deadgate")) in
  Alcotest.(check bool) "exact waives" true
    (not (List.mem "OBS-001" (List.map (fun (f : Rule.finding) -> f.Rule.code) o.Lint.findings)));
  Alcotest.(check int) "one waived" 1 (List.length o.Lint.waived);
  Alcotest.(check int) "waiver used" 0 (List.length o.Lint.unused_waivers);
  (* prefix pattern *)
  let o = run (waiver (Some "dead*")) in
  Alcotest.(check int) "prefix waives" 1 (List.length o.Lint.waived);
  (* star *)
  let o = run (waiver None) in
  Alcotest.(check int) "star waives" 1 (List.length o.Lint.waived);
  (* non-matching node: waiver unused, finding live *)
  let o = run (waiver (Some "elsewhere")) in
  Alcotest.(check int) "nothing waived" 0 (List.length o.Lint.waived);
  Alcotest.(check int) "unused reported" 1 (List.length o.Lint.unused_waivers)

let test_baseline () =
  let nl = messy_netlist () in
  let fresh = Lint.run nl in
  Alcotest.(check bool) "has findings" true (fresh.Lint.findings <> []);
  let fps = Config.baseline_of_findings nl fresh.Lint.findings in
  let config = { Config.default with Config.baseline = fps } in
  let o = Lint.run ~config nl in
  Alcotest.(check int) "all suppressed" 0 (List.length o.Lint.findings);
  Alcotest.(check int) "all accounted as baselined"
    (List.length fresh.Lint.findings)
    (List.length o.Lint.baselined);
  Alcotest.(check bool) "baselined run passes" false
    (Lint.fails ~fail_on:Rule.Info o)

(* ---------------------------------------------------------------- *)
(* JSON renderer: strict syntax check without a JSON library        *)
(* ---------------------------------------------------------------- *)

exception Bad_json of string

(* Minimal strict JSON validator (RFC 8259 grammar, no extensions). *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail m = raise (Bad_json (Printf.sprintf "%s at offset %d" m !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_ ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_ ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elements ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_json_valid () =
  let check_doc nl =
    let doc = Format.asprintf "%a" Render.json (Lint.run nl) in
    (try validate_json doc with Bad_json m -> Alcotest.fail m);
    doc
  in
  let doc = check_doc (messy_netlist ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains doc needle))
    [
      "\"olfu_lint\"";
      "sarif";
      "\"SCAN-001\"";
      "\"results\"";
      "\"rules\"";
      "logicalLocations";
      "deadgate";
    ];
  (* escaping: a netlist whose node names carry JSON-hostile chars *)
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"we\\ird\"name\n" x in
  let _g2 = B.buf b ~name:"dead \"cone\"" g in
  let _ = B.output b "o" g in
  ignore (check_doc (B.freeze_exn b))

let test_render_text_and_summary () =
  let o = Lint.run (messy_netlist ()) in
  let text = Format.asprintf "%a" Render.text o in
  Alcotest.(check bool) "text lists a code" true (contains text "SCAN-002");
  Alcotest.(check bool) "text has totals" true (contains text "findings");
  let summary = Format.asprintf "%a" Render.summary o in
  Alcotest.(check bool) "summary has counts" true (contains summary "rules fired");
  let cat = Format.asprintf "%a" Render.rules_catalogue Lint.registry in
  Alcotest.(check bool) "catalogue lists every rule" true
    (List.for_all
       (fun (r : Rule.t) -> contains cat r.Rule.code)
       Lint.registry)

(* ---------------------------------------------------------------- *)
(* Property: OBS-001 dead cone vs the Observe X-path engine         *)
(* ---------------------------------------------------------------- *)

(* Structurally dead (no path to any output) implies unobservable under
   the X-path analysis: Observe is optimistic, so any node it still
   calls observable must have a structural path — a contradiction. *)
let prop_obs_agrees_with_observe =
  QCheck2.Test.make ~count:75
    ~name:"OBS-001 dead cone is Observe-unobservable"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 5 60))
    (fun (seed, gates) ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates in
      let t = Olfu_atpg.Ternary.run nl in
      let obs =
        Olfu_atpg.Observe.run nl ~consts:t.Olfu_atpg.Ternary.values
      in
      let dead =
        match
          List.find_opt
            (fun (f : Rule.finding) -> f.Rule.code = "OBS-001")
            (Lint.findings nl)
        with
        | Some f -> f.Rule.path
        | None -> []
      in
      List.for_all (fun node -> not (Olfu_atpg.Observe.net obs node)) dead)

(* ---------------------------------------------------------------- *)
(* Generated cores are lint-clean                                   *)
(* ---------------------------------------------------------------- *)

let check_core_clean soc =
  let nl = Olfu_soc.Soc.generate soc in
  let o = Lint.run nl in
  List.iter
    (fun (f : Rule.finding) ->
      if f.Rule.severity <> Rule.Info then
        Alcotest.failf "%s: %s" f.Rule.code f.Rule.message)
    o.Lint.findings;
  Alcotest.(check bool) "passes --fail-on warning" false
    (Lint.fails ~fail_on:Rule.Warning o)

let test_tcore16_clean () = check_core_clean Olfu_soc.Soc.tcore16
let test_tcore32_clean () = check_core_clean Olfu_soc.Soc.tcore32
let test_tcore32_dft_clean () = check_core_clean Olfu_soc.Soc.tcore32_dft

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lint"
    [
      ( "engine",
        [
          Alcotest.test_case "clean netlist exact" `Quick test_clean_exact;
          Alcotest.test_case "registry invariants" `Quick test_registry;
        ] );
      ( "scan rules",
        [
          Alcotest.test_case "SCAN-001" `Quick test_scan_001;
          Alcotest.test_case "SCAN-002" `Quick test_scan_002;
          Alcotest.test_case "SCAN-003" `Quick test_scan_003;
          Alcotest.test_case "SCAN-004" `Quick test_scan_004;
          Alcotest.test_case "SCAN-005" `Quick test_scan_005;
          Alcotest.test_case "SCAN-006" `Quick test_scan_006;
          Alcotest.test_case "SCAN-007" `Quick test_scan_007;
          Alcotest.test_case "LOOP-001" `Quick test_loop_001;
          Alcotest.test_case "DRV-001" `Quick test_drv_001;
          Alcotest.test_case "DRV-002" `Quick test_drv_002;
        ] );
      ( "reset/clock rules",
        [
          Alcotest.test_case "RST-001/002" `Quick test_rst_001_002;
          Alcotest.test_case "RST-003" `Quick test_rst_003;
          Alcotest.test_case "RST-004" `Quick test_rst_004;
          Alcotest.test_case "RST-005" `Quick test_rst_005;
          Alcotest.test_case "RST-006" `Quick test_rst_006;
          Alcotest.test_case "CLK-001" `Quick test_clk_001;
        ] );
      ( "net/const rules",
        [
          Alcotest.test_case "NET-001/002" `Quick test_net_001_002;
          Alcotest.test_case "XPROP-001" `Quick test_xprop_001;
          Alcotest.test_case "CONST-001" `Quick test_const_001;
        ] );
      ( "observability rules",
        [
          Alcotest.test_case "OBS-001" `Quick test_obs_001;
          Alcotest.test_case "TEST-001" `Quick test_test_001;
          qt prop_obs_agrees_with_observe;
        ] );
      ( "debug rules",
        [
          Alcotest.test_case "DBG-001" `Quick test_dbg_001;
          Alcotest.test_case "DBG-002" `Quick test_dbg_002;
        ] );
      ( "structure rules",
        [
          Alcotest.test_case "STRUCT-001" `Quick test_struct_001;
          Alcotest.test_case "STRUCT-002" `Quick test_struct_002;
          Alcotest.test_case "SEU-001" `Quick test_seu_001;
          Alcotest.test_case "SLICE-001" `Quick test_slice_001;
          Alcotest.test_case "SLICE-002" `Quick test_slice_002;
          Alcotest.test_case "SW rules" `Quick test_sw_rules;
          Alcotest.test_case "SW assume into CONST-001" `Quick
            test_sw_assume_feeds_const_001;
        ] );
      ( "config",
        [
          Alcotest.test_case "disable" `Quick test_disable;
          Alcotest.test_case "severity override" `Quick test_severity_override;
          Alcotest.test_case "waiver parse" `Quick test_waiver_parse;
          Alcotest.test_case "waiver matching" `Quick test_waiver_matching;
          Alcotest.test_case "baseline" `Quick test_baseline;
        ] );
      ( "render",
        [
          Alcotest.test_case "json is valid" `Quick test_json_valid;
          Alcotest.test_case "text and summary" `Quick
            test_render_text_and_summary;
        ] );
      ( "cores",
        [
          Alcotest.test_case "tcore16" `Quick test_tcore16_clean;
          Alcotest.test_case "tcore32" `Slow test_tcore32_clean;
          Alcotest.test_case "tcore32_dft" `Slow test_tcore32_dft_clean;
        ] );
    ]
