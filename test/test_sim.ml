open Olfu_logic
open Olfu_netlist
open Olfu_sim
module B = Netlist.Builder

let l4 = Alcotest.testable Logic4.pp Logic4.equal

let test_adder_truth_table () =
  let nl = Test_support.full_adder () in
  let a = Netlist.find_exn nl "a"
  and b = Netlist.find_exn nl "b"
  and cin = Netlist.find_exn nl "cin"
  and sum = Netlist.find_exn nl "sum_net"
  and cout = Netlist.find_exn nl "cout_net" in
  for v = 0 to 7 do
    let bit k = Logic4.of_bool ((v lsr k) land 1 = 1) in
    let env = Comb_sim.init nl Logic4.X in
    env.(a) <- bit 0;
    env.(b) <- bit 1;
    env.(cin) <- bit 2;
    Comb_sim.settle nl env;
    let total = (v land 1) + ((v lsr 1) land 1) + ((v lsr 2) land 1) in
    Alcotest.check l4 "sum" (Logic4.of_bool (total land 1 = 1)) env.(sum);
    Alcotest.check l4 "cout" (Logic4.of_bool (total >= 2)) env.(cout)
  done

let test_x_propagation () =
  let nl = Test_support.full_adder () in
  let env = Comb_sim.init nl Logic4.X in
  env.(Netlist.find_exn nl "a") <- Logic4.L0;
  env.(Netlist.find_exn nl "b") <- Logic4.L0;
  (* cin unknown *)
  Comb_sim.settle nl env;
  Alcotest.check l4 "sum unknown" Logic4.X env.(Netlist.find_exn nl "sum_net");
  Alcotest.check l4 "cout known" Logic4.L0 env.(Netlist.find_exn nl "cout_net")

let shift_register () =
  let b = B.create () in
  let d = B.input b "d" in
  let f1 = B.dff b ~name:"f1" ~d in
  let f2 = B.dff b ~name:"f2" ~d:f1 in
  let f3 = B.dff b ~name:"f3" ~d:f2 in
  let _ = B.output b "q" f3 in
  B.freeze_exn b

let test_shift_register () =
  let nl = shift_register () in
  let sim = Seq_sim.create ~init:Logic4.L0 nl in
  Seq_sim.set_input_name sim "d" Logic4.L1;
  Seq_sim.step sim;
  Seq_sim.set_input_name sim "d" Logic4.L0;
  Seq_sim.step sim;
  Seq_sim.step sim;
  Seq_sim.settle sim;
  (* the 1 shifted to the last stage *)
  Alcotest.check l4 "f3" Logic4.L1 (Seq_sim.value_name sim "f3");
  Alcotest.check l4 "f2" Logic4.L0 (Seq_sim.value_name sim "f2")

let test_dffr_reset () =
  let b = B.create () in
  let d = B.input b "d" in
  let rstn = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let ff = B.dffr b ~name:"ff" ~d ~rstn in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  let sim = Seq_sim.create nl in
  Seq_sim.set_input_name sim "d" Logic4.L1;
  Seq_sim.set_input_name sim "rstn" Logic4.L0;
  Seq_sim.step sim;
  Seq_sim.settle sim;
  Alcotest.check l4 "reset dominates" Logic4.L0 (Seq_sim.value_name sim "ff");
  Seq_sim.set_input_name sim "rstn" Logic4.L1;
  Seq_sim.step sim;
  Seq_sim.settle sim;
  Alcotest.check l4 "captures d" Logic4.L1 (Seq_sim.value_name sim "ff")

let test_sdff_scan_shift () =
  let b = B.create () in
  let d = B.input b "d" in
  let si = B.input b "si" in
  let se = B.input b "se" in
  let ff = B.sdff b ~name:"ff" ~d ~si ~se in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  let sim = Seq_sim.create ~init:Logic4.L0 nl in
  Seq_sim.set_input_name sim "d" Logic4.L0;
  Seq_sim.set_input_name sim "si" Logic4.L1;
  Seq_sim.set_input_name sim "se" Logic4.L1;
  Seq_sim.step sim;
  Seq_sim.settle sim;
  Alcotest.check l4 "shift captured si" Logic4.L1 (Seq_sim.value_name sim "ff");
  Seq_sim.set_input_name sim "se" Logic4.L0;
  Seq_sim.step sim;
  Seq_sim.settle sim;
  Alcotest.check l4 "mission captured d" Logic4.L0 (Seq_sim.value_name sim "ff")

let test_dffr_x_reset_pessimism () =
  (* rstn unknown: the flop may or may not reset; only a 0 data value is
     certain (both alternatives agree) *)
  let b = B.create () in
  let d = B.input b "d" in
  let rstn = B.input b "rstn" in
  let ff = B.dffr b ~name:"ff" ~d ~rstn in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  let sim = Seq_sim.create ~init:Logic4.L1 nl in
  Seq_sim.set_input_name sim "d" Logic4.L1;
  Seq_sim.set_input_name sim "rstn" Logic4.X;
  Seq_sim.step sim;
  Seq_sim.settle sim;
  Alcotest.check l4 "d=1, rstn=X -> X" Logic4.X (Seq_sim.value_name sim "ff");
  Seq_sim.set_input_name sim "d" Logic4.L0;
  Seq_sim.step sim;
  Seq_sim.settle sim;
  Alcotest.check l4 "d=0, rstn=X -> 0" Logic4.L0 (Seq_sim.value_name sim "ff")

let test_set_state_and_errors () =
  let nl = shift_register () in
  let sim = Seq_sim.create nl in
  let f2 = Netlist.find_exn nl "f2" in
  Seq_sim.set_state sim f2 Logic4.L1;
  Seq_sim.settle sim;
  Alcotest.check l4 "forced state" Logic4.L1 (Seq_sim.value sim f2);
  (try
     Seq_sim.set_state sim (Netlist.find_exn nl "d") Logic4.L1;
     Alcotest.fail "expected error"
   with Invalid_argument _ -> ());
  (try
     Seq_sim.set_input sim f2 Logic4.L1;
     Alcotest.fail "expected error"
   with Invalid_argument _ -> ())

let prop_par_next_states_match =
  QCheck2.Test.make ~count:20 ~name:"parallel next-state = scalar"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_seq_netlist rng ~inputs:3 ~gates:10 ~flops:3 in
      (* drive identical values through both simulators *)
      let env = Comb_sim.init nl Logic4.X in
      let penv = Par_sim.init nl Dualrail.unknown in
      Array.iter
        (fun i ->
          let v = Logic4.of_bool (Random.State.bool rng) in
          env.(i) <- v;
          penv.(i) <- Dualrail.const v)
        (Netlist.inputs nl);
      Array.iter
        (fun i ->
          let v = Logic4.of_bool (Random.State.bool rng) in
          env.(i) <- v;
          penv.(i) <- Dualrail.const v)
        (Netlist.seq_nodes nl);
      Comb_sim.settle nl env;
      Par_sim.settle nl penv;
      let next_s = Comb_sim.next_states nl env in
      let next_p = Par_sim.next_states nl penv in
      Array.for_all2
        (fun (i1, v1) (i2, v2) ->
          i1 = i2 && Logic4.equal v1 (Dualrail.get v2 0))
        next_s next_p)

let test_override_injection () =
  (* force the carry net of the adder to 1 regardless of inputs *)
  let nl = Test_support.full_adder () in
  let cout = Netlist.find_exn nl "cout_net" in
  let env = Comb_sim.init nl Logic4.X in
  Array.iter (fun i -> env.(i) <- Logic4.L0) (Netlist.inputs nl);
  Comb_sim.settle_with nl env ~override:(fun i ->
      if i = cout then Some Logic4.L1 else None);
  Alcotest.check l4 "forced" Logic4.L1 env.(cout)

(* Parallel simulator agrees with 64 scalar runs. *)
let prop_par_matches_scalar =
  QCheck2.Test.make ~count:30 ~name:"bit-parallel = scalar x64"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, pat_seed) ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:5 ~gates:25 in
      let prng = Random.State.make [| pat_seed |] in
      let n = Netlist.length nl in
      (* random 64-lane stimulus on inputs, incl. some X lanes *)
      let penv = Par_sim.init nl Dualrail.unknown in
      let lanes_of_input = Hashtbl.create 7 in
      Array.iter
        (fun i ->
          let lanes =
            Array.init 64 (fun _ ->
                match Random.State.int prng 5 with
                | 0 -> Logic4.X
                | k -> Logic4.of_bool (k land 1 = 1))
          in
          Hashtbl.add lanes_of_input i lanes;
          penv.(i) <- Dualrail.of_lanes lanes)
        (Netlist.inputs nl);
      Par_sim.settle nl penv;
      let ok = ref true in
      for lane = 0 to 7 do
        (* spot-check 8 of the 64 lanes *)
        let env = Comb_sim.init nl Logic4.X in
        Array.iter
          (fun i -> env.(i) <- (Hashtbl.find lanes_of_input i).(lane))
          (Netlist.inputs nl);
        Comb_sim.settle nl env;
        for i = 0 to n - 1 do
          if not (Cell.equal_kind (Netlist.kind nl i) Cell.Input) then
            if not (Logic4.equal env.(i) (Dualrail.get penv.(i) lane)) then
              ok := false
        done
      done;
      !ok)

let test_toggle () =
  let b = B.create () in
  let i = B.input b "live" in
  let dead = B.input b "dead" in
  let g = B.and2 b ~name:"g" i dead in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  let sim = Seq_sim.create nl in
  let tog = Toggle.create nl in
  List.iter
    (fun v ->
      Seq_sim.set_input_name sim "live" v;
      Seq_sim.set_input_name sim "dead" Logic4.L0;
      Seq_sim.settle sim;
      Toggle.record tog sim)
    [ Logic4.L0; Logic4.L1 ];
  Alcotest.(check bool) "live toggled" true
    (Toggle.verdict tog (Netlist.find_exn nl "live") = Toggle.Toggled);
  (match Toggle.verdict tog (Netlist.find_exn nl "dead") with
  | Toggle.Constant v -> Alcotest.check l4 "dead const 0" Logic4.L0 v
  | _ -> Alcotest.fail "dead should be constant");
  Alcotest.(check (list int)) "suspects" [ Netlist.find_exn nl "dead" ]
    (Toggle.suspects tog)

let test_vcd_writer () =
  let nl = shift_register () in
  let sim = Seq_sim.create ~init:Logic4.L0 nl in
  let vcd = Vcd.create nl in
  List.iter
    (fun v ->
      Seq_sim.set_input_name sim "d" v;
      Seq_sim.settle sim;
      Vcd.sample vcd sim;
      Seq_sim.step sim)
    [ Logic4.L1; Logic4.L0; Logic4.L1; Logic4.L1 ];
  let s = Vcd.to_string vcd in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "$enddefinitions");
  Alcotest.(check bool) "declares f2" true (contains " f2 $end");
  Alcotest.(check bool) "dumpvars" true (contains "$dumpvars");
  Alcotest.(check bool) "timesteps" true (contains "#3");
  (* value changes only on change: the constant-0 f3 appears once *)
  let count_sub sub =
    let n = ref 0 in
    let ls = String.length sub in
    for i = 0 to String.length s - ls do
      if String.sub s i ls = sub then incr n
    done;
    !n
  in
  ignore (count_sub "x" : int);
  Alcotest.(check bool) "nonempty body" true (String.length s > 200)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim"
    [
      ( "comb",
        [
          Alcotest.test_case "adder truth table" `Quick test_adder_truth_table;
          Alcotest.test_case "x propagation" `Quick test_x_propagation;
          Alcotest.test_case "override injection" `Quick test_override_injection;
        ] );
      ( "seq",
        [
          Alcotest.test_case "shift register" `Quick test_shift_register;
          Alcotest.test_case "dffr reset" `Quick test_dffr_reset;
          Alcotest.test_case "sdff scan shift" `Quick test_sdff_scan_shift;
          Alcotest.test_case "x reset pessimism" `Quick
            test_dffr_x_reset_pessimism;
          Alcotest.test_case "set_state + errors" `Quick
            test_set_state_and_errors;
        ] );
      ( "par",
        [ qt prop_par_matches_scalar; qt prop_par_next_states_match ] );
      ("toggle", [ Alcotest.test_case "activity" `Quick test_toggle ]);
      ("vcd", [ Alcotest.test_case "writer" `Quick test_vcd_writer ]);
    ]
