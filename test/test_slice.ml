open Olfu_logic
open Olfu_netlist
module B = Netlist.Builder
module Slice = Olfu_slice.Slice
module Bmc = Olfu_atpg.Bmc
module Fault = Olfu_fault.Fault
module Seq_sim = Olfu_sim.Seq_sim

(* --- severing on the paper's mission cells --- *)

(* Fig. 2 scan cell in mission: SE tied 0 means the flop never reads SI,
   so the hard slice keeps only FI while the structural one keeps both *)
let test_scan_severing () =
  let nl, ff = Test_support.scan_cell_mission () in
  let g = Slice.build nl in
  let fi = Netlist.find_exn nl "FI" and si = Netlist.find_exn nl "SI" in
  let k = g.Slice.ford.(ff) in
  Alcotest.(check (list int))
    "structural reads FI and SI" [ fi; si ]
    (Array.to_list g.Slice.structural.Slice.in_deps.(k));
  Alcotest.(check (list int))
    "hard slice reads FI only" [ fi ]
    (Array.to_list g.Slice.hard_edges.Slice.in_deps.(k));
  Alcotest.(check (list int))
    "mission slice reads FI only" [ fi ]
    (Array.to_list g.Slice.mission_edges.Slice.in_deps.(k))

(* Fig. 4 debug mux in mission: DE tied 0 selects FI, so the DI branch
   of the mux disappears from the severed slice *)
let test_mux_severing () =
  let nl, _mux, ff = Test_support.debug_cell_mission () in
  let g = Slice.build nl in
  let fi = Netlist.find_exn nl "FI" and di = Netlist.find_exn nl "DI" in
  let k = g.Slice.ford.(ff) in
  Alcotest.(check (list int))
    "structural reads FI and DI" [ fi; di ]
    (Array.to_list g.Slice.structural.Slice.in_deps.(k));
  Alcotest.(check (list int))
    "hard slice reads FI only" [ fi ]
    (Array.to_list g.Slice.hard_edges.Slice.in_deps.(k))

(* --- reduced machines --- *)

let test_backward_machine () =
  let nl, ff = Test_support.scan_cell_mission () in
  let g = Slice.build nl in
  let r = Slice.backward g ~targets:[ ff ] in
  let rnl = r.Slice.rnl in
  (* SI is dead logic in the slice *)
  Alcotest.(check bool) "SI dropped" true (Netlist.find rnl "SI" = None);
  let nff = r.Slice.new_of_old.(ff) in
  Alcotest.(check bool) "ff kept" true (nff >= 0);
  Alcotest.(check string) "kind preserved" "SDFF"
    (Cell.kind_name (Netlist.kind rnl nff));
  (* d mapped, si severed to a fresh X, se rewired to its constant *)
  let fi = Netlist.fanin rnl nff in
  Alcotest.(check string) "d pin is the mapped FI" "INPUT"
    (Cell.kind_name (Netlist.kind rnl fi.(0)));
  Alcotest.(check string) "si pin severed to Tiex" "TIEX"
    (Cell.kind_name (Netlist.kind rnl fi.(1)));
  Alcotest.(check string) "se pin tied to 0" "TIE0"
    (Cell.kind_name (Netlist.kind rnl fi.(2)));
  Slice.certify g r

let test_get_memoized () =
  let nl, _ = Test_support.scan_cell_mission () in
  Alcotest.(check bool) "same graph" true (Slice.get nl == Slice.get nl)

(* ring walker: three flops in one feedback loop form one SCC *)
let ring3 () =
  let b = B.create () in
  let rstn = B.input ~roles:[ Netlist.Reset ] b "rstn" in
  let ph = B.tie b Logic4.L0 in
  let st =
    Array.init 3 (fun i ->
        B.dffr b ~name:(Printf.sprintf "st[%d]" i) ~d:ph ~rstn)
  in
  let idle = B.nor2 b (B.or2 b st.(0) st.(1)) st.(2) in
  B.set_fanin b st.(0) [| idle; rstn |];
  B.set_fanin b st.(1) [| st.(0); rstn |];
  B.set_fanin b st.(2) [| st.(1); rstn |];
  let _ = B.output b "FO" (B.or2 b st.(2) st.(0)) in
  B.freeze_exn b

let test_scc_ring () =
  let nl = ring3 () in
  let g = Slice.build nl in
  let c = Slice.scc g.Slice.hard_edges (Array.length g.Slice.flops) in
  Alcotest.(check int) "one component" 1 (Array.length c.Slice.comps);
  Alcotest.(check int) "of size 3" 3 (Array.length c.Slice.comps.(0));
  let sizes = Slice.backward_sizes g g.Slice.hard_edges in
  Array.iter (fun s -> Alcotest.(check int) "slice size 3" 3 s) sizes;
  let dot = Slice.condensation_dot g g.Slice.hard_edges in
  Alcotest.(check bool) "dot mentions the component" true
    (String.length dot > 0)

let test_forward_isolates () =
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let ffa = B.dff b ~name:"ffa" ~d:a in
  let ffb = B.dff b ~name:"ffb" ~d:bb in
  let _ = B.output b "oA" ffa in
  let _ = B.output b "oB" ffb in
  let nl = B.freeze_exn b in
  let g = Slice.build nl in
  let r = Slice.forward g ~sources:[ ffa ] in
  Alcotest.(check bool) "oA kept" true (Netlist.find r.Slice.rnl "oA" <> None);
  Alcotest.(check bool) "ffb dropped" true
    (Netlist.find r.Slice.rnl "ffb" = None);
  Alcotest.(check bool) "oB dropped" true
    (Netlist.find r.Slice.rnl "oB" = None)

(* --- sliced BMC oracle --- *)

let same_ctor a b =
  match (a, b) with
  | Bmc.Test _, Bmc.Test _ -> true
  | Bmc.No_test_within _, Bmc.No_test_within _ -> true
  | Bmc.Unknown, Bmc.Unknown -> true
  | _ -> false

let check_oracle ?(cycles = 4) nl =
  let g = Slice.build nl in
  let faults =
    Array.to_list (Fault.universe nl)
    |> List.filter (fun f -> f.Fault.site.Fault.pin <> Cell.Pin.Clk)
  in
  List.for_all
    (fun f ->
      let full = Bmc.run ~cycles nl f in
      let sliced = Slice.oracle ~cycles g f in
      let ctor = function
        | Bmc.Test _ -> "test"
        | Bmc.No_test_within _ -> "no-test"
        | Bmc.Unknown -> "unknown"
      in
      let ok = same_ctor full sliced in
      (if ok then
         (* a sliced stimulus must replay on the FULL machine whenever the
            full machine's own stimulus does (replay of either can fail
            legitimately when detection leans on a free power-up state
            the L0-init simulator cannot reach) *)
         match (sliced, full) with
         | Bmc.Test stim, Bmc.Test fstim ->
           Bmc.confirm_test nl f stim
           || (not (Bmc.confirm_test nl f fstim))
           ||
           (Format.printf "oracle replay failed on %a@." (Fault.pp nl) f;
            false)
         | _ -> true
       else begin
         Format.printf "oracle mismatch on %a: full %s, sliced %s@."
           (Fault.pp nl) f (ctor full) (ctor sliced);
         false
       end)
      || false)
    faults

let test_oracle_redundant () =
  let nl = Test_support.redundant_circuit () in
  Alcotest.(check bool) "verdicts match" true (check_oracle nl)

let test_oracle_scan_cell () =
  let nl, _ = Test_support.scan_cell_mission () in
  Alcotest.(check bool) "verdicts match" true (check_oracle nl)

(* --- properties on random sequential machines --- *)

(* sliced and full BMC agree fault-by-fault, and sliced witnesses replay *)
let prop_oracle_equiv =
  QCheck2.Test.make ~count:8 ~name:"sliced oracle = full BMC"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl =
        Test_support.random_seq_netlist rng ~inputs:3 ~gates:10 ~flops:3
      in
      let g = Slice.build nl in
      let faults =
        Array.to_list (Fault.universe nl)
        |> List.filter (fun f -> f.Fault.site.Fault.pin <> Cell.Pin.Clk)
      in
      (* cap the per-case fault count to keep the property quick *)
      let faults = List.filteri (fun i _ -> i mod 7 = 0) faults in
      List.for_all
        (fun f ->
          let full = Bmc.run ~cycles:3 nl f in
          let sliced = Slice.oracle ~cycles:3 g f in
          same_ctor full sliced
          &&
          match (sliced, full) with
          | Bmc.Test stim, Bmc.Test fstim ->
            Bmc.confirm_test nl f stim
            || not (Bmc.confirm_test nl f fstim)
          | _ -> true)
        faults)

(* the reduced machine is a stuttering-free projection: with reset held
   inactive and identical inputs, every kept output matches cycle by
   cycle (hard constants hold in any such run) *)
let prop_backward_sim_equiv =
  QCheck2.Test.make ~count:20 ~name:"backward slice simulates identically"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl =
        Test_support.random_seq_netlist rng ~inputs:3 ~gates:12 ~flops:3
      in
      let g = Slice.build nl in
      let r =
        Slice.backward g ~targets:(Array.to_list (Netlist.outputs nl))
      in
      let rnl = r.Slice.rnl in
      let sim = Seq_sim.create ~init:Logic4.L0 nl in
      let rsim = Seq_sim.create ~init:Logic4.L0 rnl in
      let ok = ref true in
      for _cycle = 0 to 5 do
        (* same named input gets the same value in both machines *)
        Array.iter
          (fun i ->
            let v =
              if Netlist.has_role nl i Netlist.Reset then Logic4.L1
              else if Random.State.bool rng then Logic4.L1
              else Logic4.L0
            in
            Seq_sim.set_input sim i v;
            match Netlist.name nl i with
            | Some n when Netlist.find rnl n <> None ->
              Seq_sim.set_input_name rsim n v
            | _ -> ())
          (Netlist.inputs nl);
        Seq_sim.settle sim;
        Seq_sim.settle rsim;
        Array.iter
          (fun o ->
            match Netlist.name rnl o with
            | Some n ->
              if Seq_sim.value_name sim n <> Seq_sim.value_name rsim n then
                ok := false
            | None -> ())
          (Netlist.outputs rnl);
        Seq_sim.step sim;
        Seq_sim.step rsim
      done;
      !ok)

(* per-flop SEU verdicts on the slice match the full-machine encoding *)
let prop_seu_sliced_equiv =
  QCheck2.Test.make ~count:10 ~name:"sliced SEU = full SEU"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl =
        Test_support.random_seq_netlist rng ~inputs:3 ~gates:12 ~flops:4
      in
      let full = Olfu_safety.Seu.run ~window:3 ~jobs:1 ~sliced:false nl in
      let sliced = Olfu_safety.Seu.run ~window:3 ~jobs:1 ~sliced:true nl in
      Array.for_all2
        (fun (a : Olfu_safety.Seu.ff_result) (b : Olfu_safety.Seu.ff_result) ->
          a.Olfu_safety.Seu.ff = b.Olfu_safety.Seu.ff
          && a.Olfu_safety.Seu.cls = b.Olfu_safety.Seu.cls
          && a.Olfu_safety.Seu.structural = b.Olfu_safety.Seu.structural)
        full.Olfu_safety.Seu.results sliced.Olfu_safety.Seu.results)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "slice"
    [
      ( "severing",
        [
          Alcotest.test_case "scan cell" `Quick test_scan_severing;
          Alcotest.test_case "debug mux" `Quick test_mux_severing;
        ] );
      ( "machine",
        [
          Alcotest.test_case "backward" `Quick test_backward_machine;
          Alcotest.test_case "memoized" `Quick test_get_memoized;
          Alcotest.test_case "scc ring" `Quick test_scc_ring;
          Alcotest.test_case "forward" `Quick test_forward_isolates;
          qt prop_backward_sim_equiv;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "redundant comb" `Quick test_oracle_redundant;
          Alcotest.test_case "scan cell" `Quick test_oracle_scan_cell;
          qt prop_oracle_equiv;
          qt prop_seu_sliced_equiv;
        ] );
    ]
