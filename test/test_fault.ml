open Olfu_netlist
open Olfu_fault
module B = Netlist.Builder

let test_universe_counts () =
  (* A single 2-input AND with two inputs and one output marker:
     pins = 2 PI stems + (AND out + 2 ins) + output-marker branch = 6 pins,
     12 faults. *)
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g = B.and2 b ~name:"g" x y in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  Alcotest.(check int) "12 faults" 12 (Fault.universe_size nl)

let test_universe_clock_pins () =
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"ff" ~d in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  (* d stem, ff out, ff clk, ff D pin, marker branch = 5 pins *)
  Alcotest.(check int) "10 faults" 10 (Fault.universe_size nl);
  let u = Fault.universe nl in
  Alcotest.(check bool) "has clk fault" true
    (Array.exists (fun f -> f.Fault.site.Fault.pin = Cell.Pin.Clk) u)

let test_ties_excluded () =
  let b = B.create () in
  let t = B.tie b Olfu_logic.Logic4.L1 in
  let x = B.input b "x" in
  let g = B.and2 b x t in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  let without = Fault.universe_size nl in
  let with_ties = Fault.universe_size ~include_ties:true nl in
  Alcotest.(check int) "tie adds out pin" (without + 2) with_ties

let test_fault_printing () =
  let b = B.create () in
  let d = B.input b "d" in
  let si = B.input b "si" in
  let se = B.input b "se" in
  let ff = B.sdff b ~name:"u1" ~d ~si ~se in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  Alcotest.(check string) "si fault" "u1(SDFF)/SI s@1"
    (Fault.to_string nl (Fault.sa1 ff (Cell.Pin.In 1)));
  Alcotest.(check string) "clk fault" "u1(SDFF)/CK s@0"
    (Fault.to_string nl (Fault.sa0 ff Cell.Pin.Clk))

let test_site_net () =
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b x in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  Alcotest.(check int) "stem" g
    (Fault.site_net nl { Fault.node = g; pin = Cell.Pin.Out });
  Alcotest.(check int) "branch" x
    (Fault.site_net nl { Fault.node = g; pin = Cell.Pin.In 0 })

let test_flist_basics () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  Alcotest.(check int) "status init" (Flist.size fl)
    (Flist.count_status fl Status.Not_analyzed);
  Flist.set_status fl 0 Status.Detected;
  Flist.set_status fl 1 (Status.Undetectable Status.Tied);
  Alcotest.(check int) "one DT" 1 (Flist.count_status fl Status.Detected);
  let fc = Flist.fault_coverage fl in
  Alcotest.(check bool) "fc > 0" true (fc > 0.);
  let tfc = Flist.testable_coverage fl in
  Alcotest.(check bool) "testable fc > raw fc" true (tfc > fc);
  let pruned = Flist.prune_undetectable fl in
  Alcotest.(check int) "pruned size" (Flist.size fl - 1) (Flist.size pruned)

let test_flist_classify_if () =
  let nl = Test_support.full_adder () in
  let fl = Flist.full nl in
  Flist.set_status fl 0 Status.Detected;
  let changed =
    Flist.classify_if fl
      (Status.Undetectable Status.Unused)
      ~keep:(fun s -> Status.equal s Status.Not_analyzed)
      (fun _ -> true)
  in
  (* everything but the already-detected fault *)
  Alcotest.(check int) "kept detected" (Flist.size fl - 1) changed;
  Alcotest.(check int) "detected still there" 1
    (Flist.count_status fl Status.Detected)

let test_flist_duplicate_rejected () =
  let nl = Test_support.full_adder () in
  let f = Fault.sa0 0 Cell.Pin.Out in
  try
    ignore (Flist.create nl [| f; f |] : Flist.t);
    Alcotest.fail "expected duplicate rejection"
  with Invalid_argument _ -> ()

let test_collapse_inverter_chain () =
  (* i -> NOT -> NOT -> o : all 4 line faults collapse pairwise through the
     inverters, and single-fanout stems merge with their branches. *)
  let b = B.create () in
  let i = B.input b "i" in
  let g1 = B.not_ b i in
  let g2 = B.not_ b g1 in
  let _ = B.output b "o" g2 in
  let nl = B.freeze_exn b in
  let fl = Flist.full nl in
  let c = Collapse.compute fl in
  (* The whole chain is one equivalence class per polarity. *)
  Alcotest.(check int) "2 classes" 2 (Collapse.num_classes c)

let test_collapse_and_gate () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g = B.and2 b x y in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  let fl = Flist.full nl in
  let c = Collapse.compute fl in
  let idx f = Option.get (Flist.find fl f) in
  (* in s@0 ≡ out s@0 for AND *)
  Alcotest.(check bool) "in0 sa0 ~ out sa0" true
    (Collapse.same_class c
       (idx (Fault.sa0 g (Cell.Pin.In 0)))
       (idx (Fault.sa0 g Cell.Pin.Out)));
  Alcotest.(check bool) "in0 sa1 !~ out sa1" false
    (Collapse.same_class c
       (idx (Fault.sa1 g (Cell.Pin.In 0)))
       (idx (Fault.sa1 g Cell.Pin.Out)));
  (* 12 faults: classes = {x stem+branch sa0 + g out sa0 + y stem+branch sa0}
     is wrong — x sa0 joins through its single branch to g.in0 sa0 which
     joins g.out sa0, and same for y: one big sa0 class; sa1s stay apart
     except stem/branch merges. *)
  let out_sa0 = idx (Fault.sa0 g Cell.Pin.Out) in
  Alcotest.(check bool) "x sa0 ~ out sa0" true
    (Collapse.same_class c (idx (Fault.sa0 x Cell.Pin.Out)) out_sa0);
  Alcotest.(check bool) "x sa1 ~ its branch" true
    (Collapse.same_class c
       (idx (Fault.sa1 x Cell.Pin.Out))
       (idx (Fault.sa1 g (Cell.Pin.In 0))))

let test_collapse_spread () =
  let b = B.create () in
  let i = B.input b "i" in
  let g1 = B.not_ b i in
  let _ = B.output b "o" g1 in
  let nl = B.freeze_exn b in
  let fl = Flist.full nl in
  let c = Collapse.compute fl in
  let reps = Collapse.representatives c in
  List.iter (fun r -> Flist.set_status fl r Status.Detected) reps;
  Collapse.spread c fl;
  Alcotest.(check int) "all detected" (Flist.size fl)
    (Flist.count_status fl Status.Detected)

let test_status_codes () =
  Alcotest.(check string) "DT" "DT" (Status.code Status.Detected);
  Alcotest.(check string) "UT" "UT" (Status.code (Status.Undetectable Status.Tied));
  Alcotest.(check string) "UB" "UB"
    (Status.code (Status.Undetectable Status.Blocked));
  Alcotest.(check bool) "UD check" true
    (Status.is_undetectable (Status.Undetectable Status.Redundant));
  Alcotest.(check bool) "DT not UD" false (Status.is_undetectable Status.Detected)

let prop_universe_even_and_sorted =
  QCheck2.Test.make ~count:30 ~name:"universe: sorted, unique, 2 per pin"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:20 in
      let u = Fault.universe nl in
      Array.length u mod 2 = 0
      &&
      let ok = ref true in
      for i = 1 to Array.length u - 1 do
        if Fault.compare u.(i - 1) u.(i) >= 0 then ok := false
      done;
      !ok)

let test_dominance_pairs () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g = B.and2 b ~name:"g" x y in
  let h = B.nor2 b ~name:"h" g x in
  let _ = B.output b "o" h in
  let nl = B.freeze_exn b in
  let fl = Flist.full nl in
  let pairs = Collapse.dominance_pairs fl in
  let idx f = Option.get (Flist.find fl f) in
  (* AND: out s@1 dominated by each in s@1 *)
  Alcotest.(check bool) "and pair" true
    (List.mem (idx (Fault.sa1 g Cell.Pin.Out), idx (Fault.sa1 g (Cell.Pin.In 0))) pairs);
  (* NOR: out s@1 dominated by in s@0 *)
  Alcotest.(check bool) "nor pair" true
    (List.mem (idx (Fault.sa1 h Cell.Pin.Out), idx (Fault.sa0 h (Cell.Pin.In 1))) pairs);
  let pruned = Collapse.dominance_prune fl in
  Alcotest.(check int) "pruned two dominators (and, nor)" 2 pruned

let test_dominance_prune_semantics () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let g = B.and2 b ~name:"g" x y in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  let idx fl f = Option.get (Flist.find fl f) in
  (* a pre-classified dominator is left alone *)
  let fl = Flist.full nl in
  let dom = idx fl (Fault.sa1 g Cell.Pin.Out) in
  Flist.set_status fl dom Status.Detected;
  let _ = Collapse.dominance_prune fl in
  Alcotest.(check bool) "classified dominator untouched" true
    (Status.equal (Flist.status fl dom) Status.Detected);
  (* a dominator whose dominated fault left the target set is kept as a
     target: nothing else implies it any more *)
  let fl = Flist.full nl in
  List.iter
    (fun (dominator, dominated) ->
      if dominator = idx fl (Fault.sa1 g Cell.Pin.Out) then
        Flist.set_status fl dominated
          (Status.Undetectable Status.Redundant))
    (Collapse.dominance_pairs fl);
  let _ = Collapse.dominance_prune fl in
  Alcotest.(check bool) "dominator without live dominated kept" true
    (Status.equal (Flist.status fl dom) Status.Not_analyzed)

(* prune marks exactly the counted faults, and a second pass finds
   nothing left to do *)
let prop_dominance_prune_count =
  QCheck2.Test.make ~count:20 ~name:"dominance prune: count exact, idempotent"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:15 in
      let fl = Flist.full nl in
      let before = Flist.count_status fl Status.Not_detected in
      let n = Collapse.dominance_prune fl in
      let after = Flist.count_status fl Status.Not_detected in
      after - before = n
      && n
         = List.length
             (List.sort_uniq compare
                (List.filter_map
                   (fun (dominator, _) ->
                     if
                       Status.equal
                         (Flist.status fl dominator)
                         Status.Not_detected
                     then Some dominator
                     else None)
                   (Collapse.dominance_pairs fl)))
      && Collapse.dominance_prune fl = 0)

(* dominance is semantically sound: any pattern detecting the dominated
   fault also detects the dominator *)
let prop_dominance_sound =
  QCheck2.Test.make ~count:10 ~name:"dominance sound under fault sim"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:15 in
      let fl = Flist.full nl in
      let pairs = Collapse.dominance_pairs fl in
      let ok = ref true in
      List.iteri
        (fun k (dominator, dominated) ->
          if k < 12 then begin
            (* find one pattern detecting the dominated fault *)
            let fd = Flist.fault fl dominated in
            let fm = Flist.fault fl dominator in
            let pats = Olfu_fsim.Comb_fsim.random_patterns ~seed nl 128 in
            Array.iter
              (fun p ->
                if Olfu_fsim.Comb_fsim.detects nl fd p then
                  if not (Olfu_fsim.Comb_fsim.detects nl fm p) then ok := false)
              pats
          end)
        pairs;
      !ok)

(* --- transition-delay fault model --- *)

let test_tdf_universe () =
  let nl = Test_support.full_adder () in
  let sa = Fault.universe nl in
  let td = Tdf.universe nl in
  (* same pin set, two faults per pin in both models *)
  Alcotest.(check int) "same size" (Array.length sa) (Array.length td);
  (* sorted and unique *)
  let ok = ref true in
  for i = 1 to Array.length td - 1 do
    if Tdf.compare td.(i - 1) td.(i) >= 0 then ok := false
  done;
  Alcotest.(check bool) "sorted" true !ok

let test_tdf_printing_and_pair () =
  let b = B.create () in
  let d = B.input b "d" in
  let ff = B.dff b ~name:"u1" ~d in
  let _ = B.output b "q" ff in
  let nl = B.freeze_exn b in
  let f =
    { Tdf.site = { Fault.node = ff; pin = Cell.Pin.In 0 };
      polarity = Tdf.Slow_to_rise }
  in
  Alcotest.(check string) "str name" "u1(DFF)/D STR" (Tdf.to_string nl f);
  let sa0, sa1 = Tdf.as_stuck_pair f in
  Alcotest.(check bool) "pair site" true
    (sa0.Fault.site = f.Tdf.site && sa1.Fault.site = f.Tdf.site);
  Alcotest.(check bool) "pair polarity" true
    ((not sa0.Fault.stuck) && sa1.Fault.stuck)

(* Equivalent faults are indistinguishable by any test, so after fault
   simulating the same patterns every member of a class must end with the
   same detection verdict. *)
let prop_collapse_respected_by_fsim =
  QCheck2.Test.make ~count:15 ~name:"collapsed classes agree under fault sim"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:18 in
      let fl = Flist.full nl in
      let c = Collapse.compute fl in
      ignore
        (Olfu_fsim.Comb_fsim.run nl fl
           (Olfu_fsim.Comb_fsim.random_patterns ~seed nl 192)
          : Olfu_fsim.Comb_fsim.report);
      let ok = ref true in
      List.iter
        (fun r ->
          let detected i = Status.equal (Flist.status fl i) Status.Detected in
          let members = Collapse.class_members c r in
          match members with
          | [] -> ()
          | m0 :: rest ->
            List.iter
              (fun m -> if detected m <> detected m0 then ok := false)
              rest)
        (Collapse.representatives c);
      !ok)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fault"
    [
      ( "universe",
        [
          Alcotest.test_case "counts" `Quick test_universe_counts;
          Alcotest.test_case "clock pins" `Quick test_universe_clock_pins;
          Alcotest.test_case "ties excluded" `Quick test_ties_excluded;
          Alcotest.test_case "printing" `Quick test_fault_printing;
          Alcotest.test_case "site net" `Quick test_site_net;
          qt prop_universe_even_and_sorted;
        ] );
      ( "flist",
        [
          Alcotest.test_case "basics" `Quick test_flist_basics;
          Alcotest.test_case "classify_if" `Quick test_flist_classify_if;
          Alcotest.test_case "duplicates" `Quick test_flist_duplicate_rejected;
          Alcotest.test_case "status codes" `Quick test_status_codes;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "pairs + prune" `Quick test_dominance_pairs;
          Alcotest.test_case "prune semantics" `Quick
            test_dominance_prune_semantics;
          qt prop_dominance_prune_count;
          qt prop_dominance_sound;
        ] );
      ( "tdf",
        [
          Alcotest.test_case "universe" `Quick test_tdf_universe;
          Alcotest.test_case "printing + pair" `Quick test_tdf_printing_and_pair;
        ] );
      ( "collapse",
        [
          Alcotest.test_case "inverter chain" `Quick test_collapse_inverter_chain;
          Alcotest.test_case "and gate" `Quick test_collapse_and_gate;
          Alcotest.test_case "spread" `Quick test_collapse_spread;
          qt prop_collapse_respected_by_fsim;
        ] );
    ]
