module Pool = Olfu_pool.Pool

(* Every index in [0, n) must be visited exactly once, whatever the worker
   count or chunk size. *)
let check_coverage ~jobs ~n ?chunk () =
  Pool.with_pool ~jobs (fun p ->
      let hits = Array.make (max n 1) 0 in
      let m = Mutex.create () in
      Pool.parallel_chunks p ~n ?chunk (fun ~worker ~lo ~hi ->
          Alcotest.(check bool) "worker id in range" true
            (worker >= 0 && worker < Pool.jobs p);
          Mutex.lock m;
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done;
          Mutex.unlock m);
      for i = 0 to n - 1 do
        if hits.(i) <> 1 then
          Alcotest.failf "index %d visited %d times (jobs=%d n=%d)" i
            hits.(i) jobs n
      done)

let test_full_coverage () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n -> check_coverage ~jobs ~n ())
        [ 0; 1; 7; 64; 1000 ];
      check_coverage ~jobs ~n:100 ~chunk:1 ();
      check_coverage ~jobs ~n:100 ~chunk:33 ();
      check_coverage ~jobs ~n:100 ~chunk:1000 ())
    [ 1; 2; 3; 4 ]

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun p ->
      Alcotest.(check int) "clamped to 1" 1 (Pool.jobs p));
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "as requested" 3 (Pool.jobs p))

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let raised =
            try
              Pool.parallel_chunks p ~n:100 ~chunk:5
                (fun ~worker:_ ~lo:_ ~hi ->
                  if hi >= 50 then raise (Boom hi));
              false
            with Boom _ -> true
          in
          Alcotest.(check bool) "exception re-raised at the barrier" true
            raised;
          (* the pool must still be usable afterwards *)
          let sum = Atomic.make 0 in
          Pool.parallel_chunks p ~n:10 (fun ~worker:_ ~lo ~hi ->
              for i = lo to hi - 1 do
                ignore (Atomic.fetch_and_add sum i : int)
              done);
          Alcotest.(check int) "pool survives a failed section" 45
            (Atomic.get sum)))
    [ 1; 2; 4 ]

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 in
  Pool.parallel_chunks p ~n:5 (fun ~worker:_ ~lo:_ ~hi:_ -> ());
  Pool.shutdown p;
  Pool.shutdown p;
  let rejected =
    try
      Pool.parallel_chunks p ~n:100 ~chunk:5 (fun ~worker:_ ~lo:_ ~hi:_ -> ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "parallel section after shutdown rejected" true
    rejected

let test_default_jobs_clamp () =
  (* default_jobs only reads OLFU_JOBS; whatever it returns must be a
     legal worker count *)
  let j = Pool.default_jobs () in
  Alcotest.(check bool) "default in [1,64]" true (j >= 1 && j <= 64)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "full index coverage" `Quick test_full_coverage;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_clamp;
        ] );
    ]
