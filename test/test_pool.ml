module Pool = Olfu_pool.Pool

(* Every index in [0, n) must be visited exactly once, whatever the worker
   count or chunk size.  [oversubscribe] so the multi-domain scheduler is
   exercised even on a single-core host. *)
let check_coverage ~jobs ~n ?chunk () =
  Pool.with_pool ~oversubscribe:true ~jobs (fun p ->
      let hits = Array.make (max n 1) 0 in
      let m = Mutex.create () in
      Pool.parallel_chunks p ~n ?chunk (fun ~worker ~lo ~hi ->
          Alcotest.(check bool) "worker id in range" true
            (worker >= 0 && worker < Pool.jobs p);
          Mutex.lock m;
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done;
          Mutex.unlock m);
      for i = 0 to n - 1 do
        if hits.(i) <> 1 then
          Alcotest.failf "index %d visited %d times (jobs=%d n=%d)" i
            hits.(i) jobs n
      done)

let test_full_coverage () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n -> check_coverage ~jobs ~n ())
        [ 0; 1; 7; 64; 1000 ];
      check_coverage ~jobs ~n:100 ~chunk:1 ();
      check_coverage ~jobs ~n:100 ~chunk:33 ();
      check_coverage ~jobs ~n:100 ~chunk:1000 ())
    [ 1; 2; 3; 4 ]

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun p ->
      Alcotest.(check int) "clamped to 1" 1 (Pool.jobs p));
  Pool.with_pool ~oversubscribe:true ~jobs:3 (fun p ->
      Alcotest.(check int) "as requested when oversubscribed" 3 (Pool.jobs p));
  Pool.with_pool ~jobs:64 (fun p ->
      Alcotest.(check int) "clamped to the hardware"
        (min 64 (Pool.hardware_jobs ()))
        (Pool.jobs p))

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~oversubscribe:true ~jobs (fun p ->
          let raised =
            try
              Pool.parallel_chunks p ~n:100 ~chunk:5
                (fun ~worker:_ ~lo:_ ~hi ->
                  if hi >= 50 then raise (Boom hi));
              false
            with Boom _ -> true
          in
          Alcotest.(check bool) "exception re-raised at the barrier" true
            raised;
          (* the pool must still be usable afterwards *)
          let sum = Atomic.make 0 in
          Pool.parallel_chunks p ~n:10 (fun ~worker:_ ~lo ~hi ->
              for i = lo to hi - 1 do
                ignore (Atomic.fetch_and_add sum i : int)
              done);
          Alcotest.(check int) "pool survives a failed section" 45
            (Atomic.get sum)))
    [ 1; 2; 4 ]

let test_shutdown_idempotent () =
  let p = Pool.create ~oversubscribe:true ~jobs:3 () in
  Pool.parallel_chunks p ~n:5 (fun ~worker:_ ~lo:_ ~hi:_ -> ());
  Pool.shutdown p;
  Pool.shutdown p;
  let rejected =
    try
      Pool.parallel_chunks p ~n:100 ~chunk:5 (fun ~worker:_ ~lo:_ ~hi:_ -> ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "parallel section after shutdown rejected" true
    rejected

let test_default_jobs_clamp () =
  (* default_jobs only reads OLFU_JOBS; whatever it returns must be a
     legal worker count *)
  let j = Pool.default_jobs () in
  Alcotest.(check bool) "default in [1,64]" true (j >= 1 && j <= 64)

(* --- work stealing ------------------------------------------------- *)

let spin_until ?(timeout = 20.) cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

(* Item 0 blocks until every other item is done.  With [chunk:1] the
   blocked worker holds only item 0, so the remainder of its pre-split
   range is completable only if the sibling steals it: the test passes
   iff stealing actually steals (and times out into a failure, not a
   deadlock, otherwise). *)
let test_steal_liveness () =
  Pool.with_pool ~oversubscribe:true ~jobs:2 (fun p ->
      let n = 200 in
      let done_ = Atomic.make 0 in
      Pool.parallel_chunks p ~n ~chunk:1 (fun ~worker:_ ~lo ~hi:_ ->
          if lo = 0 then begin
            if not (spin_until (fun () -> Atomic.get done_ = n - 1)) then
              Alcotest.failf
                "worker exited with a sibling's range non-empty: %d/%d \
                 items done"
                (Atomic.get done_) (n - 1)
          end
          else ignore (Atomic.fetch_and_add done_ 1 : int));
      Alcotest.(check bool) "at least one steal happened" true
        (Pool.last_steals p >= 1))

(* Exception raised from a *stolen* range: worker 0 blocks on item 0, so
   its range can only be processed by the thief; the thief raises on the
   first index it steals.  The blocker unblocks on the raiser's flag, the
   Boom must surface at the barrier, and the pool must stay usable. *)
let test_exception_during_steal () =
  Pool.with_pool ~oversubscribe:true ~jobs:2 (fun p ->
      let n = 200 in
      let half = n / 2 in
      let done_ = Atomic.make 0 in
      let saw_boom = Atomic.make false in
      let raised =
        try
          Pool.parallel_chunks p ~n ~chunk:1 (fun ~worker ~lo ~hi:_ ->
              if lo = 0 then begin
                if
                  not
                    (spin_until (fun () ->
                         Atomic.get saw_boom || Atomic.get done_ = n - 1))
                then Alcotest.fail "blocker timed out: no steal, no Boom"
              end
              else begin
                let owner = if lo < half then 0 else 1 in
                if worker <> owner then begin
                  (* this index reached us through a steal *)
                  Atomic.set saw_boom true;
                  raise (Boom lo)
                end;
                ignore (Atomic.fetch_and_add done_ 1 : int)
              end);
          false
        with Boom _ -> true
      in
      Alcotest.(check bool) "a stolen index raised" true
        (Atomic.get saw_boom);
      Alcotest.(check bool) "Boom from the stolen range re-raised" true
        raised;
      let sum = Atomic.make 0 in
      Pool.parallel_chunks p ~n:10 (fun ~worker:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            ignore (Atomic.fetch_and_add sum i : int)
          done);
      Alcotest.(check int) "pool survives the failed section" 45
        (Atomic.get sum))

(* Pathologically skewed per-item costs (one huge item + many tiny ones)
   must not change results at any jobs value: every index is processed
   exactly once and per-index outputs match the sequential reference. *)
let prop_skewed_costs_jobs_invariant =
  QCheck2.Test.make ~count:25
    ~name:"skewed costs: results jobs-invariant, coverage exact"
    QCheck2.Gen.(
      triple (int_range 1 150) (int_range 1 4) (int_range 0 149))
    (fun (n, jobs, heavy) ->
      let heavy = heavy mod n in
      let reference = Array.init n (fun i -> (i * i) + 1) in
      let out = Array.make n 0 in
      let hits = Array.make n 0 in
      Pool.with_pool ~oversubscribe:true ~jobs (fun p ->
          Pool.parallel_chunks p ~n ~chunk:1 (fun ~worker:_ ~lo ~hi:_ ->
              if lo = heavy then begin
                (* burn time so the siblings drain the rest *)
                let acc = ref 0 in
                for k = 0 to 200_000 do
                  acc := !acc + k
                done;
                ignore (Sys.opaque_identity !acc : int)
              end;
              (* per-index slot writes: sharded by construction *)
              out.(lo) <- (lo * lo) + 1;
              hits.(lo) <- hits.(lo) + 1));
      out = reference && Array.for_all (fun h -> h = 1) hits)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "full index coverage" `Quick test_full_coverage;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_clamp;
          Alcotest.test_case "steal liveness" `Quick test_steal_liveness;
          Alcotest.test_case "exception during steal" `Quick
            test_exception_during_steal;
          QCheck_alcotest.to_alcotest prop_skewed_costs_jobs_invariant;
        ] );
    ]
