open Olfu_netlist
open Olfu_fault
open Olfu_atpg
module S = Olfu_sat.Solver
module B = Netlist.Builder

(* --- solver unit tests --- *)

let is_sat = function S.Sat _ -> true | S.Unsat | S.Unknown -> false

let test_trivial () =
  let s = S.create () in
  let a = S.new_var s in
  let b = S.new_var s in
  S.add_clause s [ a; b ];
  S.add_clause s [ -a ];
  (match S.solve s with
  | S.Sat model ->
    Alcotest.(check bool) "a false" false (model a);
    Alcotest.(check bool) "b true" true (model b)
  | _ -> Alcotest.fail "expected sat");
  S.add_clause s [ -b ];
  Alcotest.(check bool) "now unsat" false (is_sat (S.solve s))

let test_empty_clause () =
  let s = S.create () in
  let _ = S.new_var s in
  S.add_clause s [];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_unit_chain () =
  (* implication chain x1 -> x2 -> ... -> x10, x1 forced *)
  let s = S.create () in
  let vars = Array.init 10 (fun _ -> S.new_var s) in
  for i = 0 to 8 do
    S.add_clause s [ -vars.(i); vars.(i + 1) ]
  done;
  S.add_clause s [ vars.(0) ];
  match S.solve s with
  | S.Sat model ->
    Array.iter (fun v -> Alcotest.(check bool) "all true" true (model v)) vars
  | _ -> Alcotest.fail "expected sat"

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: classic small UNSAT needing real search *)
  let s = S.create () in
  let p = Array.init 4 (fun _ -> Array.init 3 (fun _ -> S.new_var s)) in
  for i = 0 to 3 do
    S.add_clause s (Array.to_list p.(i))
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        S.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" true (S.solve s = S.Unsat)

let test_assumptions () =
  let s = S.create () in
  let a = S.new_var s in
  let b = S.new_var s in
  S.add_clause s [ -a; b ];
  (match S.solve ~assumptions:[ a; -b ] s with
  | S.Unsat -> ()
  | _ -> Alcotest.fail "assumption conflict expected");
  (* solver still usable afterwards *)
  match S.solve ~assumptions:[ a ] s with
  | S.Sat model -> Alcotest.(check bool) "b follows" true (model b)
  | _ -> Alcotest.fail "expected sat"

let test_xor_instance () =
  (* a xor b xor c = 1, a = b: forces c = 1 when a = b *)
  let s = S.create () in
  let a = S.new_var s and b = S.new_var s and c = S.new_var s in
  (* odd parity clauses *)
  S.add_clause s [ a; b; c ];
  S.add_clause s [ a; -b; -c ];
  S.add_clause s [ -a; b; -c ];
  S.add_clause s [ -a; -b; c ];
  S.add_clause s [ -a; b ];
  S.add_clause s [ a; -b ];
  match S.solve s with
  | S.Sat model -> Alcotest.(check bool) "c true" true (model c)
  | _ -> Alcotest.fail "expected sat"

(* random small instances vs brute force *)
let prop_matches_bruteforce =
  QCheck2.Test.make ~count:60 ~name:"solver = brute force on small CNF"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nvars = 4 + Random.State.int rng 7 in
      let nclauses = 5 + Random.State.int rng 30 in
      let clauses =
        List.init nclauses (fun _ ->
            let len = 1 + Random.State.int rng 3 in
            List.init len (fun _ ->
                let v = 1 + Random.State.int rng nvars in
                if Random.State.bool rng then v else -v))
      in
      let brute_sat =
        let rec try_assign m =
          if m = 1 lsl nvars then false
          else
            let value v = (m lsr (v - 1)) land 1 = 1 in
            let holds =
              List.for_all
                (List.exists (fun l ->
                     if l > 0 then value l else not (value (-l))))
                clauses
            in
            holds || try_assign (m + 1)
        in
        try_assign 0
      in
      let s = S.create () in
      for _ = 1 to nvars do
        ignore (S.new_var s : int)
      done;
      List.iter (S.add_clause s) clauses;
      match S.solve s with
      | S.Sat model ->
        (* the model must actually satisfy the clauses *)
        brute_sat
        && List.for_all
             (List.exists (fun l -> if l > 0 then model l else not (model (-l))))
             clauses
      | S.Unsat -> not brute_sat
      | S.Unknown -> false)

(* --- SAT ATPG --- *)

let test_sat_atpg_adder () =
  let nl = Test_support.full_adder () in
  Array.iter
    (fun f ->
      match Sat_atpg.run nl f with
      | Sat_atpg.Test asg ->
        Alcotest.(check bool)
          (Printf.sprintf "sat test validates %s" (Fault.to_string nl f))
          true
          (Podem.check_test nl f asg)
      | Sat_atpg.Untestable ->
        Alcotest.failf "adder fault %s called untestable" (Fault.to_string nl f)
      | Sat_atpg.Unknown -> Alcotest.fail "unknown")
    (Fault.universe nl)

let test_sat_atpg_redundant () =
  let nl = Test_support.redundant_circuit () in
  let bnode = Netlist.find_exn nl "b" in
  Alcotest.(check bool) "b s@0 untestable" true
    (Sat_atpg.run nl (Fault.sa0 bnode Cell.Pin.Out) = Sat_atpg.Untestable);
  Alcotest.(check bool) "b s@1 untestable" true
    (Sat_atpg.run nl (Fault.sa1 bnode Cell.Pin.Out) = Sat_atpg.Untestable)

let test_sat_atpg_scan_cell () =
  let nl, ff = Test_support.scan_cell_mission () in
  Alcotest.(check bool) "SI s@1 untestable" true
    (Sat_atpg.run nl (Fault.sa1 ff (Cell.Pin.In 1)) = Sat_atpg.Untestable);
  match Sat_atpg.run nl (Fault.sa1 ff (Cell.Pin.In 2)) with
  | Sat_atpg.Test asg ->
    Alcotest.(check bool) "SE s@1 test valid" true
      (Podem.check_test nl (Fault.sa1 ff (Cell.Pin.In 2)) asg)
  | _ -> Alcotest.fail "SE s@1 should be testable"

let test_sat_atpg_reconvergence () =
  (* the OR(x,x) trap: SAT must find the stem test *)
  let b = B.create () in
  let t1 = B.tie b Olfu_logic.Logic4.L1 in
  let x = B.buf b ~name:"x" t1 in
  let g = B.or2 b ~name:"g" x x in
  let _ = B.output b "o" g in
  let nl = B.freeze_exn b in
  (match Sat_atpg.run nl (Fault.sa0 x Cell.Pin.Out) with
  | Sat_atpg.Test _ -> ()
  | _ -> Alcotest.fail "stem x s@0 is testable");
  (* each single branch alone is untestable *)
  Alcotest.(check bool) "branch untestable" true
    (Sat_atpg.run nl (Fault.sa0 (Netlist.find_exn nl "g") (Cell.Pin.In 0))
    = Sat_atpg.Untestable)

(* SAT and PODEM agree wherever PODEM is conclusive; SAT never aborts on
   these sizes. *)
let prop_sat_podem_agree =
  QCheck2.Test.make ~count:15 ~name:"SAT = PODEM verdicts"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:18 in
      let ok = ref true in
      Array.iteri
        (fun k f ->
          if k mod 5 = 0 && f.Fault.site.Fault.pin <> Cell.Pin.Clk then begin
            let sat = Sat_atpg.run nl f in
            let podem = Podem.run ~backtrack_limit:5_000 nl f in
            match sat, podem with
            | Sat_atpg.Test asg, _ ->
              if not (Podem.check_test nl f asg) then ok := false;
              if podem = Podem.Proved_untestable then ok := false
            | Sat_atpg.Untestable, Podem.Test pasg ->
              if Podem.check_test nl f pasg then ok := false
            | Sat_atpg.Untestable, (Podem.Proved_untestable | Podem.Aborted) ->
              ()
            | Sat_atpg.Unknown, _ -> ok := false
          end)
        (Fault.universe nl);
      !ok)

(* and the implication engine stays sound against the complete prover *)
let prop_implication_sound_vs_sat =
  QCheck2.Test.make ~count:15 ~name:"implication untestable => SAT unsat"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:18 in
      let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
      let ok = ref true in
      Array.iter
        (fun f ->
          if f.Fault.site.Fault.pin <> Cell.Pin.Clk then
            match Untestable.fault_verdict t f with
            | Some _ ->
              if Sat_atpg.run nl f <> Sat_atpg.Untestable then ok := false
            | None -> ())
        (Fault.universe nl);
      !ok)

(* SAT succeeds where branch-and-bound drowns: a quotient-bit fault deep
   in a restoring divider. *)
let test_sat_cracks_divider () =
  let b = B.create () in
  let x = Olfu_soc.Rtl.input_bus b "x" 8 in
  let y = Olfu_soc.Rtl.input_bus b "y" 8 in
  let q, r = Olfu_soc.Rtl.divider b ~dividend:x ~divisor:y in
  Olfu_soc.Rtl.output_bus b "q" q;
  Olfu_soc.Rtl.output_bus b "r" r;
  let nl = B.freeze_exn b in
  (* target the most significant quotient bit's stem *)
  let f = Fault.sa1 q.(7) Cell.Pin.Out in
  match Sat_atpg.run nl f with
  | Sat_atpg.Test asg ->
    Alcotest.(check bool) "validated" true (Podem.check_test nl f asg)
  | Sat_atpg.Untestable -> Alcotest.fail "divider quotient bit is testable"
  | Sat_atpg.Unknown -> Alcotest.fail "budget too small"

(* --- equivalence checker --- *)

let test_equiv_self () =
  let nl = Test_support.full_adder () in
  Alcotest.(check bool) "adder = adder" true
    (Equiv.check nl nl = Equiv.Equivalent)

let test_equiv_detects_difference () =
  let nl = Test_support.full_adder () in
  (* swap the carry OR for an AND: inequivalent *)
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let cin = B.input b "cin" in
  let x1 = B.xor2 b a bb in
  let sv = B.xor2 b ~name:"sum_net" x1 cin in
  let c1 = B.and2 b a bb in
  let c2 = B.and2 b x1 cin in
  let cout = B.and2 b ~name:"cout_net" c1 c2 in
  let _ = B.output b "sum" sv in
  let _ = B.output b "cout" cout in
  let bad = B.freeze_exn b in
  match Equiv.check nl bad with
  | Equiv.Counterexample cex ->
    (* the counterexample must actually distinguish the two circuits *)
    let drive nl =
      let env = Olfu_sim.Comb_sim.init nl Olfu_logic.Logic4.X in
      List.iter
        (fun (name, v) ->
          match Netlist.find nl name with
          | Some i -> env.(i) <- Olfu_logic.Logic4.of_bool v
          | None -> ())
        cex;
      Olfu_sim.Comb_sim.settle nl env;
      env.(Netlist.find_exn nl "cout_net")
    in
    Alcotest.(check bool) "cex distinguishes" false
      (Olfu_logic.Logic4.equal (drive nl) (drive bad))
  | _ -> Alcotest.fail "expected counterexample"

let test_equiv_under_assumptions () =
  (* g = x AND en vs h = x: equivalent only when en is assumed 1 *)
  let mk with_en =
    let b = B.create () in
    let x = B.input b "x" in
    let en = B.input b "en" in
    let g = if with_en then B.and2 b x en else B.buf b x in
    let _ = B.output b "o" g in
    B.freeze_exn b
  in
  let a = mk true and bb = mk false in
  (match Equiv.check a bb with
  | Equiv.Counterexample _ -> ()
  | _ -> Alcotest.fail "inequivalent without assumptions");
  Alcotest.(check bool) "equivalent with en=1" true
    (Equiv.check ~assume:[ ("en", true) ] a bb = Equiv.Equivalent)

(* The paper's premise, proved: tying the debug controls does not change
   mission behaviour as long as the environment holds them at the tied
   values. *)
let test_equiv_mission_ties () =
  let cfg = Olfu_soc.Soc.tcore16 in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission =
    Olfu.Mission.of_roles
      ~memmap:(Olfu_soc.Soc.memmap_regions cfg)
      ~address_width:cfg.Olfu_soc.Soc.xlen nl
  in
  let tied =
    Olfu_manip.Script.apply nl (Olfu.Mission.tie_controls_script mission)
  in
  let assume =
    List.map (fun n -> (n, false)) mission.Olfu.Mission.debug_controls
  in
  Alcotest.(check bool) "tied soc = original under ties" true
    (Equiv.check ~assume nl tied = Equiv.Equivalent);
  (* and WITHOUT the assumptions the circuits differ (the debugger could
     have acted) *)
  match Equiv.check nl tied with
  | Equiv.Counterexample _ -> ()
  | Equiv.Equivalent -> Alcotest.fail "must differ when debug pins float"
  | _ -> Alcotest.fail "unexpected verdict"

(* hash-consed fold agrees with simulation on random circuits *)
let prop_equiv_self_random =
  QCheck2.Test.make ~count:25 ~name:"random netlist equals itself"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:25 in
      Equiv.check nl nl = Equiv.Equivalent)

(* --- bounded sequential test generation --- *)

let resettable_shift () =
  let b = B.create () in
  let d = B.input b "d" in
  let rstn = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let f1 = B.dffr b ~name:"f1" ~d ~rstn in
  let f2 = B.dffr b ~name:"f2" ~d:f1 ~rstn in
  let _ = B.output b "q" f2 in
  B.freeze_exn b

let test_bmc_finds_sequential_test () =
  let nl = resettable_shift () in
  let d = Netlist.find_exn nl "d" in
  let f = Fault.sa0 d Cell.Pin.Out in
  match Bmc.run ~cycles:4 nl f with
  | Bmc.Test stim ->
    Alcotest.(check int) "4 cycles" 4 (Array.length stim);
    Alcotest.(check bool) "simulator confirms" true
      (Bmc.confirm_test nl f stim)
  | Bmc.No_test_within _ -> Alcotest.fail "a 2-deep shift needs 3 cycles"
  | Bmc.Unknown -> Alcotest.fail "budget"

let test_bmc_depth_matters () =
  (* through two flops the fault needs 3 cycles to reach the output: with
     only 1 cycle there must be no test *)
  let nl = resettable_shift () in
  let d = Netlist.find_exn nl "d" in
  let f = Fault.sa1 d Cell.Pin.Out in
  (match Bmc.run ~cycles:1 nl f with
  | Bmc.No_test_within _ -> ()
  | Bmc.Test _ -> Alcotest.fail "too shallow to observe"
  | Bmc.Unknown -> Alcotest.fail "budget");
  match Bmc.run ~cycles:6 nl f with
  | Bmc.Test _ -> ()
  | _ -> Alcotest.fail "deep enough now"

let test_bmc_scan_fault_untestable () =
  let nl, ff = Test_support.scan_cell_mission () in
  (match Bmc.run ~cycles:6 nl (Fault.sa1 ff (Cell.Pin.In 1)) with
  | Bmc.No_test_within _ -> ()
  | Bmc.Test _ -> Alcotest.fail "SI fault has no functional test"
  | Bmc.Unknown -> Alcotest.fail "budget");
  (* SE s@1 is sequentially testable (it corrupts the captured value) *)
  match Bmc.run ~cycles:4 nl (Fault.sa1 ff (Cell.Pin.In 2)) with
  | Bmc.Test _ -> ()
  | _ -> Alcotest.fail "SE s@1 is functionally testable"

(* every flow-claimed OLFU fault must survive a bounded refutation attempt
   on the mission machine *)
let test_bmc_never_refutes_flow () =
  let cfg = Olfu_soc.Soc.tcore16 in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission =
    Olfu.Mission.of_roles
      ~memmap:(Olfu_soc.Soc.memmap_regions cfg)
      ~address_width:cfg.Olfu_soc.Soc.xlen nl
  in
  let report = Olfu.Flow.run Olfu.Run_config.default nl mission in
  (* the full mission environment: the flow's tied netlist plus the scan
     pins held at their functional values (the scan rule's premise) *)
  let mnl =
    Olfu_manip.Script.apply report.Olfu.Flow.mission_netlist
      [
        Olfu_manip.Script.Tie_input ("scan_en", Olfu_logic.Logic4.L0);
        Olfu_manip.Script.Tie_input ("scan_in0", Olfu_logic.Logic4.L0);
      ]
  in
  let observable = Olfu.Mission.observed_in_field mission mnl in
  let checked = ref 0 in
  Olfu_fault.Flist.iteri
    (fun i f st ->
      if
        !checked < 8 && i mod 1009 = 0
        && Status.is_undetectable st
        && f.Fault.site.Fault.pin <> Cell.Pin.Clk
      then begin
        incr checked;
        match
          Bmc.run ~cycles:3 ~observable_output:observable
            ~conflict_limit:20_000 mnl f
        with
        | Bmc.Test stim ->
          if Bmc.confirm_test ~observable_output:observable mnl f stim then
            Alcotest.failf "BMC refuted flow verdict on %s"
              (Fault.to_string mnl f)
        | Bmc.No_test_within _ | Bmc.Unknown -> ()
      end)
    report.Olfu.Flow.flist;
  Alcotest.(check bool) "sampled" true (!checked >= 5)

let prop_bmc_tests_confirmed =
  QCheck2.Test.make ~count:8 ~name:"BMC stem tests confirmed by simulator"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_seq_netlist rng ~inputs:3 ~gates:10 ~flops:3 in
      let ok = ref true in
      Array.iteri
        (fun k f ->
          if k mod 17 = 0 && f.Fault.site.Fault.pin = Cell.Pin.Out then begin
            match Bmc.run ~cycles:4 ~conflict_limit:20_000 nl f with
            | Bmc.Test stim ->
              (* flop power-up is solver-chosen; only insist on
                 confirmation when every flop is resettable *)
              let all_reset =
                Array.for_all
                  (fun i ->
                    match Netlist.kind nl i with
                    | Cell.Dffr | Cell.Sdffr -> true
                    | _ -> false)
                  (Netlist.seq_nodes nl)
              in
              if all_reset && not (Bmc.confirm_test nl f stim) then ok := false
            | Bmc.No_test_within _ | Bmc.Unknown -> ()
          end)
        (Fault.universe nl);
      !ok)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "unit chain" `Quick test_unit_chain;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "xor" `Quick test_xor_instance;
          qt prop_matches_bruteforce;
        ] );
      ( "sat-atpg",
        [
          Alcotest.test_case "adder" `Quick test_sat_atpg_adder;
          Alcotest.test_case "redundant" `Quick test_sat_atpg_redundant;
          Alcotest.test_case "scan cell" `Quick test_sat_atpg_scan_cell;
          Alcotest.test_case "reconvergence" `Quick test_sat_atpg_reconvergence;
          Alcotest.test_case "divider cone" `Slow test_sat_cracks_divider;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "self" `Quick test_equiv_self;
          Alcotest.test_case "difference + cex" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "assumptions" `Quick test_equiv_under_assumptions;
          Alcotest.test_case "mission ties (soc)" `Slow test_equiv_mission_ties;
          qt prop_equiv_self_random;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "finds sequential test" `Quick
            test_bmc_finds_sequential_test;
          Alcotest.test_case "depth matters" `Quick test_bmc_depth_matters;
          Alcotest.test_case "scan fault" `Quick test_bmc_scan_fault_untestable;
          Alcotest.test_case "never refutes flow" `Slow
            test_bmc_never_refutes_flow;
          qt prop_bmc_tests_confirmed;
          qt prop_sat_podem_agree;
          qt prop_implication_sound_vs_sat;
        ] );
    ]
