(* Service layer: request/response wire round-trips, malformed-input
   robustness, session cache identity and LRU eviction, jobs-invariance
   of concurrent sessions, and the daemon protocol over a real Unix
   socket. *)

module S = Olfu_service
module Req = S.Request
module Resp = S.Response
module J = Olfu_obs.Json

(* --- generators --- *)

let gen_target =
  QCheck.Gen.oneof
    [
      QCheck.Gen.oneofl
        [ Req.Config "tcore32"; Req.Config "tcore16"; Req.Config "x" ];
      QCheck.Gen.map (fun s -> Req.File s) (QCheck.Gen.oneofl
        [ "nl.v"; "/tmp/some netlist.v"; "a\"b\\c.v" ]);
    ]

let gen_fmt = QCheck.Gen.oneofl [ Req.Text; Req.Json; Req.Summary ]

let gen_ff_mode =
  QCheck.Gen.oneofl
    Olfu_atpg.Ternary.[ Cut; Reset_join; Steady_state ]

let gen_fail_on =
  QCheck.Gen.oneofl
    [
      Req.Never;
      Req.Fail_on Olfu_lint.Rule.Error;
      Req.Fail_on Olfu_lint.Rule.Warning;
      Req.Fail_on Olfu_lint.Rule.Info;
    ]

let gen_op =
  let open QCheck.Gen in
  let small = int_bound 64 in
  oneof
    [
      map (fun paper -> Req.Analyze { paper }) bool;
      (let* waivers = opt (oneofl [ "w.json"; "dir/w.json" ]) in
       let* baseline = opt (oneofl [ "b.txt"; "base line.txt" ]) in
       let* disabled = list_size (int_bound 3) (oneofl [ "STR001"; "CONF2" ]) in
       let* software = bool in
       let* invariants = bool in
       let* fail_on = gen_fail_on in
       return
         (Req.Lint { waivers; baseline; disabled; software; invariants; fail_on }));
      (let* learn_depth = small in
       let* learn_budget = int_bound 1_000_000 in
       let* invariants = bool in
       return (Req.Implic { learn_depth; learn_budget; invariants }));
      (let* programs = list_size (int_bound 3) (oneofl [ "memcpy"; "crc" ]) in
       let* asm = opt (oneofl [ "p.asm" ]) in
       return (Req.Absint { programs; asm }));
      (let* k = small in
       let* no_prove = bool in
       return (Req.Invar { k; no_prove }));
      (let* window = small in
       let* seu_limit = small in
       return (Req.Safety { window; seu_limit }));
      map (fun dot -> Req.Slice { dot }) bool;
      map (fun sample -> Req.Coverage { sample }) small;
    ]

let gen_request =
  let open QCheck.Gen in
  let* id = int_bound 10_000 in
  let* body =
    oneof
      [
        return Req.Ping;
        return Req.Stats;
        return Req.Shutdown;
        (let* target = gen_target in
         let* ff_mode = gen_ff_mode in
         let* jobs = int_range 1 8 in
         let* implic = bool in
         let* fmt = gen_fmt in
         let* op = gen_op in
         return (Req.Run { target; ff_mode; jobs; implic; fmt; op }));
      ]
  in
  return { Req.id; body }

let arb_request = QCheck.make ~print:Req.to_line gen_request

(* Response seconds use exact binary fractions so the float survives the
   decimal wire format bit-for-bit. *)
let gen_response =
  let open QCheck.Gen in
  let* id = int_bound 10_000 in
  let* status = oneofl [ Resp.Success; Resp.Findings; Resp.Bad_input ] in
  let* cache_hit = bool in
  let* sixteenths = int_bound 64 in
  let* output = oneofl [ ""; "pong\n"; "{\n  \"a\": 1\n}\n"; "x \"y\"\n\tz" ] in
  let* error = opt (oneofl [ "unknown config"; "bad \"quoted\" name" ]) in
  return
    (Resp.make ~cache_hit
       ~seconds:(float_of_int sixteenths /. 16.)
       ?error ~id ~status output)

let arb_response = QCheck.make ~print:Resp.to_line gen_response

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:500 ~name:"request wire round-trip" arb_request
        (fun req ->
          match Req.of_string (Req.to_line req) with
          | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
          | Ok req' -> Req.to_line req' = Req.to_line req);
      QCheck.Test.make ~count:500 ~name:"response wire round-trip"
        arb_response (fun resp ->
          match Resp.of_string (Resp.to_line resp) with
          | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
          | Ok resp' -> resp' = resp);
      QCheck.Test.make ~count:500 ~name:"fingerprint ignores jobs and fmt"
        arb_request (fun req ->
          match req.Req.body with
          | Req.Run r ->
            Req.fingerprint { r with jobs = r.jobs + 3; fmt = Req.Text }
            = Req.fingerprint r
          | _ -> QCheck.assume_fail ());
    ]

(* --- malformed input: always Error, never an exception --- *)

let malformed_lines =
  [
    "";
    "not json";
    "[1,2,3]";
    "{}";
    "{\"op\": \"frobnicate\"}";
    "{\"op\": 7}";
    "{\"op\": \"analyze\", \"target\": {\"planet\": \"mars\"}}";
    "{\"op\": \"analyze\", \"ff_mode\": \"sideways\"}";
    "{\"op\": \"analyze\", \"format\": \"xml\"}";
    "{\"op\": \"analyze\", \"id\": \"twelve\"}";
    "{\"op\": \"analyze\"";
    "{\"op\": \"lint\", \"params\": {\"fail_on\": \"fatal\"}}";
  ]

let test_malformed_decode () =
  List.iter
    (fun line ->
      match Req.of_string line with
      | Error _ -> ()
      | Ok req ->
        Alcotest.failf "accepted malformed %S as %s" line (Req.to_line req))
    malformed_lines

let test_tolerant_decode () =
  (* only "op" is required; everything else defaults like the CLI *)
  match Req.of_string "{\"op\": \"analyze\", \"wholly_unknown\": true}" with
  | Error e -> Alcotest.failf "minimal request rejected: %s" e
  | Ok { Req.body = Req.Run r; _ } ->
    let d = Req.default_run in
    Alcotest.(check string)
      "defaults" (Req.fingerprint d) (Req.fingerprint r);
    Alcotest.(check int) "jobs" d.Req.jobs r.Req.jobs
  | Ok _ -> Alcotest.fail "decoded to a non-run body"

(* --- execute: structured failures, cache identity --- *)

let run_req ?(id = 1) ?(fmt = Req.Json) ?(target = Req.Config "tcore16") op =
  Req.run ~id ~fmt target op

let exec session req = fst (S.Service.execute session req)

let test_bad_requests_are_responses () =
  let session = S.Session.create () in
  let cases =
    [
      ("unknown config", run_req ~target:(Req.Config "nope") (Req.Analyze { paper = false }));
      ("missing file", run_req ~target:(Req.File "/nonexistent/x.v") (Req.Analyze { paper = false }));
      ("absint on file", run_req ~target:(Req.File "/nonexistent/x.v") (Req.Absint { programs = []; asm = None }));
      ("unknown program", run_req (Req.Absint { programs = [ "no_such_prog" ]; asm = None }));
      ("missing waivers", run_req (Req.Lint { waivers = Some "/nonexistent/w.json"; baseline = None; disabled = []; software = false; invariants = false; fail_on = Req.Never }));
    ]
  in
  List.iter
    (fun (what, req) ->
      let resp = exec session req in
      Alcotest.(check bool)
        (what ^ ": bad input") true
        (resp.Resp.status = Resp.Bad_input);
      Alcotest.(check bool)
        (what ^ ": has diagnostic") true
        (resp.Resp.error <> None))
    cases

let test_cache_hit_identity () =
  let session = S.Session.create () in
  let ops =
    [
      ("analyze", Req.Analyze { paper = false });
      ("slice", Req.Slice { dot = false });
      ("coverage", Req.Coverage { sample = 50 });
    ]
  in
  List.iter
    (fun (what, op) ->
      let cold = exec session (run_req op) in
      let warm = exec session (run_req ~id:2 op) in
      Alcotest.(check bool) (what ^ ": cold is a miss") false
        cold.Resp.cache_hit;
      Alcotest.(check bool) (what ^ ": warm is a hit") true
        warm.Resp.cache_hit;
      Alcotest.(check string) (what ^ ": byte-identical json")
        cold.Resp.output warm.Resp.output;
      (* a different rendering of the same outcome is also a hit *)
      let text = exec session (run_req ~id:3 ~fmt:Req.Text op) in
      Alcotest.(check bool) (what ^ ": other format hits") true
        text.Resp.cache_hit)
    ops;
  let st = S.Session.stats session in
  Alcotest.(check bool) "no eviction under default budget" true
    (st.S.Session.evictions = 0)

let test_stats_and_ping () =
  let session = S.Session.create () in
  let ping = exec session { Req.id = 9; body = Req.Ping } in
  Alcotest.(check string) "pong" "pong\n" ping.Resp.output;
  Alcotest.(check int) "id echoed" 9 ping.Resp.id;
  ignore (exec session (run_req (Req.Analyze { paper = false })));
  let stats = exec session { Req.id = 10; body = Req.Stats } in
  match J.parse stats.Resp.output with
  | Error e -> Alcotest.failf "stats not json: %s" e
  | Ok j ->
    Alcotest.(check bool) "entries > 0" true
      (match Option.bind (J.member "entries" j) J.to_int_opt with
      | Some n -> n > 0
      | None -> false)

(* --- LRU eviction --- *)

let test_lru_eviction () =
  (* Budget far below one loaded netlist: every insert evicts the
     previous entries, the just-added survivor stays usable. *)
  let session = S.Session.create ~byte_budget:(64 * 1024) () in
  let r1 = exec session (run_req (Req.Slice { dot = false })) in
  let r2 = exec session (run_req ~id:2 (Req.Analyze { paper = false })) in
  Alcotest.(check bool) "both succeed" true
    (r1.Resp.status = Resp.Success && r2.Resp.status = Resp.Success);
  let st = S.Session.stats session in
  Alcotest.(check bool) "evictions happened" true (st.S.Session.evictions > 0);
  Alcotest.(check bool) "at most one entry survives" true
    (st.S.Session.entries <= 1);
  (* correctness is unaffected: re-running evicted work matches *)
  let r1' = exec session (run_req ~id:3 (Req.Slice { dot = false })) in
  Alcotest.(check string) "evicted rerun identical" r1.Resp.output
    r1'.Resp.output

let test_direct_lru_order () =
  let session = S.Session.create ~byte_budget:1 () in
  let v s = S.Session.Outcome
      { json = s; text = s; summary = s; status = Resp.Success; aux = [] }
  in
  S.Session.add session "a" (v "a");
  S.Session.add session "b" (v "b");
  (* budget 1 byte: adding b evicts a (never the entry just added) *)
  Alcotest.(check bool) "a evicted" true (S.Session.find session "a" = None);
  Alcotest.(check bool) "b resident" true (S.Session.find session "b" <> None)

(* --- concurrent sessions: jobs-invariance across domain pools --- *)

let test_concurrent_jobs_invariant () =
  (* Two daemon-style requests overlapping in time with different --jobs
     must produce identical bytes: the pool registry hands each its own
     domain pool and no flow result depends on worker count. *)
  let run jobs =
    Domain.spawn (fun () ->
        let session = S.Session.create () in
        let resp =
          exec session
            (Req.run ~fmt:Req.Json ~jobs (Req.Config "tcore16")
               (Req.Analyze { paper = false }))
        in
        (resp.Resp.status, resp.Resp.output))
  in
  let d1 = run 1 and d4 = run 4 in
  let s1, o1 = Domain.join d1 and s4, o4 = Domain.join d4 in
  Alcotest.(check bool) "both succeed" true
    (s1 = Resp.Success && s4 = Resp.Success);
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" o1 o4

(* --- the daemon over a real socket --- *)

let short_tmp_socket () =
  (* Unix socket paths are capped (~108 bytes); keep it short. *)
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "olfu-t%d.sock" (Unix.getpid ()))

let test_daemon_protocol () =
  let socket = short_tmp_socket () in
  let server =
    Domain.spawn (fun () ->
        S.Server.serve
          { (S.Server.default ~socket) with workers = 2 })
  in
  let conn =
    match S.Client.connect ~wait_seconds:10. socket with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  Fun.protect
    ~finally:(fun () -> S.Client.close conn)
    (fun () ->
      (match S.Client.rpc conn { Req.id = 1; body = Req.Ping } with
      | Ok r -> Alcotest.(check string) "ping" "pong\n" r.Resp.output
      | Error e -> Alcotest.failf "ping: %s" e);
      (* malformed line: structured error, connection survives *)
      (match S.Client.rpc_line conn "}{ not json" with
      | Ok line -> (
        match Resp.of_string line with
        | Ok r ->
          Alcotest.(check bool) "malformed -> bad input" true
            (r.Resp.status = Resp.Bad_input)
        | Error e -> Alcotest.failf "unparseable error reply: %s" e)
      | Error e -> Alcotest.failf "malformed rpc: %s" e);
      let req = run_req (Req.Analyze { paper = false }) in
      let cold =
        match S.Client.rpc conn req with
        | Ok r -> r
        | Error e -> Alcotest.failf "cold analyze: %s" e
      in
      let warm =
        match S.Client.rpc conn { req with Req.id = 2 } with
        | Ok r -> r
        | Error e -> Alcotest.failf "warm analyze: %s" e
      in
      Alcotest.(check bool) "warm is a cache hit" true warm.Resp.cache_hit;
      Alcotest.(check string) "cold/warm identical" cold.Resp.output
        warm.Resp.output;
      (* daemon bytes = local bytes for the same request *)
      let local = exec (S.Session.create ()) req in
      Alcotest.(check string) "daemon = one-shot" local.Resp.output
        cold.Resp.output);
  (match
     S.Client.request ~wait_seconds:1. ~socket
       { Req.id = 99; body = Req.Shutdown }
   with
  | Ok r -> Alcotest.(check string) "bye" "bye\n" r.Resp.output
  | Error e -> Alcotest.failf "shutdown: %s" e);
  Domain.join server;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

let () =
  Alcotest.run "service"
    [
      ("wire", qcheck_tests);
      ( "decode",
        [
          Alcotest.test_case "malformed lines rejected" `Quick
            test_malformed_decode;
          Alcotest.test_case "tolerant defaults" `Quick test_tolerant_decode;
        ] );
      ( "execute",
        [
          Alcotest.test_case "bad requests are responses" `Quick
            test_bad_requests_are_responses;
          Alcotest.test_case "cache hit identity" `Quick
            test_cache_hit_identity;
          Alcotest.test_case "stats and ping" `Quick test_stats_and_ping;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction under budget" `Quick
            test_lru_eviction;
          Alcotest.test_case "lru order" `Quick test_direct_lru_order;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "jobs-invariant overlapping sessions" `Quick
            test_concurrent_jobs_invariant;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "socket protocol" `Quick test_daemon_protocol;
        ] );
    ]
