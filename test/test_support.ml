(* Shared helpers for the test suites: tiny circuit constructors and a
   random-netlist generator for property tests. *)

open Olfu_logic
open Olfu_netlist

module B = Netlist.Builder

(* Fig. 2 of the paper: a mux-scan flip-flop in mission configuration
   (SE tied low), with its functional input and output exposed. *)
let scan_cell_mission () =
  let b = B.create () in
  let fi = B.input b "FI" in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "SI" in
  let se = B.tie b Logic4.L0 in
  let ff = B.sdff b ~name:"ff" ~d:fi ~si ~se in
  let _o = B.output b "FO" ff in
  (B.freeze_exn b, ff)

(* Fig. 4: a debug-controlled flip-flop: DE selects the debugger-forced
   value DI over the functional value FI.  Mission ties DE low; the debug
   observation output DO is already disconnected (not emitted). *)
let debug_cell_mission () =
  let b = B.create () in
  let fi = B.input b "FI" in
  let di = B.input b ~roles:[ Netlist.Debug_control ] "DI" in
  let de = B.tie b Logic4.L0 in
  let m = B.mux2 b ~name:"dbg_mux" ~sel:de ~a:fi ~b:di in
  let ff = B.dff b ~name:"ff" ~d:m in
  let _o = B.output b "FO" ff in
  (B.freeze_exn b, m, ff)

(* Fig. 5: a D flip-flop with active-low reset whose value is constant 0
   (an address register above the populated range). *)
let constant_dffr () =
  let b = B.create () in
  let d = B.tie b Logic4.L0 in
  let rstn = B.tie b Logic4.L1 in
  let ff = B.dffr b ~name:"areg" ~d ~rstn in
  let _o = B.output b "AOUT" ff in
  (B.freeze_exn b, ff)

(* A small combinational circuit with reconvergent fanout and a genuinely
   redundant fault: out = (a & b) | (a & ~b) | c simplifies to a | c, making
   several faults untestable. *)
let redundant_circuit () =
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let c = B.input b "c" in
  let nb = B.not_ b bb in
  let t1 = B.and2 b ~name:"t1" a bb in
  let t2 = B.and2 b ~name:"t2" a nb in
  let o1 = B.or2 b ~name:"o1" t1 t2 in
  let o2 = B.or2 b ~name:"o2" o1 c in
  let _ = B.output b "out" o2 in
  B.freeze_exn b

(* Full adder used as a known-good simulation target. *)
let full_adder () =
  let b = B.create () in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let cin = B.input b "cin" in
  let x1 = B.xor2 b a bb in
  let s = B.xor2 b ~name:"sum_net" x1 cin in
  let c1 = B.and2 b a bb in
  let c2 = B.and2 b x1 cin in
  let cout = B.or2 b ~name:"cout_net" c1 c2 in
  let _ = B.output b "sum" s in
  let _ = B.output b "cout" cout in
  B.freeze_exn b

(* Random combinational netlist for property tests. *)
let random_comb_netlist rng ~inputs ~gates =
  let b = B.create () in
  let nodes = ref [] in
  for i = 0 to inputs - 1 do
    nodes := B.input b (Printf.sprintf "i%d" i) :: !nodes
  done;
  (* occasionally a tie, to exercise constant propagation *)
  if Random.State.bool rng then
    nodes := B.tie b (if Random.State.bool rng then Logic4.L0 else Logic4.L1)
             :: !nodes;
  let pick () =
    let l = !nodes in
    List.nth l (Random.State.int rng (List.length l))
  in
  for g = 0 to gates - 1 do
    let n =
      match Random.State.int rng 9 with
      | 0 -> B.not_ b (pick ())
      | 1 -> B.and2 b (pick ()) (pick ())
      | 2 -> B.or2 b (pick ()) (pick ())
      | 3 -> B.xor2 b (pick ()) (pick ())
      | 4 -> B.nand2 b (pick ()) (pick ())
      | 5 -> B.nor2 b (pick ()) (pick ())
      | 6 -> B.mux2 b ~sel:(pick ()) ~a:(pick ()) ~b:(pick ())
      | 7 -> B.buf b (pick ())
      | _ -> B.xnor2 b (pick ()) (pick ())
    in
    ignore (g : int);
    nodes := n :: !nodes
  done;
  (* make the most recent nets observable *)
  let rec outs k l =
    match l with
    | n :: rest when k > 0 ->
      ignore (B.output b (Printf.sprintf "o%d" k) n : int);
      outs (k - 1) rest
    | _ -> ()
  in
  outs 3 !nodes;
  B.freeze_exn b

(* Random sequential netlist: a few flip-flops closing feedback loops. *)
let random_seq_netlist rng ~inputs ~gates ~flops =
  let b = B.create () in
  let srcs = ref [] in
  for i = 0 to inputs - 1 do
    srcs := B.input b (Printf.sprintf "i%d" i) :: !srcs
  done;
  let rst = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let pick () =
    let l = !srcs in
    List.nth l (Random.State.int rng (List.length l))
  in
  (* forward-declare flops by creating them on a placeholder fanin, then
     rewiring: simpler here to create gates first, flops last, feeding
     flop outputs is impossible that way — instead create flops early on
     inputs and rewire their D afterwards. *)
  let flop_ids = ref [] in
  for f = 0 to flops - 1 do
    let d0 = pick () in
    let ff =
      if f mod 2 = 0 then B.dffr b ~d:d0 ~rstn:rst
      else B.dff b ~d:d0
    in
    flop_ids := ff :: !flop_ids;
    srcs := ff :: !srcs
  done;
  for g = 0 to gates - 1 do
    let n =
      match Random.State.int rng 6 with
      | 0 -> B.not_ b (pick ())
      | 1 -> B.and2 b (pick ()) (pick ())
      | 2 -> B.or2 b (pick ()) (pick ())
      | 3 -> B.xor2 b (pick ()) (pick ())
      | 4 -> B.mux2 b ~sel:(pick ()) ~a:(pick ()) ~b:(pick ())
      | _ -> B.nand2 b (pick ()) (pick ())
    in
    ignore (g : int);
    srcs := n :: !srcs
  done;
  (* rewire flop data inputs into the later logic to close loops *)
  List.iter
    (fun ff ->
      let d = pick () in
      let fanin = B.node_fanin b ff in
      fanin.(0) <- d;
      B.set_fanin b ff fanin)
    !flop_ids;
  let rec outs k l =
    match l with
    | n :: rest when k > 0 ->
      ignore (B.output b (Printf.sprintf "o%d" k) n : int);
      outs (k - 1) rest
    | _ -> ()
  in
  outs 3 !srcs;
  B.freeze_exn b
