open Olfu_netlist
open Olfu_fault
open Olfu_atpg
module B = Netlist.Builder

(* y = AND(x, NOT x): always 0, but the ternary constants cannot see the
   correlation — only the implication closure can. *)
let contradiction_netlist () =
  let b = B.create () in
  let x = B.input b "x" in
  let w = B.not_ b ~name:"w" x in
  let y = B.and2 b ~name:"y" w x in
  let _ = B.output b "o" y in
  B.freeze_exn b

(* --- database construction --- *)

let test_build_stats () =
  let nl = contradiction_netlist () in
  let consts = (Ternary.run nl).Ternary.values in
  let db = Implic.build ~consts nl in
  let s = Implic.stats db in
  Alcotest.(check int) "two literals per node" (2 * Netlist.length nl)
    s.Implic.literals;
  Alcotest.(check bool) "direct edges exist" true (s.Implic.direct_edges > 0);
  Alcotest.(check bool) "learning bounded" true
    (s.Implic.learn_spent <= s.Implic.learn_budget + 64)

let test_impossible_literal () =
  let nl = contradiction_netlist () in
  let consts = (Ternary.run nl).Ternary.values in
  let db = Implic.build ~consts nl in
  let scr = Implic.Scratch.create db in
  let y = Netlist.find_exn nl "y" in
  Alcotest.(check bool) "y=1 impossible" true (Implic.impossible db scr y true);
  Alcotest.(check bool) "y=0 possible" false (Implic.impossible db scr y false);
  let x = Netlist.find_exn nl "x" in
  Alcotest.(check bool) "x=1 fine" false (Implic.impossible db scr x true);
  Alcotest.(check bool) "x=0 fine" false (Implic.impossible db scr x false)

let test_conflict_nets () =
  let nl = contradiction_netlist () in
  let consts = (Ternary.run nl).Ternary.values in
  let db = Implic.build ~consts nl in
  let scr = Implic.Scratch.create db in
  let y = Netlist.find_exn nl "y" in
  Alcotest.(check bool) "y reported" true
    (List.mem (y, true) (Implic.conflict_nets db scr));
  (* ternary leaves y unknown — the conflict is genuinely the closure's *)
  Alcotest.(check bool) "ternary blind" false
    (Olfu_logic.Logic4.is_binary consts.(y))

let test_assume_extend () =
  let nl = contradiction_netlist () in
  let consts = (Ternary.run nl).Ternary.values in
  let db = Implic.build ~consts nl in
  let scr = Implic.Scratch.create db in
  let x = Netlist.find_exn nl "x" in
  let w = Netlist.find_exn nl "w" in
  Alcotest.(check bool) "x=1 consistent" true
    (Implic.assume db scr [ Implic.lit x true ]);
  Alcotest.(check bool) "implies w=0" true
    (Olfu_logic.Logic4.equal (Implic.implied scr w) Olfu_logic.Logic4.L0);
  Alcotest.(check bool) "extend w=1 contradicts" false
    (Implic.extend db scr [ Implic.lit w true ])

(* --- conflict verdicts --- *)

let test_verdict_stem_conflict () =
  let nl = contradiction_netlist () in
  let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
  let y = Netlist.find_exn nl "y" in
  Alcotest.(check bool) "y sa0 conflict" true
    (Untestable.fault_verdict t (Fault.sa0 y Cell.Pin.Out)
    = Some (Status.Undetectable Status.Conflict));
  (* y stuck-at-1 is eminently testable: any pattern observes it *)
  Alcotest.(check bool) "y sa1 open" true
    (Untestable.fault_verdict t (Fault.sa1 y Cell.Pin.Out) = None)

let test_verdict_in_pin_conflict () =
  (* excitation w=1 plus the AND's necessary side x=1 close into x=0/x=1 *)
  let nl = contradiction_netlist () in
  let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
  let y = Netlist.find_exn nl "y" in
  Alcotest.(check bool) "w-pin sa0 conflict" true
    (Untestable.fault_verdict t (Fault.sa0 y (Cell.Pin.In 0))
    = Some (Status.Undetectable Status.Conflict))

let test_verdict_dominator_conflict () =
  (* the fault on stem s must propagate through d = AND(s, x); x lies
     outside s's cone, so x=1 is necessary — but exciting s=1 implies
     x=0 through the inverter *)
  let b = B.create () in
  let x = B.input b "x" in
  let s = B.not_ b ~name:"s" x in
  let d = B.and2 b ~name:"d" s x in
  let _ = B.output b "o" d in
  let nl = B.freeze_exn b in
  let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
  let s_ = Netlist.find_exn nl "s" in
  Alcotest.(check bool) "s sa0 conflict" true
    (Untestable.fault_verdict t (Fault.sa0 s_ Cell.Pin.Out)
    = Some (Status.Undetectable Status.Conflict))

(* --- global post-dominators --- *)

let test_stem_dominators_chain () =
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"g" x in
  let h = B.buf b ~name:"h" g in
  let o = B.output b "o" h in
  let nl = B.freeze_exn b in
  let an = Analysis.get nl in
  let s = Analysis.Scratch.create an in
  Alcotest.(check (list int)) "chain of x"
    [ Netlist.find_exn nl "g"; Netlist.find_exn nl "h"; o ]
    (Array.to_list (Analysis.stem_dominators an s x))

let test_stem_dominators_diamond () =
  let b = B.create () in
  let x = B.input b "x" in
  let l = B.buf b ~name:"l" x in
  let r = B.not_ b ~name:"r" x in
  let m = B.and2 b ~name:"m" l r in
  let o = B.output b "o" m in
  let nl = B.freeze_exn b in
  let an = Analysis.get nl in
  let s = Analysis.Scratch.create an in
  (* neither diamond arm dominates; the reconvergence gate does *)
  Alcotest.(check (list int)) "diamond reconverges"
    [ Netlist.find_exn nl "m"; o ]
    (Array.to_list (Analysis.stem_dominators an s x));
  Alcotest.(check (list int)) "arm chains through m"
    [ Netlist.find_exn nl "m"; o ]
    (Array.to_list (Analysis.stem_dominators an s (Netlist.find_exn nl "l")))

let test_stem_dominators_fanout_to_ff () =
  (* an edge into a flip-flop reaches the virtual sink directly, so a
     stem feeding both a gate and a flip-flop has no dominator *)
  let b = B.create () in
  let x = B.input b "x" in
  let g = B.not_ b ~name:"g" x in
  let _ff = B.dff b ~name:"ff" ~d:g in
  let h = B.buf b ~name:"h" g in
  let _ = B.output b "o" h in
  let nl = B.freeze_exn b in
  let an = Analysis.get nl in
  let s = Analysis.Scratch.create an in
  Alcotest.(check (list int)) "capture credit cuts the chain" []
    (Array.to_list (Analysis.stem_dominators an s (Netlist.find_exn nl "g")))

(* --- soundness: conflict verdicts vs search and simulation --- *)

let prop_conflict_sound =
  QCheck2.Test.make ~count:20 ~name:"conflict => PODEM fails, fsim silent"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Test_support.random_comb_netlist rng ~inputs:4 ~gates:18 in
      let t = Untestable.analyze ~ff_mode:Ternary.Cut nl in
      let conflict_faults =
        Array.to_list (Fault.universe nl)
        |> List.filter (fun f ->
               f.Fault.site.Fault.pin <> Cell.Pin.Clk
               && Untestable.fault_verdict t f
                  = Some (Status.Undetectable Status.Conflict))
      in
      let ok = ref true in
      List.iter
        (fun f ->
          match Podem.run ~backtrack_limit:10_000 nl f with
          | Podem.Test asg ->
            if Podem.check_test nl f asg then ok := false
          | Podem.Proved_untestable | Podem.Aborted -> ())
        conflict_faults;
      if conflict_faults <> [] then begin
        let fl = Flist.create nl (Array.of_list conflict_faults) in
        let srcs = Array.append (Netlist.inputs nl) (Netlist.seq_nodes nl) in
        let pats =
          Array.init 64 (fun _ ->
              Array.map
                (fun _ ->
                  Olfu_logic.Logic4.of_bool (Random.State.bool rng))
                srcs)
        in
        ignore
          (Olfu_fsim.Comb_fsim.run nl fl pats : Olfu_fsim.Comb_fsim.report);
        if Flist.count_status fl Status.Detected > 0 then ok := false
      end;
      !ok)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "implic"
    [
      ( "database",
        [
          Alcotest.test_case "build stats" `Quick test_build_stats;
          Alcotest.test_case "impossible literal" `Quick
            test_impossible_literal;
          Alcotest.test_case "conflict nets" `Quick test_conflict_nets;
          Alcotest.test_case "assume/extend" `Quick test_assume_extend;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "stem conflict" `Quick test_verdict_stem_conflict;
          Alcotest.test_case "in-pin conflict" `Quick
            test_verdict_in_pin_conflict;
          Alcotest.test_case "dominator conflict" `Quick
            test_verdict_dominator_conflict;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "chain" `Quick test_stem_dominators_chain;
          Alcotest.test_case "diamond" `Quick test_stem_dominators_diamond;
          Alcotest.test_case "ff capture credit" `Quick
            test_stem_dominators_fanout_to_ff;
        ] );
      ("soundness", [ qt prop_conflict_sound ]);
    ]
