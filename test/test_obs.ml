module J = Olfu_obs.Json
module Trace = Olfu_obs.Trace
module Export = Olfu_obs.Export
module Manifest = Olfu_obs.Manifest
module Pool = Olfu_pool.Pool

(* --- JSON: strict parser round-trips everything the emitters write --- *)

let sample_json =
  J.Obj
    [
      ("null", J.Null);
      ("bool", J.Bool true);
      ("int", J.Int (-42));
      ("float", J.Float 1.5);
      ("exp", J.Float 1e-9);
      ("str", J.Str "with \"quotes\", a \\ and \ncontrol\tbytes \x01");
      ("empty_list", J.List []);
      ("empty_obj", J.Obj []);
      ("nested", J.List [ J.Obj [ ("k", J.List [ J.Int 0; J.Null ]) ] ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match J.parse (J.to_string ~indent sample_json) with
      | Ok j -> Alcotest.(check bool) "round-trip equal" true (j = sample_json)
      | Error e -> Alcotest.failf "round-trip parse failed: %s" e)
    [ false; true ]

let test_json_strict () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [
      ""; "{"; "[1 2]"; "{\"a\":1,}"; "[1,]"; "\"a\" x"; "{'a':1}";
      "nulll"; "01"; "\"\\q\""; "\"unterminated";
    ]

(* --- spans: nesting is well-formed, recorded even on exceptions --- *)

exception Probe

let check_wellformed sink =
  let spans = Trace.spans sink in
  let by_id = Hashtbl.create 16 in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.id s) spans;
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "non-negative duration" true (s.Trace.dur >= 0.);
      if s.Trace.parent >= 0 then begin
        match Hashtbl.find_opt by_id s.Trace.parent with
        | None -> Alcotest.failf "span %s: dangling parent" s.Trace.name
        | Some p ->
          let eps = 1e-6 in
          Alcotest.(check bool)
            (s.Trace.name ^ " starts within parent")
            true
            (s.Trace.t0 +. eps >= p.Trace.t0);
          Alcotest.(check bool)
            (s.Trace.name ^ " ends within parent")
            true
            (s.Trace.t0 +. s.Trace.dur
            <= p.Trace.t0 +. p.Trace.dur +. eps)
      end)
    spans;
  spans

let test_span_nesting () =
  let sink = Trace.create () in
  Trace.span sink ~cat:"step" "outer" (fun () ->
      Trace.span sink ~cat:"engine" "inner_a" (fun () -> ());
      Trace.span sink ~cat:"engine" "inner_b" (fun () ->
          Trace.span sink "leaf" (fun () -> ())));
  (try
     Trace.span sink "raising" (fun () -> raise Probe)
   with Probe -> ());
  let spans = check_wellformed sink in
  Alcotest.(check int) "all five spans recorded" 5 (List.length spans);
  let find n =
    List.find (fun (s : Trace.span) -> s.Trace.name = n) spans
  in
  Alcotest.(check int) "outer is a root" (-1) (find "outer").Trace.parent;
  Alcotest.(check int) "raising is a root" (-1) (find "raising").Trace.parent;
  Alcotest.(check int)
    "inner_a under outer"
    (find "outer").Trace.id
    (find "inner_a").Trace.parent;
  Alcotest.(check int)
    "leaf under inner_b"
    (find "inner_b").Trace.id
    (find "leaf").Trace.parent

(* --- counters: shards merge, and totals are jobs-invariant --- *)

let test_counter_shards () =
  let sink = Trace.create () in
  for w = 0 to 7 do
    Trace.add sink ~worker:w "c" (w + 1)
  done;
  Trace.add sink "c" 100;
  Alcotest.(check (list (pair string int)))
    "merged total"
    [ ("c", 136) ]
    (Trace.counters sink)

let pool_counters ~jobs ~n ~chunk =
  let sink = Trace.create () in
  Pool.with_pool ~jobs (fun p ->
      Pool.parallel_chunks p ~n ~chunk ~trace:sink ~label:"t"
        (fun ~worker ~lo ~hi -> Trace.add sink ~worker "work.items" (hi - lo)));
  Trace.counters sink

let prop_pool_counters_invariant =
  QCheck2.Test.make ~count:40 ~name:"pool counters invariant under jobs"
    QCheck2.Gen.(pair (int_range 0 2_000) (int_range 1 97))
    (fun (n, chunk) ->
      let c1 = pool_counters ~jobs:1 ~n ~chunk in
      let c2 = pool_counters ~jobs:2 ~n ~chunk in
      let c4 = pool_counters ~jobs:4 ~n ~chunk in
      c1 = c2 && c1 = c4)

let fsim_counters jobs =
  let rng = Random.State.make [| 11 |] in
  let nl = Test_support.random_comb_netlist rng ~inputs:5 ~gates:40 in
  let fl = Olfu_fault.Flist.full nl in
  let patterns = Olfu_fsim.Comb_fsim.random_patterns ~seed:3 nl 70 in
  let sink = Trace.create () in
  ignore
    (Olfu_fsim.Comb_fsim.run ~jobs ~trace:sink nl fl patterns
      : Olfu_fsim.Comb_fsim.report);
  (Trace.counters sink, check_wellformed sink)

let test_fsim_counters_invariant () =
  let c1, _ = fsim_counters 1 in
  let c2, _ = fsim_counters 2 in
  let c4, spans4 = fsim_counters 4 in
  Alcotest.(check bool) "counters non-empty" true (c1 <> []);
  Alcotest.(check (list (pair string int))) "jobs 1 = jobs 2" c1 c2;
  Alcotest.(check (list (pair string int))) "jobs 1 = jobs 4" c1 c4;
  Alcotest.(check bool)
    "fault_evals counted" true
    (List.mem_assoc "fsim.fault_evals" c1);
  (* exactly one engine span, and it is the fsim root *)
  let engines =
    List.filter (fun (s : Trace.span) -> s.Trace.cat = "engine") spans4
  in
  Alcotest.(check int) "one engine span" 1 (List.length engines)

(* --- manifest and Chrome trace survive a strict re-parse --- *)

let recorded_sink () =
  let sink = Trace.create () in
  Trace.span sink ~cat:"step" "Step A" (fun () ->
      Trace.span sink ~cat:"engine" "alpha" (fun () -> Unix.sleepf 0.002);
      Trace.span sink ~cat:"engine" "beta" (fun () -> Unix.sleepf 0.001));
  Trace.add sink "k.count" 7;
  Trace.gauge sink "g.last" 1.25;
  sink

let test_manifest_valid () =
  let sink = recorded_sink () in
  let steps =
    [
      {
        Manifest.name = "Step A";
        seconds = 0.004;
        classified = 3;
        verdicts = [ ("UT", 2); ("UB", 1) ];
      };
    ]
  in
  let m =
    Manifest.make
      ~config:[ ("soc", J.Str "unit") ]
      ~steps
      ~prep:[ ("warmup", 0.001) ]
      ~wall_seconds:0.005 sink
  in
  match J.parse (J.to_string ~indent:true m) with
  | Error e -> Alcotest.failf "manifest does not re-parse: %s" e
  | Ok j ->
    let get k = J.member k j in
    Alcotest.(check (option int))
      "schema" (Some 1)
      (Option.bind (get "schema") J.to_int_opt);
    Alcotest.(check bool) "git present" true (get "git" <> None);
    let engine_total =
      Option.bind (get "engine_seconds_total") J.to_float_opt |> Option.get
    in
    let engines =
      match get "engines" with Some (J.Obj l) -> l | _ -> []
    in
    let sum =
      List.fold_left
        (fun a (_, v) -> a +. Option.get (J.to_float_opt v))
        0. engines
    in
    Alcotest.(check bool) "two engines" true (List.length engines = 2);
    Alcotest.(check bool)
      "engine total is the sum" true
      (abs_float (engine_total -. sum) < 1e-9);
    Alcotest.(check bool)
      "engine total positive" true (engine_total > 0.);
    (match get "counters" with
    | Some (J.Obj [ ("k.count", J.Int 7) ]) -> ()
    | _ -> Alcotest.fail "counters object wrong");
    (match get "steps" with
    | Some (J.List [ step ]) ->
      Alcotest.(check (option string))
        "step name" (Some "Step A")
        (Option.bind (J.member "name" step) J.to_string_opt)
    | _ -> Alcotest.fail "steps list wrong")

let test_chrome_trace_valid () =
  let sink = recorded_sink () in
  match J.parse (J.to_string (Export.chrome_json sink)) with
  | Error e -> Alcotest.failf "trace does not re-parse: %s" e
  | Ok j when J.member "traceEvents" j <> None ->
    let evs =
      match J.member "traceEvents" j with
      | Some (J.List evs) -> evs
      | _ -> Alcotest.fail "traceEvents is not a list"
    in
    let ph e = Option.bind (J.member "ph" e) J.to_string_opt in
    let xs = List.filter (fun e -> ph e = Some "X") evs in
    let ms = List.filter (fun e -> ph e = Some "M") evs in
    Alcotest.(check int)
      "one X event per span"
      (List.length (Trace.spans sink))
      (List.length xs);
    Alcotest.(check bool) "has metadata events" true (ms <> []);
    List.iter
      (fun e ->
        Alcotest.(check bool)
          "X event has ts and dur" true
          (Option.bind (J.member "ts" e) J.to_float_opt <> None
          && Option.bind (J.member "dur" e) J.to_float_opt <> None))
      xs
  | Ok _ -> Alcotest.fail "trace is not an event array"

(* --- Run_config --- *)

let test_run_config_env () =
  let module R = Olfu.Run_config in
  Unix.putenv "OLFU_JOBS" "3";
  Unix.putenv "OLFU_FF_MODE" "cut";
  Unix.putenv "OLFU_IMPLIC" "0";
  let c = R.of_env () in
  Alcotest.(check int) "jobs from env" 3 c.R.jobs;
  Alcotest.(check bool)
    "ff_mode from env" true
    (c.R.ff_mode = Olfu_atpg.Ternary.Cut);
  Alcotest.(check bool) "implic off" false c.R.implic;
  Alcotest.(check bool) "trace stays null" false (Trace.enabled c.R.trace);
  Unix.putenv "OLFU_JOBS" "9999";
  Alcotest.(check int) "jobs clamped" 64 (R.of_env ()).R.jobs;
  Unix.putenv "OLFU_JOBS" "";
  Unix.putenv "OLFU_FF_MODE" "";
  Unix.putenv "OLFU_IMPLIC" "";
  Alcotest.(check bool) "empty env = default" true (R.of_env () = R.default);
  List.iter
    (fun m ->
      Alcotest.(check (option string))
        "ff_mode name round-trips"
        (Some (R.ff_mode_name m))
        (Option.map R.ff_mode_name (R.ff_mode_of_string (R.ff_mode_name m))))
    [
      Olfu_atpg.Ternary.Cut; Olfu_atpg.Ternary.Reset_join;
      Olfu_atpg.Ternary.Steady_state;
    ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "strictness" `Quick test_json_strict;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "counter shards" `Quick test_counter_shards;
          QCheck_alcotest.to_alcotest prop_pool_counters_invariant;
          Alcotest.test_case "fsim counters jobs-invariant" `Quick
            test_fsim_counters_invariant;
        ] );
      ( "export",
        [
          Alcotest.test_case "manifest" `Quick test_manifest_valid;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_valid;
        ] );
      ( "run_config",
        [ Alcotest.test_case "of_env" `Quick test_run_config_env ] );
    ]
