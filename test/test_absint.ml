open Olfu_logic
open Olfu_soc
open Olfu_sbst
open Olfu_absint
module Memmap = Olfu_manip.Memmap

let l4 = Alcotest.testable Logic4.pp Logic4.equal
let cfg = Soc.tcore32

(* --- domains ---------------------------------------------------------- *)

let test_bitval_ops () =
  let w = 8 in
  let a = Bitval.exact w 0x5A and b = Bitval.exact w 0x0F in
  Alcotest.(check (option int)) "add" (Some 0x69) (Bitval.to_exact (Bitval.add a b));
  Alcotest.(check (option int)) "sub" (Some 0x4B) (Bitval.to_exact (Bitval.sub a b));
  Alcotest.(check (option int)) "and" (Some 0x0A) (Bitval.to_exact (Bitval.logand a b));
  let j = Bitval.join a b in
  (* 0x5A = 01011010, 0x0F = 00001111: agree on bits 1 (1), 3 (1), 5 (0), 7 (0) *)
  Alcotest.check l4 "joined bit1" Logic4.L1 (Bitval.bit j 1);
  Alcotest.check l4 "joined bit7" Logic4.L0 (Bitval.bit j 7);
  Alcotest.check l4 "joined bit0" Logic4.X (Bitval.bit j 0);
  Alcotest.(check bool) "contains a" true (Bitval.contains j 0x5A);
  Alcotest.(check bool) "contains b" true (Bitval.contains j 0x0F);
  (* partial add: unknown low bit poisons the carry chain upward only
     from where the carry can differ *)
  let x = Bitval.make w ~known:0xFE ~value:0x02 in
  let s = Bitval.add x (Bitval.exact w 0x01) in
  Alcotest.check l4 "sum bit0 unknown" Logic4.X (Bitval.bit s 0);
  Alcotest.(check bool) "sum admits 3" true (Bitval.contains s 0x03);
  Alcotest.(check bool) "sum admits 4" true (Bitval.contains s 0x04)

let test_vset_widen () =
  let s = Vset.of_list [ 1; 2; 3 ] in
  Alcotest.(check bool) "set join" true
    (Vset.equal (Vset.join s (Vset.exact 4)) (Vset.of_list [ 1; 2; 3; 4 ]));
  let big = Vset.of_list (List.init (Vset.cap + 1) (fun i -> i)) in
  (match big with
  | Vset.Range (0, hi) -> Alcotest.(check int) "hull hi" Vset.cap hi
  | _ -> Alcotest.fail "expected Range after overflow");
  (* a Range that grows again under widen must give up *)
  Alcotest.(check bool) "widen to top" true
    (Vset.equal (Vset.widen big (Vset.exact 100_000)) Vset.Top)

let test_aval_reduce () =
  let w = 16 in
  let a = Aval.of_values w [ 0x10; 0x11; 0x30 ] in
  Alcotest.check l4 "bit4 const 1" Logic4.L1 (Aval.bit a 4);
  Alcotest.check l4 "bit0 free" Logic4.X (Aval.bit a 0);
  Alcotest.(check bool) "contains" true (Aval.contains a 0x30);
  Alcotest.(check bool) "excludes" false (Aval.contains a 0x12);
  let sum = Aval.add a (Aval.exact w 0x100) in
  Alcotest.(check bool) "sum admits 0x110" true (Aval.contains sum 0x110);
  Alcotest.(check bool) "sum admits 0x111" true (Aval.contains sum 0x111);
  Alcotest.(check bool) "sum excludes 0x112" false (Aval.contains sum 0x112)

(* --- straight-line and control-flow precision ------------------------- *)

let test_straightline () =
  let items =
    [
      Asm.I (Isa.Li (1, 0x42));
      Asm.I (Isa.Sll (1, 4));
      Asm.I (Isa.Addi (1, 0x01));
      Asm.I (Isa.Li (2, 0x0F));
      Asm.I (Isa.And_ (2, 1));
      Asm.I (Isa.Halt);
    ]
  in
  let a = Absint.analyze ~xlen:16 (Asm.assemble items) in
  Alcotest.(check (option string)) "not degraded" None (Absint.degraded a);
  Alcotest.(check (option int)) "r1 at halt" (Some 0x421)
    (Aval.to_exact (Absint.reg_at a ~pc:5 1));
  Alcotest.(check (option int)) "r2 at halt" (Some 0x01)
    (Aval.to_exact (Absint.reg_at a ~pc:5 2));
  Alcotest.(check bool) "halt reachable" true (Absint.pc_reachable a 5);
  Alcotest.(check (list int)) "no dead code" [] (Absint.dead_pcs a)

let test_counted_loop () =
  (* r1 counts 5,4,..,1; loop exits with r1 = 0; r2 accumulates *)
  let items =
    [
      Asm.I (Isa.Li (1, 5));
      Asm.L "loop";
      Asm.I (Isa.Addi (2, 1));
      Asm.I (Isa.Addi (1, 0xFF));
      Asm.Bnez (1, "loop");
      Asm.I (Isa.Halt);
    ]
  in
  let a = Absint.analyze ~xlen:16 (Asm.assemble items) in
  Alcotest.(check (option string)) "not degraded" None (Absint.degraded a);
  (* branch refinement: after the loop (halt at word 4) r1 is exactly 0 *)
  Alcotest.(check (option int)) "r1 refined to 0" (Some 0)
    (Aval.to_exact (Absint.reg_at a ~pc:4 1));
  (* at the loop head r1 is the precise counter set *)
  let head = Absint.reg_at a ~pc:1 1 in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "head admits %d" v)
        true (Aval.contains head v))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "head excludes 6" false (Aval.contains head 6)

let test_dead_code () =
  let items =
    [
      Asm.I (Isa.Li (1, 3));
      Asm.Bnez (1, "skip");
      Asm.I (Isa.Li (2, 0x55));
      (* unreachable: r1 is exactly 3 *)
      Asm.L "skip";
      Asm.I (Isa.Halt);
    ]
  in
  let a = Absint.analyze ~xlen:16 (Asm.assemble items) in
  Alcotest.(check (list int)) "li r2 dead" [ 2 ] (Absint.dead_pcs a)

let test_degrade_self_modify () =
  (* a store aimed into the image degrades every claim *)
  let items = [ Asm.I (Isa.Sw (1, 0)); Asm.I (Isa.Halt) ] in
  let a = Absint.analyze ~xlen:16 (Asm.assemble items) in
  Alcotest.(check bool) "degraded" true (Absint.degraded a <> None);
  Alcotest.(check bool) "claims nothing dead" true (Absint.dead_pcs a = []);
  Alcotest.(check bool) "pc trivially reachable" true
    (Absint.pc_reachable a 0x1234);
  Alcotest.(check bool) "regs trivially top" true
    (Aval.contains (Absint.reg_at a ~pc:0 7) 0xABC)

(* --- the SBST suite --------------------------------------------------- *)

let suite_summaries = lazy (
  List.map (fun p -> (p.Programs.pname, Absint.of_program cfg p))
    (Programs.suite cfg))

let test_suite_analyzes () =
  List.iter
    (fun (name, a) ->
      Alcotest.(check (option string)) (name ^ " not degraded") None
        (Absint.degraded a);
      Alcotest.(check bool) (name ^ " stores to ram") true
        (Absint.stores_in a cfg.Soc.ram > 0);
      Alcotest.(check bool)
        (name ^ " no unmapped accesses")
        true
        (Absint.unmapped_accesses a [ cfg.Soc.rom; cfg.Soc.ram ] = []))
    (Lazy.force suite_summaries)

let test_suite_dead_code () =
  (* branch_exerciser deliberately jumps over one instruction with jr;
     everything else is fully reachable *)
  List.iter
    (fun (name, a) ->
      let dead = Absint.dead_pcs a in
      if name = "branch_exerciser" then
        Alcotest.(check bool) "has skipped words" true (dead <> [])
      else
        Alcotest.(check (list int)) (name ^ " fully reachable") [] dead)
    (Lazy.force suite_summaries)

let test_suite_constant_bits () =
  let ts = List.map snd (Lazy.force suite_summaries) in
  let consts = Absint.constant_addr_bits ~width:32 ts in
  (* the suite's fetches stay low in ROM and its data stays at the bottom
     of RAM: every map-level constant bit must also be program-constant *)
  let map_consts =
    Memmap.constant_bits ~width:32 [ cfg.Soc.rom; cfg.Soc.ram ]
  in
  List.iter
    (fun (bit, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "map-const bit %d also program-const" bit)
        true
        (List.mem (bit, v) consts))
    map_consts;
  (* bit 30 separates ROM (0) from RAM (1): the suite toggles it *)
  Alcotest.check l4 "bit 30 toggles" Logic4.X (Absint.addr_bit ts ~bit:30);
  Alcotest.check l4 "bit 31 constant 0" Logic4.L0 (Absint.addr_bit ts ~bit:31)

(* The acceptance regression: on the paper's Sec. 4 memory map, the
   absint-derived constant address bits of the whole suite agree exactly
   with Memmap.constant_bits. *)
let test_paper_case_regression () =
  let regions = Memmap.paper_case_study () in
  let flash = List.nth regions 0 and ram = List.nth regions 1 in
  let pcfg = { cfg with Soc.name = "tcore32-paper"; rom = flash; ram } in
  let ts = List.map (Absint.of_program pcfg) (Programs.suite pcfg) in
  List.iter
    (fun a ->
      Alcotest.(check (option string)) "paper suite not degraded" None
        (Absint.degraded a))
    ts;
  let derived = Absint.region_constant_bits ~width:32 ts regions in
  let expected = Memmap.constant_bits ~width:32 regions in
  Alcotest.(check (list (pair int bool))) "matches Memmap.constant_bits"
    expected derived;
  let check = Absint.cross_check ~width:32 ts regions in
  Alcotest.(check (list string)) "no violations" [] check.Absint.violations;
  Alcotest.(check bool) "ok" true check.Absint.ok

let test_never_written () =
  let ts = List.map snd (Lazy.force suite_summaries) in
  let gaps = Absint.never_written ts cfg.Soc.ram in
  Alcotest.(check bool) "has untouched tail" true (gaps <> []);
  (* the suite writes the bottom of RAM, so the base address is excluded *)
  Alcotest.(check bool) "base is written" true
    (List.for_all (fun (lo, _) -> lo > cfg.Soc.ram.Memmap.lo) gaps);
  (* every gap really is never written *)
  List.iter
    (fun (lo, hi) ->
      List.iter
        (fun a ->
          Alcotest.(check bool) "no store in gap" false
            (Absint.may_write a ~addr:lo || Absint.may_write a ~addr:hi))
        ts)
    gaps

let test_rdata_upper_half_constant () =
  (* 16-bit encodings fetched over a 32-bit bus: the upper half of
     bus_rdata can never toggle, and the signature loads stay narrow *)
  let ts = List.map snd (Lazy.force suite_summaries) in
  let consts = Absint.rdata_constant_bits ~width:32 ts in
  List.iter
    (fun bit ->
      Alcotest.(check bool)
        (Printf.sprintf "rdata bit %d constant 0" bit)
        true
        (List.mem (bit, false) consts))
    [ 16; 20; 31 ]

(* --- hand-off to the structural side ---------------------------------- *)

let test_netlist_assume_and_ternary () =
  let nl = Soc.generate cfg in
  let ts = List.map snd (Lazy.force suite_summaries) in
  let assume = Absint.netlist_assume ~width:32 ts nl in
  Alcotest.(check bool) "nonempty assumption set" true (assume <> []);
  (* forcing software constants can only help: strictly more constant
     nets than the plain mission analysis *)
  let plain = Olfu_atpg.Ternary.run nl in
  let sw = Olfu_atpg.Ternary.run ~assume nl in
  Alcotest.(check bool) "more constants" true
    (Olfu_atpg.Ternary.num_const sw > Olfu_atpg.Ternary.num_const plain);
  (* the assumed nodes themselves hold their value in the result *)
  List.iter
    (fun (node, v) ->
      Alcotest.check l4 "assumed node held" v
        (Olfu_atpg.Ternary.const_of sw node))
    assume

let test_assume_script () =
  let nl = Soc.generate cfg in
  let ts = List.map snd (Lazy.force suite_summaries) in
  let script = Absint.assume_script ~width:32 ts nl in
  Alcotest.(check bool) "nonempty script" true (script <> []);
  (* the script must apply cleanly to the netlist it was derived from *)
  let nl' = Olfu_manip.Script.apply nl script in
  Alcotest.(check bool) "applies" true (Olfu_netlist.Netlist.length nl' > 0)

let test_software_facts_lint () =
  let nl = Soc.generate cfg in
  let sw =
    Absint.software_facts ~label:"sbst-suite" cfg nl
      (Lazy.force suite_summaries)
  in
  Alcotest.(check bool) "const bits found" true
    (sw.Olfu_lint.Ctx.sw_const_addr_bits <> []);
  Alcotest.(check bool) "ram observed" true sw.Olfu_lint.Ctx.sw_ram_stores;
  Alcotest.(check (list string)) "all accesses mapped" []
    sw.Olfu_lint.Ctx.sw_unmapped;
  let outcome = Olfu_lint.Lint.run ~software:sw nl in
  let codes =
    List.map
      (fun (f : Olfu_lint.Rule.finding) -> f.Olfu_lint.Rule.code)
      outcome.Olfu_lint.Lint.findings
  in
  Alcotest.(check bool) "SW-CONST fires" true (List.mem "SW-CONST" codes);
  Alcotest.(check bool) "SW-DEAD fires (branch_exerciser)" true
    (List.mem "SW-DEAD" codes);
  Alcotest.(check bool) "SW-OBS silent" false (List.mem "SW-OBS" codes);
  Alcotest.(check bool) "SW-MAP silent" false (List.mem "SW-MAP" codes);
  Alcotest.(check bool) "no errors with software facts" true
    (Olfu_lint.Lint.errors outcome.Olfu_lint.Lint.findings = []);
  (* without software facts the SW rules stay silent *)
  let codes0 =
    List.map
      (fun (f : Olfu_lint.Rule.finding) -> f.Olfu_lint.Rule.code)
      (Olfu_lint.Lint.findings nl)
  in
  Alcotest.(check bool) "silent without facts" false
    (List.exists (fun c -> String.length c >= 3 && String.sub c 0 3 = "SW-") codes0)

let test_sw_obs_fires_on_storeless_program () =
  let nl = Soc.generate cfg in
  let storeless =
    { Programs.pname = "no-store"; items = [ Asm.I (Isa.Li (1, 1)); Asm.I Isa.Halt ] }
  in
  let a = Absint.of_program cfg storeless in
  let sw = Absint.software_facts ~label:"no-store" cfg nl [ ("no-store", a) ] in
  let outcome = Olfu_lint.Lint.run ~software:sw nl in
  Alcotest.(check bool) "SW-OBS error" true
    (List.exists
       (fun (f : Olfu_lint.Rule.finding) -> f.Olfu_lint.Rule.code = "SW-OBS")
       (Olfu_lint.Lint.errors outcome.Olfu_lint.Lint.findings))

(* --- qcheck soundness harness ----------------------------------------- *)

(* Structured random programs: arithmetic over r0..r5, stores/loads via
   an address register pointed into a high window, forward skips, and
   counted loops — assembled flat, run concretely with the trace hook,
   and every concrete value must lie inside the abstract one. *)
let gen_items =
  let open QCheck2.Gen in
  let label_id = ref 0 in
  let fresh prefix =
    incr label_id;
    Printf.sprintf "%s%d" prefix !label_id
  in
  let reg = int_range 0 5 in
  let arith =
    oneof
      [
        map2 (fun rd v -> [ Asm.I (Isa.Li (rd, v)) ]) reg (int_bound 255);
        map2 (fun rd v -> [ Asm.I (Isa.Addi (rd, v)) ]) reg (int_bound 255);
        map2 (fun rd rs -> [ Asm.I (Isa.Add (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.Sub (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.And_ (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.Or_ (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.Xor_ (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.Mul (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.Mulh (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.Div (rd, rs)) ]) reg reg;
        map2 (fun rd rs -> [ Asm.I (Isa.Rem (rd, rs)) ]) reg reg;
        map2 (fun rd sh -> [ Asm.I (Isa.Sll (rd, sh)) ]) reg (int_bound 15);
        map2 (fun rd sh -> [ Asm.I (Isa.Srl (rd, sh)) ]) reg (int_bound 15);
      ]
  in
  let mem =
    (* r6 := 0x4000+k (far from the image), then store or load there *)
    map3
      (fun k rs load ->
        Asm.load_const_fixed 6 (0x4000 + k) ~nibbles:4
        @ [ Asm.I (if load then Isa.Lw (rs, 6) else Isa.Sw (rs, 6)) ])
      (int_bound 63) reg bool
  in
  let mem_walk =
    (* store or load through r6, then advance it: inside a loop this
       walks an address range instead of hitting one constant address *)
    map3
      (fun stride rs load ->
        [
          Asm.I (if load then Isa.Lw (rs, 6) else Isa.Sw (rs, 6));
          Asm.I (Isa.Addi (6, stride));
        ])
      (int_range 1 8) reg bool
  in
  let skip body =
    map2
      (fun rs items ->
        let l = fresh "skip" in
        (Asm.Beqz (rs, l) :: items) @ [ Asm.L l ])
      reg body
  in
  let loop body =
    map2
      (fun n items ->
        let l = fresh "loop" in
        [ Asm.I (Isa.Li (7, n)) ]
        @ [ Asm.L l ] @ items
        @ [ Asm.I (Isa.Addi (7, 0xFF)); Asm.Bnez (7, l) ])
      (int_range 1 6)
      body
  in
  let block =
    oneof [ arith; arith; arith; mem; mem_walk ] |> list_size (int_range 1 6)
    >|= List.concat
  in
  let structured =
    oneof [ block; skip block; loop block ] |> list_size (int_range 1 5)
    >|= List.concat
  in
  (* r6 starts in the high window so a walk that never resets it still
     stays clear of the image *)
  structured >|= fun items ->
  Asm.load_const_fixed 6 0x4000 ~nibbles:4 @ items @ [ Asm.I Isa.Halt ]

let prop_soundness =
  QCheck2.Test.make ~count:150 ~name:"concrete trace inside abstraction"
    gen_items (fun items ->
      let words = Asm.assemble items in
      let a = Absint.analyze ~xlen:16 words in
      let rdata_consts = Absint.rdata_constant_bits ~width:16 [ a ] in
      let rdata_admits v =
        List.for_all
          (fun (bit, b) -> (v lsr bit) land 1 = Bool.to_int b)
          rdata_consts
      in
      let sim = Isa_sim.create ~xlen:16 in
      Isa_sim.load sim ~addr:0 words;
      let ok = ref true in
      Isa_sim.on_event sim (function
        | Isa_sim.Fetch { pc; _ } ->
          if not (Absint.pc_reachable a pc) then ok := false;
          if
            pc >= 0
            && pc < Array.length words
            && not (rdata_admits words.(pc))
          then ok := false;
          for r = 0 to 15 do
            if not (Aval.contains (Absint.reg_at a ~pc r) (Isa_sim.reg sim r))
            then ok := false
          done
        | Isa_sim.Mem_write { addr; value } ->
          if not (Absint.may_write a ~addr) then ok := false;
          if not (Aval.contains (Absint.store_value a ~addr) value) then
            ok := false
        | Isa_sim.Mem_read { addr; value } ->
          if not (Absint.may_read a ~addr) then ok := false;
          if not (Aval.contains (Absint.load_result a ~addr) value) then
            ok := false;
          if not (rdata_admits value) then ok := false
        | Isa_sim.Reg_write _ -> ());
      ignore (Isa_sim.run ~max_steps:5_000 sim : Isa_sim.outcome);
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "absint"
    [
      ( "domains",
        [
          Alcotest.test_case "bitval ops" `Quick test_bitval_ops;
          Alcotest.test_case "vset widen" `Quick test_vset_widen;
          Alcotest.test_case "aval reduce" `Quick test_aval_reduce;
        ] );
      ( "engine",
        [
          Alcotest.test_case "straight line" `Quick test_straightline;
          Alcotest.test_case "counted loop" `Quick test_counted_loop;
          Alcotest.test_case "dead code" `Quick test_dead_code;
          Alcotest.test_case "degrade on self-modify" `Quick
            test_degrade_self_modify;
        ] );
      ( "suite",
        [
          Alcotest.test_case "analyzes clean" `Quick test_suite_analyzes;
          Alcotest.test_case "dead code" `Quick test_suite_dead_code;
          Alcotest.test_case "constant address bits" `Quick
            test_suite_constant_bits;
          Alcotest.test_case "paper case regression" `Quick
            test_paper_case_regression;
          Alcotest.test_case "never-written ram" `Quick test_never_written;
          Alcotest.test_case "rdata upper half" `Quick
            test_rdata_upper_half_constant;
        ] );
      ( "handoff",
        [
          Alcotest.test_case "ternary assume" `Quick
            test_netlist_assume_and_ternary;
          Alcotest.test_case "script applies" `Quick test_assume_script;
          Alcotest.test_case "lint software rules" `Quick
            test_software_facts_lint;
          Alcotest.test_case "sw-obs on storeless" `Quick
            test_sw_obs_fires_on_storeless_program;
        ] );
      ("soundness", [ qt prop_soundness ]);
    ]
