(* Invariant survey: mine, filter and prove state invariants on the
   tcore32 mission machine (debug controls tied by the flow, scan
   interface held functional), then show what the proofs buy the
   conflict-untestability engine. *)

open Olfu_netlist
module Soc = Olfu_soc.Soc
module Invar = Olfu_invar.Invar
module U = Olfu_atpg.Untestable
module Ternary = Olfu_atpg.Ternary

let () =
  let cfg = Soc.tcore32 in
  let nl = Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  let flow = Olfu.Flow.run Olfu.Run_config.default nl mission in
  let mnl = flow.Olfu.Flow.mission_netlist in
  let machine = Olfu_safety.Classify.bmc_machine mnl in
  Format.printf "tcore32 mission machine: %a@.@." Netlist.pp_summary machine;

  let t0 = Unix.gettimeofday () in
  let r = Invar.run machine in
  Format.printf "%a@.@." (Invar.pp machine) r;

  (* what the proved facts add to the conflict engine *)
  let observable = Olfu.Mission.observed_in_field mission mnl in
  let base = U.analyze ~observable_output:observable machine in
  let strengthened =
    U.analyze ~observable_output:observable
      ~consts:(Ternary.run ~assume:(Invar.assume_facts r) machine)
      ~extra_edges:(Invar.edges r) machine
  in
  let rows = U.untestable_breakdown ~invariant:strengthened base machine in
  Format.printf "untestable breakdown with the invariant row:@.";
  List.iter
    (fun (c, n) ->
      Format.printf "  %s %6d@." (Olfu_fault.Status.code (Undetectable c)) n)
    rows;
  Format.printf "total time: %.2f s@." (Unix.gettimeofday () -. t0)
