(* Full reproduction of the paper's Sec. 4 case study on the synthetic
   tcore32 SoC: generate the netlist, run the four-step identification
   flow, and print the Table I equivalent next to the paper's numbers. *)

let () =
  let cfg = Olfu_soc.Soc.tcore32 in
  Format.printf "generating %a ...@." Olfu_soc.Soc.pp_config cfg;
  let nl = Olfu_soc.Soc.generate cfg in
  Format.printf "%a@." Olfu_netlist.Stats.pp (Olfu_netlist.Stats.of_netlist nl);
  let mission = Olfu.Mission.of_soc cfg nl in
  Format.printf "%a@." Olfu.Mission.pp mission;
  let report = Olfu.Flow.run Olfu.Run_config.default nl mission in
  Format.printf "@.%a@." (Olfu.Flow.pp_table1 ~paper:true) report;
  (* the pruning effect on a hypothetical 85%-raw-coverage campaign *)
  Format.printf "@.%a@." Olfu_fault.Flist.pp_summary report.Olfu.Flow.flist
