(* Sec. 3.3 / Sec. 4 memory-map analysis on the paper's exact address
   ranges, plus a sweep showing how the populated-memory size drives the
   number of mission-constant address bits. *)

open Olfu_manip

let () =
  Format.printf "=== The paper's case study (Sec. 4) ===@.";
  let regions = Memmap.paper_case_study () in
  Format.printf "%a@.@." (Memmap.pp_report ~width:32) regions;
  Format.printf
    "(The paper states \"only the 18 less significant bits and the 30th \
     bit\";@. by its own ranges bit 18 also differs between flash (1) and \
     RAM (0),@. so the exact computation reports 20 free bits — see \
     EXPERIMENTS.md.)@.@.";

  Format.printf "=== The explanatory example of Sec. 3.3 ===@.";
  (* 1024x8 RAM and 4096x8 flash mapped back to back from address 0:
     only 12 address bits of the 32 ever move *)
  let small =
    [
      Memmap.region ~name:"ram" ~lo:0 ~hi:1023 ();
      Memmap.region ~name:"flash" ~lo:1024 ~hi:(1024 + 4095) ();
    ]
  in
  Format.printf "%a@.@." (Memmap.pp_report ~width:32) small;

  Format.printf "=== Sweep: populated size vs constant address bits ===@.";
  List.iter
    (fun bits ->
      let hi = (1 lsl bits) - 1 in
      let r = [ Memmap.region ~name:"mem" ~lo:0 ~hi () ] in
      Format.printf "  %2d-bit window: %2d constant bits of 32@." bits
        (List.length (Memmap.constant_bits ~width:32 r)))
    [ 8; 12; 16; 20; 24; 28; 31 ];

  Format.printf "@.=== tcore32 mission map ===@.";
  let cfg = Olfu_soc.Soc.tcore32 in
  Format.printf "%a@."
    (Memmap.pp_report ~width:cfg.Olfu_soc.Soc.xlen)
    (Olfu_soc.Soc.memmap_regions cfg)
