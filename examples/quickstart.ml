(* Quickstart: build the paper's Fig. 2 scenario by hand — a mux-scan cell
   in mission mode — identify its on-line untestable faults with the
   structural engine, and cross-check two verdicts with PODEM. *)

open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_atpg
module B = Netlist.Builder

let () =
  (* one mux-scan flip-flop: functional data FI, scan-in SI, scan enable
     tied low (the mission configuration) *)
  let b = B.create () in
  let fi = B.input b "FI" in
  let si = B.input b ~roles:[ Netlist.Scan_in ] "SI" in
  let se = B.tie b Logic4.L0 in
  let ff = B.sdff b ~name:"ff" ~d:fi ~si ~se in
  let _ = B.output b "FO" ff in
  let nl = B.freeze_exn b in

  Format.printf "netlist: %a@.@." Netlist.pp_summary nl;

  (* classify every stuck-at fault *)
  let analysis = Untestable.analyze nl in
  let fl = Flist.full nl in
  let n = Untestable.classify analysis fl in
  Format.printf "structural engine classified %d faults untestable:@." n;
  Flist.iteri
    (fun _ f st ->
      Format.printf "  %-24s %a@." (Fault.to_string nl f) Status.pp st)
    fl;

  (* the one fault the paper says must be kept: SE stuck-at-1 *)
  let se_sa1 = Fault.sa1 ff (Cell.Pin.In 2) in
  (match Podem.run nl se_sa1 with
  | Podem.Test assignment ->
    Format.printf "@.PODEM found a test for %s:@." (Fault.to_string nl se_sa1);
    List.iter
      (fun (pi, v) ->
        Format.printf "  %s = %d@."
          (Option.value ~default:"?" (Netlist.name nl pi))
          (Bool.to_int v))
      assignment
  | Podem.Proved_untestable -> Format.printf "unexpectedly untestable@."
  | Podem.Aborted -> Format.printf "search aborted@.");

  (* and one the scan rule prunes: SI stuck-at-0 is proved dead *)
  let si_sa0 = Fault.sa0 ff (Cell.Pin.In 1) in
  match Podem.run nl si_sa0 with
  | Podem.Proved_untestable ->
    Format.printf "@.PODEM proved %s untestable (as the paper's rule says)@."
      (Fault.to_string nl si_sa0)
  | _ -> Format.printf "@.unexpected PODEM result@."
