(* The paper's headline effect (Sec. 4): running a mature SBST suite and
   then pruning the on-line functionally untestable faults raises the
   reported fault coverage by roughly the pruned fraction.

   We reproduce it on the scaled-down tcore16: classify OLFU faults with
   the flow, grade the SBST suite with the sequential fault simulator on a
   random fault sample (fault sampling is standard industrial practice for
   sequential grading), and report coverage before and after pruning. *)

open Olfu_fault

let sample_flist fl ~seed ~size =
  let rng = Random.State.make [| seed |] in
  let n = Flist.size fl in
  let chosen = Hashtbl.create size in
  while Hashtbl.length chosen < min size n do
    Hashtbl.replace chosen (Random.State.int rng n) ()
  done;
  let idx = Hashtbl.fold (fun i () acc -> i :: acc) chosen [] in
  let idx = List.sort compare idx in
  let faults = Array.of_list (List.map (Flist.fault fl) idx) in
  let sample = Flist.create (Flist.netlist fl) faults in
  List.iteri (fun k i -> Flist.set_status sample k (Flist.status fl i)) idx;
  sample

let () =
  let sample_size =
    match Sys.argv with
    | [| _; n |] -> int_of_string n
    | _ -> 1500
  in
  let cfg = Olfu_soc.Soc.tcore16 in
  Format.printf "generating %s ...@." cfg.Olfu_soc.Soc.name;
  let nl = Olfu_soc.Soc.generate cfg in
  Format.printf "%a@." Olfu_netlist.Stats.pp (Olfu_netlist.Stats.of_netlist nl);
  let mission = Olfu.Mission.of_soc cfg nl in
  let report = Olfu.Flow.run Olfu.Run_config.default nl mission in
  Format.printf "%a@.@." (Olfu.Flow.pp_table1 ~paper:false) report;
  let sample = sample_flist report.Olfu.Flow.flist ~seed:42 ~size:sample_size in
  Format.printf "grading SBST suite on a %d-fault sample ...@."
    (Flist.size sample);
  let t0 = Unix.gettimeofday () in
  let summary =
    Olfu_sbst.Coverage.grade cfg nl sample (Olfu_sbst.Programs.suite cfg)
  in
  Format.printf "%a@." Olfu_sbst.Coverage.pp_summary summary;
  Format.printf "grading time: %.1f s@." (Unix.gettimeofday () -. t0);
  let delta =
    100.
    *. (summary.Olfu_sbst.Coverage.pruned_coverage
       -. summary.Olfu_sbst.Coverage.raw_coverage)
  in
  Format.printf
    "@.coverage gained by pruning OLFU faults: %+.1f points (paper: ~13)@."
    delta;
  Format.printf "%a@." Olfu.Safety.pp_verdict
    (Olfu.Safety.assess Olfu.Safety.D sample)
