(* Sec. 3.1 end to end: insert scan into a small design, trace the chains,
   apply the scan rule, and verify the pruned faults against the
   structural engine with SE tied to its mission value. *)

open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_manip
module B = Netlist.Builder

let build_design () =
  (* a 4-bit accumulator: acc <- acc + in, with the sum observable *)
  let b = B.create () in
  let rstn = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let inp = Olfu_soc.Rtl.input_bus b "in" 4 in
  let acc =
    Olfu_soc.Rtl.reg_feedback b ~name:"acc" ~rstn ~width:4 (fun q ->
        fst (Olfu_soc.Rtl.adder b q inp))
  in
  Olfu_soc.Rtl.output_bus b "acc_out" acc;
  B.freeze_exn b

let () =
  let nl = build_design () in
  Format.printf "before scan: %a@." Netlist.pp_summary nl;
  let r = Olfu_soc.Scan_insert.insert ~chains:2 ~link_buffers:1 nl in
  let nl = r.Olfu_soc.Scan_insert.netlist in
  Format.printf "after scan:  %a@.@." Netlist.pp_summary nl;

  let chains = Scan_trace.trace nl in
  List.iteri
    (fun i c -> Format.printf "chain %d: %a@." i (Scan_trace.pp_chain nl) c)
    chains;

  let fl = Flist.full nl in
  let pruned = Scan_trace.prune nl fl in
  Format.printf "@.scan rule pruned %d of %d faults:@." pruned (Flist.size fl);
  List.iter
    (fun f -> Format.printf "  %s@." (Fault.to_string nl f))
    (Scan_trace.untestable_faults nl);

  (* the paper's verification step: tie SE and let the engine confirm *)
  let tied =
    Script.apply nl
      [
        Script.Tie_input ("scan_en", Logic4.L0);
        Script.Float_output "scan_out0"; Script.Float_output "scan_out1";
      ]
  in
  let t = Olfu_atpg.Untestable.analyze tied in
  let confirmed =
    List.for_all
      (fun f ->
        let { Fault.node; pin } = f.Fault.site in
        let on_se_branch =
          match pin with
          | Cell.Pin.In 2 -> Cell.is_seq (Netlist.kind tied node)
          | _ -> false
        in
        on_se_branch || Olfu_atpg.Untestable.fault_verdict t f <> None)
      (Scan_trace.untestable_faults tied)
  in
  Format.printf "@.engine confirms the rule (SE tied to 0): %b@." confirmed
