(* The fault-model extension announced in the paper's conclusion ("we are
   currently working to extend the proposed technique to other fault
   models"): the same four-step identification flow replayed for
   transition-delay faults.

   A transition fault needs its pin launched to both values and the late
   transition captured, so every mission-constant pin loses both its
   slow-to-rise and slow-to-fall faults — including the scan-enable pins
   whose stuck-at-1 the stuck-at flow must keep. *)

let () =
  let cfg = Olfu_soc.Soc.tcore16 in
  Format.printf "generating %s ...@." cfg.Olfu_soc.Soc.name;
  let nl = Olfu_soc.Soc.generate cfg in
  let m = Olfu.Mission.of_soc cfg nl in
  Format.printf "%a@.@." Olfu.Tdf_flow.pp (Olfu.Tdf_flow.run Olfu.Run_config.default nl m);
  (* the contrast with stuck-at on the same netlist *)
  let r = Olfu.Flow.run Olfu.Run_config.default nl m in
  Format.printf "stuck-at for comparison:@.%a@."
    (Olfu.Flow.pp_table1 ~paper:false) r
