#!/bin/sh
# Tier-1 gate: build, run the unit tests, then require the tcore32
# generator to come out of the lint registry with no errors.
set -e
cd "$(dirname "$0")/.."

dune build
dune runtest

dune exec bin/olfu_cli.exe -- lint -c tcore32 --fail-on error
