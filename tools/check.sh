#!/bin/sh
# Tier-1 gate: build, run the unit tests, then require the tcore32
# generator to come out of the lint registry with no errors, the
# abstract interpreter to analyse the SBST suite cleanly (including
# the cross-check against the memory map), and the software-aware
# lint pass to stay error-free on every core.
#
# Each gate is timed so slow ones are visible: `gate <name> <cmd...>`
# prints the wall seconds after the command finishes (and still fails
# the whole script on a non-zero exit, via set -e).
set -e
cd "$(dirname "$0")/.."

gate() {
  _name="$1"; shift
  _t0=$(date +%s)
  "$@"
  echo "[gate ${_name}: $(( $(date +%s) - _t0 )) s]"
}

# Source lint: cheap grep-level hygiene over lib/ before anything is
# built.  Three classes, each waivable by putting the token
# `source-lint-ok` in a comment on the same line:
#   - Obj.magic in any lib/ implementation (type-safety escape hatch);
#   - polymorphic Stdlib.compare / Stdlib.(=) spelled out in the hot
#     engine paths (fsim/atpg/safety/invar/slice) where a monomorphic
#     compare belongs (bare `compare` is fine — that is usually the
#     module's own);
#   - leftover Printf.printf debugging in lib/ (libraries report
#     through Format/Fmt or return data; Printf.sprintf and
#     Format.printf are not matched).
source_lint() {
  _fail=0
  _hits=$(grep -rn 'Obj\.magic' lib --include='*.ml' \
    | grep -v 'source-lint-ok' || true)
  if [ -n "$_hits" ]; then
    echo "source-lint: Obj.magic in lib/:"; echo "$_hits"; _fail=1
  fi
  _hits=$(grep -rn 'Stdlib\.compare\|Stdlib\.( *= *)' \
    lib/fsim lib/atpg lib/safety lib/invar lib/slice --include='*.ml' \
    | grep -v 'source-lint-ok' || true)
  if [ -n "$_hits" ]; then
    echo "source-lint: polymorphic Stdlib compare/= in hot paths:"
    echo "$_hits"; _fail=1
  fi
  _hits=$(grep -rn 'Printf\.printf' lib --include='*.ml' \
    | grep -v 'source-lint-ok' || true)
  if [ -n "$_hits" ]; then
    echo "source-lint: Printf.printf left in lib/:"; echo "$_hits"; _fail=1
  fi
  return $_fail
}
gate source-lint source_lint

gate build dune build
gate runtest dune runtest

gate absint dune exec bin/olfu_cli.exe -- absint -c tcore32 --suite

for core in tcore32 tcore32_dft tcore16; do
  gate "lint-$core" dune exec bin/olfu_cli.exe -- lint -c "$core" --fail-on error
  gate "lint-sw-$core" dune exec bin/olfu_cli.exe -- lint -c "$core" --software --fail-on error
done

# Fault-simulation smoke gate: the cone-limited engine at --jobs 2 must
# reproduce the sequential full-settle statuses exactly on tcore32 (the
# bench exits non-zero on any divergence) and refreshes BENCH_fsim.json.
gate fsim dune exec bench/main.exe -- fsim

# Implication-engine gate: the flow with the conflict engine must classify
# strictly more faults than UT+UB alone, stay jobs-invariant and monotone,
# and survive the BMC oracle spot-check; refreshes BENCH_implic.json.
gate implic dune exec bench/main.exe -- implic

# Scheduler gate: re-read the refreshed BENCH JSONs and require the
# recorded seconds to be monotone non-increasing across jobs 1 -> 2 -> 4
# (tolerance 1.10 for timer noise) — adding a domain must never slow the
# wall clock down again.
speedup_monotone() {
  awk '
    /"jobs":/ && match($0, /"seconds": *[0-9.]+/) {
      s[n++] = substr($0, RSTART + 11, RLENGTH - 11) + 0
    }
    END {
      if (n < 3) { print "fsim: cone seconds missing"; exit 1 }
      for (i = 1; i < 3; i++)
        if (s[i] > s[i-1] * 1.10) {
          printf "fsim: jobs seconds not monotone (%.3f -> %.3f)\n", \
            s[i-1], s[i]
          exit 1
        }
    }' BENCH_fsim.json
  awk '
    /"config": "implic_/ && match($0, /"seconds": *[0-9.]+/) {
      s[n++] = substr($0, RSTART + 11, RLENGTH - 11) + 0
    }
    END {
      if (n < 6) { print "implic: run seconds missing"; exit 1 }
      for (i = 1; i < 6; i++) {
        if (i == 3) continue  # off jobs4 -> on jobs1 boundary
        if (s[i] > s[i-1] * 1.10) {
          printf "implic: jobs seconds not monotone (%.3f -> %.3f)\n", \
            s[i-1], s[i]
          exit 1
        }
      }
    }' BENCH_implic.json
}
gate speedup-monotone speedup_monotone

# Observability gate: the analyze flow must emit a schema-valid run
# manifest and a Chrome-loadable trace, with per-engine and per-step
# seconds each summing to within 5% of the recorded wall time, and
# counters identical across --jobs 1/2/4; refreshes BENCH_obs.json.
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
gate analyze-obs sh -c "dune exec bin/olfu_cli.exe -- analyze -c tcore32 \
  --trace '$OBS_TMP/trace.json' --manifest '$OBS_TMP/manifest.json' \
  > /dev/null"
gate obs dune exec bench/main.exe -- obs "$OBS_TMP/manifest.json" "$OBS_TMP/trace.json"

# Safety-taxonomy gate: the classifier must stay consistent on every
# core (partition, untouched structural/conflict populations), prove
# software-safe faults and unmasked flops on tcore32, stay jobs-invariant,
# and survive the BMC + replay oracles; refreshes BENCH_safety.json.
gate safety dune exec bench/main.exe -- safety

# Invariant-engine gate: mine/filter/prove must stay jobs-invariant
# (unique greatest inductive subset), prove a non-constant class on
# tcore32, survive the bounded reachability oracle, and close >= 1
# conflict fault the plain analysis leaves open (UC-delta); refreshes
# BENCH_invar.json.
gate invar dune exec bench/main.exe -- invar

# Slicing gate: the constant-severed cone-of-influence engine must keep
# every BMC-backed verdict bit-identical to the full machine on tcore16
# (SEU classes, invariant proved set, sampled BMC oracle), shrink the
# mean slice against the structural cone, and carry a full
# --seu-limit 0 sweep of tcore32; refreshes BENCH_slice.json.
gate slice dune exec bench/main.exe -- slice
slice_identity() {
  awk '
    /"severing_ok":/  { ok1 = /true/ }
    /"seu_identical":/ { ok2 = /true/ }
    /"invar_identical":/ { ok3 = /true/ }
    /"oracle_identical":/ { ok4 = /true/ }
    /"full32_flops":/ && match($0, /[0-9]+/) { flops = substr($0, RSTART, RLENGTH) + 0 }
    END {
      if (!(ok1 && ok2 && ok3 && ok4)) {
        print "slice: identity flags not all true in BENCH_slice.json"
        exit 1
      }
      if (flops <= 0) {
        print "slice: full tcore32 sweep missing from BENCH_slice.json"
        exit 1
      }
    }' BENCH_slice.json
}
gate slice-identity slice_identity

# Daemon gate: start `olfu serve` in the background, require a warm
# repeat of the same analyze request to come back as a cache hit in
# < 0.5x the cold wall time with byte-identical output, require lint
# through the daemon to agree with the one-shot CLI, then shut the
# daemon down cleanly (it must exit 0 and remove its socket).
serve_gate() {
  # the build gate has already run: use the binary directly so the
  # backgrounded daemon and the clients never race dune's build lock
  _CLI=_build/default/bin/olfu_cli.exe
  _sock="$OBS_TMP/olfu.sock"
  "$_CLI" serve --socket "$_sock" --workers 2 \
    > "$OBS_TMP/serve.log" 2>&1 &
  _srv=$!
  "$_CLI" client --socket "$_sock" --wait 10 --ping \
    > /dev/null

  _req='{"op": "analyze", "target": {"config": "tcore32"}, "jobs": 2, "format": "json"}'
  _t0=$(date +%s.%N 2>/dev/null || date +%s)
  "$_CLI" client --socket "$_sock" --raw "$_req" \
    > "$OBS_TMP/cold.raw"
  _t1=$(date +%s.%N 2>/dev/null || date +%s)
  "$_CLI" client --socket "$_sock" --raw "$_req" \
    > "$OBS_TMP/warm.raw"
  _t2=$(date +%s.%N 2>/dev/null || date +%s)

  grep -q '"cache_hit":false' "$OBS_TMP/cold.raw" || {
    echo "serve: cold request unexpectedly hit the cache"; return 1; }
  grep -q '"cache_hit":true' "$OBS_TMP/warm.raw" || {
    echo "serve: warm repeat was not a cache hit"; return 1; }

  # identity modulo the envelope: neutralize the wall-clock and
  # cache-hit fields of the raw one-line responses before comparing —
  # everything else, including the full rendered output, must match
  _strip='s/"seconds":[0-9.eE+-]*/"seconds":0/; s/"cache_hit":[a-z]*/"cache_hit":x/'
  sed "$_strip" "$OBS_TMP/cold.raw" > "$OBS_TMP/cold.strip"
  sed "$_strip" "$OBS_TMP/warm.raw" > "$OBS_TMP/warm.strip"
  cmp -s "$OBS_TMP/cold.strip" "$OBS_TMP/warm.strip" || {
    echo "serve: warm bytes differ from cold bytes"; return 1; }
  "$_CLI" analyze -c tcore32 -j 2 --format json \
    --connect "$_sock" > "$OBS_TMP/daemon.json"
  "$_CLI" analyze -c tcore32 -j 2 --format json \
    > "$OBS_TMP/oneshot.json"
  cmp -s "$OBS_TMP/daemon.json" "$OBS_TMP/oneshot.json" || {
    echo "serve: daemon and one-shot CLI output differ"; return 1; }

  # the warm round-trip must beat half the cold wall time (the cold
  # request carries generate + flow; sub-second timers only on busybox
  # date fall back to whole seconds, where 0 < 0.5*cold still holds)
  awk -v c="$_t1" -v a="$_t0" -v w="$_t2" '
    BEGIN {
      cold = c - a; warm = w - c
      if (cold > 0 && warm >= 0.5 * cold) {
        printf "serve: warm %.3fs not < 0.5x cold %.3fs\n", warm, cold
        exit 1
      }
    }' || return 1

  "$_CLI" lint -c tcore16 --connect "$_sock" \
    > "$OBS_TMP/lint-daemon.txt"
  "$_CLI" lint -c tcore16 \
    > "$OBS_TMP/lint-oneshot.txt"
  cmp -s "$OBS_TMP/lint-daemon.txt" "$OBS_TMP/lint-oneshot.txt" || {
    echo "serve: daemon and one-shot lint output differ"; return 1; }

  "$_CLI" client --socket "$_sock" --shutdown \
    > /dev/null
  wait $_srv || { echo "serve: daemon exited non-zero"; return 1; }
  [ ! -S "$_sock" ] || { echo "serve: socket left behind"; return 1; }
}
gate serve serve_gate

# Daemon bench gate: cold/warm/speedup/identity/throughput figures,
# with the cache-hit, 2x-speedup and byte-identity gates enforced by
# the bench itself; refreshes BENCH_serve.json.
gate serve-bench dune exec bench/main.exe -- serve
