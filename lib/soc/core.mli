open Olfu_netlist

(** The tcore gate-level processor: a multicycle (fetch / execute /
    memory) implementation of {!Isa}, with register file, ALU, barrel
    shifter, address-generation unit, branch target buffer and an optional
    Nexus-like debug unit.

    The generator emits nets only; {!Soc.generate} wraps it with ports and
    scan insertion.  Addresses are word addresses ([xlen] wide); the PC,
    memory address register, BTB tags/targets and the bus address port
    carry {!Netlist.Address_reg} / {!Netlist.Address_port} roles so the
    memory-map rule can find them. *)

type ports = {
  rstn : int;
  rdata : Rtl.bus;  (** bus read data (instruction fetch and loads) *)
  addr : Rtl.bus;  (** bus address (word address) *)
  wdata : Rtl.bus;
  rd_en : int;
  wr_en : int;
  halted : int;
  perf_tick : int;
      (** pulse when the retired-instruction counter hits a magic value *)
  misr : Rtl.bus;  (** signature register compacting all bus writes *)
  gpr_obs : Rtl.bus option;  (** debug observation: selected register *)
  spr_obs : Rtl.bus option;  (** debug observation: PC / state / IR *)
}

val build :
  Netlist.Builder.t ->
  rstn:int ->
  rdata:Rtl.bus ->
  xlen:int ->
  btb_entries:int ->
  debug:bool ->
  ports
(** [xlen >= 16].  [rstn] and [rdata] are created by the caller (so a
    boundary-scan wrapper can sit between the pins and the core); the
    debug inputs are declared here when [debug]. *)
