open Olfu_netlist
module B = Netlist.Builder

type ports = {
  rstn : int;
  rdata : Rtl.bus;
  addr : Rtl.bus;
  wdata : Rtl.bus;
  rd_en : int;
  wr_en : int;
  halted : int;
  perf_tick : int;  (* pulses when the retired-instruction counter hits the
                       magic count: a small always-on functional output *)
  misr : Rtl.bus;  (* multiple-input signature register over bus writes *)
  gpr_obs : Rtl.bus option;
  spr_obs : Rtl.bus option;
}

(* state encoding: 0 = fetch, 1 = execute, 2 = memory *)

let build b ~rstn ~rdata ~xlen ~btb_entries ~debug =
  if xlen < 16 then invalid_arg "Core.build: xlen must be >= 16";
  if Rtl.width rdata <> xlen then
    invalid_arg "Core.build: rdata width must equal xlen";
  let dbg = if debug then Some (Debug_unit.build b ~rstn ~xlen) else None in

  (* --- architectural state (placeholders, closed at the end) --- *)
  let addr_reg i = [ Netlist.Address_reg i ] in
  let pc = Rtl.reg_placeholder b ~name:"pc" ~roles:addr_reg ~rstn ~width:xlen in
  let ir = Rtl.reg_placeholder b ~name:"ir" ~rstn ~width:16 in
  let st = Rtl.reg_placeholder b ~name:"st" ~rstn ~width:2 in
  let mar =
    Rtl.reg_placeholder b ~name:"mar" ~roles:addr_reg ~rstn ~width:xlen
  in
  let wdreg = Rtl.reg_placeholder b ~name:"wdreg" ~rstn ~width:xlen in
  let halted_r = Rtl.reg_placeholder b ~name:"halted_r" ~rstn ~width:1 in
  let rf =
    Array.init 16 (fun r ->
        Rtl.reg_placeholder b ~name:(Printf.sprintf "rf/r%d" r) ~rstn
          ~width:xlen)
  in

  (* --- decode --- *)
  let op = Rtl.slice ir 12 4 in
  let sel_op = Rtl.decoder b op in
  let is o = sel_op.(o) in
  let rd_field = Rtl.slice ir 8 4 in
  let rs_field = Rtl.slice ir 4 4 in
  let imm8 = Rtl.slice ir 0 8 in
  let imm4 = Rtl.slice ir 0 4 in
  let stf = Rtl.eq_const b st 0 in
  let ste = Rtl.eq_const b st 1 in
  let stm = Rtl.eq_const b st 2 in

  (* --- register-file read ports --- *)
  let rf_rows = Array.to_list rf in
  let rf_a = Rtl.mux_tree b ~sel:rd_field rf_rows in
  let rf_b = Rtl.mux_tree b ~sel:rs_field rf_rows in

  (* --- ALU --- *)
  let imm8z = Rtl.zero_extend b imm8 xlen in
  let imm8s = Rtl.sign_extend b imm8 xlen in
  let opb = Rtl.mux b ~sel:(is Isa.Op.addi) ~a:rf_b ~b:imm8s in
  let is_sub = is Isa.Op.sub in
  let addend = Rtl.mux b ~sel:is_sub ~a:opb ~b:(Rtl.not_ b opb) in
  let sum, _carry = Rtl.adder b ~name:"alu/sum" ~cin:is_sub rf_a addend in
  let andv = Rtl.and_ b ~name:"alu/and" rf_a opb in
  let orv = Rtl.or_ b ~name:"alu/or" rf_a opb in
  let xorv = Rtl.xor_ b ~name:"alu/xor" rf_a opb in
  let shl = Rtl.barrel_shift b rf_a ~shamt:imm4 `Left in
  let shr = Rtl.barrel_shift b rf_a ~shamt:imm4 `Right in
  (* multiply-divide unit: MUL/MULH live in the opcode-0 family *)
  let product = Rtl.multiplier b rf_a rf_b in
  let mul_lo = Rtl.slice product 0 xlen in
  let mul_hi = Rtl.slice product xlen xlen in
  let quot, remv = Rtl.divider b ~dividend:rf_a ~divisor:rf_b in
  let is_mul = Rtl.eq_const b imm4 1 in
  let is_mulh = Rtl.eq_const b imm4 2 in
  let is_div = Rtl.eq_const b imm4 3 in
  let is_rem = Rtl.eq_const b imm4 4 in
  (* funct decode of the opcode-0 family *)
  let op0_result =
    Rtl.mux_tree b ~sel:(Rtl.slice imm4 0 3)
      [ rf_a; mul_lo; mul_hi; quot; remv; rf_a; rf_a; rf_a ]
  in
  let op0_result =
    (* funct >= 8 is nop *)
    Rtl.mux b ~sel:imm4.(3) ~a:op0_result ~b:rf_a
  in
  let alu_result =
    Rtl.mux_tree b ~sel:op
      [
        op0_result (* nop/mul/mulh *); imm8z (* li *); sum (* addi *);
        sum (* add *); sum (* sub *); andv; orv; xorv; shl; shr;
        rf_a (* lw *); rf_a (* sw *); rf_a (* beqz *); rf_a (* bnez *);
        rf_a (* jr *); rf_a (* halt *);
      ]
  in

  (* --- branch unit / AGU --- *)
  let pc_inc = Rtl.increment b pc in
  let a_zero = B.not_ b ~name:"br/zero" (Rtl.reduce_or b rf_a) in
  let is_beqz = is Isa.Op.beqz and is_bnez = is Isa.Op.bnez in
  let is_jr = is Isa.Op.jr in
  let rel_branch = B.or2 b is_beqz is_bnez in
  let taken_rel =
    B.or2 b
      (B.and2 b is_beqz a_zero)
      (B.and2 b is_bnez (B.not_ b a_zero))
  in
  let taken = B.or2 b ~name:"br/taken" taken_rel is_jr in
  let badd, _ = Rtl.adder b ~name:"agu/btarget" pc_inc imm8s in

  (* --- control / advance --- *)
  let running = B.not_ b ~name:"running" halted_r.(0) in
  let halt_req =
    match dbg with
    | Some d -> Debug_unit.halt_request b d ~pc
    | None -> B.tie b Olfu_logic.Logic4.L0
  in
  let advance = B.and2 b ~name:"advance" running (B.not_ b halt_req) in

  (* --- BTB --- *)
  let btb_wr =
    B.and2 b (B.and2 b ste advance) (B.and2 b taken_rel rel_branch)
  in
  let btb =
    Btb.build b ~prefix:"btb" ~rstn ~entries:btb_entries ~pc ~wr_en:btb_wr
      ~target_in:badd
  in
  let target_rel = Rtl.mux b ~sel:btb.Btb.hit ~a:badd ~b:btb.Btb.target in
  let target_sel = Rtl.mux b ~sel:is_jr ~a:target_rel ~b:rf_a in

  (* --- next state --- *)
  let is_lw = is Isa.Op.lw and is_sw = is Isa.Op.sw in
  let mem_op = B.or2 b is_lw is_sw in
  let is_halt = is Isa.Op.halt in
  let st_next = [| stf; B.and2 b ste mem_op |] in
  let st_d = Rtl.mux b ~sel:advance ~a:st ~b:st_next in

  (* --- next pc --- *)
  let exec_next = Rtl.mux b ~sel:taken ~a:pc_inc ~b:target_sel in
  let pc_en =
    B.and2 b (B.and2 b ste advance) (B.not_ b is_halt)
  in
  let pc_normal = Rtl.mux b ~sel:pc_en ~a:pc ~b:exec_next in
  let pc_d =
    match dbg with
    | Some d ->
      Rtl.mux b ~sel:d.Debug_unit.force_pc ~a:pc_normal
        ~b:(Rtl.zero_extend b d.Debug_unit.dr xlen)
    | None -> pc_normal
  in

  (* --- fetch / memory registers --- *)
  let ir_en = B.and2 b stf advance in
  let ir_d = Rtl.mux b ~sel:ir_en ~a:ir ~b:(Rtl.slice rdata 0 16) in
  let mar_en = B.and2 b (B.and2 b ste advance) mem_op in
  let mar_d = Rtl.mux b ~sel:mar_en ~a:mar ~b:rf_b in
  let wd_en = B.and2 b (B.and2 b ste advance) is_sw in
  let wd_d = Rtl.mux b ~sel:wd_en ~a:wdreg ~b:rf_a in
  let halted_d =
    [| B.or2 b halted_r.(0) (B.and2 b (B.and2 b ste advance) is_halt) |]
  in

  (* --- register-file write port --- *)
  let wb_exec =
    Rtl.reduce_or b
      [|
        is Isa.Op.li; is Isa.Op.addi; is Isa.Op.add; is Isa.Op.sub;
        is Isa.Op.and_; is Isa.Op.or_; is Isa.Op.xor; is Isa.Op.sll;
        is Isa.Op.srl;
        B.and2 b (is Isa.Op.nop)
          (Rtl.reduce_or b [| is_mul; is_mulh; is_div; is_rem |]);
      |]
  in
  let wen_exec = B.and2 b (B.and2 b ste advance) wb_exec in
  let wen_mem = B.and2 b (B.and2 b stm advance) is_lw in
  let dbg_wen =
    match dbg with
    | Some d -> d.Debug_unit.reg_write
    | None -> B.tie b Olfu_logic.Logic4.L0
  in
  let wen_any = B.or2 b (B.or2 b wen_exec wen_mem) dbg_wen in
  let waddr =
    match dbg with
    | Some d -> Rtl.mux b ~sel:dbg_wen ~a:rd_field ~b:d.Debug_unit.sel
    | None -> rd_field
  in
  let wdata_core = Rtl.mux b ~sel:wen_mem ~a:alu_result ~b:rdata in
  let wdata_rf =
    match dbg with
    | Some d -> Rtl.mux b ~sel:dbg_wen ~a:wdata_core ~b:d.Debug_unit.dr
    | None -> wdata_core
  in
  let onehot_w = Rtl.decoder b waddr in
  Array.iteri
    (fun r q ->
      let en = B.and2 b wen_any onehot_w.(r) in
      Rtl.reg_assign b q (Rtl.mux b ~sel:en ~a:q ~b:wdata_rf))
    rf;

  (* --- bus interface --- *)
  let addr =
    Rtl.mux b ~name:"bus_addr_mux" ~sel:stm ~a:pc ~b:mar
  in
  let rd_en =
    B.and2 b ~name:"bus_rd_i" advance (B.or2 b stf (B.and2 b stm is_lw))
  in
  let wr_en = B.and2 b ~name:"bus_wr_i" (B.and2 b stm advance) is_sw in

  (* --- performance counter and write-signature MISR --- *)
  let retire = B.and2 b (B.and2 b ste advance) (B.not_ b is_halt) in
  let icnt =
    Rtl.reg_feedback b ~name:"perf/icnt" ~rstn ~width:xlen (fun q ->
        Rtl.mux b ~sel:retire ~a:q ~b:(Rtl.increment b q))
  in
  let perf_tick = Rtl.eq_const b (Rtl.slice icnt 0 8) 0xA5 in
  let misr =
    Rtl.reg_feedback b ~name:"misr/r" ~rstn ~width:xlen (fun q ->
        let fb =
          List.fold_left
            (fun acc t -> B.xor2 b acc q.(t))
            q.(0)
            [ 3 mod xlen; 5 mod xlen; (xlen / 2) + 1 ]
        in
        let shifted =
          Array.init xlen (fun i -> if i = xlen - 1 then fb else q.(i + 1))
        in
        let data_in = Rtl.and_bit b wr_en wdreg in
        Rtl.xor_ b shifted data_in)
  in

  (* --- observation buses --- *)
  let gpr_obs, spr_obs =
    match dbg with
    | Some d ->
      let gpr = Rtl.mux_tree b ~sel:d.Debug_unit.sel rf_rows in
      let status =
        Rtl.zero_extend b (Rtl.concat [ ir; st; halted_r ]) xlen
      in
      let spr = Rtl.mux b ~sel:d.Debug_unit.mode ~a:pc ~b:status in
      (Some gpr, Some spr)
    | None -> (None, None)
  in

  (* --- close the registers --- *)
  Rtl.reg_assign b pc pc_d;
  Rtl.reg_assign b ir ir_d;
  Rtl.reg_assign b st st_d;
  Rtl.reg_assign b mar mar_d;
  Rtl.reg_assign b wdreg wd_d;
  Rtl.reg_assign b halted_r halted_d;

  {
    rstn;
    rdata;
    addr;
    wdata = wdreg;
    rd_en;
    wr_en;
    halted = halted_r.(0);
    perf_tick;
    misr;
    gpr_obs;
    spr_obs;
  }
