open Olfu_netlist
module B = Netlist.Builder

type t = { done_ : int; pass : int }

let control_input_names = [ "bist_en"; "bist_start" ]

(* Fibonacci LFSR step: shift left, feedback into bit 0. *)
let lfsr_next b q =
  let w = Rtl.width q in
  let fb =
    List.fold_left
      (fun acc t -> B.xor2 b acc q.(t mod w))
      q.(w - 1)
      [ w - 3; w / 2; 0 ]
  in
  Array.init w (fun i -> if i = 0 then fb else q.(i - 1))

let build b ~rstn ~misr =
  let dc = [ Netlist.Debug_control ] in
  let en = B.input b ~roles:dc "bist_en" in
  let start = B.input b ~roles:dc "bist_start" in
  let xlen = Rtl.width misr in
  (* FSM: 0 idle, 1 run, 2 done *)
  let fsm = Rtl.reg_placeholder b ~name:"bist/fsm" ~rstn ~width:2 in
  let idle = Rtl.eq_const b fsm 0 in
  let run = Rtl.eq_const b fsm 1 in
  let done_st = Rtl.eq_const b fsm 2 in
  let go = B.and2 b en (B.and2 b idle start) in
  let counter =
    Rtl.reg_feedback b ~name:"bist/cnt" ~rstn ~width:8 (fun q ->
        let inc = Rtl.increment b q in
        (* cleared when a campaign starts, counts while running *)
        Rtl.and_bit b (B.not_ b go) (Rtl.mux b ~sel:run ~a:q ~b:inc))
  in
  let full = Rtl.eq_const b counter 0xFF in
  let finish = B.and2 b run full in
  let leave_done = B.and2 b done_st (B.not_ b en) in
  (* next state: idle->run on go, run->done on finish, done->idle when
     disabled; otherwise hold *)
  let bit0 = B.and2 b (B.or2 b go (B.and2 b run (B.not_ b finish))) (B.not_ b leave_done) in
  let bit1 = B.and2 b (B.or2 b finish done_st) (B.not_ b leave_done) in
  Rtl.reg_assign b fsm [| bit0; bit1 |];
  let prpg =
    Rtl.reg_feedback b ~name:"bist/prpg" ~rstn ~width:xlen (fun q ->
        (* seed injection: when starting, load all-ones *)
        let seeded = Array.map (fun _ -> B.not_ b q.(0)) q in
        let stepped = lfsr_next b q in
        Rtl.mux b ~sel:go ~a:(Rtl.mux b ~sel:run ~a:q ~b:stepped) ~b:seeded)
  in
  (* signature check: (misr xor prpg) == hardwired constant *)
  let mix = Rtl.xor_ b misr prpg in
  let expected = 0x5A3C mod (1 lsl min 30 xlen) in
  let cmp = Rtl.eq_const b mix expected in
  let pass =
    Rtl.reg_feedback b ~name:"bist/pass" ~rstn ~width:1 (fun q ->
        [| B.mux2 b ~sel:finish ~a:q.(0) ~b:cmp |])
  in
  { done_ = done_st; pass = pass.(0) }
