open Olfu_netlist
open Olfu_manip

(** tcore System-on-Chip configurations and top-level generation.

    [tcore32] is the full-size stand-in for the paper's industrial 32-bit
    automotive SoC; [tcore16] is a scaled-down configuration used for the
    (much slower) sequential fault-simulation experiments. *)

type config = {
  name : string;
  xlen : int;  (** data/address width, >= 16 *)
  btb_entries : int;
  scan_chains : int;
  scan_link_buffers : int;
  debug : bool;
  bist : bool;  (** logic-BIST controller (mission-tied start pins) *)
  boundary_scan : bool;  (** boundary-scan cells on the bus-data pins *)
  rom : Memmap.region;  (** instruction space (word addresses) *)
  ram : Memmap.region;  (** data space (word addresses) *)
}

val tcore32 : config

val tcore32_dft : config
(** [tcore32] plus a logic-BIST controller and boundary-scan cells — the
    full DfT population of Sec. 3. *)

val tcore16 : config

val generate : config -> Netlist.t
(** Build the core, insert scan, freeze.  Ports:
    inputs [rstn], [bus_rdata\[\]], debug controls, [scan_en],
    [scan_in<i>]; outputs [bus_addr\[\]] (role [Address_port]),
    [bus_wdata\[\]], [bus_rd], [bus_wr], [halted], [gpr_obs\[\]]/
    [spr_obs\[\]] (role [Debug_observe]), [scan_out<i>]. *)

val memmap_regions : config -> Memmap.region list

val debug_control_inputs : config -> string list
(** Names of the mission-tied debug control ports (the paper's "17
    signals"). *)

val debug_observe_outputs : config -> Netlist.t -> string list

val mission_debug_script : config -> Netlist.t -> Script.t
(** The Sec. 3.2 manipulation: tie every debug control input to its
    inactive value and float both observation buses. *)

val pp_config : Format.formatter -> config -> unit
