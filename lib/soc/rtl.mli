open Olfu_logic
open Olfu_netlist

(** Structural-RTL construction kit: bit-vector signals over the netlist
    builder.

    A {!bus} is an array of net ids, LSB first.  All generators emit plain
    gate primitives, so the result is a synthesized-style netlist — the
    input the paper's methodology operates on. *)

type bus = int array

val width : bus -> int

(** All functions take the builder as first argument. *)
type b := Netlist.Builder.t

val input_bus : ?roles:(int -> Netlist.role list) -> b -> string -> int -> bus
(** [input_bus b name w] declares input ports [name[0..w-1]];
    [roles i] annotates bit [i]. *)

val output_bus : ?roles:(int -> Netlist.role list) -> b -> string -> bus -> unit

val const : b -> width:int -> int -> bus
(** Tie cells encoding an integer, LSB first. *)

val slice : bus -> int -> int -> bus
(** [slice v lo len] *)

val concat : bus list -> bus
(** LSB-first concatenation ([concat [low; high]]). *)

val zero_extend : b -> bus -> int -> bus
val sign_extend : b -> bus -> int -> bus

val not_ : ?name:string -> b -> bus -> bus
val and_ : ?name:string -> b -> bus -> bus -> bus
val or_ : ?name:string -> b -> bus -> bus -> bus
val xor_ : ?name:string -> b -> bus -> bus -> bus

val and_bit : b -> int -> bus -> bus
(** Mask every bit of the bus with one enable net. *)

val mux : ?name:string -> b -> sel:int -> a:bus -> b:bus -> bus
(** Per-bit 2:1 mux: [a] when [sel]=0. *)

val mux_tree : b -> sel:bus -> bus list -> bus
(** [mux_tree ~sel inputs]: select [inputs.(sel)]; the list length must be
    [2^(width sel)]. *)

val reduce_or : b -> bus -> int
val reduce_and : b -> bus -> int

val eq_const : b -> bus -> int -> int
(** Single net: bus equals the constant. *)

val eq : b -> bus -> bus -> int

val adder : ?name:string -> b -> ?cin:int -> bus -> bus -> bus * int
(** Ripple-carry sum and carry-out. *)

val subtractor : b -> bus -> bus -> bus * int
(** [a - b]; carry-out = no-borrow. *)

val increment : b -> bus -> bus

val decoder : b -> bus -> int array
(** One-hot decode: [2^w] select nets. *)

val multiplier : b -> bus -> bus -> bus
(** Unsigned array multiplier; result width is the sum of the operand
    widths (ripple accumulation of partial products). *)

val divider : b -> dividend:bus -> divisor:bus -> bus * bus
(** Unsigned restoring divider: [(quotient, remainder)], both the dividend
    width.  A zero divisor yields an all-ones quotient and the shifted-out
    dividend as remainder — exactly what the restoring array computes
    (mirrored bit-for-bit by the behavioural simulator). *)

val shift_const : b -> bus -> int -> [ `Left | `Right ] -> bus
(** Shift by a constant amount (zero fill). *)

val barrel_shift : b -> bus -> shamt:bus -> [ `Left | `Right ] -> bus
(** Logical shift by a variable amount (zero fill). *)

(** {1 State} *)

val reg :
  ?name:string ->
  ?roles:(int -> Netlist.role list) ->
  b ->
  rstn:int ->
  d:bus ->
  bus
(** Resettable register (reset to 0), one [Dffr] per bit.  Returns the Q
    bus.  The register is created {e before} its D is known in feedback
    situations — see {!reg_feedback}. *)

val reg_en :
  ?name:string ->
  ?roles:(int -> Netlist.role list) ->
  b ->
  rstn:int ->
  en:int ->
  d:bus ->
  bus
(** Register with load enable (hold mux feedback). *)

val reg_feedback :
  ?name:string ->
  ?roles:(int -> Netlist.role list) ->
  b ->
  rstn:int ->
  width:int ->
  (bus -> bus) ->
  bus
(** [reg_feedback b ~rstn ~width f] creates the register first, applies
    [f q] to build its next-value logic, then closes the loop. *)

val reg_placeholder :
  ?name:string ->
  ?roles:(int -> Netlist.role list) ->
  b ->
  rstn:int ->
  width:int ->
  bus
(** Register with an unconnected D, for mutually-dependent register
    groups; close every one with {!reg_assign} before freezing. *)

val reg_assign : b -> bus -> bus -> unit

val const_of_env : Logic4.t array -> bus -> int option
(** Read back an integer from simulated values (None when any bit X). *)

val drive_int : (int * Logic4.t) list ref -> bus -> int -> unit
(** Helper for testbenches: append assignments setting [bus] to the
    integer. *)
