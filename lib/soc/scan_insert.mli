open Olfu_netlist

(** Full-scan insertion: replace every flip-flop with its mux-scan
    equivalent and stitch the cells into chains.

    [Dff] becomes [Sdff], [Dffr] becomes [Sdffr].  Each chain gets a
    scan-in input and a scan-out output port; all cells share one
    scan-enable input.  [link_buffers] inserts that many buffers on every
    chain link — the scan-path buffers whose faults Sec. 3.1 classifies as
    on-line untestable. *)

type result = {
  netlist : Netlist.t;
  chains : int list list;  (** scan cells per chain, in shift order *)
}

val insert : ?chains:int -> ?link_buffers:int -> Netlist.t -> result
(** Defaults: 1 chain, 1 buffer per link.  Flip-flops are distributed
    round-robin over chains in node order.  Raises [Invalid_argument] if
    the netlist has no flip-flops. *)
