open Olfu_netlist
module B = Netlist.Builder

type t = {
  de : int;
  reg_write : int;
  force_pc : int;
  sel : Rtl.bus;
  dr : Rtl.bus;
  mode : int;
  brk_en : int;
  resume : int;
  halt_in : int;
}

let control_input_names =
  [
    "dbg_de"; "dbg_halt"; "dbg_step"; "dbg_resume"; "dbg_reg_wr";
    "dbg_force_pc"; "dbg_brk_en"; "dbg_mode"; "dbg_din"; "jtag_tck";
    "jtag_tms"; "jtag_tdi"; "jtag_trstn"; "dbg_sel[0]"; "dbg_sel[1]";
    "dbg_sel[2]"; "dbg_sel[3]";
  ]

let build b ~rstn ~xlen =
  let dc = [ Netlist.Debug_control ] in
  let inp name = B.input b ~roles:dc name in
  let de = inp "dbg_de" in
  let halt_in = inp "dbg_halt" in
  let step = inp "dbg_step" in
  let resume = inp "dbg_resume" in
  let reg_wr = inp "dbg_reg_wr" in
  let force_pc_in = inp "dbg_force_pc" in
  let brk_en = inp "dbg_brk_en" in
  let mode = inp "dbg_mode" in
  let din = inp "dbg_din" in
  let tck = inp "jtag_tck" in
  let tms = inp "jtag_tms" in
  let tdi = inp "jtag_tdi" in
  let trstn = inp "jtag_trstn" in
  let sel = Rtl.input_bus ~roles:(fun _ -> dc) b "dbg_sel" 4 in
  (* TAP-like controller, held in reset when TRSTN is tied low in the
     mission configuration: a 2-bit state advancing on TCK. *)
  let tap_rst = B.and2 b rstn trstn in
  let tap =
    Rtl.reg_feedback b ~name:"dbg/tap" ~rstn:tap_rst ~width:2 (fun q ->
        let inc = Rtl.increment b q in
        let cleared = Rtl.const b ~width:2 0 in
        let next = Rtl.mux b ~sel:tms ~a:inc ~b:cleared in
        Rtl.mux b ~sel:tck ~a:q ~b:next)
  in
  let tap_shift = Rtl.eq_const b tap 2 in
  (* Debug data register: shifts right, new bit entering at the top; data
     comes from DIN under core control or TDI under JTAG control. *)
  let shift_bit = B.mux2 b ~sel:tap_shift ~a:din ~b:tdi in
  let shift_en = B.and2 b de (B.or2 b step tap_shift) in
  let dr =
    Rtl.reg_feedback b ~name:"dbg/dr" ~rstn ~width:xlen (fun q ->
        let shifted = Rtl.concat [ Rtl.slice q 1 (xlen - 1); [| shift_bit |] ] in
        Rtl.mux b ~sel:shift_en ~a:q ~b:shifted)
  in
  {
    de;
    reg_write = B.and2 b ~name:"dbg/reg_write" de reg_wr;
    force_pc = B.and2 b ~name:"dbg/force_pc" de force_pc_in;
    sel;
    dr;
    mode;
    brk_en;
    resume;
    halt_in;
  }

let halt_request b t ~pc =
  let bp_match = Rtl.eq b pc (Rtl.zero_extend b t.dr (Rtl.width pc)) in
  let bp = B.and2 b t.brk_en bp_match in
  let want = B.or2 b t.halt_in bp in
  let gated = B.and2 b t.de want in
  B.and2 b ~name:"dbg/halt_req" gated (B.not_ b t.resume)
