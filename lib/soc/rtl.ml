open Olfu_logic
open Olfu_netlist
module B = Netlist.Builder

type bus = int array

let width = Array.length
let no_roles _ = ([] : Netlist.role list)

let bit_name name i = Printf.sprintf "%s[%d]" name i

let input_bus ?(roles = no_roles) b name w =
  Array.init w (fun i -> B.input b ~roles:(roles i) (bit_name name i))

let output_bus ?(roles = no_roles) b name v =
  Array.iteri
    (fun i n -> ignore (B.output b ~roles:(roles i) (bit_name name i) n : int))
    v

let const b ~width:w value =
  Array.init w (fun i ->
      B.tie b (Logic4.of_bool ((value lsr i) land 1 = 1)))

let slice v lo len = Array.sub v lo len
let concat parts = Array.concat parts

let zero_extend b v w =
  if width v >= w then Array.sub v 0 w
  else concat [ v; const b ~width:(w - width v) 0 ]

let sign_extend b v w =
  if width v >= w then Array.sub v 0 w
  else begin
    let msb = v.(width v - 1) in
    let ext = Array.make (w - width v) msb in
    ignore (b : B.t);
    concat [ v; ext ]
  end

let map_named ?name b f v =
  Array.mapi
    (fun i x ->
      let name = Option.map (fun n -> bit_name n i) name in
      f ?name b x)
    v

let not_ ?name b v = map_named ?name b (fun ?name b x -> B.not_ ?name b x) v

let map2_named ?name b f x y =
  if width x <> width y then invalid_arg "Rtl: width mismatch";
  Array.init (width x) (fun i ->
      let name = Option.map (fun n -> bit_name n i) name in
      f ?name b x.(i) y.(i))

let and_ ?name b x y = map2_named ?name b (fun ?name b p q -> B.and2 ?name b p q) x y
let or_ ?name b x y = map2_named ?name b (fun ?name b p q -> B.or2 ?name b p q) x y
let xor_ ?name b x y = map2_named ?name b (fun ?name b p q -> B.xor2 ?name b p q) x y

let and_bit b en v = Array.map (fun x -> B.and2 b en x) v

let mux ?name b ~sel ~a ~b:bb =
  if width a <> width bb then invalid_arg "Rtl.mux: width mismatch";
  Array.init (width a) (fun i ->
      let name = Option.map (fun n -> bit_name n i) name in
      B.mux2 ?name b ~sel ~a:a.(i) ~b:bb.(i))

let rec mux_tree b ~sel inputs =
  match width sel, inputs with
  | 0, [ x ] -> x
  | 0, _ -> invalid_arg "Rtl.mux_tree: input count"
  | _, _ ->
    let n = List.length inputs in
    if n <> 1 lsl width sel then invalid_arg "Rtl.mux_tree: input count";
    let rec split k l =
      if k = 0 then ([], l)
      else
        match l with
        | x :: tl ->
          let a, rest = split (k - 1) tl in
          (x :: a, rest)
        | [] -> assert false
    in
    let low, high = split (n / 2) inputs in
    let sel_hi = sel.(width sel - 1) in
    let sub_sel = Array.sub sel 0 (width sel - 1) in
    let a = mux_tree b ~sel:sub_sel low in
    let c = mux_tree b ~sel:sub_sel high in
    mux b ~sel:sel_hi ~a ~b:c

let reduce gate b v =
  match Array.to_list v with
  | [] -> invalid_arg "Rtl.reduce: empty bus"
  | [ x ] -> B.buf b x
  | x :: rest -> List.fold_left (fun acc y -> gate b acc y) x rest

let reduce_or b v = reduce (fun b x y -> B.or2 b x y) b v
let reduce_and b v = reduce (fun b x y -> B.and2 b x y) b v

let eq_const b v k =
  let bits =
    Array.mapi
      (fun i x -> if (k lsr i) land 1 = 1 then x else B.not_ b x)
      v
  in
  reduce_and b bits

let eq b x y =
  let diffs = xor_ b x y in
  B.not_ b (reduce_or b diffs)

(* Ripple addition where the second operand and the carry may be absent
   per bit: emits half adders instead of gates fed by constants. *)
let add_sparse ?name b x yopt ~cin =
  let carry = ref cin in
  (* explicit loop: carry threading needs ascending order, which
     Array.init does not guarantee *)
  let sum = Array.make (Array.length x) 0 in
  for i = 0 to Array.length x - 1 do
    sum.(i) <-
      (let a = x.(i) in
        let name = Option.map (fun n -> bit_name n i) name in
        match yopt i, !carry with
        | None, None -> (match name with Some n -> B.buf ~name:n b a | None -> a)
        | Some y, None ->
          let s = B.xor2 ?name b a y in
          carry := Some (B.and2 b a y);
          s
        | None, Some c ->
          let s = B.xor2 ?name b a c in
          carry := Some (B.and2 b a c);
          s
        | Some y, Some c ->
          let axy = B.xor2 b a y in
          let s = B.xor2 ?name b axy c in
          carry := Some (B.or2 b (B.and2 b a y) (B.and2 b axy c));
          s)
  done;
  (sum, !carry)

let adder ?name b ?cin x y =
  if width x <> width y then invalid_arg "Rtl.adder: width mismatch";
  let sum, carry = add_sparse ?name b x (fun i -> Some y.(i)) ~cin in
  let carry =
    match carry with Some c -> c | None -> B.tie b Logic4.L0
  in
  (sum, carry)

let subtractor b x y =
  let ny = not_ b y in
  adder b ~cin:(B.tie b Logic4.L1) x ny

let increment b v =
  let one = const b ~width:(width v) 1 in
  fst (adder b v one)

let decoder b sel =
  let w = width sel in
  let nsel = Array.map (fun s -> B.not_ b s) sel in
  Array.init (1 lsl w) (fun k ->
      let bits =
        Array.init w (fun i -> if (k lsr i) land 1 = 1 then sel.(i) else nsel.(i))
      in
      reduce_and b bits)

(* Shift-add array multiplier.  Row i adds partial product (x & y.(i)) at
   offset i; the accumulator stays [width x] wide, the low bit finalizing
   each row, the row carry re-entering at the top of the next row.  No
   constant padding, so the structure contains no redundant logic. *)
let multiplier b x y =
  let wx = width x and wy = width y in
  if wx = 0 || wy = 0 then invalid_arg "Rtl.multiplier: empty operand";
  let pp i = and_bit b y.(i) x in
  let acc = ref (pp 0) in
  let row_carry = ref None in
  let low = ref [] in
  for i = 1 to wy - 1 do
    low := !acc.(0) :: !low;
    let prev = !acc and prev_c = !row_carry in
    let yopt j = if j < wx - 1 then Some prev.(j + 1) else prev_c in
    let sum, c = add_sparse b (pp i) yopt ~cin:None in
    acc := sum;
    row_carry := c
  done;
  let top =
    match !row_carry with Some c -> [| c |] | None -> [| B.tie b Logic4.L0 |]
  in
  concat [ Array.of_list (List.rev !low); !acc; top ]

(* One restoring-division step: diff = shifted - divisor computed as
   shifted + ~divisor + 1, with absent shifted bits reading 0 and the
   initial +1 carried symbolically so no constant cells are emitted. *)
let div_trial b ~shifted ~divisor_n ~w =
  let ws = width shifted in
  let wt = max ws w in
  let carry = ref `One in
  (* explicit loop: the carry threading requires ascending bit order.
     Sum gates are only emitted for the bits the caller keeps (j < ws);
     higher positions contribute to the borrow chain alone, so no dangling
     logic is created. *)
  let diff = Array.make ws shifted.(0) in
  for j = 0 to wt - 1 do
    let x = if j < ws then Some shifted.(j) else None in
    let y = if j < w then Some divisor_n.(j) else None (* ~0 = 1 *) in
    let keep = j < ws in
    let sum =
      match x, y, !carry with
      | None, None, _ -> assert false (* j < max ws w *)
      | None, Some n, `One ->
        carry := `Net n;
        if keep then Some (B.not_ b n) else None
      | None, Some n, `Net c ->
        carry := `Net (B.and2 b n c);
        if keep then Some (B.xor2 b n c) else None
      | Some a, None, `One -> Some a (* a + 1 + 1 : sum a, carry 1 *)
      | Some a, None, `Net c ->
        carry := `Net (B.or2 b a c);
        Some (B.xnor2 b a c)
      | Some a, Some n, `One ->
        carry := `Net (B.or2 b a n);
        Some (B.xnor2 b a n)
      | Some a, Some n, `Net c ->
        let axn = B.xor2 b a n in
        let s = if keep then B.xor2 b axn c else axn in
        carry := `Net (B.or2 b (B.and2 b a n) (B.and2 b axn c));
        if keep then Some s else None
    in
    match sum with
    | Some s when keep -> diff.(j) <- s
    | _ -> ()
  done;
  let no_borrow =
    match !carry with
    | `Net c -> c
    | `One -> B.tie b Logic4.L1 (* degenerate: w = 0 *)
  in
  (diff, no_borrow)

let divider b ~dividend ~divisor =
  let w = width dividend in
  if width divisor <> w then invalid_arg "Rtl.divider: width mismatch";
  if w = 0 then invalid_arg "Rtl.divider: empty operands";
  let divisor_n = not_ b divisor in
  let quotient = Array.make w dividend.(0) in
  let rem = ref [||] in
  for i = w - 1 downto 0 do
    let shifted = concat [ [| dividend.(i) |]; !rem ] in
    let shifted =
      if width shifted > w + 1 then slice shifted 0 (w + 1) else shifted
    in
    let diff, no_borrow = div_trial b ~shifted ~divisor_n ~w in
    quotient.(i) <- no_borrow;
    let ws = width shifted in
    rem := mux b ~sel:no_borrow ~a:shifted ~b:(slice diff 0 ws)
  done;
  (quotient, zero_extend b !rem w)

let shift_const b v k dir =
  let w = width v in
  let zero () = B.tie b Logic4.L0 in
  Array.init w (fun i ->
      match dir with
      | `Left -> if i - k >= 0 then v.(i - k) else zero ()
      | `Right -> if i + k < w then v.(i + k) else zero ())

let barrel_shift b v ~shamt dir =
  Array.fold_left
    (fun (acc, stage) s ->
      let shifted = shift_const b acc (1 lsl stage) dir in
      (mux b ~sel:s ~a:acc ~b:shifted, stage + 1))
    (v, 0) shamt
  |> fst

let reg ?name ?(roles = no_roles) b ~rstn ~d =
  Array.init (width d) (fun i ->
      let name = Option.map (fun n -> bit_name n i) name in
      B.dffr ?name ~roles:(roles i) b ~d:d.(i) ~rstn)

(* Feedback requires creating the flop first with a placeholder D, then
   rewiring once the next-value logic exists. *)
let reg_placeholder ?name ?(roles = no_roles) b ~rstn ~width:w =
  let placeholder = B.tie b Logic4.X in
  Array.init w (fun i ->
      let name = Option.map (fun n -> bit_name n i) name in
      B.dffr ?name ~roles:(roles i) b ~d:placeholder ~rstn)

let reg_assign b q d =
  if Array.length d <> Array.length q then
    invalid_arg "Rtl.reg_assign: width mismatch";
  Array.iteri
    (fun i ff ->
      let fanin = B.node_fanin b ff in
      fanin.(0) <- d.(i);
      B.set_fanin b ff fanin)
    q

let reg_feedback ?name ?roles b ~rstn ~width:w f =
  let q = reg_placeholder ?name ?roles b ~rstn ~width:w in
  reg_assign b q (f q);
  q

let reg_en ?name ?roles b ~rstn ~en ~d =
  reg_feedback ?name ?roles b ~rstn ~width:(width d) (fun q ->
      mux b ~sel:en ~a:q ~b:d)

let const_of_env env v =
  let acc = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun i n ->
      match Logic4.to_bool env.(n) with
      | Some true -> acc := !acc lor (1 lsl i)
      | Some false -> ()
      | None -> ok := false)
    v;
  if !ok then Some !acc else None

let drive_int assigns v k =
  Array.iteri
    (fun i n ->
      assigns := (n, Logic4.of_bool ((k lsr i) land 1 = 1)) :: !assigns)
    v
