open Olfu_netlist

(** Boundary-scan input cells — the Sec. 3 "Boundary scan and IEEE 1500
    structures" source.

    Each wrapped input pin gets a capture/shift flip-flop (serially
    chained TDI→TDO), an update latch and a mode mux that can substitute
    the latched value for the pin.  Mission configuration ties
    [bs_mode]/[bs_shift]/[bs_update]/[bs_tdi] low, so the cells are
    transparent and their logic is on-line untestable. *)

type t = {
  wrapped : Rtl.bus;  (** pin values as seen by the core *)
  tdo : int;  (** end of the capture chain (a mission-floated output) *)
}

val control_input_names : string list

val wrap : Netlist.Builder.t -> rstn:int -> pins:Rtl.bus -> t
(** Declares the four control inputs (role {!Netlist.Debug_control}) and
    one boundary cell per pin. *)
