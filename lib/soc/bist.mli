open Olfu_netlist

(** Logic BIST controller — one of the Sec. 3 sources ("Built-in self-test
    modules ... controlled directly on the boundary of the chip by a
    tester during manufacturing test").

    A small FSM started by external pins runs a pseudo-random pattern
    generator for a fixed count and then compares the core's MISR (xored
    with the PRPG state) against a hardwired signature.  In the mission
    configuration the start pins are tied low, so the whole unit freezes
    at its reset state and its faults become on-line untestable. *)

type t = {
  done_ : int;  (** BIST campaign finished *)
  pass : int;  (** signature matched *)
}

val control_input_names : string list
(** [bist_en], [bist_start] — mission-tied. *)

val build : Netlist.Builder.t -> rstn:int -> misr:Rtl.bus -> t
(** Declares the control inputs (role {!Netlist.Debug_control}) and the
    PRPG/FSM/compare logic observing [misr]. *)
