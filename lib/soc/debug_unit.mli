open Olfu_netlist

(** Nexus-like debug unit: 17 external control signals (a JTAG-style port
    plus run-control and register-access strobes), a serially-loaded data
    register, and hooks that let an external debugger halt the core, force
    the PC and write the register file — the Sec. 3.2 infrastructure that
    the mission configuration ties off. *)

type t = {
  de : int;  (** raw debug-enable input *)
  reg_write : int;  (** gated: force a register-file write this cycle *)
  force_pc : int;  (** gated: load the PC from [dr] *)
  sel : Rtl.bus;  (** 4-bit register selector (also picks the GPR observed) *)
  dr : Rtl.bus;  (** debug data register (serially loaded via [din]/JTAG) *)
  mode : int;  (** selects what the SPR observation bus shows *)
  brk_en : int;
  resume : int;
  halt_in : int;
}

val control_input_names : string list
(** The 17 mission-tied control inputs, in declaration order. *)

val build : Netlist.Builder.t -> rstn:int -> xlen:int -> t
(** Declares the 17 inputs (role {!Netlist.Debug_control}) and the debug
    state (TAP-like FSM, shift register). *)

val halt_request : Netlist.Builder.t -> t -> pc:Rtl.bus -> int
(** [de && (halt || (brk_en && pc = dr)) && not resume] — includes a real
    hardware-breakpoint comparator so tying DE kills a whole cone. *)
