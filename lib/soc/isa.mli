(** The tcore instruction set: 16-bit fixed-width instructions, 16
    registers, word addressing.

    Layout: [op\[15:12\] | rd\[11:8\] | low\[7:0\]] where [low] is an 8-bit
    immediate, or [rs\[7:4\] | imm4\[3:0\]] for register/shift forms.  Shared
    by the gate-level decoder generator, the assembler and the behavioural
    simulator, so the three cannot drift apart. *)

type reg = int  (** 0..15 *)

type instr =
  | Nop
  | Mul of reg * reg  (** rd := low half of rd * rs (op 0, funct 1) *)
  | Mulh of reg * reg  (** rd := high half of rd * rs (op 0, funct 2) *)
  | Div of reg * reg  (** rd := rd / rs, restoring semantics (funct 3) *)
  | Rem of reg * reg  (** rd := rd mod rs, restoring semantics (funct 4) *)
  | Li of reg * int  (** rd := zext imm8 *)
  | Addi of reg * int  (** rd := rd + sext imm8 *)
  | Add of reg * reg  (** rd := rd + rs *)
  | Sub of reg * reg
  | And_ of reg * reg
  | Or_ of reg * reg
  | Xor_ of reg * reg
  | Sll of reg * int  (** rd := rd << imm4 *)
  | Srl of reg * int  (** logical *)
  | Lw of reg * reg  (** rd := mem\[rs\] *)
  | Sw of reg * reg  (** mem\[rs\] := rd *)
  | Beqz of reg * int  (** if rs = 0 then pc := pc + 1 + sext imm8 *)
  | Bnez of reg * int
  | Jr of reg  (** pc := rs *)
  | Halt

val opcode : instr -> int
val encode : instr -> int

val decode : int -> instr
(** Total: every 16-bit word decodes (unused encodings normalize). *)

val is_branch : instr -> bool
val pp : Format.formatter -> instr -> unit

(** Opcode numbers used by the gate-level decoder. *)
module Op : sig
  val nop : int
  val li : int
  val addi : int
  val add : int
  val sub : int
  val and_ : int
  val or_ : int
  val xor : int
  val sll : int
  val srl : int
  val lw : int
  val sw : int
  val beqz : int
  val bnez : int
  val jr : int
  val halt : int
end
