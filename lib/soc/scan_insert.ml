open Olfu_netlist
module B = Netlist.Builder

type result = {
  netlist : Netlist.t;
  chains : int list list;
}

let insert ?(chains = 1) ?(link_buffers = 1) nl =
  let flops = Netlist.seq_nodes nl in
  if Array.length flops = 0 then
    invalid_arg "Scan_insert.insert: no flip-flops";
  if chains < 1 then invalid_arg "Scan_insert.insert: chains >= 1";
  let b = B.of_netlist nl in
  let se = B.input b ~roles:[ Netlist.Scan_enable ] "scan_en" in
  let chain_cells = Array.make chains [] in
  Array.iteri
    (fun k ff -> chain_cells.(k mod chains) <- ff :: chain_cells.(k mod chains))
    flops;
  let chain_lists =
    Array.to_list (Array.map List.rev chain_cells)
  in
  List.iteri
    (fun c cells ->
      let si0 =
        B.input b ~roles:[ Netlist.Scan_in ] (Printf.sprintf "scan_in%d" c)
      in
      let link from k =
        let rec bufs src j =
          if j = 0 then src
          else
            bufs
              (B.buf b ~name:(Printf.sprintf "scan/c%d_l%d_b%d" c k (link_buffers - j)) src)
              (j - 1)
        in
        bufs from link_buffers
      in
      let last =
        List.fold_left
          (fun (si, k) ff ->
            let si = link si k in
            (match B.node_kind b ff with
            | Cell.Dff ->
              let d = (B.node_fanin b ff).(0) in
              B.set_kind b ff Cell.Sdff;
              B.set_fanin b ff [| d; si; se |]
            | Cell.Dffr ->
              let fanin = B.node_fanin b ff in
              B.set_kind b ff Cell.Sdffr;
              B.set_fanin b ff [| fanin.(0); si; se; fanin.(1) |]
            | Cell.Sdff | Cell.Sdffr ->
              invalid_arg "Scan_insert.insert: already scanned"
            | _ -> assert false);
            (ff, k + 1))
          (si0, 0) cells
        |> fst
      in
      let so_net = link last (List.length cells) in
      ignore
        (B.output b ~roles:[ Netlist.Scan_out ]
           (Printf.sprintf "scan_out%d" c)
           so_net
          : int))
    chain_lists;
  { netlist = B.freeze_exn b; chains = chain_lists }
