open Olfu_netlist
module B = Netlist.Builder

type t = {
  wrapped : Rtl.bus;
  tdo : int;
}

let control_input_names = [ "bs_mode"; "bs_shift"; "bs_update"; "bs_tdi" ]

let wrap b ~rstn ~pins =
  let dc = [ Netlist.Debug_control ] in
  let mode = B.input b ~roles:dc "bs_mode" in
  let shift = B.input b ~roles:dc "bs_shift" in
  let update = B.input b ~roles:dc "bs_update" in
  let tdi = B.input b ~roles:dc "bs_tdi" in
  let chain = ref tdi in
  let wrapped =
    Array.mapi
      (fun i pin ->
        let name s = Printf.sprintf "bsr/c%d/%s" i s in
        (* capture-or-shift flop *)
        let prev = !chain in
        let cap =
          Rtl.reg_feedback b ~name:(name "cap") ~rstn ~width:1 (fun _q ->
              [| B.mux2 b ~sel:shift ~a:pin ~b:prev |])
        in
        chain := cap.(0);
        let upd =
          Rtl.reg_feedback b ~name:(name "upd") ~rstn ~width:1 (fun q ->
              [| B.mux2 b ~sel:update ~a:q.(0) ~b:cap.(0) |])
        in
        B.mux2 b ~name:(name "pinmux") ~sel:mode ~a:pin ~b:upd.(0))
      pins
  in
  { wrapped; tdo = !chain }
