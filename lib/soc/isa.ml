type reg = int

type instr =
  | Nop
  | Mul of reg * reg
  | Mulh of reg * reg
  | Div of reg * reg
  | Rem of reg * reg
  | Li of reg * int
  | Addi of reg * int
  | Add of reg * reg
  | Sub of reg * reg
  | And_ of reg * reg
  | Or_ of reg * reg
  | Xor_ of reg * reg
  | Sll of reg * int
  | Srl of reg * int
  | Lw of reg * reg
  | Sw of reg * reg
  | Beqz of reg * int
  | Bnez of reg * int
  | Jr of reg
  | Halt

module Op = struct
  let nop = 0
  let li = 1
  let addi = 2
  let add = 3
  let sub = 4
  let and_ = 5
  let or_ = 6
  let xor = 7
  let sll = 8
  let srl = 9
  let lw = 10
  let sw = 11
  let beqz = 12
  let bnez = 13
  let jr = 14
  let halt = 15
end

let opcode = function
  | Nop -> Op.nop
  | Mul _ | Mulh _ | Div _ | Rem _ -> Op.nop
  | Li _ -> Op.li
  | Addi _ -> Op.addi
  | Add _ -> Op.add
  | Sub _ -> Op.sub
  | And_ _ -> Op.and_
  | Or_ _ -> Op.or_
  | Xor_ _ -> Op.xor
  | Sll _ -> Op.sll
  | Srl _ -> Op.srl
  | Lw _ -> Op.lw
  | Sw _ -> Op.sw
  | Beqz _ -> Op.beqz
  | Bnez _ -> Op.bnez
  | Jr _ -> Op.jr
  | Halt -> Op.halt

let check_reg r = if r < 0 || r > 15 then invalid_arg "Isa: register 0..15"
let check_imm8 v = if v < -128 || v > 255 then invalid_arg "Isa: imm8 range"
let check_imm4 v = if v < 0 || v > 15 then invalid_arg "Isa: imm4 range"

let enc_ri op rd imm =
  check_reg rd;
  check_imm8 imm;
  (op lsl 12) lor (rd lsl 8) lor (imm land 0xFF)

let enc_rr op rd rs =
  check_reg rd;
  check_reg rs;
  (op lsl 12) lor (rd lsl 8) lor (rs lsl 4)

let enc_sh op rd sh =
  check_reg rd;
  check_imm4 sh;
  (op lsl 12) lor (rd lsl 8) lor sh

let encode = function
  | Nop -> 0
  | Mul (rd, rs) -> enc_rr Op.nop rd rs lor 1
  | Mulh (rd, rs) -> enc_rr Op.nop rd rs lor 2
  | Div (rd, rs) -> enc_rr Op.nop rd rs lor 3
  | Rem (rd, rs) -> enc_rr Op.nop rd rs lor 4
  | Li (rd, v) -> enc_ri Op.li rd v
  | Addi (rd, v) -> enc_ri Op.addi rd v
  | Add (rd, rs) -> enc_rr Op.add rd rs
  | Sub (rd, rs) -> enc_rr Op.sub rd rs
  | And_ (rd, rs) -> enc_rr Op.and_ rd rs
  | Or_ (rd, rs) -> enc_rr Op.or_ rd rs
  | Xor_ (rd, rs) -> enc_rr Op.xor rd rs
  | Sll (rd, sh) -> enc_sh Op.sll rd sh
  | Srl (rd, sh) -> enc_sh Op.srl rd sh
  | Lw (rd, rs) -> enc_rr Op.lw rd rs
  | Sw (rd, rs) -> enc_rr Op.sw rd rs
  | Beqz (rs, off) -> enc_ri Op.beqz rs off
  | Bnez (rs, off) -> enc_ri Op.bnez rs off
  | Jr (rs) -> enc_rr Op.jr rs 0
  | Halt -> Op.halt lsl 12

let decode w =
  let op = (w lsr 12) land 0xF in
  let rd = (w lsr 8) land 0xF in
  let rs = (w lsr 4) land 0xF in
  let imm8 = w land 0xFF in
  let imm4 = w land 0xF in
  if op = Op.nop then
    if imm4 = 1 then Mul (rd, rs)
    else if imm4 = 2 then Mulh (rd, rs)
    else if imm4 = 3 then Div (rd, rs)
    else if imm4 = 4 then Rem (rd, rs)
    else Nop
  else if op = Op.li then Li (rd, imm8)
  else if op = Op.addi then Addi (rd, imm8)
  else if op = Op.add then Add (rd, rs)
  else if op = Op.sub then Sub (rd, rs)
  else if op = Op.and_ then And_ (rd, rs)
  else if op = Op.or_ then Or_ (rd, rs)
  else if op = Op.xor then Xor_ (rd, rs)
  else if op = Op.sll then Sll (rd, imm4)
  else if op = Op.srl then Srl (rd, imm4)
  else if op = Op.lw then Lw (rd, rs)
  else if op = Op.sw then Sw (rd, rs)
  else if op = Op.beqz then Beqz (rd, imm8)
  else if op = Op.bnez then Bnez (rd, imm8)
  else if op = Op.jr then Jr rd
  else Halt

let is_branch = function
  | Beqz _ | Bnez _ | Jr _ -> true
  | Nop | Mul _ | Mulh _ | Div _ | Rem _ | Li _ | Addi _ | Add _ | Sub _
  | And_ _ | Or_ _ | Xor_ _ | Sll _ | Srl _ | Lw _ | Sw _ | Halt ->
    false

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Mul (rd, rs) -> Format.fprintf ppf "mul r%d, r%d" rd rs
  | Mulh (rd, rs) -> Format.fprintf ppf "mulh r%d, r%d" rd rs
  | Div (rd, rs) -> Format.fprintf ppf "div r%d, r%d" rd rs
  | Rem (rd, rs) -> Format.fprintf ppf "rem r%d, r%d" rd rs
  | Li (rd, v) -> Format.fprintf ppf "li r%d, %d" rd v
  | Addi (rd, v) -> Format.fprintf ppf "addi r%d, %d" rd v
  | Add (rd, rs) -> Format.fprintf ppf "add r%d, r%d" rd rs
  | Sub (rd, rs) -> Format.fprintf ppf "sub r%d, r%d" rd rs
  | And_ (rd, rs) -> Format.fprintf ppf "and r%d, r%d" rd rs
  | Or_ (rd, rs) -> Format.fprintf ppf "or r%d, r%d" rd rs
  | Xor_ (rd, rs) -> Format.fprintf ppf "xor r%d, r%d" rd rs
  | Sll (rd, sh) -> Format.fprintf ppf "sll r%d, %d" rd sh
  | Srl (rd, sh) -> Format.fprintf ppf "srl r%d, %d" rd sh
  | Lw (rd, rs) -> Format.fprintf ppf "lw r%d, [r%d]" rd rs
  | Sw (rd, rs) -> Format.fprintf ppf "sw r%d, [r%d]" rd rs
  | Beqz (rs, off) -> Format.fprintf ppf "beqz r%d, %d" rs off
  | Bnez (rs, off) -> Format.fprintf ppf "bnez r%d, %d" rs off
  | Jr rs -> Format.fprintf ppf "jr r%d" rs
  | Halt -> Format.pp_print_string ppf "halt"
