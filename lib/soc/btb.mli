open Olfu_netlist

(** Branch target buffer: the address-holding structure the paper's memory
    rule targets ("many bits in the registers used to save branch
    addresses are stuck to a value").

    Direct-mapped, valid/tag/target per entry.  On a taken PC-relative
    branch the computed target is written; on the next execution of the
    same branch the stored target is used (identical in the good circuit,
    observable when a fault corrupts a stored bit). *)

type t = {
  hit : int;
  target : Rtl.bus;
}

val build :
  Netlist.Builder.t ->
  prefix:string ->
  rstn:int ->
  entries:int ->
  pc:Rtl.bus ->
  wr_en:int ->
  target_in:Rtl.bus ->
  t
(** [entries] must be a power of two ≥ 2.  Tag and target register bits
    carry {!Netlist.Address_reg} roles for the memory-map manipulation. *)
