open Olfu_netlist
module B = Netlist.Builder

type t = { hit : int; target : Rtl.bus }

let log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let build b ~prefix ~rstn ~entries ~pc ~wr_en ~target_in =
  if entries < 2 || 1 lsl log2 entries <> entries then
    invalid_arg "Btb.build: entries must be a power of two >= 2";
  let xlen = Rtl.width pc in
  let idxw = log2 entries in
  let index = Rtl.slice pc 0 idxw in
  let pc_high = Rtl.slice pc idxw (xlen - idxw) in
  let onehot = Rtl.decoder b index in
  let entry e =
    let name s = Printf.sprintf "%s/e%d/%s" prefix e s in
    let we = B.and2 b wr_en onehot.(e) in
    let valid =
      Rtl.reg_feedback b ~name:(name "valid") ~rstn ~width:1 (fun q ->
          [| B.or2 b q.(0) we |])
    in
    let tag =
      Rtl.reg_en b ~name:(name "tag")
        ~roles:(fun i -> [ Netlist.Address_reg (i + idxw) ])
        ~rstn ~en:we ~d:pc_high
    in
    let target =
      Rtl.reg_en b ~name:(name "target")
        ~roles:(fun i -> [ Netlist.Address_reg i ])
        ~rstn ~en:we ~d:target_in
    in
    let tag_match = Rtl.eq b tag pc_high in
    let hit_e = B.and2 b valid.(0) (B.and2 b tag_match onehot.(e)) in
    (hit_e, target)
  in
  let cells = List.init entries entry in
  let hit =
    Rtl.reduce_or b (Array.of_list (List.map fst cells))
  in
  let target =
    Rtl.mux_tree b ~sel:index (List.map snd cells)
  in
  { hit; target }
