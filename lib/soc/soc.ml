open Olfu_logic
open Olfu_netlist
open Olfu_manip
module B = Netlist.Builder

type config = {
  name : string;
  xlen : int;
  btb_entries : int;
  scan_chains : int;
  scan_link_buffers : int;
  debug : bool;
  bist : bool;
  boundary_scan : bool;
  rom : Memmap.region;
  ram : Memmap.region;
}

(* The paper's case study maps a small flash and RAM into a 32-bit space;
   we use word addresses with the same structure: a low ROM and a RAM
   window at a high base, leaving most address bits constant. *)
(* The memory map mirrors the paper's freedom structure: 18 low address
   bits plus bit 30 can toggle, the other 13 are mission constants. *)
let tcore32 =
  {
    name = "tcore32";
    xlen = 32;
    btb_entries = 2;
    scan_chains = 4;
    scan_link_buffers = 2;
    debug = true;
    bist = false;
    boundary_scan = false;
    rom = Memmap.region ~name:"flash" ~lo:0x0000_0000 ~hi:0x0001_FFFF ();
    ram = Memmap.region ~name:"ram" ~lo:0x4000_0000 ~hi:0x4003_FFFF ();
  }

(* Beyond the paper: the same core with the full DfT population of
   Sec. 3 — logic BIST and boundary scan on top of scan and debug. *)
let tcore32_dft =
  { tcore32 with name = "tcore32_dft"; bist = true; boundary_scan = true }

let tcore16 =
  {
    name = "tcore16";
    xlen = 16;
    btb_entries = 2;
    scan_chains = 1;
    scan_link_buffers = 1;
    debug = true;
    bist = false;
    boundary_scan = false;
    rom = Memmap.region ~name:"flash" ~lo:0x0000 ~hi:0x00FF ();
    ram = Memmap.region ~name:"ram" ~lo:0x4000 ~hi:0x40FF ();
  }

let memmap_regions cfg = [ cfg.rom; cfg.ram ]

let generate cfg =
  let b = B.create () in
  let rstn = B.input b ~roles:[ Netlist.Reset ] "rstn" in
  let pins = Rtl.input_bus b "bus_rdata" cfg.xlen in
  let rdata =
    if cfg.boundary_scan then begin
      let bsr = Bscan.wrap b ~rstn ~pins in
      ignore
        (B.output b ~roles:[ Netlist.Debug_observe ] "bs_tdo" bsr.Bscan.tdo
          : int);
      bsr.Bscan.wrapped
    end
    else pins
  in
  let ports =
    Core.build b ~rstn ~rdata ~xlen:cfg.xlen ~btb_entries:cfg.btb_entries
      ~debug:cfg.debug
  in
  if cfg.bist then begin
    let bist = Bist.build b ~rstn ~misr:ports.Core.misr in
    ignore
      (B.output b ~roles:[ Netlist.Debug_observe ] "bist_done"
         bist.Bist.done_
        : int);
    ignore
      (B.output b ~roles:[ Netlist.Debug_observe ] "bist_pass" bist.Bist.pass
        : int)
  end;
  Rtl.output_bus b "bus_addr"
    ~roles:(fun i -> [ Netlist.Address_port i ])
    ports.Core.addr;
  Rtl.output_bus b "bus_wdata" ports.Core.wdata;
  ignore (B.output b "bus_rd" ports.Core.rd_en : int);
  ignore (B.output b "bus_wr" ports.Core.wr_en : int);
  ignore (B.output b "halted" ports.Core.halted : int);
  ignore (B.output b "perf_tick" ports.Core.perf_tick : int);
  Rtl.output_bus b "misr_out" ports.Core.misr;
  (match ports.Core.gpr_obs with
  | Some v ->
    Rtl.output_bus b "gpr_obs" ~roles:(fun _ -> [ Netlist.Debug_observe ]) v
  | None -> ());
  (match ports.Core.spr_obs with
  | Some v ->
    Rtl.output_bus b "spr_obs" ~roles:(fun _ -> [ Netlist.Debug_observe ]) v
  | None -> ());
  let flat = B.freeze_exn b in
  (* synthesis-style cleanup: drop generator leftovers (placeholder ties,
     unused carry tails) before scan stitching *)
  let swept, _removed = Sweep.sweep flat in
  (Scan_insert.insert ~chains:cfg.scan_chains
     ~link_buffers:cfg.scan_link_buffers swept)
    .Scan_insert.netlist

let debug_control_inputs cfg =
  (if cfg.debug then Debug_unit.control_input_names else [])
  @ (if cfg.bist then Bist.control_input_names else [])
  @ if cfg.boundary_scan then Bscan.control_input_names else []

let debug_observe_outputs _cfg nl =
  Netlist.outputs nl |> Array.to_list
  |> List.filter (fun o -> Netlist.has_role nl o Netlist.Debug_observe)
  |> List.filter_map (fun o -> Netlist.name nl o)

let mission_debug_script cfg nl =
  let ties =
    List.map
      (fun s -> Script.Tie_input (s, Logic4.L0))
      (debug_control_inputs cfg)
  in
  let floats =
    List.map (fun s -> Script.Float_output s) (debug_observe_outputs cfg nl)
  in
  ties @ floats

let pp_config ppf cfg =
  Format.fprintf ppf
    "%s: xlen=%d btb=%d chains=%d linkbufs=%d debug=%b bist=%b bscan=%b \
     rom=[%X,%X] ram=[%X,%X]"
    cfg.name cfg.xlen cfg.btb_entries cfg.scan_chains cfg.scan_link_buffers
    cfg.debug cfg.bist cfg.boundary_scan cfg.rom.Memmap.lo cfg.rom.Memmap.hi
    cfg.ram.Memmap.lo cfg.ram.Memmap.hi
