type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.12g" f)
  else Buffer.add_string buf "null" (* nan/inf have no JSON form *)

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    sep ();
    List.iteri
      (fun k item ->
        if k > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    sep ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    sep ();
    List.iteri
      (fun k (key, item) ->
        if k > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        escape_to buf key;
        Buffer.add_string buf (if indent then ": " else ":");
        emit buf ~indent ~level:(level + 1) item)
      fields;
    sep ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_channel ?indent oc v = output_string oc (to_string ?indent v)

let to_file ?indent path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?indent oc v)

(* ------------------------------------------------------------------ *)
(* Strict parsing                                                     *)
(* ------------------------------------------------------------------ *)

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad (m, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input"
    else begin
      let c = s.[!pos] in
      incr pos;
      c
    end
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    let g = next () in
    if g <> c then fail (Printf.sprintf "expected %C, got %C" c g)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let hex4 () =
    let d = ref 0 in
    for _ = 1 to 4 do
      let c = next () in
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      d := (!d * 16) + v
    done;
    !d
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          (* decode to UTF-8; surrogate pairs accepted *)
          let cp = hex4 () in
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              expect '\\';
              expect 'u';
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "unpaired surrogate";
              0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then
              fail "unpaired surrogate"
            else cp
          in
          if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else if cp < 0x10000 then begin
            Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape \\%C" c));
        loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    (* leading zero rule: 0 or [1-9][0-9]* *)
    (match peek () with
    | Some '0' ->
      incr pos;
      (match peek () with
      | Some '0' .. '9' -> fail "leading zero"
      | _ -> ())
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected digit");
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      incr pos;
      (match peek () with
      | Some ('+' | '-') -> incr pos
      | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match next () with
          | ',' -> members ()
          | '}' -> ()
          | c -> fail (Printf.sprintf "expected ',' or '}', got %C" c)
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match next () with
          | ',' -> elements ()
          | ']' -> ()
          | c -> fail (Printf.sprintf "expected ',' or ']', got %C" c)
        in
        elements ();
        List (List.rev !items)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (m, p) -> Error (Printf.sprintf "%s at offset %d" m p)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
