(** Flat JSON run manifest.

    One self-contained document per run: what was run (config,
    [git describe] of the working tree), how long it took (wall seconds,
    per-engine seconds aggregated from the sink's ["engine"] spans,
    per-step seconds with verdict breakdowns), and what it counted
    (merged counter totals, gauges).  The [tools/check.sh] gate and
    [bench -- obs] strict-parse manifests and assert the per-engine and
    per-step attributions each cover wall time to within 5%. *)

type step = {
  name : string;
  seconds : float;
  classified : int;
  verdicts : (string * int) list;
      (** per-verdict-class counts of the step's newly classified faults *)
}

val git_describe : unit -> string
(** [git describe --always --dirty] of the current directory, or
    ["unknown"] when git or the repository is unavailable.  Memoized. *)

val make :
  ?config:(string * Json.t) list ->
  ?steps:step list ->
  ?prep:(string * float) list ->
  ?extra:(string * Json.t) list ->
  wall_seconds:float ->
  Trace.sink ->
  Json.t
(** Build the manifest object.  [config] renders under ["config"];
    [steps] under ["steps"]; [prep] lists named setup phases that belong
    to no step (e.g. the shared ternary fixpoint) and participate in the
    step-coverage sum; [extra] fields are appended verbatim at top
    level.  ["engines"], ["engine_seconds_total"], ["counters"] and
    ["gauges"] come from the sink; ["peak_heap_bytes"] records the
    process's GC [top_heap_words] (in bytes) at manifest time. *)

val to_file : Json.t -> string -> unit

val append_line : Json.t -> string -> unit
(** Append the value as one compact JSON line (creating the file when
    absent) — the daemon's per-request audit record: one {!make}
    manifest per served request, written under the server's audit
    lock. *)
