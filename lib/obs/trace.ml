type span = {
  id : int;
  parent : int;
  name : string;
  cat : string;
  tid : int;
  t0 : float;
  dur : float;
}

let max_workers = 64

type recorder = {
  origin : float;
  m : Mutex.t;
  mutable spans : span list;  (* reverse completion order *)
  next_id : int Atomic.t;
  counters : (string, int Atomic.t array) Hashtbl.t;  (* m-protected lookup *)
  gauges : (string, float) Hashtbl.t;  (* m-protected *)
  stack : int list ref Domain.DLS.key;  (* open-span ids, per domain *)
}

type sink = Noop | Rec of recorder

(* Monotonic clock: gettimeofday clamped to never decrease, process-wide.
   Zero-dependency stand-in for CLOCK_MONOTONIC — span durations can be
   stretched by a forward clock step but never go negative. *)
let mono_last = Atomic.make 0.

let mono_now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let last = Atomic.get mono_last in
    if t <= last then last
    else if Atomic.compare_and_set mono_last last t then t
    else clamp ()
  in
  clamp ()

let null = Noop

let create () =
  Rec
    {
      origin = mono_now ();
      m = Mutex.create ();
      spans = [];
      next_id = Atomic.make 0;
      counters = Hashtbl.create 31;
      gauges = Hashtbl.create 7;
      stack = Domain.DLS.new_key (fun () -> ref []);
    }

let enabled = function Noop -> false | Rec _ -> true
let now = function Noop -> 0. | Rec r -> mono_now () -. r.origin

let push_span r s =
  Mutex.lock r.m;
  r.spans <- s :: r.spans;
  Mutex.unlock r.m

let span sink ?(cat = "span") ?(tid = 0) name f =
  match sink with
  | Noop -> f ()
  | Rec r ->
    let stack = Domain.DLS.get r.stack in
    let parent = match !stack with [] -> -1 | p :: _ -> p in
    let id = Atomic.fetch_and_add r.next_id 1 in
    stack := id :: !stack;
    let t0 = mono_now () -. r.origin in
    Fun.protect
      ~finally:(fun () ->
        let dur = mono_now () -. r.origin -. t0 in
        (match !stack with
        | top :: rest when top = id -> stack := rest
        | _ -> () (* unbalanced pop: keep recording, drop the repair *));
        push_span r { id; parent; name; cat; tid; t0; dur })
      f

let record sink ?(cat = "span") ?(tid = 0) ?t0 ~dur name =
  match sink with
  | Noop -> ()
  | Rec r ->
    let t0 =
      match t0 with Some t -> t | None -> mono_now () -. r.origin -. dur
    in
    let id = Atomic.fetch_and_add r.next_id 1 in
    push_span r { id; parent = -1; name; cat; tid; t0 = Float.max 0. t0; dur }

let shards r name =
  Mutex.lock r.m;
  let s =
    match Hashtbl.find_opt r.counters name with
    | Some s -> s
    | None ->
      let s = Array.init max_workers (fun _ -> Atomic.make 0) in
      Hashtbl.add r.counters name s;
      s
  in
  Mutex.unlock r.m;
  s

let add sink ?(worker = 0) name n =
  match sink with
  | Noop -> ()
  | Rec r ->
    let s = shards r name in
    ignore (Atomic.fetch_and_add s.(worker land (max_workers - 1)) n)

let gauge sink name v =
  match sink with
  | Noop -> ()
  | Rec r ->
    Mutex.lock r.m;
    Hashtbl.replace r.gauges name v;
    Mutex.unlock r.m

let spans = function
  | Noop -> []
  | Rec r ->
    Mutex.lock r.m;
    let l = r.spans in
    Mutex.unlock r.m;
    List.stable_sort (fun a b -> compare (a.t0, a.id) (b.t0, b.id)) l

let counters = function
  | Noop -> []
  | Rec r ->
    Mutex.lock r.m;
    let l =
      Hashtbl.fold
        (fun name s acc ->
          (name, Array.fold_left (fun t c -> t + Atomic.get c) 0 s) :: acc)
        r.counters []
    in
    Mutex.unlock r.m;
    List.sort compare l

let gauges = function
  | Noop -> []
  | Rec r ->
    Mutex.lock r.m;
    let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.gauges [] in
    Mutex.unlock r.m;
    List.sort compare l

let engine_seconds sink =
  let tbl = Hashtbl.create 17 in
  List.iter
    (fun s ->
      if s.cat = "engine" then
        Hashtbl.replace tbl s.name
          (Option.value ~default:0. (Hashtbl.find_opt tbl s.name) +. s.dur))
    (spans sink);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
