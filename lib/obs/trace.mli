(** Structured observability: monotonic-clock spans with parent nesting,
    named counters and gauges, behind a sink that costs one branch when
    disabled.

    A {!sink} is threaded through the flows ({!Olfu.Flow},
    {!Olfu.Tdf_flow}), the engines ({!Olfu_atpg.Untestable},
    {!Olfu_atpg.Atpg_flow}, {!Olfu_fsim.Comb_fsim},
    {!Olfu_fsim.Seq_fsim}) and the domain pool
    ({!Olfu_pool.Pool.parallel_chunks}).  The default {!null} sink makes
    every probe a no-op — the instrumented hot paths stay within the
    noise floor of the uninstrumented ones (the [bench -- fsim] gate
    asserts < 2%).

    {b Spans} measure wall time on a monotonic clock (never runs
    backwards even if the system clock steps) and nest: each domain keeps
    a stack of open spans, so a span started inside another records it as
    its parent.  Span categories partition the attribution:
    ["engine"] spans are the per-engine time accounting (they must never
    nest inside each other — {!Manifest} sums them against wall time),
    ["step"]/["flow"] spans group them, ["pool"]/["worker"] spans expose
    the scheduler.

    {b Counters} are per-worker sharded (one atomic cell per worker id,
    merged at read time) so parallel increments never contend or lose
    updates, and — by the pool's exactly-once chunk discipline — their
    totals are identical for any [jobs] value.  Only deterministic
    quantities may be counters; scheduling-dependent measurements (idle
    time, per-worker busy time) are recorded as spans or gauges. *)

type sink

type span = {
  id : int;
  parent : int;  (** id of the enclosing span on the same domain, or -1 *)
  name : string;
  cat : string;
  tid : int;  (** thread lane for the Chrome exporter (0 = caller) *)
  t0 : float;  (** seconds since the sink was created, monotonic *)
  dur : float;  (** seconds *)
}

val null : sink
(** The no-op sink: every probe returns immediately. *)

val create : unit -> sink
(** A recording sink.  Thread-safe: spans and counters may be recorded
    from any domain. *)

val enabled : sink -> bool

val span : sink -> ?cat:string -> ?tid:int -> string -> (unit -> 'a) -> 'a
(** [span sink ~cat name f] times [f ()] and records a completed span,
    parented under the innermost open span of the calling domain.  The
    span is recorded (and the nesting stack unwound) even when [f]
    raises.  Default [cat] is ["span"], default [tid] is [0]. *)

val record :
  sink -> ?cat:string -> ?tid:int -> ?t0:float -> dur:float -> string -> unit
(** Record an already-measured span (no nesting bookkeeping).  Used for
    accumulated attributions, e.g. the summed PODEM time of a search
    phase.  [t0] defaults to the current monotonic offset minus [dur]. *)

val add : sink -> ?worker:int -> string -> int -> unit
(** [add sink ~worker name n] increments counter [name] by [n] on the
    worker's shard.  Counters are created on first use. *)

val gauge : sink -> string -> float -> unit
(** Set gauge [name] (last write wins). *)

val now : sink -> float
(** Monotonic seconds since the sink was created ([0.] on {!null}). *)

(** {2 Reading — used by the exporters and the test gates} *)

val spans : sink -> span list
(** All completed spans, ordered by start time. *)

val counters : sink -> (string * int) list
(** Merged shard totals, sorted by name. *)

val gauges : sink -> (string * float) list

val engine_seconds : sink -> (string * float) list
(** Total duration of ["engine"]-category spans grouped by span name,
    sorted by name — the per-engine time attribution. *)
