(** Minimal JSON: a value type, a compact printer, and a strict parser.

    The observability exporters ({!Export}, {!Manifest}) build values of
    this type, the CLI renders structured [--format json] output through
    it, and the test/bench gates round-trip emitted documents through
    {!parse} so every byte the tools write is machine-checked.  Strings
    are emitted with full control-character escaping; floats always carry
    a decimal point or exponent so consumers never reparse them as
    integers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two-space
    indentation (the form written to [--manifest] files). *)

val to_channel : ?indent:bool -> out_channel -> t -> unit
val to_file : ?indent:bool -> string -> t -> unit

val parse : string -> (t, string) result
(** Strict parser: exactly one JSON value, nothing but whitespace around
    it, no trailing commas, no comments, [\uXXXX] escapes validated.
    Numbers with a fraction or exponent parse as [Float], others as
    [Int] (falling back to [Float] on overflow).  Errors carry a byte
    offset. *)

(** Accessors used by the validation gates; all total. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
