type step = {
  name : string;
  seconds : float;
  classified : int;
  verdicts : (string * int) list;
}

let git_describe_memo = ref None

let git_describe () =
  match !git_describe_memo with
  | Some s -> s
  | None ->
    let s =
      try
        let ic =
          Unix.open_process_in "git describe --always --dirty 2>/dev/null"
        in
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown"
    in
    git_describe_memo := Some s;
    s

let step_json s =
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("seconds", Json.Float s.seconds);
      ("classified", Json.Int s.classified);
      ( "verdicts",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.verdicts) );
    ]

let make ?(config = []) ?(steps = []) ?(prep = []) ?(extra = [])
    ~wall_seconds sink =
  let engines = Trace.engine_seconds sink in
  let engine_total = List.fold_left (fun a (_, s) -> a +. s) 0. engines in
  let step_total =
    List.fold_left (fun a s -> a +. s.seconds) 0. steps
    +. List.fold_left (fun a (_, s) -> a +. s) 0. prep
  in
  Json.Obj
    ([
       ("tool", Json.Str "olfu");
       ("schema", Json.Int 1);
       ("git", Json.Str (git_describe ()));
       ("config", Json.Obj config);
       ("wall_seconds", Json.Float wall_seconds);
       ( "peak_heap_bytes",
         Json.Int ((Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8))
       );
       ( "engines",
         Json.Obj (List.map (fun (k, s) -> (k, Json.Float s)) engines) );
       ("engine_seconds_total", Json.Float engine_total);
       ("steps", Json.List (List.map step_json steps));
       ( "prep",
         Json.Obj (List.map (fun (k, s) -> (k, Json.Float s)) prep) );
       ("step_seconds_total", Json.Float step_total);
       ( "counters",
         Json.Obj
           (List.map (fun (k, v) -> (k, Json.Int v)) (Trace.counters sink))
       );
       ( "gauges",
         Json.Obj
           (List.map (fun (k, v) -> (k, Json.Float v)) (Trace.gauges sink))
       );
     ]
    @ extra)

let to_file m path = Json.to_file ~indent:true path m

(* Request-scoped audit: the analysis daemon appends one compact
   manifest per served request.  Appends are serialized by the caller
   (the server holds its audit mutex); the channel is opened per line so
   external log rotation cannot strand a stale descriptor. *)
let append_line m path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  output_string oc (Json.to_string m);
  output_char oc '\n';
  close_out oc
