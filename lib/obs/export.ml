let event (s : Trace.span) =
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("cat", Json.Str s.Trace.cat);
      ("ph", Json.Str "X");
      ("ts", Json.Float (s.Trace.t0 *. 1e6));
      ("dur", Json.Float (s.Trace.dur *. 1e6));
      ("pid", Json.Int 1);
      ("tid", Json.Int s.Trace.tid);
      ( "args",
        Json.Obj
          [ ("id", Json.Int s.Trace.id); ("parent", Json.Int s.Trace.parent) ]
      );
    ]

let thread_name tid name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let chrome_json sink =
  let spans = Trace.spans sink in
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.Trace.tid) spans)
  in
  let names =
    List.map
      (fun tid ->
        thread_name tid
          (if tid = 0 then "caller" else Printf.sprintf "worker %d" tid))
      tids
  in
  let counters =
    Json.Obj
      (List.map (fun (k, v) -> (k, Json.Int v)) (Trace.counters sink))
  in
  let meta =
    Json.Obj
      [
        ("name", Json.Str "olfu_counters");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", counters);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (names @ (meta :: List.map event spans)) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_file sink path = Json.to_file ~indent:true path (chrome_json sink)
