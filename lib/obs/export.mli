(** Chrome [trace_event] exporter.

    Emits the sink's spans as complete ("X") events in the JSON Object
    Format understood by [chrome://tracing], Perfetto's legacy importer
    and [speedscope]: timestamps and durations in microseconds, one
    process, span [tid]s as thread lanes (lane 0 is the caller, lanes
    above it the pool workers).  Counter totals ride along in a metadata
    event so a trace file is self-describing. *)

val chrome_json : Trace.sink -> Json.t
val to_file : Trace.sink -> string -> unit
