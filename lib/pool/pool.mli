(** Small stdlib-only domain pool ([Domain] + [Mutex]/[Condition]) with
    per-worker work ranges and half-range stealing.

    A pool owns [effective - 1] worker domains (the caller is the
    remaining worker), where [effective] is the requested [jobs] clamped
    to the hardware parallelism reported by
    [Domain.recommended_domain_count].  Oversubscribing domains is a
    pessimization in OCaml 5 — minor collections are stop-the-world
    across all domains — and every pool consumer is jobs-invariant by
    contract, so the clamp changes timing only, never results.  Tests
    that need more domains than cores pass [~oversubscribe:true].

    Work is submitted as an index range [0, n) that is pre-split into one
    contiguous range per worker.  Each worker claims chunks off its own
    range (a private atomic, so the hot path has no cross-domain cache
    traffic), halving what remains per claim up to a quantum cap: early
    claims are large and cheap, tail claims shrink towards one item.  A
    worker whose range runs dry steals the top half of the fullest
    sibling range, so an item with a pathological cost (a huge fanout
    cone, say) cannot serialize the tail behind one worker.

    Determinism contract: {!parallel_chunks} guarantees every index in
    [0, n) is processed by exactly one worker, but the assignment of
    indices to workers and their interleaving is scheduling-dependent.
    Callers that need deterministic results must make each index's result
    independent of the others (write to per-index slots, merge by index
    order, or reduce with a commutative/associative operation), which is
    the discipline used by the fault-simulation engines. *)

type t

val default_jobs : unit -> int
(** Worker count from the [OLFU_JOBS] environment variable, clamped to
    [1, 64]; [1] when unset.  An unparsable value also yields [1] but
    prints a one-line warning to stderr (once per process) so a
    misconfigured CI run is diagnosable.  The CLI [--jobs] flag
    overrides it. *)

val hardware_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1, 64]: the largest
    worker count {!create} will actually spawn without
    [~oversubscribe]. *)

val create : ?oversubscribe:bool -> jobs:int -> unit -> t
(** Spawns [min jobs (hardware_jobs ()) - 1] worker domains ([jobs] is
    clamped to [1, 64]); with [~oversubscribe:true] the hardware clamp is
    skipped.  A pool with an effective size of 1 spawns nothing and runs
    everything inline. *)

val jobs : t -> int
(** Effective worker count (after the hardware clamp). *)

val last_steals : t -> int
(** Number of successful steals during the most recent
    {!parallel_chunks} dispatch.  Scheduling-dependent; exposed for
    tests and diagnostics. *)

val parallel_chunks :
  t ->
  n:int ->
  ?chunk:int ->
  ?trace:Olfu_obs.Trace.sink ->
  ?label:string ->
  (worker:int -> lo:int -> hi:int -> unit) ->
  unit
(** [parallel_chunks t ~n f] applies [f ~worker ~lo ~hi] over disjoint
    chunks covering [0, n), in parallel over the pool, and returns once
    every index has been processed (a barrier).  [worker] is a stable id
    in [0, jobs t), usable to index per-worker scratch.  [chunk] caps the
    number of items per claim (the quantum; default
    [min 1024 (n / (16 * jobs))], at least 1) — actual claim sizes halve
    as a worker's range drains, and ranges rebalance by stealing, so the
    chunk schedule is scheduling-dependent.  No worker returns while a
    sibling still holds unclaimed items.  The first exception raised by
    any worker is re-raised in the caller after the barrier; remaining
    items are abandoned.

    With a recording [trace], every dispatch bumps the
    ["pool.dispatches"]/["pool.items"] counters (jobs-invariant totals;
    per-claim counts are scheduling-dependent under stealing and are
    deliberately not counted), each worker records one
    ["worker"]-category span named [label], and the dispatch records a
    ["pool"]-category span plus ["pool.last_idle_seconds"],
    ["pool.last_steals"] and ["pool.last_utilization"] gauges
    (scheduling-dependent, so gauges rather than counters;
    utilization is [sum busy / (jobs * region)]). *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must be idle; using it after
    shutdown raises [Invalid_argument].  Idempotent. *)

val with_pool : ?oversubscribe:bool -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a pool of the requested size.  Pools
    with an effective size > 1 are leased from a process-global registry
    and kept alive for reuse (domain spawn/join is a stop-the-world per
    domain, and flows dispatch through the pool many times), shutting
    down at process exit; size-1 and oversubscribed pools are private to
    the call and shut down on exit, including on exception.

    Safe under concurrency: overlapping calls from different domains —
    the analysis daemon serving simultaneous requests with equal or
    different [jobs] values — each lease a distinct pool (the registry
    keeps a short list per size, spilling to private pools beyond it),
    and the registry lock is never held across pool creation or [f], so
    nested or concurrent leases cannot deadlock.  Results remain
    jobs-invariant by the consumers' contract regardless of which pool a
    request lands on. *)
