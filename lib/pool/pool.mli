(** Small stdlib-only domain pool ([Domain] + [Mutex]/[Condition]).

    A pool owns [jobs - 1] worker domains (the caller is the remaining
    worker).  Work is submitted as an index range that workers consume in
    contiguous chunks through an atomic cursor: chunks keep cache locality
    for consumers that walk adjacent data (fault lists are ordered by
    site, so neighbouring indices share fanout cones), while the dynamic
    cursor balances uneven chunk costs.

    Determinism contract: {!parallel_chunks} guarantees every index in
    [0, n) is processed by exactly one worker, but the assignment of
    indices to workers and their interleaving is scheduling-dependent.
    Callers that need deterministic results must make each index's result
    independent of the others (write to per-index slots, merge by index
    order, or reduce with a commutative/associative operation), which is
    the discipline used by the fault-simulation engines. *)

type t

val default_jobs : unit -> int
(** Worker count from the [OLFU_JOBS] environment variable, clamped to
    [1, 64]; [1] when unset or unparsable.  The CLI [--jobs] flag
    overrides it. *)

val create : jobs:int -> t
(** Spawns [jobs - 1] worker domains ([jobs] is clamped to [1, 64]).
    A pool with [jobs = 1] spawns nothing and runs everything inline. *)

val jobs : t -> int

val parallel_chunks :
  t ->
  n:int ->
  ?chunk:int ->
  ?trace:Olfu_obs.Trace.sink ->
  ?label:string ->
  (worker:int -> lo:int -> hi:int -> unit) ->
  unit
(** [parallel_chunks t ~n f] applies [f ~worker ~lo ~hi] over disjoint
    chunks covering [0, n), in parallel over the pool, and returns once
    every index has been processed (a barrier).  [worker] is a stable id
    in [0, jobs t), usable to index per-worker scratch.  [chunk] is the
    chunk length (default: [ceil (n / 64)], at least 1 — independent of
    the worker count, so the chunk schedule is identical for any [jobs]
    value).  The first exception raised by any worker is re-raised in
    the caller after the barrier; remaining chunks are abandoned.

    With a recording [trace], every dispatch bumps the
    ["pool.dispatches"]/["pool.items"] counters, each processed chunk
    bumps ["pool.chunks"] on its worker's shard (jobs-invariant totals),
    each worker records one ["worker"]-category span named [label], and
    the dispatch records a ["pool"]-category span plus a
    ["pool.last_idle_seconds"] gauge (scheduling-dependent, so a gauge
    rather than a counter). *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must be idle; using it after
    shutdown raises [Invalid_argument].  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit, including on exception. *)
