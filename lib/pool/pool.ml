module Trace = Olfu_obs.Trace

let clamp_jobs j = max 1 (min 64 j)

let env_warned = ref false

let default_jobs () =
  match Sys.getenv_opt "OLFU_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j -> clamp_jobs j
    | None ->
      if not !env_warned then begin
        env_warned := true;
        Printf.eprintf
          "olfu: warning: OLFU_JOBS=%S is not an integer; falling back to 1 \
           job\n\
           %!"
          s
      end;
      1)

(* Spawning more domains than the machine has cores is a pessimization in
   OCaml 5: minor collections are stop-the-world across every domain, so
   an oversubscribed domain set pays scheduling latency on each GC.  All
   pool consumers are jobs-invariant by contract, so silently running a
   [jobs = 4] request on fewer domains changes timing only, never
   results. *)
let hardware_jobs () = clamp_jobs (Domain.recommended_domain_count ())

let effective ~oversubscribe jobs =
  let j = clamp_jobs jobs in
  if oversubscribe then j else min j (hardware_jobs ())

(* ------------------------------------------------------------------ *)
(* Per-worker ranges with half-range stealing                          *)
(* ------------------------------------------------------------------ *)

(* A worker's unclaimed items form one contiguous range packed into a
   single OCaml int: [(lo lsl 31) lor hi], both fields < 2^31.  The
   owner claims quantum-capped chunks off [lo] with a CAS on its own
   cell; a worker whose range ran dry steals the top half of the fullest
   sibling range with a CAS on the victim's cell.  One atomic per worker
   replaces the single shared cursor every domain used to hammer. *)

let field_bits = 31
let field_mask = (1 lsl field_bits) - 1
let max_items = field_mask
let pack ~lo ~hi = (lo lsl field_bits) lor hi
let range_lo x = x lsr field_bits
let range_hi x = x land field_mask

(* One cache line of floats per worker: adjacent slots of the busy array
   would otherwise false-share when every worker stamps its own time. *)
let busy_stride = 8

type job = {
  f : worker:int -> lo:int -> hi:int -> unit;
  quantum : int;  (* max items per claim *)
  ranges : int Atomic.t array;  (* packed per-worker [lo, hi) *)
  unclaimed : int Atomic.t;  (* items sitting in some range *)
  steals : int Atomic.t;
  abort : bool Atomic.t;
  trace : Trace.sink;
  label : string;
  busy : float array;  (* per-worker busy seconds, stride-padded *)
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* workers: a new generation is available *)
  idle : Condition.t;  (* caller: all workers finished the generation *)
  mutable job : job option;
  mutable generation : int;
  mutable running : int;
  mutable stop : bool;
  mutable exn : (exn * Printexc.raw_backtrace) option;
  mutable shut : bool;
  mutable domains : unit Domain.t array;
  mutable leased : bool;  (* held by a [with_pool] caller (registry) *)
  mutable last_steals : int;  (* previous dispatch, scheduling-dependent *)
  njobs : int;
}

let jobs t = t.njobs
let last_steals t = t.last_steals

let record t e bt =
  Mutex.lock t.m;
  if t.exn = None then t.exn <- Some (e, bt);
  Mutex.unlock t.m

(* Claim a chunk off the worker's own range.  The claim halves what is
   left (capped by the quantum), so early claims are big and cheap while
   tail claims shrink towards 1 and stay stealable — dropped faults and
   skewed cone sizes cannot strand a long tail behind one worker. *)
let rec claim j ~worker =
  let r = j.ranges.(worker) in
  let cur = Atomic.get r in
  let lo = range_lo cur and hi = range_hi cur in
  if lo >= hi then None
  else begin
    let take = min j.quantum (max 1 ((hi - lo + 1) / 2)) in
    if Atomic.compare_and_set r cur (pack ~lo:(lo + take) ~hi) then begin
      ignore (Atomic.fetch_and_add j.unclaimed (-take) : int);
      Some (lo, lo + take)
    end
    else claim j ~worker
  end

(* Move the top half of the fullest sibling range into our own (empty)
   cell.  Only the owner ever grows its cell back from empty, so the
   publish is a plain store; thieves only shrink via CAS. *)
let try_steal j ~worker nw =
  let best = ref (-1) and best_avail = ref 0 in
  for v = 0 to nw - 1 do
    if v <> worker then begin
      let cur = Atomic.get j.ranges.(v) in
      let avail = range_hi cur - range_lo cur in
      if avail > !best_avail then begin
        best := v;
        best_avail := avail
      end
    end
  done;
  if !best < 0 then false
  else begin
    let r = j.ranges.(!best) in
    let cur = Atomic.get r in
    let lo = range_lo cur and hi = range_hi cur in
    let avail = hi - lo in
    if avail <= 0 then false
    else begin
      let stolen = max 1 (avail / 2) in
      if Atomic.compare_and_set r cur (pack ~lo ~hi:(hi - stolen)) then begin
        Atomic.set j.ranges.(worker) (pack ~lo:(hi - stolen) ~hi);
        ignore (Atomic.fetch_and_add j.steals 1 : int);
        true
      end
      else false (* raced with the owner or another thief; rescan *)
    end
  end

(* Work until every item is claimed (or a sibling failed).  A worker
   exits only once [unclaimed] hits zero, i.e. never while any sibling
   still holds stealable work. *)
let consume t j ~worker ~nw =
  let rec loop spins =
    if not (Atomic.get j.abort) then begin
      match claim j ~worker with
      | Some (lo, hi) ->
        (try j.f ~worker ~lo ~hi
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Atomic.set j.abort true;
           record t e bt);
        loop 0
      | None ->
        if nw > 1 && try_steal j ~worker nw then loop 0
        else if Atomic.get j.unclaimed > 0 && nw > 1 then begin
          (* work exists but a steal is mid-flight; back off briefly *)
          if spins < 64 then Domain.cpu_relax () else Unix.sleepf 5e-5;
          loop (spins + 1)
        end
    end
  in
  loop 0

(* Busy time is scheduling-dependent, so it goes in spans and gauges
   (one "worker" span per worker per dispatch), never in counters. *)
let consume_traced t j ~worker ~nw =
  if not (Trace.enabled j.trace) then consume t j ~worker ~nw
  else begin
    let t0 = Trace.now j.trace in
    consume t j ~worker ~nw;
    let dur = Trace.now j.trace -. t0 in
    j.busy.(worker * busy_stride) <- dur;
    Trace.record j.trace ~cat:"worker" ~tid:worker ~t0 ~dur j.label
  end

let worker_loop t ~worker =
  let rec loop last_gen =
    Mutex.lock t.m;
    while (not t.stop) && t.generation = last_gen do
      Condition.wait t.work t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      let gen = t.generation in
      let j = Option.get t.job in
      Mutex.unlock t.m;
      consume_traced t j ~worker ~nw:t.njobs;
      Mutex.lock t.m;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.m;
      loop gen
    end
  in
  loop 0

let create ?(oversubscribe = false) ~jobs () =
  let njobs = effective ~oversubscribe jobs in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      generation = 0;
      running = 0;
      stop = false;
      exn = None;
      shut = false;
      domains = [||];
      leased = false;
      last_steals = 0;
      njobs;
    }
  in
  t.domains <-
    Array.init (njobs - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop t ~worker:(k + 1)));
  t

let shutdown t =
  Mutex.lock t.m;
  if t.shut then Mutex.unlock t.m
  else begin
    t.shut <- true;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains
  end

let reraise = function
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_chunks t ~n ?chunk ?(trace = Trace.null) ?(label = "pool") f =
  if n > 0 then begin
    if n > max_items then invalid_arg "Pool.parallel_chunks: n too large";
    let nw = t.njobs in
    let quantum =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (min 1024 (n / (16 * nw)))
    in
    let j =
      {
        f;
        quantum;
        ranges =
          Array.init nw (fun w ->
              Atomic.make (pack ~lo:(w * n / nw) ~hi:((w + 1) * n / nw)));
        unclaimed = Atomic.make n;
        steals = Atomic.make 0;
        abort = Atomic.make false;
        trace;
        label;
        busy = Array.make (nw * busy_stride) 0.;
      }
    in
    Trace.add trace "pool.dispatches" 1;
    Trace.add trace "pool.items" n;
    let t_start = if Trace.enabled trace then Trace.now trace else 0. in
    let finish_trace () =
      if Trace.enabled trace then begin
        let region = Trace.now trace -. t_start in
        let busy_total = ref 0. and idle = ref 0. in
        for w = 0 to nw - 1 do
          let b = j.busy.(w * busy_stride) in
          busy_total := !busy_total +. b;
          idle := !idle +. Float.max 0. (region -. b)
        done;
        Trace.record trace ~cat:"pool" ~t0:t_start ~dur:region
          (label ^ " dispatch");
        Trace.gauge trace "pool.last_idle_seconds" !idle;
        Trace.gauge trace "pool.last_steals"
          (float_of_int (Atomic.get j.steals));
        if region > 0. then
          Trace.gauge trace "pool.last_utilization"
            (!busy_total /. (float_of_int nw *. region))
      end
    in
    if nw = 1 then begin
      (* no worker domains: same claim loop, inline *)
      consume_traced t j ~worker:0 ~nw;
      t.last_steals <- 0;
      finish_trace ();
      Mutex.lock t.m;
      let e = t.exn in
      t.exn <- None;
      Mutex.unlock t.m;
      reraise e
    end
    else begin
      Mutex.lock t.m;
      if t.shut then begin
        Mutex.unlock t.m;
        invalid_arg "Pool.parallel_chunks: pool is shut down"
      end;
      t.job <- Some j;
      t.exn <- None;
      t.running <- nw - 1;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      consume_traced t j ~worker:0 ~nw;
      Mutex.lock t.m;
      while t.running > 0 do
        Condition.wait t.idle t.m
      done;
      t.job <- None;
      let e = t.exn in
      t.exn <- None;
      Mutex.unlock t.m;
      t.last_steals <- Atomic.get j.steals;
      finish_trace ();
      reraise e
    end
  end

(* ------------------------------------------------------------------ *)
(* Shared pools: with_pool reuses one long-lived domain set per size    *)
(* ------------------------------------------------------------------ *)

(* Spawning domains costs a stop-the-world per spawn and join; a flow
   dispatches through the pool many times, so [with_pool] leases
   process-global pools instead of respawning.  The registry keeps a
   small list of pools per effective size: a long-lived server handling
   overlapping requests with the same [jobs] leases one pool each
   instead of paying a full spawn/join cycle per request (the old
   single-slot registry did exactly that whenever its one pool was
   busy).  Beyond [registry_cap] concurrent leases of one size, extra
   pools are private to the call and shut down on release, bounding the
   number of resident domains.  Pools created directly with [create] are
   never registered.

   Lock discipline: [registry_m] only ever protects the table and the
   [leased] flags — never held across [create] (a domain spawn is a
   stop-the-world) or [f] — so concurrent [with_pool] calls from
   different domains, with equal or different sizes, cannot deadlock. *)
let registry : (int, t list) Hashtbl.t = Hashtbl.create 7
let registry_cap = 4
let registry_m = Mutex.create ()
let at_exit_installed = ref false

let release p =
  Mutex.lock registry_m;
  p.leased <- false;
  Mutex.unlock registry_m

let with_pool ?(oversubscribe = false) ~jobs f =
  let njobs = effective ~oversubscribe jobs in
  if njobs = 1 || oversubscribe then begin
    let t = create ~oversubscribe ~jobs:njobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
  end
  else begin
    Mutex.lock registry_m;
    if not !at_exit_installed then begin
      at_exit_installed := true;
      Stdlib.at_exit (fun () ->
          Mutex.lock registry_m;
          let ps =
            Hashtbl.fold (fun _ ps acc -> ps @ acc) registry []
          in
          Hashtbl.reset registry;
          Mutex.unlock registry_m;
          List.iter shutdown ps)
    end;
    let pools =
      Option.value ~default:[] (Hashtbl.find_opt registry njobs)
    in
    let reused =
      match List.find_opt (fun p -> not p.leased) pools with
      | Some p ->
        p.leased <- true;
        Some p
      | None -> None
    in
    Mutex.unlock registry_m;
    match reused with
    | Some p -> Fun.protect ~finally:(fun () -> release p) (fun () -> f p)
    | None ->
      let p = create ~jobs:njobs () in
      p.leased <- true;
      Mutex.lock registry_m;
      let pools =
        Option.value ~default:[] (Hashtbl.find_opt registry njobs)
      in
      (* two racers may both register here; the cap stays approximate,
         which only ever costs an extra resident pool, never a leak *)
      let keep = List.length pools < registry_cap in
      if keep then Hashtbl.replace registry njobs (p :: pools);
      Mutex.unlock registry_m;
      Fun.protect
        ~finally:(fun () -> if keep then release p else shutdown p)
        (fun () -> f p)
  end
