module Trace = Olfu_obs.Trace

let clamp_jobs j = max 1 (min 64 j)

let default_jobs () =
  match Sys.getenv_opt "OLFU_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j -> clamp_jobs j
    | None -> 1)

type job = {
  f : worker:int -> lo:int -> hi:int -> unit;
  n : int;
  chunk : int;
  cursor : int Atomic.t;
  abort : bool Atomic.t;
  trace : Trace.sink;
  label : string;
  busy : float array;  (* per-worker busy seconds, written once per job *)
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* workers: a new generation is available *)
  idle : Condition.t;  (* caller: all workers finished the generation *)
  mutable job : job option;
  mutable generation : int;
  mutable running : int;
  mutable stop : bool;
  mutable exn : (exn * Printexc.raw_backtrace) option;
  mutable shut : bool;
  mutable domains : unit Domain.t array;
  njobs : int;
}

let jobs t = t.njobs

let record t e bt =
  Mutex.lock t.m;
  if t.exn = None then t.exn <- Some (e, bt);
  Mutex.unlock t.m

(* Pull contiguous chunks off the job's cursor until it runs dry (or a
   sibling worker failed). *)
let consume t j ~worker =
  let rec loop () =
    let lo = Atomic.fetch_and_add j.cursor j.chunk in
    if lo < j.n && not (Atomic.get j.abort) then begin
      (try j.f ~worker ~lo ~hi:(min j.n (lo + j.chunk))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Atomic.set j.abort true;
         record t e bt);
      loop ()
    end
  in
  loop ()

(* Busy time is scheduling-dependent, so it goes in spans (one "worker"
   span per worker per dispatch), never in counters. *)
let consume_traced t j ~worker =
  if not (Trace.enabled j.trace) then consume t j ~worker
  else begin
    let t0 = Trace.now j.trace in
    consume t j ~worker;
    let dur = Trace.now j.trace -. t0 in
    j.busy.(worker) <- dur;
    Trace.record j.trace ~cat:"worker" ~tid:worker ~t0 ~dur j.label
  end

let worker_loop t ~worker =
  let rec loop last_gen =
    Mutex.lock t.m;
    while (not t.stop) && t.generation = last_gen do
      Condition.wait t.work t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      let gen = t.generation in
      let j = Option.get t.job in
      Mutex.unlock t.m;
      consume_traced t j ~worker;
      Mutex.lock t.m;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.m;
      loop gen
    end
  in
  loop 0

let create ~jobs =
  let njobs = clamp_jobs jobs in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      generation = 0;
      running = 0;
      stop = false;
      exn = None;
      shut = false;
      domains = [||];
      njobs;
    }
  in
  t.domains <-
    Array.init (njobs - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop t ~worker:(k + 1)));
  t

let shutdown t =
  Mutex.lock t.m;
  if t.shut then Mutex.unlock t.m
  else begin
    t.shut <- true;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains
  end

let reraise = function
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_chunks t ~n ?chunk ?(trace = Trace.null) ?(label = "pool") f =
  if n > 0 then begin
    (* The default chunk must not depend on [t.njobs]: the number of
       chunks (hence the "pool.chunks" counter) is identical for any
       [jobs] value. *)
    let chunk =
      match chunk with Some c -> max 1 c | None -> max 1 ((n + 63) / 64)
    in
    let f =
      if Trace.enabled trace then (fun ~worker ~lo ~hi ->
        Trace.add trace ~worker "pool.chunks" 1;
        f ~worker ~lo ~hi)
      else f
    in
    let j =
      {
        f;
        n;
        chunk;
        cursor = Atomic.make 0;
        abort = Atomic.make false;
        trace;
        label;
        busy = Array.make t.njobs 0.;
      }
    in
    Trace.add trace "pool.dispatches" 1;
    Trace.add trace "pool.items" n;
    let t_start = if Trace.enabled trace then Trace.now trace else 0. in
    let finish_trace () =
      if Trace.enabled trace then begin
        let region = Trace.now trace -. t_start in
        let idle =
          Array.fold_left
            (fun acc b -> acc +. Float.max 0. (region -. b))
            0. j.busy
        in
        Trace.record trace ~cat:"pool" ~t0:t_start ~dur:region
          (label ^ " dispatch");
        Trace.gauge trace "pool.last_idle_seconds" idle
      end
    in
    if t.njobs = 1 then begin
      (* No worker domains: consume inline through the same cursor so
         chunking (and the chunk counters) match the parallel path. *)
      consume_traced t j ~worker:0;
      finish_trace ();
      Mutex.lock t.m;
      let e = t.exn in
      t.exn <- None;
      Mutex.unlock t.m;
      reraise e
    end
    else begin
      Mutex.lock t.m;
      if t.shut then begin
        Mutex.unlock t.m;
        invalid_arg "Pool.parallel_chunks: pool is shut down"
      end;
      t.job <- Some j;
      t.exn <- None;
      t.running <- t.njobs - 1;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      consume_traced t j ~worker:0;
      Mutex.lock t.m;
      while t.running > 0 do
        Condition.wait t.idle t.m
      done;
      t.job <- None;
      let e = t.exn in
      t.exn <- None;
      Mutex.unlock t.m;
      finish_trace ();
      reraise e
    end
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
