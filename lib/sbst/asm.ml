open Olfu_soc

type item =
  | I of Isa.instr
  | L of string
  | Beqz of Isa.reg * string
  | Bnez of Isa.reg * string

let assemble ?(origin = 0) items =
  ignore origin;
  (* pass 1: label addresses *)
  let labels = Hashtbl.create 17 in
  let pc = ref 0 in
  List.iter
    (fun item ->
      match item with
      | L name ->
        if Hashtbl.mem labels name then
          invalid_arg (Printf.sprintf "Asm: duplicate label %s" name);
        Hashtbl.add labels name !pc
      | I _ | Beqz _ | Bnez _ -> incr pc)
    items;
  let target name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "Asm: unknown label %s" name)
  in
  (* pass 2 *)
  let words = ref [] in
  let pc = ref 0 in
  let offset name =
    let off = target name - (!pc + 1) in
    if off < -128 || off > 127 then
      invalid_arg (Printf.sprintf "Asm: branch to %s out of range" name);
    off land 0xFF
  in
  List.iter
    (fun item ->
      match item with
      | L _ -> ()
      | I i ->
        words := Isa.encode i :: !words;
        incr pc
      | Beqz (r, name) ->
        words := Isa.encode (Isa.Beqz (r, offset name)) :: !words;
        incr pc
      | Bnez (r, name) ->
        words := Isa.encode (Isa.Bnez (r, offset name)) :: !words;
        incr pc)
    items;
  Array.of_list (List.rev !words)

let load_const rd value =
  if value < 0 then invalid_arg "Asm.load_const: negative";
  (* collect nibbles, most significant first, dropping leading zeros *)
  let rec nibbles v acc = if v = 0 then acc else nibbles (v lsr 4) ((v land 0xF) :: acc) in
  match nibbles value [] with
  | [] -> [ I (Isa.Li (rd, 0)) ]
  | top :: rest ->
    I (Isa.Li (rd, top))
    :: List.concat_map
         (fun nib ->
           I (Isa.Sll (rd, 4))
           :: (if nib = 0 then [] else [ I (Isa.Addi (rd, nib)) ]))
         rest

let load_const_fixed rd value ~nibbles =
  if nibbles < 1 then invalid_arg "Asm.load_const_fixed: nibbles >= 1";
  if value lsr (4 * nibbles) <> 0 then
    invalid_arg "Asm.load_const_fixed: value does not fit";
  let nib k = (value lsr (4 * k)) land 0xF in
  I (Isa.Li (rd, nib (nibbles - 1)))
  :: List.concat
       (List.init (nibbles - 1) (fun j ->
            let k = nibbles - 2 - j in
            [ I (Isa.Sll (rd, 4)); I (Isa.Addi (rd, nib k)) ]))

let label_addresses items =
  let pc = ref 0 in
  List.filter_map
    (fun item ->
      match item with
      | L name -> Some (name, !pc)
      | I _ | Beqz _ | Bnez _ ->
        incr pc;
        None)
    items

let disassemble words = Array.to_list (Array.map Isa.decode words)

(* ---- textual assembly ---- *)

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s =
  let cut c s =
    match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  String.trim (cut '#' (cut ';' s))

let split_operands s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_reg line s =
  let s = String.lowercase_ascii s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r <= 15 -> r
    | _ -> fail line "bad register %S" s
  else fail line "expected register, got %S" s

let parse_mem line s =
  let n = String.length s in
  if n >= 4 && s.[0] = '[' && s.[n - 1] = ']' then
    parse_reg line (String.trim (String.sub s 1 (n - 2)))
  else fail line "expected [rN], got %S" s

let parse_imm line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "bad immediate %S" s

let parse_line lineno text =
  let text = strip_comment text in
  if text = "" then []
  else if String.length text > 1 && text.[String.length text - 1] = ':' then
    [ L (String.trim (String.sub text 0 (String.length text - 1))) ]
  else begin
    let mnemonic, rest =
      match String.index_opt text ' ' with
      | None -> (text, "")
      | Some i ->
        ( String.sub text 0 i,
          String.sub text (i + 1) (String.length text - i - 1) )
    in
    let ops = split_operands rest in
    let reg k = parse_reg lineno (List.nth ops k) in
    let imm k = parse_imm lineno (List.nth ops k) in
    let mem k = parse_mem lineno (List.nth ops k) in
    let need n =
      if List.length ops <> n then
        fail lineno "%s expects %d operands, got %d" mnemonic n
          (List.length ops)
    in
    let rr mk =
      need 2;
      [ I (mk (reg 0) (reg 1)) ]
    in
    let ri mk =
      need 2;
      [ I (mk (reg 0) (imm 1)) ]
    in
    match String.lowercase_ascii mnemonic with
    | "nop" ->
      need 0;
      [ I Isa.Nop ]
    | "halt" ->
      need 0;
      [ I Isa.Halt ]
    | "li" -> ri (fun r v -> Isa.Li (r, v))
    | "addi" -> ri (fun r v -> Isa.Addi (r, v land 0xFF))
    | "add" -> rr (fun a b -> Isa.Add (a, b))
    | "sub" -> rr (fun a b -> Isa.Sub (a, b))
    | "and" -> rr (fun a b -> Isa.And_ (a, b))
    | "or" -> rr (fun a b -> Isa.Or_ (a, b))
    | "xor" -> rr (fun a b -> Isa.Xor_ (a, b))
    | "mul" -> rr (fun a b -> Isa.Mul (a, b))
    | "mulh" -> rr (fun a b -> Isa.Mulh (a, b))
    | "div" -> rr (fun a b -> Isa.Div (a, b))
    | "rem" -> rr (fun a b -> Isa.Rem (a, b))
    | "sll" -> ri (fun r v -> Isa.Sll (r, v))
    | "srl" -> ri (fun r v -> Isa.Srl (r, v))
    | "lw" ->
      need 2;
      [ I (Isa.Lw (reg 0, mem 1)) ]
    | "sw" ->
      need 2;
      [ I (Isa.Sw (reg 0, mem 1)) ]
    | "jr" ->
      need 1;
      [ I (Isa.Jr (reg 0)) ]
    | "beqz" ->
      need 2;
      [ Beqz (reg 0, List.nth ops 1) ]
    | "bnez" ->
      need 2;
      [ Bnez (reg 0, List.nth ops 1) ]
    | m -> fail lineno "unknown mnemonic %S" m
  end

let parse src =
  String.split_on_char '\n' src
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.concat

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let pp_items ppf items =
  List.iter
    (fun item ->
      match item with
      | L name -> Format.fprintf ppf "%s:@." name
      | I i -> Format.fprintf ppf "    %a@." Isa.pp i
      | Beqz (r, l) -> Format.fprintf ppf "    beqz r%d, %s@." r l
      | Bnez (r, l) -> Format.fprintf ppf "    bnez r%d, %s@." r l)
    items
