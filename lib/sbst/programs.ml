open Olfu_soc
open Asm

type t = {
  pname : string;
  items : Asm.item list;
}

(* Conventions: r15 = signature pointer into RAM, r14 = scratch. *)

let ram_base cfg = cfg.Soc.ram.Olfu_manip.Memmap.lo
let nibbles cfg = cfg.Soc.xlen / 4

let prologue cfg = load_const_fixed 15 (ram_base cfg) ~nibbles:(nibbles cfg)

let store r = [ I (Isa.Sw (r, 15)); I (Isa.Addi (15, 1)) ]

let epilogue = [ I Isa.Halt ]

let register_march cfg =
  let body =
    List.concat
      (List.init 14 (fun r ->
           (* background pattern, read back through a second register *)
           [ I (Isa.Li (r, (0x55 + (r * 7)) land 0xFF)) ]
           @ store r
           @ [ I (Isa.Li (14, 0xFF)); I (Isa.Xor_ (r, 14)) ]
           @ store r))
  in
  { pname = "register_march"; items = prologue cfg @ body @ epilogue }

let alu_patterns cfg =
  let pair a bv =
    [ I (Isa.Li (1, a)); I (Isa.Li (2, bv)) ]
    @ List.concat_map
        (fun op ->
          [ I (Isa.Li (3, a)); I op ] @ store 3)
        [
          Isa.Add (3, 2); Isa.Sub (3, 2); Isa.And_ (3, 2); Isa.Or_ (3, 2);
          Isa.Xor_ (3, 2); Isa.Addi (3, 0x3C);
        ]
  in
  let body =
    List.concat_map (fun (a, bv) -> pair a bv)
      [ (0xA5, 0x5A); (0xFF, 0x01); (0x00, 0xFF); (0x33, 0xCC) ]
  in
  { pname = "alu_patterns"; items = prologue cfg @ body @ epilogue }

let shifter_walk cfg =
  let xlen = cfg.Soc.xlen in
  let left =
    [ I (Isa.Li (1, 1)) ]
    @ List.concat
        (List.init (xlen / 4) (fun _ ->
             [ I (Isa.Sll (1, 3)); I (Isa.Addi (1, 1)) ] @ store 1))
  in
  let right =
    load_const_fixed 2 ((1 lsl xlen) - 1) ~nibbles:(nibbles cfg)
    @ List.concat
        (List.init (xlen / 4) (fun _ -> I (Isa.Srl (2, 3)) :: store 2))
  in
  { pname = "shifter_walk"; items = prologue cfg @ left @ right @ epilogue }

let branch_exerciser cfg =
  (* Loops execute the same backward branch repeatedly, so the second and
     later iterations take the BTB-hit path; a computed JR exercises the
     register-indirect target.  The JR target is an absolute address
     resolved in a second pass with a fixed-length constant load. *)
  let build jr_target =
    let items =
      prologue cfg
      @ [ I (Isa.Li (1, 5)); I (Isa.Li (3, 0)); L "loop";
          I (Isa.Addi (3, 1)); I (Isa.Addi (1, -1)); Bnez (1, "loop") ]
      @ store 3
      @ [ I (Isa.Li (2, 0)); Beqz (2, "taken"); I (Isa.Li (3, 0x99)); L "taken" ]
      @ store 3
      @ [ I (Isa.Li (2, 1)); Beqz (2, "nottaken"); I (Isa.Addi (3, 2));
          L "nottaken" ]
      @ store 3
      @ load_const_fixed 4 jr_target ~nibbles:(nibbles cfg)
      @ [ I (Isa.Jr 4); I (Isa.Li (3, 0x42)) (* skipped by the jump *) ]
      @ [ L "jrdest" ]
      @ store 3
      @ epilogue
    in
    items
  in
  let probe = build 0 in
  let jrdest = List.assoc "jrdest" (Asm.label_addresses probe) in
  let items = build (cfg.Soc.rom.Olfu_manip.Memmap.lo + jrdest) in
  { pname = "branch_exerciser"; items }

let memory_walk cfg =
  let base = ram_base cfg in
  let span = min 0x80 (cfg.Soc.ram.Olfu_manip.Memmap.hi - base) in
  let probe off pat =
    load_const_fixed 10 (base + off) ~nibbles:(nibbles cfg)
    @ [ I (Isa.Li (11, pat)); I (Isa.Sw (11, 10)); I (Isa.Lw (12, 10)) ]
    @ store 12
  in
  let body =
    List.concat_map
      (fun (off, pat) -> probe off pat)
      [
        (span, 0x11); (span / 2, 0x22); ((span / 2) + 1, 0x44);
        (span - 1, 0x88); (9, 0xEE);
      ]
  in
  { pname = "memory_walk"; items = prologue cfg @ body @ epilogue }

let muldiv_patterns cfg =
  let case a bv =
    [ I (Isa.Li (1, a)); I (Isa.Li (2, bv)) ]
    @ List.concat_map
        (fun mk -> [ I (Isa.Li (3, a)); I (mk 3 2) ] @ store 3)
        [
          (fun rd rs -> Isa.Mul (rd, rs));
          (fun rd rs -> Isa.Mulh (rd, rs));
          (fun rd rs -> Isa.Div (rd, rs));
          (fun rd rs -> Isa.Rem (rd, rs));
        ]
  in
  let wide =
    (* push full-width operands through the multiplier and divider *)
    load_const_fixed 1 ((1 lsl cfg.Soc.xlen) - 1) ~nibbles:(nibbles cfg)
    @ load_const_fixed 2 0xB7 ~nibbles:(nibbles cfg)
    @ [ I (Isa.Li (3, 0xD3)); I (Isa.Mul (3, 1)) ]
    @ store 3
    @ [ I (Isa.Li (3, 0xD3)); I (Isa.Mulh (3, 1)) ]
    @ store 3
    @ [ I (Isa.Li (4, 0)); I (Isa.Add (4, 1)); I (Isa.Div (4, 2)) ]
    @ store 4
    @ [ I (Isa.Li (4, 0)); I (Isa.Add (4, 1)); I (Isa.Rem (4, 2)) ]
    @ store 4
    (* divide by zero exercises the all-ones quotient path *)
    @ [ I (Isa.Li (5, 0x5A)); I (Isa.Li (6, 0)); I (Isa.Div (5, 6)) ]
    @ store 5
  in
  let body =
    List.concat_map
      (fun (a, bv) -> case a bv)
      [ (0xA7, 0x35); (0xFF, 0x03); (0x80, 0x80); (0x31, 0xEE) ]
  in
  { pname = "muldiv_patterns"; items = prologue cfg @ body @ wide @ epilogue }

(* A loop sweeping evolving operands through the multiplier and divider:
   compact code, long execution, wide data coverage. *)
let muldiv_sweep cfg =
  let body =
    [ I (Isa.Li (1, 0x9E)); I (Isa.Li (2, 0x0B)); I (Isa.Li (7, 24));
      L "loop";
      I (Isa.Li (3, 0)); I (Isa.Add (3, 1)); I (Isa.Div (3, 2)) ]
    @ store 3
    @ [ I (Isa.Li (3, 0)); I (Isa.Add (3, 1)); I (Isa.Rem (3, 2)) ]
    @ store 3
    @ [ I (Isa.Li (3, 0)); I (Isa.Add (3, 1)); I (Isa.Mul (3, 1)) ]
    @ store 3
    @ [ I (Isa.Mulh (3, 1)) ]
    @ store 3
    @ [ I (Isa.Sll (1, 1)); I (Isa.Addi (1, 0x4D)); I (Isa.Addi (2, 7));
        I (Isa.Addi (7, -1)); Bnez (7, "loop") ]
  in
  (* keep the signature region clear of the loop's pointer *)
  { pname = "muldiv_sweep"; items = prologue cfg @ body @ epilogue }

let suite cfg =
  [
    register_march cfg; alu_patterns cfg; shifter_walk cfg;
    branch_exerciser cfg; memory_walk cfg; muldiv_patterns cfg;
    muldiv_sweep cfg;
  ]

let assemble t = Asm.assemble t.items
