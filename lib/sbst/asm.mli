open Olfu_soc

(** Two-pass assembler for tcore programs with symbolic branch targets. *)

type item =
  | I of Isa.instr
  | L of string  (** label at the next instruction *)
  | Beqz of Isa.reg * string
  | Bnez of Isa.reg * string

val assemble : ?origin:int -> item list -> int array
(** Encoded instruction words.  [origin] is the word address of the first
    instruction (labels are PC-relative so it only matters for bounds
    checks).  Raises [Invalid_argument] on unknown/duplicate labels or
    branch offsets outside the signed 8-bit range. *)

val load_const : Isa.reg -> int -> item list
(** Instruction sequence building an arbitrary [xlen]-bit constant in a
    register (LI of the top byte, then shift-and-add nibbles). *)

val load_const_fixed : Isa.reg -> int -> nibbles:int -> item list
(** Fixed-length variant ([1 + 2*(nibbles-1)] instructions regardless of
    the value) so surrounding label arithmetic stays stable. *)

val label_addresses : item list -> (string * int) list
(** Word offset of each label from the start of the program. *)

exception Parse_error of { line : int; message : string }

val parse : string -> item list
(** Textual assembly, one statement per line: comments with [;] or [#],
    labels ending in [:], mnemonics [nop li addi add sub and or xor mul
    mulh div rem sll srl lw sw beqz bnez jr halt].  Register operands are
    [r0]..[r15]; memory operands are [\[rN\]]; branch targets are label
    names; immediates accept decimal and hex. *)

val parse_file : string -> item list

val pp_items : Format.formatter -> item list -> unit
(** Round-trip printer for {!parse}. *)

val disassemble : int array -> Isa.instr list
