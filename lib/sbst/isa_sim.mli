open Olfu_soc

(** Behavioural (golden) simulator of the tcore ISA, used to validate the
    gate-level core, to precompute SBST expected signatures, and as the
    concrete semantics against which {!Olfu_absint} is checked. *)

type t

(** Per-step trace events, in execution order.  [Fetch] fires before the
    instruction mutates any state, so a hook sees the pre-state through
    {!reg}/{!pc}/{!mem}; [Reg_write]/[Mem_read]/[Mem_write] fire as the
    instruction performs them, values already masked to [xlen]. *)
type event =
  | Fetch of { pc : int; instr : Isa.instr }
  | Reg_write of { reg : int; value : int }
  | Mem_read of { addr : int; value : int }
  | Mem_write of { addr : int; value : int }

type outcome = { steps : int; halted : bool }

val create : xlen:int -> t
val load : t -> addr:int -> int array -> unit
val reg : t -> int -> int
val pc : t -> int
val halted : t -> bool
val mem : t -> int -> int
(** Unwritten memory reads 0. *)

val on_event : t -> (event -> unit) -> unit
(** Register a trace hook; hooks run in registration order on every
    event of every subsequent {!step}. *)

val step : t -> unit
(** Execute one instruction (no-op once halted). *)

val run : ?max_steps:int -> t -> outcome
(** Steps until [halted] or the bound; [halted] distinguishes a clean
    [Halt] from hitting the step bound. *)

val writes : t -> (int * int) list
(** Memory writes in program order (addr, value). *)

val divmod : w:int -> int -> int -> int * int
(** [divmod ~w a b] is the (quotient, remainder) of the gate-level
    restoring divider on [w]-bit operands, bit-exact including its
    divide-by-zero truncation.  Exposed for the abstract interpreter. *)
