
(** Behavioural (golden) simulator of the tcore ISA, used to validate the
    gate-level core and to precompute SBST expected signatures. *)

type t

val create : xlen:int -> t
val load : t -> addr:int -> int array -> unit
val reg : t -> int -> int
val pc : t -> int
val halted : t -> bool
val mem : t -> int -> int
(** Unwritten memory reads 0. *)

val step : t -> unit
(** Execute one instruction (no-op once halted). *)

val run : ?max_steps:int -> t -> int
(** Steps until [halted] or the bound; returns steps executed. *)

val writes : t -> (int * int) list
(** Memory writes in program order (addr, value). *)
