open Olfu_logic
open Olfu_netlist
open Olfu_sim
open Olfu_fsim
open Olfu_soc

type run = {
  stimulus : Seq_fsim.stimulus;
  cycles : int;
  writes : (int * int) list;
  halted : bool;
}

let bus_nets nl prefix width =
  Array.init width (fun i -> Netlist.find_exn nl (Printf.sprintf "%s[%d]" prefix i))

let observed_names = [ "bus_wr"; "halted"; "perf_tick" ]

let prefixed p s = String.length s > String.length p && String.sub s 0 (String.length p) = p

let observed_outputs nl o =
  match Netlist.name nl o with
  | None -> false
  | Some s ->
    List.mem s observed_names
    || prefixed "bus_addr[" s
    || prefixed "bus_wdata[" s
    || prefixed "misr_out[" s

let read_bus sim nets =
  let acc = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun i n ->
      match Logic4.to_bool (Seq_sim.value sim n) with
      | Some true -> acc := !acc lor (1 lsl i)
      | Some false -> ()
      | None -> ok := false)
    nets;
  if !ok then Some !acc else None

let record ?(max_cycles = 20_000) ?(data = []) cfg nl ~program =
  let xlen = cfg.Soc.xlen in
  let rstn = Netlist.find_exn nl "rstn" in
  let rdata = bus_nets nl "bus_rdata" xlen in
  let addr = bus_nets nl "bus_addr" xlen in
  let wdata = bus_nets nl "bus_wdata" xlen in
  let rd_en = Netlist.find_exn nl "bus_rd" in
  let wr_en = Netlist.find_exn nl "bus_wr" in
  let halted = Netlist.find_exn nl "halted" in
  let scan_en = Netlist.find nl "scan_en" in
  let dbg_inputs =
    Soc.debug_control_inputs cfg
    |> List.filter_map (fun s -> Netlist.find nl s)
  in
  let scan_ins =
    Netlist.nodes_with_role nl Netlist.Scan_in |> Array.to_list
  in
  let memory = Hashtbl.create 1024 in
  Array.iteri
    (fun i w -> Hashtbl.replace memory (cfg.Soc.rom.Olfu_manip.Memmap.lo + i) w)
    program;
  List.iter (fun (a, v) -> Hashtbl.replace memory a v) data;
  let sim = Seq_sim.create ~init:Logic4.X nl in
  (* quiescent mission values on test/debug inputs *)
  let base_assign reset_active rdata_val =
    let acc = ref [ (rstn, if reset_active then Logic4.L0 else Logic4.L1) ] in
    (match scan_en with
    | Some se -> acc := (se, Logic4.L0) :: !acc
    | None -> ());
    List.iter (fun i -> acc := (i, Logic4.L0) :: !acc) dbg_inputs;
    List.iter (fun i -> acc := (i, Logic4.L0) :: !acc) scan_ins;
    Array.iteri
      (fun i n ->
        acc := (n, Logic4.of_bool ((rdata_val lsr i) land 1 = 1)) :: !acc)
      rdata;
    !acc
  in
  let steps = ref [] in
  let writes = ref [] in
  let finished = ref false in
  let cycle = ref 0 in
  (* one reset cycle *)
  let apply assigns =
    List.iter (fun (i, v) -> Seq_sim.set_input sim i v) assigns
  in
  let reset_assigns = base_assign true 0 in
  apply reset_assigns;
  Seq_sim.step sim;
  steps := { Seq_fsim.assign = reset_assigns; strobe = false } :: !steps;
  incr cycle;
  while (not !finished) && !cycle < max_cycles do
    (* settle with last cycle's rdata to observe this cycle's request *)
    Seq_sim.settle sim;
    let a = read_bus sim addr in
    let reading = Logic4.equal (Seq_sim.value sim rd_en) Logic4.L1 in
    let writing = Logic4.equal (Seq_sim.value sim wr_en) Logic4.L1 in
    let response =
      if reading then
        match a with
        | Some a -> Option.value ~default:0 (Hashtbl.find_opt memory a)
        | None -> 0
      else 0
    in
    if writing then begin
      match a, read_bus sim wdata with
      | Some a, Some v ->
        Hashtbl.replace memory a v;
        writes := (a, v) :: !writes
      | _ -> ()
    end;
    let assigns = base_assign false response in
    apply assigns;
    Seq_sim.step sim;
    steps := { Seq_fsim.assign = assigns; strobe = writing } :: !steps;
    incr cycle;
    if Logic4.equal (Seq_sim.value sim halted) Logic4.L1 then finished := true
  done;
  (* one final strobe: the halted flag and the closing MISR signature *)
  steps := { Seq_fsim.assign = base_assign false 0; strobe = true } :: !steps;
  incr cycle;
  {
    stimulus = Array.of_list (List.rev !steps);
    cycles = !cycle;
    writes = List.rev !writes;
    halted = !finished;
  }

let replay_matches cfg nl run =
  let xlen = cfg.Soc.xlen in
  let addr = bus_nets nl "bus_addr" xlen in
  let wdata = bus_nets nl "bus_wdata" xlen in
  let wr_en = Netlist.find_exn nl "bus_wr" in
  let sim = Seq_sim.create ~init:Logic4.X nl in
  let writes = ref [] in
  Array.iter
    (fun step ->
      List.iter (fun (i, v) -> Seq_sim.set_input sim i v) step.Seq_fsim.assign;
      Seq_sim.settle sim;
      if Logic4.equal (Seq_sim.value sim wr_en) Logic4.L1 then begin
        match read_bus sim addr, read_bus sim wdata with
        | Some a, Some v -> writes := (a, v) :: !writes
        | _ -> ()
      end;
      Seq_sim.step sim)
    run.stimulus;
  List.rev !writes = run.writes
