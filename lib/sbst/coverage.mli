open Olfu_fault
open Olfu_soc

(** SBST grading: run the self-test suite against the fault universe with
    the sequential fault simulator, before/after untestable-fault pruning —
    the experiment behind the paper's "raises the fault coverage by ~13%"
    claim. *)

type program_result = {
  pname : string;
  cycles : int;
  newly_detected : int;
}

type summary = {
  programs : program_result list;
  total_faults : int;
  detected : int;
  raw_coverage : float;  (** DT / all faults *)
  pruned_coverage : float;  (** DT / (all − undetectable) *)
  undetectable : int;
}

val grade :
  ?max_cycles:int ->
  ?jobs:int ->
  ?trace:Olfu_obs.Trace.sink ->
  Soc.config ->
  Olfu_netlist.Netlist.t ->
  Flist.t ->
  Programs.t list ->
  summary
(** Runs every program (each from reset), marking detections in the fault
    list.  Coverage figures are computed from the final list state, so
    pre-classifying OLFU faults before calling this yields the
    after-pruning figure.  [jobs] is passed to {!Olfu_fsim.Seq_fsim.run}
    (identical results for any value).  A recording [trace] attributes
    each program's good-machine recording to a ["testbench"] engine span
    and its grading to the simulator's ["fsim"] span. *)

val pp_summary : Format.formatter -> summary -> unit
