open Olfu_soc

(** SBST routine library for tcore — the "mature self-test suite" role of
    Sec. 4.  Every routine ends by storing result signatures to RAM and
    halting, because memory content is the only on-line observation
    point. *)

type t = {
  pname : string;
  items : Asm.item list;
}

val register_march : Soc.config -> t
(** March-style walk of the register file with inverted data backgrounds. *)

val alu_patterns : Soc.config -> t
(** ALU ops over checkerboard/walking operands, accumulated signatures. *)

val shifter_walk : Soc.config -> t
(** Walking-1/walking-0 through both shift directions. *)

val branch_exerciser : Soc.config -> t
(** Taken/not-taken branches and loops, revisiting branches so the BTB
    hit path is used. *)

val memory_walk : Soc.config -> t
(** Load/store address toggling over the RAM window. *)

val muldiv_patterns : Soc.config -> t
(** Multiplier/divider patterns, including full-width operands and a
    divide-by-zero. *)

val muldiv_sweep : Soc.config -> t
(** Looped operand sweep through the multiplier and divider. *)

val suite : Soc.config -> t list
val assemble : t -> int array
