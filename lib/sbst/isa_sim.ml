open Olfu_soc

type event =
  | Fetch of { pc : int; instr : Isa.instr }
  | Reg_write of { reg : int; value : int }
  | Mem_read of { addr : int; value : int }
  | Mem_write of { addr : int; value : int }

type outcome = { steps : int; halted : bool }

type t = {
  xlen : int;
  regs : int array;
  memory : (int, int) Hashtbl.t;
  mutable pcv : int;
  mutable halt : bool;
  mutable write_log : (int * int) list;
  mutable hooks : (event -> unit) list;  (* registration order *)
}

let create ~xlen =
  if xlen < 16 then invalid_arg "Isa_sim.create: xlen >= 16";
  {
    xlen;
    regs = Array.make 16 0;
    memory = Hashtbl.create 1024;
    pcv = 0;
    halt = false;
    write_log = [];
    hooks = [];
  }

let mask t v = v land ((1 lsl t.xlen) - 1)

let load t ~addr words =
  Array.iteri (fun i w -> Hashtbl.replace t.memory (addr + i) w) words

let reg t r = t.regs.(r)
let pc t = t.pcv
let halted t = t.halt
let mem t a = Option.value ~default:0 (Hashtbl.find_opt t.memory a)

let on_event t f = t.hooks <- t.hooks @ [ f ]
let emit t e = List.iter (fun f -> f e) t.hooks

let sext8 v = if v land 0x80 <> 0 then v - 256 else v

(* Bit-exact mirror of the gate-level restoring divider, including its
   truncate-to-w+1-bits behaviour when the divisor is zero. *)
let divmod ~w dividend divisor =
  let cap = (1 lsl (w + 1)) - 1 in
  let rem = ref 0 and q = ref 0 in
  for i = w - 1 downto 0 do
    rem := ((!rem lsl 1) lor ((dividend lsr i) land 1)) land cap;
    if !rem >= divisor then begin
      q := !q lor (1 lsl i);
      rem := !rem - divisor
    end
  done;
  (!q, !rem land ((1 lsl w) - 1))

let step t =
  if not t.halt then begin
    let w = mem t t.pcv in
    let i = Isa.decode w in
    emit t (Fetch { pc = t.pcv; instr = i });
    let next = mask t (t.pcv + 1) in
    let wr rd v =
      t.regs.(rd) <- mask t v;
      emit t (Reg_write { reg = rd; value = t.regs.(rd) })
    in
    (match i with
    | Isa.Nop -> t.pcv <- next
    | Isa.Mul (rd, rs) ->
      wr rd (t.regs.(rd) * t.regs.(rs));
      t.pcv <- next
    | Isa.Div (rd, rs) ->
      let q, _ = divmod ~w:t.xlen t.regs.(rd) t.regs.(rs) in
      wr rd q;
      t.pcv <- next
    | Isa.Rem (rd, rs) ->
      let _, r = divmod ~w:t.xlen t.regs.(rd) t.regs.(rs) in
      wr rd r;
      t.pcv <- next
    | Isa.Mulh (rd, rs) ->
      (* exact high half: the operands are < 2^32, so Int64 is exact *)
      let p = Int64.mul (Int64.of_int t.regs.(rd)) (Int64.of_int t.regs.(rs)) in
      wr rd (Int64.to_int (Int64.shift_right_logical p t.xlen));
      t.pcv <- next
    | Isa.Li (rd, v) ->
      wr rd (v land 0xFF);
      t.pcv <- next
    | Isa.Addi (rd, v) ->
      wr rd (t.regs.(rd) + sext8 v);
      t.pcv <- next
    | Isa.Add (rd, rs) ->
      wr rd (t.regs.(rd) + t.regs.(rs));
      t.pcv <- next
    | Isa.Sub (rd, rs) ->
      wr rd (t.regs.(rd) - t.regs.(rs));
      t.pcv <- next
    | Isa.And_ (rd, rs) ->
      wr rd (t.regs.(rd) land t.regs.(rs));
      t.pcv <- next
    | Isa.Or_ (rd, rs) ->
      wr rd (t.regs.(rd) lor t.regs.(rs));
      t.pcv <- next
    | Isa.Xor_ (rd, rs) ->
      wr rd (t.regs.(rd) lxor t.regs.(rs));
      t.pcv <- next
    | Isa.Sll (rd, sh) ->
      wr rd (t.regs.(rd) lsl sh);
      t.pcv <- next
    | Isa.Srl (rd, sh) ->
      wr rd (mask t t.regs.(rd) lsr sh);
      t.pcv <- next
    | Isa.Lw (rd, rs) ->
      let a = t.regs.(rs) in
      let v = mem t a in
      emit t (Mem_read { addr = a; value = v });
      wr rd v;
      t.pcv <- next
    | Isa.Sw (rd, rs) ->
      let a = t.regs.(rs) and v = t.regs.(rd) in
      Hashtbl.replace t.memory a v;
      t.write_log <- (a, v) :: t.write_log;
      emit t (Mem_write { addr = a; value = v });
      t.pcv <- next
    | Isa.Beqz (rs, off) ->
      t.pcv <- (if t.regs.(rs) = 0 then mask t (next + sext8 off) else next)
    | Isa.Bnez (rs, off) ->
      t.pcv <- (if t.regs.(rs) <> 0 then mask t (next + sext8 off) else next)
    | Isa.Jr rs -> t.pcv <- t.regs.(rs)
    | Isa.Halt -> t.halt <- true)
  end

let run ?(max_steps = 100_000) t =
  let steps = ref 0 in
  while (not t.halt) && !steps < max_steps do
    step t;
    incr steps
  done;
  { steps = !steps; halted = t.halt }

let writes t = List.rev t.write_log
