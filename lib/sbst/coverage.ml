open Olfu_fault
open Olfu_fsim

type program_result = {
  pname : string;
  cycles : int;
  newly_detected : int;
}

type summary = {
  programs : program_result list;
  total_faults : int;
  detected : int;
  raw_coverage : float;
  pruned_coverage : float;
  undetectable : int;
}

let grade ?max_cycles ?jobs ?(trace = Olfu_obs.Trace.null) cfg nl fl progs =
  let observe = Testbench.observed_outputs nl in
  let results =
    List.map
      (fun p ->
        let program = Programs.assemble p in
        let run =
          Olfu_obs.Trace.span trace ~cat:"engine" "testbench" (fun () ->
              Testbench.record ?max_cycles cfg nl ~program)
        in
        let r =
          Seq_fsim.run ~init:Olfu_logic.Logic4.X ~observe ?jobs ~trace nl fl
            run.Testbench.stimulus
        in
        {
          pname = p.Programs.pname;
          cycles = run.Testbench.cycles;
          newly_detected = r.Seq_fsim.detected;
        })
      progs
  in
  {
    programs = results;
    total_faults = Flist.size fl;
    detected = Flist.count_status fl Status.Detected;
    raw_coverage = Flist.fault_coverage fl;
    pruned_coverage = Flist.testable_coverage fl;
    undetectable = Flist.count fl ~f:Status.is_undetectable;
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-20s %6d cycles  +%d detected@," p.pname p.cycles
        p.newly_detected)
    s.programs;
  Format.fprintf ppf
    "faults: %d  detected: %d  undetectable: %d@,FC(raw) = %.2f%%  \
     FC(pruned) = %.2f%%@]"
    s.total_faults s.detected s.undetectable
    (100. *. s.raw_coverage)
    (100. *. s.pruned_coverage)
