open Olfu_netlist
open Olfu_fsim
open Olfu_soc

(** Gate-level testbench: runs a program on the good SoC with a
    behavioural memory model, and records the bus dialogue as a replayable
    {!Seq_fsim.stimulus}.

    Observation follows the paper's on-line constraint: a cycle is strobed
    only when the {e good} machine performs a bus write, so a fault is
    detected exactly when it corrupts the memory-content trace (address,
    data or write strobe at those cycles). *)

type run = {
  stimulus : Seq_fsim.stimulus;
  cycles : int;
  writes : (int * int) list;  (** bus writes of the good machine *)
  halted : bool;  (** the good machine reached HALT before the bound *)
}

val observed_outputs : Netlist.t -> int -> bool
(** The on-line observation set: bus address, write data, write strobe,
    the halted flag and the functional signature pins (MISR, performance
    tick) — not the scan or debug outputs. *)

val record :
  ?max_cycles:int ->
  ?data:(int * int) list ->
  Soc.config ->
  Netlist.t ->
  program:int array ->
  run
(** Loads [program] at the ROM base and [data] words into memory, applies
    one reset cycle, then runs until HALT or [max_cycles] (default
    20,000). *)

val replay_matches : Soc.config -> Netlist.t -> run -> bool
(** Sanity check: replaying the stimulus on the fault-free netlist
    reproduces the recorded writes (used by tests). *)
