(** Fault classification, mirroring the classes a commercial structural
    engine reports (the paper reads Tetramax's "untestable due to tied
    value — UT" class, among others). *)

type undetectable =
  | Unused  (** UU: pruned by a structural rule (e.g. scan-chain rule) *)
  | Tied  (** UT: excitation impossible — the net is tied to the stuck value *)
  | Blocked  (** UB: no sensitizable path to any observation point *)
  | Conflict
      (** UC: the static implication engine proved that excitation and
          propagation demand contradictory assignments (FIRE-style
          conflict untestability — no search involved) *)
  | Redundant  (** UR: proven untestable by exhaustive ATPG search *)
  | Software
      (** US: safe relative to the mission software — the activation
          condition contradicts software-proven constants (constant
          address/data bits, never-written memory), so no mission
          execution can excite and observe the fault.  Unlike the other
          classes the proof is conditional on the analysed program set. *)
  | Invariant
      (** UI: safe relative to the machine's proved state invariants —
          the analysis of the mission-held machine (scan interface kept
          functional), strengthened with induction-proved reachability
          invariants ({!Olfu_invar}), classifies the fault untestable.
          The proof is conditional on the mission hold and on the
          invariant certificates, so it is reported separately from the
          unconditional structural classes. *)

type t =
  | Not_analyzed  (** NA *)
  | Detected  (** DT *)
  | Possibly_detected  (** PT: good/faulty differ only through an X *)
  | Undetectable of undetectable  (** UD: no test exists *)
  | Atpg_untestable  (** AU: search aborted (backtrack limit) *)
  | Not_detected  (** ND: analyzed, no pattern detected it *)

val equal : t -> t -> bool
val is_undetectable : t -> bool
val code : t -> string
(** Two-letter class code ("DT", "UT", ...). *)

val pp : Format.formatter -> t -> unit
