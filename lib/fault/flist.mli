open Olfu_netlist

(** Fault-list container: the working set of faults with their
    classification, supporting the pruning and coverage arithmetic of the
    paper's flow.

    {b Status-update discipline (parallel engines).}  Statuses live in one
    plain array; there is no internal locking.  The engines that update a
    list from several domains ({!Olfu_fsim.Comb_fsim.run},
    {!Olfu_fsim.Seq_fsim.run}, [Olfu_atpg.Untestable.classify]) must
    follow — and do follow — this discipline:
    {ul
    {- during a parallel section, each fault index is {e owned} by exactly
       one worker; only the owner calls {!set_status} on it;}
    {- workers read only statuses of indices they own (plus any value
       written before the section started);}
    {- aggregate figures are accumulated per worker and summed after the
       section's barrier.}}
    Under this discipline results are bit-identical to a sequential run
    regardless of worker count or scheduling.  Readers from other domains
    must not call any accessor while a parallel section is running. *)

type t

val create : Netlist.t -> Fault.t array -> t
(** Duplicate faults are rejected ([Invalid_argument]). *)

val full : ?include_ties:bool -> Netlist.t -> t
(** The complete stuck-at universe of the netlist, all [Not_analyzed]. *)

val netlist : t -> Netlist.t
val size : t -> int
val fault : t -> int -> Fault.t
val status : t -> int -> Status.t
val set_status : t -> int -> Status.t -> unit

val classify_if :
  t -> Status.t -> keep:(Status.t -> bool) -> (Fault.t -> bool) -> int
(** [classify_if t st ~keep p] sets status [st] on every fault satisfying
    [p] whose current status satisfies [keep]; returns how many changed.
    Mirrors "remove the identified faults from the fault list" — faults
    already classified are never reclassified. *)

val find : t -> Fault.t -> int option
val mem : t -> Fault.t -> bool
val iteri : (int -> Fault.t -> Status.t -> unit) -> t -> unit
val count : t -> f:(Status.t -> bool) -> int
val count_status : t -> Status.t -> int

val by_class : t -> (string * int) list
(** Counts per status code, descending. *)

val indices : t -> f:(Status.t -> bool) -> int list

(** {1 Coverage figures}

    All as fractions in [0, 1]. *)

val fault_coverage : t -> float
(** DT / total — the raw figure before untestable-fault pruning. *)

val testable_coverage : t -> float
(** DT / (total − undetectable) — the figure after pruning, the number the
    ISO 26262 targets apply to. *)

val undetectable_fraction : t -> float

val prune_undetectable : t -> t
(** Fresh list containing only the faults not classified undetectable. *)

val pp_summary : Format.formatter -> t -> unit
