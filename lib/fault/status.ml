type undetectable =
  | Unused
  | Tied
  | Blocked
  | Conflict
  | Redundant
  | Software
  | Invariant

type t =
  | Not_analyzed
  | Detected
  | Possibly_detected
  | Undetectable of undetectable
  | Atpg_untestable
  | Not_detected

let equal (a : t) b = a = b
let is_undetectable = function Undetectable _ -> true | _ -> false

let code = function
  | Not_analyzed -> "NA"
  | Detected -> "DT"
  | Possibly_detected -> "PT"
  | Undetectable Unused -> "UU"
  | Undetectable Tied -> "UT"
  | Undetectable Blocked -> "UB"
  | Undetectable Conflict -> "UC"
  | Undetectable Redundant -> "UR"
  | Undetectable Software -> "US"
  | Undetectable Invariant -> "UI"
  | Atpg_untestable -> "AU"
  | Not_detected -> "ND"

let pp ppf s = Format.pp_print_string ppf (code s)
