open Olfu_netlist

(** Transition-delay faults (slow-to-rise / slow-to-fall) — the "other
    fault models" extension announced in the paper's conclusion.

    A transition fault at a pin needs the pin {e launched} (set to the
    initial value, then toggled) and the late transition {e propagated} to
    an observation point.  Both requirements collapse onto the stuck-at
    machinery: a mission-constant pin can never toggle, and a blocked pin
    can never propagate, so the same tie/float manipulations expose
    on-line untestable transition faults. *)

type polarity = Slow_to_rise | Slow_to_fall

type t = { site : Fault.site; polarity : polarity }

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Netlist.t -> Format.formatter -> t -> unit
val to_string : Netlist.t -> t -> string

val universe : ?include_ties:bool -> Netlist.t -> t array
(** Two transition faults per pin, same pin set as {!Fault.universe}. *)

val as_stuck_pair : t -> Fault.t * Fault.t
(** The launch/capture reading: a slow-to-rise fault at a pin needs the
    pin controllable to 0 {e and} to 1, and behaves like a transient
    stuck-at-0 during capture.  Returns [(sa0, sa1)] on the same site. *)
