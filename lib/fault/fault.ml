open Olfu_netlist

type site = { node : int; pin : Cell.Pin.t }
type t = { site : site; stuck : bool }

let equal a b =
  a.stuck = b.stuck && a.site.node = b.site.node
  && Cell.Pin.equal a.site.pin b.site.pin

let compare a b =
  match Int.compare a.site.node b.site.node with
  | 0 -> (
    match Cell.Pin.compare a.site.pin b.site.pin with
    | 0 -> Bool.compare a.stuck b.stuck
    | c -> c)
  | c -> c

let hash (f : t) = Hashtbl.hash f

let sa0 node pin = { site = { node; pin }; stuck = false }
let sa1 node pin = { site = { node; pin }; stuck = true }

let node_label nl i =
  match Netlist.name nl i with
  | Some s -> s
  | None -> Printf.sprintf "n%d" i

let pp nl ppf f =
  let k = Netlist.kind nl f.site.node in
  let pin_label =
    match f.site.pin with
    | Cell.Pin.Out -> "Q"
    | Cell.Pin.Clk -> "CK"
    | Cell.Pin.In i -> Cell.input_pin_name k i
  in
  Format.fprintf ppf "%s(%s)/%s s@@%d"
    (node_label nl f.site.node)
    (Cell.kind_name k) pin_label
    (if f.stuck then 1 else 0)

let to_string nl f = Format.asprintf "%a" (pp nl) f

let site_net nl s =
  match s.pin with
  | Cell.Pin.Out -> s.node
  | Cell.Pin.In i -> (Netlist.fanin nl s.node).(i)
  | Cell.Pin.Clk -> invalid_arg "Fault.site_net: clock pin"

let sites_of_node nl i =
  let k = Netlist.kind nl i in
  let fanin_count = Array.length (Netlist.fanin nl i) in
  let pins =
    match k with
    | Cell.Output -> [ Cell.Pin.In 0 ]
    | _ -> Cell.pins k ~fanin_count
  in
  List.map (fun pin -> { node = i; pin }) pins

let universe ?(include_ties = false) nl =
  let acc = ref [] in
  Netlist.iter_nodes
    (fun i nd ->
      if include_ties || not (Cell.is_tie nd.Netlist.kind) then
        List.iter
          (fun site ->
            acc := { site; stuck = true } :: { site; stuck = false } :: !acc)
          (sites_of_node nl i))
    nl;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let universe_size ?include_ties nl =
  Array.length (universe ?include_ties nl)
