open Olfu_netlist

type polarity = Slow_to_rise | Slow_to_fall

type t = { site : Fault.site; polarity : polarity }

let equal a b =
  a.polarity = b.polarity && a.site.Fault.node = b.site.Fault.node
  && Cell.Pin.equal a.site.Fault.pin b.site.Fault.pin

let compare a b =
  match Int.compare a.site.Fault.node b.site.Fault.node with
  | 0 -> (
    match Cell.Pin.compare a.site.Fault.pin b.site.Fault.pin with
    | 0 -> Stdlib.compare a.polarity b.polarity
    | c -> c)
  | c -> c

let pp nl ppf f =
  let sa =
    {
      Fault.site = f.site;
      stuck = (match f.polarity with Slow_to_rise -> false | Slow_to_fall -> true);
    }
  in
  (* reuse the pin formatting of the stuck-at printer *)
  let s = Fault.to_string nl sa in
  let prefix = String.sub s 0 (String.rindex s 's') in
  Format.fprintf ppf "%s%s" prefix
    (match f.polarity with Slow_to_rise -> "STR" | Slow_to_fall -> "STF")

let to_string nl f = Format.asprintf "%a" (pp nl) f

let universe ?include_ties nl =
  let sa = Fault.universe ?include_ties nl in
  (* the stuck-at universe has two faults per pin; keep one per pin and
     emit both polarities *)
  let acc = ref [] in
  Array.iter
    (fun (f : Fault.t) ->
      if not f.Fault.stuck then begin
        acc := { site = f.Fault.site; polarity = Slow_to_fall } :: !acc;
        acc := { site = f.Fault.site; polarity = Slow_to_rise } :: !acc
      end)
    sa;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let as_stuck_pair f =
  ( { Fault.site = f.site; stuck = false },
    { Fault.site = f.site; stuck = true } )
