open Olfu_netlist

(** Single stuck-at faults.

    A fault site is a cell pin: the cell output (the {e stem} of its net),
    one of its input pins (a {e fanout branch} of the driving net), or the
    clock pin of a flip-flop.  Counting two faults per pin over all pins
    reproduces the fault-universe accounting used in the paper (214,930
    faults for the industrial core). *)

type site = { node : int; pin : Cell.Pin.t }

type t = { site : site; stuck : bool }  (** [stuck = true] is stuck-at-1 *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val sa0 : int -> Cell.Pin.t -> t
val sa1 : int -> Cell.Pin.t -> t

val pp : Netlist.t -> Format.formatter -> t -> unit
val to_string : Netlist.t -> t -> string

val site_net : Netlist.t -> site -> int
(** The net (driving node id) the site electrically belongs to: the node
    itself for [Out], the fanin driver for [In i].  Raises
    [Invalid_argument] for [Clk] (the implicit clock is not a net). *)

val universe : ?include_ties:bool -> Netlist.t -> t array
(** Every stuck-at fault of the netlist: 2 faults per output pin, input pin
    and flip-flop clock pin.  [Output]-marker cells contribute only their
    input pin (the port branch); tie cells are excluded unless
    [include_ties]. *)

val universe_size : ?include_ties:bool -> Netlist.t -> int
