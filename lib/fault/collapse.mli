(** Structural fault collapsing.

    Equivalence classes under the classic gate-local rules:
    {ul
    {- [BUF]/[OUTPUT]: input s\@v ≡ output s\@v; [NOT]: input s\@v ≡ output
       s\@(1−v);}
    {- [AND]: any input s\@0 ≡ output s\@0 (and dually for NAND/OR/NOR);}
    {- single-fanout nets: stem fault ≡ its only branch fault.}}

    Collapsed counts are what ATPG tools report as "prime" faults; the
    paper's universe (and Table I) counts {e uncollapsed} faults, so both
    views are provided. *)

type t

val compute : Flist.t -> t

val representative : t -> int -> int
(** Canonical fault index of the class containing fault [i]. *)

val same_class : t -> int -> int -> bool
val num_classes : t -> int
val class_members : t -> int -> int list
(** Members of the class of fault [i] (including [i]), ascending. *)

val representatives : t -> int list

val spread : t -> Flist.t -> unit
(** Propagate each representative's status to its whole class (statuses of
    non-representative members are overwritten). *)

val dominance_pairs : Flist.t -> (int * int) list
(** [(dominator, dominated)] pairs under the classic gate rules (any test
    for the dominated fault also detects the dominator — e.g. an AND
    input s\@1 test detects the output s\@1).  Used to shrink a target
    list further than equivalence alone: dominators need no explicit
    target when their dominated fault is targeted. *)

val dominance_prune : Flist.t -> int
(** Marks every dominator whose dominated counterpart is still in the
    target set as [Not_detected] (detected implicitly); returns the
    count.  Purely an ATPG-effort optimization; statuses other than
    [Not_analyzed] are left alone. *)
