open Olfu_netlist

type t = {
  nl : Netlist.t;
  faults : Fault.t array;
  status : Status.t array;
  index : (Fault.t, int) Hashtbl.t;
}

let create nl faults =
  let index = Hashtbl.create (2 * Array.length faults) in
  Array.iteri
    (fun i f ->
      if Hashtbl.mem index f then
        invalid_arg
          (Printf.sprintf "Flist.create: duplicate fault %s"
             (Fault.to_string nl f));
      Hashtbl.add index f i)
    faults;
  {
    nl;
    faults = Array.copy faults;
    status = Array.make (Array.length faults) Status.Not_analyzed;
    index;
  }

let full ?include_ties nl = create nl (Fault.universe ?include_ties nl)

let netlist t = t.nl
let size t = Array.length t.faults
let fault t i = t.faults.(i)
let status t i = t.status.(i)
let set_status t i s = t.status.(i) <- s

let classify_if t st ~keep p =
  let changed = ref 0 in
  Array.iteri
    (fun i f ->
      if keep t.status.(i) && p f then begin
        t.status.(i) <- st;
        incr changed
      end)
    t.faults;
  !changed

let find t f = Hashtbl.find_opt t.index f
let mem t f = Hashtbl.mem t.index f

let iteri f t = Array.iteri (fun i flt -> f i flt t.status.(i)) t.faults

let count t ~f =
  Array.fold_left (fun acc s -> if f s then acc + 1 else acc) 0 t.status

let count_status t s = count t ~f:(Status.equal s)

let by_class t =
  let tbl = Hashtbl.create 11 in
  Array.iter
    (fun s ->
      let c = Status.code s in
      Hashtbl.replace tbl c
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    t.status;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let indices t ~f =
  let acc = ref [] in
  for i = Array.length t.status - 1 downto 0 do
    if f t.status.(i) then acc := i :: !acc
  done;
  !acc

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let fault_coverage t = ratio (count_status t Status.Detected) (size t)

let testable_coverage t =
  let ud = count t ~f:Status.is_undetectable in
  ratio (count_status t Status.Detected) (size t - ud)

let undetectable_fraction t =
  ratio (count t ~f:Status.is_undetectable) (size t)

let prune_undetectable t =
  let kept = ref [] in
  iteri
    (fun _ f s -> if not (Status.is_undetectable s) then kept := f :: !kept)
    t;
  create t.nl (Array.of_list (List.rev !kept))

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>faults: %d@," (size t);
  List.iter
    (fun (c, n) -> Format.fprintf ppf "  %s: %d@," c n)
    (by_class t);
  Format.fprintf ppf "FC: %.2f%%  testable FC: %.2f%%@]"
    (100. *. fault_coverage t)
    (100. *. testable_coverage t)
