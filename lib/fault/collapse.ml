open Olfu_netlist

type t = {
  parent : int array;  (* union-find, path-halving *)
  mutable classes : int;
}

let rec find uf i =
  let p = uf.parent.(i) in
  if p = i then i
  else begin
    uf.parent.(i) <- uf.parent.(p);
    find uf uf.parent.(i)
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra <> rb then begin
    (* Keep the smaller index as representative for determinism. *)
    let lo = min ra rb and hi = max ra rb in
    uf.parent.(hi) <- lo;
    uf.classes <- uf.classes - 1
  end

let compute fl =
  let nl = Flist.netlist fl in
  let n = Flist.size fl in
  let uf = { parent = Array.init n (fun i -> i); classes = n } in
  let join fa fb =
    match Flist.find fl fa, Flist.find fl fb with
    | Some a, Some b -> union uf a b
    | _ -> ()
  in
  (* Gate-local equivalences. *)
  Netlist.iter_nodes
    (fun i nd ->
      let nins = Array.length nd.Netlist.fanin in
      let each_input f = for p = 0 to nins - 1 do f (Cell.Pin.In p) done in
      match nd.Netlist.kind with
      | Cell.Buf ->
        join (Fault.sa0 i (Cell.Pin.In 0)) (Fault.sa0 i Cell.Pin.Out);
        join (Fault.sa1 i (Cell.Pin.In 0)) (Fault.sa1 i Cell.Pin.Out)
      | Cell.Not ->
        join (Fault.sa0 i (Cell.Pin.In 0)) (Fault.sa1 i Cell.Pin.Out);
        join (Fault.sa1 i (Cell.Pin.In 0)) (Fault.sa0 i Cell.Pin.Out)
      | Cell.And ->
        each_input (fun p -> join (Fault.sa0 i p) (Fault.sa0 i Cell.Pin.Out))
      | Cell.Nand ->
        each_input (fun p -> join (Fault.sa0 i p) (Fault.sa1 i Cell.Pin.Out))
      | Cell.Or ->
        each_input (fun p -> join (Fault.sa1 i p) (Fault.sa1 i Cell.Pin.Out))
      | Cell.Nor ->
        each_input (fun p -> join (Fault.sa1 i p) (Fault.sa0 i Cell.Pin.Out))
      | Cell.Input | Cell.Output | Cell.Tie0 | Cell.Tie1 | Cell.Tiex
      | Cell.Xor | Cell.Xnor | Cell.Mux2 | Cell.Dff | Cell.Dffr | Cell.Sdff
      | Cell.Sdffr ->
        ())
    nl;
  (* Stem ≡ single branch. *)
  Netlist.iter_nodes
    (fun i _ ->
      match Netlist.fanout nl i with
      | [| (sink, pin) |] ->
        join (Fault.sa0 i Cell.Pin.Out) (Fault.sa0 sink (Cell.Pin.In pin));
        join (Fault.sa1 i Cell.Pin.Out) (Fault.sa1 sink (Cell.Pin.In pin))
      | _ -> ())
    nl;
  uf

let representative = find
let same_class t a b = find t a = find t b
let num_classes t = t.classes

let class_members t i =
  let r = find t i in
  let acc = ref [] in
  for j = Array.length t.parent - 1 downto 0 do
    if find t j = r then acc := j :: !acc
  done;
  !acc

let representatives t =
  let acc = ref [] in
  for i = Array.length t.parent - 1 downto 0 do
    if find t i = i then acc := i :: !acc
  done;
  !acc

(* Gate-local dominance: a test for the (hard) input fault necessarily
   detects the (easy) output fault. *)
let dominance_pairs fl =
  let nl = Flist.netlist fl in
  let acc = ref [] in
  let add dominator dominated =
    match Flist.find fl dominator, Flist.find fl dominated with
    | Some a, Some b -> acc := (a, b) :: !acc
    | _ -> ()
  in
  Netlist.iter_nodes
    (fun i nd ->
      let nins = Array.length nd.Netlist.fanin in
      let each f = for p = 0 to nins - 1 do f (Cell.Pin.In p) done in
      match nd.Netlist.kind with
      | Cell.And -> each (fun p -> add (Fault.sa1 i Cell.Pin.Out) (Fault.sa1 i p))
      | Cell.Nand -> each (fun p -> add (Fault.sa0 i Cell.Pin.Out) (Fault.sa1 i p))
      | Cell.Or -> each (fun p -> add (Fault.sa0 i Cell.Pin.Out) (Fault.sa0 i p))
      | Cell.Nor -> each (fun p -> add (Fault.sa1 i Cell.Pin.Out) (Fault.sa0 i p))
      | Cell.Input | Cell.Output | Cell.Tie0 | Cell.Tie1 | Cell.Tiex
      | Cell.Buf | Cell.Not | Cell.Xor | Cell.Xnor | Cell.Mux2 | Cell.Dff
      | Cell.Dffr | Cell.Sdff | Cell.Sdffr ->
        ())
    nl;
  List.rev !acc

let dominance_prune fl =
  let n = ref 0 in
  List.iter
    (fun (dominator, dominated) ->
      if
        Status.equal (Flist.status fl dominator) Status.Not_analyzed
        && Status.equal (Flist.status fl dominated) Status.Not_analyzed
      then begin
        Flist.set_status fl dominator Status.Not_detected;
        incr n
      end)
    (dominance_pairs fl);
  !n

let spread t fl =
  for i = 0 to Flist.size fl - 1 do
    let r = find t i in
    if r <> i then Flist.set_status fl i (Flist.status fl r)
  done
