(* CDCL with two-watched literals, 1-UIP learning, VSIDS and geometric
   restarts — the MiniSat architecture reduced to what the netlist miters
   need. *)

(* Literal encoding: 2v = +v, 2v+1 = -v. *)
let lit_of_int l = if l > 0 then 2 * l else (2 * -l) + 1
let neg l = l lxor 1
let var_of l = l lsr 1
let sign_of l = l land 1 = 1 (* true = negative *)

type clause = { lits : int array; mutable act : float }

type t = {
  mutable nvars : int;
  mutable clauses : clause array;  (* arena *)
  mutable nclauses : int;
  mutable watches : int list array;  (* per literal: clause indices *)
  mutable assign : int array;  (* per var: -1 undef, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* clause index, -1 = decision *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;  (* stack of trail sizes per level *)
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable trivially_unsat : bool;
  mutable root_units : int list;  (* level-0 facts awaiting propagation *)
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 { lits = [||]; act = 0. };
    nclauses = 0;
    watches = Array.make 16 [];
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.;
    phase = Array.make 8 false;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    trail_lim_size = 0;
    qhead = 0;
    var_inc = 1.;
    trivially_unsat = false;
    root_units = [];
  }

let grow_int a n fill =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) 0. in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_bool a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) false in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_lists a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) [] in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let new_var t =
  t.nvars <- t.nvars + 1;
  let v = t.nvars in
  let n = v + 1 in
  t.assign <- grow_int t.assign n (-1);
  t.level <- grow_int t.level n 0;
  t.reason <- grow_int t.reason n (-1);
  t.activity <- grow_float t.activity n;
  t.phase <- grow_bool t.phase n;
  t.trail <- grow_int t.trail n 0;
  t.trail_lim <- grow_int t.trail_lim n 0;
  t.watches <- grow_lists t.watches (2 * n + 2);
  t.assign.(v) <- -1;
  t.reason.(v) <- -1;
  v

(* value of a literal: -1 undef, 0 false, 1 true *)
let lit_value t l =
  let a = t.assign.(var_of l) in
  if a < 0 then -1 else if sign_of l then 1 - a else a

let enqueue t l reason =
  let v = var_of l in
  t.assign.(v) <- (if sign_of l then 0 else 1);
  t.level.(v) <- t.trail_lim_size;
  t.reason.(v) <- reason;
  t.phase.(v) <- not (sign_of l);
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let add_clause_arena t c =
  if t.nclauses = Array.length t.clauses then begin
    let b = Array.make (2 * t.nclauses) c in
    Array.blit t.clauses 0 b 0 t.nclauses;
    t.clauses <- b
  end;
  t.clauses.(t.nclauses) <- c;
  t.nclauses <- t.nclauses + 1;
  t.nclauses - 1

let watch t l ci = t.watches.(l) <- ci :: t.watches.(l)

let add_clause t ints =
  List.iter
    (fun l ->
      let v = abs l in
      if l = 0 || v > t.nvars then
        invalid_arg "Solver.add_clause: literal out of range")
    ints;
  (* dedupe, drop tautologies *)
  let lits = List.sort_uniq compare (List.map lit_of_int ints) in
  let tautology =
    List.exists (fun l -> List.mem (neg l) lits) lits
  in
  if not tautology then
    match lits with
    | [] -> t.trivially_unsat <- true
    | [ l ] -> t.root_units <- l :: t.root_units
    | l0 :: l1 :: _ ->
      let c = { lits = Array.of_list lits; act = 0. } in
      let ci = add_clause_arena t c in
      watch t (neg l0) ci;
      watch t (neg l1) ci

(* Two-watched-literal propagation; returns the conflicting clause. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_size do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    (* clauses watching [neg l] are registered under key [l] *)
    let false_lit = neg l in
    let old = t.watches.(l) in
    t.watches.(l) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
        if !conflict >= 0 then
          (* conflict found: keep the remaining watches untouched *)
          t.watches.(l) <- ci :: (rest @ t.watches.(l))
        else begin
          let c = t.clauses.(ci).lits in
          (* ensure the false literal is at position 1 *)
          if c.(0) = false_lit then begin
            c.(0) <- c.(1);
            c.(1) <- false_lit
          end;
          if lit_value t c.(0) = 1 then begin
            (* satisfied: keep watching *)
            t.watches.(l) <- ci :: t.watches.(l)
          end
          else begin
            (* look for a new watch *)
            let moved = ref false in
            (try
               for k = 2 to Array.length c - 1 do
                 if lit_value t c.(k) <> 0 then begin
                   c.(1) <- c.(k);
                   c.(k) <- false_lit;
                   watch t (neg c.(1)) ci;
                   moved := true;
                   raise Exit
                 end
               done
             with Exit -> ());
            if not !moved then begin
              t.watches.(l) <- ci :: t.watches.(l);
              match lit_value t c.(0) with
              | 0 -> conflict := ci
              | -1 -> enqueue t c.(0) ci
              | _ -> ()
            end
          end;
          go rest
        end
    in
    go old
  done;
  !conflict

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

let decay t = t.var_inc <- t.var_inc /. 0.95

(* First-UIP conflict analysis; returns (learnt lits with UIP first,
   backjump level). *)
let analyze t confl =
  let seen = Array.make (t.nvars + 1) false in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (t.trail_size - 1) in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl).lits in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of q in
          if (not seen.(v)) && t.level.(v) > 0 then begin
            seen.(v) <- true;
            bump t v;
            if t.level.(v) >= t.trail_lim_size then incr counter
            else learnt := q :: !learnt
          end
        end)
      c;
    (* find the next seen literal on the trail *)
    while not seen.(var_of t.trail.(!idx)) do
      decr idx
    done;
    p := t.trail.(!idx);
    decr idx;
    seen.(var_of !p) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else confl := t.reason.(var_of !p)
  done;
  let learnt = neg !p :: !learnt in
  let bj =
    List.fold_left
      (fun m q -> if q <> neg !p then max m t.level.(var_of q) else m)
      0 learnt
  in
  (learnt, bj)

let cancel_until t lvl =
  if t.trail_lim_size > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = var_of t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- -1
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.trail_lim_size <- lvl
  end

let new_level t =
  t.trail_lim.(t.trail_lim_size) <- t.trail_size;
  t.trail_lim_size <- t.trail_lim_size + 1

let pick_branch t =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 1 to t.nvars do
    if t.assign.(v) < 0 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  if !best < 0 then None
  else Some (if t.phase.(!best) then 2 * !best else (2 * !best) + 1)

type result = Sat of (int -> bool) | Unsat | Unknown

let solve ?(assumptions = []) ?(conflict_limit = max_int) t =
  if t.trivially_unsat then Unsat
  else begin
    cancel_until t 0;
    (* flush root units *)
    let ok = ref true in
    List.iter
      (fun l ->
        match lit_value t l with
        | 1 -> ()
        | 0 -> ok := false
        | _ -> enqueue t l (-1))
      t.root_units;
    t.root_units <- [];
    if (not !ok) || propagate t >= 0 then begin
      t.trivially_unsat <- true;
      Unsat
    end
    else begin
      let n_assumed = List.length assumptions in
      let conflicts = ref 0 in
      let restart_at = ref 100 in
      let result = ref None in
      (* place assumptions, each on its own level *)
      let rec assume = function
        | [] -> true
        | a :: rest -> (
          let l = lit_of_int a in
          match lit_value t l with
          | 1 -> new_level t; assume rest
          | 0 -> false
          | _ ->
            new_level t;
            enqueue t l (-1);
            if propagate t >= 0 then false else assume rest)
      in
      if not (assume assumptions) then begin
        cancel_until t 0;
        Unsat
      end
      else begin
        while !result = None do
          let confl = propagate t in
          if confl >= 0 then begin
            incr conflicts;
            if t.trail_lim_size <= n_assumed then begin
              result := Some Unsat
            end
            else if !conflicts > conflict_limit then result := Some Unknown
            else begin
              let learnt, bj = analyze t confl in
              let bj = max bj n_assumed in
              cancel_until t bj;
              (match learnt with
              | [ l ] -> enqueue t l (-1)
              | l0 :: _ :: _ ->
                let c = { lits = Array.of_list learnt; act = 0. } in
                (* UIP first; second watch on a max-level literal *)
                let lits = c.lits in
                let bestk = ref 1 in
                for k = 2 to Array.length lits - 1 do
                  if t.level.(var_of lits.(k)) > t.level.(var_of lits.(!bestk))
                  then bestk := k
                done;
                let tmp = lits.(1) in
                lits.(1) <- lits.(!bestk);
                lits.(!bestk) <- tmp;
                let ci = add_clause_arena t c in
                watch t (neg lits.(0)) ci;
                watch t (neg lits.(1)) ci;
                enqueue t l0 ci
              | [] -> result := Some Unsat);
              decay t;
              if !conflicts >= !restart_at && !result = None then begin
                restart_at := !restart_at + (!restart_at / 2) + 50;
                cancel_until t n_assumed
              end
            end
          end
          else begin
            match pick_branch t with
            | None ->
              (* full model *)
              let model = Array.sub t.assign 0 (t.nvars + 1) in
              result :=
                Some
                  (Sat
                     (fun v ->
                       if v < 1 || v > Array.length model - 1 then
                         invalid_arg "Solver model: variable out of range"
                       else model.(v) = 1))
            | Some l ->
              new_level t;
              enqueue t l (-1)
          end
        done;
        let r = match !result with Some r -> r | None -> assert false in
        cancel_until t 0;
        r
      end
    end
  end

let num_vars t = t.nvars
let num_clauses t = t.nclauses
