(** A small CDCL SAT solver: two-watched-literal propagation, first-UIP
    clause learning with backjumping, VSIDS-style activities with phase
    saving, and geometric restarts.  Built for the netlist miters of
    {!Olfu_atpg.Sat_atpg}; complete on the sizes this repository
    produces.

    Variables are positive integers from {!new_var}; literals are signed
    variables DIMACS-style ([-v] is the negation of [v]). *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocates the next variable (1, 2, 3, ...). *)

val add_clause : t -> int list -> unit
(** Add a clause over existing variables.  The empty clause makes the
    instance trivially unsatisfiable.  Raises [Invalid_argument] on
    literals whose variable was never allocated. *)

type result =
  | Sat of (int -> bool)  (** model: value of each variable *)
  | Unsat
  | Unknown  (** conflict budget exhausted *)

val solve : ?assumptions:int list -> ?conflict_limit:int -> t -> result
(** [assumptions] are temporary unit decisions for this call only.
    [conflict_limit] (default unlimited) bounds the search.  The solver
    can be re-solved with different assumptions; learned clauses are
    kept. *)

val num_vars : t -> int
val num_clauses : t -> int
