open Olfu_logic
open Olfu_netlist
module S = Olfu_sat.Solver
module CB = Olfu_atpg.Cnf.Builder
module Bmc = Olfu_atpg.Bmc
module Implic = Olfu_atpg.Implic
module Eval = Olfu_sim.Eval
module Pool = Olfu_pool.Pool
module Trace = Olfu_obs.Trace
module Slice = Olfu_slice.Slice

type candidate =
  | Const of { ff : int; value : bool }
  | Implies of { a : int; av : bool; b : int; bv : bool }
  | Mutex of int * int
  | At_most_one of int array
  | Range of { group : int array; reach : int list }

type certificate = { cert_k : int; cert_rounds : int }
type invariant = { form : candidate; cert : certificate }

type report = {
  total_ffs : int;
  mined : candidate list;
  killed : candidate list;
  unproved : candidate list;
  proved : invariant list;
  k : int;
  seconds : float;
}

let class_name = function
  | Const _ -> "const"
  | Implies _ -> "implies"
  | Mutex _ -> "mutex"
  | At_most_one _ -> "at-most-one"
  | Range _ -> "range"

let support = function
  | Const { ff; _ } -> [ ff ]
  | Implies { a; b; _ } -> [ a; b ]
  | Mutex (x, y) -> [ x; y ]
  | At_most_one g -> Array.to_list g
  | Range { group; _ } -> Array.to_list group

let is_const = function Const _ -> true | _ -> false

let node_label nl i =
  match Netlist.name nl i with Some s -> s | None -> Printf.sprintf "n%d" i

let group_label nl g =
  (* the common base of the members' [base[i]] names, if any *)
  match Netlist.name nl g.(0) with
  | Some s -> (
    match String.index_opt s '[' with
    | Some j -> String.sub s 0 j
    | None -> s)
  | None -> Printf.sprintf "n%d.." g.(0)

let pp_candidate nl ppf = function
  | Const { ff; value } ->
    Format.fprintf ppf "const %s = %d" (node_label nl ff)
      (if value then 1 else 0)
  | Implies { a; av; b; bv } ->
    Format.fprintf ppf "%s=%d -> %s=%d" (node_label nl a)
      (if av then 1 else 0)
      (node_label nl b)
      (if bv then 1 else 0)
  | Mutex (a, b) ->
    Format.fprintf ppf "mutex(%s, %s)" (node_label nl a) (node_label nl b)
  | At_most_one g ->
    Format.fprintf ppf "at-most-one %s[%d]" (group_label nl g)
      (Array.length g)
  | Range { group; reach } ->
    Format.fprintf ppf "%s[%d] in {%s}" (group_label nl group)
      (Array.length group)
      (String.concat "," (List.map string_of_int reach))

(* ------------------------------------------------------------------ *)
(* 64-lane random sequential simulation                                *)
(* ------------------------------------------------------------------ *)

(* xorshift64*: deterministic, never zero *)
let rand_word st =
  let x = !st in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  st := x;
  Int64.mul x 0x2545F4914F6CDD1DL

let seed_state seed =
  let s = Int64.logxor (Int64.of_int seed) 0x9E3779B97F4A7C15L in
  ref (if s = 0L then 88172645463325252L else s)

let ones (v : Dualrail.t) = Int64.logand v.Dualrail.hi (Int64.lognot v.Dualrail.lo)
let zeros (v : Dualrail.t) = Int64.logand v.Dualrail.lo (Int64.lognot v.Dualrail.hi)

(* One random mission run: resettable flops start at 0, plain flops at a
   random binary value per lane, reset inputs held inactive (1), [hold]
   inputs constant, every other input (and every Tiex) a fresh random
   binary value per lane per cycle.  [observe env] sees each cycle's
   settled values — flop slots hold the current state. *)
let simulate ~seed ~cycles ~hold nl ~observe =
  let n = Netlist.length nl in
  let rng = seed_state seed in
  let rand_dr () =
    let w = rand_word rng in
    Dualrail.make ~hi:w ~lo:(Int64.lognot w)
  in
  let hold_tbl = Hashtbl.create 17 in
  List.iter
    (fun (i, v) ->
      Hashtbl.replace hold_tbl i (if v then Dualrail.one else Dualrail.zero))
    hold;
  let seqs = Netlist.seq_nodes nl in
  let state =
    Array.map
      (fun s ->
        match Netlist.kind nl s with
        | Cell.Dffr | Cell.Sdffr -> Dualrail.zero
        | _ -> rand_dr ())
      seqs
  in
  let env = Array.make n Dualrail.unknown in
  let max_arity = ref 0 in
  Netlist.iter_nodes
    (fun _ nd -> max_arity := max !max_arity (Array.length nd.Netlist.fanin))
    nl;
  let ins_by_arity =
    Array.init (!max_arity + 1) (fun a -> Array.make a Dualrail.unknown)
  in
  let operand i p = env.((Netlist.fanin nl i).(p)) in
  let topo = Netlist.topo nl in
  for _c = 0 to cycles - 1 do
    Netlist.iter_nodes
      (fun i nd ->
        match nd.Netlist.kind with
        | Cell.Input ->
          env.(i) <-
            (match Hashtbl.find_opt hold_tbl i with
            | Some v -> v
            | None ->
              if Netlist.has_role nl i Netlist.Reset then Dualrail.one
              else rand_dr ())
        | Cell.Tie0 -> env.(i) <- Dualrail.zero
        | Cell.Tie1 -> env.(i) <- Dualrail.one
        | Cell.Tiex -> env.(i) <- rand_dr ()
        | _ -> ())
      nl;
    Array.iteri (fun k s -> env.(s) <- state.(k)) seqs;
    Array.iter
      (fun i ->
        let nd = Netlist.node nl i in
        let a = Array.length nd.Netlist.fanin in
        let ins = ins_by_arity.(a) in
        for p = 0 to a - 1 do
          ins.(p) <- operand i p
        done;
        env.(i) <- Eval.comb_par nd.Netlist.kind ins)
      topo;
    observe env;
    Array.iteri
      (fun k s ->
        state.(k) <-
          (match Netlist.kind nl s with
          | Cell.Dff -> operand s 0
          | Cell.Dffr ->
            Dualrail.mux ~sel:(operand s 1) ~a:Dualrail.zero ~b:(operand s 0)
          | Cell.Sdff ->
            Dualrail.mux ~sel:(operand s 2) ~a:(operand s 0) ~b:(operand s 1)
          | Cell.Sdffr ->
            Dualrail.mux ~sel:(operand s 3) ~a:Dualrail.zero
              ~b:(Dualrail.mux ~sel:(operand s 2) ~a:(operand s 0)
                    ~b:(operand s 1))
          | _ -> assert false))
      seqs
  done

(* Lanes (as a mask) where the candidate is violated in this cycle.  X
   lanes never violate: a candidate is only refuted by a binary
   counterexample, exactly like {!Dualrail.diff_mask}. *)
let violation env = function
  | Const { ff; value } -> if value then zeros env.(ff) else ones env.(ff)
  | Implies { a; av; b; bv } ->
    let la = if av then ones env.(a) else zeros env.(a) in
    let nb = if bv then zeros env.(b) else ones env.(b) in
    Int64.logand la nb
  | Mutex (a, b) -> Int64.logand (ones env.(a)) (ones env.(b))
  | At_most_one g ->
    let one = ref 0L and two = ref 0L in
    Array.iter
      (fun f ->
        let o = ones env.(f) in
        two := Int64.logor !two (Int64.logand !one o);
        one := Int64.logor !one o)
      g;
    !two
  | Range { group; reach } ->
    let allbin =
      Array.fold_left
        (fun m f -> Int64.logand m (Dualrail.binary_mask env.(f)))
        Int64.minus_one group
    in
    let ok =
      List.fold_left
        (fun acc v ->
          let m = ref allbin in
          Array.iteri
            (fun k f ->
              m :=
                Int64.logand !m
                  (if (v lsr k) land 1 = 1 then ones env.(f) else zeros env.(f)))
            group;
          Int64.logor acc !m)
        0L reach
    in
    Int64.logand allbin (Int64.lognot ok)

(* ------------------------------------------------------------------ *)
(* Mining                                                              *)
(* ------------------------------------------------------------------ *)

let split_bit name =
  match String.rindex_opt name '[' with
  | Some i when String.length name > i + 2 && name.[String.length name - 1] = ']'
    -> (
    match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 2))
    with
    | Some b when b >= 0 -> Some (String.sub name 0 i, b)
    | _ -> None)
  | _ -> None

(* Cluster flop names [base[i]] into registers: only complete groups
   (bits 0..w-1 all present exactly once) are trusted. *)
let registers nl =
  let seqs = Netlist.seq_nodes nl in
  let tbl = Hashtbl.create 37 in
  Array.iter
    (fun s ->
      match Netlist.name nl s with
      | None -> ()
      | Some nm -> (
        match split_bit nm with
        | None -> ()
        | Some (base, bit) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl base) in
          Hashtbl.replace tbl base ((bit, s) :: prev)))
    seqs;
  let groups = ref [] in
  Hashtbl.iter
    (fun _base members ->
      let w = List.length members in
      if w >= 2 then begin
        let sorted = List.sort compare members in
        let complete =
          List.for_all2
            (fun k (bit, _) -> k = bit)
            (List.init w (fun k -> k))
            sorted
        in
        if complete then
          groups := Array.of_list (List.map snd sorted) :: !groups
      end)
    tbl;
  (* deterministic order: by first member's node id *)
  List.sort (fun a b -> compare a.(0) b.(0)) !groups

let max_range_values = 32
let max_group_width = 16
let pairing_cap = 48

let mine ?(seed = 0x11A8) ?(cycles = 96) ?(hold = []) ?(max_candidates = 512)
    nl =
  let seqs = Netlist.seq_nodes nl in
  let nseq = Array.length seqs in
  let groups =
    List.filter (fun g -> Array.length g <= max_group_width) (registers nl)
  in
  (* per-flop value coverage *)
  let seen0 = Array.make nseq false and seen1 = Array.make nseq false in
  let pos = Hashtbl.create 97 in
  Array.iteri (fun k s -> Hashtbl.replace pos s k) seqs;
  (* per-group observed value sets *)
  let gsets = List.map (fun g -> (g, Hashtbl.create 17, ref false)) groups in
  (* pairing set: one-bit registers and bits of narrow registers *)
  let grouped = Hashtbl.create 97 in
  List.iter (Array.iter (fun s -> Hashtbl.replace grouped s ())) groups;
  let pairset =
    let bits = ref [] in
    Array.iter
      (fun s -> if not (Hashtbl.mem grouped s) then bits := s :: !bits)
      seqs;
    List.iter
      (fun g -> if Array.length g <= 4 then Array.iter (fun s -> bits := s :: !bits) g)
      groups;
    let l = List.sort_uniq compare !bits in
    Array.of_list (List.filteri (fun i _ -> i < pairing_cap) l)
  in
  let np = Array.length pairset in
  (* combo coverage per unordered pair: bit0 = 00 seen, 1 = 01, 2 = 10, 3 = 11
     (a-value is the high bit; pairs indexed i*np+j for i<j) *)
  let combos = Array.make (np * np) 0 in
  let observe env =
    Array.iteri
      (fun k s ->
        if ones env.(s) <> 0L then seen1.(k) <- true;
        if zeros env.(s) <> 0L then seen0.(k) <- true)
      seqs;
    List.iter
      (fun (g, set, saturated) ->
        if not !saturated then begin
          let w = Array.length g in
          let allbin =
            Array.fold_left
              (fun m f -> Int64.logand m (Dualrail.binary_mask env.(f)))
              Int64.minus_one g
          in
          for lane = 0 to 63 do
            if Int64.logand allbin (Int64.shift_left 1L lane) <> 0L then begin
              let v = ref 0 in
              for k = 0 to w - 1 do
                if
                  Int64.logand (ones env.(g.(k))) (Int64.shift_left 1L lane)
                  <> 0L
                then v := !v lor (1 lsl k)
              done;
              if not (Hashtbl.mem set !v) then
                if Hashtbl.length set >= max_range_values then saturated := true
                else Hashtbl.replace set !v ()
            end
          done
        end)
      gsets;
    for i = 0 to np - 1 do
      let oi = ones env.(pairset.(i)) and zi = zeros env.(pairset.(i)) in
      for j = i + 1 to np - 1 do
        let oj = ones env.(pairset.(j)) and zj = zeros env.(pairset.(j)) in
        let c = ref combos.(i * np + j) in
        if Int64.logand zi zj <> 0L then c := !c lor 1;
        if Int64.logand zi oj <> 0L then c := !c lor 2;
        if Int64.logand oi zj <> 0L then c := !c lor 4;
        if Int64.logand oi oj <> 0L then c := !c lor 8;
        combos.(i * np + j) <- !c
      done
    done
  in
  simulate ~seed ~cycles ~hold nl ~observe;
  let consts = ref [] in
  let is_const_ff = Array.make nseq false in
  Array.iteri
    (fun k s ->
      if seen0.(k) && not seen1.(k) then begin
        is_const_ff.(k) <- true;
        consts := Const { ff = s; value = false } :: !consts
      end
      else if seen1.(k) && not seen0.(k) then begin
        is_const_ff.(k) <- true;
        consts := Const { ff = s; value = true } :: !consts
      end)
    seqs;
  let ranges = ref [] and amos = ref [] in
  List.iter
    (fun (g, set, saturated) ->
      if not !saturated then begin
        let w = Array.length g in
        let values = Hashtbl.fold (fun v () acc -> v :: acc) set [] in
        let values = List.sort compare values in
        let nvals = List.length values in
        let full = w < 6 && nvals = 1 lsl w in
        if nvals >= 1 && not full then
          ranges := Range { group = g; reach = values } :: !ranges
        else if
          w >= 2
          && List.for_all
               (fun v -> v land (v - 1) = 0 (* popcount <= 1 *))
               values
        then amos := At_most_one g :: !amos
      end
      else if
        Array.length g >= 2
        && Hashtbl.fold
             (fun v () acc -> acc && v land (v - 1) = 0)
             set true
      then
        (* value set overflowed but every observed code was one-hot/idle *)
        amos := At_most_one g :: !amos)
    gsets;
  let pair_cands = ref [] in
  for i = 0 to np - 1 do
    for j = i + 1 to np - 1 do
      let a = pairset.(i) and b = pairset.(j) in
      let ka = Hashtbl.find pos a and kb = Hashtbl.find pos b in
      (* pairs where one side is a constant candidate carry no news *)
      if
        (not is_const_ff.(ka)) && (not is_const_ff.(kb))
        && seen0.(ka) && seen1.(ka) && seen0.(kb) && seen1.(kb)
      then begin
        let c = combos.(i * np + j) in
        if c land 8 = 0 then pair_cands := Mutex (a, b) :: !pair_cands;
        if c land 4 = 0 then
          pair_cands := Implies { a; av = true; b; bv = true } :: !pair_cands;
        if c land 2 = 0 then
          pair_cands :=
            Implies { a; av = false; b; bv = false } :: !pair_cands;
        if c land 1 = 0 then
          pair_cands := Implies { a; av = false; b; bv = true } :: !pair_cands
      end
    done
  done;
  let all =
    List.rev !consts @ List.rev !ranges @ List.rev !amos
    @ List.rev !pair_cands
  in
  List.filteri (fun i _ -> i < max_candidates) all

(* ------------------------------------------------------------------ *)
(* Filter                                                              *)
(* ------------------------------------------------------------------ *)

let filter ?(seed = 0xF117) ?(cycles = 256) ?(hold = []) nl cands =
  let arr = Array.of_list cands in
  let alive = Array.make (Array.length arr) true in
  let observe env =
    Array.iteri
      (fun i c -> if alive.(i) && violation env c <> 0L then alive.(i) <- false)
      arr
  in
  simulate ~seed ~cycles ~hold nl ~observe;
  let survivors = ref [] and killed = ref [] in
  Array.iteri
    (fun i c -> if alive.(i) then survivors := c :: !survivors
      else killed := c :: !killed)
    arr;
  (List.rev !survivors, List.rev !killed)

(* ------------------------------------------------------------------ *)
(* Proof: strengthening-set k-induction                                *)
(* ------------------------------------------------------------------ *)

let cand_lit b state_of = function
  | Const { ff; value } ->
    let l = state_of ff in
    if value then l else -l
  | Implies { a; av; b = bb; bv } ->
    let la = state_of a and lb = state_of bb in
    CB.mk_or b [ (if av then -la else la); (if bv then lb else -lb) ]
  | Mutex (x, y) -> -CB.mk_and b [ state_of x; state_of y ]
  | At_most_one g ->
    let ls = Array.to_list (Array.map state_of g) in
    let rec pairs = function
      | [] -> []
      | x :: tl -> List.map (fun y -> -CB.mk_and b [ x; y ]) tl @ pairs tl
    in
    CB.mk_and b (pairs ls)
  | Range { group; reach } ->
    CB.mk_or b
      (List.map
         (fun v ->
           CB.mk_and b
             (Array.to_list
                (Array.mapi
                   (fun k f ->
                     let l = state_of f in
                     if (v lsr k) land 1 = 1 then l else -l)
                   group)))
         reach)

let state_literals b ~state_of invs =
  List.map (fun inv -> cand_lit b state_of inv.form) invs

let state_fn st =
  let h = Hashtbl.create 97 in
  Array.iter (fun (i, l) -> Hashtbl.replace h i l) st;
  fun i -> Hashtbl.find h i

(* Unroll [steps] transitions: returns the state literal tables for
   cycles 0..steps.  Reset inputs inactive, [hold] inputs constant,
   everything else (and every Tiex) fresh per cycle — the same frame
   semantics as {!Olfu_safety.Seu} and {!simulate}. *)
let unroll b nl ~steps ~hold ~init =
  let id_stem _ l = l in
  let id_op _ _ l = l in
  let hold_tbl = Hashtbl.create 17 in
  List.iter (fun (i, v) -> Hashtbl.replace hold_tbl i v) hold;
  let states = Array.make (steps + 1) init in
  for c = 0 to steps - 1 do
    let input_tbl = Hashtbl.create 37 in
    Array.iter
      (fun i ->
        let v =
          match Hashtbl.find_opt hold_tbl i with
          | Some true -> CB.vtrue b
          | Some false -> -CB.vtrue b
          | None ->
            if Netlist.has_role nl i Netlist.Reset then CB.vtrue b
            else CB.fresh b
        in
        Hashtbl.replace input_tbl i v)
      (Netlist.inputs nl);
    let tiex_tbl = Hashtbl.create 7 in
    Netlist.iter_nodes
      (fun i nd ->
        if nd.Netlist.kind = Cell.Tiex then
          Hashtbl.replace tiex_tbl i (CB.fresh b))
      nl;
    let st = state_fn states.(c) in
    let source i =
      match Netlist.kind nl i with
      | Cell.Input -> Hashtbl.find input_tbl i
      | Cell.Tiex -> Hashtbl.find tiex_tbl i
      | _ -> st i
    in
    let _, lit =
      Bmc.eval_cycle b nl ~source ~inject_stem:id_stem ~inject_operand:id_op
    in
    states.(c + 1) <- Bmc.next_state b nl lit ~inject_operand:id_op
  done;
  states

let reset_init b nl =
  Array.map
    (fun i ->
      match Netlist.kind nl i with
      | Cell.Dffr | Cell.Sdffr -> (i, -CB.vtrue b)
      | _ -> (i, CB.fresh b))
    (Netlist.seq_nodes nl)

let free_init b nl =
  Array.map (fun i -> (i, CB.fresh b)) (Netlist.seq_nodes nl)

(* Every query runs on a fresh solver so its outcome (including budget
   exhaustion) depends only on the formula — never on which worker ran
   it or what it solved before: the Houdini result is jobs-invariant. *)
let base_holds ~k ~conflict_limit ~hold nl cand =
  let s = S.create () in
  let b = CB.create s in
  let states = unroll b nl ~steps:(k - 1) ~hold ~init:(reset_init b nl) in
  let viols =
    List.init k (fun j -> -cand_lit b (state_fn states.(j)) cand)
  in
  S.add_clause s viols;
  match S.solve ~conflict_limit s with S.Unsat -> true | _ -> false

let step_holds ~k ~conflict_limit ~hold nl survivors cand =
  let s = S.create () in
  let b = CB.create s in
  let states = unroll b nl ~steps:k ~hold ~init:(free_init b nl) in
  for j = 0 to k - 1 do
    let st = state_fn states.(j) in
    Array.iter (fun c -> S.add_clause s [ cand_lit b st c ]) survivors
  done;
  S.add_clause s [ -cand_lit b (state_fn states.(k)) cand ];
  match S.solve ~conflict_limit s with S.Unsat -> true | _ -> false

let bounded_check ?(cycles = 8) ?(conflict_limit = 100_000) ?(hold = []) nl
    cand =
  base_holds ~k:cycles ~conflict_limit ~hold nl cand

(* Component machines for sliced proving (k = 1 only).

   Two candidates are {e entangled} when the hard-severed backward
   closures of their supports share a flop — then the step query of one
   can read state the other constrains at cycle 0, so they must live on
   one machine.  The transitive grouping is a union-find over flop
   ordinals: each candidate unions its closure, and its component is the
   root of its first support flop.  Per component one certified backward
   machine is built; every query of a member candidate runs there, with
   the survivor assertions filtered to the same component.  Survivors of
   other components constrain disjoint variables and are jointly
   satisfiable (each passed the base pass, so the post-reset states
   satisfy them all), hence dropping them never changes a verdict. *)
type comp_machine = {
  red : Slice.reduced;
  comp_hold : (int * bool) list;  (* [hold] translated to machine ids *)
}

let rename_cand m = function
  | Const { ff; value } -> Const { ff = m ff; value }
  | Implies { a; av; b; bv } -> Implies { a = m a; av; b = m b; bv }
  | Mutex (x, y) -> Mutex (m x, m y)
  | At_most_one g -> At_most_one (Array.map m g)
  | Range { group; reach } -> Range { group = Array.map m group; reach }

let component_machines g ~hold cands =
  let nf = Array.length g.Slice.flops in
  let parent = Array.init nf (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  let closures =
    Array.map
      (fun c ->
        let ords = List.map (fun f -> g.Slice.ford.(f)) (support c) in
        let m = Slice.backward_flops g.Slice.hard_edges ords in
        (List.hd ords, m))
      cands
  in
  Array.iter
    (fun (seed, m) ->
      Array.iteri (fun o inc -> if inc then union seed o) m)
    closures;
  let machines = Hashtbl.create 17 in
  let comp_of_cand =
    Array.mapi
      (fun i c ->
        let seed, closure = closures.(i) in
        let root = find seed in
        if not (Hashtbl.mem machines root) then begin
          ignore closure;
          (* the closure of one member need not list every flop of the
             union — collect the whole component *)
          let targets = ref [] in
          Array.iteri
            (fun o f -> if find o = root then targets := f :: !targets)
            g.Slice.flops;
          let targets = List.sort_uniq Int.compare !targets in
          let red = Slice.backward g ~targets in
          let comp_hold =
            List.filter_map
              (fun (i, v) ->
                let m = red.Slice.new_of_old.(i) in
                if m >= 0 then Some (m, v) else None)
              hold
          in
          Hashtbl.replace machines root { red; comp_hold }
        end;
        ignore c;
        root)
      cands
  in
  (comp_of_cand, machines)

let prove ?(k = 1) ?(conflict_limit = 100_000) ?jobs ?(trace = Trace.null)
    ?(hold = []) ?(sliced = true) nl cands =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let shard label arr check =
    let n = Array.length arr in
    let oks = Array.make n false in
    Pool.with_pool ~jobs (fun pool ->
        (* one candidate per chunk; each index writes its own slot *)
        Pool.parallel_chunks pool ~n ~chunk:1 ~trace ~label
          (fun ~worker:_ ~lo ~hi ->
            for i = lo to hi - 1 do
              oks.(i) <- check i arr.(i)
            done));
    oks
  in
  let arr = Array.of_list cands in
  (* slicing is exact only for k = 1 (at k >= 2 a survivor of another
     component constrains the component's own cycle-1 state through
     shared inputs of the two transition copies; rather than reason
     about that, fall back to the full machine) *)
  let ctx =
    if sliced && k = 1 && Array.length arr > 0 then begin
      let g = Slice.get nl in
      let comp_of, machines = component_machines g ~hold arr in
      let comp_tbl = Hashtbl.create 97 in
      Array.iteri
        (fun i c -> Hashtbl.replace comp_tbl c comp_of.(i))
        arr;
      Some (machines, comp_tbl)
    end
    else None
  in
  let base_check =
    match ctx with
    | None -> fun _ c -> base_holds ~k ~conflict_limit ~hold nl c
    | Some (machines, comp_tbl) ->
      fun _ c ->
        let cm = Hashtbl.find machines (Hashtbl.find comp_tbl c) in
        let m d = cm.red.Slice.new_of_old.(d) in
        base_holds ~k ~conflict_limit ~hold:cm.comp_hold
          cm.red.Slice.rnl (rename_cand m c)
  in
  let step_check cur =
    match ctx with
    | None -> fun _ c -> step_holds ~k ~conflict_limit ~hold nl cur c
    | Some (machines, comp_tbl) ->
      fun _ c ->
        let root = Hashtbl.find comp_tbl c in
        let cm = Hashtbl.find machines root in
        let m d = cm.red.Slice.new_of_old.(d) in
        let peers =
          Array.of_list
            (Array.to_list cur
            |> List.filter (fun c' -> Hashtbl.find comp_tbl c' = root)
            |> List.map (rename_cand m))
        in
        step_holds ~k ~conflict_limit ~hold:cm.comp_hold
          cm.red.Slice.rnl peers (rename_cand m c)
  in
  let base_ok = shard "invar-base" arr base_check in
  let survivors = ref [] in
  Array.iteri (fun i c -> if base_ok.(i) then survivors := c :: !survivors) arr;
  let survivors = ref (Array.of_list (List.rev !survivors)) in
  let rounds = ref 0 in
  let stable = ref (Array.length !survivors = 0) in
  while not !stable do
    incr rounds;
    let cur = !survivors in
    let ok = shard "invar-step" cur (step_check cur) in
    if Array.for_all (fun x -> x) ok then stable := true
    else begin
      let keep = ref [] in
      Array.iteri (fun i c -> if ok.(i) then keep := c :: !keep) cur;
      survivors := Array.of_list (List.rev !keep);
      if Array.length !survivors = 0 then stable := true
    end
  done;
  let cert = { cert_k = k; cert_rounds = !rounds } in
  let proved_set = Hashtbl.create 97 in
  Array.iter (fun c -> Hashtbl.replace proved_set c ()) !survivors;
  let proved =
    Array.to_list (Array.map (fun form -> { form; cert }) !survivors)
  in
  let failed = List.filter (fun c -> not (Hashtbl.mem proved_set c)) cands in
  (proved, failed)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 0x11A8) ?(mine_cycles = 96) ?(filter_cycles = 256)
    ?(max_candidates = 512) ?(k = 1) ?(conflict_limit = 100_000) ?jobs
    ?(trace = Trace.null) ?(hold = []) ?(no_prove = false) nl =
  let t0 = Unix.gettimeofday () in
  Trace.span trace ~cat:"engine" "invar" @@ fun () ->
  let mined = mine ~seed ~cycles:mine_cycles ~hold ~max_candidates nl in
  let survivors, killed =
    filter ~seed:(seed + 1) ~cycles:filter_cycles ~hold nl mined
  in
  let proved, unproved =
    if no_prove then ([], survivors)
    else prove ~k ~conflict_limit ?jobs ~trace ~hold nl survivors
  in
  let r =
    {
      total_ffs = Array.length (Netlist.seq_nodes nl);
      mined;
      killed;
      unproved;
      proved;
      k;
      seconds = Unix.gettimeofday () -. t0;
    }
  in
  if Trace.enabled trace then begin
    Trace.add trace "invar.mined" (List.length mined);
    Trace.add trace "invar.killed" (List.length killed);
    Trace.add trace "invar.proved" (List.length proved);
    Trace.add trace "invar.unproved" (List.length unproved)
  end;
  r

let count_by_class r =
  let classes = [ "const"; "implies"; "mutex"; "at-most-one"; "range" ] in
  List.map
    (fun cls ->
      let p =
        List.length
          (List.filter (fun i -> class_name i.form = cls) r.proved)
      in
      let u =
        List.length (List.filter (fun c -> class_name c = cls) r.unproved)
        + List.length (List.filter (fun c -> class_name c = cls) r.killed)
      in
      (cls, p, u))
    classes

let pp nl ppf r =
  Format.fprintf ppf "@[<v>invariants (%d flops): %d mined, %d sim-killed, \
                      %d proved (k=%d), %d unproved@,"
    r.total_ffs (List.length r.mined) (List.length r.killed)
    (List.length r.proved) r.k (List.length r.unproved);
  List.iter
    (fun (cls, p, u) ->
      if p + u > 0 then
        Format.fprintf ppf "  %-12s proved %3d  refuted/open %3d@," cls p u)
    (count_by_class r);
  List.iter
    (fun i ->
      Format.fprintf ppf "  proved: %a  [k=%d, rounds=%d]@,"
        (pp_candidate nl) i.form i.cert.cert_k i.cert.cert_rounds)
    r.proved;
  Format.fprintf ppf "mine+filter+prove time: %.3f s@]" r.seconds

(* ------------------------------------------------------------------ *)
(* Consumption (proved invariants only)                                *)
(* ------------------------------------------------------------------ *)

let range_const_bits group reach =
  (* bits every reachable value agrees on *)
  let w = Array.length group in
  List.init w (fun kbit ->
      match reach with
      | [] -> None
      | v0 :: _ ->
        let b0 = (v0 lsr kbit) land 1 in
        if List.for_all (fun v -> (v lsr kbit) land 1 = b0) reach then
          Some (group.(kbit), b0 = 1)
        else None)
  |> List.filter_map (fun x -> x)

let const_facts r =
  let facts = ref [] in
  List.iter
    (fun i ->
      match i.form with
      | Const { ff; value } -> facts := (ff, value) :: !facts
      | Range { group; reach } ->
        facts := range_const_bits group reach @ !facts
      | _ -> ())
    r.proved;
  List.sort_uniq compare !facts

let assume_facts r =
  List.map
    (fun (ff, v) -> (ff, if v then Logic4.L1 else Logic4.L0))
    (const_facts r)

let edges r =
  let lit = Implic.lit in
  let consts = const_facts r in
  let const_tbl = Hashtbl.create 17 in
  List.iter (fun (ff, v) -> Hashtbl.replace const_tbl ff v) consts;
  let es = ref [] in
  let mutex a b = es := (lit a true, lit b false) :: !es in
  List.iter
    (fun i ->
      match i.form with
      | Const _ -> ()
      | Implies { a; av; b; bv } -> es := (lit a av, lit b bv) :: !es
      | Mutex (a, b) -> mutex a b
      | At_most_one g ->
        Array.iteri
          (fun x a ->
            Array.iteri (fun y b -> if x < y then mutex a b) g)
          g
      | Range { group; reach } ->
        let w = Array.length group in
        for i' = 0 to w - 1 do
          for j = 0 to w - 1 do
            if
              i' <> j
              && (not (Hashtbl.mem const_tbl group.(i')))
              && not (Hashtbl.mem const_tbl group.(j))
            then
              List.iter
                (fun x ->
                  let ys =
                    List.sort_uniq compare
                      (List.filter_map
                         (fun v ->
                           if (v lsr i') land 1 = x then
                             Some ((v lsr j) land 1)
                           else None)
                         reach)
                  in
                  match ys with
                  | [ y ] ->
                    es := (lit group.(i') (x = 1), lit group.(j) (y = 1)) :: !es
                  | _ -> ())
                [ 0; 1 ]
          done
        done)
    r.proved;
  List.sort_uniq compare !es

(* --- lint bridge --- *)

let lint_facts r =
  let pairwise g =
    let acc = ref [] in
    Array.iteri
      (fun i a ->
        Array.iteri (fun j b -> if i < j then acc := (a, b) :: !acc) g)
      g;
    List.rev !acc
  in
  let mutex =
    List.concat_map
      (fun inv ->
        match inv.form with
        | Mutex (a, b) -> [ (a, b) ]
        | At_most_one g -> pairwise g
        | _ -> [])
      r.proved
  in
  let ranges =
    List.filter_map
      (fun inv ->
        match inv.form with
        | Range { group; reach } -> Some (group, reach)
        | _ -> None)
      r.proved
  in
  {
    Olfu_lint.Ctx.inv_label = Printf.sprintf "induction (k=%d)" r.k;
    inv_consts = const_facts r;
    inv_mutex = List.sort_uniq compare mutex;
    inv_ranges = ranges;
  }
