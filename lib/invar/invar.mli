open Olfu_logic
open Olfu_netlist

(** Sequential state-invariant engine: mine – filter – prove.

    The paper's untestability arguments all reduce to one move — prove a
    value combination functionally unreachable, then every fault that
    needs it is safe.  This module mines candidate invariants over the
    flip-flop state of a netlist, filters them with 64-lane random
    sequential simulation, and proves the survivors by strengthening-set
    k-induction (Houdini) over the {!Olfu_atpg.Bmc} cycle primitives.

    {b Soundness rule}: only {e proved} invariants — those carrying an
    induction {!certificate} — are ever exported to downstream consumers
    ({!const_facts}, {!assume_facts}, {!edges}, {!state_literals}).
    Sim-surviving but unproved candidates are reported for inspection and
    nothing else.

    A proved invariant holds in {e every} state reachable from reset
    (resettable flops at 0, plain flops arbitrary, reset inactive, held
    inputs constant).  It is therefore valid for any analysis of the
    mission machine: extra implication edges for {!Olfu_atpg.Implic},
    assumed constants for {!Olfu_atpg.Ternary}, and initial-state
    constraints for bounded model checks whose cycle-0 state stands for
    "any reachable state". *)

(** A candidate state predicate.  All node ids are flip-flop outputs of
    the analyzed netlist; [Range] groups are least-significant bit
    first. *)
type candidate =
  | Const of { ff : int; value : bool }  (** the flop never leaves [value] *)
  | Implies of { a : int; av : bool; b : int; bv : bool }
      (** whenever [a = av], also [b = bv] *)
  | Mutex of int * int  (** never both 1 in the same cycle *)
  | At_most_one of int array  (** at most one member is 1 (one-hot or idle) *)
  | Range of { group : int array; reach : int list }
      (** the register's value is always one of [reach] (sorted) *)

type certificate = {
  cert_k : int;  (** induction depth the proof used *)
  cert_rounds : int;
      (** Houdini strengthening rounds until the set was inductive *)
}

type invariant = { form : candidate; cert : certificate }

type report = {
  total_ffs : int;
  mined : candidate list;  (** everything the miner proposed *)
  killed : candidate list;  (** violated by the random-simulation filter *)
  unproved : candidate list;
      (** survived simulation but not the induction proof — {e never}
          exported *)
  proved : invariant list;
  k : int;
  seconds : float;
}

val class_name : candidate -> string
(** ["const"], ["implies"], ["mutex"], ["at-most-one"] or ["range"]. *)

val support : candidate -> int list
(** The flop nodes the candidate reads (with duplicates for [Implies]
    on one flop etc.) — the seeds of its cone-of-influence slice. *)

val is_const : candidate -> bool

val pp_candidate : Netlist.t -> Format.formatter -> candidate -> unit
val pp : Netlist.t -> Format.formatter -> report -> unit

val count_by_class : report -> (string * int * int) list
(** Per class name: (class, proved, unproved-or-killed). *)

val mine :
  ?seed:int ->
  ?cycles:int ->
  ?hold:(int * bool) list ->
  ?max_candidates:int ->
  Netlist.t ->
  candidate list
(** Propose candidates from a [cycles]-cycle (default 96) random
    64-lane simulation: per-flop constants, per-register value sets and
    at-most-one groups (registers are discovered by clustering flop
    names of the form [base[i]]), and mutex / implication literals over
    a bounded pairing set of one-bit and narrow-register flops.  Every
    candidate holds on the mining trace by construction.  [hold] pins
    the listed primary inputs to constants for the whole run (the
    mission hold — e.g. scan enables at 0); inputs with the
    {!Netlist.Reset} role are held inactive (1) and resettable flops
    start at 0, plain flops random.  Deterministic in [seed]. *)

val filter :
  ?seed:int ->
  ?cycles:int ->
  ?hold:(int * bool) list ->
  Netlist.t ->
  candidate list ->
  candidate list * candidate list
(** [(survivors, killed)] after a fresh [cycles]-cycle (default 256)
    random simulation with a different default seed: cheap refutation so
    only plausible candidates reach the prover. *)

val prove :
  ?k:int ->
  ?conflict_limit:int ->
  ?jobs:int ->
  ?trace:Olfu_obs.Trace.sink ->
  ?hold:(int * bool) list ->
  ?sliced:bool ->
  Netlist.t ->
  candidate list ->
  invariant list * candidate list
(** [(proved, failed)] by strengthening-set k-induction (default [k] 1):
    base case from the reset state (plain flops unconstrained), then
    Houdini rounds — every survivor is assumed at cycles [0..k-1], each
    is checked at cycle [k], and all failures of a round are removed
    together until the set is inductive.  The greatest inductive subset
    is unique, so the result is independent of [jobs] (each query runs
    on a fresh solver; a solver [Unknown] under [conflict_limit],
    default 100_000, counts as a failure — sound, never unsound).
    Sharded over {!Olfu_pool.Pool} with one candidate per chunk.

    [sliced] (default [true]) runs every query (when [k = 1]) on the
    candidate's certified cone-of-influence component machine
    ({!Olfu_slice.Slice.backward} over the hard-severed dependency
    graph): candidates whose support closures share a flop are grouped,
    one reduced machine is built per group, and survivor assumptions
    are filtered to the group.  Survivors of other groups constrain
    disjoint, jointly satisfiable variables, so the proved set, its
    certificates and the round count are bit-identical to the unsliced
    run.  With [k >= 2] the full machine is always used. *)

val bounded_check :
  ?cycles:int ->
  ?conflict_limit:int ->
  ?hold:(int * bool) list ->
  Netlist.t ->
  candidate ->
  bool
(** Independent bounded oracle: SAT-check that no state within [cycles]
    (default 8) of the reset state violates the candidate.  [true] means
    no violation exists in the window (a solver [Unknown] also returns
    [false]).  Used by the bench gates to cross-check induction proofs
    with a proof mechanism that shares none of the induction
    structure. *)

val run :
  ?seed:int ->
  ?mine_cycles:int ->
  ?filter_cycles:int ->
  ?max_candidates:int ->
  ?k:int ->
  ?conflict_limit:int ->
  ?jobs:int ->
  ?trace:Olfu_obs.Trace.sink ->
  ?hold:(int * bool) list ->
  ?no_prove:bool ->
  Netlist.t ->
  report
(** The full pipeline.  [no_prove] stops after the simulation filter
    (every survivor is reported as [unproved]; nothing is proved).  A
    recording [trace] gets one ["engine"]-category ["invar"] span and
    the jobs-invariant counters ["invar.mined"], ["invar.killed"],
    ["invar.proved"], ["invar.unproved"]. *)

(** {2 Consumption — proved invariants only} *)

val const_facts : report -> (int * bool) list
(** Proved constant flops, plus per-bit constants implied by proved
    [Range] invariants whose reachable values all agree on a bit.
    Sorted, deduplicated. *)

val assume_facts : report -> (int * Logic4.t) list
(** {!const_facts} as a [Ternary.run ~assume] / [Implic] constant list. *)

val edges : report -> (int * int) list
(** Proved pairwise facts as {!Olfu_atpg.Implic.lit} implication edges
    [(a, b)] meaning [a -> b] (contrapositives are added by the database
    builder): [Implies] directly, [Mutex] and [At_most_one] as pairwise
    exclusions, [Range] as the bit-pair implications its value set
    forces between non-constant bits. *)

val state_literals :
  Olfu_atpg.Cnf.Builder.t ->
  state_of:(int -> int) ->
  invariant list ->
  int list
(** CNF literals asserting each invariant on one state of an unrolled
    model, where [state_of] maps a flop node to its state literal for
    that cycle.  Used to constrain a BMC initial state to the proved
    reachable over-approximation ({!Olfu_safety.Seu}). *)

val lint_facts : report -> Olfu_lint.Ctx.invariants
(** The proved facts repackaged as the plain-data record the INV-* lint
    rules consume ({!Olfu_lint.Ctx.invariants}): proved constants
    (including {!Range}-derived agreed bits), pairwise mutex facts (from
    {!Mutex} and {!At_most_one}), and the reachable value sets.  Only
    certificate-carrying invariants contribute. *)
