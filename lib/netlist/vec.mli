(** Growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val iteri : (int -> 'a -> unit) -> 'a t -> unit
