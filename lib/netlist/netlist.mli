open Olfu_logic

(** Flat gate-level netlist.

    The graph is stored as an array of single-output cells; a {e net} is
    identified with the id of the cell driving it, so "net [n]" and "output
    of node [n]" are the same thing.  Fanout branches are addressed as
    [(sink node, input pin)] pairs.

    A netlist is immutable once created; circuit manipulations (tying,
    floating, scan removal) build a modified copy through {!Builder}. *)

type node = {
  kind : Cell.kind;
  fanin : int array;  (** driving node id per input pin *)
  name : string option;  (** hierarchical name of the output net *)
}

(** Mission/test roles attached to nodes (ports, flip-flops). *)
type role =
  | Clock
  | Reset
  | Scan_enable
  | Scan_in
  | Scan_out
  | Debug_control  (** debug/test control input (DE, DI, JTAG-like pins) *)
  | Debug_observe  (** debug observation output (register dump buses) *)
  | Address_reg of int  (** flip-flop storing address bit [i] *)
  | Address_port of int  (** port carrying address bit [i] *)

val equal_role : role -> role -> bool
val pp_role : Format.formatter -> role -> unit

type t

type error =
  | Bad_arity of { node : int; expected : int; got : int }
  | Dangling_fanin of { node : int; pin : int; target : int }
  | Duplicate_name of string
  | Combinational_loop of int list

val pp_error : Format.formatter -> error -> unit

val create :
  ?roles:(int * role) list -> node array -> (t, error list) result
(** Validates arities and references, resolves a topological order and
    detects combinational loops. *)

val create_exn : ?roles:(int * role) list -> node array -> t

(** {1 Accessors} *)

val length : t -> int
val node : t -> int -> node
val kind : t -> int -> Cell.kind
val fanin : t -> int -> int array
val name : t -> int -> string option

val fanout : t -> int -> (int * int) array
(** [(sink, pin)] loads of the net driven by the node. *)

val find : t -> string -> int option
val find_exn : t -> string -> int

val inputs : t -> int array
(** Primary-input nodes, in creation order. *)

val outputs : t -> int array
(** [Output]-marker nodes, in creation order. *)

val seq_nodes : t -> int array
(** Sequential cells, in creation order. *)

val topo : t -> int array
(** All non-source nodes in combinational evaluation order (sources are
    inputs, tie cells and sequential-cell outputs). *)

val roles_of : t -> int -> role list
val nodes_with_role : t -> role -> int array
val has_role : t -> int -> role -> bool

val role_assignments : t -> (int * role) list

val level : t -> int -> int
(** Logic depth: 0 for sources, 1 + max fanin level otherwise. *)

val iter_nodes : (int -> node -> unit) -> t -> unit

val pp_summary : Format.formatter -> t -> unit

(** {1 Construction and editing} *)

module Builder : sig
  type netlist := t
  type t

  val create : unit -> t

  val input : ?roles:role list -> t -> string -> int
  val tie : t -> Logic4.t -> int
  (** Fresh tie cell of the given constant ([Z] maps to [Tiex]). *)

  val gate : ?name:string -> ?roles:role list -> t -> Cell.kind -> int list -> int
  (** Adds any non-port cell.  Raises [Invalid_argument] on arity errors
      caught early (full validation happens at {!freeze}). *)

  val output : ?roles:role list -> t -> string -> int -> int
  (** [output b name src] adds a primary-output marker. *)

  val buf : ?name:string -> t -> int -> int
  val not_ : ?name:string -> t -> int -> int
  val and2 : ?name:string -> t -> int -> int -> int
  val or2 : ?name:string -> t -> int -> int -> int
  val xor2 : ?name:string -> t -> int -> int -> int
  val nand2 : ?name:string -> t -> int -> int -> int
  val nor2 : ?name:string -> t -> int -> int -> int
  val xnor2 : ?name:string -> t -> int -> int -> int

  val mux2 : ?name:string -> t -> sel:int -> a:int -> b:int -> int
  val dff : ?name:string -> ?roles:role list -> t -> d:int -> int
  val dffr : ?name:string -> ?roles:role list -> t -> d:int -> rstn:int -> int
  val sdff :
    ?name:string -> ?roles:role list -> t -> d:int -> si:int -> se:int -> int

  val sdffr :
    ?name:string ->
    ?roles:role list ->
    t ->
    d:int ->
    si:int ->
    se:int ->
    rstn:int ->
    int

  val add_role : t -> int -> role -> unit
  val set_name : t -> int -> string -> unit
  val length : t -> int

  val node_kind : t -> int -> Cell.kind
  val node_fanin : t -> int -> int array

  val set_kind : t -> int -> Cell.kind -> unit
  (** Low-level edit used by circuit manipulation (e.g. turning a cell into
      a tie).  The fanin is cleared when the new kind is nullary. *)

  val set_fanin : t -> int -> int array -> unit
  val remove_node : t -> int -> unit
  (** Marks a node deleted; deleted nodes are dropped (and ids compacted)
      at {!freeze}.  Any surviving reference to it is a freeze error. *)

  val freeze : t -> (netlist, error list) result
  val freeze_exn : t -> netlist

  val of_netlist : netlist -> t
  (** Editable copy, preserving ids, names and roles. *)
end
