open Olfu_logic

type cone = {
  sched : int array;
  last_sink : int array;
  stem_last : int;
  outs : int array;
  seqs : int array;
}

type cache = ..

type t = {
  nl : Netlist.t;
  sources : int array;
  topo_pos : int array;
  max_arity : int;
  cones : cone option array;
  mutable ipdom : int array option;
      (* global immediate post-dominators towards the virtual observation
         sink; built lazily under [cm] *)
  mutable cost : int array option;
      (* saturating per-node fanout-cone cost estimate; built lazily
         under [cm] *)
  mutable extra : cache list;
      (* downstream per-netlist caches (e.g. the slice graph), appended
         under [cm]; first-published entry of a constructor wins *)
  mutable digest : string option;
      (* content digest, built lazily under [cm]; the artifact-cache key
         of the analysis service *)
  cm : Mutex.t;
  mutable cone_budget : int;
}

(* Total sched entries the per-netlist memo may retain; beyond it cones
   are rebuilt per call (the callers' one-entry caches absorb the cost,
   fault lists being ordered by site). *)
let memo_budget = 4_000_000

let netlist t = t.nl
let sources t = t.sources
let max_arity t = t.max_arity
let topo_pos t = t.topo_pos

let find_cache t f =
  Mutex.lock t.cm;
  let r = List.find_map f t.extra in
  Mutex.unlock t.cm;
  r

let add_cache t c =
  Mutex.lock t.cm;
  (* append: a sibling domain that published the same constructor first
     keeps winning [find_cache], so every consumer sees one value *)
  t.extra <- t.extra @ [ c ];
  Mutex.unlock t.cm

type scratch = {
  owner : t;
  fval : Dualrail.t array;
  stamp : int array;
  mutable gen : int;
  ins_by_arity : Dualrail.t array array;
  (* cone-builder state *)
  cvis : int array;
  pvis : int array;
  cposv : int array;
  mutable cgen : int;
  mutable last_stem : int;
  mutable last_cone : cone option;
  (* one-entry dominator-chain cache *)
  mutable last_dom_stem : int;
  mutable last_dom : int array;
}

module Scratch = struct
  type nonrec t = scratch

  let create a =
    let n = Netlist.length a.nl in
    {
      owner = a;
      fval = Array.make n Dualrail.unknown;
      stamp = Array.make n 0;
      gen = 0;
      ins_by_arity =
        Array.init (a.max_arity + 1) (fun k ->
            Array.make k Dualrail.unknown);
      cvis = Array.make n 0;
      pvis = Array.make n 0;
      cposv = Array.make n 0;
      cgen = 0;
      last_stem = -1;
      last_cone = None;
      last_dom_stem = -1;
      last_dom = [||];
    }

  let fval s = s.fval
  let stamp s = s.stamp

  let fresh_gen s =
    s.gen <- s.gen + 1;
    s.gen

  let ins s arity = s.ins_by_arity.(arity)
end

(* Build the cone of stem [d]: frontier scan over fanouts (stopping at
   sequential sinks, whose captures — not outputs — belong to the cone),
   then a topological sort of the visited set. *)
let build t s d =
  let nl = t.nl in
  s.cgen <- s.cgen + 1;
  let g = s.cgen in
  let sched_v = Vec.create () in
  let seqs_v = Vec.create () in
  let expand i =
    Array.iter
      (fun (sink, _pin) ->
        if s.cvis.(sink) <> g then begin
          s.cvis.(sink) <- g;
          if Cell.is_seq (Netlist.kind nl sink) then
            ignore (Vec.push seqs_v sink : int)
          else ignore (Vec.push sched_v sink : int)
        end)
      (Netlist.fanout nl i)
  in
  expand d;
  let w = ref 0 in
  while !w < Vec.length sched_v do
    expand (Vec.get sched_v !w);
    incr w
  done;
  let sched = Vec.to_array sched_v in
  Array.sort (fun a b -> Int.compare t.topo_pos.(a) t.topo_pos.(b)) sched;
  Array.iteri
    (fun k i ->
      s.pvis.(i) <- g;
      s.cposv.(i) <- k)
    sched;
  let last_sink = Array.make (Array.length sched) (-1) in
  let stem_last = ref (-1) in
  Array.iteri
    (fun k i ->
      Array.iter
        (fun drv ->
          if drv = d then stem_last := k
          else if s.pvis.(drv) = g then last_sink.(s.cposv.(drv)) <- k)
        (Netlist.fanin nl i))
    sched;
  let outs_v = Vec.create () in
  if Cell.equal_kind (Netlist.kind nl d) Cell.Output then
    ignore (Vec.push outs_v d : int);
  Array.iter
    (fun i ->
      if Cell.equal_kind (Netlist.kind nl i) Cell.Output then
        ignore (Vec.push outs_v i : int))
    sched;
  {
    sched;
    last_sink;
    stem_last = !stem_last;
    outs = Vec.to_array outs_v;
    seqs = Vec.to_array seqs_v;
  }

let cone t s d =
  if s.last_stem = d then Option.get s.last_cone
  else begin
    Mutex.lock t.cm;
    let memoized = t.cones.(d) in
    Mutex.unlock t.cm;
    let c =
      match memoized with
      | Some c -> c
      | None ->
        let c = build t s d in
        Mutex.lock t.cm;
        let c =
          match t.cones.(d) with
          | Some c' -> c' (* a sibling worker published first; share it *)
          | None ->
            let cost = Array.length c.sched in
            if t.cone_budget >= cost then begin
              t.cones.(d) <- Some c;
              t.cone_budget <- t.cone_budget - cost
            end;
            c
        in
        Mutex.unlock t.cm;
        c
    in
    s.last_stem <- d;
    s.last_cone <- Some c;
    c
  end

(* Global immediate post-dominators towards a virtual observation sink,
   computed once for the whole netlist in one reverse-topological pass:
   - an [Output] marker is itself an observation point (its ipdom is the
     virtual sink);
   - an edge into a sequential cell reaches the virtual sink directly
     (capture credit: the value is latched into state);
   - a fanout branch whose sink cannot reach any observation point
     contributes no paths, so it is excluded from the intersection.
   Values: node index [>= 0], [-1] the virtual sink, [-2] unreachable.
   The post-dominator chain of a stem is exactly the set of nodes every
   stem-to-exit path passes through — its unique-sensitization gates. *)
let build_ipdom t =
  let nl = t.nl in
  let n = Netlist.length nl in
  let ipdom = Array.make n (-2) in
  let pos = t.topo_pos in
  let rec inter a b =
    if a = b then a
    else if a = -1 || b = -1 then -1
    else if pos.(a) < pos.(b) then inter ipdom.(a) b
    else inter a ipdom.(b)
  in
  let of_fanouts i =
    let cur = ref (-2) in
    Array.iter
      (fun (sink, _pin) ->
        let finger =
          if Cell.is_seq (Netlist.kind nl sink) then -1
          else if ipdom.(sink) = -2 then -2
          else sink
        in
        if finger <> -2 then
          cur := (if !cur = -2 then finger else inter !cur finger))
      (Netlist.fanout nl i);
    !cur
  in
  let topo = Netlist.topo nl in
  for k = Array.length topo - 1 downto 0 do
    let i = topo.(k) in
    ipdom.(i) <-
      (if Cell.equal_kind (Netlist.kind nl i) Cell.Output then -1
       else of_fanouts i)
  done;
  (* sources (inputs, ties, sequential cells) are stems too; all their
     fanout sinks are non-source nodes computed above *)
  Array.iter
    (fun i -> if ipdom.(i) = -2 then ipdom.(i) <- of_fanouts i)
    t.sources;
  Netlist.iter_nodes
    (fun i nd ->
      if Cell.is_tie nd.Netlist.kind && ipdom.(i) = -2 then
        ipdom.(i) <- of_fanouts i)
    nl;
  ipdom

let global_ipdom t =
  Mutex.lock t.cm;
  let a =
    match t.ipdom with
    | Some a -> a
    | None ->
      let a = build_ipdom t in
      t.ipdom <- Some a;
      a
  in
  Mutex.unlock t.cm;
  a

let stem_dominators t s d =
  if s.last_dom_stem = d then s.last_dom
  else begin
    let ipdom = global_ipdom t in
    let acc = ref [] in
    let p = ref ipdom.(d) in
    while !p >= 0 do
      acc := !p :: !acc;
      p := ipdom.(!p)
    done;
    let a = Array.of_list (List.rev !acc) in
    s.last_dom_stem <- d;
    s.last_dom <- a;
    a
  end

(* Per-node fanout-cone cost estimate in one reverse-topological pass:
   est(i) = 1 + sum over combinational fanout sinks of est(sink),
   saturated.  Reconvergent fanout double-counts, which only exaggerates
   the nodes whose cones are genuinely large — fine for ordering. *)
let cost_cap = 1 lsl 20

let build_cost t =
  let nl = t.nl in
  let n = Netlist.length nl in
  let est = Array.make n 0 in
  let of_fanouts i =
    let acc = ref 1 in
    Array.iter
      (fun (sink, _pin) ->
        if !acc < cost_cap then
          if Cell.is_seq (Netlist.kind nl sink) then incr acc
          else acc := !acc + est.(sink))
      (Netlist.fanout nl i);
    min !acc cost_cap
  in
  let topo = Netlist.topo nl in
  for k = Array.length topo - 1 downto 0 do
    let i = topo.(k) in
    est.(i) <- of_fanouts i
  done;
  (* sources (inputs, ties, sequential cells): every fanout sink is a
     non-source node already computed above *)
  Array.iter (fun i -> if est.(i) = 0 then est.(i) <- of_fanouts i) t.sources;
  Netlist.iter_nodes
    (fun i nd ->
      if Cell.is_tie nd.Netlist.kind && est.(i) = 0 then
        est.(i) <- of_fanouts i)
    nl;
  est

let cone_cost t =
  Mutex.lock t.cm;
  let a =
    match t.cost with
    | Some a -> a
    | None ->
      let a = build_cost t in
      t.cost <- Some a;
      a
  in
  Mutex.unlock t.cm;
  a

(* Heavy-first schedule over work items: a permutation of [0, n) sorted
   by descending cone cost of [site k], ascending index on ties.  The
   stable tiebreak keeps same-site runs contiguous, preserving the
   one-entry cone/dominator caches of the walkers; drawing the heaviest
   cones first lets the pool's shrinking tail claims and work stealing
   even out the imbalance instead of serializing it behind one worker. *)
let order_by_cost t ~site n =
  let est = cone_cost t in
  (* materialize the keys first: [site] may fetch a record per call, and
     the comparator runs n log n times *)
  let key = Array.init n (fun k -> est.(site k)) in
  let order = Array.init n (fun k -> k) in
  Array.sort
    (fun a b ->
      let c = Int.compare key.(b) key.(a) in
      if c <> 0 then c else Int.compare a b)
    order;
  order

(* Content digest over everything that can change an analysis result:
   cell kinds, fanin wiring, net names and role assignments, in node
   order.  Two netlists with equal digests are behaviourally identical
   to every engine, so the digest is a sound memo key for derived
   artifacts (flow reports, implication databases, fixpoints). *)
let role_string = function
  | Netlist.Clock -> "CK"
  | Netlist.Reset -> "RS"
  | Netlist.Scan_enable -> "SE"
  | Netlist.Scan_in -> "SI"
  | Netlist.Scan_out -> "SO"
  | Netlist.Debug_control -> "DC"
  | Netlist.Debug_observe -> "DO"
  | Netlist.Address_reg i -> "AR" ^ string_of_int i
  | Netlist.Address_port i -> "AP" ^ string_of_int i

let compute_digest nl =
  let b = Buffer.create (Netlist.length nl * 16) in
  Buffer.add_string b (string_of_int (Netlist.length nl));
  Netlist.iter_nodes
    (fun i nd ->
      Buffer.add_char b '\n';
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b ' ';
      Buffer.add_string b (Cell.kind_name nd.Netlist.kind);
      Array.iter
        (fun f ->
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int f))
        nd.Netlist.fanin;
      match nd.Netlist.name with
      | None -> ()
      | Some s ->
        Buffer.add_char b '/';
        Buffer.add_string b s)
    nl;
  List.iter
    (fun (i, r) ->
      Buffer.add_char b '\n';
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b ':';
      Buffer.add_string b (role_string r))
    (Netlist.role_assignments nl);
  Digest.to_hex (Digest.string (Buffer.contents b))

let digest t =
  Mutex.lock t.cm;
  let d =
    match t.digest with
    | Some d -> d
    | None ->
      let d = compute_digest t.nl in
      t.digest <- Some d;
      d
  in
  Mutex.unlock t.cm;
  d

let make nl =
  let n = Netlist.length nl in
  let topo_pos = Array.make n (-1) in
  Array.iteri (fun k i -> topo_pos.(i) <- k) (Netlist.topo nl);
  let max_arity = ref 0 in
  Netlist.iter_nodes
    (fun _ nd ->
      let a = Array.length nd.Netlist.fanin in
      if a > !max_arity then max_arity := a)
    nl;
  {
    nl;
    sources = Array.append (Netlist.inputs nl) (Netlist.seq_nodes nl);
    topo_pos;
    max_arity = !max_arity;
    cones = Array.make n None;
    ipdom = None;
    cost = None;
    extra = [];
    digest = None;
    cm = Mutex.create ();
    cone_budget = memo_budget;
  }

(* Weak per-netlist memo, keyed by physical identity: analyses die with
   their netlist (the value's reference back to the key is exactly what
   ephemerons are for). *)
module Tbl = Ephemeron.K1.Make (struct
  type t = Netlist.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let global : t Tbl.t = Tbl.create 17
let gm = Mutex.create ()

let get nl =
  Mutex.lock gm;
  let a =
    match Tbl.find_opt global nl with
    | Some a -> a
    | None ->
      let a = make nl in
      Tbl.add global nl a;
      a
  in
  Mutex.unlock gm;
  a

let digest_of nl = digest (get nl)
