let node_label nl i =
  let nd = Netlist.node nl i in
  let name =
    match nd.Netlist.name with Some s -> s | None -> Printf.sprintf "n%d" i
  in
  Printf.sprintf "%s\\n%s" name (Cell.kind_name nd.Netlist.kind)

let shape (k : Cell.kind) =
  match k with
  | Cell.Input -> "invtriangle"
  | Cell.Output -> "triangle"
  | Cell.Dff | Cell.Dffr | Cell.Sdff | Cell.Sdffr -> "box"
  | Cell.Tie0 | Cell.Tie1 | Cell.Tiex -> "point"
  | _ -> "ellipse"

let prefix_of nl i =
  match (Netlist.node nl i).Netlist.name with
  | Some s -> (
    match String.index_opt s '/' with
    | Some k -> Some (String.sub s 0 k)
    | None -> None)
  | None -> None

let to_string ?(highlight = []) ?(cluster_prefixes = true) nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph netlist {\n  rankdir=LR;\n  node [fontsize=9];\n";
  let hl = Hashtbl.create 17 in
  List.iter (fun i -> Hashtbl.replace hl i ()) highlight;
  let emit_node i =
    let nd = Netlist.node nl i in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" i
         (node_label nl i)
         (shape nd.Netlist.kind)
         (if Hashtbl.mem hl i then ", style=filled, fillcolor=red" else ""))
  in
  if cluster_prefixes then begin
    (* group by hierarchical prefix *)
    let groups = Hashtbl.create 17 in
    Netlist.iter_nodes
      (fun i _ ->
        let p = Option.value ~default:"" (prefix_of nl i) in
        Hashtbl.replace groups p (i :: Option.value ~default:[] (Hashtbl.find_opt groups p)))
      nl;
    Hashtbl.iter
      (fun p members ->
        if p <> "" then
          Buffer.add_string buf
            (Printf.sprintf "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n" p p);
        List.iter
          (fun i ->
            if p <> "" then Buffer.add_string buf "  ";
            emit_node i)
          (List.rev members);
        if p <> "" then Buffer.add_string buf "  }\n")
      groups
  end
  else Netlist.iter_nodes (fun i _ -> emit_node i) nl;
  Netlist.iter_nodes
    (fun i nd ->
      Array.iteri
        (fun p d ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s\", fontsize=7];\n" d i
               (Cell.input_pin_name nd.Netlist.kind p)))
        nd.Netlist.fanin)
    nl;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let neighbourhood nl center ~radius =
  let seen = Hashtbl.create 97 in
  let rec go i r =
    if r >= 0 && not (Hashtbl.mem seen i) then begin
      Hashtbl.replace seen i ();
      Array.iter (fun d -> go d (r - 1)) (Netlist.fanin nl i);
      Array.iter (fun (s, _) -> go s (r - 1)) (Netlist.fanout nl i)
    end
    else if r >= 0 then ()
  in
  go center radius;
  Hashtbl.fold (fun i () acc -> i :: acc) seen [] |> List.sort compare

let to_file ?highlight ?cluster_prefixes nl path =
  let oc = open_out path in
  output_string oc (to_string ?highlight ?cluster_prefixes nl);
  close_out oc
