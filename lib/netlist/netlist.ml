open Olfu_logic

type node = {
  kind : Cell.kind;
  fanin : int array;
  name : string option;
}

type role =
  | Clock
  | Reset
  | Scan_enable
  | Scan_in
  | Scan_out
  | Debug_control
  | Debug_observe
  | Address_reg of int
  | Address_port of int

let equal_role (a : role) b = a = b

let pp_role ppf = function
  | Clock -> Format.pp_print_string ppf "clock"
  | Reset -> Format.pp_print_string ppf "reset"
  | Scan_enable -> Format.pp_print_string ppf "scan-enable"
  | Scan_in -> Format.pp_print_string ppf "scan-in"
  | Scan_out -> Format.pp_print_string ppf "scan-out"
  | Debug_control -> Format.pp_print_string ppf "debug-control"
  | Debug_observe -> Format.pp_print_string ppf "debug-observe"
  | Address_reg i -> Format.fprintf ppf "address-reg[%d]" i
  | Address_port i -> Format.fprintf ppf "address-port[%d]" i

type t = {
  nodes : node array;
  fanouts : (int * int) array array;
  names : (string, int) Hashtbl.t;
  roles : (int, role list) Hashtbl.t;
  inputs : int array;
  outputs : int array;
  seqs : int array;
  order : int array;  (* combinational evaluation order *)
  levels : int array;
}

type error =
  | Bad_arity of { node : int; expected : int; got : int }
  | Dangling_fanin of { node : int; pin : int; target : int }
  | Duplicate_name of string
  | Combinational_loop of int list

let pp_error ppf = function
  | Bad_arity { node; expected; got } ->
    Format.fprintf ppf "node %d: expected %d fanins, got %d" node expected got
  | Dangling_fanin { node; pin; target } ->
    Format.fprintf ppf "node %d pin %d: dangling reference to %d" node pin
      target
  | Duplicate_name s -> Format.fprintf ppf "duplicate net name %S" s
  | Combinational_loop ns ->
    Format.fprintf ppf "combinational loop through nodes %a"
      Format.(
        pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ",")
          pp_print_int)
      ns

let is_source (k : Cell.kind) =
  match k with
  | Input | Tie0 | Tie1 | Tiex -> true
  | k -> Cell.is_seq k

let validate nodes =
  let errs = ref [] in
  let n = Array.length nodes in
  Array.iteri
    (fun i nd ->
      let got = Array.length nd.fanin in
      (match Cell.arity nd.kind with
      | Some expected ->
        if got <> expected then
          errs := Bad_arity { node = i; expected; got } :: !errs
      | None ->
        if got < Cell.min_arity nd.kind then
          errs := Bad_arity { node = i; expected = 1; got } :: !errs);
      Array.iteri
        (fun pin target ->
          if target < 0 || target >= n then
            errs := Dangling_fanin { node = i; pin; target } :: !errs)
        nd.fanin)
    nodes;
  let seen = Hashtbl.create 97 in
  Array.iter
    (fun nd ->
      match nd.name with
      | None -> ()
      | Some s ->
        if Hashtbl.mem seen s then errs := Duplicate_name s :: !errs
        else Hashtbl.add seen s ())
    nodes;
  List.rev !errs

(* Kahn's algorithm over the combinational subgraph: sequential cells,
   inputs and ties are value sources, everything else must be orderable. *)
let topo_sort nodes fanouts =
  let n = Array.length nodes in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun i nd ->
      if not (is_source nd.kind) then
        Array.iter
          (fun drv -> if not (is_source nodes.(drv).kind) then
              indeg.(i) <- indeg.(i) + 1)
          nd.fanin)
    nodes;
  let queue = Queue.create () in
  Array.iteri
    (fun i nd -> if (not (is_source nd.kind)) && indeg.(i) = 0 then
        Queue.add i queue)
    nodes;
  let order = Vec.create () in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    ignore (Vec.push order i : int);
    Array.iter
      (fun (sink, _pin) ->
        if not (is_source nodes.(sink).kind) then begin
          indeg.(sink) <- indeg.(sink) - 1;
          if indeg.(sink) = 0 then Queue.add sink queue
        end)
      fanouts.(i)
  done;
  let ordered = Vec.to_array order in
  let comb_total =
    Array.fold_left
      (fun acc nd -> if is_source nd.kind then acc else acc + 1)
      0 nodes
  in
  if Array.length ordered = comb_total then Ok ordered
  else begin
    let in_loop = ref [] in
    Array.iteri
      (fun i nd ->
        if (not (is_source nd.kind)) && indeg.(i) > 0 then
          in_loop := i :: !in_loop)
      nodes;
    Error (Combinational_loop (List.rev !in_loop))
  end

let compute_fanouts nodes =
  let n = Array.length nodes in
  let counts = Array.make n 0 in
  Array.iter
    (fun nd -> Array.iter (fun d -> counts.(d) <- counts.(d) + 1) nd.fanin)
    nodes;
  let fanouts = Array.map (fun c -> Array.make c (-1, -1)) counts in
  let fill = Array.make n 0 in
  Array.iteri
    (fun i nd ->
      Array.iteri
        (fun pin d ->
          fanouts.(d).(fill.(d)) <- (i, pin);
          fill.(d) <- fill.(d) + 1)
        nd.fanin)
    nodes;
  fanouts

let create ?(roles = []) nodes =
  match validate nodes with
  | _ :: _ as errs -> Error errs
  | [] -> (
    let fanouts = compute_fanouts nodes in
    match topo_sort nodes fanouts with
    | Error e -> Error [ e ]
    | Ok order ->
      let n = Array.length nodes in
      let names = Hashtbl.create (max 16 n) in
      Array.iteri
        (fun i nd ->
          match nd.name with
          | Some s -> Hashtbl.replace names s i
          | None -> ())
        nodes;
      let role_tbl = Hashtbl.create 97 in
      List.iter
        (fun (i, r) ->
          let old = Option.value ~default:[] (Hashtbl.find_opt role_tbl i) in
          if not (List.exists (equal_role r) old) then
            Hashtbl.replace role_tbl i (r :: old))
        roles;
      let levels = Array.make n 0 in
      Array.iter
        (fun i ->
          let m = ref 0 in
          Array.iter
            (fun d -> if levels.(d) > !m then m := levels.(d))
            nodes.(i).fanin;
          levels.(i) <- !m + 1)
        order;
      let filter p =
        let v = Vec.create () in
        Array.iteri (fun i nd -> if p nd.kind then ignore (Vec.push v i : int))
          nodes;
        Vec.to_array v
      in
      Ok
        {
          nodes;
          fanouts;
          names;
          roles = role_tbl;
          inputs = filter (Cell.equal_kind Cell.Input);
          outputs = filter (Cell.equal_kind Cell.Output);
          seqs = filter Cell.is_seq;
          order;
          levels;
        })

let create_exn ?roles nodes =
  match create ?roles nodes with
  | Ok t -> t
  | Error errs ->
    invalid_arg
      (Format.asprintf "Netlist.create_exn: %a"
         Format.(
           pp_print_list
             ~pp_sep:(fun ppf () -> pp_print_string ppf "; ")
             pp_error)
         errs)

let length t = Array.length t.nodes
let node t i = t.nodes.(i)
let kind t i = t.nodes.(i).kind
let fanin t i = t.nodes.(i).fanin
let name t i = t.nodes.(i).name
let fanout t i = t.fanouts.(i)
let find t s = Hashtbl.find_opt t.names s

let find_exn t s =
  match find t s with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Netlist.find_exn: no net %S" s)

let inputs t = t.inputs
let outputs t = t.outputs
let seq_nodes t = t.seqs
let topo t = t.order
let roles_of t i = Option.value ~default:[] (Hashtbl.find_opt t.roles i)
let has_role t i r = List.exists (equal_role r) (roles_of t i)

let nodes_with_role t r =
  let v = Vec.create () in
  Array.iteri
    (fun i _ -> if has_role t i r then ignore (Vec.push v i : int))
    t.nodes;
  Vec.to_array v

let role_assignments t =
  Hashtbl.fold
    (fun i rs acc -> List.fold_left (fun acc r -> (i, r) :: acc) acc rs)
    t.roles []

let level t i = t.levels.(i)

let iter_nodes f t = Array.iteri f t.nodes

let pp_summary ppf t =
  let count p = Array.fold_left (fun a nd -> if p nd then a + 1 else a) 0 t.nodes in
  let gates =
    count (fun nd ->
        (not (Cell.is_seq nd.kind))
        && nd.kind <> Cell.Input && nd.kind <> Cell.Output
        && not (Cell.is_tie nd.kind))
  in
  let depth = Array.fold_left max 0 t.levels in
  Format.fprintf ppf
    "nodes=%d gates=%d ffs=%d inputs=%d outputs=%d depth=%d" (length t) gates
    (Array.length t.seqs) (Array.length t.inputs) (Array.length t.outputs)
    depth

let netlist_create = create

module Builder = struct
  type bnode = {
    mutable bkind : Cell.kind;
    mutable bfanin : int array;
    mutable bname : string option;
    mutable broles : role list;
    mutable deleted : bool;
  }

  type builder = { v : bnode Vec.t }
  type t = builder

  let create () = { v = Vec.create () }

  let add b kind fanin name roles =
    Vec.push b.v
      { bkind = kind; bfanin = fanin; bname = name; broles = roles;
        deleted = false }

  let input ?(roles = []) b name =
    add b Cell.Input [||] (Some name) roles

  let tie b (v : Logic4.t) =
    let k =
      match v with
      | Logic4.L0 -> Cell.Tie0
      | Logic4.L1 -> Cell.Tie1
      | Logic4.X | Logic4.Z -> Cell.Tiex
    in
    add b k [||] None []

  let gate ?name ?(roles = []) b kind ins =
    (match Cell.arity kind with
    | Some n when n <> List.length ins ->
      invalid_arg
        (Printf.sprintf "Builder.gate %s: expected %d fanins, got %d"
           (Cell.kind_name kind) n (List.length ins))
    | _ ->
      if List.length ins < Cell.min_arity kind then
        invalid_arg
          (Printf.sprintf "Builder.gate %s: too few fanins"
             (Cell.kind_name kind)));
    add b kind (Array.of_list ins) name roles

  let output ?(roles = []) b name src =
    add b Cell.Output [| src |] (Some name) roles

  let buf ?name b a = gate ?name b Cell.Buf [ a ]
  let not_ ?name b a = gate ?name b Cell.Not [ a ]
  let and2 ?name b a c = gate ?name b Cell.And [ a; c ]
  let or2 ?name b a c = gate ?name b Cell.Or [ a; c ]
  let xor2 ?name b a c = gate ?name b Cell.Xor [ a; c ]
  let nand2 ?name b a c = gate ?name b Cell.Nand [ a; c ]
  let nor2 ?name b a c = gate ?name b Cell.Nor [ a; c ]
  let xnor2 ?name b a c = gate ?name b Cell.Xnor [ a; c ]

  let mux2 ?name b ~sel ~a ~b:bb = gate ?name b Cell.Mux2 [ sel; a; bb ]
  let dff ?name ?roles b ~d = gate ?name ?roles b Cell.Dff [ d ]
  let dffr ?name ?roles b ~d ~rstn = gate ?name ?roles b Cell.Dffr [ d; rstn ]

  let sdff ?name ?roles b ~d ~si ~se =
    gate ?name ?roles b Cell.Sdff [ d; si; se ]

  let sdffr ?name ?roles b ~d ~si ~se ~rstn =
    gate ?name ?roles b Cell.Sdffr [ d; si; se; rstn ]

  let add_role b i r =
    let nd = Vec.get b.v i in
    if not (List.exists (equal_role r) nd.broles) then
      nd.broles <- r :: nd.broles

  let set_name b i s = (Vec.get b.v i).bname <- Some s
  let length b = Vec.length b.v
  let node_kind b i = (Vec.get b.v i).bkind
  let node_fanin b i = Array.copy (Vec.get b.v i).bfanin

  let set_kind b i k =
    let nd = Vec.get b.v i in
    nd.bkind <- k;
    if Cell.arity k = Some 0 then nd.bfanin <- [||]

  let set_fanin b i fanin = (Vec.get b.v i).bfanin <- Array.copy fanin
  let remove_node b i = (Vec.get b.v i).deleted <- true

  let freeze b =
    let n = Vec.length b.v in
    let remap = Array.make n (-1) in
    let kept = Vec.create () in
    Vec.iteri
      (fun i nd -> if not nd.deleted then remap.(i) <- Vec.push kept (i, nd))
      b.v;
    let kept = Vec.to_array kept in
    let dangling = ref [] in
    let nodes =
      Array.map
        (fun (_old, nd) ->
          {
            kind = nd.bkind;
            fanin =
              Array.map
                (fun d ->
                  if d < 0 || d >= n || remap.(d) < 0 then -1 else remap.(d))
                nd.bfanin;
            name = nd.bname;
          })
        kept
    in
    Array.iteri
      (fun i nd ->
        Array.iteri
          (fun pin d ->
            if d < 0 then
              dangling := Dangling_fanin { node = i; pin; target = -1 }
                          :: !dangling)
          nd.fanin)
      nodes;
    if !dangling <> [] then Error (List.rev !dangling)
    else
      let roles =
        Array.to_list kept
        |> List.concat_map (fun (old, nd) ->
               List.map (fun r -> (remap.(old), r)) nd.broles)
      in
      netlist_create ~roles nodes

  let freeze_exn b =
    match freeze b with
    | Ok t -> t
    | Error errs ->
      invalid_arg
        (Format.asprintf "Builder.freeze_exn: %a"
           Format.(
             pp_print_list
               ~pp_sep:(fun ppf () -> pp_print_string ppf "; ")
               pp_error)
           errs)

  let of_netlist t =
    let b = create () in
    Array.iter
      (fun nd ->
        ignore
          (add b nd.kind (Array.copy nd.fanin) nd.name [] : int))
      t.nodes;
    List.iter (fun (i, r) -> add_role b i r) (role_assignments t);
    b
end
