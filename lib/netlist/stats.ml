type t = {
  nodes : int;
  gates : int;
  flops : int;
  scan_flops : int;
  inputs : int;
  outputs : int;
  ties : int;
  depth : int;
  by_kind : (Cell.kind * int) list;
}

let of_netlist nl =
  let tbl = Hashtbl.create 17 in
  let bump k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  Netlist.iter_nodes (fun _ nd -> bump nd.Netlist.kind) nl;
  let count k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let depth = ref 0 in
  Netlist.iter_nodes
    (fun i _ -> if Netlist.level nl i > !depth then depth := Netlist.level nl i)
    nl;
  let flops =
    count Cell.Dff + count Cell.Dffr + count Cell.Sdff + count Cell.Sdffr
  in
  let ties = count Cell.Tie0 + count Cell.Tie1 + count Cell.Tiex in
  let by_kind =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  {
    nodes = Netlist.length nl;
    gates =
      Netlist.length nl - flops - ties - count Cell.Input - count Cell.Output;
    flops;
    scan_flops = count Cell.Sdff + count Cell.Sdffr;
    inputs = count Cell.Input;
    outputs = count Cell.Output;
    ties;
    depth = !depth;
    by_kind;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>nodes: %d@,gates: %d@,flops: %d (scan %d)@,ports: %d in / %d out@,\
     ties: %d@,depth: %d@]"
    s.nodes s.gates s.flops s.scan_flops s.inputs s.outputs s.ties s.depth
