open Olfu_logic

(** Memoized per-netlist structural analysis shared by the simulation and
    classification engines.

    One [Analysis.t] per netlist caches what every fault-oriented engine
    recomputes otherwise: the source-node vector (inputs followed by
    flip-flops), topological positions, and {e fanout-cone schedules} — for
    a stem [d], the topologically ordered array of combinational nodes its
    value can reach, with per-node last-sink positions enabling early exit
    when an event frontier dies out.  Cone schedules are memoized under a
    global entry budget (large netlists fall back to per-call builds using
    the caller's scratch, so memory stays bounded).

    Domain safety: an [Analysis.t] may be shared by concurrent domains; the
    cone memo is mutex-protected.  A {!Scratch.t} is single-owner state —
    create one per worker domain. *)

type t

val get : Netlist.t -> t
(** Memoized accessor (weak per-netlist cache, keyed by physical
    identity): repeated calls on the same netlist return the same
    analysis, from any domain. *)

type cache = ..
(** Extension point for downstream engines that want a derived structure
    memoized per netlist without a dependency from this library onto
    theirs (the slice graph of [Olfu_slice] is the canonical user): the
    engine declares [type Analysis.cache += My_thing of t'] and stores
    one value per analysis.  No [Obj.magic]: the extensible variant is
    the type-safe version of the same trick. *)

val find_cache : t -> (cache -> 'a option) -> 'a option
(** First cached entry the projection accepts, under the analysis lock.
    Entries are kept in publication order, so concurrent builders race
    benignly: the first published value of a constructor is the one
    every later call sees. *)

val add_cache : t -> cache -> unit
(** Appends a cache entry (never replaces — see {!find_cache}). *)

val digest : t -> string
(** Hex content digest of the netlist: cell kinds, fanin wiring, net
    names and role assignments in node order.  Netlists with equal
    digests are indistinguishable to every engine, so the digest is a
    sound memo key for derived artifacts — the analysis service keys its
    flow-report/implication/fixpoint caches on it.  Computed once per
    analysis (lazily, under the analysis lock). *)

val digest_of : Netlist.t -> string
(** [digest (get nl)]. *)

val netlist : t -> Netlist.t

val sources : t -> int array
(** Primary inputs followed by sequential cells — the pattern-assignment
    order of the fault simulators.  Computed once (hoists the
    [Array.append] out of hot loops). *)

val max_arity : t -> int

val topo_pos : t -> int array
(** Topological evaluation position per node ([-1] for source nodes,
    which precede the combinational schedule).  A node [f] with
    [topo_pos.(f) < topo_pos.(d)] can never lie inside the fanout cone
    of stem [d] — the cheap membership pre-filter of the conflict
    engine. *)

(** Fanout-cone schedule of one stem. *)
type cone = {
  sched : int array;
      (** combinational (and output-marker) nodes strictly downstream of
          the stem, in topological evaluation order *)
  last_sink : int array;
      (** [last_sink.(k)]: greatest schedule position with [sched.(k)] as
          a fanin, [-1] when nothing in the schedule consumes it *)
  stem_last : int;
      (** greatest schedule position with the stem itself as a fanin *)
  outs : int array;
      (** [Output]-marker nodes in the cone (including the stem when the
          stem is an output marker) *)
  seqs : int array;
      (** sequential nodes with at least one fanin in the cone or driven
          by the stem — the capture observation points of the cone *)
}

(** Per-worker mutable scratch: value/stamp buffers sized to the netlist,
    per-arity operand arrays, and a one-entry cone cache.  Never share a
    scratch between domains. *)
module Scratch : sig
  type analysis := t
  type t

  val create : analysis -> t

  val fval : t -> Dualrail.t array
  (** Faulty-value buffer, valid only where {!stamp} equals the current
      generation. *)

  val stamp : t -> int array
  val fresh_gen : t -> int
  (** Bumps and returns the generation, invalidating previous stamps. *)

  val ins : t -> int -> Dualrail.t array
  (** Preallocated operand buffer of exactly the given arity. *)
end

val cone : t -> Scratch.t -> int -> cone
(** [cone t scratch d]: the fanout-cone schedule of stem [d], from the
    scratch's one-entry cache, the shared memo, or built on the fly
    (memoized while the entry budget lasts). *)

val cone_cost : t -> int array
(** Per-node fanout-cone cost estimate: [1 +] the summed estimates of
    all combinational fanout sinks (sequential sinks count 1), saturated
    at [2^20], in one reverse-topological pass memoized on the analysis.
    Reconvergent fanout double-counts, which only exaggerates genuinely
    large cones — an ordering heuristic, not a node count. *)

val order_by_cost : t -> site:(int -> int) -> int -> int array
(** [order_by_cost t ~site n]: a permutation of [0, n) sorted by
    descending {!cone_cost} of [site k], ascending index on ties.  The
    stable tiebreak keeps same-site runs contiguous (preserving the
    engines' one-entry cone/dominator caches); heavy-first draw lets the
    pool's shrinking tail claims and work stealing balance skewed cone
    sizes instead of serializing them behind one worker. *)

val stem_dominators : t -> Scratch.t -> int -> int array
(** [stem_dominators t scratch d]: the cone nodes every path from stem
    [d] to any structural observation exit (output marker or flip-flop
    capture pin) passes through — the unique-sensitization gates of the
    stem — in topological order, stem excluded.  A fault effect on [d]
    can only be observed by propagating through every one of them, so
    their side inputs are {e necessary} assignments for any test.
    Purely structural (observation exits are not filtered by mission
    observability, which under-approximates the dominator set and keeps
    the necessity reading sound).  Extracted as a chain walk over a
    global immediate post-dominator tree built once per analysis, so the
    per-stem cost is proportional to the chain length. *)
