type kind =
  | Input
  | Output
  | Tie0
  | Tie1
  | Tiex
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux2
  | Dff
  | Dffr
  | Sdff
  | Sdffr

let equal_kind (a : kind) b = a = b

let kind_name = function
  | Input -> "INPUT"
  | Output -> "OUTPUT"
  | Tie0 -> "TIE0"
  | Tie1 -> "TIE1"
  | Tiex -> "TIEX"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Dffr -> "DFFR"
  | Sdff -> "SDFF"
  | Sdffr -> "SDFFR"

let all_kinds =
  [ Input; Output; Tie0; Tie1; Tiex; Buf; Not; And; Nand; Or; Nor; Xor; Xnor;
    Mux2; Dff; Dffr; Sdff; Sdffr ]

let kind_of_name s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun k -> kind_name k = s) all_kinds

let arity = function
  | Input | Tie0 | Tie1 | Tiex -> Some 0
  | Output | Buf | Not | Dff -> Some 1
  | Dffr -> Some 2
  | Mux2 | Sdff -> Some 3
  | Sdffr -> Some 4
  | And | Nand | Or | Nor | Xor | Xnor -> None

let min_arity k = match arity k with Some n -> n | None -> 1
let is_seq = function Dff | Dffr | Sdff | Sdffr -> true | _ -> false
let is_tie = function Tie0 | Tie1 | Tiex -> true | _ -> false
let has_clock = is_seq

let input_pin_name k i =
  match k, i with
  | Output, 0 -> "A"
  | (Buf | Not), 0 -> "A"
  | Mux2, 0 -> "S"
  | Mux2, 1 -> "A"
  | Mux2, 2 -> "B"
  | (Dff | Dffr | Sdff | Sdffr), 0 -> "D"
  | Dffr, 1 -> "RSTN"
  | (Sdff | Sdffr), 1 -> "SI"
  | (Sdff | Sdffr), 2 -> "SE"
  | Sdffr, 3 -> "RSTN"
  | _ -> Printf.sprintf "I%d" i

module Pin = struct
  type t = Out | In of int | Clk

  let equal (a : t) b = a = b

  let rank = function Out -> -2 | Clk -> -1 | In i -> i
  let compare a b = Int.compare (rank a) (rank b)

  let to_string = function
    | Out -> "OUT"
    | Clk -> "CLK"
    | In i -> Printf.sprintf "IN%d" i

  let pp ppf p = Format.pp_print_string ppf (to_string p)
end

let pins k ~fanin_count =
  let ins = List.init fanin_count (fun i -> Pin.In i) in
  let clk = if has_clock k then [ Pin.Clk ] else [] in
  (Pin.Out :: clk) @ ins

let pp_kind ppf k = Format.pp_print_string ppf (kind_name k)
