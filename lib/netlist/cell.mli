(** Cell library of the gate-level netlist IR.

    Every cell has exactly one output.  Sequential cells (the [Dff] family)
    are clocked by an implicit global clock; the clock pin still exists as a
    fault site ({!Pin.Clk}).  Input pin order is fixed per kind and
    documented below. *)

type kind =
  | Input  (** primary input; no fanin *)
  | Output  (** primary-output marker; fanin [[src]]; output echoes input *)
  | Tie0  (** constant 0 *)
  | Tie1  (** constant 1 *)
  | Tiex  (** constant unknown (a cut net) *)
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor  (** [And]..[Xnor]: n-input, n >= 1 *)
  | Mux2  (** fanin [[sel; a; b]]; output [a] when [sel]=0, [b] when 1 *)
  | Dff  (** fanin [[d]] *)
  | Dffr  (** fanin [[d; rstn]]; async active-low reset to 0 *)
  | Sdff  (** scan cell; fanin [[d; si; se]]; captures [si] when [se]=1 *)
  | Sdffr
      (** resettable scan cell; fanin [[d; si; se; rstn]]; async active-low
          reset to 0 dominates the scan path *)

val equal_kind : kind -> kind -> bool
val kind_name : kind -> string
val kind_of_name : string -> kind option

val arity : kind -> int option
(** Required fanin count; [None] for the variadic gates ([And]..[Xnor]). *)

val min_arity : kind -> int
val is_seq : kind -> bool
val is_tie : kind -> bool

val has_clock : kind -> bool
(** True for the [Dff] family. *)

val input_pin_name : kind -> int -> string
(** Conventional pin name, e.g. [Sdff] pins 0..2 are "D", "SI", "SE". *)

(** Pin designators used by fault sites and manipulations. *)
module Pin : sig
  type t =
    | Out  (** the cell output (the stem of its net) *)
    | In of int  (** fanin pin [i] (a fanout branch of the driving net) *)
    | Clk  (** clock pin of a sequential cell *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

val pins : kind -> fanin_count:int -> Pin.t list
(** All fault-site pins of a cell of this kind, output first. *)

val pp_kind : Format.formatter -> kind -> unit
