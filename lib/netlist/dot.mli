(** Graphviz export of a netlist (or of a fault's neighbourhood) for
    visual debugging of manipulations and untestability verdicts. *)

val to_string :
  ?highlight:int list ->
  ?cluster_prefixes:bool ->
  Netlist.t ->
  string
(** [highlight] nodes are filled red.  [cluster_prefixes] (default true)
    groups nodes into subgraph clusters by hierarchical name prefix
    ("alu/", "btb/", ...). *)

val neighbourhood : Netlist.t -> int -> radius:int -> int list
(** Nodes within [radius] edges of the given node, for focused dumps of
    big netlists. *)

val to_file :
  ?highlight:int list ->
  ?cluster_prefixes:bool ->
  Netlist.t ->
  string ->
  unit
