(** Netlist census used by reports and the experiment harness. *)

type t = {
  nodes : int;
  gates : int;  (** combinational cells, excluding ports and ties *)
  flops : int;
  scan_flops : int;
  inputs : int;
  outputs : int;
  ties : int;
  depth : int;  (** maximum logic level *)
  by_kind : (Cell.kind * int) list;  (** descending by count *)
}

val of_netlist : Netlist.t -> t
val pp : Format.formatter -> t -> unit
