open Olfu_logic
open Olfu_netlist
module Ternary = Olfu_atpg.Ternary
module Bmc = Olfu_atpg.Bmc
module Fault = Olfu_fault.Fault

type edges = {
  supports : int array array;
  consumers : int array array;
  in_deps : int array array;
  out_deps : (int * int array) array;
}

type t = {
  nl : Netlist.t;
  hard : Logic4.t array;
  mission : Logic4.t array;
  flops : int array;
  ford : int array;
  structural : edges;
  hard_edges : edges;
  mission_edges : edges;
}

(* ------------------------------------------------------------------ *)
(* Severing: which fanin positions of a node are still read            *)
(* ------------------------------------------------------------------ *)

(* The one pin a decided select makes unreadable, or [-1].  A constant
   select pin itself (and any other constant fanin) is severed by the
   per-fanin constant check at the use site, so only the un-selected
   data pin needs special treatment here. *)
let dead_pin cval nl d =
  let fi = Netlist.fanin nl d in
  match Netlist.kind nl d with
  | Cell.Mux2 -> (
      (* fanin [sel; a; b]; out = a when sel = 0 *)
      match cval fi.(0) with Logic4.L0 -> 2 | Logic4.L1 -> 1 | _ -> -1)
  | Cell.Sdff | Cell.Sdffr -> (
      (* fanin [d; si; se; ...]; captures si when se = 1 *)
      match cval fi.(2) with Logic4.L0 -> 1 | Logic4.L1 -> 0 | _ -> -1)
  | _ -> -1

let iter_live_fanins cval nl d f =
  let dead = dead_pin cval nl d in
  Array.iteri (fun p e -> if p <> dead then f p e) (Netlist.fanin nl d)

(* ------------------------------------------------------------------ *)
(* Flop-level dependency edges under a constant valuation              *)
(* ------------------------------------------------------------------ *)

let sorted_uniq l = Array.of_list (List.sort_uniq Int.compare l)

let build_edges nl flops ford consts =
  let n = Netlist.length nl in
  let nf = Array.length flops in
  let cval d = consts.(d) in
  let vis = Array.make n 0 in
  let gen = ref 0 in
  (* backward combinational cone of the given seed nodes' live fanins:
     flop ordinals and non-constant primary inputs it still reads *)
  let cone_deps seeds =
    incr gen;
    let g = !gen in
    let sup = ref [] and ins = ref [] in
    let stack = ref [] in
    let visit e =
      if vis.(e) <> g then begin
        vis.(e) <- g;
        if not (Logic4.is_binary consts.(e)) then
          let k = Netlist.kind nl e in
          if Cell.is_seq k then sup := ford.(e) :: !sup
          else
            match k with
            | Cell.Input -> ins := e :: !ins
            | Cell.Tie0 | Cell.Tie1 | Cell.Tiex -> ()
            | _ -> stack := e :: !stack
      end
    in
    List.iter visit seeds;
    let rec drain () =
      match !stack with
      | [] -> ()
      | e :: tl ->
        stack := tl;
        iter_live_fanins cval nl e (fun _ d -> visit d);
        drain ()
    in
    drain ();
    (sorted_uniq !sup, sorted_uniq !ins)
  in
  let live_seeds d =
    let acc = ref [] in
    iter_live_fanins cval nl d (fun _ e -> acc := e :: !acc);
    !acc
  in
  let supports = Array.make nf [||] in
  let in_deps = Array.make nf [||] in
  Array.iteri
    (fun k f ->
      let sup, ins = cone_deps (live_seeds f) in
      supports.(k) <- sup;
      in_deps.(k) <- ins)
    flops;
  let out_deps =
    Array.map
      (fun o ->
        let sup, _ = cone_deps (live_seeds o) in
        (o, sup))
      (Netlist.outputs nl)
  in
  let cons = Array.make nf [] in
  Array.iteri
    (fun k sup -> Array.iter (fun s -> cons.(s) <- k :: cons.(s)) sup)
    supports;
  let consumers = Array.map sorted_uniq cons in
  { supports; consumers; in_deps; out_deps }

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let default_assume nl =
  Array.to_list (Netlist.inputs nl)
  |> List.filter_map (fun i ->
         if Netlist.has_role nl i Netlist.Debug_control then
           Some (i, Logic4.L0)
         else None)

let build ?assume nl =
  let assume =
    match assume with Some a -> a | None -> default_assume nl
  in
  (* hard constants: per-cycle, state-free — valid at every cycle of any
     BMC encoding (flop outputs are X, so no steady-state claim leaks
     into a free initial state); reset inactivity is the only
     environment fact, because every bounded encoding holds it *)
  let hard = (Ternary.run ~ff_mode:Ternary.Cut nl).Ternary.values in
  let mission =
    (Ternary.run ~ff_mode:Ternary.Steady_state ~assume nl).Ternary.values
  in
  let n = Netlist.length nl in
  let flops = Netlist.seq_nodes nl in
  let ford = Array.make n (-1) in
  Array.iteri (fun k f -> ford.(f) <- k) flops;
  let xs = Array.make n Logic4.X in
  {
    nl;
    hard;
    mission;
    flops;
    ford;
    structural = build_edges nl flops ford xs;
    hard_edges = build_edges nl flops ford hard;
    mission_edges = build_edges nl flops ford mission;
  }

type Analysis.cache += Slice_graph of t

let find a =
  Analysis.find_cache a (function Slice_graph g -> Some g | _ -> None)

let get nl =
  let a = Analysis.get nl in
  match find a with
  | Some g -> g
  | None ->
    Analysis.add_cache a (Slice_graph (build nl));
    (* re-read: if a sibling domain published first, its value wins *)
    Option.get (find a)

(* ------------------------------------------------------------------ *)
(* Flop-level closures and statistics                                  *)
(* ------------------------------------------------------------------ *)

let closure adj seeds =
  let mark = Array.make (Array.length adj) false in
  let rec go k =
    if not mark.(k) then begin
      mark.(k) <- true;
      Array.iter go adj.(k)
    end
  in
  List.iter go seeds;
  mark

let backward_flops e seeds = closure e.supports seeds
let forward_flops e seeds = closure e.consumers seeds

let backward_sizes g e =
  Array.mapi
    (fun k _ ->
      let m = backward_flops e [ k ] in
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m)
    g.flops

type dist = {
  count : int;
  min_ : int;
  max_ : int;
  mean : float;
  median : int;
  p90 : int;
}

let dist_of a =
  let count = Array.length a in
  if count = 0 then
    { count = 0; min_ = 0; max_ = 0; mean = 0.; median = 0; p90 = 0 }
  else begin
    let s = Array.copy a in
    Array.sort Int.compare s;
    let q p = s.(min (count - 1) (p * count / 100)) in
    {
      count;
      min_ = s.(0);
      max_ = s.(count - 1);
      mean =
        float_of_int (Array.fold_left ( + ) 0 s) /. float_of_int count;
      median = q 50;
      p90 = q 90;
    }
  end

type scc = { comp_of : int array; comps : int array array }

(* Tarjan over the flop support graph; components are emitted callees
   first, i.e. ids are a reverse-topological numbering of the
   condensation DAG. *)
let scc e n =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp_of = Array.make n (-1) in
  let stack = ref [] in
  let next = ref 0 in
  let comps = ref [] in
  let ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Array.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          if low.(w) < low.(v) then low.(v) <- low.(w)
        end
        else if on_stack.(w) && index.(w) < low.(v) then
          low.(v) <- index.(w))
      e.supports.(v);
    if low.(v) = index.(v) then begin
      let members = ref [] in
      let stop = ref false in
      while not !stop do
        match !stack with
        | [] -> stop := true
        | w :: tl ->
          stack := tl;
          on_stack.(w) <- false;
          comp_of.(w) <- !ncomp;
          members := w :: !members;
          if w = v then stop := true
      done;
      comps := sorted_uniq !members :: !comps;
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  { comp_of; comps = Array.of_list (List.rev !comps) }

let flop_name g k =
  match Netlist.name g.nl g.flops.(k) with
  | Some s -> s
  | None -> Printf.sprintf "ff%d" g.flops.(k)

let condensation_dot g e =
  let n = Array.length g.flops in
  let c = scc e n in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph slice {\n  rankdir=LR;\n";
  Array.iteri
    (fun i members ->
      Buffer.add_string buf
        (Printf.sprintf "  c%d [label=\"%s (%d)\"];\n" i
           (flop_name g members.(0))
           (Array.length members)))
    c.comps;
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun k sup ->
      Array.iter
        (fun s ->
          let a = c.comp_of.(k) and b = c.comp_of.(s) in
          if a <> b && not (Hashtbl.mem seen (a, b)) then begin
            Hashtbl.add seen (a, b) ();
            Buffer.add_string buf (Printf.sprintf "  c%d -> c%d;\n" a b)
          end)
        sup)
    e.supports;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reduced machines                                                    *)
(* ------------------------------------------------------------------ *)

type reduced = {
  rnl : Netlist.t;
  new_of_old : int array;
  old_of_new : int array;
}

let no_taint _ = false

let cert_fail fmt = Printf.ksprintf failwith ("slice certify: " ^^ fmt)

(* Strict map validation against the builder's inputs.  [cut d] marks
   old sequential nodes rebuilt as free inputs; [cval] is the severing
   valuation the machine was built with. *)
let certify_with g r ~cut ~cval =
  let nl = g.nl in
  let nn = Netlist.length r.rnl in
  if Array.length r.new_of_old <> Netlist.length nl then
    cert_fail "new_of_old length %d <> netlist length %d"
      (Array.length r.new_of_old) (Netlist.length nl);
  Array.iteri
    (fun m d ->
      if d >= 0 && r.new_of_old.(d) <> m then
        cert_fail "old_of_new.(%d) = %d but new_of_old.(%d) = %d" m d d
          r.new_of_old.(d))
    r.old_of_new;
  Array.iteri
    (fun d m ->
      if m >= 0 then begin
        if m >= nn || r.old_of_new.(m) <> d then
          cert_fail "new_of_old.(%d) = %d not mapped back" d m;
        let ok = Netlist.kind nl d and nk = Netlist.kind r.rnl m in
        if cut d then begin
          if not (Cell.equal_kind nk Cell.Input) then
            cert_fail "cut node %d rebuilt as %s, not Input" d
              (Cell.kind_name nk)
        end
        else begin
          if not (Cell.equal_kind ok nk) then
            cert_fail "node %d kind %s rebuilt as %s" d
              (Cell.kind_name ok) (Cell.kind_name nk);
          if
            (not (Cell.equal_kind ok Cell.Input))
            && Netlist.name nl d <> Netlist.name r.rnl m
          then cert_fail "node %d name changed" d;
          let ofi = Netlist.fanin nl d and nfi = Netlist.fanin r.rnl m in
          if Array.length ofi <> Array.length nfi then
            cert_fail "node %d arity %d rebuilt as %d" d
              (Array.length ofi) (Array.length nfi);
          let dead = dead_pin cval nl d in
          Array.iteri
            (fun p oe ->
              let ne = nfi.(p) in
              if p = dead then begin
                if not (Cell.equal_kind (Netlist.kind r.rnl ne) Cell.Tiex)
                then
                  cert_fail "node %d severed pin %d not rebuilt as Tiex" d
                    p
              end
              else if Cell.equal_kind (Netlist.kind nl oe) Cell.Input then begin
                if r.new_of_old.(oe) <> ne then
                  cert_fail "node %d pin %d: input fanin %d not mapped" d p
                    oe
              end
              else
                match cval oe with
                | Logic4.L0 ->
                  if
                    not
                      (Cell.equal_kind (Netlist.kind r.rnl ne) Cell.Tie0)
                  then cert_fail "node %d pin %d: const-0 not Tie0" d p
                | Logic4.L1 ->
                  if
                    not
                      (Cell.equal_kind (Netlist.kind r.rnl ne) Cell.Tie1)
                  then cert_fail "node %d pin %d: const-1 not Tie1" d p
                | _ ->
                  if r.new_of_old.(oe) <> ne then
                    cert_fail
                      "node %d pin %d: fanin %d maps to %d, rebuilt %d" d
                      p oe r.new_of_old.(oe) ne)
            ofi
        end
      end)
    r.new_of_old

(* Backward build under the hard-constant valuation, [taint] disabling
   severing on fault-reachable nets and [cut] abstracting out-of-cone
   flops as free inputs. *)
let machine g ?(taint = no_taint) ?(cut = [||]) ~targets () =
  let nl = g.nl in
  let n = Netlist.length nl in
  let is_cut = Array.make n false in
  Array.iter (fun d -> is_cut.(d) <- true) cut;
  let cval d = if taint d then Logic4.X else g.hard.(d) in
  (* a primary input is never rewired to a tie even when hard-constant
     (only reset-role inputs can be): keeping it preserves the input
     alphabet, so sliced stimuli replay on the full machine *)
  let is_input d = Cell.equal_kind (Netlist.kind nl d) Cell.Input in
  let const_at d = Logic4.is_binary (cval d) && not (is_input d) in
  let keep = Array.make n false in
  let stack = ref [] in
  let visit d =
    if not keep.(d) then begin
      keep.(d) <- true;
      if not is_cut.(d) then
        match Netlist.kind nl d with
        | Cell.Input | Cell.Tie0 | Cell.Tie1 | Cell.Tiex -> ()
        | _ -> stack := d :: !stack
    end
  in
  List.iter visit targets;
  let rec drain () =
    match !stack with
    | [] -> ()
    | d :: tl ->
      stack := tl;
      iter_live_fanins cval nl d (fun _ e ->
          if not (const_at e) then visit e);
      drain ()
  in
  drain ();
  let b = Netlist.Builder.create () in
  let t0 = Netlist.Builder.tie b Logic4.L0 in
  let t1 = Netlist.Builder.tie b Logic4.L1 in
  let new_of_old = Array.make n (-1) in
  (* pass 1: shells in old-id order (fanins still placeholders) *)
  for d = 0 to n - 1 do
    if keep.(d) then begin
      let roles = Netlist.roles_of nl d in
      let name d' =
        match Netlist.name nl d' with
        | Some s -> s
        | None -> Printf.sprintf "_n%d" d'
      in
      new_of_old.(d) <-
        (if is_cut.(d) then
           Netlist.Builder.input b (Printf.sprintf "_cut%d" d)
         else
           match Netlist.kind nl d with
           | Cell.Input -> Netlist.Builder.input ~roles b (name d)
           | Cell.Output -> Netlist.Builder.output ~roles b (name d) t0
           | k ->
             let fanin =
               Array.to_list (Array.map (fun _ -> t0) (Netlist.fanin nl d))
             in
             Netlist.Builder.gate ?name:(Netlist.name nl d) ~roles b k
               fanin)
    end
  done;
  (* pass 2: rewire — mapped fanin, constant tie, or a fresh Tiex on the
     pin a decided select makes unreadable (never read by any model, so
     the encoding stays equisatisfiable with the full machine) *)
  for d = 0 to n - 1 do
    if
      keep.(d) && (not is_cut.(d))
      && not (Cell.equal_kind (Netlist.kind nl d) Cell.Input)
    then begin
      let dead = dead_pin cval nl d in
      let fanin =
        Array.mapi
          (fun p e ->
            if p = dead then Netlist.Builder.tie b Logic4.Z
            else if is_input e then new_of_old.(e)
            else
              match cval e with
              | Logic4.L0 -> t0
              | Logic4.L1 -> t1
              | _ -> new_of_old.(e))
          (Netlist.fanin nl d)
      in
      Netlist.Builder.set_fanin b new_of_old.(d) fanin
    end
  done;
  let rnl = Netlist.Builder.freeze_exn b in
  let old_of_new = Array.make (Netlist.length rnl) (-1) in
  Array.iteri (fun d m -> if m >= 0 then old_of_new.(m) <- d) new_of_old;
  let r = { rnl; new_of_old; old_of_new } in
  certify_with g r ~cut:(fun d -> is_cut.(d)) ~cval;
  r

let backward ?taint g ~targets = machine g ?taint ~targets ()

let forward g ~sources =
  let e = g.hard_edges in
  let seed_ords =
    List.concat_map
      (fun d ->
        if g.ford.(d) >= 0 then [ g.ford.(d) ]
        else
          (* an input node: seed every flop that still reads it *)
          let acc = ref [] in
          Array.iteri
            (fun k ins ->
              if Array.exists (fun i -> i = d) ins then acc := k :: !acc)
            e.in_deps;
          !acc)
      sources
  in
  let fc = forward_flops e seed_ords in
  let targets =
    let flops =
      Array.to_list g.flops
      |> List.filteri (fun k _ -> fc.(k))
    in
    let outs =
      Array.to_list e.out_deps
      |> List.filter_map (fun (o, sup) ->
             if Array.exists (fun s -> fc.(s)) sup then Some o else None)
    in
    flops @ outs
  in
  let cut =
    Array.to_list g.flops
    |> List.filteri (fun k _ -> not fc.(k))
    |> Array.of_list
  in
  machine g ~cut ~targets ()

let certify g r = certify_with g r ~cut:(fun _ -> false) ~cval:(fun d -> g.hard.(d))

(* ------------------------------------------------------------------ *)
(* Sliced BMC oracle                                                   *)
(* ------------------------------------------------------------------ *)

let forward_taint nl fnode =
  let n = Netlist.length nl in
  let taint = Array.make n false in
  let stack = ref [ fnode ] in
  taint.(fnode) <- true;
  let rec drain () =
    match !stack with
    | [] -> ()
    | d :: tl ->
      stack := tl;
      Array.iter
        (fun (sink, _pin) ->
          if not taint.(sink) then begin
            taint.(sink) <- true;
            stack := sink :: !stack
          end)
        (Netlist.fanout nl d);
      drain ()
  in
  drain ();
  taint

let oracle ?(cycles = 8) ?(observable_output = fun _ -> true)
    ?conflict_limit g fault =
  let fnode = fault.Fault.site.Fault.node in
  let taint = forward_taint g.nl fnode in
  let outs =
    Array.to_list (Netlist.outputs g.nl)
    |> List.filter (fun o -> taint.(o) && observable_output o)
  in
  if outs = [] then Bmc.No_test_within cycles
  else begin
    let r = backward ~taint:(fun d -> taint.(d)) g ~targets:(fnode :: outs) in
    let fault' =
      {
        fault with
        Fault.site = { fault.Fault.site with Fault.node = r.new_of_old.(fnode) };
      }
    in
    let obs m =
      let d = r.old_of_new.(m) in
      d >= 0 && observable_output d
    in
    match
      Bmc.run ~cycles ~observable_output:obs ?conflict_limit r.rnl fault'
    with
    | Bmc.Test stim ->
      Bmc.Test
        (Array.map
           (fun asg ->
             List.map (fun (i, v) -> (r.old_of_new.(i), v)) asg
             |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
           stim)
    | other -> other
  end

(* ------------------------------------------------------------------ *)

let count_edges e =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 e.supports

let pp_stats ppf g =
  let line label e =
    let d = dist_of (backward_sizes g e) in
    Format.fprintf ppf
      "  %-10s edges %5d  slice size min %d median %d p90 %d max %d mean \
       %.1f@,"
      label (count_edges e) d.min_ d.median d.p90 d.max_ d.mean
  in
  Format.fprintf ppf "@[<v>slice graph: %d flops, %d outputs@,"
    (Array.length g.flops)
    (Array.length (Netlist.outputs g.nl));
  line "structural" g.structural;
  line "hard" g.hard_edges;
  line "mission" g.mission_edges;
  Format.fprintf ppf "@]"
