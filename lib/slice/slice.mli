open Olfu_logic
open Olfu_netlist

(** Constant-severed cone-of-influence slicing.

    The paper's manipulation makes mission-mode constants explicit (tied
    scan/debug pins, software-held inputs); this module turns those
    constants into {e smaller machines}.  It builds a flop-level
    sequential dependency graph — input→flop, flop→flop and
    flop→output edges — where an edge is dropped ({e severed}) when the
    ternary constant of a select pin already decides the path: a mux
    whose select is tied reads only one branch, a scan flop whose
    scan-enable is tied never reads its scan-data pin, and a net that is
    itself constant carries no information at all.  Mission slices are
    therefore far smaller than the purely structural cone of influence.

    Two constant vectors drive the severing, and they are deliberately
    distinct:

    {ul
    {- {b hard} constants: [Ternary.run ~ff_mode:Cut] with reset-role
       inputs assumed inactive — exactly the constants that hold in
       {e every cycle of every BMC encoding} ({!Olfu_atpg.Bmc},
       {!Olfu_safety}, {!Olfu_invar} all hold reset inactive and leave
       flop initial state free).  Reduced machines are cut on hard
       constants only, which is what makes their verdicts bit-identical
       to the full machine's;}
    {- {b mission} constants: the steady-state fixpoint
       ([Ternary.run ~ff_mode:Steady_state], debug controls assumed at
       0) — the paper's reading.  It additionally claims flops the
       mission can never toggle, so it severs more; the SLICE lint
       rules and the condensation reason on these edges, but no
       machine is reduced with them (a free-init BMC state can sit
       outside the steady fixpoint).}}

    The graph is memoized per netlist through
    {!Olfu_netlist.Analysis.add_cache}. *)

type edges = {
  supports : int array array;
      (** [supports.(f)]: sorted flop ordinals whose current value can
          still influence flop [f]'s next state once severed *)
  consumers : int array array;  (** transpose of [supports] *)
  in_deps : int array array;
      (** [in_deps.(f)]: sorted non-constant primary-input node ids that
          can still influence flop [f]'s next state *)
  out_deps : (int * int array) array;
      (** per [Output] marker (in {!Netlist.outputs} order): the marker
          node id and the sorted flop ordinals whose current value can
          still influence it combinationally *)
}

type t = {
  nl : Netlist.t;
  hard : Logic4.t array;  (** per net; see above *)
  mission : Logic4.t array;  (** per net; steady-state fixpoint *)
  flops : int array;  (** = [Netlist.seq_nodes nl]; ordinals index it *)
  ford : int array;  (** node id -> flop ordinal, [-1] otherwise *)
  structural : edges;  (** no severing: the plain cone of influence *)
  hard_edges : edges;
  mission_edges : edges;
}

val build : ?assume:(int * Logic4.t) list -> Netlist.t -> t
(** [assume] strengthens the {e mission} fixpoint only (default: every
    [Debug_control] input at 0 — the mission hold).  Hard constants
    never take assumptions beyond reset inactivity: they must hold in
    any encoding. *)

val get : Netlist.t -> t
(** [build] with defaults, memoized on the netlist's {!Analysis}. *)

(** {1 Flop-level closures and statistics} *)

val backward_flops : edges -> int list -> bool array
(** Transitive closure over [supports] from the given flop ordinals
    (seeds included). *)

val forward_flops : edges -> int list -> bool array
(** Transitive closure over [consumers] (seeds included). *)

val backward_sizes : t -> edges -> int array
(** Per flop ordinal: number of flops in its backward closure (itself
    included) — the slice-size distribution of the machine every
    BMC-backed verdict on that flop has to encode. *)

type dist = {
  count : int;
  min_ : int;
  max_ : int;
  mean : float;
  median : int;
  p90 : int;
}

val dist_of : int array -> dist

type scc = {
  comp_of : int array;  (** flop ordinal -> component id *)
  comps : int array array;  (** component id -> member flop ordinals *)
}

val scc : edges -> int -> scc
(** Tarjan condensation of the flop graph with [n] flops; component ids
    are a reverse-topological numbering of the condensation DAG. *)

val condensation_dot : t -> edges -> string
(** Graphviz digraph of the SCC condensation: one node per component
    (labelled with a representative flop name and the member count),
    one edge per inter-component dependency. *)

(** {1 Reduced machines} *)

type reduced = {
  rnl : Netlist.t;
  new_of_old : int array;  (** old node id -> new id, [-1] when dropped *)
  old_of_new : int array;
      (** new id -> old node id, [-1] for synthesized tie cells *)
}

val backward : ?taint:(int -> bool) -> t -> targets:int list -> reduced
(** The sub-machine that decides the targets (node ids: flops, [Output]
    markers, or any net): the backward closure under hard-constant
    severing.  Kept nodes keep their kind, name and roles; a severed or
    constant fanin is rewired to a tie cell of the constant (a fresh
    [Tiex] for the never-read branch of a decided select).  [taint]
    disables severing on the given nets — the fault-injection hook of
    {!oracle}, where a fault upstream of a "constant" net breaks the
    constant in the faulty copy.  The old↔new index maps are certified
    (every kept node is re-checked kind-by-kind and pin-by-pin against
    the original before the machine is returned; a mismatch raises). *)

val forward : t -> sources:int list -> reduced
(** The sub-machine of everything the sources (flop or input node ids)
    can still influence: flops outside the severed forward cone are
    abstracted as free primary inputs, so the result over-approximates
    the original on the kept flops. *)

val certify : t -> reduced -> unit
(** Re-validates a reduced machine's index maps against the original
    netlist (raises [Failure] with a diagnostic on any mismatch).
    [backward]/[forward] already call this; exposed for tests. *)

(** {1 Sliced consumers} *)

val oracle :
  ?cycles:int ->
  ?observable_output:(int -> bool) ->
  ?conflict_limit:int ->
  t ->
  Olfu_fault.Fault.t ->
  Olfu_atpg.Bmc.result
(** {!Olfu_atpg.Bmc.run} on the backward slice of the fault's
    structurally tainted observation points instead of the whole
    machine.  Returned stimuli are translated back to original input
    node ids.  Verdict-equivalent to the full run: severing is disabled
    on every net the fault effect can structurally reach, and the
    remaining cut logic is read identically by both copies. *)

val pp_stats : Format.formatter -> t -> unit
