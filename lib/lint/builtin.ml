(* The built-in rule catalogue.

   The first ten rules port the checks of the original (since deleted)
   `Olfu_manip.Dft_lint` pass
   (same codes, severities and message shapes); the rest are the passes
   the OLFU flow needs before trusting a netlist: shift-path integrity,
   reset/clock domain hygiene, X-source and mission-constant
   reachability, debug tie-off preconditions, and structural metrics. *)

open Olfu_logic
open Olfu_netlist

let name = Ctx.name

(* ---------------------------------------------------------------- *)
(* Scan (ported)                                                    *)
(* ---------------------------------------------------------------- *)

let scan_001 =
  Rule.make ~code:"SCAN-001" ~category:Rule.Scan ~severity:Rule.Warning
    ~title:"flip-flop not on a traceable scan chain"
    ~doc:
      "Every flip-flop should be scan-replaced and reachable from a \
       scan-in port; unscanned or unstitched cells lower coverage and \
       break the Sec. 3.1 pruning rule."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let on_chain = Ctx.chain_cells ctx in
      Array.to_list (Netlist.seq_nodes nl)
      |> List.filter_map (fun ff ->
             match Netlist.kind nl ff with
             | Cell.Sdff | Cell.Sdffr ->
               if Hashtbl.mem on_chain ff then None
               else
                 Some
                   (Rule.raw ~node:ff
                      (Printf.sprintf "scan cell %s is on no traceable chain"
                         (name ctx ff)))
             | Cell.Dff | Cell.Dffr ->
               Some
                 (Rule.raw ~node:ff
                    (Printf.sprintf "flip-flop %s is not scan-replaced"
                       (name ctx ff)))
             | _ -> None))

let scan_002 =
  Rule.make ~code:"SCAN-002" ~category:Rule.Scan ~severity:Rule.Error
    ~title:"scan-in port reaches no scan cell"
    ~doc:
      "A scan-in port whose trace reaches no mux-scan SI pin is a broken \
       chain head: shifting through it is impossible."
    (fun ctx ->
      Ctx.chains ctx
      |> List.filter_map (fun c ->
             if c.Ctx.hops = [] then
               Some
                 (Rule.raw ~node:c.Ctx.scan_in
                    (Printf.sprintf "scan-in %s reaches no scan cell"
                       (name ctx c.Ctx.scan_in)))
             else None))

let scan_003 =
  Rule.make ~code:"SCAN-003" ~category:Rule.Scan ~severity:Rule.Warning
    ~title:"scan chain without a scan-out port"
    ~doc:
      "A chain that never reaches a scan-out output marker cannot be \
       unloaded; capture data is lost."
    (fun ctx ->
      Ctx.chains ctx
      |> List.filter_map (fun c ->
             if c.Ctx.hops <> [] && c.Ctx.scan_out = None then
               Some
                 (Rule.raw ~node:c.Ctx.scan_in
                    (Printf.sprintf "chain from %s has no scan-out port"
                       (name ctx c.Ctx.scan_in)))
             else None))

let scan_004 =
  Rule.make ~code:"SCAN-004" ~category:Rule.Scan ~severity:Rule.Warning
    ~title:"scan cells driven by more than one scan-enable net"
    ~doc:
      "Multiple scan-enable nets suggest an incomplete stitch or a \
       partitioned test mode the mission tie script must know about."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let se_nets = Hashtbl.create 7 in
      Array.iter
        (fun ff ->
          match Netlist.kind nl ff with
          | Cell.Sdff | Cell.Sdffr ->
            Hashtbl.replace se_nets (Netlist.fanin nl ff).(2) ()
          | _ -> ())
        (Netlist.seq_nodes nl);
      if Hashtbl.length se_nets > 1 then
        [
          Rule.raw
            (Printf.sprintf "%d distinct scan-enable nets"
               (Hashtbl.length se_nets));
        ]
      else [])

(* ---------------------------------------------------------------- *)
(* Scan (new)                                                       *)
(* ---------------------------------------------------------------- *)

let se_traces ctx =
  let nl = Ctx.nl ctx in
  Array.to_list (Netlist.seq_nodes nl)
  |> List.filter_map (fun ff ->
         match Netlist.kind nl ff with
         | Cell.Sdff | Cell.Sdffr ->
           Some (ff, Ctx.back_trace nl (Netlist.fanin nl ff).(2))
         | _ -> None)

let scan_005 =
  Rule.make ~code:"SCAN-005" ~category:Rule.Scan ~severity:Rule.Warning
    ~title:"scan-enable polarity inconsistent across cells"
    ~doc:
      "Some scan cells see the scan-enable through an odd number of \
       inverters while others see it directly: in shift mode part of the \
       design captures functionally, corrupting the chain."
    (fun ctx ->
      let traces = se_traces ctx in
      let by_origin = Hashtbl.create 7 in
      List.iter
        (fun (ff, tr) ->
          let plain, inv =
            Option.value ~default:([], [])
              (Hashtbl.find_opt by_origin tr.Ctx.origin)
          in
          Hashtbl.replace by_origin tr.Ctx.origin
            (if tr.Ctx.inverted then (plain, ff :: inv)
             else (ff :: plain, inv)))
        traces;
      Hashtbl.fold
        (fun origin (plain, inv) acc ->
          if plain <> [] && inv <> [] then
            Rule.raw ~node:(List.hd inv) ~path:inv
              (Printf.sprintf
                 "%d of %d scan cells on SE net %s see it inverted (e.g. %s)"
                 (List.length inv)
                 (List.length plain + List.length inv)
                 (name ctx origin)
                 (name ctx (List.hd inv)))
            :: acc
          else acc)
        by_origin [])

let scan_006 =
  Rule.make ~code:"SCAN-006" ~category:Rule.Scan ~severity:Rule.Info
    ~title:"buffers on the scan shift path (census)"
    ~doc:
      "Counts the buffers/inverters living purely on each chain's shift \
       path.  Their faults are on-line functionally untestable (Sec. 3.1); \
       the census sizes that fault population."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      List.mapi (fun i c -> (i, c)) (Ctx.chains ctx)
      |> List.filter_map (fun (i, c) ->
             let path =
               List.concat_map (fun h -> h.Ctx.path) c.Ctx.hops
               @ c.Ctx.tail_path
             in
             if path = [] then None
             else
               let inverting =
                 List.length
                   (List.filter
                      (fun n ->
                        Cell.equal_kind (Netlist.kind nl n) Cell.Not)
                      path)
               in
               Some
                 (Rule.raw ~node:c.Ctx.scan_in ~path
                    (Printf.sprintf
                       "chain %d (%s): %d cells, %d shift-path buffers (%d \
                        inverting)"
                       i
                       (name ctx c.Ctx.scan_in)
                       (List.length c.Ctx.hops)
                       (List.length path) inverting))))

let scan_007 =
  Rule.make ~code:"SCAN-007" ~category:Rule.Scan ~severity:Rule.Warning
    ~title:"scan chain lengths strongly imbalanced"
    ~doc:
      "Shift time is governed by the longest chain; a chain much longer \
       than the shortest wastes tester time and usually indicates a \
       stitching mistake.  Threshold: max/min length in percent \
       (thresholds.chain_imbalance)."
    (fun ctx ->
      let lengths =
        Ctx.chains ctx
        |> List.map (fun c -> List.length c.Ctx.hops)
        |> List.filter (fun l -> l > 0)
      in
      match lengths with
      | [] | [ _ ] -> []
      | _ ->
        let mx = List.fold_left max 0 lengths in
        let mn = List.fold_left min max_int lengths in
        if mx * 100 > mn * (Ctx.limits ctx).Ctx.chain_imbalance then
          [
            Rule.raw
              (Printf.sprintf
                 "chain lengths range %d..%d cells (over %d%% imbalance)"
                 mn mx
                 (Ctx.limits ctx).Ctx.chain_imbalance);
          ]
        else [])

let loop_001 =
  Rule.make ~code:"LOOP-001" ~category:Rule.Scan ~severity:Rule.Error
    ~title:"scan shift path forms a closed loop"
    ~doc:
      "The SI wiring of these cells forms a cycle detached from every \
       scan-in port: shifting can never load or unload them, and a naive \
       chain tracer would not terminate.  The finding path is the full \
       cycle (cells and shift-path buffers) in shift order."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      Ctx.si_cycles ctx
      |> List.map (fun cycle ->
             let cells =
               List.filter
                 (fun n ->
                   match Netlist.kind nl n with
                   | Cell.Sdff | Cell.Sdffr -> true
                   | _ -> false)
                 cycle
             in
             let show = List.map (name ctx) cells in
             Rule.raw ~node:(List.hd cycle) ~path:cycle
               (Printf.sprintf
                  "shift path loops through %d cells: %s -> %s"
                  (List.length cells)
                  (String.concat " -> " show)
                  (List.hd show))))

let drv_001 =
  Rule.make ~code:"DRV-001" ~category:Rule.Scan ~severity:Rule.Error
    ~title:"net drives the SI pins of several scan cells"
    ~doc:
      "A shift-path fork: the chain order past this net is ambiguous and \
       at most one branch can be a real chain.  Usually a stitching bug."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let findings = ref [] in
      Netlist.iter_nodes
        (fun i _ ->
          let si_sinks =
            Array.to_list (Netlist.fanout nl i)
            |> List.filter_map (fun (sink, pin) ->
                   match Netlist.kind nl sink with
                   | (Cell.Sdff | Cell.Sdffr) when pin = 1 -> Some sink
                   | _ -> None)
          in
          match si_sinks with
          | _ :: _ :: _ ->
            findings :=
              Rule.raw ~node:i ~path:si_sinks
                (Printf.sprintf
                   "net %s drives the SI pins of %d scan cells (e.g. %s, %s)"
                   (name ctx i) (List.length si_sinks)
                   (name ctx (List.nth si_sinks 0))
                   (name ctx (List.nth si_sinks 1)))
              :: !findings
          | _ -> ())
        nl;
      List.rev !findings)

let drv_002 =
  Rule.make ~code:"DRV-002" ~category:Rule.Net ~severity:Rule.Info
    ~title:"net exported through several output ports"
    ~doc:
      "Two or more primary-output markers echo the same driver net.  Not \
       an error in this single-driver IR, but the alias usually means a \
       generator left a duplicated port."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let by_driver = Hashtbl.create 17 in
      Array.iter
        (fun o ->
          let d = (Netlist.fanin nl o).(0) in
          Hashtbl.replace by_driver d
            (o :: Option.value ~default:[] (Hashtbl.find_opt by_driver d)))
        (Netlist.outputs nl);
      Hashtbl.fold
        (fun d outs acc ->
          match outs with
          | _ :: _ :: _ ->
            Rule.raw ~node:d ~path:outs
              (Printf.sprintf "net %s is exported by %d ports (%s)"
                 (name ctx d) (List.length outs)
                 (String.concat ", " (List.map (name ctx) outs)))
            :: acc
          | _ -> acc)
        by_driver [])

(* ---------------------------------------------------------------- *)
(* Reset / clock                                                    *)
(* ---------------------------------------------------------------- *)

let rst_001 =
  Rule.make ~code:"RST-001" ~category:Rule.Reset ~severity:Rule.Warning
    ~title:"flip-flops without reset"
    ~doc:
      "Unresettable state starts at X after power-up; the mission \
       steady-state analysis (and silicon) may never converge on it."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let unreset =
        Array.to_list (Netlist.seq_nodes nl)
        |> List.filter (fun ff ->
               match Netlist.kind nl ff with
               | Cell.Dff | Cell.Sdff -> true
               | _ -> false)
      in
      if unreset = [] then []
      else
        [
          Rule.raw
            ~node:(List.hd unreset)
            ~path:unreset
            (Printf.sprintf "%d flip-flops without reset (e.g. %s)"
               (List.length unreset)
               (name ctx (List.hd unreset)));
        ])

let rst_002 =
  Rule.make ~code:"RST-002" ~category:Rule.Reset ~severity:Rule.Info
    ~title:"no input carries the reset role"
    ~doc:
      "Without a Reset-role input the ternary engine cannot compute a \
       post-reset state; Steady_state analysis degrades."
    (fun ctx ->
      if Array.length (Netlist.nodes_with_role (Ctx.nl ctx) Netlist.Reset) = 0
      then [ Rule.raw "no input carries the reset role" ]
      else [])

let rstn_pins ctx =
  let nl = Ctx.nl ctx in
  Array.to_list (Netlist.seq_nodes nl)
  |> List.filter_map (fun ff ->
         match Netlist.kind nl ff with
         | Cell.Dffr -> Some (ff, (Netlist.fanin nl ff).(1))
         | Cell.Sdffr -> Some (ff, (Netlist.fanin nl ff).(3))
         | _ -> None)

let rst_003 =
  Rule.make ~code:"RST-003" ~category:Rule.Reset ~severity:Rule.Warning
    ~title:"reset pin not driven from any reset input"
    ~doc:
      "The rstn pin of these cells reaches no Reset-role input at all, \
       even through reset gating logic (buffers, inverters, and/or \
       gates): an orphan reset the mission model does not control."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let bad =
        rstn_pins ctx
        |> List.filter (fun (_, net) -> Ctx.reset_roots nl net = [])
      in
      if bad = [] then []
      else
        let ffs = List.map fst bad in
        [
          Rule.raw ~node:(List.hd ffs) ~path:ffs
            (Printf.sprintf
               "%d resettable cells have an rstn pin not fed by a \
                reset-role input (e.g. %s)"
               (List.length ffs)
               (name ctx (List.hd ffs)));
        ])

let rst_004 =
  Rule.make ~code:"RST-004" ~category:Rule.Reset ~severity:Rule.Warning
    ~title:"several reset domains"
    ~doc:
      "Resettable cells root their rstn pins in different sets of \
       Reset-role inputs: more than one reset domain.  The mission model \
       asserts a single reset; extra domains stay uninitialized.  A reset \
       merely gated (e.g. ANDed with a debug pin) keeps its root and is \
       reported by RST-006, not here."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let domains = Hashtbl.create 7 in
      List.iter
        (fun (_, net) ->
          match Ctx.reset_roots nl net with
          | [] -> () (* RST-003's finding *)
          | roots -> Hashtbl.replace domains roots ())
        (rstn_pins ctx);
      if Hashtbl.length domains > 1 then
        let names =
          Hashtbl.fold
            (fun roots () acc ->
              String.concat "&" (List.map (name ctx) roots) :: acc)
            domains []
          |> List.sort compare
        in
        [
          Rule.raw
            (Printf.sprintf "%d reset domains: %s" (List.length names)
               (String.concat ", " names));
        ]
      else [])

let rst_006 =
  Rule.make ~code:"RST-006" ~category:Rule.Reset ~severity:Rule.Info
    ~title:"reset reaches an rstn pin only through gating logic"
    ~doc:
      "The rstn pin roots in a Reset-role input but only through \
       combinational gating (e.g. rstn AND trstn for a TAP held in reset \
       when the mission ties TRSTN low).  Legitimate in debug wrappers; \
       worth knowing because the gated cells sit in reset whenever the \
       gate is off."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let gated =
        rstn_pins ctx
        |> List.filter (fun (_, net) ->
               let tr = Ctx.back_trace nl net in
               (not
                  (Cell.equal_kind (Netlist.kind nl tr.Ctx.origin) Cell.Input
                  && Netlist.has_role nl tr.Ctx.origin Netlist.Reset))
               && Ctx.reset_roots nl net <> [])
        |> List.map fst
      in
      if gated = [] then []
      else
        [
          Rule.raw ~node:(List.hd gated) ~path:gated
            (Printf.sprintf
               "%d resettable cells see the reset only through gating \
                logic (e.g. %s)"
               (List.length gated)
               (name ctx (List.hd gated)));
        ])

let rst_005 =
  Rule.make ~code:"RST-005" ~category:Rule.Reset ~severity:Rule.Warning
    ~title:"reset reaches an rstn pin with inverted polarity"
    ~doc:
      "An odd number of inverters between the active-low reset input and \
       an active-low rstn pin: once reset is released (1), the cell is \
       held in reset forever — its cone is mission-constant."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let bad =
        rstn_pins ctx
        |> List.filter (fun (_, net) ->
               let tr = Ctx.back_trace nl net in
               tr.Ctx.inverted
               && Cell.equal_kind (Netlist.kind nl tr.Ctx.origin) Cell.Input
               && Netlist.has_role nl tr.Ctx.origin Netlist.Reset)
        |> List.map fst
      in
      if bad = [] then []
      else
        [
          Rule.raw ~node:(List.hd bad) ~path:bad
            (Printf.sprintf
               "%d cells see the reset input inverted on their rstn pin \
                (e.g. %s)"
               (List.length bad)
               (name ctx (List.hd bad)));
        ])

let clk_001 =
  Rule.make ~code:"CLK-001" ~category:Rule.Clock ~severity:Rule.Warning
    ~title:"clock input used as data"
    ~doc:
      "Sequential cells are clocked by the implicit global clock in this \
       IR, so any fanout of a Clock-role input is combinational data \
       logic — a clock-as-data crossing the structural engine cannot \
       reason about."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      Array.to_list (Netlist.nodes_with_role nl Netlist.Clock)
      |> List.filter (fun i ->
             Cell.equal_kind (Netlist.kind nl i) Cell.Input
             && Array.length (Netlist.fanout nl i) > 0)
      |> List.map (fun i ->
             Rule.raw ~node:i
               (Printf.sprintf "clock input %s drives %d data loads"
                  (name ctx i)
                  (Array.length (Netlist.fanout nl i)))))

(* ---------------------------------------------------------------- *)
(* Nets / X propagation / constants                                 *)
(* ---------------------------------------------------------------- *)

let net_001 =
  Rule.make ~code:"NET-001" ~category:Rule.Net ~severity:Rule.Warning
    ~title:"floating (Tiex) net"
    ~doc:
      "A cut or floating net: a permanent X source.  Deliberate after \
       output floating (Sec. 3.2.2); suspicious in a fresh netlist."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let findings = ref [] in
      Netlist.iter_nodes
        (fun i nd ->
          if nd.Netlist.kind = Cell.Tiex then
            findings :=
              Rule.raw ~node:i
                (Printf.sprintf "floating net %s" (name ctx i))
              :: !findings)
        nl;
      List.rev !findings)

let net_002 =
  Rule.make ~code:"NET-002" ~category:Rule.Net ~severity:Rule.Info
    ~title:"nets constant in mission steady state"
    ~doc:
      "Nets the ternary engine proves constant in the mission steady \
       state (outside tie cells): the raw material of the Sec. 3.3 rule."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let t = Ctx.ternary ctx in
      let const_count = ref 0 in
      Netlist.iter_nodes
        (fun i nd ->
          if
            (not (Cell.is_tie nd.Netlist.kind))
            && nd.Netlist.kind <> Cell.Output
            && Logic4.is_binary (Olfu_atpg.Ternary.const_of t i)
          then incr const_count)
        nl;
      if !const_count > 0 then
        [
          Rule.raw
            (Printf.sprintf "%d nets constant in mission steady state"
               !const_count);
        ]
      else [])

let xprop_001 =
  Rule.make ~code:"XPROP-001" ~category:Rule.Net ~severity:Rule.Warning
    ~title:"floating net can poison primary outputs with X"
    ~doc:
      "Forward reachability from each Tiex source, restricted to nets \
       whose steady-state value is non-binary: outputs this reaches can \
       show X in mission mode.  A Tiex whose X is absorbed by constants \
       is reported only by NET-001."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let t = Ctx.ternary ctx in
      let poisoned_outputs src =
        let seen = Hashtbl.create 97 in
        let outs = ref [] in
        let rec visit i =
          if not (Hashtbl.mem seen i) then begin
            Hashtbl.replace seen i ();
            if not (Logic4.is_binary (Olfu_atpg.Ternary.const_of t i)) then begin
              if Cell.equal_kind (Netlist.kind nl i) Cell.Output then
                outs := i :: !outs;
              Array.iter (fun (sink, _) -> visit sink) (Netlist.fanout nl i)
            end
          end
        in
        visit src;
        List.rev !outs
      in
      let findings = ref [] in
      Netlist.iter_nodes
        (fun i nd ->
          if nd.Netlist.kind = Cell.Tiex then
            match poisoned_outputs i with
            | [] -> ()
            | outs ->
              findings :=
                Rule.raw ~node:i ~path:outs
                  (Printf.sprintf
                     "floating net %s can reach %d outputs with X (e.g. %s)"
                     (name ctx i) (List.length outs)
                     (name ctx (List.hd outs)))
                :: !findings)
        nl;
      List.rev !findings)

let const_001 =
  Rule.make ~code:"CONST-001" ~category:Rule.Net ~severity:Rule.Info
    ~title:"nets that become constant under the mission tie script"
    ~doc:
      "Ternary implication re-run with every free Debug_control input \
       assumed tied to 0 (the Sec. 3.2 script), plus any software-derived \
       assumptions: the nets newly proven constant are exactly what the \
       debug rule will claim.  Counts exclude the assumed nodes \
       themselves."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let assumed = Ctx.assumptions ctx in
      if assumed = [] then []
      else begin
        let plain = Ctx.ternary ctx in
        let mission = Ctx.mission_ternary ctx in
        let is_assumed = Hashtbl.create 17 in
        List.iter (fun (i, _) -> Hashtbl.replace is_assumed i ()) assumed;
        let fresh = ref [] in
        Netlist.iter_nodes
          (fun i nd ->
            if
              (not (Cell.is_tie nd.Netlist.kind))
              && (not (Hashtbl.mem is_assumed i))
              && Logic4.is_binary (Olfu_atpg.Ternary.const_of mission i)
              && not (Logic4.is_binary (Olfu_atpg.Ternary.const_of plain i))
            then fresh := i :: !fresh)
          nl;
        match List.rev !fresh with
        | [] -> []
        | l ->
          [
            Rule.raw ~node:(List.hd l) ~path:l
              (Printf.sprintf
                 "%d nets become constant when the %d mission assumptions \
                  are tied (e.g. %s)"
                 (List.length l) (List.length assumed)
                 (name ctx (List.hd l)));
          ]
      end)

let conflict_001 =
  Rule.make ~code:"CONFLICT-001" ~category:Rule.Testability
    ~severity:Rule.Info
    ~title:"nets with a value no mission test frame can realize"
    ~doc:
      "The static implication engine (direct gate implications, \
       contrapositives, bounded recursive learning) run over the \
       mission-tied ternary constants: nets the constants leave unknown \
       but whose closure proves one value impossible.  Every fault whose \
       excitation or propagation requires that value is functionally \
       untestable without any search (FIRE-style conflict \
       untestability)."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let mission = Ctx.mission_ternary ctx in
      let db =
        Olfu_atpg.Implic.build ~consts:mission.Olfu_atpg.Ternary.values nl
      in
      let scr = Olfu_atpg.Implic.Scratch.create db in
      match Olfu_atpg.Implic.conflict_nets ~limit:20 db scr with
      | [] -> []
      | conflicts ->
        [
          Rule.raw
            ~node:(fst (List.hd conflicts))
            ~path:(List.map fst conflicts)
            (Printf.sprintf
               "%d nets have a statically impossible value (e.g. %s can \
                never be %d)"
               (List.length conflicts)
               (name ctx (fst (List.hd conflicts)))
               (if snd (List.hd conflicts) then 1 else 0));
        ])

(* ---------------------------------------------------------------- *)
(* Observability / testability (ported)                             *)
(* ---------------------------------------------------------------- *)

let obs_001 =
  Rule.make ~code:"OBS-001" ~category:Rule.Observability
    ~severity:Rule.Warning ~title:"logic with no path to any output"
    ~doc:
      "Dead cones: cells with no structural path to an output marker.  \
       Their faults are untestable by construction; synthesis would \
       strip them.  The finding path lists the full cone."
    (fun ctx ->
      match Ctx.dead_nodes ctx with
      | [] -> []
      | dead ->
        [
          Rule.raw ~node:(List.hd dead) ~path:dead
            (Printf.sprintf "%d cells with no path to any output (e.g. %s)"
               (List.length dead)
               (name ctx (List.hd dead)));
        ])

let test_001 =
  Rule.make ~code:"TEST-001" ~category:Rule.Testability ~severity:Rule.Info
    ~title:"hardest-to-test nets by SCOAP"
    ~doc:
      "The highest finite SCOAP cc0+cc1+co scores: where ATPG effort \
       will concentrate.  Count set by thresholds.scoap_top."
    (fun ctx ->
      match
        Olfu_atpg.Scoap.hardest (Ctx.scoap ctx)
          ~n:(Ctx.limits ctx).Ctx.scoap_top
      with
      | [] -> []
      | hard ->
        [
          Rule.raw
            ~node:(fst (List.hd hard))
            ~path:(List.map fst hard)
            (Printf.sprintf "hardest nets by SCOAP: %s"
               (String.concat ", "
                  (List.map
                     (fun (i, score) ->
                       Printf.sprintf "%s (%d)" (name ctx i) score)
                     hard)));
        ])

(* ---------------------------------------------------------------- *)
(* Debug tie-off preconditions                                      *)
(* ---------------------------------------------------------------- *)

let debug_controls ctx =
  let nl = Ctx.nl ctx in
  Array.to_list (Netlist.nodes_with_role nl Netlist.Debug_control)
  |> List.partition (fun i ->
         Cell.equal_kind (Netlist.kind nl i) Cell.Input)

let dbg_001 =
  Rule.make ~code:"DBG-001" ~category:Rule.Debug ~severity:Rule.Warning
    ~title:"debug controls only partially tied off"
    ~doc:
      "Some Debug_control inputs are tied while others are still free: \
       the Sec. 3.2.1 manipulation was applied halfway, so the debug \
       fault accounting is neither mission nor test."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let untied, rest = debug_controls ctx in
      let tied =
        List.filter (fun i -> Cell.is_tie (Netlist.kind nl i)) rest
      in
      if tied <> [] && untied <> [] then
        [
          Rule.raw
            ~node:(List.hd untied)
            ~path:untied
            (Printf.sprintf
               "%d of %d debug controls are tied but %d remain free (e.g. \
                %s)"
               (List.length tied)
               (List.length tied + List.length untied)
               (List.length untied)
               (name ctx (List.hd untied)));
        ]
      else [])

let dbg_002 =
  Rule.make ~code:"DBG-002" ~category:Rule.Debug ~severity:Rule.Info
    ~title:"debug observation outputs not floated after tie-off"
    ~doc:
      "Every debug control is tied (mission preparation done) but \
       Debug_observe outputs are still connected: Sec. 3.2.2 requires \
       floating them before the structural screening, or their cones \
       stay observable."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let untied, rest = debug_controls ctx in
      let tied =
        List.filter (fun i -> Cell.is_tie (Netlist.kind nl i)) rest
      in
      let observes =
        Array.to_list (Netlist.outputs nl)
        |> List.filter (fun o -> Netlist.has_role nl o Netlist.Debug_observe)
      in
      if tied <> [] && untied = [] && observes <> [] then
        [
          Rule.raw
            ~node:(List.hd observes)
            ~path:observes
            (Printf.sprintf
               "debug controls are tied but %d observe outputs remain \
                connected (e.g. %s)"
               (List.length observes)
               (name ctx (List.hd observes)));
        ]
      else [])

(* ---------------------------------------------------------------- *)
(* Structural metrics                                               *)
(* ---------------------------------------------------------------- *)

let struct_001 =
  Rule.make ~code:"STRUCT-001" ~category:Rule.Structure
    ~severity:Rule.Warning ~title:"net fanout exceeds threshold"
    ~doc:
      "Data fanout (excluding scan-enable/scan-in/reset wiring pins) \
       above thresholds.max_fanout: an electrical and testability \
       hotspot.  Tie cells are exempt."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let limit = (Ctx.limits ctx).Ctx.max_fanout in
      let findings = ref [] in
      Netlist.iter_nodes
        (fun i nd ->
          if not (Cell.is_tie nd.Netlist.kind) then begin
            let fo = Ctx.data_fanout nl i in
            if fo > limit then
              findings :=
                Rule.raw ~node:i
                  (Printf.sprintf "net %s has data fanout %d (limit %d)"
                     (name ctx i) fo limit)
                :: !findings
          end)
        nl;
      List.rev !findings)

let struct_002 =
  Rule.make ~code:"STRUCT-002" ~category:Rule.Structure
    ~severity:Rule.Warning ~title:"combinational depth exceeds threshold"
    ~doc:
      "Logic depth above thresholds.max_depth: long ripple structures \
       dominate the critical path and blow up SCOAP/ATPG effort."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let limit = (Ctx.limits ctx).Ctx.max_depth in
      let worst = ref (-1) and worst_level = ref 0 and count = ref 0 in
      Netlist.iter_nodes
        (fun i _ ->
          let l = Netlist.level nl i in
          if l > limit then begin
            incr count;
            if l > !worst_level then begin
              worst := i;
              worst_level := l
            end
          end)
        nl;
      if !count > 0 then
        [
          Rule.raw ~node:!worst
            (Printf.sprintf
               "%d nets deeper than %d levels (deepest: %s at %d)"
               !count limit (name ctx !worst) !worst_level);
        ]
      else [])

(* ---------------------------------------------------------------- *)
(* Software facts (Sec. 3.3: what the mission software can drive)   *)
(* ---------------------------------------------------------------- *)

(* All SW-* rules are silent unless the caller supplied software facts
   (olfu lint --software, or Lint.run ?software): the netlist alone
   cannot know what the program side proves. *)

let sw_001 =
  Rule.make ~code:"SW-CONST" ~category:Rule.Software ~severity:Rule.Info
    ~title:"address bits proven constant by software but not tied"
    ~doc:
      "The abstract interpreter proved these address bits constant over \
       every analysed program (fetch and data), yet plain ternary \
       implication cannot show the corresponding address-register flops \
       constant: each one is a Sec. 3.3 tie/assume opportunity, and the \
       faults below it are functionally untestable on-line."
    (fun ctx ->
      match Ctx.software ctx with
      | None -> []
      | Some sw ->
        let nl = Ctx.nl ctx in
        let plain = Ctx.ternary ctx in
        let untied =
          List.filter_map
            (fun (bit, v) ->
              let flops =
                Netlist.nodes_with_role nl (Netlist.Address_reg bit)
                |> Array.to_list
                |> List.filter (fun i ->
                       not
                         (Logic4.is_binary (Olfu_atpg.Ternary.const_of plain i)))
              in
              if flops = [] then None else Some ((bit, v), flops))
            sw.Ctx.sw_const_addr_bits
        in
        (match untied with
        | [] -> []
        | ((bit0, v0), flops0) :: _ ->
          let nodes = List.concat_map snd untied in
          [
            Rule.raw ~node:(List.hd flops0) ~path:nodes
              (Printf.sprintf
                 "%s proves %d address bits constant (e.g. bit %d = %d at \
                  %s) with %d address-register flops left untied"
                 sw.Ctx.sw_label (List.length untied) bit0
                 (if v0 then 1 else 0)
                 (name ctx (List.hd flops0))
                 (List.length nodes));
          ]))

let sw_002 =
  Rule.make ~code:"SW-DEAD" ~category:Rule.Software ~severity:Rule.Warning
    ~title:"unreachable instruction words in a routine"
    ~doc:
      "Instruction words the abstract interpreter proves no execution of \
       the routine can ever fetch.  Dead code inflates the stored image \
       without exercising anything; if it was meant as a reachable test \
       pattern, the routine has a control-flow bug."
    (fun ctx ->
      match Ctx.software ctx with
      | None -> []
      | Some sw ->
        List.map
          (fun (pname, pcs) ->
            Rule.raw
              (Printf.sprintf
                 "routine %s: %d unreachable instruction words (first at \
                  0x%X)"
                 pname (List.length pcs) (List.hd pcs)))
          sw.Ctx.sw_dead_code)

let sw_003 =
  Rule.make ~code:"SW-OBS" ~category:Rule.Software ~severity:Rule.Error
    ~title:"no signature store provably reaches RAM"
    ~doc:
      "Memory content is the only on-line observation point (Sec. 4): a \
       suite whose stores never provably land in data RAM observes \
       nothing, so every fault it was meant to catch escapes."
    (fun ctx ->
      match Ctx.software ctx with
      | None -> []
      | Some sw ->
        if sw.Ctx.sw_store_total = 0 then
          [ Rule.raw (sw.Ctx.sw_label ^ " performs no signature store at all") ]
        else if not sw.Ctx.sw_ram_stores then
          [
            Rule.raw
              (Printf.sprintf
                 "none of the %d store sites in %s provably lands in data RAM"
                 sw.Ctx.sw_store_total sw.Ctx.sw_label);
          ]
        else [])

let sw_004 =
  Rule.make ~code:"SW-MAP" ~category:Rule.Software ~severity:Rule.Warning
    ~title:"memory access may escape every mapped region"
    ~doc:
      "A load or store whose abstract address is not contained in the \
       ROM or RAM region: it may hit unmapped space, where the bus model \
       and the memory-map constant-bit argument both stop holding."
    (fun ctx ->
      match Ctx.software ctx with
      | None -> []
      | Some sw -> List.map (fun s -> Rule.raw s) sw.Ctx.sw_unmapped)

let seu_001 =
  Rule.make ~code:"SEU-001" ~category:Rule.Testability ~severity:Rule.Info
    ~title:"state flop unprotected against single-event upsets"
    ~doc:
      "A flip-flop whose fanout cone reaches a functional primary output \
       while no alarm, parity or checker output (net name containing \
       alarm/parity/err/chk) observes it: a transient bit-flip there can \
       corrupt mission outputs with no on-line flag.  Informational \
       inventory of the exposed state — the bounded verdict per flop \
       comes from the safety taxonomy's SEU axis."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let is_alarm o =
        match Netlist.name nl o with
        | None -> false
        | Some n ->
          let n = String.lowercase_ascii n in
          let has sub =
            let ls = String.length n and lb = String.length sub in
            let rec go i =
              i + lb <= ls && (String.sub n i lb = sub || go (i + 1))
            in
            go 0
          in
          has "alarm" || has "parity" || has "err" || has "chk"
      in
      (* backward cone of the two output families, crossing flops *)
      let cone pred =
        let m = Array.make (Netlist.length nl) false in
        let rec go i =
          if not m.(i) then begin
            m.(i) <- true;
            Array.iter go (Netlist.fanin nl i)
          end
        in
        Array.iter (fun o -> if pred o then go o) (Netlist.outputs nl);
        m
      in
      let func = cone (fun o -> not (is_alarm o)) in
      let alarm = cone is_alarm in
      let seqs = Netlist.seq_nodes nl in
      let exposed =
        Array.to_list seqs
        |> List.filter (fun f -> func.(f) && not alarm.(f))
      in
      match exposed with
      | [] -> []
      | hd :: _ ->
        [
          Rule.raw ~node:hd ~path:exposed
            (Printf.sprintf
               "%d of %d state flops reach a functional output with no \
                alarm/parity observer (e.g. %s)"
               (List.length exposed) (Array.length seqs) (name ctx hd));
        ])

(* ---------------------------------------------------------------- *)
(* Invariant-backed (proved reachable-state facts)                  *)
(* ---------------------------------------------------------------- *)

let inv_001 =
  Rule.make ~code:"INV-001" ~category:Rule.Invariant ~severity:Rule.Info
    ~title:"register group reaches only part of its encoding space"
    ~doc:
      "The invariant engine proved the register's reachable value set by \
       k-induction; every missing code is an unreachable encoding, so the \
       decode logic for those codes is functionally untestable on-line \
       and the register is a re-encoding opportunity."
    (fun ctx ->
      match Ctx.invariants ctx with
      | None -> []
      | Some inv ->
        List.filter_map
          (fun (group, reach) ->
            let w = Array.length group in
            if w = 0 || w > 16 then None
            else
              let space = 1 lsl w in
              let missing = space - List.length reach in
              if missing <= 0 then None
              else
                Some
                  (Rule.raw ~node:group.(0) ~path:(Array.to_list group)
                     (Printf.sprintf
                        "%s: %d-bit register at %s reaches %d of %d codes \
                         (%d unreachable encodings)"
                        inv.Ctx.inv_label w (name ctx group.(0))
                        (List.length reach) space missing)))
          inv.Ctx.inv_ranges)

let inv_002 =
  Rule.make ~code:"INV-002" ~category:Rule.Invariant ~severity:Rule.Warning
    ~title:"gate conjoins a proved-mutex flop pair (dead branch)"
    ~doc:
      "An and/nand gate whose inputs trace back (through buffers, with \
       even inversion) to two flops the invariant engine proved never \
       simultaneously 1 can never see both inputs asserted: the and \
       output never rises, so the branch it selects is dead in every \
       reachable state."
    (fun ctx ->
      match Ctx.invariants ctx with
      | Some inv when inv.Ctx.inv_mutex <> [] ->
        let nl = Ctx.nl ctx in
        let mutex = Hashtbl.create 17 in
        List.iter
          (fun (a, b) -> Hashtbl.replace mutex (min a b, max a b) ())
          inv.Ctx.inv_mutex;
        let acc = ref [] in
        for i = 0 to Netlist.length nl - 1 do
          match Netlist.kind nl i with
          | Cell.And | Cell.Nand ->
            let ins =
              Array.to_list (Netlist.fanin nl i)
              |> List.filter_map (fun f ->
                     let tr = Ctx.back_trace nl f in
                     if tr.Ctx.inverted then None else Some tr.Ctx.origin)
            in
            let rec first_pair = function
              | [] -> None
              | a :: rest -> (
                match
                  List.find_opt
                    (fun b -> Hashtbl.mem mutex (min a b, max a b))
                    rest
                with
                | Some b -> Some (a, b)
                | None -> first_pair rest)
            in
            (match first_pair ins with
            | Some (a, b) ->
              acc :=
                Rule.raw ~node:i ~path:[ a; b ]
                  (Printf.sprintf
                     "%s %s conjoins mutex flops %s and %s — the gate can \
                      never assert in any reachable state"
                     (Cell.kind_name (Netlist.kind nl i))
                     (name ctx i) (name ctx a) (name ctx b))
                :: !acc
            | None -> ())
          | _ -> ()
        done;
        List.rev !acc
      | _ -> [])

let inv_003 =
  Rule.make ~code:"INV-003" ~category:Rule.Invariant ~severity:Rule.Info
    ~title:"flop proved constant by induction but not structurally tied"
    ~doc:
      "The invariant engine proved these flops constant in every \
       reachable state, yet mission ternary implication cannot show it: \
       each is a Sec. 3.3 tie/assume opportunity, and every fault whose \
       tests need the opposite value is functionally untestable \
       on-line."
    (fun ctx ->
      match Ctx.invariants ctx with
      | None -> []
      | Some inv -> (
        let tern = Ctx.mission_ternary ctx in
        let untied =
          List.filter
            (fun (ff, _) ->
              not (Logic4.is_binary (Olfu_atpg.Ternary.const_of tern ff)))
            inv.Ctx.inv_consts
        in
        match untied with
        | [] -> []
        | (ff0, v0) :: _ ->
          [
            Rule.raw ~node:ff0 ~path:(List.map fst untied)
              (Printf.sprintf
                 "%s proves %d flops constant (e.g. %s = %d) that ternary \
                  implication cannot tie"
                 inv.Ctx.inv_label (List.length untied) (name ctx ff0)
                 (if v0 then 1 else 0));
          ]))

(* ---------------------------------------------------------------- *)
(* Slice-backed (constant-severed cone of influence)                *)
(* ---------------------------------------------------------------- *)

(* an input the mission can actually drive: not clock/reset wiring, not
   the scan interface, not a tied debug control *)
let functional_input nl i =
  not
    (Netlist.has_role nl i Netlist.Clock
    || Netlist.has_role nl i Netlist.Reset
    || Netlist.has_role nl i Netlist.Scan_enable
    || Netlist.has_role nl i Netlist.Scan_in
    || Netlist.has_role nl i Netlist.Debug_control)

let functional_output nl o =
  not
    (Netlist.has_role nl o Netlist.Scan_out
    || Netlist.has_role nl o Netlist.Debug_observe)

let slice_001 =
  Rule.make ~code:"SLICE-001" ~category:Rule.Testability ~severity:Rule.Info
    ~title:"flop unreachable from any functional input under mission constants"
    ~doc:
      "No functional primary input (clock, reset, scan and tied debug \
       inputs excluded) remains in the flop's backward cone once \
       mission-constant severing drops the decided mux branches and \
       scan-data pins: the mission cannot steer the flop's state, so \
       faults needing a specific value there are on-line \
       controllability-limited.  Mission-constant flops are excluded — \
       the constant rules already report those."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let module Sl = Olfu_slice.Slice in
      let g = Ctx.slice ctx in
      let e = g.Sl.mission_edges in
      let unreachable =
        Array.to_list g.Sl.flops
        |> List.filteri (fun o f ->
               (not (Logic4.is_binary g.Sl.mission.(f)))
               &&
               let closure = Sl.backward_flops e [ o ] in
               let driven = ref false in
               Array.iteri
                 (fun o' inc ->
                   if inc && Array.exists (functional_input nl) e.Sl.in_deps.(o')
                   then driven := true)
                 closure;
               not !driven)
      in
      match unreachable with
      | [] -> []
      | hd :: _ ->
        [
          Rule.raw ~node:hd ~path:unreachable
            (Printf.sprintf
               "%d non-constant flops have no functional input left in \
                their mission-severed backward cone (e.g. %s)"
               (List.length unreachable) (name ctx hd));
        ])

let slice_002 =
  Rule.make ~code:"SLICE-002" ~category:Rule.Testability ~severity:Rule.Info
    ~title:"flop with no mission path to a functional output or alarm"
    ~doc:
      "Under mission-constant severing the flop's forward cone reaches \
       no output marker except scan-out or debug-observe nets: whatever \
       it latches, the field never sees it, so every fault whose effect \
       is confined to this flop is on-line observability-limited.  \
       Mission-constant flops are excluded."
    (fun ctx ->
      let nl = Ctx.nl ctx in
      let module Sl = Olfu_slice.Slice in
      let g = Ctx.slice ctx in
      let e = g.Sl.mission_edges in
      let unobserved =
        Array.to_list g.Sl.flops
        |> List.filteri (fun o f ->
               (not (Logic4.is_binary g.Sl.mission.(f)))
               &&
               let fc = Sl.forward_flops e [ o ] in
               not
                 (Array.exists
                    (fun (m, ffs) ->
                      functional_output nl m
                      && Array.exists (fun o' -> fc.(o')) ffs)
                    e.Sl.out_deps))
      in
      match unobserved with
      | [] -> []
      | hd :: _ ->
        [
          Rule.raw ~node:hd ~path:unobserved
            (Printf.sprintf
               "%d non-constant flops reach no functional output or alarm \
                through the mission-severed graph (e.g. %s)"
               (List.length unobserved) (name ctx hd));
        ])

let all =
  [
    scan_001; scan_002; scan_003; scan_004; scan_005; scan_006; scan_007;
    loop_001; drv_001; drv_002; rst_001; rst_002; rst_003; rst_004; rst_005;
    rst_006; clk_001; net_001; net_002; xprop_001; const_001; conflict_001;
    obs_001; test_001; dbg_001; dbg_002; struct_001; struct_002; sw_001;
    sw_002; sw_003; sw_004; seu_001; inv_001; inv_002; inv_003; slice_001;
    slice_002;
  ]
