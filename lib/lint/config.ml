type waiver = { w_code : string; w_node : string option; w_reason : string }

type t = {
  disabled : string list;
  severity_overrides : (string * Rule.severity) list;
  waivers : waiver list;
  baseline : string list;
  thresholds : Ctx.thresholds;
}

let default =
  {
    disabled = [];
    severity_overrides = [];
    waivers = [];
    baseline = [];
    thresholds = Ctx.default_thresholds;
  }

let rule_enabled t (r : Rule.t) =
  (not (List.mem r.Rule.code t.disabled))
  && not (List.mem (Rule.category_name r.Rule.category) t.disabled)

let effective_severity t (r : Rule.t) =
  match List.assoc_opt r.Rule.code t.severity_overrides with
  | Some s -> s
  | None -> r.Rule.severity

let parse_waivers text =
  let lines = String.split_on_char '\n' text in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      with
      | [] -> go acc (n + 1) rest
      | [ _ ] ->
        Error (Printf.sprintf "waiver line %d: expected CODE NODE [reason]" n)
      | code :: node :: reason ->
        let w_node = if node = "*" then None else Some node in
        go
          ({ w_code = code; w_node; w_reason = String.concat " " reason }
          :: acc)
          (n + 1) rest)
  in
  go [] 1 lines

let load_waivers path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error m
  | text -> parse_waivers text

let node_name nl = function
  | None -> "-"
  | Some i -> Ctx.node_label nl i

let waiver_matches nl w (f : Rule.finding) =
  w.w_code = f.Rule.code
  &&
  match w.w_node with
  | None -> true
  | Some pat ->
    let name = node_name nl f.Rule.node in
    let np = String.length pat in
    if np > 0 && pat.[np - 1] = '*' then
      let prefix = String.sub pat 0 (np - 1) in
      String.length name >= String.length prefix
      && String.sub name 0 (String.length prefix) = prefix
    else name = pat

let fingerprint nl (f : Rule.finding) =
  Printf.sprintf "%s\t%s\t%s" f.Rule.code (node_name nl f.Rule.node)
    f.Rule.message

let load_baseline path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error m
  | text ->
    Ok
      (String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> ""))

let baseline_of_findings nl findings = List.map (fingerprint nl) findings

let save_baseline path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let pp_waiver ppf w =
  Format.fprintf ppf "%s %s%s" w.w_code
    (match w.w_node with None -> "*" | Some n -> n)
    (if w.w_reason = "" then "" else " # " ^ w.w_reason)
