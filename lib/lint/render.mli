(** Renderers for a lint {!Lint.outcome}. *)

val text : Format.formatter -> Lint.outcome -> unit
(** Human-readable listing: one line per finding, then waiver/baseline
    accounting, unused-waiver warnings and totals. *)

val summary : Format.formatter -> Lint.outcome -> unit
(** Per-rule summary table (code, severity, category, count, title) over
    the rules that fired, plus a totals line. *)

val json : Format.formatter -> Lint.outcome -> unit
(** Machine-readable SARIF-flavoured JSON: one run with full rule
    metadata ([tool.driver.rules]) and one result per finding with
    logical node locations; waiver/baseline accounting under
    [runs[0].properties]. *)

val rules_catalogue : Format.formatter -> Rule.t list -> unit
(** The [--rules] listing: code, default severity, category, title. *)
