open Olfu_netlist

(** Lint configuration: rule selection, severity overrides, waivers and
    baselines.

    {b Waiver files} are line-oriented:
    {v
    # comment
    SCAN-001 core.ff12   known unstitched prototype cell
    NET-001  dbg_*       floated on purpose
    OBS-001  *           whole rule waived
    v}
    First token: rule code.  Second token: exact node name, a prefix
    pattern ending in [*], or [*] for any node (also matches findings
    without a node).  The rest of the line is the reason.

    {b Baseline files} record one fingerprint per line
    ([code\tnode\tmessage]); findings whose fingerprint appears in the
    baseline are suppressed, so a legacy netlist can be brought under
    lint without fixing historical findings first. *)

type waiver = {
  w_code : string;
  w_node : string option;  (** [None] = any node ([*]) *)
  w_reason : string;
}

type t = {
  disabled : string list;
      (** rule codes or category names, case-sensitive *)
  severity_overrides : (string * Rule.severity) list;  (** by rule code *)
  waivers : waiver list;
  baseline : string list;  (** finding fingerprints *)
  thresholds : Ctx.thresholds;
}

val default : t

val rule_enabled : t -> Rule.t -> bool
val effective_severity : t -> Rule.t -> Rule.severity

val parse_waivers : string -> (waiver list, string) result
(** Parse waiver-file contents. *)

val load_waivers : string -> (waiver list, string) result
val waiver_matches : Netlist.t -> waiver -> Rule.finding -> bool

val fingerprint : Netlist.t -> Rule.finding -> string
val load_baseline : string -> (string list, string) result
val baseline_of_findings : Netlist.t -> Rule.finding list -> string list
val save_baseline : string -> string list -> unit

val pp_waiver : Format.formatter -> waiver -> unit
