open Olfu_logic
open Olfu_netlist

type thresholds = {
  max_fanout : int;
  max_depth : int;
  chain_imbalance : int;
  scoap_top : int;
}

let default_thresholds =
  { max_fanout = 512; max_depth = 2048; chain_imbalance = 300; scoap_top = 3 }

type hop = { cell : int; path : int list }

type chain = {
  scan_in : int;
  hops : hop list;
  scan_out : int option;
  tail_path : int list;
}

type trace = { origin : int; inverted : bool; through : int list }

type software = {
  sw_label : string;
  sw_width : int;
  sw_const_addr_bits : (int * bool) list;
  sw_assume : (int * Logic4.t) list;
  sw_dead_code : (string * int list) list;
  sw_store_total : int;
  sw_ram_stores : bool;
  sw_unmapped : string list;
}

type invariants = {
  inv_label : string;
  inv_consts : (int * bool) list;
  inv_mutex : (int * int) list;
  inv_ranges : (int array * int list) list;
}

type t = {
  nl : Netlist.t;
  limits : thresholds;
  software : software option;
  invariants : invariants option;
  ternary : Olfu_atpg.Ternary.t Lazy.t;
  mission_ternary : Olfu_atpg.Ternary.t Lazy.t;
  scoap : Olfu_atpg.Scoap.t Lazy.t;
  observe : Olfu_atpg.Observe.t Lazy.t;
  dead : int list Lazy.t;
  chains : chain list Lazy.t;
  chain_cells : (int, unit) Hashtbl.t Lazy.t;
  si_cycles : int list list Lazy.t;
  slice : Olfu_slice.Slice.t Lazy.t;
}

let node_label nl i =
  match Netlist.name nl i with Some s -> s | None -> Printf.sprintf "n%d" i

let back_trace nl net =
  (* frozen netlists have no combinational loop, so this terminates; the
     step bound is belt-and-braces *)
  let rec go node inverted through steps =
    if steps > Netlist.length nl then { origin = node; inverted; through }
    else
      match Netlist.kind nl node with
      | Cell.Buf -> go (Netlist.fanin nl node).(0) inverted (node :: through)
                      (steps + 1)
      | Cell.Not ->
        go (Netlist.fanin nl node).(0) (not inverted) (node :: through)
          (steps + 1)
      | _ -> { origin = node; inverted; through }
  in
  go net false [] 0

let is_scan_cell nl i =
  match Netlist.kind nl i with Cell.Sdff | Cell.Sdffr -> true | _ -> false

(* First-match hop from [net] to the next SI pin or scan-out port, crossing
   buffers/inverters (recorded in shift order). *)
let next_hop nl net =
  let rec hop net path =
    let fanout = Netlist.fanout nl net in
    let rec scan k =
      if k >= Array.length fanout then None
      else
        let sink, pin = fanout.(k) in
        match Netlist.kind nl sink with
        | (Cell.Sdff | Cell.Sdffr) when pin = 1 ->
          Some (`Cell sink, List.rev path)
        | Cell.Output when Netlist.has_role nl sink Netlist.Scan_out ->
          Some (`Out sink, List.rev path)
        | Cell.Buf | Cell.Not -> (
          match hop sink (sink :: path) with
          | Some h -> Some h
          | None -> scan (k + 1))
        | _ -> scan (k + 1)
    in
    scan 0
  in
  hop net []

let trace_chains nl =
  let trace_from port =
    let rec follow net hops =
      match next_hop nl net with
      | Some (`Cell ff, path) -> follow ff ({ cell = ff; path } :: hops)
      | Some (`Out o, path) -> (List.rev hops, Some o, path)
      | None -> (List.rev hops, None, [])
    in
    let hops, scan_out, tail_path = follow port [] in
    { scan_in = port; hops; scan_out; tail_path }
  in
  Netlist.nodes_with_role nl Netlist.Scan_in
  |> Array.to_list
  |> List.filter (fun i -> Cell.equal_kind (Netlist.kind nl i) Cell.Input)
  |> List.map trace_from

(* Shift-path cycles.  Each scan cell has one SI pin with one driver; the
   backward trace of that driver through buffers yields at most one
   predecessor scan cell, so the "shifts into" relation is a functional
   graph walked with the standard three-colour scheme. *)
let compute_si_cycles nl =
  let pred = Hashtbl.create 17 in
  Array.iter
    (fun c ->
      if is_scan_cell nl c then begin
        let tr = back_trace nl (Netlist.fanin nl c).(1) in
        if is_scan_cell nl tr.origin then
          Hashtbl.replace pred c (tr.origin, tr.through)
      end)
    (Netlist.seq_nodes nl);
  let color = Hashtbl.create 17 in
  let cycles = ref [] in
  let blacken path = List.iter (fun n -> Hashtbl.replace color n `Black) path in
  (* [path]: grey nodes, head [h] with pred(h) = [n]; each element shifts
     into the one after it in list order *)
  let rec walk path n =
    match Hashtbl.find_opt color n with
    | Some `Black -> blacken path
    | Some `Grey ->
      let rec upto = function
        | [] -> []
        | x :: _ when x = n -> []
        | x :: rest -> x :: upto rest
      in
      let cells = n :: upto path in
      (* expand with the buffers crossed entering each successor *)
      let k = List.length cells in
      let full =
        List.concat
          (List.mapi
             (fun i a ->
               let b = List.nth cells ((i + 1) mod k) in
               let through =
                 match Hashtbl.find_opt pred b with
                 | Some (_, th) -> th
                 | None -> []
               in
               a :: through)
             cells)
      in
      cycles := full :: !cycles;
      blacken path;
      Hashtbl.replace color n `Black
    | None -> (
      Hashtbl.replace color n `Grey;
      match Hashtbl.find_opt pred n with
      | Some (p, _) -> walk (n :: path) p
      | None -> blacken (n :: path))
  in
  Array.iter
    (fun c ->
      if is_scan_cell nl c && not (Hashtbl.mem color c) then walk [] c)
    (Netlist.seq_nodes nl);
  List.rev !cycles

let compute_dead nl =
  let n = Netlist.length nl in
  let mark = Array.make n false in
  let rec visit i =
    if not mark.(i) then begin
      mark.(i) <- true;
      Array.iter visit (Netlist.fanin nl i)
    end
  in
  Array.iter visit (Netlist.outputs nl);
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if (not mark.(i)) && not (Cell.equal_kind (Netlist.kind nl i) Cell.Input)
    then acc := i :: !acc
  done;
  !acc

(* Reset-role inputs backward-reachable through the gating idioms
   (buffers, inverters, and/or gates).  Root set of a reset pin: which
   reset inputs ultimately control it, through whatever gating. *)
let reset_roots nl net =
  let seen = Hashtbl.create 17 in
  let roots = ref [] in
  let rec visit i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.replace seen i ();
      match Netlist.kind nl i with
      | Cell.Input ->
        if Netlist.has_role nl i Netlist.Reset then roots := i :: !roots
      | Cell.Buf | Cell.Not | Cell.And | Cell.Or | Cell.Nand | Cell.Nor ->
        Array.iter visit (Netlist.fanin nl i)
      | _ -> ()
    end
  in
  visit net;
  List.sort compare !roots

let mission_assume nl =
  Netlist.nodes_with_role nl Netlist.Debug_control
  |> Array.to_list
  |> List.filter (fun i -> Cell.equal_kind (Netlist.kind nl i) Cell.Input)
  |> List.map (fun i -> (i, Logic4.L0))

let data_fanout nl i =
  Array.fold_left
    (fun acc (sink, pin) ->
      let wiring =
        match Netlist.kind nl sink with
        | Cell.Sdff -> pin = 1 || pin = 2
        | Cell.Sdffr -> pin = 1 || pin = 2 || pin = 3
        | Cell.Dffr -> pin = 1
        | _ -> false
      in
      if wiring then acc else acc + 1)
    0 (Netlist.fanout nl i)

let combined_assume nl software =
  mission_assume nl
  @ (match software with Some s -> s.sw_assume | None -> [])

let create ?(thresholds = default_thresholds) ?software ?invariants nl =
  let chains = lazy (trace_chains nl) in
  let ternary = lazy (Olfu_atpg.Ternary.run nl) in
  {
    nl;
    limits = thresholds;
    software;
    invariants;
    ternary;
    mission_ternary =
      lazy (Olfu_atpg.Ternary.run ~assume:(combined_assume nl software) nl);
    scoap = lazy (Olfu_atpg.Scoap.run nl);
    observe =
      lazy
        (Olfu_atpg.Observe.run nl
           ~consts:(Lazy.force ternary).Olfu_atpg.Ternary.values);
    dead = lazy (compute_dead nl);
    chains;
    chain_cells =
      lazy
        (let h = Hashtbl.create 97 in
         List.iter
           (fun c -> List.iter (fun hp -> Hashtbl.replace h hp.cell ()) c.hops)
           (Lazy.force chains);
         h);
    si_cycles = lazy (compute_si_cycles nl);
    slice =
      lazy (Olfu_slice.Slice.build ~assume:(combined_assume nl software) nl);
  }

let nl t = t.nl
let limits t = t.limits
let software t = t.software
let invariants t = t.invariants
let assumptions t = combined_assume t.nl t.software
let name t i = node_label t.nl i
let ternary t = Lazy.force t.ternary
let mission_ternary t = Lazy.force t.mission_ternary
let scoap t = Lazy.force t.scoap
let observe t = Lazy.force t.observe
let dead_nodes t = Lazy.force t.dead
let chains t = Lazy.force t.chains
let chain_cells t = Lazy.force t.chain_cells
let si_cycles t = Lazy.force t.si_cycles
let slice t = Lazy.force t.slice
