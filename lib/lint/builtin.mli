(** The built-in rule catalogue: the ten checks of the original
    [Dft_lint] pass (since deleted) ported onto the registry (same codes
    and severities) plus the new
    shift-path, reset/clock, X-propagation, mission-constant, debug
    tie-off and structural-metric passes, plus the SW-* rules consuming
    software facts from the abstract interpreter.  See README "Static
    analysis" for the full catalogue. *)

val all : Rule.t list
(** Registry order: scan, loops/drivers, reset/clock, nets/constants,
    observability/testability, debug, structure, software. *)
