open Olfu_netlist

(* ---------------------------------------------------------------- *)
(* Minimal JSON emitter (no JSON library in the toolchain)          *)
(* ---------------------------------------------------------------- *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Int of int

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit ppf = function
  | Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | Int i -> Format.fprintf ppf "%d" i
  | Arr [] -> Format.fprintf ppf "[]"
  | Arr l ->
    Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         emit)
      l
  | Obj [] -> Format.fprintf ppf "{}"
  | Obj fields ->
    Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         (fun ppf (k, v) -> Format.fprintf ppf "\"%s\": %a" (escape k) emit v))
      fields

(* ---------------------------------------------------------------- *)
(* Text                                                             *)
(* ---------------------------------------------------------------- *)

let severity_pad = function
  | Rule.Error -> "error  "
  | Rule.Warning -> "warning"
  | Rule.Info -> "info   "

let pp_finding nl ppf (f : Rule.finding) =
  Format.fprintf ppf "%s %-10s %s" (severity_pad f.Rule.severity) f.Rule.code
    f.Rule.message;
  match f.Rule.node with
  | Some i when f.Rule.message <> "" ->
    Format.fprintf ppf "  [%s]" (Ctx.node_label nl i)
  | _ -> ()

let count sev =
  List.fold_left
    (fun acc (f : Rule.finding) ->
      if f.Rule.severity = sev then acc + 1 else acc)
    0

let text ppf (o : Lint.outcome) =
  let nl = o.Lint.netlist in
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," (pp_finding nl) f) o.findings;
  List.iter
    (fun w ->
      Format.fprintf ppf "warning: unused waiver: %a@," Config.pp_waiver w)
    o.Lint.unused_waivers;
  Format.fprintf ppf "%d findings (%d errors, %d warnings, %d info)"
    (List.length o.Lint.findings)
    (count Rule.Error o.Lint.findings)
    (count Rule.Warning o.Lint.findings)
    (count Rule.Info o.Lint.findings);
  if o.Lint.waived <> [] || o.Lint.baselined <> [] then
    Format.fprintf ppf "; %d waived, %d baselined"
      (List.length o.Lint.waived)
      (List.length o.Lint.baselined);
  Format.fprintf ppf "@]"

(* ---------------------------------------------------------------- *)
(* Summary table                                                    *)
(* ---------------------------------------------------------------- *)

let summary ppf (o : Lint.outcome) =
  let per_rule =
    List.filter_map
      (fun (r : Rule.t) ->
        let fs =
          List.filter
            (fun (f : Rule.finding) -> f.Rule.code = r.Rule.code)
            o.Lint.findings
        in
        match fs with
        | [] -> None
        | f :: _ ->
          Some (r.Rule.code, f.Rule.severity, r.Rule.category,
                List.length fs, r.Rule.title))
      o.Lint.rules
  in
  Format.fprintf ppf "@[<v>%-11s %-8s %-13s %5s  %s@," "code" "severity"
    "category" "count" "title";
  List.iter
    (fun (code, sev, cat, n, title) ->
      Format.fprintf ppf "%-11s %-8s %-13s %5d  %s@," code
        (Rule.severity_name sev)
        (Rule.category_name cat)
        n title)
    per_rule;
  Format.fprintf ppf "%d rules fired of %d run; %d findings (%d errors)"
    (List.length per_rule)
    (List.length o.Lint.rules)
    (List.length o.Lint.findings)
    (List.length (Lint.errors o.Lint.findings));
  if o.Lint.waived <> [] || o.Lint.baselined <> [] then
    Format.fprintf ppf "; %d waived, %d baselined"
      (List.length o.Lint.waived)
      (List.length o.Lint.baselined);
  Format.fprintf ppf "@]"

(* ---------------------------------------------------------------- *)
(* SARIF-flavoured JSON                                             *)
(* ---------------------------------------------------------------- *)

let sarif_level = function
  | Rule.Error -> "error"
  | Rule.Warning -> "warning"
  | Rule.Info -> "note"

let location nl i =
  Obj
    [
      ( "logicalLocations",
        Arr
          [
            Obj
              [
                ("name", Str (Ctx.node_label nl i));
                ("index", Int i);
                ("kind", Str "net");
              ];
          ] );
    ]

let json ppf (o : Lint.outcome) =
  let nl = o.Lint.netlist in
  let rules =
    List.map
      (fun (r : Rule.t) ->
        Obj
          [
            ("id", Str r.Rule.code);
            ("shortDescription", Obj [ ("text", Str r.Rule.title) ]);
            ("fullDescription", Obj [ ("text", Str r.Rule.doc) ]);
            ( "defaultConfiguration",
              Obj [ ("level", Str (sarif_level r.Rule.severity)) ] );
            ( "properties",
              Obj [ ("category", Str (Rule.category_name r.Rule.category)) ]
            );
          ])
      o.Lint.rules
  in
  let result (f : Rule.finding) =
    Obj
      ([
         ("ruleId", Str f.Rule.code);
         ("level", Str (sarif_level f.Rule.severity));
         ("message", Obj [ ("text", Str f.Rule.message) ]);
       ]
      @ (match f.Rule.node with
        | Some i -> [ ("locations", Arr [ location nl i ]) ]
        | None -> [])
      @
      match f.Rule.path with
      | [] -> []
      | path -> [ ("relatedLocations", Arr (List.map (location nl) path)) ])
  in
  let doc =
    Obj
      [
        ("$schema", Str "https://json.schemastore.org/sarif-2.1.0.json");
        ("version", Str "2.1.0");
        ( "runs",
          Arr
            [
              Obj
                [
                  ( "tool",
                    Obj
                      [
                        ( "driver",
                          Obj
                            [
                              ("name", Str "olfu_lint");
                              ("version", Str "1.0.0");
                              ( "informationUri",
                                Str
                                  "https://example.invalid/olfu (DATE 2013 \
                                   reproduction)" );
                              ("rules", Arr rules);
                            ] );
                      ] );
                  ("results", Arr (List.map result o.Lint.findings));
                  ( "properties",
                    Obj
                      [
                        ("netlistNodes", Int (Netlist.length nl));
                        ("waived", Int (List.length o.Lint.waived));
                        ("baselined", Int (List.length o.Lint.baselined));
                        ( "unusedWaivers",
                          Arr
                            (List.map
                               (fun w ->
                                 Str
                                   (Format.asprintf "%a" Config.pp_waiver w))
                               o.Lint.unused_waivers) );
                      ] );
                ];
            ] );
      ]
  in
  Format.fprintf ppf "%a@." emit doc

let rules_catalogue ppf rules =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf ppf "%-11s %-8s %-13s %s@," r.Rule.code
        (Rule.severity_name r.Rule.severity)
        (Rule.category_name r.Rule.category)
        r.Rule.title)
    rules;
  Format.fprintf ppf "%d rules@]" (List.length rules)
