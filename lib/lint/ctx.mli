open Olfu_logic
open Olfu_netlist

(** Shared analysis context for the lint rule registry.

    Every expensive whole-netlist analysis a rule may want (ternary
    implication, SCOAP, X-path observability, dead-cone reachability,
    scan-path tracing) is computed lazily and memoized here, so a run of
    the full registry performs each analysis at most once no matter how
    many rules consume it.

    The scan tracer is deliberately richer than
    [Olfu_manip.Scan_trace.trace] (which this library must not depend on —
    [olfu_manip] sits above [olfu_lint] in the dependency order): it
    records the buffers/inverters of every shift-path hop, which feeds
    the polarity, census and loop rules. *)

(** Tunable limits consumed by the structural rules. *)
type thresholds = {
  max_fanout : int;  (** STRUCT-001: data-fanout ceiling per net *)
  max_depth : int;  (** STRUCT-002: combinational depth ceiling *)
  chain_imbalance : int;
      (** SCAN-007: max/min chain length, in percent (300 = 3x) *)
  scoap_top : int;  (** TEST-001: how many SCOAP hotspots to report *)
}

val default_thresholds : thresholds

(** One shift-path hop: the mux-scan cell reached and the buffers or
    inverters crossed since the previous cell (or the scan-in port), in
    shift order. *)
type hop = { cell : int; path : int list }

type chain = {
  scan_in : int;  (** the scan-in input port *)
  hops : hop list;  (** cells in shift order, with their entry paths *)
  scan_out : int option;  (** terminating output marker, if any *)
  tail_path : int list;  (** buffers between the last cell and scan-out *)
}

(** Result of walking a net backward through buffers/inverters. *)
type trace = {
  origin : int;  (** first non-buffer node reached *)
  inverted : bool;  (** odd number of inverters crossed *)
  through : int list;  (** crossed buffers/inverters, origin side first *)
}

(** Facts proven about the mission software by an external analysis
    (in practice {!Olfu_absint} over the SBST suite; this library stays
    below [olfu_absint] in the dependency order, so the facts arrive as
    plain data).  Consumed by the SW-* rules and folded into
    {!mission_ternary}. *)
type software = {
  sw_label : string;  (** provenance, e.g. ["sbst-suite"] *)
  sw_width : int;  (** address width the bit indices refer to *)
  sw_const_addr_bits : (int * bool) list;
      (** address bits never toggled by any analysed program *)
  sw_assume : (int * Logic4.t) list;
      (** netlist nodes (address-register flops, constant [bus_rdata]
          input bits) forced by the software, for [Ternary.run ?assume] *)
  sw_dead_code : (string * int list) list;
      (** per program: instruction word addresses proven unreachable *)
  sw_store_total : int;  (** store sites across the analysed programs *)
  sw_ram_stores : bool;
      (** some store provably lands in data RAM (the on-line observation
          point of the paper) *)
  sw_unmapped : string list;
      (** accesses that may escape every mapped region *)
}

(** Facts proven about the reachable state space by an external
    invariant engine (in practice {!Olfu_invar} mine/filter/prove over
    the mission-held machine; this library stays below [olfu_invar] in
    the dependency order, so — exactly like {!software} — the proofs
    arrive as plain data).  Consumed by the INV-* rules.  Soundness is
    the producer's responsibility: only certificate-carrying proved
    invariants may be handed over. *)
type invariants = {
  inv_label : string;  (** provenance, e.g. ["invar k=1"] *)
  inv_consts : (int * bool) list;
      (** flops proved constant in every reachable state *)
  inv_mutex : (int * int) list;
      (** flop pairs proved never simultaneously 1 *)
  inv_ranges : (int array * int list) list;
      (** register bit-groups (LSB first) with their proved reachable
          value sets — gaps are unreachable encodings *)
}

type t

val create :
  ?thresholds:thresholds ->
  ?software:software ->
  ?invariants:invariants ->
  Netlist.t ->
  t
val nl : t -> Netlist.t
val limits : t -> thresholds

val software : t -> software option

val invariants : t -> invariants option

val assumptions : t -> (int * Logic4.t) list
(** Everything {!mission_ternary} assumes: {!mission_assume} plus the
    software [sw_assume] facts when present. *)

val node_label : Netlist.t -> int -> string
(** Hierarchical name of the net, or ["n<id>"]. *)

val name : t -> int -> string

val back_trace : Netlist.t -> int -> trace
(** Walk a net backward through [Buf]/[Not] cells to its origin. *)

val reset_roots : Netlist.t -> int -> int list
(** Reset-role inputs backward-reachable from the net through the reset
    gating idioms (buffers, inverters, and/nand/or/nor gates), sorted.
    Empty = an orphan reset; more than one = mixed domains; a non-trivial
    path through gates = a gated reset. *)

val ternary : t -> Olfu_atpg.Ternary.t
(** Steady-state ternary implication on the netlist as given. *)

val mission_assume : Netlist.t -> (int * Logic4.t) list
(** The §3.2 tie script as implication assumptions: every
    [Debug_control] input still present as a free input, tied to 0. *)

val mission_ternary : t -> Olfu_atpg.Ternary.t
(** Ternary implication with {!assumptions} applied. *)

val scoap : t -> Olfu_atpg.Scoap.t
val observe : t -> Olfu_atpg.Observe.t

val dead_nodes : t -> int list
(** Nodes with no structural path to any output marker (inputs exempt). *)

val chains : t -> chain list
val chain_cells : t -> (int, unit) Hashtbl.t
(** The set of mux-scan cells reached by some chain. *)

val slice : t -> Olfu_slice.Slice.t
(** Constant-severed flop dependency graph, with the mission edges
    strengthened by {!assumptions} (so software-held constants sever
    too).  Feeds the SLICE-* rules. *)

val si_cycles : t -> int list list
(** Shift-path cycles: each is the full cycle path in shift order (scan
    cells and the buffers between them).  A cycle is never reachable from
    a scan-in port (an SI pin has a single driver), so these are exactly
    the closed shift loops a chain tracer would never terminate on. *)

val data_fanout : Netlist.t -> int -> int
(** Fanout branches excluding scan/reset wiring pins (SI/SE of scan
    cells, rstn of resettable cells): the mission-logic load of a net. *)
