open Olfu_netlist

type outcome = {
  netlist : Netlist.t;
  findings : Rule.finding list;
  waived : (Rule.finding * Config.waiver) list;
  baselined : Rule.finding list;
  unused_waivers : Config.waiver list;
  rules : Rule.t list;
}

let registry = Builtin.all
let find_rule code = List.find_opt (fun r -> r.Rule.code = code) registry

let run ?(config = Config.default) ?software ?invariants nl =
  let ctx =
    Ctx.create ~thresholds:config.Config.thresholds ?software ?invariants nl
  in
  let rules = List.filter (Config.rule_enabled config) registry in
  let all =
    List.concat_map
      (fun (r : Rule.t) ->
        let severity = Config.effective_severity config r in
        List.map
          (fun (raw : Rule.raw) ->
            {
              Rule.code = r.Rule.code;
              severity;
              message = raw.Rule.r_message;
              node = raw.Rule.r_node;
              path = raw.Rule.r_path;
            })
          (r.Rule.run ctx))
      rules
  in
  let used = Hashtbl.create 7 in
  let waived, rest =
    List.fold_left
      (fun (waived, rest) f ->
        match
          List.find_opt
            (fun w -> Config.waiver_matches nl w f)
            config.Config.waivers
        with
        | Some w ->
          Hashtbl.replace used w ();
          ((f, w) :: waived, rest)
        | None -> (waived, f :: rest))
      ([], []) all
  in
  let waived = List.rev waived and rest = List.rev rest in
  let baselined, findings =
    List.partition
      (fun f -> List.mem (Config.fingerprint nl f) config.Config.baseline)
      rest
  in
  let unused_waivers =
    List.filter (fun w -> not (Hashtbl.mem used w)) config.Config.waivers
  in
  { netlist = nl; findings; waived; baselined; unused_waivers; rules }

let findings ?config ?software ?invariants nl =
  (run ?config ?software ?invariants nl).findings
let errors =
  List.filter (fun (f : Rule.finding) -> f.Rule.severity = Rule.Error)

let max_severity o =
  List.fold_left
    (fun acc (f : Rule.finding) ->
      match acc with
      | None -> Some f.Rule.severity
      | Some s ->
        if Rule.severity_rank f.Rule.severity > Rule.severity_rank s then
          Some f.Rule.severity
        else acc)
    None o.findings

let fails ~fail_on o =
  List.exists
    (fun (f : Rule.finding) ->
      Rule.severity_rank f.Rule.severity >= Rule.severity_rank fail_on)
    o.findings
