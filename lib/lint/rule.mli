(** First-class lint rules.

    A rule is a value: stable code, default severity, category, one-line
    title, documentation, and a run function over the shared analysis
    context.  The engine ({!Lint.run}) attaches code and effective
    severity to the raw findings a rule emits. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
val severity_of_name : string -> severity option

val severity_rank : severity -> int
(** [Error] = 3, [Warning] = 2, [Info] = 1 — used by [--fail-on]. *)

type category =
  | Scan
  | Reset
  | Clock
  | Net
  | Observability
  | Debug
  | Structure
  | Testability
  | Software  (** facts proven about the mission software (SW rules) *)
  | Invariant
      (** facts proven about the reachable state space (INV rules) *)

val category_name : category -> string
val category_of_name : string -> category option
val all_categories : category list

(** A finding as reported to the user. *)
type finding = {
  code : string;
  severity : severity;
  message : string;
  node : int option;  (** primary location (a node id), if any *)
  path : int list;  (** supporting nodes: cycle path, dead cone, ... *)
}

(** A finding as emitted by a rule, before the engine attaches code and
    effective severity. *)
type raw = { r_message : string; r_node : int option; r_path : int list }

val raw : ?node:int -> ?path:int list -> string -> raw

type t = {
  code : string;
  category : category;
  severity : severity;  (** default severity; config may override *)
  title : string;
  doc : string;
  run : Ctx.t -> raw list;
}

val make :
  code:string ->
  category:category ->
  severity:severity ->
  title:string ->
  doc:string ->
  (Ctx.t -> raw list) ->
  t
