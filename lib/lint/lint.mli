open Olfu_netlist

(** The lint engine: run the rule registry over a netlist under a
    configuration, applying waivers and baseline suppression. *)

type outcome = {
  netlist : Netlist.t;
  findings : Rule.finding list;  (** live findings, registry order *)
  waived : (Rule.finding * Config.waiver) list;
  baselined : Rule.finding list;
  unused_waivers : Config.waiver list;
      (** waivers that matched no finding — stale suppressions *)
  rules : Rule.t list;  (** the rules that ran (enabled ones) *)
}

val registry : Rule.t list
(** {!Builtin.all}. *)

val find_rule : string -> Rule.t option

val run :
  ?config:Config.t ->
  ?software:Ctx.software ->
  ?invariants:Ctx.invariants ->
  Netlist.t ->
  outcome
(** Runs every enabled rule over one shared {!Ctx.t}.  Each raw finding
    gets the rule's code and effective severity; findings matching a
    waiver or a baseline fingerprint are moved to [waived]/[baselined].
    [software] supplies program-side facts to the SW-* rules and to
    {!Ctx.mission_ternary}; [invariants] supplies proved state facts to
    the INV-* rules (each family stays silent without its facts). *)

val findings :
  ?config:Config.t ->
  ?software:Ctx.software ->
  ?invariants:Ctx.invariants ->
  Netlist.t ->
  Rule.finding list
(** [(run nl).findings] — convenience for callers that only want the
    live findings. *)

val errors : Rule.finding list -> Rule.finding list
val max_severity : outcome -> Rule.severity option

val fails : fail_on:Rule.severity -> outcome -> bool
(** True when some live finding is at least as severe as [fail_on]. *)
