type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 3 | Warning -> 2 | Info -> 1

type category =
  | Scan
  | Reset
  | Clock
  | Net
  | Observability
  | Debug
  | Structure
  | Testability
  | Software
  | Invariant

let category_name = function
  | Scan -> "scan"
  | Reset -> "reset"
  | Clock -> "clock"
  | Net -> "net"
  | Observability -> "observability"
  | Debug -> "debug"
  | Structure -> "structure"
  | Testability -> "testability"
  | Software -> "software"
  | Invariant -> "invariant"

let all_categories =
  [
    Scan; Reset; Clock; Net; Observability; Debug; Structure; Testability;
    Software; Invariant;
  ]

let category_of_name s =
  List.find_opt (fun c -> category_name c = s) all_categories

type finding = {
  code : string;
  severity : severity;
  message : string;
  node : int option;
  path : int list;
}

type raw = { r_message : string; r_node : int option; r_path : int list }

let raw ?node ?(path = []) message =
  { r_message = message; r_node = node; r_path = path }

type t = {
  code : string;
  category : category;
  severity : severity;
  title : string;
  doc : string;
  run : Ctx.t -> raw list;
}

let make ~code ~category ~severity ~title ~doc run =
  { code; category; severity; title; doc; run }
