open Olfu_logic
open Olfu_netlist
open Olfu_fault

type observation = {
  pattern : Comb_fsim.pattern;
  responses : (int * bool) list;
}

let observe ?faulty nl pattern =
  let values =
    match faulty with
    | Some f -> Comb_fsim.faulty_outputs nl f pattern
    | None ->
      (* the good circuit is the zero-effect fault on any pin; use a
         self-masking stuck-at on a constant-free read *)
      let srcs = Array.append (Netlist.inputs nl) (Netlist.seq_nodes nl) in
      let env = Olfu_sim.Comb_sim.init nl Logic4.X in
      Array.iteri (fun k s -> env.(s) <- pattern.(k)) srcs;
      Olfu_sim.Comb_sim.settle nl env;
      Netlist.outputs nl |> Array.to_list
      |> List.map (fun o -> (o, env.((Netlist.fanin nl o).(0))))
  in
  {
    pattern;
    responses =
      List.filter_map
        (fun (o, v) -> Option.map (fun b -> (o, b)) (Logic4.to_bool v))
        values;
  }

type candidate = {
  fault : int;
  explained : int;
  contradicted : int;
}

let candidates nl fl observations =
  let score fi =
    let f = Flist.fault fl fi in
    let explained = ref 0 and contradicted = ref 0 in
    List.iter
      (fun obs ->
        let predicted = Comb_fsim.faulty_outputs nl f obs.pattern in
        let all_match = ref true and any_contra = ref false in
        List.iter
          (fun (o, seen) ->
            match List.assoc_opt o predicted with
            | Some pv -> (
              match Logic4.to_bool pv with
              | Some b ->
                if b <> seen then begin
                  all_match := false;
                  any_contra := true
                end
              | None -> all_match := false (* X never contradicts *))
            | None -> all_match := false)
          obs.responses;
        if !all_match && obs.responses <> [] then incr explained;
        if !any_contra then incr contradicted)
      observations;
    { fault = fi; explained = !explained; contradicted = !contradicted }
  in
  let scored = List.init (Flist.size fl) score in
  List.sort
    (fun a b ->
      match Int.compare b.explained a.explained with
      | 0 -> Int.compare a.contradicted b.contradicted
      | c -> c)
    scored

let pp_candidate nl fl ppf c =
  Format.fprintf ppf "%-28s explains %d, contradicts %d"
    (Fault.to_string nl (Flist.fault fl c.fault))
    c.explained c.contradicted
