open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_sim
module Pool = Olfu_pool.Pool
module Trace = Olfu_obs.Trace

type pattern = Logic4.t array
type engine = Cone | Full_settle

let source_nodes nl = Analysis.sources (Analysis.get nl)

let random_patterns ?(seed = 0) nl n =
  let rng = Random.State.make [| seed |] in
  let width = Array.length (source_nodes nl) in
  Array.init n (fun _ ->
      Array.init width (fun _ -> Logic4.of_bool (Random.State.bool rng)))

type report = { patterns : int; detected : int; possibly : int }

let stuck_word (f : Fault.t) =
  Dualrail.const (if f.Fault.stuck then Logic4.L1 else Logic4.L0)

let pt_mask good faulty =
  (* good binary, faulty unknown: only possibly detected *)
  Int64.logand (Dualrail.binary_mask good)
    (Int64.lognot (Dualrail.binary_mask faulty))

(* Next-state value of a sequential cell from its input-pin values. *)
let capture_ins kind (ins : Dualrail.t array) =
  match kind with
  | Cell.Dff -> ins.(0)
  | Cell.Dffr -> Dualrail.mux ~sel:ins.(1) ~a:Dualrail.zero ~b:ins.(0)
  | Cell.Sdff -> Dualrail.mux ~sel:ins.(2) ~a:ins.(0) ~b:ins.(1)
  | Cell.Sdffr ->
    Dualrail.mux ~sel:ins.(3) ~a:Dualrail.zero
      ~b:(Dualrail.mux ~sel:ins.(2) ~a:ins.(0) ~b:ins.(1))
  | _ -> invalid_arg "Comb_fsim.capture_ins"

(* ------------------------------------------------------------------ *)
(* Full-settle reference engine: re-evaluates the whole netlist for    *)
(* every fault.  Kept as the oracle the cone engine is tested against  *)
(* and as the pre-optimization benchmark baseline.                     *)
(* ------------------------------------------------------------------ *)

(* Settle with a single fault injected, 64 patterns wide.  [env] must have
   source lanes already loaded.  Operand buffers come from [scratch]
   instead of a fresh [Array.init] per node. *)
let settle_faulty an scratch env (f : Fault.t) =
  let nl = Analysis.netlist an in
  let stuck = stuck_word f in
  let fnode = f.Fault.site.Fault.node in
  let fpin = f.Fault.site.Fault.pin in
  let stem_faulty i = fpin = Cell.Pin.Out && i = fnode in
  (* fault on a source stem *)
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Tie0 -> env.(i) <- Dualrail.zero
      | Cell.Tie1 -> env.(i) <- Dualrail.one
      | Cell.Tiex -> env.(i) <- Dualrail.unknown
      | _ -> if stem_faulty i then env.(i) <- stuck)
    nl;
  let operand i p =
    let v = env.((Netlist.fanin nl i).(p)) in
    if i = fnode && Cell.Pin.equal fpin (Cell.Pin.In p) then stuck else v
  in
  Array.iter
    (fun i ->
      let fanin = Netlist.fanin nl i in
      let a = Array.length fanin in
      let ins = Analysis.Scratch.ins scratch a in
      for p = 0 to a - 1 do
        ins.(p) <- operand i p
      done;
      let v = Eval.comb_par (Netlist.kind nl i) ins in
      env.(i) <- (if stem_faulty i then stuck else v))
    (Netlist.topo nl);
  operand

let capture_par nl operand i =
  match Netlist.kind nl i with
  | Cell.Dff -> operand i 0
  | Cell.Dffr ->
    Dualrail.mux ~sel:(operand i 1) ~a:Dualrail.zero ~b:(operand i 0)
  | Cell.Sdff -> Dualrail.mux ~sel:(operand i 2) ~a:(operand i 0) ~b:(operand i 1)
  | Cell.Sdffr ->
    Dualrail.mux ~sel:(operand i 3) ~a:Dualrail.zero
      ~b:(Dualrail.mux ~sel:(operand i 2) ~a:(operand i 0) ~b:(operand i 1))
  | _ -> invalid_arg "capture_par"

(* det/pt masks of one fault under the full-settle engine. *)
let eval_fault_full an scratch fenv genv good_cap obs_out observe_captures f =
  let nl = Analysis.netlist an in
  Array.iter (fun src -> fenv.(src) <- genv.(src)) (Analysis.sources an);
  let operand = settle_faulty an scratch fenv f in
  let det = ref 0L and pt = ref 0L in
  Array.iter
    (fun o ->
      if obs_out.(o) then begin
        let fv = operand o 0 in
        det := Int64.logor !det (Dualrail.diff_mask genv.(o) fv);
        pt := Int64.logor !pt (pt_mask genv.(o) fv)
      end)
    (Netlist.outputs nl);
  if observe_captures then
    Array.iter
      (fun s ->
        let fv = capture_par nl operand s in
        det := Int64.logor !det (Dualrail.diff_mask good_cap.(s) fv);
        pt := Int64.logor !pt (pt_mask good_cap.(s) fv))
      (Netlist.seq_nodes nl);
  (!det, !pt)

(* ------------------------------------------------------------------ *)
(* Cone-limited engine: good circuit settled once per batch; per fault *)
(* only the levelized fanout cone of the site is re-evaluated, with    *)
(* early exit once the event frontier dies out.                        *)
(* ------------------------------------------------------------------ *)

(* Propagate a differing value [v_start] on [start] through its cone.
   A node is re-evaluated only when a fanin carries a differing word;
   values that settle back to the good value are not stamped, so the
   frontier can die ([last_effect] tracks the furthest schedule position
   any live difference can still reach). *)
let walk_cone an s genv good_cap obs_out observe_captures
    (c : Analysis.cone) start v_start =
  let nl = Analysis.netlist an in
  let fval = Analysis.Scratch.fval s and stamp = Analysis.Scratch.stamp s in
  let gen = Analysis.Scratch.fresh_gen s in
  stamp.(start) <- gen;
  fval.(start) <- v_start;
  let sched = c.Analysis.sched in
  let last_sink = c.Analysis.last_sink in
  let last_effect = ref c.Analysis.stem_last in
  let nsched = Array.length sched in
  let k = ref 0 in
  while !k < nsched && !k <= !last_effect do
    let i = sched.(!k) in
    let fanin = Netlist.fanin nl i in
    let a = Array.length fanin in
    let dirty = ref false in
    for p = 0 to a - 1 do
      if stamp.(fanin.(p)) = gen then dirty := true
    done;
    if !dirty then begin
      let ins = Analysis.Scratch.ins s a in
      for p = 0 to a - 1 do
        let d = fanin.(p) in
        ins.(p) <- (if stamp.(d) = gen then fval.(d) else genv.(d))
      done;
      let v = Eval.comb_par (Netlist.kind nl i) ins in
      if not (Dualrail.equal v genv.(i)) then begin
        fval.(i) <- v;
        stamp.(i) <- gen;
        if last_sink.(!k) > !last_effect then last_effect := last_sink.(!k)
      end
    end;
    incr k
  done;
  let det = ref 0L and pt = ref 0L in
  Array.iter
    (fun o ->
      if obs_out.(o) && stamp.(o) = gen then begin
        det := Int64.logor !det (Dualrail.diff_mask genv.(o) fval.(o));
        pt := Int64.logor !pt (pt_mask genv.(o) fval.(o))
      end)
    c.Analysis.outs;
  if observe_captures then
    Array.iter
      (fun sq ->
        let fanin = Netlist.fanin nl sq in
        let a = Array.length fanin in
        let ins = Analysis.Scratch.ins s a in
        let dirty = ref false in
        for p = 0 to a - 1 do
          let d = fanin.(p) in
          if stamp.(d) = gen then begin
            dirty := true;
            ins.(p) <- fval.(d)
          end
          else ins.(p) <- genv.(d)
        done;
        if !dirty then begin
          let fv = capture_ins (Netlist.kind nl sq) ins in
          det := Int64.logor !det (Dualrail.diff_mask good_cap.(sq) fv);
          pt := Int64.logor !pt (pt_mask good_cap.(sq) fv)
        end)
      c.Analysis.seqs;
  (!det, !pt)

let eval_fault_cone an s genv good_cap obs_out observe_captures (f : Fault.t) =
  let nl = Analysis.netlist an in
  let stuck = stuck_word f in
  let fnode = f.Fault.site.Fault.node in
  match f.Fault.site.Fault.pin with
  | Cell.Pin.Clk -> (0L, 0L) (* no combinational meaning; filtered earlier *)
  | Cell.Pin.Out -> (
    match Netlist.kind nl fnode with
    | Cell.Tie0 | Cell.Tie1 | Cell.Tiex ->
      (0L, 0L) (* ties are outside the topo order; never injected *)
    | _ ->
      if Dualrail.equal stuck genv.(fnode) then (0L, 0L)
      else
        walk_cone an s genv good_cap obs_out observe_captures
          (Analysis.cone an s fnode) fnode stuck)
  | Cell.Pin.In p ->
    let kind = Netlist.kind nl fnode in
    let fanin = Netlist.fanin nl fnode in
    let a = Array.length fanin in
    if p >= a then (0L, 0L)
    else begin
    let ins = Analysis.Scratch.ins s a in
    for q = 0 to a - 1 do
      ins.(q) <- genv.(fanin.(q))
    done;
    ins.(p) <- stuck;
    if Cell.is_seq kind then
      (* the only batch-local effect is this flip-flop's capture *)
      if not observe_captures then (0L, 0L)
      else begin
        let fv = capture_ins kind ins in
        (Dualrail.diff_mask good_cap.(fnode) fv, pt_mask good_cap.(fnode) fv)
      end
    else begin
      let v = Eval.comb_par kind ins in
      if Dualrail.equal v genv.(fnode) then (0L, 0L)
      else
        walk_cone an s genv good_cap obs_out observe_captures
          (Analysis.cone an s fnode) fnode v
    end
    end

(* ------------------------------------------------------------------ *)
(* Batched run over a fault list, sharded across a domain pool.        *)
(* ------------------------------------------------------------------ *)

let run ?(observe_captures = true) ?(observable_output = fun _ -> true)
    ?(engine = Cone) ?jobs ?(trace = Trace.null) nl fl patterns =
  let jobs =
    match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  Trace.span trace ~cat:"engine" "fsim" @@ fun () ->
  let an = Analysis.get nl in
  let srcs = Analysis.sources an in
  let n = Netlist.length nl in
  let nfaults = Flist.size fl in
  let obs_out = Array.make n false in
  Array.iter
    (fun o -> if observable_output o then obs_out.(o) <- true)
    (Netlist.outputs nl);
  let detected = ref 0 and possibly = ref 0 in
  Pool.with_pool ~jobs (fun pool ->
      let nw = Pool.jobs pool in
      let scratches = Array.init nw (fun _ -> Analysis.Scratch.create an) in
      let fenvs =
        match engine with
        | Cone -> [||]
        | Full_settle ->
          Array.init nw (fun _ -> Array.make n Dualrail.unknown)
      in
      (* stride-padded per-worker counters: adjacent slots would
         false-share when every worker bumps its own tally *)
      let stride = 8 in
      let wdet = Array.make (nw * stride) 0
      and wposs = Array.make (nw * stride) 0 in
      (* heavy cones first: the pool's shrinking tail claims and work
         stealing absorb the skew instead of serializing it *)
      let order =
        Analysis.order_by_cost an
          ~site:(fun k -> (Flist.fault fl k).Fault.site.Fault.node)
          nfaults
      in
      let good_cap = Array.make n Dualrail.unknown in
      let nbatches = (Array.length patterns + 63) / 64 in
      for batch = 0 to nbatches - 1 do
        let base = batch * 64 in
        let lanes = min 64 (Array.length patterns - base) in
        let lane_full =
          if lanes = 64 then -1L
          else Int64.sub (Int64.shift_left 1L lanes) 1L
        in
        let genv = Par_sim.init nl Dualrail.unknown in
        Array.iteri
          (fun k src ->
            let v = ref Dualrail.unknown in
            for lane = 0 to lanes - 1 do
              v := Dualrail.set !v lane patterns.(base + lane).(k)
            done;
            genv.(src) <- !v)
          srcs;
        Par_sim.settle nl genv;
        if observe_captures then
          Array.iter
            (fun (s, v) -> good_cap.(s) <- v)
            (Par_sim.next_states nl genv);
        (* Sharding discipline: each fault index is processed by exactly
           one worker per batch; statuses and per-worker counters touch
           disjoint slots, so results are independent of scheduling. *)
        Pool.parallel_chunks pool ~n:nfaults ~chunk:256 ~trace ~label:"fsim"
          (fun ~worker ~lo ~hi ->
            let s = scratches.(worker) in
            let nact = ref 0 in
            for k = lo to hi - 1 do
              let fi = order.(k) in
              let st = Flist.status fl fi in
              let f = Flist.fault fl fi in
              let active =
                match st with
                | Status.Not_analyzed | Status.Not_detected
                | Status.Possibly_detected ->
                  f.Fault.site.Fault.pin <> Cell.Pin.Clk
                | _ -> false
              in
              if active then begin
                incr nact;
                let det, pt =
                  match engine with
                  | Cone ->
                    eval_fault_cone an s genv good_cap obs_out
                      observe_captures f
                  | Full_settle ->
                    eval_fault_full an s fenvs.(worker) genv good_cap
                      obs_out observe_captures f
                in
                let det = Int64.logand det lane_full in
                let pt = Int64.logand pt lane_full in
                if det <> 0L then begin
                  Flist.set_status fl fi Status.Detected;
                  wdet.(worker * stride) <- wdet.(worker * stride) + 1
                end
                else if
                  pt <> 0L && not (Status.equal st Status.Possibly_detected)
                then begin
                  Flist.set_status fl fi Status.Possibly_detected;
                  wposs.(worker * stride) <- wposs.(worker * stride) + 1
                end
              end
            done;
            (* fault dropping is batch-synchronous and index-sharded, so
               the active count is jobs-invariant *)
            if Trace.enabled trace then
              Trace.add trace ~worker "fsim.fault_evals" !nact)
      done;
      detected := Array.fold_left ( + ) 0 wdet;
      possibly := Array.fold_left ( + ) 0 wposs);
  if Trace.enabled trace then begin
    Trace.add trace "fsim.patterns" (Array.length patterns);
    Trace.add trace "fsim.batches" ((Array.length patterns + 63) / 64);
    Trace.add trace "fsim.detected" !detected;
    Trace.add trace "fsim.possibly" !possibly
  end;
  { patterns = Array.length patterns; detected = !detected; possibly = !possibly }

(* ------------------------------------------------------------------ *)
(* Single-pattern helpers                                              *)
(* ------------------------------------------------------------------ *)

let faulty_outputs nl f pattern =
  let an = Analysis.get nl in
  let scratch = Analysis.Scratch.create an in
  let srcs = Analysis.sources an in
  let env = Par_sim.init nl Dualrail.unknown in
  Array.iteri
    (fun k src -> env.(src) <- Dualrail.const pattern.(k))
    srcs;
  let operand = settle_faulty an scratch env f in
  Netlist.outputs nl |> Array.to_list
  |> List.map (fun o -> (o, Dualrail.get (operand o 0) 0))

let detects ?(observe_captures = true) ?observable_output nl f pattern =
  let fl = Flist.create nl [| f |] in
  let r =
    run ~engine:Full_settle ~jobs:1 ~observe_captures ?observable_output nl
      fl [| pattern |]
  in
  ignore (r : report);
  Status.equal (Flist.status fl 0) Status.Detected
