open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_sim

type pattern = Logic4.t array

let source_nodes nl =
  Array.append (Netlist.inputs nl) (Netlist.seq_nodes nl)

let random_patterns ?(seed = 0) nl n =
  let rng = Random.State.make [| seed |] in
  let width = Array.length (source_nodes nl) in
  Array.init n (fun _ ->
      Array.init width (fun _ -> Logic4.of_bool (Random.State.bool rng)))

type report = { patterns : int; detected : int; possibly : int }

(* Settle with a single fault injected, 64 patterns wide.  [env] must have
   source lanes already loaded. *)
let settle_faulty nl env (f : Fault.t) =
  let stuck = Dualrail.const (if f.Fault.stuck then Logic4.L1 else Logic4.L0) in
  let fnode = f.Fault.site.Fault.node in
  let fpin = f.Fault.site.Fault.pin in
  let stem_faulty i = fpin = Cell.Pin.Out && i = fnode in
  (* fault on a source stem *)
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Tie0 -> env.(i) <- Dualrail.zero
      | Cell.Tie1 -> env.(i) <- Dualrail.one
      | Cell.Tiex -> env.(i) <- Dualrail.unknown
      | _ -> if stem_faulty i then env.(i) <- stuck)
    nl;
  let operand i p =
    let v = env.((Netlist.fanin nl i).(p)) in
    if i = fnode && Cell.Pin.equal fpin (Cell.Pin.In p) then stuck else v
  in
  Array.iter
    (fun i ->
      let nd = Netlist.node nl i in
      let ins = Array.init (Array.length nd.Netlist.fanin) (operand i) in
      let v = Eval.comb_par nd.Netlist.kind ins in
      env.(i) <- (if stem_faulty i then stuck else v))
    (Netlist.topo nl);
  operand

let capture_par nl operand i =
  match Netlist.kind nl i with
  | Cell.Dff -> operand i 0
  | Cell.Dffr ->
    Dualrail.mux ~sel:(operand i 1) ~a:Dualrail.zero ~b:(operand i 0)
  | Cell.Sdff -> Dualrail.mux ~sel:(operand i 2) ~a:(operand i 0) ~b:(operand i 1)
  | Cell.Sdffr ->
    Dualrail.mux ~sel:(operand i 3) ~a:Dualrail.zero
      ~b:(Dualrail.mux ~sel:(operand i 2) ~a:(operand i 0) ~b:(operand i 1))
  | _ -> invalid_arg "capture_par"

let pt_mask good faulty =
  (* good binary, faulty unknown: only possibly detected *)
  Int64.logand (Dualrail.binary_mask good)
    (Int64.lognot (Dualrail.binary_mask faulty))

let run ?(observe_captures = true) ?(observable_output = fun _ -> true) nl
    fl patterns =
  let srcs = source_nodes nl in
  let outs =
    Array.of_list
      (List.filter observable_output (Array.to_list (Netlist.outputs nl)))
  in
  let seqs = Netlist.seq_nodes nl in
  let n = Netlist.length nl in
  let detected = ref 0 and possibly = ref 0 in
  let nbatches = (Array.length patterns + 63) / 64 in
  for batch = 0 to nbatches - 1 do
    let base = batch * 64 in
    let lanes = min 64 (Array.length patterns - base) in
    let lane_full = if lanes = 64 then -1L else Int64.sub (Int64.shift_left 1L lanes) 1L in
    let env = Par_sim.init nl Dualrail.unknown in
    Array.iteri
      (fun k src ->
        let v = ref Dualrail.unknown in
        for lane = 0 to lanes - 1 do
          v := Dualrail.set !v lane patterns.(base + lane).(k)
        done;
        env.(src) <- !v)
      srcs;
    Par_sim.settle nl env;
    let good_out = Array.map (fun o -> env.((Netlist.fanin nl o).(0))) outs in
    let good_cap =
      if observe_captures then
        Array.map (fun (_, v) -> v) (Par_sim.next_states nl env)
      else [||]
    in
    let fenv = Array.make n Dualrail.unknown in
    Flist.iteri
      (fun fi f st ->
        let active =
          match st with
          | Status.Not_analyzed | Status.Not_detected
          | Status.Possibly_detected ->
            f.Fault.site.Fault.pin <> Cell.Pin.Clk
          | _ -> false
        in
        if active then begin
          Array.iter (fun src -> fenv.(src) <- env.(src)) srcs;
          let operand = settle_faulty nl fenv f in
          let det = ref 0L and pt = ref 0L in
          Array.iteri
            (fun k o ->
              let fv = operand o 0 in
              det := Int64.logor !det (Dualrail.diff_mask good_out.(k) fv);
              pt := Int64.logor !pt (pt_mask good_out.(k) fv))
            outs;
          if observe_captures then
            Array.iteri
              (fun k s ->
                let fv = capture_par nl operand s in
                det := Int64.logor !det (Dualrail.diff_mask good_cap.(k) fv);
                pt := Int64.logor !pt (pt_mask good_cap.(k) fv))
              seqs;
          let det = if lanes = 64 then !det else Int64.logand !det lane_full in
          let pt = if lanes = 64 then !pt else Int64.logand !pt lane_full in
          if det <> 0L then begin
            Flist.set_status fl fi Status.Detected;
            incr detected
          end
          else if pt <> 0L && not (Status.equal st Status.Possibly_detected)
          then begin
            Flist.set_status fl fi Status.Possibly_detected;
            incr possibly
          end
        end)
      fl
  done;
  { patterns = Array.length patterns; detected = !detected; possibly = !possibly }

let faulty_outputs nl f pattern =
  let srcs = source_nodes nl in
  let env = Par_sim.init nl Dualrail.unknown in
  Array.iteri
    (fun k src -> env.(src) <- Dualrail.const pattern.(k))
    srcs;
  let operand = settle_faulty nl env f in
  Netlist.outputs nl |> Array.to_list
  |> List.map (fun o -> (o, Dualrail.get (operand o 0) 0))

let detects ?(observe_captures = true) ?observable_output nl f pattern =
  let fl = Flist.create nl [| f |] in
  let r = run ~observe_captures ?observable_output nl fl [| pattern |] in
  ignore (r : report);
  Status.equal (Flist.status fl 0) Status.Detected
