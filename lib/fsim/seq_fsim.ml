open Olfu_logic
open Olfu_netlist
open Olfu_fault
module Eval = Olfu_sim.Eval
module Pool = Olfu_pool.Pool
module Trace = Olfu_obs.Trace

type step = { assign : (int * Logic4.t) list; strobe : bool }
type stimulus = step array

type report = {
  cycles : int;
  faults_simulated : int;
  detected : int;
  possibly : int;
}

(* Per-batch injection tables: lanes 1..63 each carry one fault. *)
(* Per-worker simulation buffers, reused across batches. *)
type wscratch = {
  ws_env : Olfu_logic.Dualrail.t array;
  ws_inputs : Olfu_logic.Dualrail.t array;
  ws_state : Olfu_logic.Dualrail.t array;
  ws_det : bool array;
  ws_pt : bool array;
  ws_ins_by_arity : Olfu_logic.Dualrail.t array array;
}

type batch = {
  fault_index : int array;  (* flist index per lane, -1 for unused/good *)
  stem0 : (int, int64) Hashtbl.t;  (* node -> lanes stuck at 0 *)
  stem1 : (int, int64) Hashtbl.t;
  branch0 : (int * int, int64) Hashtbl.t;  (* (node, pin) -> lanes *)
  branch1 : (int * int, int64) Hashtbl.t;
  clk : (int, int64) Hashtbl.t;  (* flop node -> frozen lanes *)
}

let add_mask tbl key lane =
  let m = Option.value ~default:0L (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (Int64.logor m (Int64.shift_left 1L lane))

let make_batch fl lanes =
  let b =
    {
      fault_index = Array.make 64 (-1);
      stem0 = Hashtbl.create 67;
      stem1 = Hashtbl.create 67;
      branch0 = Hashtbl.create 67;
      branch1 = Hashtbl.create 67;
      clk = Hashtbl.create 17;
    }
  in
  List.iteri
    (fun k fi ->
      let lane = k + 1 in
      b.fault_index.(lane) <- fi;
      let f = Flist.fault fl fi in
      let { Fault.node; pin } = f.Fault.site in
      match pin with
      | Cell.Pin.Out ->
        add_mask (if f.Fault.stuck then b.stem1 else b.stem0) node lane
      | Cell.Pin.In p ->
        add_mask (if f.Fault.stuck then b.branch1 else b.branch0) (node, p) lane
      | Cell.Pin.Clk -> add_mask b.clk node lane)
    lanes;
  b

let mask_of tbl key = Option.value ~default:0L (Hashtbl.find_opt tbl key)

let inject_stem b node v =
  let m0 = mask_of b.stem0 node and m1 = mask_of b.stem1 node in
  if m0 = 0L && m1 = 0L then v else Dualrail.force_mask v ~m0 ~m1

let run ?(init = Logic4.X) ?(observe = fun _ -> true) ?jobs
    ?(trace = Trace.null) nl fl stimulus =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Trace.span trace ~cat:"engine" "fsim" @@ fun () ->
  let an = Analysis.get nl in
  let seqs = Netlist.seq_nodes nl in
  let outs = Array.to_list (Netlist.outputs nl) |> List.filter observe in
  let n = Netlist.length nl in
  let active =
    Flist.indices fl ~f:(fun st ->
        match st with
        | Status.Not_analyzed | Status.Not_detected | Status.Possibly_detected
          ->
          true
        | _ -> false)
  in
  let detected = ref 0 and possibly = ref 0 in
  let rec batches = function
    | [] -> []
    | l ->
      let rec take k acc rest =
        match rest with
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | _ -> (List.rev acc, rest)
      in
      let batch, rest = take 63 [] l in
      batch :: batches rest
  in
  let batch_faults = Array.of_list (batches active) in
  (* One 63-fault batch per unit of parallel work: a fault index lives in
     exactly one lane of one batch, so concurrent workers write disjoint
     status slots and the merge is order-independent.  The netlist-sized
     simulation buffers live in [ws], created once per worker and reused
     across batches — allocating them per batch multiplied minor-heap
     churn by the batch count and stalled every domain at each minor
     collection. *)
  let run_batch ~ws ~wdet ~wposs lane_faults =
      let b = make_batch fl lane_faults in
      let env = ws.ws_env in
      let state = ws.ws_state in
      let inputs = ws.ws_inputs in
      let det = ws.ws_det and pt = ws.ws_pt in
      let ins_by_arity = ws.ws_ins_by_arity in
      Array.fill state 0 (Array.length state) (Dualrail.const init);
      Array.fill inputs 0 n Dualrail.unknown;
      Array.fill det 0 64 false;
      Array.fill pt 0 64 false;
      let operand node p =
        let v = env.((Netlist.fanin nl node).(p)) in
        let m0 = mask_of b.branch0 (node, p)
        and m1 = mask_of b.branch1 (node, p) in
        if m0 = 0L && m1 = 0L then v else Dualrail.force_mask v ~m0 ~m1
      in
      Array.iter
        (fun step ->
          List.iter
            (fun (i, v) -> inputs.(i) <- Dualrail.const v)
            step.assign;
          (* settle *)
          Netlist.iter_nodes
            (fun i nd ->
              match nd.Netlist.kind with
              | Cell.Input -> env.(i) <- inject_stem b i inputs.(i)
              | Cell.Tie0 -> env.(i) <- inject_stem b i Dualrail.zero
              | Cell.Tie1 -> env.(i) <- inject_stem b i Dualrail.one
              | Cell.Tiex -> env.(i) <- inject_stem b i Dualrail.unknown
              | _ -> ())
            nl;
          Array.iteri (fun k s -> env.(s) <- inject_stem b s state.(k)) seqs;
          Array.iter
            (fun i ->
              let nd = Netlist.node nl i in
              let a = Array.length nd.Netlist.fanin in
              let ins = ins_by_arity.(a) in
              for p = 0 to a - 1 do
                ins.(p) <- operand i p
              done;
              env.(i) <- inject_stem b i (Eval.comb_par nd.Netlist.kind ins))
            (Netlist.topo nl);
          (* strobe *)
          if step.strobe then
            List.iter
              (fun o ->
                let fv = operand o 0 in
                let g = Dualrail.get fv 0 in
                if Logic4.is_binary g then begin
                  let gword = Dualrail.const g in
                  let d = Dualrail.diff_mask gword fv in
                  let p = Int64.lognot (Dualrail.binary_mask fv) in
                  for lane = 1 to 63 do
                    if b.fault_index.(lane) >= 0 then begin
                      let bit = Int64.shift_left 1L lane in
                      if Int64.logand d bit <> 0L then det.(lane) <- true
                      else if Int64.logand p bit <> 0L then pt.(lane) <- true
                    end
                  done
                end)
              outs;
          (* clock edge *)
          Array.iteri
            (fun k s ->
              let next =
                match Netlist.kind nl s with
                | Cell.Dff -> operand s 0
                | Cell.Dffr ->
                  Dualrail.mux ~sel:(operand s 1) ~a:Dualrail.zero
                    ~b:(operand s 0)
                | Cell.Sdff ->
                  Dualrail.mux ~sel:(operand s 2) ~a:(operand s 0)
                    ~b:(operand s 1)
                | Cell.Sdffr ->
                  Dualrail.mux ~sel:(operand s 3) ~a:Dualrail.zero
                    ~b:
                      (Dualrail.mux ~sel:(operand s 2) ~a:(operand s 0)
                         ~b:(operand s 1))
                | _ -> assert false
              in
              let next = inject_stem b s next in
              let frozen = mask_of b.clk s in
              let next =
                if frozen = 0L then next
                else Dualrail.select_mask next state.(k) frozen
              in
              state.(k) <- next)
            seqs)
        stimulus;
      for lane = 1 to 63 do
        let fi = b.fault_index.(lane) in
        if fi >= 0 then
          if det.(lane) then begin
            Flist.set_status fl fi Status.Detected;
            incr wdet
          end
          else if pt.(lane)
                  && not
                       (Status.equal (Flist.status fl fi)
                          Status.Possibly_detected)
          then begin
            Flist.set_status fl fi Status.Possibly_detected;
            incr wposs
          end
      done
  in
  Pool.with_pool ~jobs (fun pool ->
      let nw = Pool.jobs pool in
      let wdet = Array.init nw (fun _ -> ref 0) in
      let wposs = Array.init nw (fun _ -> ref 0) in
      let scratches =
        Array.init nw (fun _ ->
            {
              ws_env = Array.make n Dualrail.unknown;
              ws_inputs = Array.make n Dualrail.unknown;
              ws_state = Array.map (fun _ -> Dualrail.const init) seqs;
              ws_det = Array.make 64 false;
              ws_pt = Array.make 64 false;
              ws_ins_by_arity =
                Array.init
                  (Analysis.max_arity an + 1)
                  (fun k -> Array.make k Dualrail.unknown);
            })
      in
      Pool.parallel_chunks pool ~n:(Array.length batch_faults) ~chunk:1
        ~trace ~label:"seq_fsim"
        (fun ~worker ~lo ~hi ->
          for k = lo to hi - 1 do
            run_batch ~ws:scratches.(worker) ~wdet:wdet.(worker)
              ~wposs:wposs.(worker) batch_faults.(k)
          done);
      Array.iter (fun r -> detected := !detected + !r) wdet;
      Array.iter (fun r -> possibly := !possibly + !r) wposs);
  if Trace.enabled trace then begin
    Trace.add trace "fsim.seq_batches" (Array.length batch_faults);
    Trace.add trace "fsim.cycles" (Array.length stimulus);
    Trace.add trace "fsim.fault_evals" (List.length active);
    Trace.add trace "fsim.detected" !detected;
    Trace.add trace "fsim.possibly" !possibly
  end;
  {
    cycles = Array.length stimulus;
    faults_simulated = List.length active;
    detected = !detected;
    possibly = !possibly;
  }

(* ------------------------------------------------------------------ *)
(* Transient (SEU) replay: lanes carry bit-flips, not stuck-ats       *)
(* ------------------------------------------------------------------ *)

type seu_obs = { seu_ff : int; seu_diverged : bool; seu_alarmed : bool }

let run_seu ?(init = Logic4.L0) ?(observe = fun _ -> true)
    ?(alarm = fun _ -> false) nl ~ffs stimulus =
  let seqs = Netlist.seq_nodes nl in
  let seq_slot = Hashtbl.create 97 in
  Array.iteri (fun k s -> Hashtbl.replace seq_slot s k) seqs;
  let func_outs =
    Array.to_list (Netlist.outputs nl)
    |> List.filter (fun o -> observe o && not (alarm o))
  in
  let alarm_outs =
    Array.to_list (Netlist.outputs nl)
    |> List.filter (fun o -> observe o && alarm o)
  in
  let n = Netlist.length nl in
  let results =
    Array.map (fun ff -> { seu_ff = ff; seu_diverged = false;
                           seu_alarmed = false }) ffs
  in
  let rec batches lo =
    if lo >= Array.length ffs then []
    else
      let hi = min (Array.length ffs) (lo + 63) in
      (lo, hi) :: batches hi
  in
  List.iter
    (fun (lo, hi) ->
      let env = Array.make n Dualrail.unknown in
      let inputs = Array.make n Dualrail.unknown in
      (* lane 0 is the undisturbed machine; lane [1 + k] starts with
         ffs.(lo + k) flipped and is otherwise identical *)
      let state = Array.map (fun _ -> Dualrail.const init) seqs in
      for k = lo to hi - 1 do
        match Hashtbl.find_opt seq_slot ffs.(k) with
        | None -> invalid_arg "Seq_fsim.run_seu: not a sequential node"
        | Some slot ->
          state.(slot) <-
            Dualrail.set state.(slot) (1 + k - lo) (Logic4.not_ init)
      done;
      let diverged = ref 0L and alarmed = ref 0L in
      let operand node p = env.((Netlist.fanin nl node).(p)) in
      Array.iter
        (fun step ->
          List.iter
            (fun (i, v) -> inputs.(i) <- Dualrail.const v)
            step.assign;
          Netlist.iter_nodes
            (fun i nd ->
              match nd.Netlist.kind with
              | Cell.Input -> env.(i) <- inputs.(i)
              | Cell.Tie0 -> env.(i) <- Dualrail.zero
              | Cell.Tie1 -> env.(i) <- Dualrail.one
              | Cell.Tiex -> env.(i) <- Dualrail.unknown
              | _ -> ())
            nl;
          Array.iteri (fun k s -> env.(s) <- state.(k)) seqs;
          Array.iter
            (fun i ->
              let nd = Netlist.node nl i in
              let a = Array.length nd.Netlist.fanin in
              let ins = Array.init a (fun p -> operand i p) in
              env.(i) <- Eval.comb_par nd.Netlist.kind ins)
            (Netlist.topo nl);
          if step.strobe then begin
            let strobe_outs acc outs =
              List.fold_left
                (fun acc o ->
                  let fv = operand o 0 in
                  let g = Dualrail.get fv 0 in
                  if Logic4.is_binary g then
                    Int64.logor acc (Dualrail.diff_mask (Dualrail.const g) fv)
                  else acc)
                acc outs
            in
            diverged := strobe_outs !diverged func_outs;
            alarmed := strobe_outs !alarmed alarm_outs
          end;
          Array.iteri
            (fun k s ->
              state.(k) <-
                (match Netlist.kind nl s with
                | Cell.Dff -> operand s 0
                | Cell.Dffr ->
                  Dualrail.mux ~sel:(operand s 1) ~a:Dualrail.zero
                    ~b:(operand s 0)
                | Cell.Sdff ->
                  Dualrail.mux ~sel:(operand s 2) ~a:(operand s 0)
                    ~b:(operand s 1)
                | Cell.Sdffr ->
                  Dualrail.mux ~sel:(operand s 3) ~a:Dualrail.zero
                    ~b:
                      (Dualrail.mux ~sel:(operand s 2) ~a:(operand s 0)
                         ~b:(operand s 1))
                | _ -> assert false))
            seqs)
        stimulus;
      for k = lo to hi - 1 do
        let bit = Int64.shift_left 1L (1 + k - lo) in
        results.(k) <-
          {
            (results.(k)) with
            seu_diverged = Int64.logand !diverged bit <> 0L;
            seu_alarmed = Int64.logand !alarmed bit <> 0L;
          }
      done)
    (batches 0);
  results
