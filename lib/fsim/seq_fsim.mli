open Olfu_logic
open Olfu_netlist
open Olfu_fault

(** Fault-parallel sequential fault simulation.

    Lanes carry {e faults}, not patterns: lane 0 simulates the good
    circuit, lanes 1–63 each carry one faulty circuit over the same
    stimulus, so one pass grades 63 faults.  This is the engine used to
    grade SBST programs: detection is strobed on selected outputs (in the
    paper, only the system-bus values written to memory are observed).

    Fault semantics: stem and branch stuck-ats are forced every cycle;
    clock-pin faults freeze the flip-flop at its pre-fault (initial)
    value. *)

type step = {
  assign : (int * Logic4.t) list;
      (** input-node assignments applied from this cycle on *)
  strobe : bool;  (** compare observed outputs at the end of this cycle *)
}

type stimulus = step array

type report = {
  cycles : int;
  faults_simulated : int;
  detected : int;
  possibly : int;
}

val run :
  ?init:Logic4.t ->
  ?observe:(int -> bool) ->
  ?jobs:int ->
  ?trace:Olfu_obs.Trace.sink ->
  Netlist.t ->
  Flist.t ->
  stimulus ->
  report
(** Simulates every fault that is not already detected or undetectable and
    updates the fault list in place.  [observe] selects strobed [Output]
    markers (default: all).  [init] is the power-up flip-flop value
    (default X).  [jobs] (default {!Olfu_pool.Pool.default_jobs}) shards
    the 63-fault batches across a domain pool; batches own disjoint fault
    indices, so results are identical for any [jobs].

    A recording [trace] gets one ["engine"]-category ["fsim"] span and
    the jobs-invariant counters ["fsim.seq_batches"], ["fsim.cycles"],
    ["fsim.fault_evals"], ["fsim.detected"], ["fsim.possibly"]. *)

(** {1 Transient (SEU) replay}

    The same 64-lane engine with lanes carrying {e bit-flips} instead of
    stuck-ats: lane 0 runs the undisturbed machine, each other lane
    starts from the same state with exactly one flip-flop's initial value
    inverted and is never forced again — the concrete counterpart of the
    {!Olfu_safety} bounded-model-checking classification, used to
    cross-check [Seu_masked] / [Seu_protected] verdicts on real
    windows. *)

type seu_obs = {
  seu_ff : int;  (** the flipped sequential node *)
  seu_diverged : bool;
      (** some functional (non-alarm) observed output took a binary value
          different from lane 0 at a strobed cycle *)
  seu_alarmed : bool;  (** same, over the alarm outputs *)
}

val run_seu :
  ?init:Olfu_logic.Logic4.t ->
  ?observe:(int -> bool) ->
  ?alarm:(int -> bool) ->
  Netlist.t ->
  ffs:int array ->
  stimulus ->
  seu_obs array
(** [run_seu nl ~ffs stimulus] replays the stimulus once per 63-flip
    batch and reports, per flipped flop, whether any strobed cycle showed
    a binary divergence on a functional output ([observe] minus [alarm])
    or an alarm output ([observe] and [alarm]).  [init] (default [L0]) is
    the pre-flip value of every flop; the flipped lane starts at its
    negation.  Raises [Invalid_argument] if some [ffs] entry is not a
    sequential node. *)
