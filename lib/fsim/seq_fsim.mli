open Olfu_logic
open Olfu_netlist
open Olfu_fault

(** Fault-parallel sequential fault simulation.

    Lanes carry {e faults}, not patterns: lane 0 simulates the good
    circuit, lanes 1–63 each carry one faulty circuit over the same
    stimulus, so one pass grades 63 faults.  This is the engine used to
    grade SBST programs: detection is strobed on selected outputs (in the
    paper, only the system-bus values written to memory are observed).

    Fault semantics: stem and branch stuck-ats are forced every cycle;
    clock-pin faults freeze the flip-flop at its pre-fault (initial)
    value. *)

type step = {
  assign : (int * Logic4.t) list;
      (** input-node assignments applied from this cycle on *)
  strobe : bool;  (** compare observed outputs at the end of this cycle *)
}

type stimulus = step array

type report = {
  cycles : int;
  faults_simulated : int;
  detected : int;
  possibly : int;
}

val run :
  ?init:Logic4.t ->
  ?observe:(int -> bool) ->
  ?jobs:int ->
  ?trace:Olfu_obs.Trace.sink ->
  Netlist.t ->
  Flist.t ->
  stimulus ->
  report
(** Simulates every fault that is not already detected or undetectable and
    updates the fault list in place.  [observe] selects strobed [Output]
    markers (default: all).  [init] is the power-up flip-flop value
    (default X).  [jobs] (default {!Olfu_pool.Pool.default_jobs}) shards
    the 63-fault batches across a domain pool; batches own disjoint fault
    indices, so results are identical for any [jobs].

    A recording [trace] gets one ["engine"]-category ["fsim"] span and
    the jobs-invariant counters ["fsim.seq_batches"], ["fsim.cycles"],
    ["fsim.fault_evals"], ["fsim.detected"], ["fsim.possibly"]. *)
