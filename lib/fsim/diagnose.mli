open Olfu_netlist
open Olfu_fault

(** Cause-effect fault diagnosis: given responses observed on a failing
    device, rank the stuck-at faults whose simulated behaviour explains
    them.  The classic companion of an identification flow — once the
    tester reports mismatches, this narrows the failure to candidate
    defect sites. *)

type observation = {
  pattern : Comb_fsim.pattern;  (** stimulus applied *)
  responses : (int * bool) list;  (** observed output-marker values *)
}

val observe :
  ?faulty:Fault.t -> Netlist.t -> Comb_fsim.pattern -> observation
(** Build an observation by simulating the (optionally faulty) circuit —
    a testbench helper standing in for silicon. *)

type candidate = {
  fault : int;  (** index into the fault list *)
  explained : int;  (** observations fully explained *)
  contradicted : int;  (** observations the fault predicts differently *)
}

val candidates :
  Netlist.t -> Flist.t -> observation list -> candidate list
(** Every fault scored against every observation, perfect explanations
    first (then fewest contradictions).  Faults predicted equal to the
    observation on every response bit count as explained; X predictions
    never contradict. *)

val pp_candidate : Netlist.t -> Flist.t -> Format.formatter -> candidate -> unit
