open Olfu_logic
open Olfu_netlist
open Olfu_fault

(** Parallel-pattern single-fault (PPSFP) combinational fault simulation:
    64 patterns per gate evaluation, one fault at a time, with fault
    dropping.

    Patterns assign primary inputs {e and} flip-flop outputs (full-access
    view); detection is observed on primary outputs and flip-flop capture
    values, matching {!Olfu_atpg.Podem}'s model. *)

type pattern = Logic4.t array
(** One value per entry of [Netlist.inputs nl] followed by one per entry
    of [Netlist.seq_nodes nl]. *)

val random_patterns : ?seed:int -> Netlist.t -> int -> pattern array

type report = {
  patterns : int;
  detected : int;  (** faults newly marked [Detected] *)
  possibly : int;  (** faults newly marked [Possibly_detected] *)
}

val run :
  ?observe_captures:bool ->
  ?observable_output:(int -> bool) ->
  Netlist.t ->
  Flist.t ->
  pattern array ->
  report
(** Marks fault statuses in place.  Faults already [Detected] or
    undetectable are skipped; clock-pin faults are left untouched (they
    have no combinational meaning). *)

val faulty_outputs :
  Netlist.t -> Fault.t -> pattern -> (int * Olfu_logic.Logic4.t) list
(** Output-marker values of the faulty circuit under one pattern
    [(marker node, value)] — the prediction a fault dictionary compares
    against silicon observations. *)

val detects :
  ?observe_captures:bool ->
  ?observable_output:(int -> bool) ->
  Netlist.t ->
  Fault.t ->
  pattern ->
  bool
(** Single-pattern single-fault oracle (slow; used by tests). *)
