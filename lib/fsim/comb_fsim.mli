open Olfu_logic
open Olfu_netlist
open Olfu_fault

(** Parallel-pattern single-fault (PPSFP) combinational fault simulation:
    64 patterns per gate evaluation, one fault at a time, with fault
    dropping.

    Patterns assign primary inputs {e and} flip-flop outputs (full-access
    view); detection is observed on primary outputs and flip-flop capture
    values, matching {!Olfu_atpg.Podem}'s model. *)

type pattern = Logic4.t array
(** One value per entry of [Netlist.inputs nl] followed by one per entry
    of [Netlist.seq_nodes nl]. *)

val random_patterns : ?seed:int -> Netlist.t -> int -> pattern array

type report = {
  patterns : int;
  detected : int;  (** faults newly marked [Detected] *)
  possibly : int;  (** faults newly marked [Possibly_detected] *)
}

(** Per-fault evaluation strategy.  Both produce bit-identical fault
    statuses (a property-tested invariant); [Cone] is the production
    engine, [Full_settle] the reference and benchmark baseline. *)
type engine =
  | Cone
      (** settle the good circuit once per 64-pattern batch, then per
          fault re-evaluate only the levelized fanout cone of the fault
          site, exiting early when the event frontier dies out *)
  | Full_settle  (** re-evaluate the entire netlist for every fault *)

val run :
  ?observe_captures:bool ->
  ?observable_output:(int -> bool) ->
  ?engine:engine ->
  ?jobs:int ->
  ?trace:Olfu_obs.Trace.sink ->
  Netlist.t ->
  Flist.t ->
  pattern array ->
  report
(** Marks fault statuses in place.  Faults already [Detected] or
    undetectable are skipped; clock-pin faults are left untouched (they
    have no combinational meaning).

    [engine] defaults to [Cone].  [jobs] (default {!Olfu_pool.Pool.
    default_jobs}, i.e. [OLFU_JOBS] or 1) shards the fault list across a
    domain pool per batch; each fault index is owned by exactly one
    worker, so statuses and counts are bit-identical to a sequential
    run regardless of [jobs].

    A recording [trace] gets one ["engine"]-category ["fsim"] span for
    the whole run and the jobs-invariant counters ["fsim.patterns"],
    ["fsim.batches"], ["fsim.fault_evals"], ["fsim.detected"] and
    ["fsim.possibly"] (fault dropping is batch-synchronous, so the
    evaluation count does not depend on scheduling). *)

val faulty_outputs :
  Netlist.t -> Fault.t -> pattern -> (int * Olfu_logic.Logic4.t) list
(** Output-marker values of the faulty circuit under one pattern
    [(marker node, value)] — the prediction a fault dictionary compares
    against silicon observations. *)

val detects :
  ?observe_captures:bool ->
  ?observable_output:(int -> bool) ->
  Netlist.t ->
  Fault.t ->
  pattern ->
  bool
(** Single-pattern single-fault oracle (slow; used by tests). *)
