open Olfu_netlist

(** The identification flow replayed for transition-delay faults — the
    fault-model extension the paper's conclusion announces.

    Attribution mirrors {!Flow}: scan rule (for transitions the whole SE
    net is dead, so {e all} scan-pin transition faults fall, including SE
    slow-to-rise), then baseline, tied debug controls, floated
    observation, memory map. *)

type report = {
  universe : int;
  scan : int;
  baseline : int;
  debug_control : int;
  debug_observe : int;
  memory : int;
  total : int;
  fraction : float;
  seconds : float;
}

val run : Run_config.t -> Netlist.t -> Mission.t -> report
(** [cfg.jobs] shards each classification step over a domain pool; the
    report is identical for any value.  The two Debug steps analyze the
    same tied netlist, so its ternary fixpoint is computed once, outside
    both.  A recording [cfg.trace] gets one ["step"]-category span per
    step with the engine spans nested inside. *)

val pp : Format.formatter -> report -> unit
