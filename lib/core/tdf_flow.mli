open Olfu_netlist

(** The identification flow replayed for transition-delay faults — the
    fault-model extension the paper's conclusion announces.

    Attribution mirrors {!Flow}: scan rule (for transitions the whole SE
    net is dead, so {e all} scan-pin transition faults fall, including SE
    slow-to-rise), then baseline, tied debug controls, floated
    observation, memory map. *)

type report = {
  universe : int;
  scan : int;
  baseline : int;
  debug_control : int;
  debug_observe : int;
  memory : int;
  total : int;
  fraction : float;
  seconds : float;
}

val run :
  ?ff_mode:Olfu_atpg.Ternary.ff_mode ->
  ?jobs:int ->
  Netlist.t ->
  Mission.t ->
  report
(** [jobs] (default {!Olfu_pool.Pool.default_jobs}) shards each
    classification step over a domain pool; the report is identical for
    any value. *)

val pp : Format.formatter -> report -> unit
