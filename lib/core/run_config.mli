(** One record for the knobs every flow shares.

    The three flow entrypoints ({!Flow.run}, {!Tdf_flow.run} and — with
    its own extended record — {!Olfu_atpg.Atpg_flow.run}) take their
    common configuration as a value of this type instead of a sprawl of
    optional arguments, so defaults live in exactly one place and adding
    a knob does not ripple through every signature.  Build one with
    record update syntax: [{ Run_config.default with jobs = 4 }]. *)

type t = {
  ff_mode : Olfu_atpg.Ternary.ff_mode;
      (** flip-flop treatment of the ternary fixpoint; [Steady_state] is
          the paper's mission reading *)
  jobs : int;  (** domain-pool width for the classification steps *)
  implic : bool;  (** enable the static implication engine (UC verdicts) *)
  trace : Olfu_obs.Trace.sink;
      (** observability sink; {!Olfu_obs.Trace.null} records nothing and
          costs one branch per probe *)
}

val default : t
(** [Steady_state], [jobs = 1], [implic = true], null trace. *)

val of_env : unit -> t
(** {!default} overridden by the environment: [OLFU_JOBS] (int, clamped
    to 1–64), [OLFU_FF_MODE] ([cut] | [reset_join] | [steady_state]),
    [OLFU_IMPLIC] ([0]/[false] to disable).  Unset or unparsable
    variables keep the default. *)

val ff_mode_of_string : string -> Olfu_atpg.Ternary.ff_mode option
val ff_mode_name : Olfu_atpg.Ternary.ff_mode -> string

val to_json : t -> Olfu_obs.Json.t
(** The record as a manifest [config] object (the sink itself renders as
    whether it records). *)
