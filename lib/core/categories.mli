open Olfu_netlist

(** The fault-category lattice of Fig. 1:

    structurally untestable ⊆ functionally untestable ⊆ on-line
    functionally untestable ⊆ fault universe.

    Membership per fault is computed with the structural engine under three
    increasingly constrained circuit models:
    {ul
    {- {b structural}: the raw netlist, everything observable;}
    {- {b functional}: test programs only — DfT/debug inputs held at their
       benign values, but every output pin still checked by the bench;}
    {- {b on-line}: the full mission configuration — debug observation
       floated, only the field observation points checked, memory map
       applied.}} *)

type sets = {
  universe : int;
  structural : int;
  functional : int;
  online : int;
  inclusions_hold : bool;
      (** per-fault check that each set contains the previous one *)
}

val compute :
  ?ff_mode:Olfu_atpg.Ternary.ff_mode -> Netlist.t -> Mission.t -> sets

val pp : Format.formatter -> sets -> unit
