open Olfu_netlist
open Olfu_fault

(** The paper's identification flow (Sec. 3–4):

    {ol
    {- {b Scan}: trace the chains and prune SI/SE/scan-path faults
       directly (Sec. 3.1);}
    {- {b Debug control}: tie the mission-constant debug inputs and let the
       structural engine classify (Sec. 3.2.1);}
    {- {b Debug observation}: additionally stop observing the debug output
       buses (Sec. 3.2.2);}
    {- {b Memory map}: tie the address registers/ports whose bits the
       populated memory ranges force, and classify again (Sec. 3.3).}}

    A {b Baseline} step between 1 and 2 classifies faults untestable in
    the un-manipulated mission circuit — mostly the reset network, which
    Sec. 2 of the paper names as inaccessible ("it may be impossible ...
    to activate the reset signal") but does not count in Table I.  Keeping
    it separate leaves the three paper rows comparable.

    Each step only touches faults not yet classified, so the per-source
    counts partition the on-line functionally untestable set the way
    Table I does. *)

type source = Scan | Baseline | Debug_control | Debug_observe | Memory

val source_name : source -> string

type step_report = {
  source : source;
  classified : int;
  by_verdict : (Olfu_fault.Status.undetectable * int) list;
      (** the step's newly classified faults split by verdict class
          (UT/UB/UC/...), attributing each proof to the engine that made
          it; only non-zero classes appear *)
  seconds : float;
}

type report = {
  universe : int;  (** total stuck-at faults of the original netlist *)
  steps : step_report list;
  total_olfu : int;
  fraction : float;  (** [total_olfu / universe] *)
  flist : Flist.t;  (** final classification over the original universe *)
  mission_netlist : Netlist.t;  (** fully manipulated circuit *)
  seconds : float;
}

val run :
  ?ff_mode:Olfu_atpg.Ternary.ff_mode ->
  ?jobs:int ->
  ?implic:bool ->
  Netlist.t ->
  Mission.t ->
  report
(** Default [ff_mode] is [Steady_state] (the paper's mission reading).
    [jobs] (default [OLFU_JOBS] or 1) parallelizes each classification
    step over a domain pool; results are identical for any value.  The
    Debug control and Debug observation steps analyze the same tied
    netlist, so the ternary constant fixpoint is computed once and
    shared between them.  [implic] (default [true]) enables the static
    implication engine's UC verdicts inside every classification step;
    disabling it reproduces the pure UT+UB flow. *)

val scan_step : Netlist.t -> Flist.t -> int

val paper_total : report -> int
(** Sum over the paper's three sources (scan + debug + memory), excluding
    the {!Baseline} extension row. *)

val verify_scan_rule : Netlist.t -> bool
(** The paper's Tetramax cross-check: tie SE to 0, run the structural
    engine, and confirm every rule-pruned fault is independently
    classified untestable. *)

val step_count : report -> source -> int
val pp_table1 : ?paper:bool -> Format.formatter -> report -> unit
(** Table I: rows Scan / Debug / Memory / TOTAL with counts and
    percentages; [paper] adds the paper's reference numbers alongside. *)
