open Olfu_netlist
open Olfu_fault

(** The paper's identification flow (Sec. 3–4):

    {ol
    {- {b Scan}: trace the chains and prune SI/SE/scan-path faults
       directly (Sec. 3.1);}
    {- {b Debug control}: tie the mission-constant debug inputs and let the
       structural engine classify (Sec. 3.2.1);}
    {- {b Debug observation}: additionally stop observing the debug output
       buses (Sec. 3.2.2);}
    {- {b Memory map}: tie the address registers/ports whose bits the
       populated memory ranges force, and classify again (Sec. 3.3).}}

    A {b Baseline} step between 1 and 2 classifies faults untestable in
    the un-manipulated mission circuit — mostly the reset network, which
    Sec. 2 of the paper names as inaccessible ("it may be impossible ...
    to activate the reset signal") but does not count in Table I.  Keeping
    it separate leaves the three paper rows comparable.

    Each step only touches faults not yet classified, so the per-source
    counts partition the on-line functionally untestable set the way
    Table I does. *)

type source = Scan | Baseline | Debug_control | Debug_observe | Memory

val source_name : source -> string

type step_report = {
  source : source;
  classified : int;
  by_verdict : (Olfu_fault.Status.undetectable * int) list;
      (** the step's newly classified faults split by verdict class
          (UT/UB/UC/...), attributing each proof to the engine that made
          it; only non-zero classes appear *)
  seconds : float;
}

type report = {
  universe : int;  (** total stuck-at faults of the original netlist *)
  collapsed : int;
      (** prime faults: equivalence classes of the universe under
          {!Olfu_fault.Collapse} — the count an ATPG tool reports; the
          paper's Table I counts the uncollapsed universe *)
  dominance_pruned : int;
      (** dominator faults a target list can additionally drop
          ({!Olfu_fault.Collapse.dominance_prune} on a scratch copy —
          the flow's own classification is never touched) *)
  steps : step_report list;
  prep : (string * float) list;
      (** named work attributed to no step: fault-universe construction,
          the netlist manipulations, the ternary fixpoint of the tied
          netlist (shared by the two Debug steps), the mission
          observability computation, and the per-step verdict tallies —
          step seconds plus prep seconds account for the flow's wall
          time (the [bench -- obs] gate checks within 5%) *)
  total_olfu : int;
  fraction : float;  (** [total_olfu / universe] *)
  flist : Flist.t;  (** final classification over the original universe *)
  mission_netlist : Netlist.t;  (** fully manipulated circuit *)
  seconds : float;
}

val run : Run_config.t -> Netlist.t -> Mission.t -> report
(** [cfg.ff_mode] selects the ternary reading ([Steady_state] is the
    paper's mission default); [cfg.jobs] parallelizes each
    classification step over a domain pool (results are identical for
    any value); [cfg.implic] enables the static implication engine's UC
    verdicts inside every classification step (disabling it reproduces
    the pure UT+UB flow).  The Debug control and Debug observation steps
    analyze the same tied netlist, so the ternary constant fixpoint is
    computed once, outside both steps, and reported under [prep].

    A recording [cfg.trace] gets one ["step"]-category span per step
    (named by {!source_name}) with the engine attribution
    (["graph"] / ["ternary"] / ["observe"] / ["implic"] / ["classify"]
    spans) nested inside. *)

val scan_step : Netlist.t -> Flist.t -> int

val paper_total : report -> int
(** Sum over the paper's three sources (scan + debug + memory), excluding
    the {!Baseline} extension row. *)

val verify_scan_rule : Netlist.t -> bool
(** The paper's Tetramax cross-check: tie SE to 0, run the structural
    engine, and confirm every rule-pruned fault is independently
    classified untestable. *)

val step_count : report -> source -> int
val pp_table1 : ?paper:bool -> Format.formatter -> report -> unit
(** Table I: rows Scan / Debug / Memory / TOTAL with counts and
    percentages; [paper] adds the paper's reference numbers alongside. *)
