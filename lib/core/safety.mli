(** ISO 26262 coverage bookkeeping.

    The paper's motivation: "for very critical environments, such as
    airbags or drive-by-wire functions, the standard mandates for 98% of
    fault coverage", with three confidence levels below it.  Pruning
    on-line functionally untestable faults changes the denominator, which
    is often the difference between failing and meeting the target. *)

type asil = QM | A | B | C | D

val required_coverage : asil -> float option
(** Single-point fault metric target as a fraction ([None] for QM).
    ASIL B 90%, C 97%, D 99%; the paper's airbag example states 98% for
    its (ASIL-D-class) application. *)

val paper_airbag_target : float

type verdict = {
  level : asil;
  target : float option;
  raw : float;  (** coverage over the full fault list *)
  pruned : float;  (** coverage after removing undetectable faults *)
  meets_raw : bool;
  meets_pruned : bool;
}

val assess : asil -> Olfu_fault.Flist.t -> verdict
val pp_asil : Format.formatter -> asil -> unit
val pp_verdict : Format.formatter -> verdict -> unit
