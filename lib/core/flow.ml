open Olfu_netlist
open Olfu_fault
open Olfu_atpg
open Olfu_manip
module Trace = Olfu_obs.Trace

type source = Scan | Baseline | Debug_control | Debug_observe | Memory

let source_name = function
  | Scan -> "Scan"
  | Baseline -> "Baseline (reset/steady)"
  | Debug_control -> "Debug (control)"
  | Debug_observe -> "Debug (observation)"
  | Memory -> "Memory"

type step_report = {
  source : source;
  classified : int;
  by_verdict : (Status.undetectable * int) list;
  seconds : float;
}

let undet_classes =
  [|
    Status.Unused; Status.Tied; Status.Blocked; Status.Conflict;
    Status.Redundant; Status.Software; Status.Invariant;
  |]

let undet_tally fl =
  let a = Array.make (Array.length undet_classes) 0 in
  Flist.iteri
    (fun _ _ st ->
      match st with
      | Status.Undetectable u ->
        let k =
          match u with
          | Status.Unused -> 0
          | Status.Tied -> 1
          | Status.Blocked -> 2
          | Status.Conflict -> 3
          | Status.Redundant -> 4
          | Status.Software -> 5
          | Status.Invariant -> 6
        in
        a.(k) <- a.(k) + 1
      | _ -> ())
    fl;
  a

let diff_tally before after =
  let acc = ref [] in
  for k = Array.length undet_classes - 1 downto 0 do
    let d = after.(k) - before.(k) in
    if d <> 0 then acc := (undet_classes.(k), d) :: !acc
  done;
  !acc

type report = {
  universe : int;
  collapsed : int;
  dominance_pruned : int;
  steps : step_report list;
  prep : (string * float) list;
  total_olfu : int;
  fraction : float;
  flist : Flist.t;
  mission_netlist : Netlist.t;
  seconds : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let scan_step nl fl = Scan_trace.prune nl fl

let verify_scan_rule nl =
  match Netlist.find nl "scan_en" with
  | None -> true
  | Some se ->
    let tied = Tie.input nl se Olfu_logic.Logic4.L0 in
    let t =
      Untestable.analyze tied
        ~observable_output:(fun o ->
          not (Netlist.has_role tied o Netlist.Scan_out))
    in
    List.for_all
      (fun f ->
        (* faults on the SE fanout branches now sit on a tie and are
           excluded from the comparison (the rule keeps SE s@1 anyway) *)
        let { Fault.node; pin } = f.Fault.site in
        let on_se_branch =
          match pin with
          | Cell.Pin.In 2 -> Cell.is_seq (Netlist.kind tied node)
          | _ -> false
        in
        on_se_branch || Untestable.fault_verdict t f <> None)
      (Scan_trace.untestable_faults tied)

(* Classify all still-unclassified faults that the engine proves
   untestable in the given circuit model. *)
let engine_step (cfg : Run_config.t) ?observable_output ?consts nl fl =
  let t =
    Untestable.analyze ~ff_mode:cfg.Run_config.ff_mode ?observable_output
      ?consts ~implic:cfg.Run_config.implic ~trace:cfg.Run_config.trace nl
  in
  Untestable.classify ~jobs:cfg.Run_config.jobs ~trace:cfg.Run_config.trace t
    fl

let run (cfg : Run_config.t) nl mission =
  let trace = cfg.Run_config.trace in
  let t0 = Unix.gettimeofday () in
  let fl, flist_t =
    timed (fun () ->
        Trace.span trace ~cat:"engine" "flist" (fun () -> Flist.full nl))
  in
  (* structural collapsing on the untouched universe: the prime count
     is what an ATPG tool would target, the dominance prune what a
     target list additionally sheds; run on a scratch copy so the
     flow's own classification never sees the implicit verdicts *)
  let (collapsed, dominance_pruned), collapse_t =
    timed (fun () ->
        Trace.span trace ~cat:"engine" "collapse" (fun () ->
            let prime = Collapse.num_classes (Collapse.compute fl) in
            let scratch = Flist.full nl in
            (prime, Collapse.dominance_prune scratch)))
  in
  (* wrap each step so its newly classified faults are attributed to the
     verdict class (UT/UB/UC/...) that proved them; the tally sweeps run
     outside the step spans and are accounted as prep *)
  let tally_s = ref 0. in
  let stepped name f =
    let before, bt = timed (fun () -> undet_tally fl) in
    let r, secs = timed (fun () -> Trace.span trace ~cat:"step" name f) in
    let v, at = timed (fun () -> diff_tally before (undet_tally fl)) in
    tally_s := !tally_s +. bt +. at;
    Trace.record trace ~cat:"engine" ~dur:(bt +. at) "tally";
    (r, v, secs)
  in
  (* 1. scan rule *)
  let scan_count, scan_v, scan_t =
    stepped (source_name Scan) (fun () ->
        Trace.span trace ~cat:"engine" "scan_trace" (fun () ->
            scan_step nl fl))
  in
  (* 1b. baseline: untestable before any manipulation (reset network,
     steady-state constants of the mission circuit itself) *)
  let base_count, base_v, base_t =
    stepped (source_name Baseline) (fun () -> engine_step cfg nl fl)
  in
  (* 2+3 share the tied netlist; its ternary fixpoint is computed once,
     outside both steps, so neither step's seconds double-count it (it is
     reported as a [prep] entry and its own "ternary" engine span). *)
  let tied_controls, tied_t =
    timed (fun () ->
        Trace.span trace ~cat:"engine" "manip" (fun () ->
            Script.apply nl (Mission.tie_controls_script mission)))
  in
  let tied_consts, shared_ternary_t =
    timed (fun () ->
        Trace.span trace ~cat:"engine" "ternary" (fun () ->
            Ternary.run ~ff_mode:cfg.Run_config.ff_mode tied_controls))
  in
  (* 2. debug control ties *)
  let ctl_count, ctl_v, ctl_t =
    stepped (source_name Debug_control) (fun () ->
        engine_step cfg ~consts:tied_consts tied_controls fl)
  in
  (* 3. debug observation: stop observing the debug buses (and scan-outs).
     Same netlist as step 2 — only observability changes. *)
  let observable, mission_obs_t =
    timed (fun () ->
        Trace.span trace ~cat:"engine" "mission" (fun () ->
            Mission.observed_in_field mission tied_controls))
  in
  let obs_count, obs_v, obs_t =
    stepped (source_name Debug_observe) (fun () ->
        engine_step cfg ~observable_output:observable ~consts:tied_consts
          tied_controls fl)
  in
  (* 4. memory map: tie forced address registers and ports *)
  let mission_nl, mission_nl_t =
    timed (fun () ->
        let forced =
          Trace.span trace ~cat:"engine" "mission" (fun () ->
              Mission.address_forcing mission)
        in
        Trace.span trace ~cat:"engine" "manip" (fun () ->
            Const_regs.tie_address_ports
              (Const_regs.tie_address_registers tied_controls ~forced)
              ~forced))
  in
  let mem_count, mem_v, mem_t =
    stepped (source_name Memory) (fun () ->
        engine_step cfg ~observable_output:observable mission_nl fl)
  in
  let steps =
    [
      {
        source = Scan;
        classified = scan_count;
        by_verdict = scan_v;
        seconds = scan_t;
      };
      {
        source = Baseline;
        classified = base_count;
        by_verdict = base_v;
        seconds = base_t;
      };
      {
        source = Debug_control;
        classified = ctl_count;
        by_verdict = ctl_v;
        seconds = ctl_t;
      };
      {
        source = Debug_observe;
        classified = obs_count;
        by_verdict = obs_v;
        seconds = obs_t;
      };
      {
        source = Memory;
        classified = mem_count;
        by_verdict = mem_v;
        seconds = mem_t;
      };
    ]
  in
  let total = scan_count + base_count + ctl_count + obs_count + mem_count in
  {
    universe = Flist.size fl;
    collapsed;
    dominance_pruned;
    steps;
    prep =
      [
        ("fault universe", flist_t);
        ("fault collapsing", collapse_t);
        ("tied netlist", tied_t);
        ("shared ternary fixpoint", shared_ternary_t);
        ("mission observability", mission_obs_t);
        ("mission netlist", mission_nl_t);
        ("verdict accounting", !tally_s);
      ];
    total_olfu = total;
    fraction = float_of_int total /. float_of_int (max 1 (Flist.size fl));
    flist = fl;
    mission_netlist = mission_nl;
    seconds = Unix.gettimeofday () -. t0;
  }

let step_count r src =
  List.fold_left
    (fun acc s -> if s.source = src then acc + s.classified else acc)
    0 r.steps

let paper_total r =
  List.fold_left
    (fun acc s ->
      match s.source with
      | Baseline -> acc
      | Scan | Debug_control | Debug_observe | Memory -> acc + s.classified)
    0 r.steps

(* Reference numbers of Table I in the paper. *)
let paper_table1 =
  [ ("Scan", 19_142, 8.9); ("Debug", 6_905, 3.2); ("Memory", 3_610, 1.7) ]

let pp_table1 ?(paper = false) ppf r =
  let pct n = 100. *. float_of_int n /. float_of_int (max 1 r.universe) in
  let scan = step_count r Scan in
  let dbg = step_count r Debug_control + step_count r Debug_observe in
  let mem = step_count r Memory in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Table I: on-line functionally untestable faults (universe %d)@,"
    r.universe;
  Format.fprintf ppf
    "  (collapsed: %d prime faults, %d more dominance-prunable)@,"
    r.collapsed r.dominance_pruned;
  let row name n =
    Format.fprintf ppf "  %-8s %8d  %5.1f%%" name n (pct n);
    if paper then begin
      match List.assoc_opt name (List.map (fun (a, b, c) -> (a, (b, c))) paper_table1) with
      | Some (pn, ppct) ->
        Format.fprintf ppf "   (paper: %6d  %4.1f%%)" pn ppct
      | None -> ()
    end;
    Format.pp_print_cut ppf ()
  in
  row "Scan" scan;
  Format.fprintf ppf "  %-8s %8d  %5.1f%%  (%d control + %d observation)"
    "Debug" dbg (pct dbg)
    (step_count r Debug_control)
    (step_count r Debug_observe);
  if paper then Format.fprintf ppf "   (paper: 4,548+2,357 = 6,905  3.2%%)";
  Format.pp_print_cut ppf ();
  row "Memory" mem;
  let ptot = paper_total r in
  Format.fprintf ppf "  %-8s %8d  %5.1f%%" "TOTAL" ptot (pct ptot);
  if paper then Format.fprintf ppf "   (paper: 29,657  13.8%%)";
  Format.pp_print_cut ppf ();
  Format.fprintf ppf
    "  (+ %d reset/steady-state faults outside the paper's accounting;      grand total %d = %.1f%%)"
    (step_count r Baseline) r.total_olfu (100. *. r.fraction);
  Format.pp_print_cut ppf ();
  let tally = undet_tally r.flist in
  Format.fprintf ppf "  by verdict:";
  Array.iteri
    (fun k n ->
      if n > 0 then
        Format.fprintf ppf " %s=%d"
          (Status.code (Status.Undetectable undet_classes.(k)))
          n)
    tally;
  Format.fprintf ppf "@,analysis time: %.3f s@]" r.seconds
