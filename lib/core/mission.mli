open Olfu_netlist
open Olfu_manip

(** Mission configuration of a netlist: everything the in-field environment
    fixes, which the identification flow turns into circuit
    manipulations. *)

type t = {
  debug_controls : string list;
      (** input ports soldered/pulled to a rail in the field (tied to 0) *)
  debug_observes : string list;
      (** output ports left unconnected in the field *)
  memmap : Memmap.region list;  (** populated address ranges *)
  address_width : int;
}

val of_soc : Olfu_soc.Soc.config -> Netlist.t -> t
(** The tcore mission: the 17 debug control pins, both observation buses,
    and the configured ROM/RAM map. *)

val of_roles :
  memmap:Memmap.region list -> address_width:int -> Netlist.t -> t
(** Derive the mission from the role annotations embedded in the netlist
    (the form that survives Verilog round-trips): debug controls are the
    inputs tagged {!Netlist.Debug_control}, observes the outputs tagged
    {!Netlist.Debug_observe}. *)

val observed_in_field : t -> Netlist.t -> int -> bool
(** Which output markers the on-line test can actually check: everything
    except the floated debug observes and the scan-out ports. *)

val tie_controls_script : t -> Script.t
(** Sec. 3.2.1 manipulation. *)

val address_forcing : t -> int -> Olfu_logic.Logic4.t option
(** Sec. 3.3: the constant value (if any) the memory map forces on address
    bit [i]. *)

val pp : Format.formatter -> t -> unit
