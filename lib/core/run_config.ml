module Ternary = Olfu_atpg.Ternary
module Trace = Olfu_obs.Trace
module Json = Olfu_obs.Json

type t = {
  ff_mode : Ternary.ff_mode;
  jobs : int;
  implic : bool;
  trace : Trace.sink;
}

let default =
  { ff_mode = Ternary.Steady_state; jobs = 1; implic = true; trace = Trace.null }

let ff_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "cut" -> Some Ternary.Cut
  | "reset_join" | "reset-join" -> Some Ternary.Reset_join
  | "steady_state" | "steady-state" | "steady" -> Some Ternary.Steady_state
  | _ -> None

let ff_mode_name = function
  | Ternary.Cut -> "cut"
  | Ternary.Reset_join -> "reset_join"
  | Ternary.Steady_state -> "steady_state"

let of_env () =
  let jobs =
    match Sys.getenv_opt "OLFU_JOBS" with
    | None -> default.jobs
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j -> max 1 (min 64 j)
      | None -> default.jobs)
  in
  let ff_mode =
    match Sys.getenv_opt "OLFU_FF_MODE" with
    | None -> default.ff_mode
    | Some s -> Option.value ~default:default.ff_mode (ff_mode_of_string s)
  in
  let implic =
    match Sys.getenv_opt "OLFU_IMPLIC" with
    | None -> default.implic
    | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "false" | "no" | "off" -> false
      | _ -> true)
  in
  { default with ff_mode; jobs; implic }

let to_json c =
  Json.Obj
    [
      ("ff_mode", Json.Str (ff_mode_name c.ff_mode));
      ("jobs", Json.Int c.jobs);
      ("implic", Json.Bool c.implic);
      ("trace", Json.Bool (Trace.enabled c.trace));
    ]
