open Olfu_logic
open Olfu_netlist
open Olfu_manip

type t = {
  debug_controls : string list;
  debug_observes : string list;
  memmap : Memmap.region list;
  address_width : int;
}

let of_soc cfg nl =
  {
    debug_controls = Olfu_soc.Soc.debug_control_inputs cfg;
    debug_observes = Olfu_soc.Soc.debug_observe_outputs cfg nl;
    memmap = Olfu_soc.Soc.memmap_regions cfg;
    address_width = cfg.Olfu_soc.Soc.xlen;
  }

let of_roles ~memmap ~address_width nl =
  {
    debug_controls =
      Netlist.inputs nl |> Array.to_list
      |> List.filter (fun i -> Netlist.has_role nl i Netlist.Debug_control)
      |> List.filter_map (fun i -> Netlist.name nl i);
    debug_observes =
      Netlist.outputs nl |> Array.to_list
      |> List.filter (fun o -> Netlist.has_role nl o Netlist.Debug_observe)
      |> List.filter_map (fun o -> Netlist.name nl o);
    memmap;
    address_width;
  }

let observed_in_field t nl o =
  (not (Netlist.has_role nl o Netlist.Scan_out))
  &&
  match Netlist.name nl o with
  | Some s -> not (List.mem s t.debug_observes)
  | None -> true

let tie_controls_script t =
  List.map (fun s -> Script.Tie_input (s, Logic4.L0)) t.debug_controls

let address_forcing t =
  let consts = Memmap.constant_bits ~width:t.address_width t.memmap in
  fun bit ->
    List.assoc_opt bit consts |> Option.map (fun v -> Logic4.of_bool v)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>debug controls tied: %d@,debug observes floated: %d@,memory \
     regions: %d (width %d)@]"
    (List.length t.debug_controls)
    (List.length t.debug_observes)
    (List.length t.memmap) t.address_width
