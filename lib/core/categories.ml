open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_atpg
open Olfu_manip

type sets = {
  universe : int;
  structural : int;
  functional : int;
  online : int;
  inclusions_hold : bool;
}

let quiet_dft_script nl mission =
  let scan_ports =
    Netlist.inputs nl |> Array.to_list
    |> List.filter (fun i ->
           Netlist.has_role nl i Netlist.Scan_enable
           || Netlist.has_role nl i Netlist.Scan_in)
    |> List.filter_map (fun i -> Netlist.name nl i)
  in
  Mission.tie_controls_script mission
  @ List.map (fun s -> Script.Tie_input (s, Logic4.L0)) scan_ports

let compute ?ff_mode nl mission =
  let universe = Fault.universe nl in
  let verdicts t =
    Array.map (fun f -> Untestable.fault_verdict t f <> None) universe
  in
  (* structural: raw netlist, combinational view, everything observable *)
  let structural =
    verdicts (Untestable.analyze ~ff_mode:Ternary.Cut nl)
  in
  (* functional: DfT/debug inputs quiet, all outputs on the bench *)
  let quiet = Script.apply nl (quiet_dft_script nl mission) in
  let functional = verdicts (Untestable.analyze ?ff_mode quiet) in
  (* on-line: mission observability + memory map on top *)
  let forced = Mission.address_forcing mission in
  let mission_nl =
    Const_regs.tie_address_ports
      (Const_regs.tie_address_registers quiet ~forced)
      ~forced
  in
  let online =
    verdicts
      (Untestable.analyze ?ff_mode
         ~observable_output:(Mission.observed_in_field mission mission_nl)
         mission_nl)
  in
  let count a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a in
  let incl a b =
    (* every member of a is in b *)
    let ok = ref true in
    Array.iteri (fun i x -> if x && not b.(i) then ok := false) a;
    !ok
  in
  {
    universe = Array.length universe;
    structural = count structural;
    functional = count functional;
    online = count online;
    inclusions_hold = incl structural functional && incl functional online;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>fault universe:            %8d@,structurally untestable:   %8d@,\
     functionally untestable:   %8d@,on-line funct. untestable: %8d@,\
     inclusions hold: %b@]"
    s.universe s.structural s.functional s.online s.inclusions_hold
