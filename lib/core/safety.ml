open Olfu_fault

type asil = QM | A | B | C | D

let required_coverage = function
  | QM -> None
  | A -> Some 0.90  (* recommended, not mandated *)
  | B -> Some 0.90
  | C -> Some 0.97
  | D -> Some 0.99

let paper_airbag_target = 0.98

type verdict = {
  level : asil;
  target : float option;
  raw : float;
  pruned : float;
  meets_raw : bool;
  meets_pruned : bool;
}

let assess level fl =
  let target = required_coverage level in
  let raw = Flist.fault_coverage fl in
  let pruned = Flist.testable_coverage fl in
  let meets v = match target with None -> true | Some t -> v >= t in
  { level; target; raw; pruned; meets_raw = meets raw;
    meets_pruned = meets pruned }

let pp_asil ppf = function
  | QM -> Format.pp_print_string ppf "QM"
  | A -> Format.pp_print_string ppf "ASIL-A"
  | B -> Format.pp_print_string ppf "ASIL-B"
  | C -> Format.pp_print_string ppf "ASIL-C"
  | D -> Format.pp_print_string ppf "ASIL-D"

let pp_verdict ppf v =
  Format.fprintf ppf
    "@[<v>%a target: %s@,raw coverage:    %.2f%% -> %s@,pruned coverage: \
     %.2f%% -> %s@]"
    pp_asil v.level
    (match v.target with
    | None -> "none"
    | Some t -> Printf.sprintf "%.0f%%" (100. *. t))
    (100. *. v.raw)
    (if v.meets_raw then "PASS" else "FAIL")
    (100. *. v.pruned)
    (if v.meets_pruned then "PASS" else "FAIL")
