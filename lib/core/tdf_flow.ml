open Olfu_fault
open Olfu_atpg
open Olfu_manip
module Trace = Olfu_obs.Trace

type report = {
  universe : int;
  scan : int;
  baseline : int;
  debug_control : int;
  debug_observe : int;
  memory : int;
  total : int;
  fraction : float;
  seconds : float;
}

let run (cfg : Run_config.t) nl mission =
  let { Run_config.ff_mode; jobs; implic; trace } = cfg in
  let t0 = Unix.gettimeofday () in
  let u =
    Trace.span trace ~cat:"engine" "flist" (fun () -> Tdf.universe nl)
  in
  let claimed = Array.make (Array.length u) false in
  let classify_with t =
    (* each index is read and written by exactly one worker, and verdicts
       are pure in (t, fault), so the claims are independent of [jobs] *)
    let n = ref 0 in
    Trace.span trace ~cat:"engine" "classify" (fun () ->
        Olfu_pool.Pool.with_pool ~jobs (fun pool ->
            let nw = Olfu_pool.Pool.jobs pool in
            let walkers =
              Array.init nw (fun _ -> Untestable.make_walker t)
            in
            let wn = Array.make nw 0 in
            Olfu_pool.Pool.parallel_chunks pool ~n:(Array.length u)
              ~chunk:512 ~trace ~label:"tdf_classify"
              (fun ~worker ~lo ~hi ->
                let w = walkers.(worker) in
                for i = lo to hi - 1 do
                  if
                    (not claimed.(i))
                    && Tdf_classify.verdict_with t w u.(i) <> None
                  then begin
                    claimed.(i) <- true;
                    wn.(worker) <- wn.(worker) + 1
                  end
                done);
            Array.iter (fun c -> n := !n + c) wn));
    !n
  in
  let stepped name f = Trace.span trace ~cat:"step" name f in
  (* 1. scan rule: every transition fault on a scan-rule site is dead —
     the SE net never toggles in mission mode, so even the pins whose
     stuck-at-1 is kept cannot launch a transition *)
  let scan =
    stepped "Scan" (fun () ->
        let scan_sites =
          Trace.span trace ~cat:"engine" "scan_trace" (fun () ->
              Scan_trace.untestable_faults nl)
          |> List.map (fun (f : Fault.t) -> f.Fault.site)
        in
        let site_set = Hashtbl.create 999 in
        List.iter (fun s -> Hashtbl.replace site_set s ()) scan_sites;
        let scan = ref 0 in
        Array.iteri
          (fun i (f : Tdf.t) ->
            if (not claimed.(i)) && Hashtbl.mem site_set f.Tdf.site then begin
              claimed.(i) <- true;
              incr scan
            end)
          u;
        !scan)
  in
  (* 2. baseline *)
  let baseline =
    stepped "Baseline" (fun () ->
        classify_with (Untestable.analyze ~ff_mode ~implic ~trace nl))
  in
  (* 3+4 analyze the same tied netlist: compute its ternary fixpoint once,
     outside both steps (its own "ternary" engine span). *)
  let tied =
    Trace.span trace ~cat:"engine" "manip" (fun () ->
        Script.apply nl (Mission.tie_controls_script mission))
  in
  let tied_consts =
    Trace.span trace ~cat:"engine" "ternary" (fun () ->
        Ternary.run ~ff_mode tied)
  in
  (* 3. debug control *)
  let debug_control =
    stepped "Debug (control)" (fun () ->
        classify_with
          (Untestable.analyze ~ff_mode ~consts:tied_consts ~implic ~trace
             tied))
  in
  (* 4. debug observation *)
  let observable =
    Trace.span trace ~cat:"engine" "mission" (fun () ->
        Mission.observed_in_field mission tied)
  in
  let debug_observe =
    stepped "Debug (observation)" (fun () ->
        classify_with
          (Untestable.analyze ~ff_mode ~observable_output:observable
             ~consts:tied_consts ~implic ~trace tied))
  in
  (* 5. memory map *)
  let forced =
    Trace.span trace ~cat:"engine" "mission" (fun () ->
        Mission.address_forcing mission)
  in
  let mission_nl =
    Trace.span trace ~cat:"engine" "manip" (fun () ->
        Const_regs.tie_address_ports
          (Const_regs.tie_address_registers tied ~forced)
          ~forced)
  in
  let memory =
    stepped "Memory" (fun () ->
        classify_with
          (Untestable.analyze ~ff_mode ~observable_output:observable ~implic
             ~trace mission_nl))
  in
  let total = scan + baseline + debug_control + debug_observe + memory in
  {
    universe = Array.length u;
    scan;
    baseline;
    debug_control;
    debug_observe;
    memory;
    total;
    fraction = float_of_int total /. float_of_int (max 1 (Array.length u));
    seconds = Unix.gettimeofday () -. t0;
  }

let pp ppf r =
  let pct n = 100. *. float_of_int n /. float_of_int (max 1 r.universe) in
  Format.fprintf ppf
    "@[<v>Transition-delay faults (universe %d)@,\
     \  Scan     %8d  %5.1f%%@,\
     \  Debug    %8d  %5.1f%%  (%d control + %d observation)@,\
     \  Memory   %8d  %5.1f%%@,\
     \  TOTAL    %8d  %5.1f%%  (+ %d baseline)@,\
     analysis time: %.3f s@]"
    r.universe r.scan (pct r.scan)
    (r.debug_control + r.debug_observe)
    (pct (r.debug_control + r.debug_observe))
    r.debug_control r.debug_observe r.memory (pct r.memory)
    (r.scan + r.debug_control + r.debug_observe + r.memory)
    (pct (r.scan + r.debug_control + r.debug_observe + r.memory))
    r.baseline r.seconds
