open Olfu_logic
open Olfu_netlist

(** 64-pattern bit-parallel combinational simulation (one lane per
    pattern).  Used by the pattern fault simulator and as a fast oracle in
    tests. *)

type env = Dualrail.t array

val init : Netlist.t -> Dualrail.t -> env
val settle : Netlist.t -> env -> unit

val settle_with :
  Netlist.t -> env -> override:(int -> Dualrail.t option) -> unit

val next_states : Netlist.t -> env -> (int * Dualrail.t) array
