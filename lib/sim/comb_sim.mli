open Olfu_logic
open Olfu_netlist

(** Levelized combinational evaluation over the whole netlist.

    The environment is an array of net values indexed by node id.  Sources
    (primary inputs and sequential-cell outputs) are read from the array;
    everything else is (re)computed in topological order. *)

type env = Logic4.t array

val init : Netlist.t -> Logic4.t -> env
(** Fresh environment with every entry set to the given value. *)

val settle : Netlist.t -> env -> unit
(** Evaluates every combinational cell.  Tie cells overwrite their slot with
    their constant; source slots are left untouched. *)

val settle_with :
  Netlist.t -> env -> override:(int -> Logic4.t option) -> unit
(** Like {!settle} but [override node] replaces a computed net value — the
    hook used for fault injection on stems. *)

val next_states : Netlist.t -> env -> (int * Logic4.t) array
(** Values each sequential cell captures at the next clock edge, given a
    settled environment. *)
