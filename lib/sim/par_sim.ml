open Olfu_logic
open Olfu_netlist

type env = Dualrail.t array

let init nl v = Array.make (Netlist.length nl) v

let eval_node nl env i =
  let nd = Netlist.node nl i in
  let ins = Array.map (fun d -> env.(d)) nd.Netlist.fanin in
  Eval.comb_par nd.Netlist.kind ins

let set_ties nl env =
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Tie0 -> env.(i) <- Dualrail.zero
      | Cell.Tie1 -> env.(i) <- Dualrail.one
      | Cell.Tiex -> env.(i) <- Dualrail.unknown
      | _ -> ())
    nl

let settle nl env =
  set_ties nl env;
  Array.iter (fun i -> env.(i) <- eval_node nl env i) (Netlist.topo nl)

let settle_with nl env ~override =
  set_ties nl env;
  Netlist.iter_nodes
    (fun i _ -> match override i with Some v -> env.(i) <- v | None -> ())
    nl;
  Array.iter
    (fun i ->
      let v = eval_node nl env i in
      env.(i) <- (match override i with Some o -> o | None -> v))
    (Netlist.topo nl)

let next_states nl env =
  Array.map
    (fun i ->
      let nd = Netlist.node nl i in
      let pin p = env.(nd.Netlist.fanin.(p)) in
      let v =
        match nd.Netlist.kind with
        | Cell.Dff -> pin 0
        | Cell.Dffr -> Dualrail.mux ~sel:(pin 1) ~a:Dualrail.zero ~b:(pin 0)
        | Cell.Sdff -> Dualrail.mux ~sel:(pin 2) ~a:(pin 0) ~b:(pin 1)
        | Cell.Sdffr ->
          Dualrail.mux ~sel:(pin 3) ~a:Dualrail.zero
            ~b:(Dualrail.mux ~sel:(pin 2) ~a:(pin 0) ~b:(pin 1))
        | _ -> invalid_arg "Par_sim.next_states: not sequential"
      in
      (i, v))
    (Netlist.seq_nodes nl)
