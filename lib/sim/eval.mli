open Olfu_logic
open Olfu_netlist

(** Single-cell evaluation shared by all simulators. *)

val comb : Cell.kind -> Logic4.t array -> Logic4.t
(** Value of a combinational cell's output given its input-pin values.
    Raises [Invalid_argument] on sequential cells and [Input] (their values
    come from state or the environment, not from evaluation). *)

val comb5 : Cell.kind -> Logic5.t array -> Logic5.t
(** Five-valued variant for the ATPG. *)

val comb_par : Cell.kind -> Dualrail.t array -> Dualrail.t
(** 64-pattern bit-parallel variant. *)

val next_state :
  Cell.kind -> ins:Logic4.t array -> current:Logic4.t -> Logic4.t
(** Next flip-flop value at a clock edge.  [Dffr] treats an active (0)
    reset as dominant; [Sdff] selects SI when SE = 1.  Unknown controls
    yield [X] unless both alternatives agree. *)
