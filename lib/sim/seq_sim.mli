open Olfu_logic
open Olfu_netlist

(** Cycle-based sequential simulation.

    State lives in the sequential cells; one {!step} is: settle the
    combinational logic, then clock every flip-flop.  Fault injection is
    available through an optional stem override, which is applied both
    during settling and when computing next state. *)

type t

val create : ?init:Logic4.t -> Netlist.t -> t
(** Flip-flops start at [?init] (default [X]). *)

val netlist : t -> Netlist.t

val set_input : t -> int -> Logic4.t -> unit
(** Drive a primary input (by node id). *)

val set_input_name : t -> string -> Logic4.t -> unit

val set_state : t -> int -> Logic4.t -> unit
(** Force a flip-flop value (by node id) — used for test setup. *)

val settle : ?override:(int -> Logic4.t option) -> t -> unit
(** Combinational settle without clocking. *)

val step : ?override:(int -> Logic4.t option) -> t -> unit
(** Settle then clock. *)

val run : ?override:(int -> Logic4.t option) -> t -> int -> unit
(** [run t n] performs [n] steps with the current input values. *)

val value : t -> int -> Logic4.t
(** Net value after the last settle. *)

val value_name : t -> string -> Logic4.t
val output_values : t -> (string * Logic4.t) list
val state : t -> (int * Logic4.t) array
