open Olfu_logic
open Olfu_netlist

(** Toggle-activity recorder.

    The paper's debug-screening step (Sec. 4) runs the mature self-test
    suite and flags every signal that shows {e no activity} as a suspected
    mission-unused (debug) signal.  This module implements that metric:
    record net values across simulation snapshots, then report nets that
    never carried both binary values. *)

type t

val create : Netlist.t -> t

val record : t -> Seq_sim.t -> unit
(** Sample every net of a settled simulator. *)

val record_env : t -> Logic4.t array -> unit

type verdict =
  | Constant of Logic4.t  (** only ever this binary value *)
  | Never_driven  (** only ever X/Z *)
  | Toggled

val verdict : t -> int -> verdict

val untoggled : t -> (int * verdict) list
(** Nodes that never toggled, in id order (excludes [Toggled]). *)

val suspects : t -> int list
(** Primary inputs that never toggled — the paper's candidate set of tied
    debug control signals. *)
