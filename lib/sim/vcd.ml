open Olfu_logic
open Olfu_netlist

type t = {
  nl : Netlist.t;
  nets : int array;
  samples : Logic4.t array list ref;  (* newest first *)
}

let default_nets nl =
  let acc = ref [] in
  Netlist.iter_nodes
    (fun i nd ->
      let is_port =
        match nd.Netlist.kind with
        | Cell.Input | Cell.Output -> true
        | _ -> false
      in
      if is_port || nd.Netlist.name <> None then acc := i :: !acc)
    nl;
  List.rev !acc

let create ?nets nl =
  let nets =
    match nets with Some l -> l | None -> default_nets nl
  in
  { nl; nets = Array.of_list nets; samples = ref [] }

let sample t sim =
  t.samples :=
    Array.map (fun i -> Seq_sim.value sim i) t.nets :: !(t.samples)

let sample_env t env =
  t.samples := Array.map (fun i -> env.(i)) t.nets :: !(t.samples)

(* VCD identifier codes: printable characters 33..126, base-94. *)
let code k =
  let b = Buffer.create 4 in
  let rec go k =
    Buffer.add_char b (Char.chr (33 + (k mod 94)));
    if k >= 94 then go ((k / 94) - 1)
  in
  go k;
  Buffer.contents b

let vcd_char = function
  | Logic4.L0 -> '0'
  | Logic4.L1 -> '1'
  | Logic4.X -> 'x'
  | Logic4.Z -> 'z'

let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = '[' || c = ']'
      then c
      else '_')
    s

let to_string ?(timescale = "1 ns") ?(modname = "top") t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date olfu $end\n";
  Buffer.add_string buf "$version olfu vcd writer $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" modname);
  Array.iteri
    (fun k i ->
      let name =
        match Netlist.name t.nl i with
        | Some s -> sanitize s
        | None -> Printf.sprintf "n%d" i
      in
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" (code k) name))
    t.nets;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let samples = List.rev !(t.samples) in
  let prev = Array.make (Array.length t.nets) None in
  List.iteri
    (fun ts values ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" ts);
      if ts = 0 then Buffer.add_string buf "$dumpvars\n";
      Array.iteri
        (fun k v ->
          if prev.(k) <> Some v then begin
            prev.(k) <- Some v;
            Buffer.add_char buf (vcd_char v);
            Buffer.add_string buf (code k);
            Buffer.add_char buf '\n'
          end)
        values;
      if ts = 0 then Buffer.add_string buf "$end\n")
    samples;
  Buffer.add_string buf (Printf.sprintf "#%d\n" (List.length samples));
  Buffer.contents buf

let to_file ?timescale ?modname t path =
  let oc = open_out path in
  output_string oc (to_string ?timescale ?modname t);
  close_out oc
