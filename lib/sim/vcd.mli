open Olfu_netlist

(** VCD (IEEE 1364 value-change dump) writer for cycle simulations, so
    recorded runs open in GTKWave and friends.

    Usage: create a recorder over the nets of interest, call {!sample}
    once per clock cycle after the simulator settles, then {!to_string} /
    {!to_file}. *)

type t

val create : ?nets:int list -> Netlist.t -> t
(** [nets] defaults to every named net plus all ports. *)

val sample : t -> Seq_sim.t -> unit
(** Record the current settled values as the next timestep. *)

val sample_env : t -> Olfu_logic.Logic4.t array -> unit

val to_string : ?timescale:string -> ?modname:string -> t -> string
val to_file : ?timescale:string -> ?modname:string -> t -> string -> unit
