open Olfu_logic
open Olfu_netlist

type t = {
  nl : Netlist.t;
  seen0 : Bytes.t;
  seen1 : Bytes.t;
}

let create nl =
  let n = Netlist.length nl in
  { nl; seen0 = Bytes.make n '\000'; seen1 = Bytes.make n '\000' }

let mark b i = Bytes.set b i '\001'
let seen b i = Bytes.get b i = '\001'

let record_env t env =
  Array.iteri
    (fun i v ->
      match (v : Logic4.t) with
      | L0 -> mark t.seen0 i
      | L1 -> mark t.seen1 i
      | X | Z -> ())
    env

let record t sim =
  for i = 0 to Netlist.length t.nl - 1 do
    match Seq_sim.value sim i with
    | Logic4.L0 -> mark t.seen0 i
    | Logic4.L1 -> mark t.seen1 i
    | Logic4.X | Logic4.Z -> ()
  done

type verdict = Constant of Logic4.t | Never_driven | Toggled

let verdict t i =
  match seen t.seen0 i, seen t.seen1 i with
  | true, true -> Toggled
  | true, false -> Constant Logic4.L0
  | false, true -> Constant Logic4.L1
  | false, false -> Never_driven

let untoggled t =
  let acc = ref [] in
  for i = Netlist.length t.nl - 1 downto 0 do
    match verdict t i with
    | Toggled -> ()
    | v -> acc := (i, v) :: !acc
  done;
  !acc

let suspects t =
  Netlist.inputs t.nl |> Array.to_list
  |> List.filter (fun i -> verdict t i <> Toggled)
