open Olfu_logic
open Olfu_netlist

type t = {
  nl : Netlist.t;
  env : Comb_sim.env;
  inputs : Logic4.t array;  (* indexed by node id; only input slots used *)
}

let create ?(init = Logic4.X) nl =
  let env = Comb_sim.init nl Logic4.X in
  Array.iter (fun i -> env.(i) <- init) (Netlist.seq_nodes nl);
  { nl; env; inputs = Array.make (Netlist.length nl) Logic4.X }

let netlist t = t.nl

let set_input t i v =
  if not (Cell.equal_kind (Netlist.kind t.nl i) Cell.Input) then
    invalid_arg "Seq_sim.set_input: not a primary input";
  t.inputs.(i) <- v

let set_input_name t s v = set_input t (Netlist.find_exn t.nl s) v

let set_state t i v =
  if not (Cell.is_seq (Netlist.kind t.nl i)) then
    invalid_arg "Seq_sim.set_state: not a sequential cell";
  t.env.(i) <- v

let load_inputs t =
  Array.iter (fun i -> t.env.(i) <- t.inputs.(i)) (Netlist.inputs t.nl)

let settle ?override t =
  load_inputs t;
  match override with
  | None -> Comb_sim.settle t.nl t.env
  | Some f -> Comb_sim.settle_with t.nl t.env ~override:f

let step ?override t =
  settle ?override t;
  let next = Comb_sim.next_states t.nl t.env in
  Array.iter
    (fun (i, v) ->
      let v =
        match override with
        | Some f -> (match f i with Some o -> o | None -> v)
        | None -> v
      in
      t.env.(i) <- v)
    next

let run ?override t n =
  for _ = 1 to n do
    step ?override t
  done

let value t i = t.env.(i)
let value_name t s = value t (Netlist.find_exn t.nl s)

let output_values t =
  Netlist.outputs t.nl |> Array.to_list
  |> List.map (fun i ->
         let n = Option.value ~default:(string_of_int i) (Netlist.name t.nl i) in
         (n, t.env.(i)))

let state t =
  Array.map (fun i -> (i, t.env.(i))) (Netlist.seq_nodes t.nl)
