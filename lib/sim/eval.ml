open Olfu_logic
open Olfu_netlist

let bad k =
  invalid_arg
    (Printf.sprintf "Eval: %s is not combinational" (Cell.kind_name k))

let fold1 f init ins = Array.fold_left f init ins

let comb (k : Cell.kind) (ins : Logic4.t array) : Logic4.t =
  match k with
  | Output | Buf -> ins.(0)
  | Not -> Logic4.not_ ins.(0)
  | And -> fold1 Logic4.and2 Logic4.L1 ins
  | Nand -> Logic4.not_ (fold1 Logic4.and2 Logic4.L1 ins)
  | Or -> fold1 Logic4.or2 Logic4.L0 ins
  | Nor -> Logic4.not_ (fold1 Logic4.or2 Logic4.L0 ins)
  | Xor -> fold1 Logic4.xor2 Logic4.L0 ins
  | Xnor -> Logic4.not_ (fold1 Logic4.xor2 Logic4.L0 ins)
  | Mux2 -> Logic4.mux ~sel:ins.(0) ~a:ins.(1) ~b:ins.(2)
  | Tie0 -> Logic4.L0
  | Tie1 -> Logic4.L1
  | Tiex -> Logic4.X
  | Input | Dff | Dffr | Sdff | Sdffr -> bad k

let comb5 (k : Cell.kind) (ins : Logic5.t array) : Logic5.t =
  match k with
  | Output | Buf -> ins.(0)
  | Not -> Logic5.not_ ins.(0)
  | And -> fold1 Logic5.and2 Logic5.One ins
  | Nand -> Logic5.not_ (fold1 Logic5.and2 Logic5.One ins)
  | Or -> fold1 Logic5.or2 Logic5.Zero ins
  | Nor -> Logic5.not_ (fold1 Logic5.or2 Logic5.Zero ins)
  | Xor -> fold1 Logic5.xor2 Logic5.Zero ins
  | Xnor -> Logic5.not_ (fold1 Logic5.xor2 Logic5.Zero ins)
  | Mux2 -> Logic5.mux ~sel:ins.(0) ~a:ins.(1) ~b:ins.(2)
  | Tie0 -> Logic5.Zero
  | Tie1 -> Logic5.One
  | Tiex -> Logic5.X
  | Input | Dff | Dffr | Sdff | Sdffr -> bad k

let comb_par (k : Cell.kind) (ins : Dualrail.t array) : Dualrail.t =
  match k with
  | Output | Buf -> ins.(0)
  | Not -> Dualrail.not_ ins.(0)
  | And -> fold1 Dualrail.and2 Dualrail.one ins
  | Nand -> Dualrail.not_ (fold1 Dualrail.and2 Dualrail.one ins)
  | Or -> fold1 Dualrail.or2 Dualrail.zero ins
  | Nor -> Dualrail.not_ (fold1 Dualrail.or2 Dualrail.zero ins)
  | Xor -> fold1 Dualrail.xor2 Dualrail.zero ins
  | Xnor -> Dualrail.not_ (fold1 Dualrail.xor2 Dualrail.zero ins)
  | Mux2 -> Dualrail.mux ~sel:ins.(0) ~a:ins.(1) ~b:ins.(2)
  | Tie0 -> Dualrail.zero
  | Tie1 -> Dualrail.one
  | Tiex -> Dualrail.unknown
  | Input | Dff | Dffr | Sdff | Sdffr -> bad k

let next_state (k : Cell.kind) ~(ins : Logic4.t array) ~current =
  match k with
  | Dff -> ins.(0)
  | Dffr -> (
    match ins.(1) with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> ins.(0)
    | Logic4.X | Logic4.Z ->
      if Logic4.equal ins.(0) Logic4.L0 then Logic4.L0 else Logic4.X)
  | Sdff -> Logic4.mux ~sel:ins.(2) ~a:ins.(0) ~b:ins.(1)
  | Sdffr -> (
    let captured = Logic4.mux ~sel:ins.(2) ~a:ins.(0) ~b:ins.(1) in
    match ins.(3) with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> captured
    | Logic4.X | Logic4.Z ->
      if Logic4.equal captured Logic4.L0 then Logic4.L0 else Logic4.X)
  | _ -> ignore current; bad k
