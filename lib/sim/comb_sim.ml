open Olfu_logic
open Olfu_netlist

type env = Logic4.t array

let init nl v = Array.make (Netlist.length nl) v

let eval_node nl env i =
  let nd = Netlist.node nl i in
  let ins = Array.map (fun d -> env.(d)) nd.Netlist.fanin in
  Eval.comb nd.Netlist.kind ins

let settle nl env =
  (* Ties are sources for ordering purposes but their value is intrinsic. *)
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Tie0 -> env.(i) <- Logic4.L0
      | Cell.Tie1 -> env.(i) <- Logic4.L1
      | Cell.Tiex -> env.(i) <- Logic4.X
      | _ -> ())
    nl;
  Array.iter (fun i -> env.(i) <- eval_node nl env i) (Netlist.topo nl)

let settle_with nl env ~override =
  Netlist.iter_nodes
    (fun i nd ->
      let base =
        match nd.Netlist.kind with
        | Cell.Tie0 -> Some Logic4.L0
        | Cell.Tie1 -> Some Logic4.L1
        | Cell.Tiex -> Some Logic4.X
        | _ -> None
      in
      (match base with Some v -> env.(i) <- v | None -> ());
      match override i with Some v -> env.(i) <- v | None -> ())
    nl;
  Array.iter
    (fun i ->
      let v = eval_node nl env i in
      env.(i) <- (match override i with Some o -> o | None -> v))
    (Netlist.topo nl)

let next_states nl env =
  Array.map
    (fun i ->
      let nd = Netlist.node nl i in
      let ins = Array.map (fun d -> env.(d)) nd.Netlist.fanin in
      (i, Eval.next_state nd.Netlist.kind ~ins ~current:env.(i)))
    (Netlist.seq_nodes nl)
