open Olfu_netlist
open Olfu_fault

(** Five-valued PODEM on the full-access combinational view.

    Flip-flop outputs are treated as assignable pseudo-inputs and their
    captured next-state values as pseudo-outputs — the standard full-scan
    abstraction, which is also what a structural engine assumes when it
    classifies faults after circuit manipulation.  Tie cells remain
    constants and are never assignable, so a [Untestable] verdict proves
    the fault has no test {e in the manipulated configuration}.

    Clock-pin faults are outside the combinational model
    ([Invalid_argument]); {!Untestable.fault_verdict} covers them. *)

type assignment = (int * bool) list
(** Pseudo-input node id, assigned value. *)

type result =
  | Test of assignment  (** a detecting pattern (good-circuit values) *)
  | Proved_untestable  (** search space exhausted: no test exists *)
  | Aborted  (** backtrack limit hit *)

val run :
  ?backtrack_limit:int ->
  ?observable_output:(int -> bool) ->
  ?observe_captures:bool ->
  ?guide:Scoap.t ->
  Netlist.t ->
  Fault.t ->
  result
(** [backtrack_limit] defaults to 10,000.  [observe_captures] (default
    [true]) counts flip-flop capture values as observation points.
    [guide] supplies SCOAP measures for backtrace ordering (computed on
    the fly when absent — pass it when running many faults on one
    netlist). *)

val check_test :
  ?observable_output:(int -> bool) ->
  ?observe_captures:bool ->
  Netlist.t ->
  Fault.t ->
  assignment ->
  bool
(** Independent validation that an assignment detects the fault (used by
    the property tests). *)
