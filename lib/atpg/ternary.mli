open Olfu_logic
open Olfu_netlist

(** Ternary (0/1/X) constant propagation.

    Computes, for every net, whether the mission configuration forces it to
    a constant.  Tie cells and the structure itself are the only sources of
    constants; free primary inputs are X.

    Sequential handling is selectable because it is precisely the knob the
    paper discusses (Sec. 3.3: tools "stop the untestable identification
    process at flip flops", so the authors tie FF outputs manually): *)

type ff_mode =
  | Cut
      (** flip-flop outputs are X: per-combinational-block analysis, the
          behaviour of a plain structural tool *)
  | Reset_join
      (** sound always-constant analysis: flip-flops start from their
          post-reset value, values are joined across all reachable cycles
          (a net is reported constant only if it holds that value in every
          post-reset cycle) *)
  | Steady_state
      (** mission steady state: iterate the deterministic ternary
          trajectory from reset to a fixed point; nets binary in the fixed
          point are reported constant.  This matches the paper's reading
          ("registers will always show a constant logic value") and may
          claim nets that differ for a few cycles right after reset. *)

type t = {
  values : Logic4.t array;  (** per net: [L0]/[L1] if constant, else [X] *)
  iterations : int;
  converged : bool;  (** [false] if [max_iters] was hit (Steady_state) *)
}

val run :
  ?ff_mode:ff_mode ->
  ?assume:(int * Logic4.t) list ->
  ?max_iters:int ->
  Netlist.t ->
  t
(** [max_iters] (default 64) bounds the sequential fixed point.  Inputs
    with the {!Netlist.Reset} role are held at their active-low asserted
    value (0) to compute the post-reset state, then released to constant
    inactive (1) — mission mode cannot toggle reset (Sec. 2).

    [assume] forces the listed nodes to constants throughout the
    analysis (both during and after reset) — the mission tie script, or
    software-derived facts, expressed as implication assumptions without
    editing the netlist.  Input nodes are forced in the environment;
    sequential nodes are pinned in state space every iteration (the
    paper's "tie the flip flops the mission holds constant").  Assumed
    combinational non-sequential nodes are overwritten by evaluation and
    have no effect. *)

val const_of : t -> int -> Logic4.t
val is_const : t -> int -> bool
val num_const : t -> int
