open Olfu_logic
open Olfu_netlist

(** X-path observability under a constant assignment.

    A net is {e observable} when some sensitizable path reaches an
    observation point (a primary output that is not floated, credited
    through flip-flops).  Side inputs holding a controlling constant block
    propagation: this is how tying debug enables or address bits converts
    on-line functional untestability into structural unobservability
    (Sec. 3 of the paper).

    The analysis is optimistic (it may call a net observable that a full
    search would prove dead), so the {e unobservable} verdict — the one
    used to classify faults — is sound. *)

type t

val run :
  ?observable_output:(int -> bool) -> Netlist.t -> consts:Logic4.t array -> t
(** [observable_output o] selects which [Output]-marker nodes count as
    observation points (default: all).  [consts] is
    {!Ternary.t.values}. *)

val net : t -> int -> bool
(** Is the net driven by this node observable? *)

val branch : t -> int -> int -> bool
(** [branch t node pin]: is the fanout branch feeding input [pin] of
    [node] observable? *)

val pin_allowed : Netlist.t -> Logic4.t array -> int -> int -> bool
(** [pin_allowed nl consts node pin]: can a change on that input pin
    propagate through the cell, given the constants on its side inputs?
    Exposed for the single-cell figures of the paper (Figs. 2, 4, 5). *)

val pin_allowed_exempt :
  exempt:(int -> bool) ->
  Netlist.t ->
  Logic4.t array ->
  int ->
  int ->
  bool
(** Like {!pin_allowed}, but a side input whose driving net satisfies
    [exempt] never blocks.  Used for sound {e stem}-fault analysis: a side
    input inside the fault's own fanout cone may change together with the
    faulty net, so its fault-free constant cannot be trusted (the
    reconvergence trap, e.g. [OR(x, x)] with [x] constant). *)

val pin_allowed_gen :
  exempt:(int -> bool) ->
  value:(int -> Logic4.t) ->
  Netlist.t ->
  int ->
  int ->
  bool
(** Generalization of {!pin_allowed_exempt} over an arbitrary value
    function.  Every rule only uses frame-local facts ("this value in the
    frame under analysis"), so [value] may be stronger than an all-frames
    constant vector — the implication engine passes the closure of the
    fault's necessary assignments to block propagation conditionally. *)

val num_unobservable : t -> int
