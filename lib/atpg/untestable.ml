open Olfu_logic
open Olfu_netlist
open Olfu_fault
module Pool = Olfu_pool.Pool

(* Per-domain walk state: scratch for cone lookups, generation-stamped
   [affected] marks, and a verdict memo.  Never shared between domains. *)
type walker = {
  an : Analysis.t;
  scratch : Analysis.Scratch.t;
  aff : int array;
  mutable agen : int;
  cache : (int, bool) Hashtbl.t;
}

type t = {
  netlist : Netlist.t;
  consts : Ternary.t;
  obs : Observe.t;
  observable_output : int -> bool;
  stem_cache : (int, bool) Hashtbl.t;
  walker : walker;
}

let make_walker ?cache nl =
  let an = Analysis.get nl in
  {
    an;
    scratch = Analysis.Scratch.create an;
    aff = Array.make (Netlist.length nl) 0;
    agen = 0;
    cache = (match cache with Some c -> c | None -> Hashtbl.create 997);
  }

let analyze ?ff_mode ?(observable_output = fun _ -> true) ?consts nl =
  let consts =
    match consts with Some c -> c | None -> Ternary.run ?ff_mode nl
  in
  let obs = Observe.run ~observable_output nl ~consts:consts.Ternary.values in
  let stem_cache = Hashtbl.create 997 in
  {
    netlist = nl;
    consts;
    obs;
    observable_output;
    stem_cache;
    walker = make_walker ~cache:stem_cache nl;
  }

(* Forward propagation of a hypothetical change on stem [d]: a node is
   [affected] when the difference can reach its output; side inputs that
   are themselves affected are fault-correlated, so their fault-free
   constants must not be used to block (Observe.pin_allowed_exempt).
   Only the fanout cone of [d] is walked — nodes outside it can never
   acquire an affected fanin, so the result is the same as a full
   topological sweep. *)
let stem_observable_w t w d =
  match Hashtbl.find_opt w.cache d with
  | Some b -> b
  | None ->
    let nl = t.netlist in
    let consts = t.consts.Ternary.values in
    w.agen <- w.agen + 1;
    let g = w.agen in
    let aff = w.aff in
    aff.(d) <- g;
    let exempt i = aff.(i) = g in
    let c = Analysis.cone w.an w.scratch d in
    let hit = ref false in
    (* combinational spread in evaluation order *)
    Array.iter
      (fun i ->
        if not !hit then begin
          let fanin = Netlist.fanin nl i in
          let prop = ref false in
          Array.iteri
            (fun p drv ->
              if (not !prop) && aff.(drv) = g
                 && Observe.pin_allowed_exempt ~exempt nl consts i p
              then prop := true)
            fanin;
          if !prop then
            if Cell.equal_kind (Netlist.kind nl i) Cell.Output then begin
              if t.observable_output i then hit := true
            end
            else aff.(i) <- g
        end)
      c.Analysis.sched;
    (* flip-flop capture credit: an affected value latched into state
       counts as observed (matching Observe's through-FF credit) *)
    if not !hit then
      Array.iter
        (fun i ->
          if not !hit then
            Array.iteri
              (fun p drv ->
                if aff.(drv) = g
                   && Observe.pin_allowed_exempt ~exempt nl consts i p
                then hit := true)
              (Netlist.fanin nl i))
        c.Analysis.seqs;
    Hashtbl.replace w.cache d !hit;
    !hit

let stem_possibly_observable t d = stem_observable_w t t.walker d

let stuck_value (f : Fault.t) = if f.Fault.stuck then Logic4.L1 else Logic4.L0

(* Value a flip-flop would capture in mission steady state, as a ternary
   constant; X when input-dependent. *)
let captured_const t node =
  let nl = t.netlist in
  let c i = t.consts.Ternary.values.((Netlist.fanin nl node).(i)) in
  match Netlist.kind nl node with
  | Cell.Dff -> c 0
  | Cell.Dffr -> (
    match c 1 with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> c 0
    | Logic4.X | Logic4.Z ->
      if Logic4.equal (c 0) Logic4.L0 then Logic4.L0 else Logic4.X)
  | Cell.Sdff -> Logic4.mux ~sel:(c 2) ~a:(c 0) ~b:(c 1)
  | Cell.Sdffr -> (
    let captured = Logic4.mux ~sel:(c 2) ~a:(c 0) ~b:(c 1) in
    match c 3 with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> captured
    | Logic4.X | Logic4.Z ->
      if Logic4.equal captured Logic4.L0 then Logic4.L0 else Logic4.X)
  | _ -> invalid_arg "Untestable.captured_const: not sequential"

let clk_verdict t w node =
  (* A stuck clock freezes the register at its current value.  If the
     register is provably constant and keeps capturing that same constant,
     freezing it is invisible: both clock faults are untestable (Fig. 5). *)
  let q = t.consts.Ternary.values.(node) in
  if
    (not (Observe.net t.obs node))
    && not (stem_observable_w t w node)
  then Some (Status.Undetectable Status.Blocked)
  else if Logic4.is_binary q && Logic4.equal (captured_const t node) q then
    Some (Status.Undetectable Status.Tied)
  else None

let verdict_w t w (f : Fault.t) =
  let nl = t.netlist in
  let { Fault.node; pin } = f.Fault.site in
  match pin with
  | Cell.Pin.Clk -> clk_verdict t w node
  | Cell.Pin.Out ->
    let c = t.consts.Ternary.values.(node) in
    if Logic4.is_binary c && Logic4.equal c (stuck_value f) then
      Some (Status.Undetectable Status.Tied)
    else if
      (not (Observe.net t.obs node))
      && not (stem_observable_w t w node)
    then Some (Status.Undetectable Status.Blocked)
    else None
  | Cell.Pin.In p ->
    let drv = (Netlist.fanin nl node).(p) in
    let c = t.consts.Ternary.values.(drv) in
    if Logic4.is_binary c && Logic4.equal c (stuck_value f) then
      Some (Status.Undetectable Status.Tied)
    else if Observe.branch t.obs node p then None
      (* the global analysis is a sound filter only in this direction;
         confirm a blocked verdict precisely: the fault enters through this
         single pin (side constants of the immediate gate are fault-free,
         so plain blocking applies), and from the sink's output onward it
         is a stem change *)
    else begin
      let through_gate =
        Observe.pin_allowed nl t.consts.Ternary.values node p
      in
      let downstream =
        match Netlist.kind nl node with
        | Cell.Output -> t.observable_output node
        | k when Cell.is_seq k -> true (* capture credit *)
        | _ -> stem_observable_w t w node
      in
      if through_gate && downstream then None
      else Some (Status.Undetectable Status.Blocked)
    end

let fault_verdict t f = verdict_w t t.walker f

let classify ?jobs t fl =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let nf = Flist.size fl in
  let changed = ref 0 in
  Pool.with_pool ~jobs (fun pool ->
      let nw = Pool.jobs pool in
      (* verdicts are pure in (t, fault); per-worker walkers only memoize,
         and each fault index is written by exactly one worker, so the
         outcome is independent of jobs.  Worker 0 reuses [t]'s walker to
         keep the sequential path warming [t.stem_cache] as before. *)
      let walkers =
        Array.init nw (fun k ->
            if k = 0 then t.walker else make_walker t.netlist)
      in
      let wchanged = Array.make nw 0 in
      Pool.parallel_chunks pool ~n:nf ~chunk:512
        (fun ~worker ~lo ~hi ->
          let w = walkers.(worker) in
          for i = lo to hi - 1 do
            match Flist.status fl i with
            | Status.Not_analyzed | Status.Not_detected -> (
              match verdict_w t w (Flist.fault fl i) with
              | Some v ->
                Flist.set_status fl i v;
                wchanged.(worker) <- wchanged.(worker) + 1
              | None -> ())
            | _ -> ()
          done);
      changed := Array.fold_left ( + ) 0 wchanged);
  !changed

let untestable_count t nl =
  Array.fold_left
    (fun acc f -> if fault_verdict t f <> None then acc + 1 else acc)
    0 (Fault.universe nl)
