open Olfu_logic
open Olfu_netlist
open Olfu_fault

type t = {
  netlist : Netlist.t;
  consts : Ternary.t;
  obs : Observe.t;
  observable_output : int -> bool;
  stem_cache : (int, bool) Hashtbl.t;
}

let analyze ?ff_mode ?(observable_output = fun _ -> true) nl =
  let consts = Ternary.run ?ff_mode nl in
  let obs = Observe.run ~observable_output nl ~consts:consts.Ternary.values in
  {
    netlist = nl;
    consts;
    obs;
    observable_output;
    stem_cache = Hashtbl.create 997;
  }

(* Forward propagation of a hypothetical change on stem [d]: a node is
   [affected] when the difference can reach its output; side inputs that
   are themselves affected are fault-correlated, so their fault-free
   constants must not be used to block (Observe.pin_allowed_exempt). *)
let stem_possibly_observable t d =
  match Hashtbl.find_opt t.stem_cache d with
  | Some b -> b
  | None ->
    let nl = t.netlist in
    let consts = t.consts.Ternary.values in
    let n = Netlist.length nl in
    let affected = Array.make n false in
    affected.(d) <- true;
    let exempt i = affected.(i) in
    let hit = ref false in
    (* combinational spread in evaluation order *)
    Array.iter
      (fun i ->
        if not !hit then begin
          let fanin = Netlist.fanin nl i in
          let prop = ref false in
          Array.iteri
            (fun p drv ->
              if (not !prop) && affected.(drv)
                 && Observe.pin_allowed_exempt ~exempt nl consts i p
              then prop := true)
            fanin;
          if !prop then
            if Cell.equal_kind (Netlist.kind nl i) Cell.Output then begin
              if t.observable_output i then hit := true
            end
            else affected.(i) <- true
        end)
      (Netlist.topo nl);
    (* flip-flop capture credit: an affected value latched into state
       counts as observed (matching Observe's through-FF credit) *)
    if not !hit then
      Array.iter
        (fun i ->
          if not !hit then
            Array.iteri
              (fun p drv ->
                if affected.(drv)
                   && Observe.pin_allowed_exempt ~exempt nl consts i p
                then hit := true)
              (Netlist.fanin nl i))
        (Netlist.seq_nodes nl);
    Hashtbl.replace t.stem_cache d !hit;
    !hit

let stuck_value (f : Fault.t) = if f.Fault.stuck then Logic4.L1 else Logic4.L0

(* Value a flip-flop would capture in mission steady state, as a ternary
   constant; X when input-dependent. *)
let captured_const t node =
  let nl = t.netlist in
  let c i = t.consts.Ternary.values.((Netlist.fanin nl node).(i)) in
  match Netlist.kind nl node with
  | Cell.Dff -> c 0
  | Cell.Dffr -> (
    match c 1 with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> c 0
    | Logic4.X | Logic4.Z ->
      if Logic4.equal (c 0) Logic4.L0 then Logic4.L0 else Logic4.X)
  | Cell.Sdff -> Logic4.mux ~sel:(c 2) ~a:(c 0) ~b:(c 1)
  | Cell.Sdffr -> (
    let captured = Logic4.mux ~sel:(c 2) ~a:(c 0) ~b:(c 1) in
    match c 3 with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> captured
    | Logic4.X | Logic4.Z ->
      if Logic4.equal captured Logic4.L0 then Logic4.L0 else Logic4.X)
  | _ -> invalid_arg "Untestable.captured_const: not sequential"

let clk_verdict t node =
  (* A stuck clock freezes the register at its current value.  If the
     register is provably constant and keeps capturing that same constant,
     freezing it is invisible: both clock faults are untestable (Fig. 5). *)
  let q = t.consts.Ternary.values.(node) in
  if
    (not (Observe.net t.obs node))
    && not (stem_possibly_observable t node)
  then Some (Status.Undetectable Status.Blocked)
  else if Logic4.is_binary q && Logic4.equal (captured_const t node) q then
    Some (Status.Undetectable Status.Tied)
  else None

let fault_verdict t (f : Fault.t) =
  let nl = t.netlist in
  let { Fault.node; pin } = f.Fault.site in
  match pin with
  | Cell.Pin.Clk -> clk_verdict t node
  | Cell.Pin.Out ->
    let c = t.consts.Ternary.values.(node) in
    if Logic4.is_binary c && Logic4.equal c (stuck_value f) then
      Some (Status.Undetectable Status.Tied)
    else if
      (not (Observe.net t.obs node))
      && not (stem_possibly_observable t node)
    then Some (Status.Undetectable Status.Blocked)
    else None
  | Cell.Pin.In p ->
    let drv = (Netlist.fanin nl node).(p) in
    let c = t.consts.Ternary.values.(drv) in
    if Logic4.is_binary c && Logic4.equal c (stuck_value f) then
      Some (Status.Undetectable Status.Tied)
    else if Observe.branch t.obs node p then None
      (* the global analysis is a sound filter only in this direction;
         confirm a blocked verdict precisely: the fault enters through this
         single pin (side constants of the immediate gate are fault-free,
         so plain blocking applies), and from the sink's output onward it
         is a stem change *)
    else begin
      let through_gate =
        Observe.pin_allowed nl t.consts.Ternary.values node p
      in
      let downstream =
        match Netlist.kind nl node with
        | Cell.Output -> t.observable_output node
        | k when Cell.is_seq k -> true (* capture credit *)
        | _ -> stem_possibly_observable t node
      in
      if through_gate && downstream then None
      else Some (Status.Undetectable Status.Blocked)
    end

let classify t fl =
  let changed = ref 0 in
  Flist.iteri
    (fun i f st ->
      match st with
      | Status.Not_analyzed | Status.Not_detected -> (
        match fault_verdict t f with
        | Some v ->
          Flist.set_status fl i v;
          incr changed
        | None -> ())
      | _ -> ())
    fl;
  !changed

let untestable_count t nl =
  Array.fold_left
    (fun acc f -> if fault_verdict t f <> None then acc + 1 else acc)
    0 (Fault.universe nl)
