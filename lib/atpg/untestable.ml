open Olfu_logic
open Olfu_netlist
open Olfu_fault
module Pool = Olfu_pool.Pool
module Trace = Olfu_obs.Trace

(* Per-domain walk state: scratch for cone lookups, generation-stamped
   [affected] marks, and a verdict memo.  Never shared between domains. *)
type walker = {
  an : Analysis.t;
  scratch : Analysis.Scratch.t;
  aff : int array;
  mutable agen : int;
  cache : (int, bool) Hashtbl.t;
  iscr : Implic.Scratch.t option;
      (* holds the current per-stem dominator closure *)
  iscr2 : Implic.Scratch.t option;
      (* separate scratch for [Implic.impossible] probes, so they never
         clobber the stem closure kept in [iscr] *)
  dom_lits : (int, int list) Hashtbl.t;
  (* per-stem closure cache over [iscr]: fault lists are ordered (or
     cost-sorted into runs) by site, so consecutive faults share a stem;
     assuming the dominator literals once per stem and rolling back the
     per-fault extension replaces a full re-assume per fault *)
  mutable closure_stem : int;
  mutable closure_ok : bool;
  mutable closure_ck : Implic.checkpoint option;
}

type t = {
  netlist : Netlist.t;
  consts : Ternary.t;
  obs : Observe.t;
  observable_output : int -> bool;
  stem_cache : (int, bool) Hashtbl.t;
  implic : Implic.t option;
  walker : walker;
}

let make_walker_for ?cache nl implic =
  let an = Analysis.get nl in
  {
    an;
    scratch = Analysis.Scratch.create an;
    aff = Array.make (Netlist.length nl) 0;
    agen = 0;
    cache = (match cache with Some c -> c | None -> Hashtbl.create 997);
    iscr = Option.map Implic.Scratch.create implic;
    iscr2 = Option.map Implic.Scratch.create implic;
    dom_lits = Hashtbl.create 997;
    closure_stem = -1;
    closure_ok = false;
    closure_ck = None;
  }

let analyze ?ff_mode ?(observable_output = fun _ -> true) ?consts
    ?(implic = true) ?learn_depth ?learn_budget ?extra_edges
    ?(trace = Trace.null) nl =
  let _ = Trace.span trace ~cat:"engine" "graph" (fun () -> Analysis.get nl) in
  let consts =
    match consts with
    | Some c -> c
    | None ->
      Trace.span trace ~cat:"engine" "ternary" (fun () ->
          Ternary.run ?ff_mode nl)
  in
  let obs =
    Trace.span trace ~cat:"engine" "observe" (fun () ->
        Observe.run ~observable_output nl ~consts:consts.Ternary.values)
  in
  let stem_cache = Hashtbl.create 997 in
  let implic =
    if implic then
      Some
        (Trace.span trace ~cat:"engine" "implic" (fun () ->
             Implic.build ?learn_depth ?learn_budget ?extra_edges
               ~consts:consts.Ternary.values nl))
    else None
  in
  {
    netlist = nl;
    consts;
    obs;
    observable_output;
    stem_cache;
    implic;
    walker = make_walker_for ~cache:stem_cache nl implic;
  }

let make_walker t = make_walker_for t.netlist t.implic
let implication_db t = t.implic

(* Forward propagation of a hypothetical change on stem [d]: a node is
   [affected] when the difference can reach its output; side inputs that
   are themselves affected are fault-correlated, so their fault-free
   constants must not be used to block (Observe.pin_allowed_exempt).
   Only the fanout cone of [d] is walked — nodes outside it can never
   acquire an affected fanin, so the result is the same as a full
   topological sweep. *)
let walk_observable t w ~value d =
  let nl = t.netlist in
  w.agen <- w.agen + 1;
  let g = w.agen in
  let aff = w.aff in
  aff.(d) <- g;
  let exempt i = aff.(i) = g in
  let c = Analysis.cone w.an w.scratch d in
  let hit = ref false in
  (* combinational spread in evaluation order *)
  Array.iter
    (fun i ->
      if not !hit then begin
        let fanin = Netlist.fanin nl i in
        let prop = ref false in
        Array.iteri
          (fun p drv ->
            if (not !prop) && aff.(drv) = g
               && Observe.pin_allowed_gen ~exempt ~value nl i p
            then prop := true)
          fanin;
        if !prop then
          if Cell.equal_kind (Netlist.kind nl i) Cell.Output then begin
            if t.observable_output i then hit := true
          end
          else aff.(i) <- g
      end)
    c.Analysis.sched;
  (* flip-flop capture credit: an affected value latched into state
     counts as observed (matching Observe's through-FF credit) *)
  if not !hit then
    Array.iter
      (fun i ->
        if not !hit then
          Array.iteri
            (fun p drv ->
              if aff.(drv) = g
                 && Observe.pin_allowed_gen ~exempt ~value nl i p
              then hit := true)
            (Netlist.fanin nl i))
      c.Analysis.seqs;
  !hit

let stem_observable_w t w d =
  match Hashtbl.find_opt w.cache d with
  | Some b -> b
  | None ->
    let consts = t.consts.Ternary.values in
    let hit = walk_observable t w ~value:(fun i -> consts.(i)) d in
    Hashtbl.replace w.cache d hit;
    hit

let stem_possibly_observable t d = stem_observable_w t t.walker d

let stuck_value (f : Fault.t) = if f.Fault.stuck then Logic4.L1 else Logic4.L0

(* Value a flip-flop would capture in mission steady state, as a ternary
   constant; X when input-dependent. *)
let captured_const t node =
  let nl = t.netlist in
  let c i = t.consts.Ternary.values.((Netlist.fanin nl node).(i)) in
  match Netlist.kind nl node with
  | Cell.Dff -> c 0
  | Cell.Dffr -> (
    match c 1 with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> c 0
    | Logic4.X | Logic4.Z ->
      if Logic4.equal (c 0) Logic4.L0 then Logic4.L0 else Logic4.X)
  | Cell.Sdff -> Logic4.mux ~sel:(c 2) ~a:(c 0) ~b:(c 1)
  | Cell.Sdffr -> (
    let captured = Logic4.mux ~sel:(c 2) ~a:(c 0) ~b:(c 1) in
    match c 3 with
    | Logic4.L0 -> Logic4.L0
    | Logic4.L1 -> captured
    | Logic4.X | Logic4.Z ->
      if Logic4.equal captured Logic4.L0 then Logic4.L0 else Logic4.X)
  | _ -> invalid_arg "Untestable.captured_const: not sequential"

let clk_verdict t w node =
  (* A stuck clock freezes the register at its current value.  If the
     register is provably constant and keeps capturing that same constant,
     freezing it is invisible: both clock faults are untestable (Fig. 5). *)
  let q = t.consts.Ternary.values.(node) in
  if
    (not (Observe.net t.obs node))
    && not (stem_observable_w t w node)
  then Some (Status.Undetectable Status.Blocked)
  else if Logic4.is_binary q && Logic4.equal (captured_const t node) q then
    Some (Status.Undetectable Status.Tied)
  else None

(* -------------------------------------------------------------------- *)
(* FIRE-style conflict untestability: compute the assignments every test
   of the fault requires (excitation value, non-controlling side inputs
   of the immediate gate, side inputs of the stem's dominators), close
   them over the static implication database, and classify the fault
   untestable when the closure contradicts itself.  Sound: every literal
   fed to the closure provably holds in the good circuit of any
   detecting frame.                                                     *)
(* -------------------------------------------------------------------- *)

(* Necessary side-input literals for a difference to pass through input
   [p] of [node]: single-literal requirements only (XOR-likes and the
   select pin of a mux have none). *)
let immediate_necessary nl node p acc =
  let fanin = Netlist.fanin nl node in
  let side q v acc' =
    if q <> p then Implic.lit fanin.(q) v :: acc' else acc'
  in
  let all_sides v acc' =
    let r = ref acc' in
    Array.iteri (fun q _ -> r := side q v !r) fanin;
    !r
  in
  match Netlist.kind nl node with
  | Cell.And | Cell.Nand -> all_sides true acc
  | Cell.Or | Cell.Nor -> all_sides false acc
  | Cell.Mux2 ->
    if p = 1 then Implic.lit fanin.(0) false :: acc
    else if p = 2 then Implic.lit fanin.(0) true :: acc
    else acc
  | Cell.Dffr -> if p = 0 then side 1 true acc else acc
  | Cell.Sdff ->
    if p = 0 then side 2 false acc
    else if p = 1 then side 2 true acc
    else acc
  | Cell.Sdffr ->
    if p = 0 then side 3 true (side 2 false acc)
    else if p = 1 then side 3 true (side 2 true acc)
    else if p = 2 then side 3 true acc
    else acc
  | _ -> acc

(* Side inputs of the stem's dominators that provably lie outside the
   stem's own fanout cone: any test must hold them non-controlling (the
   difference has to pass through every dominator, and a fault-free side
   input at a controlling value kills it).  Cone membership is decided by
   topological position alone — [topo_pos f < topo_pos stem] puts [f]
   strictly before anything the stem can reach — so the collection never
   touches the cone schedule; side inputs the cheap test cannot clear are
   conservatively skipped. *)
let dominator_lits t w stem =
  let doms = Analysis.stem_dominators w.an w.scratch stem in
  if Array.length doms = 0 then []
  else begin
    let nl = t.netlist in
    let pos = Analysis.topo_pos w.an in
    (* sources (position -1) never appear inside a cone schedule, and a
       node scheduled before the stem cannot be downstream of it *)
    let outside f =
      f <> stem && (pos.(f) = -1 || pos.(f) < pos.(stem))
    in
    let acc = ref [] in
    Array.iter
      (fun gn ->
        let fanin = Netlist.fanin nl gn in
        match Netlist.kind nl gn with
        | Cell.And | Cell.Nand ->
          Array.iter
            (fun d ->
              if outside d then acc := Implic.lit d true :: !acc)
            fanin
        | Cell.Or | Cell.Nor ->
          Array.iter
            (fun d ->
              if outside d then acc := Implic.lit d false :: !acc)
            fanin
        | Cell.Mux2 ->
          (* the difference reaches this dominator through some fanin; if
             the select and one data pin are provably fault-free, it must
             enter through the other data pin, so the select is forced *)
          let s_ = fanin.(0) and a = fanin.(1) and b = fanin.(2) in
          if outside s_ then
            if outside b && not (outside a) then
              acc := Implic.lit s_ false :: !acc
            else if outside a && not (outside b) then
              acc := Implic.lit s_ true :: !acc
        | _ -> ())
      doms;
    !acc
  end

(* per-walker memo: the dominator literals are a pure per-stem fact *)
let dominator_necessary t w stem acc =
  let lits =
    match Hashtbl.find_opt w.dom_lits stem with
    | Some l -> l
    | None ->
      let l = dominator_lits t w stem in
      Hashtbl.add w.dom_lits stem l;
      l
  in
  List.rev_append lits acc

(* Conflicts are local: a small closure finds almost all of them, and a
   budget-capped closure stays sound (it can only miss conflicts). *)
let conflict_closure_budget = 128

let conflict_verdict t w (f : Fault.t) =
  match (t.implic, w.iscr, w.iscr2) with
  | Some db, Some iscr, Some iscr2 -> (
    let nl = t.netlist in
    let { Fault.node; pin } = f.Fault.site in
    match pin with
    | Cell.Pin.Clk -> None
    | Cell.Pin.Out | Cell.Pin.In _ ->
      let exc_v = not f.Fault.stuck in
      let exc_net =
        match pin with
        | Cell.Pin.In p -> (Netlist.fanin nl node).(p)
        | _ -> node
      in
      if Implic.impossible db iscr2 exc_net exc_v then
        Some (Status.Undetectable Status.Conflict)
      else begin
        (* The dominator side-input literals are a pure per-stem fact:
           close them once per stem in [iscr], checkpoint the drained
           closure, and per fault extend + roll back — instead of
           re-assuming the whole set for every fault at the stem.
           The verdict stays pure in (t, fault): the closure is rebuilt
           deterministically whenever the stem changes. *)
        if w.closure_stem <> node then begin
          w.closure_stem <- node;
          w.closure_ck <- None;
          (* most stems have no dominator literals at all (the tcore
             configurations measure ~70%) — for those a per-fault plain
             [assume] beats paying checkpoint/rollback bookkeeping, so a
             stem closure is only built and shared when it is non-empty *)
          let dl = dominator_necessary t w node [] in
          w.closure_ok <-
            dl = []
            || Implic.assume ~budget:conflict_closure_budget db iscr dl;
          if w.closure_ok && dl <> [] then begin
            (* replenish before the snapshot: rollback restores the
               checkpointed budget, so every fault's extension runs on a
               full budget regardless of what the stem closure spent —
               at least as strong as closing seeds + dominators per
               fault under one shared budget *)
            Implic.set_budget iscr conflict_closure_budget;
            w.closure_ck <- Some (Implic.checkpoint iscr)
          end
        end;
        if not w.closure_ok then
          (* assignments necessary for any fault at this stem already
             contradict *)
          Some (Status.Undetectable Status.Conflict)
        else begin
          (* per-fault literals every detecting frame requires *)
          let seeds = ref [ Implic.lit exc_net exc_v ] in
          (match pin with
          | Cell.Pin.In p -> (
            seeds := immediate_necessary nl node p !seeds;
            (* forced good output of the immediate gate, when it is a
               single literal given excitation + necessary sides *)
            match Netlist.kind nl node with
            | Cell.And | Cell.Or -> seeds := Implic.lit node exc_v :: !seeds
            | Cell.Nand | Cell.Nor ->
              seeds := Implic.lit node (not exc_v) :: !seeds
            | Cell.Mux2 when p = 1 || p = 2 ->
              seeds := Implic.lit node exc_v :: !seeds
            | _ -> ())
          | _ -> ());
          let ok =
            match w.closure_ck with
            | None ->
              Implic.assume ~budget:conflict_closure_budget db iscr !seeds
            | Some ck ->
              (* extend on the budget the stem closure left over
                 (rollback restores it), so each fault at the stem sees
                 the same deterministic state *)
              let ok = Implic.extend db iscr !seeds in
              Implic.rollback iscr ck;
              ok
          in
          if not ok then Some (Status.Undetectable Status.Conflict) else None
        end
      end)
  | _ -> None

let structural_verdict_w t w (f : Fault.t) =
  let nl = t.netlist in
  let { Fault.node; pin } = f.Fault.site in
  match pin with
  | Cell.Pin.Clk -> clk_verdict t w node
  | Cell.Pin.Out ->
    let c = t.consts.Ternary.values.(node) in
    if Logic4.is_binary c && Logic4.equal c (stuck_value f) then
      Some (Status.Undetectable Status.Tied)
    else if
      (not (Observe.net t.obs node))
      && not (stem_observable_w t w node)
    then Some (Status.Undetectable Status.Blocked)
    else None
  | Cell.Pin.In p ->
    let drv = (Netlist.fanin nl node).(p) in
    let c = t.consts.Ternary.values.(drv) in
    if Logic4.is_binary c && Logic4.equal c (stuck_value f) then
      Some (Status.Undetectable Status.Tied)
    else if Observe.branch t.obs node p then None
      (* the global analysis is a sound filter only in this direction;
         confirm a blocked verdict precisely: the fault enters through this
         single pin (side constants of the immediate gate are fault-free,
         so plain blocking applies), and from the sink's output onward it
         is a stem change *)
    else begin
      let through_gate =
        Observe.pin_allowed nl t.consts.Ternary.values node p
      in
      let downstream =
        match Netlist.kind nl node with
        | Cell.Output -> t.observable_output node
        | k when Cell.is_seq k -> true (* capture credit *)
        | _ -> stem_observable_w t w node
      in
      if through_gate && downstream then None
      else Some (Status.Undetectable Status.Blocked)
    end

let verdict_w t w f =
  match structural_verdict_w t w f with
  | Some v -> Some v
  | None -> conflict_verdict t w f

let fault_verdict t f = verdict_w t t.walker f
let verdict_with t w f = verdict_w t w f

let classify ?jobs ?(trace = Trace.null) t fl =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let nf = Flist.size fl in
  let changed = ref 0 in
  Trace.span trace ~cat:"engine" "classify" (fun () ->
      Pool.with_pool ~jobs (fun pool ->
          let nw = Pool.jobs pool in
          (* verdicts are pure in (t, fault); per-worker walkers only
             memoize, and each fault index is written by exactly one
             worker, so the outcome is independent of jobs.  Worker 0
             reuses [t]'s walker to keep the sequential path warming
             [t.stem_cache] as before. *)
          let walkers =
            Array.init nw (fun k -> if k = 0 then t.walker else make_walker t)
          in
          (* stride-padded per-worker tallies (no false sharing) *)
          let stride = 8 in
          let wchanged = Array.make (nw * stride) 0 in
          (* heavy cones first, same-site runs kept contiguous, so the
             per-stem closure and one-entry cone caches keep hitting *)
          let order =
            Analysis.order_by_cost t.walker.an
              ~site:(fun k -> (Flist.fault fl k).Fault.site.Fault.node)
              nf
          in
          Pool.parallel_chunks pool ~n:nf ~chunk:512 ~trace ~label:"classify"
            (fun ~worker ~lo ~hi ->
              let w = walkers.(worker) in
              let nexam = ref 0 in
              for k = lo to hi - 1 do
                let i = order.(k) in
                match Flist.status fl i with
                | Status.Not_analyzed | Status.Not_detected -> (
                  incr nexam;
                  match verdict_w t w (Flist.fault fl i) with
                  | Some v ->
                    Flist.set_status fl i v;
                    wchanged.(worker * stride) <- wchanged.(worker * stride) + 1
                  | None -> ())
                | _ -> ()
              done;
              if Trace.enabled trace then
                Trace.add trace ~worker "classify.examined" !nexam);
          changed := Array.fold_left ( + ) 0 wchanged));
  Trace.add trace "classify.faults" nf;
  Trace.add trace "classify.classified" !changed;
  !changed

let untestable_breakdown ?software ?invariant t nl =
  let tied = ref 0 and blocked = ref 0 and conflict = ref 0 in
  let sw = ref 0 and inv = ref 0 in
  Array.iter
    (fun f ->
      match fault_verdict t f with
      | Some (Status.Undetectable Status.Tied) -> incr tied
      | Some (Status.Undetectable Status.Blocked) -> incr blocked
      | Some (Status.Undetectable Status.Conflict) -> incr conflict
      | Some _ | None -> (
        (* unproved here: software-assumed analysis may still prove it,
           and that delta is exactly the software-safe class; the
           invariant-strengthened analysis gets whatever both miss *)
        match software with
        | Some tsw when fault_verdict tsw f <> None -> incr sw
        | _ -> (
          match invariant with
          | None -> ()
          | Some tin -> if fault_verdict tin f <> None then incr inv)))
    (Fault.universe nl);
  [
    (Status.Tied, !tied);
    (Status.Blocked, !blocked);
    (Status.Conflict, !conflict);
    (Status.Software, !sw);
    (Status.Invariant, !inv);
  ]

let untestable_count t nl =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (untestable_breakdown t nl)
