open Olfu_netlist
open Olfu_fault

(** SAT-based test generation and untestability proof.

    Builds the classic miter: a CNF of the good circuit, a faulty copy of
    the fault's output cone, and a disjunction of difference bits over the
    observation points (primary outputs and flip-flop captures, the same
    full-access view as {!Podem}).  Satisfiable ⟺ a test exists, so an
    UNSAT answer is a complete untestability proof — this is how modern
    commercial engines settle the faults branch-and-bound ATPG gives up
    on. *)

type result =
  | Test of Podem.assignment
  | Untestable
  | Unknown  (** conflict budget exhausted *)

val run :
  ?observable_output:(int -> bool) ->
  ?observe_captures:bool ->
  ?conflict_limit:int ->
  Netlist.t ->
  Fault.t ->
  result
(** Clock-pin faults are outside the combinational model
    ([Invalid_argument]).  [conflict_limit] defaults to 200,000. *)
