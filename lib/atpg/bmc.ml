open Olfu_logic
open Olfu_netlist
open Olfu_fault
module S = Olfu_sat.Solver
module CB = Cnf.Builder

type stimulus = (int * bool) list array
type result = Test of stimulus | No_test_within of int | Unknown

(* One copy of the combinational logic for one cycle: [source] supplies
   the literal of every source node (inputs and flop outputs);
   [inject] optionally rewrites (node, pin, operand) literals and the
   stem literal — the fault hook. *)
let eval_cycle b nl ~source ~inject_stem ~inject_operand =
  let n = Netlist.length nl in
  let lits = Array.make n 0 in
  let lit_of i =
    match Netlist.kind nl i with
    | Cell.Output -> lits.((Netlist.fanin nl i).(0))
    | _ -> lits.(i)
  in
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Output -> ()
      | Cell.Input -> lits.(i) <- inject_stem i (source i)
      | k when Cell.is_seq k -> lits.(i) <- inject_stem i (source i)
      | Cell.Tie0 -> lits.(i) <- inject_stem i (-CB.vtrue b)
      | Cell.Tie1 -> lits.(i) <- inject_stem i (CB.vtrue b)
      | Cell.Tiex -> lits.(i) <- inject_stem i (source i)
      | _ -> ())
    nl;
  Array.iter
    (fun i ->
      match Netlist.kind nl i with
      | Cell.Output -> ()
      | k ->
        let ins =
          Array.to_list
            (Array.mapi
               (fun p d -> inject_operand i p (lit_of d))
               (Netlist.fanin nl i))
        in
        lits.(i) <- inject_stem i (CB.cell b k ins))
    (Netlist.topo nl);
  (lits, lit_of)

let next_state b nl lit_of ~inject_operand =
  Array.map
    (fun i ->
      let ins =
        Array.to_list
          (Array.mapi
             (fun p d -> inject_operand i p (lit_of d))
             (Netlist.fanin nl i))
      in
      (i, CB.capture b (Netlist.kind nl i) ins))
    (Netlist.seq_nodes nl)

let run ?(cycles = 8) ?(observable_output = fun _ -> true)
    ?(conflict_limit = 200_000) nl fault =
  (match fault.Fault.site.Fault.pin with
  | Cell.Pin.Clk -> invalid_arg "Bmc.run: clock-pin fault"
  | _ -> ());
  let s = S.create () in
  let b = CB.create s in
  let { Fault.node = fnode; pin = fpin } = fault.Fault.site in
  let stuck = CB.of_bool b fault.Fault.stuck in
  let inject_stem_f i l = if fpin = Cell.Pin.Out && i = fnode then stuck else l in
  let inject_operand_f i p l =
    if i = fnode && Cell.Pin.equal fpin (Cell.Pin.In p) then stuck else l
  in
  let id_stem _ l = l in
  let id_operand _ _ l = l in
  (* per-cycle input variables, shared by the two copies *)
  let input_vars =
    Array.init cycles (fun _ ->
        let tbl = Hashtbl.create 37 in
        Array.iter
          (fun i ->
            let v =
              if Netlist.has_role nl i Netlist.Reset then CB.vtrue b
                (* mission: reset held inactive *)
              else CB.fresh b
            in
            Hashtbl.replace tbl i v)
          (Netlist.inputs nl);
        tbl)
  in
  (* also per-cycle free vars for floating (Tiex) nets *)
  let tiex_vars =
    Array.init cycles (fun _ ->
        let tbl = Hashtbl.create 7 in
        Netlist.iter_nodes
          (fun i nd ->
            if nd.Netlist.kind = Cell.Tiex then
              Hashtbl.replace tbl i (CB.fresh b))
          nl;
        tbl)
  in
  (* initial state: resettable flops at 0, others solver-chosen but equal
     in the two copies *)
  let seqs = Netlist.seq_nodes nl in
  let init =
    Array.map
      (fun i ->
        match Netlist.kind nl i with
        | Cell.Dffr | Cell.Sdffr -> (i, -CB.vtrue b)
        | _ -> (i, CB.fresh b))
      seqs
  in
  let diffs = ref [] in
  let good_state = ref init in
  let faulty_state = ref init in
  for c = 0 to cycles - 1 do
    let source_of state i =
      match Netlist.kind nl i with
      | Cell.Input -> Hashtbl.find input_vars.(c) i
      | Cell.Tiex -> Hashtbl.find tiex_vars.(c) i
      | _ -> (
        match Array.find_opt (fun (j, _) -> j = i) state with
        | Some (_, l) -> l
        | None -> assert false)
    in
    let _glits, good_lit =
      eval_cycle b nl
        ~source:(source_of !good_state)
        ~inject_stem:id_stem ~inject_operand:id_operand
    in
    let _flits, faulty_lit =
      eval_cycle b nl
        ~source:(source_of !faulty_state)
        ~inject_stem:inject_stem_f ~inject_operand:inject_operand_f
    in
    (* observation at this cycle *)
    Array.iter
      (fun o ->
        if observable_output o then begin
          let d = (Netlist.fanin nl o).(0) in
          (* a branch fault directly into this port pin *)
          let fa =
            if o = fnode && Cell.Pin.equal fpin (Cell.Pin.In 0) then stuck
            else faulty_lit d
          in
          let x = CB.mk_xor2 b (good_lit d) fa in
          if not (CB.is_false b x) then diffs := x :: !diffs
        end)
      (Netlist.outputs nl);
    good_state :=
      next_state b nl good_lit ~inject_operand:id_operand;
    faulty_state :=
      next_state b nl faulty_lit ~inject_operand:inject_operand_f;
    (* stem fault on a flop output: force the next-state literal too *)
    if fpin = Cell.Pin.Out then
      faulty_state :=
        Array.map
          (fun (i, l) -> if i = fnode then (i, stuck) else (i, l))
          !faulty_state
  done;
  match !diffs with
  | [] -> No_test_within cycles
  | ds -> (
    S.add_clause s ds;
    match S.solve ~conflict_limit s with
    | S.Unsat -> No_test_within cycles
    | S.Unknown -> Unknown
    | S.Sat model ->
      let stim =
        Array.init cycles (fun c ->
            Hashtbl.fold
              (fun i v acc ->
                let value =
                  if CB.is_true b v then true
                  else if CB.is_false b v then false
                  else model (abs v) = (v > 0)
                in
                (i, value) :: acc)
              input_vars.(c) []
            |> List.sort compare)
      in
      Test stim)

let confirm_test ?(observable_output = fun _ -> true) nl fault stim =
  let open Olfu_sim in
  let run_one ~faulty =
    let sim = Seq_sim.create ~init:Logic4.L0 nl in
    let override =
      if not faulty then None
      else
        match fault.Fault.site.Fault.pin with
        | Cell.Pin.Out ->
          Some
            (fun i ->
              if i = fault.Fault.site.Fault.node then
                Some (if fault.Fault.stuck then Logic4.L1 else Logic4.L0)
              else None)
        | Cell.Pin.In _ | Cell.Pin.Clk -> None
    in
    let traces = ref [] in
    Array.iter
      (fun assigns ->
        List.iter
          (fun (i, v) -> Seq_sim.set_input sim i (Logic4.of_bool v))
          assigns;
        Seq_sim.settle ?override sim;
        let snapshot =
          Netlist.outputs nl |> Array.to_list
          |> List.filter observable_output
          |> List.map (fun o -> Seq_sim.value sim (Netlist.fanin nl o).(0))
        in
        traces := snapshot :: !traces;
        Seq_sim.step ?override sim)
      stim;
    List.rev !traces
  in
  match fault.Fault.site.Fault.pin with
  | Cell.Pin.In _ | Cell.Pin.Clk ->
    (* the simulator-level override only injects stems; branch faults are
       confirmed through the SAT encoding itself *)
    true
  | Cell.Pin.Out ->
    let good = run_one ~faulty:false in
    let bad = run_one ~faulty:true in
    List.exists2
      (fun g f ->
        List.exists2
          (fun a c ->
            Logic4.is_binary a && Logic4.is_binary c
            && not (Logic4.equal a c))
          g f)
      good bad
