open Olfu_logic
open Olfu_netlist
open Olfu_sim

type ff_mode = Cut | Reset_join | Steady_state

type t = {
  values : Logic4.t array;
  iterations : int;
  converged : bool;
}

(* Join with X absorbing: once a flip-flop has been seen holding both
   binary values over the mission, it is not constant. *)
let join a b = if Logic4.equal a b then a else Logic4.X

let run ?(ff_mode = Steady_state) ?(assume = []) ?(max_iters = 64) nl =
  let env = Comb_sim.init nl Logic4.X in
  let seqs = Netlist.seq_nodes nl in
  let resets = Netlist.nodes_with_role nl Netlist.Reset in
  (* Assumptions split by target: inputs are forced in [set_inputs];
     sequential nodes are forced in state space, pinning the slot in
     every iteration so the fixed point respects the assumption. *)
  let seq_slot = Hashtbl.create 17 in
  Array.iteri (fun k i -> Hashtbl.replace seq_slot i k) seqs;
  let assume_in, assume_seq =
    List.partition_map
      (fun (i, v) ->
        match Hashtbl.find_opt seq_slot i with
        | Some k -> Either.Right (k, v)
        | None -> Either.Left (i, v))
      assume
  in
  let forced = Array.make (Array.length seqs) None in
  List.iter (fun (k, v) -> forced.(k) <- Some v) assume_seq;
  let force_state state =
    Array.iteri (fun k f -> Option.iter (fun v -> state.(k) <- v) f) forced
  in
  let force_seq_env () =
    Array.iteri
      (fun k f -> Option.iter (fun v -> env.(seqs.(k)) <- v) f)
      forced
  in
  let set_inputs ~reset_active =
    Array.iter (fun i -> env.(i) <- Logic4.X) (Netlist.inputs nl);
    Array.iter
      (fun i ->
        if Cell.equal_kind (Netlist.kind nl i) Cell.Input then
          env.(i) <- (if reset_active then Logic4.L0 else Logic4.L1))
      resets;
    List.iter (fun (i, v) -> env.(i) <- v) assume_in
  in
  match ff_mode with
  | Cut ->
    set_inputs ~reset_active:false;
    Array.iter (fun i -> env.(i) <- Logic4.X) seqs;
    force_seq_env ();
    Comb_sim.settle nl env;
    { values = env; iterations = 1; converged = true }
  | Reset_join | Steady_state ->
    (* Post-reset state: one settle with reset asserted. *)
    set_inputs ~reset_active:true;
    Array.iter (fun i -> env.(i) <- Logic4.X) seqs;
    force_seq_env ();
    Comb_sim.settle nl env;
    let state = Array.map (fun (_, v) -> v) (Comb_sim.next_states nl env) in
    force_state state;
    set_inputs ~reset_active:false;
    let iterations = ref 0 in
    let converged = ref false in
    while (not !converged) && !iterations < max_iters do
      incr iterations;
      Array.iteri (fun k i -> env.(i) <- state.(k)) seqs;
      Comb_sim.settle nl env;
      let next = Comb_sim.next_states nl env in
      let changed = ref false in
      Array.iteri
        (fun k (_, v) ->
          (* an assumed slot never moves, so it can't block convergence *)
          if forced.(k) = None then begin
            let v' =
              match ff_mode with
              | Steady_state -> v
              | Reset_join | Cut -> join state.(k) v
            in
            if not (Logic4.equal v' state.(k)) then begin
              state.(k) <- v';
              changed := true
            end
          end)
        next;
      if not !changed then converged := true
    done;
    if not !converged then begin
      (* Non-convergent steady state (e.g. a free-running toggle): fall
         back to the sound all-X sequential cut. *)
      Array.iter (fun i -> env.(i) <- Logic4.X) seqs;
      force_seq_env ()
    end
    else Array.iteri (fun k i -> env.(i) <- state.(k)) seqs;
    Comb_sim.settle nl env;
    { values = env; iterations = !iterations; converged = !converged }

let const_of t i = t.values.(i)
let is_const t i = Logic4.is_binary t.values.(i)

let num_const t =
  Array.fold_left
    (fun acc v -> if Logic4.is_binary v then acc + 1 else acc)
    0 t.values
