open Olfu_logic
open Olfu_netlist
open Olfu_sim

type ff_mode = Cut | Reset_join | Steady_state

type t = {
  values : Logic4.t array;
  iterations : int;
  converged : bool;
}

(* Join with X absorbing: once a flip-flop has been seen holding both
   binary values over the mission, it is not constant. *)
let join a b = if Logic4.equal a b then a else Logic4.X

let run ?(ff_mode = Steady_state) ?(assume = []) ?(max_iters = 64) nl =
  let env = Comb_sim.init nl Logic4.X in
  let seqs = Netlist.seq_nodes nl in
  let resets = Netlist.nodes_with_role nl Netlist.Reset in
  let set_inputs ~reset_active =
    Array.iter (fun i -> env.(i) <- Logic4.X) (Netlist.inputs nl);
    Array.iter
      (fun i ->
        if Cell.equal_kind (Netlist.kind nl i) Cell.Input then
          env.(i) <- (if reset_active then Logic4.L0 else Logic4.L1))
      resets;
    List.iter (fun (i, v) -> env.(i) <- v) assume
  in
  match ff_mode with
  | Cut ->
    set_inputs ~reset_active:false;
    Array.iter (fun i -> env.(i) <- Logic4.X) seqs;
    Comb_sim.settle nl env;
    { values = env; iterations = 1; converged = true }
  | Reset_join | Steady_state ->
    (* Post-reset state: one settle with reset asserted. *)
    set_inputs ~reset_active:true;
    Array.iter (fun i -> env.(i) <- Logic4.X) seqs;
    Comb_sim.settle nl env;
    let state = Array.map (fun (_, v) -> v) (Comb_sim.next_states nl env) in
    set_inputs ~reset_active:false;
    let iterations = ref 0 in
    let converged = ref false in
    while (not !converged) && !iterations < max_iters do
      incr iterations;
      Array.iteri (fun k i -> env.(i) <- state.(k)) seqs;
      Comb_sim.settle nl env;
      let next = Comb_sim.next_states nl env in
      let changed = ref false in
      Array.iteri
        (fun k (_, v) ->
          let v' =
            match ff_mode with
            | Steady_state -> v
            | Reset_join | Cut -> join state.(k) v
          in
          if not (Logic4.equal v' state.(k)) then begin
            state.(k) <- v';
            changed := true
          end)
        next;
      if not !changed then converged := true
    done;
    if not !converged then
      (* Non-convergent steady state (e.g. a free-running toggle): fall
         back to the sound all-X sequential cut. *)
      Array.iter (fun i -> env.(i) <- Logic4.X) seqs
    else Array.iteri (fun k i -> env.(i) <- state.(k)) seqs;
    Comb_sim.settle nl env;
    { values = env; iterations = !iterations; converged = !converged }

let const_of t i = t.values.(i)
let is_const t i = Logic4.is_binary t.values.(i)

let num_const t =
  Array.fold_left
    (fun acc v -> if Logic4.is_binary v then acc + 1 else acc)
    0 t.values
