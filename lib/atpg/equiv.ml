open Olfu_netlist
module S = Olfu_sat.Solver
module CB = Cnf.Builder

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
  | Unknown
  | No_common_observables

(* Both sides are encoded into one hash-consed literal space
   ({!Cnf.Builder}): structurally identical cells over the same operand
   literals share one variable (plain CSE, sound) and constants fold
   through.  For the intended use — original vs manipulated copy of the
   same netlist — the untouched logic collapses entirely and the miter
   only contains the cones the manipulation actually changed. *)

let encode_netlist b shared nl =
  let n = Netlist.length nl in
  let lits = Array.make n 0 in
  let source_var i =
    match Netlist.name nl i with
    | Some name -> (
      match Hashtbl.find_opt shared name with
      | Some v -> v
      | None ->
        let v = CB.fresh b in
        Hashtbl.replace shared name v;
        v)
    | None -> CB.fresh b
  in
  let lit_of i =
    match Netlist.kind nl i with
    | Cell.Output -> lits.((Netlist.fanin nl i).(0))
    | _ -> lits.(i)
  in
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Output -> ()
      | Cell.Input -> lits.(i) <- source_var i
      | k when Cell.is_seq k -> lits.(i) <- source_var i
      | Cell.Tie0 -> lits.(i) <- - CB.vtrue b
      | Cell.Tie1 -> lits.(i) <- CB.vtrue b
      | Cell.Tiex -> lits.(i) <- source_var i
      | _ -> ())
    nl;
  Array.iter
    (fun i ->
      match Netlist.kind nl i with
      | Cell.Output -> ()
      | k ->
        let ins = Array.to_list (Array.map lit_of (Netlist.fanin nl i)) in
        lits.(i) <- CB.cell b k ins)
    (Netlist.topo nl);
  let observables = Hashtbl.create 97 in
  Array.iter
    (fun o ->
      match Netlist.name nl o with
      | Some name -> Hashtbl.replace observables ("port:" ^ name) (lit_of o)
      | None -> ())
    (Netlist.outputs nl);
  Array.iter
    (fun i ->
      match Netlist.name nl i with
      | Some name ->
        let ins = Array.to_list (Array.map lit_of (Netlist.fanin nl i)) in
        Hashtbl.replace observables ("capture:" ^ name)
          (CB.capture b (Netlist.kind nl i) ins)
      | None -> ())
    (Netlist.seq_nodes nl);
  observables

let check ?(assume = []) ?(conflict_limit = 500_000) nl_a nl_b =
  let s = S.create () in
  let b = CB.create s in
  let shared = Hashtbl.create 197 in
  (* apply assumptions before encoding so constants fold through *)
  List.iter
    (fun (name, v) -> Hashtbl.replace shared name (CB.of_bool b v))
    assume;
  let obs_a = encode_netlist b shared nl_a in
  let obs_b = encode_netlist b shared nl_b in
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem shared name) then
        invalid_arg
          (Printf.sprintf "Equiv.check: assumed name %S not a source" name))
    assume;
  let diffs = ref [] in
  Hashtbl.iter
    (fun key la ->
      match Hashtbl.find_opt obs_b key with
      | Some lb ->
        let x = CB.mk_xor2 b la lb in
        if not (CB.is_false b x) then diffs := x :: !diffs
      | None -> ())
    obs_a;
  let common =
    Hashtbl.fold
      (fun key _ acc -> if Hashtbl.mem obs_b key then acc + 1 else acc)
      obs_a 0
  in
  if common = 0 then No_common_observables
  else
    match !diffs with
    | [] -> Equivalent (* every common observable folded to equal *)
    | ds -> (
      S.add_clause s ds;
      match S.solve ~conflict_limit s with
      | S.Unsat -> Equivalent
      | S.Unknown -> Unknown
      | S.Sat model ->
        let cex =
          Hashtbl.fold
            (fun name v acc ->
              let value =
                if CB.is_true b v then true
                else if CB.is_false b v then false
                else model (abs v) = (v > 0)
              in
              (name, value) :: acc)
            shared []
          |> List.sort compare
        in
        Counterexample cex)
