open Olfu_logic
open Olfu_netlist

(** Static implication database — FIRE-style fault-independent
    conflict-untestability proofs.

    For every literal [(net, value)] the database stores the single-literal
    implications that hold in {e any} consistent binary assignment of the
    circuit (any test frame of the full-access combinational model):
    {ul
    {- {e direct} implications read off the gate semantics, strengthened by
       the ternary constants ([AND] output 1 forces every input 1; a side
       input tied to 1 makes an [AND] behave as a buffer of the free one);}
    {- their {e contrapositives} (emitted pairwise, so the breadth-first
       closure is closed under contraposition);}
    {- {e indirect} implications found by bounded recursive learning
       (SOCRATES-style): when a closure forces a gate output to its
       controlled value without justifying it, each candidate justification
       is explored in its own nested closure — at most [learn_depth] levels
       deep, against a global [learn_budget] — and whatever {e every}
       surviving justification implies is learned as a new edge.}}

    A literal whose closure contradicts itself (both values of some net, or
    a value against a binary ternary constant) is {e impossible}: no test
    frame realizes it.  Any stuck-at fault whose excitation requirement is
    an impossible literal, or whose necessary assignments (excitation value,
    immediate-gate side pins, dominator side pins — see {!Untestable}) close
    into a contradiction, is untestable without search.

    Soundness of the contradiction rule: nets driven by [Tiex] (or any
    uncontrollable source) still carry {e some} binary value in a physical
    frame, so requiring one value of such a net is never by itself a
    conflict — only requiring both values, or contradicting a proven
    constant, is.

    Domain safety: a built database is immutable and may be shared across
    domains.  The impossible-literal cache is a shared byte table written
    racily but idempotently (every domain computes the same pure verdict
    under the same fixed query budget).  A {!Scratch.t} is single-owner. *)

type t

type stats = {
  literals : int;  (** two per node *)
  direct_edges : int;  (** gate-semantic edges incl. contrapositives *)
  learned_edges : int;  (** edges added by recursive learning *)
  impossible_learned : int;
      (** literals proved impossible during the build-time learning sweep
          (cached; query-time closures alone may not re-derive them) *)
  learn_depth : int;
  learn_budget : int;
  learn_spent : int;  (** closure-visit credits consumed by learning *)
  build_seconds : float;
}

val build :
  ?learn_depth:int ->
  ?learn_budget:int ->
  ?extra_edges:(int * int) list ->
  consts:Logic4.t array ->
  Netlist.t ->
  t
(** [consts] must be [Ternary.run] values on the same netlist (the
    constants participate in edge strengthening and in the contradiction
    rule, so the database is only valid together with them).
    [learn_depth] (default 2) bounds the recursive-learning case-split
    nesting; 0 disables learning.  [learn_budget] (default 200_000)
    caps the total closure visits the build-time learning sweep may
    spend; the sweep processes literals in node order until exhausted.

    [extra_edges] are caller-supplied implications [(a, b)] over
    {!lit}-encoded literals, added before learning with their
    contrapositives — the hook for externally proved facts such as
    induction-proved state invariants ({!Olfu_invar}).  The caller
    guarantees their soundness for the machine being analysed; the
    database (and every verdict derived from it) is only valid under the
    same assumptions. *)

val stats : t -> stats
val netlist : t -> Netlist.t

(** Per-domain query scratch (generation-stamped literal marks and the
    closure worklist).  Never share one between domains. *)
module Scratch : sig
  type db := t
  type t

  val create : db -> t
end

val lit : int -> bool -> int
(** [lit net v] — the literal index [2*net + (if v then 1 else 0)]. *)

val lit_net : int -> int

val lit_value : int -> bool

val assume : ?budget:int -> t -> Scratch.t -> int list -> bool
(** Start a fresh closure from the given literals and saturate it over
    the implication graph.  Returns [false] on contradiction — the
    assumption set cannot hold in any test frame.  [budget] (default
    4096) caps the visited literals; on exhaustion the closure is left
    partial, which weakens but never unsounds the marks.  The marks stay
    valid in the scratch until the next [assume]. *)

val extend : t -> Scratch.t -> int list -> bool
(** Add further literals to the current closure (same generation,
    remaining budget) and re-saturate.  Returns [false] on
    contradiction. *)

val set_budget : Scratch.t -> int -> unit
(** Reset the remaining visit budget of the current closure (floored at
    0) without disturbing its marks. *)

type checkpoint
(** A snapshot of a drained closure (generation, visited length,
    remaining budget, contradiction flag).  Valid until the next
    [assume] on the same scratch. *)

val checkpoint : Scratch.t -> checkpoint

val rollback : Scratch.t -> checkpoint -> unit
(** Restore the closure to its checkpointed state: literals marked since
    are unmarked, the worklist truncated, and the remaining budget
    restored to its checkpointed value (so repeated extend/rollback
    cycles from one checkpoint all see the same budget — the basis of
    per-stem closure reuse in {!Untestable}).  Exact, because a drained
    closure is complete up to its budget — everything derivable from the
    pre-checkpoint seeds is already inside the checkpointed prefix.
    Raises [Invalid_argument] on a checkpoint from an older
    generation. *)

val implied : Scratch.t -> int -> Logic4.t
(** After {!assume}/{!extend}: the value the closure implies for a net
    ([X] when unconstrained).  Only meaningful when the last
    [assume]/[extend] returned [true]. *)

val derived_count : Scratch.t -> int
(** Literals the last closure derived (seeds excluded) on nets that the
    ternary constants leave unknown — 0 means the closure adds no
    blocking power beyond the seeds themselves. *)

val impossible : t -> Scratch.t -> int -> bool -> bool
(** [impossible t s net v]: the literal provably holds in no test frame.
    Memoized in the shared byte cache; consults build-time learning
    results.  Sound, not complete (a budget-exhausted query answers
    [false]). *)

val conflict_nets : ?limit:int -> t -> Scratch.t -> (int * bool) list
(** Nets that the ternary constants leave unknown but that still have an
    impossible value — the genuine conflict sets (a tied net's trivial
    opposite-value impossibility is excluded).  Scans every net, capped
    at [limit] (default [max_int]) findings, in node order. *)
