open Olfu_logic
open Olfu_netlist
open Olfu_fault
open Olfu_sim

type assignment = (int * bool) list
type result = Test of assignment | Proved_untestable | Aborted

type state = {
  nl : Netlist.t;
  fault : Fault.t;
  obs_out : int -> bool;
  observe_captures : bool;
  assign : Logic4.t array;  (* pseudo-input decisions; X = unassigned *)
  values : Logic5.t array;
  captures : Logic5.t array;  (* per seq-node order index *)
  seq_index : int array;  (* seq order index per node id, -1 otherwise *)
  scratch : Logic5.t array array;  (* per-arity operand buffers *)
}

let stuck4 f = if f.Fault.stuck then Logic4.L1 else Logic4.L0

let is_assignable nl i =
  match Netlist.kind nl i with
  | Cell.Input -> true
  | k -> Cell.is_seq k

let make nl fault ~obs_out ~observe_captures =
  let n = Netlist.length nl in
  let seq_index = Array.make n (-1) in
  Array.iteri (fun k i -> seq_index.(i) <- k) (Netlist.seq_nodes nl);
  let max_arity = ref 1 in
  Netlist.iter_nodes
    (fun _ nd ->
      let a = Array.length nd.Netlist.fanin in
      if a > !max_arity then max_arity := a)
    nl;
  {
    nl;
    fault;
    obs_out;
    observe_captures;
    assign = Array.make n Logic4.X;
    values = Array.make n Logic5.X;
    captures = Array.make (Array.length (Netlist.seq_nodes nl)) Logic5.X;
    seq_index;
    scratch = Array.init (!max_arity + 1) (fun a -> Array.make a Logic5.X);
  }

(* Faulty-rail replacement for a stem value. *)
let inject_stem st node v =
  let f = st.fault in
  if f.Fault.site.Fault.pin = Cell.Pin.Out && f.Fault.site.Fault.node = node
  then Logic5.of_pair ~good:(Logic5.good v) ~faulty:(stuck4 f)
  else v

(* Value seen by input [pin] of [node], with branch-fault injection. *)
let operand st node pin =
  let drv = (Netlist.fanin st.nl node).(pin) in
  let v = st.values.(drv) in
  let f = st.fault in
  if f.Fault.site.Fault.node = node
     && Cell.Pin.equal f.Fault.site.Fault.pin (Cell.Pin.In pin)
  then Logic5.of_pair ~good:(Logic5.good v) ~faulty:(stuck4 f)
  else v

let operands st node =
  Array.init (Array.length (Netlist.fanin st.nl node)) (operand st node)

let capture_value st node =
  let pin = operand st node in
  match Netlist.kind st.nl node with
  | Cell.Dff -> pin 0
  | Cell.Dffr -> Logic5.mux ~sel:(pin 1) ~a:Logic5.Zero ~b:(pin 0)
  | Cell.Sdff -> Logic5.mux ~sel:(pin 2) ~a:(pin 0) ~b:(pin 1)
  | Cell.Sdffr ->
    Logic5.mux ~sel:(pin 3) ~a:Logic5.Zero
      ~b:(Logic5.mux ~sel:(pin 2) ~a:(pin 0) ~b:(pin 1))
  | _ -> assert false

let simulate st =
  let nl = st.nl in
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Input | Cell.Dff | Cell.Dffr | Cell.Sdff | Cell.Sdffr ->
        let base = st.assign.(i) in
        st.values.(i) <-
          inject_stem st i (Logic5.of_pair ~good:base ~faulty:base)
      | Cell.Tie0 -> st.values.(i) <- inject_stem st i Logic5.Zero
      | Cell.Tie1 -> st.values.(i) <- inject_stem st i Logic5.One
      | Cell.Tiex -> st.values.(i) <- Logic5.X
      | _ -> ())
    nl;
  Array.iter
    (fun i ->
      let arity = Array.length (Netlist.fanin nl i) in
      let buf = st.scratch.(arity) in
      for p = 0 to arity - 1 do
        buf.(p) <- operand st i p
      done;
      let v = Eval.comb5 (Netlist.kind nl i) buf in
      st.values.(i) <- inject_stem st i v)
    (Netlist.topo nl);
  Array.iter
    (fun i -> st.captures.(st.seq_index.(i)) <- capture_value st i)
    (Netlist.seq_nodes nl)

let detected st =
  Array.exists
    (fun o -> st.obs_out o && Logic5.is_error (operand st o 0))
    (Netlist.outputs st.nl)
  || (st.observe_captures && Array.exists Logic5.is_error st.captures)

(* Good value currently on the fault site; the fault is excited when the
   site carries D/D'. *)
let site_value st =
  let { Fault.node; pin } = st.fault.Fault.site in
  match pin with
  | Cell.Pin.Out -> st.values.(node)
  | Cell.Pin.In p -> operand st node p
  | Cell.Pin.Clk -> assert false

let excitation_net st =
  let { Fault.node; pin } = st.fault.Fault.site in
  match pin with
  | Cell.Pin.Out -> node
  | Cell.Pin.In p -> (Netlist.fanin st.nl node).(p)
  | Cell.Pin.Clk -> assert false

(* X-path check: can some error still reach an observation point through
   X-valued logic?  Computed as aliveness over the reverse topological
   order. *)
let xpath_exists st =
  let nl = st.nl in
  let n = Netlist.length nl in
  let alive = Array.make n false in
  Array.iter
    (fun o -> if st.obs_out o then alive.((Netlist.fanin nl o).(0)) <- true)
    (Netlist.outputs nl);
  if st.observe_captures then
    Array.iter
      (fun i -> Array.iter (fun d -> alive.(d) <- true) (Netlist.fanin nl i))
      (Netlist.seq_nodes nl);
  let order = Netlist.topo nl in
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    let open_out =
      alive.(i)
      && (match st.values.(i) with
         | Logic5.X | Logic5.D | Logic5.Dbar -> true
         | Logic5.Zero | Logic5.One -> false)
    in
    if open_out then
      Array.iter (fun d -> alive.(d) <- true) (Netlist.fanin nl i)
  done;
  let found = ref false in
  Netlist.iter_nodes
    (fun i _ -> if alive.(i) && Logic5.is_error st.values.(i) then found := true)
    nl;
  !found
  || (let site = site_value st in
     if Logic5.is_error site then
       (* A branch fault's error lives on the fanout branch only; it is
          alive while its sink gate can still pass it on. *)
       match st.fault.Fault.site.Fault.pin with
       | Cell.Pin.Out | Cell.Pin.Clk -> false
       | Cell.Pin.In _ -> (
         let sink = st.fault.Fault.site.Fault.node in
         match Netlist.kind nl sink with
         | Cell.Output -> st.obs_out sink
         | k when Cell.is_seq k -> st.observe_captures
         | _ -> (
           match st.values.(sink) with
           | Logic5.X -> alive.(sink)
           | Logic5.D | Logic5.Dbar -> true
           | Logic5.Zero | Logic5.One -> false))
     else
       (* Not yet excited: keep going while the excitation net is alive. *)
       alive.(excitation_net st))

let noncontrolling = function
  | Cell.And | Cell.Nand -> Logic4.L1
  | Cell.Or | Cell.Nor -> Logic4.L0
  | _ -> Logic4.L1

(* Pick the D-frontier gate closest to an observation point (lowest
   SCOAP observability) and return the objective (net, value) that
   enables propagation through it. *)
let frontier_objective st guide =
  let nl = st.nl in
  let best = ref None in
  let best_cost = ref max_int in
  Array.iter
    (fun i ->
      if (match st.values.(i) with Logic5.X -> true | _ -> false)
         && Scoap.co guide i < !best_cost
      then begin
        let ins = operands st i in
        if Array.exists Logic5.is_error ins then begin
          (* choose an X side input *)
          let fanin = Netlist.fanin nl i in
          let pin = ref (-1) in
          Array.iteri
            (fun p v ->
              if !pin < 0 && (match v with Logic5.X -> true | _ -> false)
              then pin := p)
            ins;
          if !pin >= 0 then begin
            let k = Netlist.kind nl i in
            let v =
              match k, !pin with
              | Cell.Mux2, 0 ->
                (* select the erroneous data input *)
                if Logic5.is_error ins.(1) then Logic4.L0 else Logic4.L1
              | Cell.Mux2, _ -> Logic4.L1
              | _ -> noncontrolling k
            in
            best := Some (fanin.(!pin), v);
            best_cost := Scoap.co guide i
          end
        end
      end)
    (Netlist.topo nl);
  (* Flip-flop captures are pseudo-outputs: an error arriving on a flop
     pin with the capture still X is also a propagation frontier. *)
  if !best = None && st.observe_captures then
    Array.iter
      (fun i ->
        if !best = None
           && (match st.captures.(st.seq_index.(i)) with
              | Logic5.X -> true
              | _ -> false)
        then begin
          let ins = operands st i in
          let fanin = Netlist.fanin nl i in
          let isx p = match ins.(p) with Logic5.X -> true | _ -> false in
          let err p = Logic5.is_error ins.(p) in
          let inv5 p =
            (* complement of a binary 5-value, as an objective *)
            match ins.(p) with
            | Logic5.One -> Some Logic4.L0
            | Logic5.Zero -> Some Logic4.L1
            | _ -> Some Logic4.L1
          in
          match Netlist.kind nl i with
          | Cell.Dffr ->
            if err 0 && isx 1 then best := Some (fanin.(1), Logic4.L1)
            else if err 1 && isx 0 then best := Some (fanin.(0), Logic4.L1)
          | Cell.Sdff | Cell.Sdffr ->
            if err 0 && isx 2 then best := Some (fanin.(2), Logic4.L0)
            else if err 1 && isx 2 then best := Some (fanin.(2), Logic4.L1)
            else if err 2 then begin
              (* a select error shows iff the two data inputs differ *)
              if isx 0 then
                best := Option.map (fun v -> (fanin.(0), v)) (inv5 1)
              else if isx 1 then
                best := Option.map (fun v -> (fanin.(1), v)) (inv5 0)
            end
            else if Array.length fanin = 4 && err 3 && isx 0 then
              (* reset error shows iff the captured value is 1 *)
              best := Some (fanin.(0), Logic4.L1)
          | _ -> ()
        end)
      (Netlist.seq_nodes nl);
  !best

(* Map an objective to an unassigned pseudo-input decision by walking
   X-valued nets backwards, SCOAP-guided: when one input suffices
   (controlling value) take the cheapest; when all inputs are needed take
   the hardest first (classic multiple-backtrace ordering). *)
let rec backtrace st guide net v =
  if is_assignable st.nl net then
    if Logic4.is_binary st.assign.(net) then None else Some (net, v)
  else
    let fanin = Netlist.fanin st.nl net in
    let cost_of want d =
      match (want : Logic4.t) with
      | Logic4.L0 -> Scoap.cc0 guide d
      | Logic4.L1 -> Scoap.cc1 guide d
      | Logic4.X | Logic4.Z -> 0
    in
    (* choose among X-valued fanins; [easiest] selects min cost for the
       requested value, otherwise max (hardest-first) *)
    let pick ~easiest want =
      let best = ref None in
      Array.iter
        (fun d ->
          if match st.values.(d) with Logic5.X -> true | _ -> false then begin
            let c = cost_of want d in
            match !best with
            | None -> best := Some (d, c)
            | Some (_, c') ->
              if (easiest && c < c') || ((not easiest) && c > c') then
                best := Some (d, c)
          end)
        fanin;
      Option.map fst !best
    in
    let go_and v =
      (* output v=1 needs all inputs 1 (hardest first); v=0 needs one 0
         (easiest) *)
      match (v : Logic4.t) with
      | Logic4.L1 -> pick ~easiest:false Logic4.L1
      | _ -> pick ~easiest:true Logic4.L0
    in
    let go_or v =
      match (v : Logic4.t) with
      | Logic4.L0 -> pick ~easiest:false Logic4.L0
      | _ -> pick ~easiest:true Logic4.L1
    in
    match Netlist.kind st.nl net with
    | Cell.Buf | Cell.Output -> backtrace st guide fanin.(0) v
    | Cell.Not -> backtrace st guide fanin.(0) (Logic4.not_ v)
    | Cell.And -> (
      match go_and v with Some d -> backtrace st guide d v | None -> None)
    | Cell.Nand -> (
      let v' = Logic4.not_ v in
      match go_and v' with Some d -> backtrace st guide d v' | None -> None)
    | Cell.Or -> (
      match go_or v with Some d -> backtrace st guide d v | None -> None)
    | Cell.Nor -> (
      let v' = Logic4.not_ v in
      match go_or v' with Some d -> backtrace st guide d v' | None -> None)
    | Cell.Xor | Cell.Xnor -> (
      match pick ~easiest:true v with
      | Some d -> backtrace st guide d v
      | None -> None)
    | Cell.Mux2 -> (
      let sel = fanin.(0) and a = fanin.(1) and b = fanin.(2) in
      match st.values.(sel) with
      | Logic5.Zero -> backtrace st guide a v
      | Logic5.One -> backtrace st guide b v
      | _ ->
        if (match st.values.(a) with Logic5.X -> true | _ -> false) then
          backtrace st guide a v
        else if (match st.values.(b) with Logic5.X -> true | _ -> false) then
          backtrace st guide b v
        else backtrace st guide sel Logic4.L0)
    | Cell.Tie0 | Cell.Tie1 | Cell.Tiex -> None
    | Cell.Input | Cell.Dff | Cell.Dffr | Cell.Sdff | Cell.Sdffr -> None
  [@@warning "-4"]

let run ?(backtrack_limit = 10_000) ?(observable_output = fun _ -> true)
    ?(observe_captures = true) ?guide nl fault =
  (match fault.Fault.site.Fault.pin with
  | Cell.Pin.Clk -> invalid_arg "Podem.run: clock-pin fault"
  | _ -> ());
  let guide = match guide with Some g -> g | None -> Scoap.run nl in
  let st = make nl fault ~obs_out:observable_output ~observe_captures in
  let decisions = ref [] in  (* (pi, value, flipped) *)
  let backtracks = ref 0 in
  let exception Done of result in
  let imply () = simulate st in
  let backtrack () =
    let rec pop = function
      | [] -> raise (Done Proved_untestable)
      | (pi, _, true) :: rest ->
        st.assign.(pi) <- Logic4.X;
        pop rest
      | (pi, v, false) :: rest ->
        incr backtracks;
        if !backtracks > backtrack_limit then raise (Done Aborted);
        let v' = Logic4.not_ v in
        st.assign.(pi) <- v';
        decisions := (pi, v', true) :: rest
    in
    pop !decisions;
    imply ()
  in
  let current_test () =
    List.rev_map
      (fun (pi, v, _) -> (pi, Logic4.equal v Logic4.L1))
      !decisions
  in
  (try
     imply ();
     while true do
       if detected st then raise (Done (Test (current_test ())));
       let site = site_value st in
       let unexcitable =
         (* The good value on the site equals the stuck value: this path
            of the search cannot excite the fault. *)
         (not (Logic5.is_error site))
         && Logic4.is_binary (Logic5.good site)
         && Logic4.equal (Logic5.good site) (stuck4 fault)
       in
       if unexcitable || not (xpath_exists st) then backtrack ()
       else begin
         let objective =
           if Logic5.is_error site then frontier_objective st guide
           else Some (excitation_net st, Logic4.not_ (stuck4 fault))
         in
         match objective with
         | None -> backtrack ()
         | Some (net, v) -> (
           match backtrace st guide net v with
           | None -> backtrack ()
           | Some (pi, bv) ->
             st.assign.(pi) <- bv;
             decisions := (pi, bv, false) :: !decisions;
             imply ())
       end
     done;
     assert false
   with Done r -> r)

let check_test ?(observable_output = fun _ -> true) ?(observe_captures = true)
    nl fault assignment =
  let st = make nl fault ~obs_out:observable_output ~observe_captures in
  List.iter
    (fun (pi, b) ->
      if not (is_assignable nl pi) then
        invalid_arg "Podem.check_test: not a pseudo-input";
      st.assign.(pi) <- Logic4.of_bool b)
    assignment;
  simulate st;
  detected st
