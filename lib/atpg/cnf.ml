open Olfu_netlist
module S = Olfu_sat.Solver

(* ---- gate CNF helpers: operands and outputs are signed literals ---- *)

let and_gate s y ins =
  (* y <-> AND ins *)
  List.iter (fun a -> S.add_clause s [ -y; a ]) ins;
  S.add_clause s (y :: List.map (fun a -> -a) ins)

let or_gate s y ins =
  List.iter (fun a -> S.add_clause s [ y; -a ]) ins;
  S.add_clause s (-y :: ins)

let xor2_gate s y a b =
  S.add_clause s [ -y; a; b ];
  S.add_clause s [ -y; -a; -b ];
  S.add_clause s [ y; -a; b ];
  S.add_clause s [ y; a; -b ]

let equal_gate s y a =
  S.add_clause s [ -y; a ];
  S.add_clause s [ y; -a ]

let mux_gate s y sel a b =
  (* y = sel ? b : a *)
  S.add_clause s [ sel; -a; y ];
  S.add_clause s [ sel; a; -y ];
  S.add_clause s [ -sel; -b; y ];
  S.add_clause s [ -sel; b; -y ]

let rec xor_chain s fresh y = function
  | [] -> invalid_arg "xor_chain: empty"
  | [ a ] -> equal_gate s y a
  | [ a; b ] -> xor2_gate s y a b
  | a :: b :: rest ->
    let t = fresh () in
    xor2_gate s t a b;
    xor_chain s fresh y (t :: rest)

(* Encode one cell: [y] is the output literal, [ins] the operand
   literals. *)
let encode_cell s fresh (k : Cell.kind) y ins =
  match k with
  | Cell.Buf | Cell.Output -> equal_gate s y (List.hd ins)
  | Cell.Not -> equal_gate s y (- List.hd ins)
  | Cell.And -> and_gate s y ins
  | Cell.Nand -> and_gate s (-y) ins
  | Cell.Or -> or_gate s y ins
  | Cell.Nor -> or_gate s (-y) ins
  | Cell.Xor -> xor_chain s fresh y ins
  | Cell.Xnor -> xor_chain s fresh (-y) ins
  | Cell.Mux2 -> (
    match ins with
    | [ sel; a; b ] -> mux_gate s y sel a b
    | _ -> assert false)
  | Cell.Input | Cell.Tie0 | Cell.Tie1 | Cell.Tiex | Cell.Dff | Cell.Dffr
  | Cell.Sdff | Cell.Sdffr ->
    invalid_arg "Sat_atpg.encode_cell: not a combinational cell"

(* Capture value of a flip-flop as a literal built over operand
   literals. *)
let encode_capture s fresh (k : Cell.kind) ins =
  match k, ins with
  | Cell.Dff, [ d ] -> d
  | Cell.Dffr, [ d; rstn ] ->
    let y = fresh () in
    and_gate s y [ d; rstn ];
    y
  | Cell.Sdff, [ d; si; se ] ->
    let y = fresh () in
    mux_gate s y se d si;
    y
  | Cell.Sdffr, [ d; si; se; rstn ] ->
    let m = fresh () in
    mux_gate s m se d si;
    let y = fresh () in
    and_gate s y [ m; rstn ];
    y
  | _ -> invalid_arg "Sat_atpg.encode_capture"


(* ---- folding, hash-consing circuit builder over solver literals ---- *)

module Builder = struct
  type t = {
    s : S.t;
    vtrue : int;
    cons : (string, int) Hashtbl.t;
  }

  let create s =
    let vtrue = S.new_var s in
    S.add_clause s [ vtrue ];
    { s; vtrue; cons = Hashtbl.create 9973 }

  let fresh b = S.new_var b.s
  let vtrue b = b.vtrue
  let is_true b l = l = b.vtrue
  let is_false b l = l = -b.vtrue
  let of_bool b v = if v then b.vtrue else -b.vtrue

  let key kind lits =
    kind ^ ":" ^ String.concat "," (List.map string_of_int lits)

  let hashcons b kind lits build =
    let k = key kind lits in
    match Hashtbl.find_opt b.cons k with
    | Some l -> l
    | None ->
      let l = build () in
      Hashtbl.replace b.cons k l;
      l

  let rec mk_and b lits =
    let lits = List.sort_uniq compare lits in
    if List.exists (is_false b) lits then -b.vtrue
    else
      let lits = List.filter (fun l -> not (is_true b l)) lits in
      if List.exists (fun l -> List.mem (-l) lits) lits then -b.vtrue
      else
        match lits with
        | [] -> b.vtrue
        | [ l ] -> l
        | _ ->
          hashcons b "and" lits (fun () ->
              let y = fresh b in
              and_gate b.s y lits;
              y)

  and mk_or b lits = -mk_and b (List.map (fun l -> -l) lits)

  let mk_xor2 b x y =
    if is_false b x then y
    else if is_false b y then x
    else if is_true b x then -y
    else if is_true b y then -x
    else if x = y then -b.vtrue
    else if x = -y then b.vtrue
    else begin
      let sign = (if x < 0 then 1 else 0) + (if y < 0 then 1 else 0) in
      let x = abs x and y = abs y in
      let x, y = (min x y, max x y) in
      let v =
        hashcons b "xor" [ x; y ] (fun () ->
            let v = fresh b in
            xor2_gate b.s v x y;
            v)
      in
      if sign land 1 = 1 then -v else v
    end

  let mk_xor b lits = List.fold_left (mk_xor2 b) (-b.vtrue) lits

  let mk_mux b sel x y =
    (* sel ? y : x *)
    if is_false b sel then x
    else if is_true b sel then y
    else if x = y then x
    else
      hashcons b "mux" [ sel; x; y ] (fun () ->
          let v = fresh b in
          mux_gate b.s v sel x y;
          v)

  let cell b (k : Cell.kind) ins =
    match k with
    | Cell.Buf | Cell.Output -> List.hd ins
    | Cell.Not -> -List.hd ins
    | Cell.And -> mk_and b ins
    | Cell.Nand -> -mk_and b ins
    | Cell.Or -> mk_or b ins
    | Cell.Nor -> -mk_or b ins
    | Cell.Xor -> mk_xor b ins
    | Cell.Xnor -> -mk_xor b ins
    | Cell.Mux2 -> (
      match ins with
      | [ sel; x; y ] -> mk_mux b sel x y
      | _ -> assert false)
    | Cell.Input | Cell.Tie0 | Cell.Tie1 | Cell.Tiex | Cell.Dff | Cell.Dffr
    | Cell.Sdff | Cell.Sdffr ->
      invalid_arg "Cnf.Builder.cell"

  let capture b (k : Cell.kind) ins =
    match k, ins with
    | Cell.Dff, [ d ] -> d
    | Cell.Dffr, [ d; rstn ] -> mk_and b [ d; rstn ]
    | Cell.Sdff, [ d; si; se ] -> mk_mux b se d si
    | Cell.Sdffr, [ d; si; se; rstn ] -> mk_and b [ mk_mux b se d si; rstn ]
    | _ -> invalid_arg "Cnf.Builder.capture"
end
