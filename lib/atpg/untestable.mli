open Olfu_netlist
open Olfu_fault

(** Structural untestability classification — the Tetramax stand-in.

    Combines {!Ternary} constant propagation and {!Observe} X-path
    observability to classify each stuck-at fault:
    {ul
    {- UT ("untestable due to tied value"): the fault site is held at the
       stuck value, so the fault can never be excited;}
    {- UB (blocked): the fault effect cannot reach any observation point;}
    {- flip-flop clock faults are untestable when the register provably
       never changes (Fig. 5 of the paper).}}

    Verdicts are sound: a fault classified here has {e no} test in the
    analyzed configuration.  Faults left unclassified may still be
    functionally untestable (that is what PODEM / fault simulation refine). *)

type t = {
  netlist : Netlist.t;
  consts : Ternary.t;
  obs : Observe.t;
  observable_output : int -> bool;
  stem_cache : (int, bool) Hashtbl.t;
}

val stem_possibly_observable : t -> int -> bool
(** Sound per-stem check behind UB verdicts on output pins and clock
    pins: propagates a hypothetical change on the stem forward, refusing
    to trust blocking constants on side inputs that lie inside the stem's
    own fanout cone (reconvergence makes them fault-correlated).  The
    cheap global analysis is only a filter; a stem is classified blocked
    only when this confirms it. *)

val analyze :
  ?ff_mode:Ternary.ff_mode ->
  ?observable_output:(int -> bool) ->
  Netlist.t ->
  t

val fault_verdict : t -> Fault.t -> Status.t option
(** [Some (Undetectable _)] when provably untestable, [None] otherwise. *)

val classify : t -> Flist.t -> int
(** Applies {!fault_verdict} to every [Not_analyzed] / [Not_detected]
    fault of the list; returns the number of faults newly classified
    undetectable. *)

val untestable_count : t -> Netlist.t -> int
(** Number of untestable faults over the full universe of the netlist
    (faults on tie cells excluded, as in {!Fault.universe}). *)
