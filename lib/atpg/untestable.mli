open Olfu_netlist
open Olfu_fault

(** Structural untestability classification — the Tetramax stand-in.

    Combines {!Ternary} constant propagation and {!Observe} X-path
    observability to classify each stuck-at fault:
    {ul
    {- UT ("untestable due to tied value"): the fault site is held at the
       stuck value, so the fault can never be excited;}
    {- UB (blocked): the fault effect cannot reach any observation point;}
    {- UC (conflict): the static implication engine ({!Implic}) proves
       that the assignments every test of the fault requires — excitation
       value, non-controlling side inputs of the immediate gate, side
       inputs of the stem's dominators — contradict each other, or that
       their implied closure blocks every propagation path;}
    {- flip-flop clock faults are untestable when the register provably
       never changes (Fig. 5 of the paper).}}

    Verdicts are sound: a fault classified here has {e no} test in the
    analyzed configuration.  Faults left unclassified may still be
    functionally untestable (that is what PODEM / fault simulation refine). *)

type walker
(** Per-domain walk state (cone scratch, affected marks, verdict memo).
    Never share one between domains. *)

type t = {
  netlist : Netlist.t;
  consts : Ternary.t;
  obs : Observe.t;
  observable_output : int -> bool;
  stem_cache : (int, bool) Hashtbl.t;
      (** stem-observability memo of the analysis' own walker; only the
          calling domain of the sequential API touches it *)
  implic : Implic.t option;
      (** the static implication database behind UC verdicts (shared,
          immutable; [None] when the engine was disabled) *)
  walker : walker;
}

val stem_possibly_observable : t -> int -> bool
(** Sound per-stem check behind UB verdicts on output pins and clock
    pins: propagates a hypothetical change on the stem forward through
    its fanout-cone schedule ({!Olfu_netlist.Analysis}), refusing to
    trust blocking constants on side inputs that lie inside the stem's
    own fanout cone (reconvergence makes them fault-correlated).  The
    cheap global analysis is only a filter; a stem is classified blocked
    only when this confirms it. *)

val analyze :
  ?ff_mode:Ternary.ff_mode ->
  ?observable_output:(int -> bool) ->
  ?consts:Ternary.t ->
  ?implic:bool ->
  ?learn_depth:int ->
  ?learn_budget:int ->
  ?extra_edges:(int * int) list ->
  ?trace:Olfu_obs.Trace.sink ->
  Netlist.t ->
  t
(** [consts], when given, must be the result of [Ternary.run] on the same
    netlist; it skips the constant-propagation fixpoint (the flow runs
    several analyses over one tied netlist that differ only in
    observability).  [ff_mode] is ignored when [consts] is supplied.
    [implic] (default [true]) builds the static implication database so
    {!fault_verdict} can return UC verdicts; [learn_depth] /
    [learn_budget] / [extra_edges] are passed to {!Implic.build}
    ([extra_edges] carries externally proved implications — in practice
    {!Olfu_invar} state invariants; every verdict of the resulting
    analysis is then conditional on those facts).

    A recording [trace] attributes each phase to an ["engine"]-category
    span: ["graph"] (analysis construction), ["ternary"] (skipped when
    [consts] is supplied), ["observe"], ["implic"]. *)

val fault_verdict : t -> Fault.t -> Status.t option
(** [Some (Undetectable _)] when provably untestable, [None] otherwise. *)

val make_walker : t -> walker
(** A fresh walker for an additional domain (the analysis' own walker
    serves the calling domain). *)

val verdict_with : t -> walker -> Fault.t -> Status.t option
(** {!fault_verdict} through an explicit walker — the multi-domain entry
    point ({!Olfu_core.Tdf_flow} shards fault pairs over a pool). *)

val implication_db : t -> Implic.t option
(** The database built by {!analyze} (for stats reporting). *)

val classify : ?jobs:int -> ?trace:Olfu_obs.Trace.sink -> t -> Flist.t -> int
(** Applies {!fault_verdict} to every [Not_analyzed] / [Not_detected]
    fault of the list; returns the number of faults newly classified
    undetectable.  [jobs] (default {!Olfu_pool.Pool.default_jobs}) shards
    the fault list across a domain pool with per-worker walkers; verdicts
    are pure per fault and indices are owned by single workers, so the
    result is identical for any [jobs].

    A recording [trace] gets one ["engine"]-category ["classify"] span
    and the jobs-invariant counters ["classify.faults"],
    ["classify.examined"] and ["classify.classified"]. *)

val untestable_count : t -> Netlist.t -> int
(** Number of untestable faults over the full universe of the netlist
    (faults on tie cells excluded, as in {!Fault.universe}). *)

val untestable_breakdown :
  ?software:t ->
  ?invariant:t ->
  t ->
  Netlist.t ->
  (Status.undetectable * int) list
(** {!untestable_count} split by verdict class —
    [[Tied, n; Blocked, n; Conflict, n; Software, n; Invariant, n]] in
    that order — so Table-I-style reports can attribute the proofs to
    the engine that made them.  [software], when given, must be an
    analysis of the same netlist strengthened with software-proven
    constants ([Ternary.run ~assume] over {!Olfu_absint} facts): faults
    the base analysis leaves unproved but the strengthened one
    classifies are counted under {!Status.Software} (0 without it).
    [invariant], likewise, is an analysis of the mission-held machine
    strengthened with proved state invariants ({!Olfu_invar}): faults
    neither the base nor the software analysis proves but the invariant
    one does are counted under {!Status.Invariant}.  The
    structural/conflict rows are identical with or without either. *)
