open Olfu_netlist

(** Functionally untestable path-delay fault identification — the
    companion technique of the authors' MTV'08 paper ([9] in the
    references), driven by the same mission constants.

    A path-delay fault needs every off-path (side) input of every gate on
    the path at a non-controlling value; if the mission configuration ties
    a side input to its controlling value — or holds any on-path net
    constant — the path cannot be (even non-robustly) sensitized, so both
    its rising and falling faults are on-line functionally untestable. *)

type path = {
  launch : int;  (** primary input or flip-flop output starting the path *)
  hops : (int * int) list;  (** (sink node, input pin) per stage, in order *)
}

val capture : path -> int
(** The node whose input ends the path (an output marker or flip-flop). *)

val enumerate : ?max_paths:int -> ?max_len:int -> Netlist.t -> path list
(** Depth-first structural path enumeration, bounded by [max_paths]
    (default 10,000) and [max_len] (default 256 hops).  Deterministic;
    with a cap the result is a prefix sample of the full path set. *)

val untestable : Untestable.t -> path -> bool
(** No static sensitization exists under the analysis' constants. *)

type census = {
  enumerated : int;
  untestable_paths : int;
  truncated : bool;  (** the [max_paths] cap was hit *)
}

val classify : ?max_paths:int -> ?max_len:int -> Untestable.t -> Netlist.t -> census
val pp_census : Format.formatter -> census -> unit
val pp_path : Netlist.t -> Format.formatter -> path -> unit
