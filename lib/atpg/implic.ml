open Olfu_logic
open Olfu_netlist

type stats = {
  literals : int;
  direct_edges : int;
  learned_edges : int;
  impossible_learned : int;
  learn_depth : int;
  learn_budget : int;
  learn_spent : int;
  build_seconds : float;
}

type t = {
  nl : Netlist.t;
  consts : Logic4.t array;
  mutable succ : int array array;  (* per literal; immutable after build *)
  extra : int list array;  (* learning-time edges; emptied after merge *)
  imposs : Bytes.t;  (* '\000' unknown, '\001' possible, '\002' impossible *)
  mutable stats : stats;
}

let lit net v = (2 * net) lor (if v then 1 else 0)
let lit_net l = l lsr 1
let lit_value l = l land 1 = 1
let lit_not l = l lxor 1

let netlist t = t.nl
let stats t = t.stats

(* ---------------------------------------------------------------- *)
(* Query scratch: generation-stamped marks plus the BFS worklist     *)
(* (the visited list doubles as the queue — drain order is insertion *)
(* order).                                                           *)
(* ---------------------------------------------------------------- *)

type scratch = {
  mark : int array;
  mutable gen : int;
  mutable vis : int array;
  mutable vislen : int;
  mutable qhead : int;
  mutable contra : bool;
  mutable derived : int;
  mutable budget : int;
}

module Scratch = struct
  type t = scratch

  let create db =
    {
      mark = Array.make (2 * Netlist.length db.nl) 0;
      gen = 0;
      vis = Array.make 256 0;
      vislen = 0;
      qhead = 0;
      contra = false;
      derived = 0;
      budget = 0;
    }
end

let vis_push s l =
  if s.vislen = Array.length s.vis then begin
    let bigger = Array.make (2 * s.vislen) 0 in
    Array.blit s.vis 0 bigger 0 s.vislen;
    s.vis <- bigger
  end;
  s.vis.(s.vislen) <- l;
  s.vislen <- s.vislen + 1

(* Mark one literal as implied.  A contradiction is both values of one
   net, or a value against a binary ternary constant; a single required
   value on an unknown (even uncontrollable) net is never by itself a
   conflict — the net still carries some binary value in a real frame.
   Every marked literal lands in [vis] (even a contradicting one), so
   [vis] is the exact undo log {!rollback} needs; [drain] stops at a
   contradiction, so a contra literal is never expanded. *)
let push db s ~seed l =
  if s.mark.(l) <> s.gen && not s.contra then begin
    if s.budget > 0 then begin
      s.budget <- s.budget - 1;
      s.mark.(l) <- s.gen;
      vis_push s l;
      if s.mark.(lit_not l) = s.gen then s.contra <- true
      else
        match db.consts.(lit_net l) with
        | Logic4.L0 -> if lit_value l then s.contra <- true
        | Logic4.L1 -> if not (lit_value l) then s.contra <- true
        | Logic4.X | Logic4.Z ->
          if not seed then s.derived <- s.derived + 1
    end
  end

let drain db s =
  while (not s.contra) && s.qhead < s.vislen do
    let l = s.vis.(s.qhead) in
    s.qhead <- s.qhead + 1;
    Array.iter (fun m -> push db s ~seed:false m) db.succ.(l);
    match db.extra.(l) with
    | [] -> ()
    | ms -> List.iter (fun m -> push db s ~seed:false m) ms
  done

let default_query_budget = 4096

let assume ?(budget = default_query_budget) db s lits =
  s.gen <- s.gen + 1;
  s.contra <- false;
  s.derived <- 0;
  s.vislen <- 0;
  s.qhead <- 0;
  s.budget <- budget;
  List.iter (push db s ~seed:true) lits;
  drain db s;
  not s.contra

let extend db s lits =
  List.iter (push db s ~seed:true) lits;
  drain db s;
  not s.contra

let set_budget s b = s.budget <- max 0 b

(* A drained closure is complete up to its budget: everything derivable
   from the pre-checkpoint seeds is already in [vis.(0 .. vislen)], so
   truncating [vis] and unmarking the suffix restores the closure state
   exactly — the basis of per-stem closure reuse in [Untestable]. *)
type checkpoint = {
  c_gen : int;
  c_vislen : int;
  c_qhead : int;
  c_derived : int;
  c_contra : bool;
  c_budget : int;
}

let checkpoint s =
  {
    c_gen = s.gen;
    c_vislen = s.vislen;
    c_qhead = s.qhead;
    c_derived = s.derived;
    c_contra = s.contra;
    c_budget = s.budget;
  }

let rollback s ck =
  if ck.c_gen <> s.gen then invalid_arg "Implic.rollback: stale checkpoint";
  for k = ck.c_vislen to s.vislen - 1 do
    (* generations start at 1 (bumped by every [assume]), so 0 never
       matches the current one *)
    s.mark.(s.vis.(k)) <- 0
  done;
  s.vislen <- ck.c_vislen;
  s.qhead <- min ck.c_qhead ck.c_vislen;
  s.derived <- ck.c_derived;
  s.contra <- ck.c_contra;
  s.budget <- ck.c_budget

let implied s net =
  if s.mark.(lit net false) = s.gen then Logic4.L0
  else if s.mark.(lit net true) = s.gen then Logic4.L1
  else Logic4.X

let derived_count s = s.derived

(* ---------------------------------------------------------------- *)
(* Direct implications from gate semantics                           *)
(* ---------------------------------------------------------------- *)

let build_direct ?(extra_edges = []) nl consts =
  let n = Netlist.length nl in
  let pre : int list array = Array.make (2 * n) [] in
  let count = ref 0 in
  let add a b =
    pre.(a) <- b :: pre.(a);
    incr count
  in
  (* every implication together with its contrapositive, so the closure
     is closed under contraposition *)
  let imp2 a b =
    add a b;
    add (lit_not b) (lit_not a)
  in
  let equiv x y =
    imp2 (lit x false) (lit y false);
    imp2 (lit x true) (lit y true)
  in
  let inv_equiv x y =
    imp2 (lit x false) (lit y true);
    imp2 (lit x true) (lit y false)
  in
  let binary_is d v =
    Logic4.is_binary consts.(d)
    && Logic4.equal consts.(d) (if v then Logic4.L1 else Logic4.L0)
  in
  (* controlled gates: controlling input value [cin] forces output [cout] *)
  let controlled o fanin ~cin ~cout =
    let neutral = not cin in
    let nonneutral = ref 0 and last = ref (-1) in
    Array.iteri
      (fun idx d ->
        if not (binary_is d neutral) then begin
          incr nonneutral;
          last := idx
        end)
      fanin;
    Array.iter (fun d -> imp2 (lit d cin) (lit o cout)) fanin;
    (* all side inputs tied neutral: the gate is transparent in the free
       input, so the reverse direction holds too *)
    if !nonneutral = 1 then begin
      let d = fanin.(!last) in
      if not (Logic4.is_binary consts.(d)) then
        imp2 (lit d neutral) (lit o (not cout))
    end
  in
  Netlist.iter_nodes
    (fun o nd ->
      let fanin = nd.Netlist.fanin in
      match nd.Netlist.kind with
      | Cell.Buf | Cell.Output -> equiv fanin.(0) o
      | Cell.Not -> inv_equiv fanin.(0) o
      | Cell.And -> controlled o fanin ~cin:false ~cout:false
      | Cell.Nand -> controlled o fanin ~cin:false ~cout:true
      | Cell.Or -> controlled o fanin ~cin:true ~cout:true
      | Cell.Nor -> controlled o fanin ~cin:true ~cout:false
      | Cell.Xor | Cell.Xnor ->
        (* transparent when all but one input is a binary constant *)
        let unknowns = ref 0 and uidx = ref (-1) and parity = ref false in
        Array.iteri
          (fun idx d ->
            match consts.(d) with
            | Logic4.L0 -> ()
            | Logic4.L1 -> parity := not !parity
            | Logic4.X | Logic4.Z ->
              incr unknowns;
              uidx := idx)
          fanin;
        if !unknowns = 1 then begin
          let d = fanin.(!uidx) in
          let inv =
            match nd.Netlist.kind with
            | Cell.Xnor -> not !parity
            | _ -> !parity
          in
          if inv then inv_equiv d o else equiv d o
        end
      | Cell.Mux2 -> (
        let s_ = fanin.(0) and a = fanin.(1) and b = fanin.(2) in
        match consts.(s_) with
        | Logic4.L0 -> equiv a o
        | Logic4.L1 -> equiv b o
        | Logic4.X | Logic4.Z ->
          (match consts.(a) with
          | Logic4.L0 ->
            imp2 (lit o true) (lit s_ true);
            imp2 (lit o true) (lit b true)
          | Logic4.L1 ->
            imp2 (lit o false) (lit s_ true);
            imp2 (lit o false) (lit b false)
          | _ -> ());
          (match consts.(b) with
          | Logic4.L0 ->
            imp2 (lit o true) (lit s_ false);
            imp2 (lit o true) (lit a true)
          | Logic4.L1 ->
            imp2 (lit o false) (lit s_ false);
            imp2 (lit o false) (lit a false)
          | _ -> ()))
      | Cell.Input | Cell.Tie0 | Cell.Tie1 | Cell.Tiex -> ()
      | Cell.Dff | Cell.Dffr | Cell.Sdff | Cell.Sdffr ->
        (* frame cut: no combinational implication across state *)
        ())
    nl;
  (* caller-supplied single-literal facts (proved state invariants):
     routed through [imp2] so contraposition closure is preserved *)
  List.iter
    (fun (a, b) ->
      if a >= 0 && a < 2 * n && b >= 0 && b < 2 * n && a <> b then imp2 a b)
    extra_edges;
  (Array.map (fun l -> Array.of_list l) pre, !count)

(* ---------------------------------------------------------------- *)
(* Bounded recursive learning (SOCRATES-style indirect implications)  *)
(* ---------------------------------------------------------------- *)

(* If the current closure forces gate [o] to its controlled output value
   without justifying it, return the candidate justification literals
   (None: justified, or not a learnable shape; Some []: every input is
   provably non-controlling — a contradiction). *)
let justification db s l =
  let o = lit_net l in
  let v = lit_value l in
  let shape =
    match Netlist.kind db.nl o with
    | Cell.And -> Some (false, false)
    | Cell.Nand -> Some (false, true)
    | Cell.Or -> Some (true, true)
    | Cell.Nor -> Some (true, false)
    | _ -> None
  in
  match shape with
  | None -> None
  | Some (cin, cout) ->
    if v <> cout then None
    else begin
      let fanin = Netlist.fanin db.nl o in
      if Array.length fanin < 2 then None
      else begin
        let justified = ref false in
        let cands = ref [] in
        Array.iter
          (fun d ->
            if not !justified then begin
              let jl = lit d cin in
              let cd = db.consts.(d) in
              if
                s.mark.(jl) = s.gen
                || (Logic4.is_binary cd
                   && Logic4.equal cd (if cin then Logic4.L1 else Logic4.L0))
              then justified := true
              else if s.mark.(lit_not jl) = s.gen || Logic4.is_binary cd then
                ()  (* provably non-controlling: cannot justify *)
              else if not (List.mem jl !cands) then cands := jl :: !cands
            end)
          fanin;
        if !justified then None else Some (List.rev !cands)
      end
    end

let max_splits_per_closure = 16
let branch_budget = 2048

let sweep_learning db ~depth ~budget =
  let budget_ref = ref budget in
  let learned = ref 0 and imposs_learned = ref 0 in
  let seen = Hashtbl.create 4096 in
  let n2 = 2 * Netlist.length db.nl in
  let learn_edge a b =
    let key = (a * n2) + b in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      db.extra.(a) <- b :: db.extra.(a);
      db.extra.(lit_not b) <- lit_not a :: db.extra.(lit_not b);
      learned := !learned + 2
    end
  in
  let scr = Array.init (depth + 1) (fun _ -> Scratch.create db) in
  (* [close level seeds top]: closure of [seeds] in scr.(level), with one
     round of case splits when a deeper level remains.  [top] is Some l0
     only at level 0, where learned implications become edges. *)
  let rec close level seeds top =
    let s = scr.(level) in
    let ok = assume ~budget:branch_budget db s seeds in
    budget_ref := !budget_ref - s.vislen;
    if not ok then false
    else begin
      if level < depth then begin
        let tried = ref 0 and k = ref 0 in
        while
          !k < s.vislen
          && !tried < max_splits_per_closure
          && (not s.contra)
          && !budget_ref > 0
        do
          let l = s.vis.(!k) in
          incr k;
          (match justification db s l with
          | None -> ()
          | Some [] -> s.contra <- true
          | Some [ j ] ->
            (* unit justification: forced *)
            incr tried;
            (match top with Some l0 -> learn_edge l0 j | None -> ());
            ignore (extend db s [ j ] : bool)
          | Some cands ->
            incr tried;
            let common = ref None in
            let alive = ref 0 and complete = ref true in
            List.iter
              (fun j ->
                if !budget_ref <= 0 then complete := false
                else begin
                  let okb = close (level + 1) (j :: seeds) None in
                  let sb = scr.(level + 1) in
                  if okb then begin
                    incr alive;
                    match !common with
                    | None -> common := Some (Array.sub sb.vis 0 sb.vislen)
                    | Some a ->
                      common :=
                        Some
                          (Array.of_list
                             (List.filter
                                (fun m -> sb.mark.(m) = sb.gen)
                                (Array.to_list a)))
                  end
                end)
              cands;
            if !complete then begin
              if !alive = 0 then s.contra <- true
              else
                match !common with
                | None -> ()
                | Some a ->
                  Array.iter
                    (fun m ->
                      if s.mark.(m) <> s.gen then begin
                        (match top with
                        | Some l0 -> learn_edge l0 m
                        | None -> ());
                        push db s ~seed:false m
                      end)
                    a;
                  drain db s
            end);
          ()
        done
      end;
      not s.contra
    end
  in
  let l = ref 0 in
  while !l < n2 && !budget_ref > 0 do
    let l0 = !l in
    if not (Logic4.is_binary db.consts.(lit_net l0)) then
      if not (close 0 [ l0 ] (Some l0)) then
        if Bytes.get db.imposs l0 = '\000' then begin
          Bytes.set db.imposs l0 '\002';
          incr imposs_learned
        end;
    l := l0 + 1
  done;
  (!learned, !imposs_learned, budget - !budget_ref)

let default_learn_depth = 2
let default_learn_budget = 200_000

let build ?(learn_depth = default_learn_depth)
    ?(learn_budget = default_learn_budget) ?(extra_edges = []) ~consts nl =
  let t0 = Unix.gettimeofday () in
  let n = Netlist.length nl in
  let succ, direct = build_direct ~extra_edges nl consts in
  let db =
    {
      nl;
      consts;
      succ;
      extra = Array.make (2 * n) [];
      imposs = Bytes.make (2 * n) '\000';
      stats =
        {
          literals = 2 * n;
          direct_edges = direct;
          learned_edges = 0;
          impossible_learned = 0;
          learn_depth;
          learn_budget;
          learn_spent = 0;
          build_seconds = 0.;
        };
    }
  in
  let learned, imposs_learned, spent =
    if learn_depth > 0 && learn_budget > 0 then
      sweep_learning db ~depth:learn_depth ~budget:learn_budget
    else (0, 0, 0)
  in
  (* merge the learned edges into the adjacency arrays *)
  if learned > 0 then begin
    db.succ <-
      Array.mapi
        (fun l a ->
          match db.extra.(l) with
          | [] -> a
          | ms -> Array.append a (Array.of_list ms))
        db.succ;
    Array.fill db.extra 0 (2 * n) []
  end;
  db.stats <-
    {
      db.stats with
      learned_edges = learned;
      impossible_learned = imposs_learned;
      learn_spent = spent;
      build_seconds = Unix.gettimeofday () -. t0;
    };
  db

let impossible db s net v =
  let l = lit net v in
  match Bytes.get db.imposs l with
  | '\002' -> true
  | '\001' -> false
  | _ ->
    let ok = assume db s [ l ] in
    (* pure in (db, l) under the fixed default budget, so concurrent
       writes are idempotent *)
    Bytes.set db.imposs l (if ok then '\001' else '\002');
    not ok

let conflict_nets ?(limit = max_int) db s =
  let acc = ref [] and count = ref 0 in
  let n = Netlist.length db.nl in
  let i = ref 0 in
  while !i < n && !count < limit do
    let net = !i in
    if not (Logic4.is_binary db.consts.(net)) then begin
      if impossible db s net false then begin
        acc := (net, false) :: !acc;
        incr count
      end;
      if !count < limit && impossible db s net true then begin
        acc := (net, true) :: !acc;
        incr count
      end
    end;
    incr i
  done;
  List.rev !acc
