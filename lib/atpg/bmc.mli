open Olfu_netlist
open Olfu_fault

(** Bounded sequential test generation (SAT-based BMC).

    Unrolls the mission machine [cycles] times from the post-reset state
    (reset-role inputs held inactive, resettable flops starting at 0,
    plain flops at a solver-chosen power-up value), with the stuck-at
    fault permanently injected in the faulty copy, and asks for an input
    sequence making a counted output differ in some cycle.

    A [`Test] is a genuine {e functional} test — exactly what the paper
    says is hard to produce — and therefore a refutation of any
    untestability claim; [`No_test_within k] is a bounded guarantee only
    (the fault may still be testable in more cycles). *)

type stimulus = (int * bool) list array
(** One input assignment list per cycle (input node id, value). *)

type result =
  | Test of stimulus
  | No_test_within of int
  | Unknown

val run :
  ?cycles:int ->
  ?observable_output:(int -> bool) ->
  ?conflict_limit:int ->
  Netlist.t ->
  Fault.t ->
  result
(** Defaults: 8 cycles, all outputs, 200,000 conflicts.  Clock-pin faults
    are rejected ([Invalid_argument]). *)

val confirm_test :
  ?observable_output:(int -> bool) -> Netlist.t -> Fault.t -> stimulus -> bool
(** Replay the stimulus on the 4-valued sequential simulator with and
    without the fault and confirm an observed difference (independent of
    the SAT encoding). *)

(** {1 Unrolling primitives}

    The per-cycle encoding blocks behind {!run}, exported so other
    bounded checks (the {!Olfu_safety} SEU bit-flip analysis) unroll the
    same machine semantics instead of re-deriving them. *)

val eval_cycle :
  Cnf.Builder.t ->
  Netlist.t ->
  source:(int -> int) ->
  inject_stem:(int -> int -> int) ->
  inject_operand:(int -> int -> int -> int) ->
  int array * (int -> int)
(** One copy of the combinational logic for one cycle.  [source] supplies
    the literal of every source node (inputs, flop outputs, [Tiex]);
    [inject_stem i l] / [inject_operand i p l] may rewrite the stem or
    operand literal (identity for a fault-free copy).  Returns the
    per-node literal array and a lookup that sees through [Output]
    markers. *)

val next_state :
  Cnf.Builder.t ->
  Netlist.t ->
  (int -> int) ->
  inject_operand:(int -> int -> int -> int) ->
  (int * int) array
(** Captured next-state literal per sequential cell, from the cycle's
    [lit_of] lookup. *)
